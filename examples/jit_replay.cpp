//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JIT debugging via profile replay -- the paper's section III, reason 4:
/// "If a collected profile triggers a JIT bug, compiler engineers can use
/// that to replay and step through the execution of the JIT."
///
/// This example plays the compiler engineer: it takes a serialized
/// profile package (as stored in the problematic-data database), reloads
/// it into a fresh JIT, and deterministically replays tier-2 compilation
/// of the hottest function -- dumping the bytecode, the profile the JIT
/// saw, the region/inlining decisions, and the final block layout.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Disasm.h"
#include "fleet/ServerSim.h"
#include "jit/Jit.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cstdio>

using namespace jumpstart;

int main() {
  // A "production" seeder collected this package...
  fleet::WorkloadParams WP;
  WP.NumHelpers = 200;
  WP.NumClasses = 24;
  WP.NumEndpoints = 16;
  WP.NumUnits = 16;
  auto W = fleet::generateWorkload(WP);
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 100;
  Config.Jit.SeederInstrumentation = true;
  auto Seeder = fleet::runSeeder(*W, Traffic, Config, 0, 0, 200, 9);
  std::vector<uint8_t> Blob =
      Seeder->buildSeederPackage(0, 0, 1).serialize();
  std::printf("replaying a %zu-byte profile package from the problem "
              "database\n\n", Blob.size());

  // ... and the engineer replays it offline.
  profile::ProfilePackage Pkg;
  if (!profile::ProfilePackage::deserialize(Blob, Pkg)) {
    std::printf("package is corrupt\n");
    return 1;
  }

  // Pick the hottest profiled function.
  const profile::FuncProfile *Hot = nullptr;
  for (const profile::FuncProfile &F : Pkg.Funcs)
    if (!Hot || F.totalSamples() > Hot->totalSamples())
      Hot = &F;
  if (!Hot) {
    std::printf("package has no profiles\n");
    return 1;
  }
  bc::FuncId F(Hot->Func);
  const bc::Function &Func = W->Repo.func(F);
  std::printf("hottest function: %s (%llu samples, %llu entries)\n",
              Func.Name.c_str(),
              static_cast<unsigned long long>(Hot->totalSamples()),
              static_cast<unsigned long long>(Hot->EntryCount));

  std::printf("\n--- bytecode ---\n%s",
              bc::disasmFunction(W->Repo, Func).c_str());

  std::printf("\n--- tier-1 block counters ---\n");
  for (size_t B = 0; B < Hot->BlockCounts.size(); ++B)
    std::printf("  B%-3zu %llu\n", B,
                static_cast<unsigned long long>(Hot->BlockCounts[B]));

  if (!Hot->CallTargets.empty()) {
    std::printf("\n--- call-target profiles ---\n");
    for (const auto &[Site, Targets] : Hot->CallTargets)
      for (const auto &[Callee, Count] : Targets)
        std::printf("  instr %-4u -> %-28s x%llu\n", Site,
                    W->Repo.func(bc::FuncId(Callee)).Name.c_str(),
                    static_cast<unsigned long long>(Count));
  }

  // Replay tier-2 compilation deterministically.
  jit::Jit Replay(W->Repo, jit::JitConfig());
  Replay.startConsumerPrecompile(Pkg);
  while (Replay.hasPendingWork())
    Replay.runJitWork(1e9);
  const jit::Translation *T = Replay.transDb().best(F);
  if (!T || T->Kind != jit::TransKind::Optimized) {
    std::printf("\nreplay produced no optimized translation\n");
    return 1;
  }

  std::printf("\n--- replayed tier-2 compilation ---\n");
  std::printf("optimized translation: %u Vasm blocks, %u bytes, "
              "%.2f cost-units/bytecode\n",
              static_cast<unsigned>(T->Unit->Blocks.size()),
              T->Unit->sizeBytes(), T->CostPerBytecode);
  if (!T->Unit->Inlined.empty()) {
    std::printf("inlined callees:");
    for (bc::FuncId G : T->Unit->Inlined)
      std::printf(" %s", W->Repo.func(G).Name.c_str());
    std::printf("\n");
  }

  std::printf("\n--- final block placement (address order) ---\n");
  std::vector<uint32_t> ByAddr(T->Unit->Blocks.size());
  for (uint32_t B = 0; B < ByAddr.size(); ++B)
    ByAddr[B] = B;
  std::sort(ByAddr.begin(), ByAddr.end(), [&](uint32_t A, uint32_t B) {
    return T->BlockAddrs[A] < T->BlockAddrs[B];
  });
  for (uint32_t B : ByAddr) {
    const jit::VBlock &VB = T->Unit->Blocks[B];
    std::printf("  0x%08llx  vasm-block %-4u %3u bytes, weight %llu%s\n",
                static_cast<unsigned long long>(T->BlockAddrs[B]), B,
                VB.sizeBytes(),
                static_cast<unsigned long long>(VB.Weight),
                VB.Weight == 0 ? "  (cold)" : "");
  }
  std::printf("\nthe replay is deterministic: rerunning this tool "
              "reproduces the same compilation, which is how profile-"
              "triggered JIT bugs are bisected offline\n");
  return 0;
}
