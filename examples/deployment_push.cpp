//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete site push (paper section II-C): the C1/C2/C3 phased
/// deployment with Jump-Start woven in -- C1 restarts the employee-facing
/// canary, C2 restarts seeders that collect/validate/publish profile
/// packages, C3 restarts consumers that boot from them.
///
/// Also demonstrates the failure path: a second push in which a latent
/// JIT bug makes one bucket's packages crash consumers in production;
/// randomized selection plus fallback keep the fleet serving.
///
//===----------------------------------------------------------------------===//

#include "core/Deployment.h"
#include "obs/Export.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace jumpstart;

int main(int argc, char **argv) {
  const char *ExportPrefix = nullptr;
  uint32_t Threads = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--export") == 0 && I + 1 < argc) {
      ExportPrefix = argv[++I];
    } else if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      char *End = nullptr;
      Threads = static_cast<uint32_t>(std::strtoul(argv[I + 1], &End, 10));
      if (End == argv[I + 1] || *End != '\0') {
        std::fprintf(stderr, "bad --threads value \"%s\"\n", argv[I + 1]);
        return 2;
      }
      ++I;
    } else {
      std::fprintf(stderr,
                   "unknown flag \"%s\"\n"
                   "usage: %s [--export PREFIX] [--threads N]\n",
                   argv[I], argv[0]);
      return 2;
    }
  }

  fleet::WorkloadParams WP;
  WP.NumHelpers = 300;
  WP.NumClasses = 36;
  WP.NumEndpoints = 20;
  WP.NumUnits = 24;
  auto W = fleet::generateWorkload(WP);
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  std::printf("site: %zu funcs / %zu bytecodes across %zu units\n\n",
              W->Repo.numFuncs(), W->Repo.totalBytecode(),
              W->Repo.numUnits());

  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 60;
  core::JumpStartOptions Opts;
  Opts.Coverage.MinProfiledFuncs = 5;
  Opts.Coverage.MinTotalSamples = 100;
  Opts.ValidationRequests = 15;

  // --- Push 1: the happy path.  Observability captures the C1/C2/C3
  // phase spans, every seeder/consumer workflow, and the package
  // accept/reject counters; --export PREFIX dumps them.
  obs::Observability Obs;
  std::printf("=== push 1: new website version rolls out ===\n");
  core::PackageManager Manager;
  core::DeploymentParams DP;
  DP.Regions = 1;
  DP.Buckets = 3;
  DP.SeedersPerPair = 2;
  DP.SeederRequests = 150;
  DP.ConsumerSamplesPerPair = 1;
  // Fold each shelf's seeders into one merged multi-seeder package too.
  DP.PublishMergedPackage = true;
  // Host-parallel push: seeders/consumers shard across the pool; the
  // report is identical for any worker count.
  std::unique_ptr<support::ThreadPool> Pool;
  if (Threads > 1)
    Pool = std::make_unique<support::ThreadPool>(Threads);
  DP.Pool = Pool.get();
  core::DeploymentReport Report = core::simulateDeployment(
      *W, Traffic, Config, Opts, Manager, DP, /*Chaos=*/nullptr, &Obs);
  for (const std::string &Line : Report.Log)
    std::printf("  %s\n", Line.c_str());
  std::printf("summary: %u/%u seeders published; %u/%u consumers used "
              "jump-start; mean consumer init %.2fs\n\n",
              Report.PackagesPublished, Report.SeedersRun,
              Report.ConsumersUsedJumpStart, Report.ConsumersBooted,
              Report.MeanConsumerInitSeconds);

  // --- Push 2: a rare JIT bug ships.  Packages from bucket 1 trip it in
  // production but not in the seeder's validation environment (the case
  // paper section VI-A's randomization + fallback exist for).
  std::printf("=== push 2: a latent JIT bug affects bucket 1 packages "
              "===\n");
  core::ChaosHooks Chaos;
  Chaos.CrashesInProduction = [](const profile::ProfilePackage &Pkg) {
    return Pkg.Bucket == 1;
  };
  core::PackageManager Manager2;
  core::DeploymentParams DP2 = DP;
  DP2.Seed = 77;
  core::DeploymentReport Report2 = core::simulateDeployment(
      *W, Traffic, Config, Opts, Manager2, DP2, &Chaos);
  for (const std::string &Line : Report2.Log)
    std::printf("  %s\n", Line.c_str());
  std::printf("summary: %u/%u consumers used jump-start (bucket 1 "
              "consumers fell back to self-profiling and kept serving)\n",
              Report2.ConsumersUsedJumpStart, Report2.ConsumersBooted);

  if (ExportPrefix) {
    support::Status S = obs::exportAll(Obs, ExportPrefix);
    if (!S.ok()) {
      std::fprintf(stderr, "export failed: %s\n", S.str().c_str());
      return 1;
    }
    std::printf("exported push-1 observability to %s.*\n", ExportPrefix);
  }
  return 0;
}
