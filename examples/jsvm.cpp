//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jsvm: a command-line driver for the VM substrate.
///
///   jsvm run <file.hack> [function] [int-arg]   compile + execute
///   jsvm disasm <file.hack> [function]          compile + disassemble
///   jsvm check <file.hack>                      compile + verify only
///   jsvm jit <file.hack> [--threads N]          retranslate-all on a
///                                               host compile pool
///   jsvm opts [k=v ...]                         parse + validate
///                                               Jump-Start options
///   jsvm fuzz [--programs N] [--seed S] ...     differential conformance
///                                               sweep (src/testing)
///
//===----------------------------------------------------------------------===//

#include "bytecode/Disasm.h"
#include "bytecode/Verifier.h"
#include "core/JumpStartOptions.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "jit/ParallelRetranslate.h"
#include "runtime/ValueOps.h"
#include "support/ThreadPool.h"
#include "testing/DiffRunner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace jumpstart;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: jsvm run <file.hack> [function] [int-arg]\n"
               "       jsvm disasm <file.hack> [function]\n"
               "       jsvm check <file.hack>\n"
               "       jsvm jit <file.hack> [--threads N]\n"
               "       jsvm opts [key=value ...]\n"
               "       jsvm fuzz [--programs N] [--seed S] [--requests N]\n"
               "                 [--full] [--skew K] [--repro DIR]\n");
  return 2;
}

bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Buffer[64 * 1024];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.append(Buffer, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

/// Compiles and verifies \p Path into \p Repo; prints diagnostics.
/// \returns true on success.
bool compileFile(const char *Path, bc::Repo &Repo) {
  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "jsvm: cannot read '%s'\n", Path);
    return false;
  }
  const runtime::BuiltinTable &Builtins = runtime::BuiltinTable::standard();
  std::vector<std::string> Errors =
      frontend::compileUnit(Repo, Builtins, Path, Source);
  for (const std::string &E : Errors)
    std::fprintf(stderr, "%s\n", E.c_str());
  if (!Errors.empty())
    return false;
  std::vector<std::string> VErrors = bc::verifyRepo(Repo, Builtins.size());
  for (const std::string &E : VErrors)
    std::fprintf(stderr, "verifier: %s\n", E.c_str());
  return VErrors.empty();
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  const char *Command = argv[1];

  // `opts` takes option assignments, not a source file: parse them into a
  // JumpStartOptions, run the validator, and echo the effective
  // configuration in round-trippable key=value form.
  if (std::strcmp(Command, "opts") == 0) {
    core::JumpStartOptions Opts;
    for (int I = 2; I < argc; ++I) {
      support::Status S = Opts.parseAssignments(argv[I]);
      if (!S.ok()) {
        std::fprintf(stderr, "jsvm: %s\n", S.str().c_str());
        return 1;
      }
    }
    std::vector<std::string> Diags = Opts.validate();
    for (const std::string &D : Diags)
      std::fprintf(stderr, "jsvm: invalid options: %s\n", D.c_str());
    for (const auto &[Key, Value] : Opts.toKeyValues())
      std::printf("%s=%s\n", Key.c_str(), Value.c_str());
    return Diags.empty() ? 0 : 1;
  }

  // `fuzz` runs the differential conformance sweep: generated programs
  // executed under the full config matrix (interpreter vs JIT tiers vs
  // Jump-Start consumer boot), mismatches shrunk to reproducers.
  if (std::strcmp(Command, "fuzz") == 0) {
    jumpstart::testing::DiffParams P;
    bool Full = false;
    int64_t Skew = 0;
    for (int I = 2; I < argc; ++I) {
      auto IntArg = [&](int64_t &Out) {
        if (I + 1 >= argc)
          return false;
        Out = std::strtoll(argv[++I], nullptr, 10);
        return true;
      };
      int64_t V = 0;
      if (std::strcmp(argv[I], "--programs") == 0 && IntArg(V))
        P.NumPrograms = static_cast<uint32_t>(V);
      else if (std::strcmp(argv[I], "--seed") == 0 && IntArg(V))
        P.Seed = static_cast<uint64_t>(V);
      else if (std::strcmp(argv[I], "--requests") == 0 && IntArg(V))
        P.RequestsPerProgram = static_cast<uint32_t>(V);
      else if (std::strcmp(argv[I], "--skew") == 0 && IntArg(V))
        Skew = V;
      else if (std::strcmp(argv[I], "--full") == 0)
        Full = true;
      else if (std::strcmp(argv[I], "--repro") == 0 && I + 1 < argc)
        P.ReproDir = argv[++I];
      else
        return usage();
    }
    P.Matrix = Full ? jumpstart::testing::fullMatrix()
                    : jumpstart::testing::smokeMatrix();
    if (Skew != 0) {
      // Self-test mode: inject an interpreter divergence the oracle must
      // catch (nonzero exit proves detection works end to end).
      jumpstart::testing::ExecConfig C = jumpstart::testing::skewConfig();
      C.IntAddSkew = Skew;
      P.Matrix = {P.Matrix.front(), C};
    }
    jumpstart::testing::DiffRunner Runner(std::move(P));
    jumpstart::testing::DiffStats Stats = Runner.run();
    for (const jumpstart::testing::Mismatch &M : Stats.Mismatches) {
      std::fprintf(stderr,
                   "jsvm: MISMATCH seed=%llu %s vs %s: %s\n",
                   static_cast<unsigned long long>(M.ProgramSeed),
                   M.ConfigA.c_str(), M.ConfigB.c_str(), M.What.c_str());
      if (!M.ArtifactPath.empty())
        std::fprintf(stderr, "jsvm:   reproducer (%zu lines): %s\n",
                     M.ShrunkLines, M.ArtifactPath.c_str());
    }
    std::printf("fuzz: %u programs, %u runs, %u jumpstart boots, "
                "%u digest comparisons, %zu mismatches, "
                "sweep digest %016llx\n",
                Stats.Programs, Stats.Runs, Stats.JumpStartBoots,
                Stats.DigestComparisons, Stats.Mismatches.size(),
                static_cast<unsigned long long>(Stats.SweepDigest));
    return Stats.Mismatches.empty() ? 0 : 1;
  }

  if (argc < 3)
    return usage();
  const char *Path = argv[2];

  bc::Repo Repo;
  if (!compileFile(Path, Repo))
    return 1;

  if (std::strcmp(Command, "check") == 0) {
    std::printf("%s: ok (%zu functions, %zu classes, %zu bytecodes)\n",
                Path, Repo.numFuncs(), Repo.numClasses(),
                Repo.totalBytecode());
    return 0;
  }

  if (std::strcmp(Command, "disasm") == 0) {
    if (argc >= 4) {
      bc::FuncId F = Repo.findFunction(argv[3]);
      if (!F.valid()) {
        std::fprintf(stderr, "jsvm: no function '%s'\n", argv[3]);
        return 1;
      }
      std::printf("%s", bc::disasmFunction(Repo, Repo.func(F)).c_str());
      return 0;
    }
    for (const bc::Function &F : Repo.funcs())
      std::printf("%s\n", bc::disasmFunction(Repo, F).c_str());
    return 0;
  }

  if (std::strcmp(Command, "jit") == 0) {
    // Retranslate-all over the file's functions with a synthetic
    // every-block-hot profile, lowered on --threads host workers.  The
    // summary is identical for any worker count (the pool only moves
    // wall-clock time); this is the CLI face of the --threads knob the
    // bench binaries expose.
    uint32_t Threads = 1;
    for (int I = 3; I < argc; ++I) {
      if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
        char *End = nullptr;
        Threads = static_cast<uint32_t>(std::strtoul(argv[++I], &End, 10));
        if (End == nullptr || *End != '\0')
          return usage();
      } else {
        return usage();
      }
    }
    jit::Jit J(Repo, jit::JitConfig());
    for (uint32_t F = 0; F < Repo.numFuncs(); ++F) {
      if (Repo.func(bc::FuncId(F)).Code.empty())
        continue;
      profile::FuncProfile &P = J.profileStore().getOrCreate(F);
      P.EntryCount = 1000;
      P.BlockCounts.assign(
          J.blockCache().blocks(bc::FuncId(F)).numBlocks(), 1000);
    }
    std::unique_ptr<support::ThreadPool> Pool;
    if (Threads > 1)
      Pool = std::make_unique<support::ThreadPool>(Threads);
    jit::ParallelRetranslate Driver(J, Pool.get());
    jit::RetranslateStats Stats = Driver.run(1e12);
    std::printf("%s: %zu functions compiled, %zu translations placed, "
                "%llu code bytes (%u host workers)\n",
                Path, Stats.FunctionsCompiled, Stats.TranslationsPlaced,
                static_cast<unsigned long long>(J.totalCodeBytes()),
                Stats.HostWorkers);
    std::printf("virtual cost: %.1f compile + %.1f relocate units\n",
                Stats.CompileUnits, Stats.RelocateUnits);
    return 0;
  }

  if (std::strcmp(Command, "run") == 0) {
    const char *Entry = argc >= 4 ? argv[3] : "main";
    bc::FuncId F = Repo.findFunction(Entry);
    if (!F.valid()) {
      std::fprintf(stderr, "jsvm: no function '%s'\n", Entry);
      return 1;
    }
    std::vector<runtime::Value> Args;
    for (uint32_t I = 0; I < Repo.func(F).NumParams; ++I) {
      int64_t V = (argc >= 5 && I == 0) ? std::strtoll(argv[4], nullptr, 10)
                                        : 0;
      Args.push_back(runtime::Value::integer(V));
    }

    runtime::ClassTable Classes(Repo);
    runtime::Heap Heap;
    interp::Interpreter Interp(Repo, Classes, Heap,
                               runtime::BuiltinTable::standard());
    std::string Output;
    Interp.setOutput(&Output);
    interp::InterpResult R = Interp.call(F, Args);
    if (!Output.empty())
      std::printf("%s", Output.c_str());
    if (!Output.empty() && Output.back() != '\n')
      std::printf("\n");
    std::printf("-> %s   [%llu bytecodes, %llu faults%s]\n",
                runtime::toString(R.Ret).c_str(),
                static_cast<unsigned long long>(R.Steps),
                static_cast<unsigned long long>(R.Faults),
                R.Ok ? "" : ", ABORTED");
    return R.Ok ? 0 : 1;
  }

  return usage();
}
