//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: the whole Jump-Start pipeline in one page.
///
///  1. Generate and compile a small synthetic website.
///  2. Run a *seeder* server: it serves traffic, collects the JIT profile
///     (tier-1 counters, call targets, types) plus the instrumented
///     optimized-code profile (Vasm counters, tier-2 call arcs, property
///     accesses), validates, and publishes a package.
///  3. Boot a *consumer* with the package: it precompiles all optimized
///     code before serving.
///  4. Compare warmup with and without Jump-Start.
///
//===----------------------------------------------------------------------===//

#include "core/Consumer.h"
#include "core/Seeder.h"
#include "fleet/ServerSim.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace jumpstart;

int main() {
  // 1. The application: a synthetic website, offline-compiled to bytecode.
  fleet::WorkloadParams WP;
  WP.NumHelpers = 400;
  WP.NumClasses = 48;
  WP.NumEndpoints = 24;
  WP.NumUnits = 30;
  std::unique_ptr<fleet::Workload> W = fleet::generateWorkload(WP);
  std::printf("website: %zu funcs, %zu classes, %zu units, %zu bytecodes\n",
              W->Repo.numFuncs(), W->Repo.numClasses(), W->Repo.numUnits(),
              W->Repo.totalBytecode());

  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), /*Seed=*/42);
  vm::ServerConfig Config;

  // 2. Seeder: collect + validate + publish (paper Figure 3b).
  core::PackageManager Manager;
  core::JumpStartOptions Opts;
  core::SeederParams SP;
  SP.Requests = 400;
  core::SeederOutcome Seeded =
      core::runSeederWorkflow(*W, Traffic, Config, Opts, Manager, SP);
  if (!Seeded.Published) {
    std::printf("seeder failed: %s\n", Seeded.Result.str().c_str());
    return 1;
  }
  std::printf("seeder: published a %zu-byte package (%zu funcs profiled, "
              "%llu samples)\n",
              Seeded.PackageBytes, Seeded.Package.numProfiledFuncs(),
              static_cast<unsigned long long>(
                  Seeded.Package.totalSamples()));
  std::printf("manifest: release %u, shelf #%u, checksum %016llx, "
              "%zu seeder(s)\n",
              Seeded.Manifest.Id.Release, Seeded.Manifest.Id.Index,
              static_cast<unsigned long long>(Seeded.Manifest.Checksum),
              Seeded.Manifest.Seeders.size());

  // 3. Consumer boot (paper Figure 3c).
  core::ConsumerParams CP;
  core::ConsumerOutcome Consumer =
      core::startConsumer(*W, Config, Opts, Manager, CP);
  std::printf("consumer: jump-start=%s, init=%.2fs (deserialize %.2fs, "
              "preload %.2fs, precompile %.2fs, warmup-reqs %.2fs)\n",
              Consumer.UsedJumpStart ? "yes" : "no",
              Consumer.Init.TotalSeconds,
              Consumer.Init.DeserializeSeconds,
              Consumer.Init.PreloadSeconds,
              Consumer.Init.PrecompileSeconds,
              Consumer.Init.WarmupRequestSeconds);

  // 4. Warmup comparison (a miniature Figure 4).
  fleet::ServerSimParams SimP;
  SimP.DurationSeconds = 240;
  SimP.OfferedRps = 300;
  fleet::WarmupResult NoJs = fleet::runWarmup(*W, Traffic, Config, SimP);
  fleet::WarmupResult Js =
      fleet::runWarmup(*W, Traffic, Config, SimP, &Seeded.Package);
  std::printf("capacity loss over %.0fs: no-jump-start %.1f%%, "
              "jump-start %.1f%% (reduction %.1f%%)\n",
              SimP.DurationSeconds, 100 * NoJs.CapacityLossFraction,
              100 * Js.CapacityLossFraction,
              100 * (1 - Js.CapacityLossFraction /
                             NoJs.CapacityLossFraction));
  std::printf("phases without jump-start: serve@%.0fs A=%.0fs B=%.0fs "
              "C=%.0fs D=%.0fs\n",
              NoJs.Phases.ServeStart, NoJs.Phases.ProfilingEnd,
              NoJs.Phases.RelocationStart, NoJs.Phases.RelocationEnd,
              NoJs.Phases.JitingStopped);
  return 0;
}
