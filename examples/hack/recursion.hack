// Recursion showcase: a direct self-recursive function and a mutually
// recursive pair.  Both collapse into multi-round strongly-connected
// components in the whole-program call graph; their return summaries
// reach the fixpoint via the bounded-iteration widening path.
function fact($n) {
  if ($n < 2) { return 1; }
  return $n * fact($n - 1);
}

function isEven($n) {
  if ($n == 0) { return 1; }
  return isOdd($n - 1);
}

function isOdd($n) {
  if ($n == 0) { return 0; }
  return isEven($n - 1);
}

function endpoint0($n) {
  $bounded = $n - ($n / 9) * 9;
  return fact($bounded) + isEven($bounded);
}
