// Devirtualization showcase: a single class implementing each method
// name, so every virtual site is proven-monomorphic by the whole-program
// analysis (UniqueMethod) and receivers allocated in-function carry an
// exact class (ExactRecv).
class Accumulator {
  prop $total;
  prop $count;
  method reset() {
    $this->total = 0;
    $this->count = 0;
    return $this;
  }
  method add($x) {
    $this->total = $this->total + $x;
    $this->count = $this->count + 1;
    return $this->total;
  }
  method mean() {
    if ($this->count == 0) { return 0; }
    return $this->total / $this->count;
  }
}

function fill($n) {
  $a = new Accumulator()->reset();
  $i = 0;
  while ($i < $n) {
    $a->add($i * $i);
    $i = $i + 1;
  }
  return $a;
}

function endpoint0($n) {
  $bounded = $n - ($n / 7) * 7;
  $a = fill($bounded + 3);
  return $a->mean();
}
