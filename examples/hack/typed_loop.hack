// Type-proof showcase: every operand below is statically proven integer
// or vec, so the analysis proves the masks profile-placed type guards
// would otherwise check at runtime (TypeProven elisions), and container
// sites keep a proven vec operand.
function sumSquares($n) {
  $v = vec[1, 2, 3];
  $i = 0;
  $acc = 0;
  while ($i < $n) {
    $acc = $acc + $i * $i + $v[$i - ($i / 3) * 3];
    $i = $i + 1;
  }
  return $acc;
}

function endpoint0($n) {
  $bounded = $n - ($n / 11) * 11;
  return sumSquares($bounded + 2);
}
