//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jslint: the static-analysis driver.
///
///   jslint [--json] <file.hack>...    compile the sources and lint them
///   jslint [--json] --workload [seed] lint a generated fleet workload
///   jslint [--json] --package <pkg> <file.hack>...
///                                     lint a profile package against the
///                                     repo compiled from the sources
///   jslint [--json] --gen <n> [seed]  soundness sweep: lint <n> generated
///                                     programs, run each on a full-JIT
///                                     server with proven-guard elision
///                                     on, and re-prove every elision the
///                                     JIT performed
///
/// Every function runs pass zero (structural verification) plus the
/// abstract-type dataflow passes; --package additionally runs the deep
/// package lint with call-graph cross-checks; --gen gates the
/// whole-program analysis (CHECK_ANALYZE in ci/check.sh).
///
/// --json emits one JSON object on stdout with a stable schema:
///   {"findings": [{"pass", "severity", "func", "instr", "message"}...],
///    "functions": N, "errors": N,
///    "analysis": {"call_graph_edges", "components",
///                 "recursive_components", "proven_calls", "proven_masks",
///                 "ic_seeds", "guards_elided", "ics_seeded", "programs"}}
///
/// Exit status: 0 clean (warnings allowed), 1 any error-severity
/// diagnostic, 2 usage/compile failure.
///
//===----------------------------------------------------------------------===//

#include "analysis/Linter.h"
#include "core/Consumer.h"
#include "fleet/WorkloadGen.h"
#include "frontend/Compiler.h"
#include "profile/PackageIo.h"
#include "runtime/Builtins.h"
#include "support/StringUtil.h"
#include "testing/DiffRunner.h"
#include "testing/ProgramGen.h"
#include "vm/Server.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace jumpstart;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: jslint [--json] <file.hack>...\n"
               "       jslint [--json] --workload [seed]\n"
               "       jslint [--json] --package <pkg-file> <file.hack>...\n"
               "       jslint [--json] --gen <num-programs> [seed]\n");
  return 2;
}

bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Buffer[64 * 1024];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.append(Buffer, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

bool compileFiles(char **Paths, int Count, bc::Repo &Repo) {
  const runtime::BuiltinTable &Builtins = runtime::BuiltinTable::standard();
  for (int I = 0; I < Count; ++I) {
    std::string Source;
    if (!readFile(Paths[I], Source)) {
      std::fprintf(stderr, "jslint: cannot read '%s'\n", Paths[I]);
      return false;
    }
    std::vector<std::string> Errors =
        frontend::compileUnit(Repo, Builtins, Paths[I], Source);
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s\n", E.c_str());
    if (!Errors.empty())
      return false;
  }
  return true;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

/// Collected output: renders human lines immediately, or accumulates the
/// JSON findings array for one final print.
class Reporter {
public:
  explicit Reporter(bool Json) : Json(Json) {}

  void add(const bc::Repo &R, const std::vector<analysis::Diagnostic> &Diags) {
    for (const analysis::Diagnostic &D : Diags) {
      if (D.Sev == analysis::Severity::Error)
        ++Errors;
      if (!Json) {
        std::printf("%s\n", D.str(&R).c_str());
        continue;
      }
      std::string Func;
      if (D.Func.valid() && D.Func.raw() < R.numFuncs())
        Func = R.func(D.Func).Name;
      int64_t Instr = D.Instr == analysis::Diagnostic::kNone
                          ? -1
                          : static_cast<int64_t>(D.Instr);
      Findings.push_back(strFormat(
          "{\"pass\": \"%s\", \"severity\": \"%s\", \"func\": \"%s\", "
          "\"instr\": %lld, \"message\": \"%s\"}",
          analysis::diagKindName(D.Kind), analysis::severityName(D.Sev),
          jsonEscape(Func).c_str(), static_cast<long long>(Instr),
          jsonEscape(D.Message).c_str()));
    }
  }

  /// A harness-level finding with no repo location (compile failures in
  /// the --gen sweep).
  void addRaw(const char *Pass, const std::string &Message) {
    ++Errors;
    if (!Json) {
      std::printf("error[%s]: %s\n", Pass, Message.c_str());
      return;
    }
    Findings.push_back(strFormat(
        "{\"pass\": \"%s\", \"severity\": \"error\", \"func\": \"\", "
        "\"instr\": -1, \"message\": \"%s\"}",
        Pass, jsonEscape(Message).c_str()));
  }

  size_t errors() const { return Errors; }
  const std::vector<std::string> &findings() const { return Findings; }

private:
  bool Json;
  size_t Errors = 0;
  std::vector<std::string> Findings;
};

/// Whole-program analysis totals for the summary/"analysis" JSON object.
struct AnalysisTotals {
  analysis::WholeProgram::Stats WP;
  uint64_t GuardsElided = 0;
  uint64_t ICsSeeded = 0;
  uint32_t Programs = 0;

  void accumulate(const analysis::WholeProgram::Stats &S) {
    WP.Functions += S.Functions;
    WP.Edges += S.Edges;
    WP.Components += S.Components;
    WP.RecursiveComponents += S.RecursiveComponents;
    WP.ProvenCalls += S.ProvenCalls;
    WP.ProvenMasks += S.ProvenMasks;
    WP.ICSeeds += S.ICSeeds;
    ++Programs;
  }
};

/// The --gen soundness sweep over one generated program: compile, run a
/// full-JIT server with proven-guard elision enabled, then re-prove every
/// elision the lowering recorded (analysis::lintTranslations).
void sweepProgram(uint64_t Seed, Reporter &Rep, AnalysisTotals &Totals) {
  testing::GenParams G;
  G.Seed = Seed;
  testing::GenProgram Prog = testing::generateProgram(G);
  fleet::Workload W;
  support::Status Compiled =
      testing::DiffRunner::compileProgram(Prog.render(), W);
  if (!Compiled.ok()) {
    Rep.addRaw("structural", strFormat("program seed %llu: %s",
                                       static_cast<unsigned long long>(Seed),
                                       Compiled.message().c_str()));
    return;
  }

  vm::ServerConfig SC;
  SC.Cores = 4;
  SC.JitWorkerCores = 1;
  SC.WarmupEndpoints.clear();
  SC.Interp.StepBudget = 2'000'000;
  SC.Jit.ProfileRequestTarget = 4;
  SC.Jit.ProvenGuardElision = true;
  core::attachProvenFacts(SC, W.Repo);
  SC.Name = "jslint-gen";
  vm::Server S(W.Repo, SC, /*Seed=*/7);
  S.startup();
  const uint32_t NumRequests = 18;
  for (uint32_t Rq = 0; Rq < NumRequests; ++Rq) {
    S.executeRequest(W.Endpoints[Rq % W.Endpoints.size()],
                     {runtime::Value::integer(static_cast<int64_t>(
                         (Rq * 2654435761ull) & 0xFFFFFull))});
    S.grantJitTime(16.0);
  }

  analysis::Linter Linter(
      W.Repo,
      static_cast<uint32_t>(runtime::BuiltinTable::standard().size()));
  Totals.accumulate(Linter.wholeProgram().stats());
  Totals.GuardsElided += S.theJit().guardsElided();
  Totals.ICsSeeded += S.icsSeeded();

  // Only elision/summary soundness gates the sweep; generated programs
  // legitimately contain always-faulting expressions (TypeError findings
  // are true positives there, asserted separately by AnalysisTest).
  std::vector<analysis::Diagnostic> Sound;
  for (analysis::Diagnostic &D :
       Linter.lintTranslations(S.theJit().transDb()))
    if (D.Sev == analysis::Severity::Error)
      Sound.push_back(std::move(D));
  Rep.add(W.Repo, Sound);
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  bool Json = false;
  int Arg = 1;
  if (std::strcmp(argv[Arg], "--json") == 0) {
    Json = true;
    ++Arg;
    if (Arg >= argc)
      return usage();
  }
  Reporter Rep(Json);

  auto PrintJson = [&](size_t NumFuncs, const AnalysisTotals &Totals) {
    std::printf("{\n  \"findings\": [");
    for (size_t I = 0; I < Rep.findings().size(); ++I)
      std::printf("%s\n    %s", I ? "," : "", Rep.findings()[I].c_str());
    std::printf("%s],\n", Rep.findings().empty() ? "" : "\n  ");
    std::printf("  \"functions\": %zu,\n  \"errors\": %zu,\n", NumFuncs,
                Rep.errors());
    std::printf(
        "  \"analysis\": {\"call_graph_edges\": %zu, \"components\": %zu, "
        "\"recursive_components\": %zu, \"proven_calls\": %zu, "
        "\"proven_masks\": %zu, \"ic_seeds\": %zu, \"guards_elided\": %llu, "
        "\"ics_seeded\": %llu, \"programs\": %u}\n}\n",
        Totals.WP.Edges, Totals.WP.Components, Totals.WP.RecursiveComponents,
        Totals.WP.ProvenCalls, Totals.WP.ProvenMasks, Totals.WP.ICSeeds,
        static_cast<unsigned long long>(Totals.GuardsElided),
        static_cast<unsigned long long>(Totals.ICsSeeded), Totals.Programs);
  };

  // --gen: the generated-corpus soundness sweep.
  if (std::strcmp(argv[Arg], "--gen") == 0) {
    if (Arg + 1 >= argc)
      return usage();
    uint64_t N = std::strtoull(argv[Arg + 1], nullptr, 10);
    uint64_t Seed = Arg + 2 < argc
                        ? std::strtoull(argv[Arg + 2], nullptr, 10)
                        : 1;
    if (N == 0)
      return usage();
    AnalysisTotals Totals;
    for (uint64_t I = 0; I < N; ++I)
      sweepProgram(Seed * 1'000'003ull + I, Rep, Totals);
    if (Json)
      PrintJson(0, Totals);
    else
      std::printf("jslint: %u programs, %llu guards elided, %llu ICs "
                  "seeded, %zu error(s)\n",
                  Totals.Programs,
                  static_cast<unsigned long long>(Totals.GuardsElided),
                  static_cast<unsigned long long>(Totals.ICsSeeded),
                  Rep.errors());
    return Rep.errors() ? 1 : 0;
  }

  const char *PackagePath = nullptr;
  std::unique_ptr<fleet::Workload> Generated;
  bc::Repo SourceRepo;
  const bc::Repo *Repo = &SourceRepo;

  if (std::strcmp(argv[Arg], "--package") == 0) {
    if (Arg + 2 >= argc)
      return usage();
    PackagePath = argv[Arg + 1];
    Arg += 2;
  }

  if (Arg < argc && std::strcmp(argv[Arg], "--workload") == 0) {
    fleet::WorkloadParams P;
    if (Arg + 1 < argc)
      P.Seed = std::strtoull(argv[Arg + 1], nullptr, 10);
    Generated = fleet::generateWorkload(P);
    Repo = &Generated->Repo;
  } else {
    if (Arg >= argc)
      return usage();
    if (!compileFiles(argv + Arg, argc - Arg, SourceRepo))
      return 2;
  }

  analysis::Linter Linter(
      *Repo, static_cast<uint32_t>(runtime::BuiltinTable::standard().size()));

  Rep.add(*Repo, Linter.lintRepo());

  if (PackagePath) {
    profile::ProfilePackage Pkg;
    support::Status Loaded = profile::loadPackageFile(PackagePath, Pkg);
    if (!Loaded.ok()) {
      std::fprintf(stderr, "jslint: cannot load package '%s': %s\n",
                   PackagePath, Loaded.str().c_str());
      return 1;
    }
    Rep.add(*Repo, Linter.lintPackage(Pkg, /*CrossCheckCallGraph=*/true));
  }

  AnalysisTotals Totals;
  Totals.accumulate(Linter.wholeProgram().stats());
  if (Json) {
    PrintJson(Repo->numFuncs(), Totals);
  } else {
    analysis::WholeProgram::Stats St = Linter.wholeProgram().stats();
    std::printf("jslint: %zu functions, %zu call edges, %zu components "
                "(%zu recursive), %zu proven facts, %zu error(s)\n",
                Repo->numFuncs(), St.Edges, St.Components,
                St.RecursiveComponents,
                St.ProvenCalls + St.ProvenMasks + St.ICSeeds, Rep.errors());
  }
  return Rep.errors() ? 1 : 0;
}
