//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jslint: the static-analysis driver.
///
///   jslint <file.hack>...            compile the sources and lint them
///   jslint --workload [seed]         lint a generated fleet workload
///   jslint --package <pkg> <file>... lint a profile package against the
///                                    repo compiled from the sources
///
/// Every function runs pass zero (structural verification) plus the
/// abstract-type dataflow passes; --package additionally runs the deep
/// package lint.  Exit status: 0 clean (warnings allowed), 1 any
/// error-severity diagnostic, 2 usage/compile failure.
///
//===----------------------------------------------------------------------===//

#include "analysis/Linter.h"
#include "fleet/WorkloadGen.h"
#include "frontend/Compiler.h"
#include "profile/PackageIo.h"
#include "runtime/Builtins.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace jumpstart;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: jslint <file.hack>...\n"
               "       jslint --workload [seed]\n"
               "       jslint --package <pkg-file> <file.hack>...\n");
  return 2;
}

bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Buffer[64 * 1024];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.append(Buffer, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

bool compileFiles(char **Paths, int Count, bc::Repo &Repo) {
  const runtime::BuiltinTable &Builtins = runtime::BuiltinTable::standard();
  for (int I = 0; I < Count; ++I) {
    std::string Source;
    if (!readFile(Paths[I], Source)) {
      std::fprintf(stderr, "jslint: cannot read '%s'\n", Paths[I]);
      return false;
    }
    std::vector<std::string> Errors =
        frontend::compileUnit(Repo, Builtins, Paths[I], Source);
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s\n", E.c_str());
    if (!Errors.empty())
      return false;
  }
  return true;
}

/// Prints \p Diags; \returns the number of error-severity ones.
size_t report(const bc::Repo &R,
              const std::vector<analysis::Diagnostic> &Diags) {
  for (const analysis::Diagnostic &D : Diags)
    std::printf("%s\n", D.str(&R).c_str());
  return analysis::countErrors(Diags);
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  const char *PackagePath = nullptr;
  std::unique_ptr<fleet::Workload> Generated;
  bc::Repo SourceRepo;
  const bc::Repo *Repo = &SourceRepo;

  int Arg = 1;
  if (std::strcmp(argv[Arg], "--package") == 0) {
    if (argc < 4)
      return usage();
    PackagePath = argv[Arg + 1];
    Arg += 2;
  }

  if (Arg < argc && std::strcmp(argv[Arg], "--workload") == 0) {
    fleet::WorkloadParams P;
    if (Arg + 1 < argc)
      P.Seed = std::strtoull(argv[Arg + 1], nullptr, 10);
    Generated = fleet::generateWorkload(P);
    Repo = &Generated->Repo;
  } else {
    if (Arg >= argc)
      return usage();
    if (!compileFiles(argv + Arg, argc - Arg, SourceRepo))
      return 2;
  }

  analysis::Linter Linter(
      *Repo, static_cast<uint32_t>(runtime::BuiltinTable::standard().size()));

  size_t Errors = report(*Repo, Linter.lintRepo());

  if (PackagePath) {
    profile::ProfilePackage Pkg;
    support::Status Loaded = profile::loadPackageFile(PackagePath, Pkg);
    if (!Loaded.ok()) {
      std::fprintf(stderr, "jslint: cannot load package '%s': %s\n",
                   PackagePath, Loaded.str().c_str());
      return 1;
    }
    Errors += report(*Repo, Linter.lintPackage(Pkg));
  }

  std::printf("jslint: %zu functions, %zu error(s)\n", Repo->numFuncs(),
              Errors);
  return Errors ? 1 : 0;
}
