//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tour of the VM substrate as a standalone library: compile mini-Hack
/// source, verify it, disassemble it, run it in the interpreter, and watch
/// the multi-tier JIT take over -- no fleet machinery involved.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Disasm.h"
#include "bytecode/Verifier.h"
#include "frontend/Compiler.h"
#include "jit/Jit.h"
#include "jit/Recorders.h"
#include "interp/Interpreter.h"
#include "runtime/ValueOps.h"

#include <cstdio>

using namespace jumpstart;

static const char *kSource = R"(
// A tiny program in the mini-Hack dialect.
class Counter {
  prop $total;
  prop $step;
  method init($step) {
    $this->total = 0;
    $this->step = $step;
    return $this;
  }
  method bump() {
    $this->total = $this->total + $this->step;
    return $this->total;
  }
}

function fib($n) {
  if ($n < 2) { return $n; }
  return fib($n - 1) + fib($n - 2);
}

function main($n) {
  $c = new Counter()->init(3);
  $i = 0;
  $msg = "";
  while ($i < $n) {
    $c->bump();
    $i = $i + 1;
  }
  $msg = "fib(" . $n . ")=" . fib($n) . " total=" . $c->total;
  print($msg);
  return $c->total;
}
)";

int main() {
  // 1. Offline compilation: source -> bytecode repo.
  bc::Repo Repo;
  const runtime::BuiltinTable &Builtins = runtime::BuiltinTable::standard();
  std::vector<std::string> Errors =
      frontend::compileUnit(Repo, Builtins, "tour.hack", kSource);
  for (const std::string &E : Errors)
    std::printf("compile error: %s\n", E.c_str());
  if (!Errors.empty())
    return 1;
  std::vector<std::string> VerifyErrors =
      bc::verifyRepo(Repo, Builtins.size());
  for (const std::string &E : VerifyErrors)
    std::printf("verify error: %s\n", E.c_str());
  if (!VerifyErrors.empty())
    return 1;
  std::printf("compiled and verified: %zu functions, %zu classes\n\n",
              Repo.numFuncs(), Repo.numClasses());

  // 2. Inspect the bytecode.
  bc::FuncId Fib = Repo.findFunction("fib");
  std::printf("%s\n", bc::disasmFunction(Repo, Repo.func(Fib)).c_str());

  // 3. Execute in the interpreter.
  runtime::ClassTable Classes(Repo);
  runtime::Heap Heap;
  interp::Interpreter Interp(Repo, Classes, Heap, Builtins);
  std::string Output;
  Interp.setOutput(&Output);

  bc::FuncId Main = Repo.findFunction("main");
  interp::InterpResult R =
      Interp.call(Main, {runtime::Value::integer(10)});
  std::printf("main(10) -> %s   [%llu bytecodes, %llu faults]\n",
              runtime::toString(R.Ret).c_str(),
              static_cast<unsigned long long>(R.Steps),
              static_cast<unsigned long long>(R.Faults));
  std::printf("printed: \"%s\"\n\n", Output.c_str());

  // 4. Let the multi-tier JIT warm up on it.
  jit::JitConfig Config;
  Config.ProfileRequestTarget = 5;
  jit::Jit Jit(Repo, Config);
  jit::JitProfilingHooks Hooks(Jit);
  Interp.setCallbacks(&Hooks);
  for (int I = 0; I < 8; ++I) {
    Jit.onFuncEntered(Main);
    Jit.onFuncEntered(Fib);
    Heap.reset();
    Output.clear();
    Interp.call(Main, {runtime::Value::integer(12)});
    Jit.onRequestFinished();
    while (Jit.hasPendingWork())
      Jit.runJitWork(1e9);
  }
  std::printf("JIT phase after 8 requests: %s\n",
              jit::jitPhaseName(Jit.phase()));
  for (bc::FuncId F : {Main, Fib}) {
    const jit::Translation *T = Jit.transDb().best(F);
    std::printf("  %-14s -> %s translation, %.2f cost-units/bytecode "
                "(interpreter: %.0f)\n",
                Repo.func(F).Name.c_str(),
                T ? jit::transKindName(T->Kind) : "no",
                T ? T->CostPerBytecode : 0.0,
                Config.InterpCostPerBytecode);
  }
  std::printf("\ncode cache: %llu bytes of JITed code\n",
              static_cast<unsigned long long>(Jit.totalCodeBytes()));
  return 0;
}
