//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the profile-data package: serialization
/// round trips, corruption rejection, coverage validation, and type
/// observations.
///
//===----------------------------------------------------------------------===//

#include "profile/ProfilePackage.h"
#include "profile/ProfileStore.h"
#include "profile/PackageIo.h"
#include "profile/Validation.h"
#include "support/Hashing.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::profile;

namespace {

/// Builds a representative package exercising all four categories.
ProfilePackage makeSamplePackage() {
  ProfilePackage Pkg;
  Pkg.RepoFingerprint = 0xdeadbeef;
  Pkg.Region = 2;
  Pkg.Bucket = 7;
  Pkg.SeederId = 42;
  Pkg.Preload.Units = {3, 1, 4};
  Pkg.Preload.Strings = {10, 20};
  Pkg.Preload.Classes = {5};

  FuncProfile F;
  F.Func = 17;
  F.EntryCount = 900;
  F.BlockCounts = {900, 850, 50, 0};
  F.CallTargets[3][21] = 800;
  F.CallTargets[3][22] = 100;
  F.ParamTypes.resize(2);
  F.ParamTypes[0].observe(runtime::Type::Int);
  F.ParamTypes[0].observe(runtime::Type::Int);
  F.ParamTypes[1].observe(runtime::Type::Str);
  F.LoadTypes[5].observe(runtime::Type::Obj);
  Pkg.Funcs.push_back(F);

  Pkg.Opt.VasmBlockCounts[17] = {1000, 900, 100, 2};
  Pkg.Opt.CallArcs[{17, 21}] = 750;
  Pkg.Opt.PropAccessCounts["Point::x"] = 5000;
  Pkg.Opt.PropAccessCounts["Point::y"] = 100;
  Pkg.Intermediate.FuncOrder = {17, 21, 22};
  return Pkg;
}

ProfilePackage roundTrip(const ProfilePackage &In, bool *Ok = nullptr) {
  std::vector<uint8_t> Blob = In.serialize();
  ProfilePackage Out;
  bool Success = ProfilePackage::deserialize(Blob, Out);
  if (Ok)
    *Ok = Success;
  else
    EXPECT_TRUE(Success);
  return Out;
}

} // namespace

TEST(ProfilePackage, RoundTripPreservesEverything) {
  ProfilePackage In = makeSamplePackage();
  ProfilePackage Out = roundTrip(In);

  EXPECT_EQ(Out.RepoFingerprint, In.RepoFingerprint);
  EXPECT_EQ(Out.Region, In.Region);
  EXPECT_EQ(Out.Bucket, In.Bucket);
  EXPECT_EQ(Out.SeederId, In.SeederId);
  EXPECT_EQ(Out.Preload.Units, In.Preload.Units);
  EXPECT_EQ(Out.Preload.Strings, In.Preload.Strings);
  EXPECT_EQ(Out.Preload.Classes, In.Preload.Classes);
  ASSERT_EQ(Out.Funcs.size(), 1u);
  const FuncProfile &F = Out.Funcs[0];
  EXPECT_EQ(F.Func, 17u);
  EXPECT_EQ(F.EntryCount, 900u);
  EXPECT_EQ(F.BlockCounts, In.Funcs[0].BlockCounts);
  EXPECT_EQ(F.CallTargets, In.Funcs[0].CallTargets);
  ASSERT_EQ(F.ParamTypes.size(), 2u);
  EXPECT_EQ(F.ParamTypes[0].dominant(), runtime::Type::Int);
  EXPECT_EQ(F.ParamTypes[1].dominant(), runtime::Type::Str);
  ASSERT_EQ(F.LoadTypes.count(5), 1u);
  EXPECT_EQ(F.LoadTypes.at(5).dominant(), runtime::Type::Obj);
  EXPECT_EQ(Out.Opt.VasmBlockCounts, In.Opt.VasmBlockCounts);
  EXPECT_EQ(Out.Opt.CallArcs, In.Opt.CallArcs);
  EXPECT_EQ(Out.Opt.PropAccessCounts, In.Opt.PropAccessCounts);
  EXPECT_EQ(Out.Intermediate.FuncOrder, In.Intermediate.FuncOrder);
}

TEST(ProfilePackage, EmptyPackageRoundTrips) {
  ProfilePackage In;
  ProfilePackage Out = roundTrip(In);
  EXPECT_EQ(Out.Funcs.size(), 0u);
  EXPECT_EQ(Out.totalSamples(), 0u);
}

TEST(ProfilePackage, SerializationIsDeterministic) {
  ProfilePackage A = makeSamplePackage();
  ProfilePackage B = makeSamplePackage();
  EXPECT_EQ(A.serialize(), B.serialize());
}

TEST(ProfilePackage, RejectsBadMagic) {
  std::vector<uint8_t> Blob = makeSamplePackage().serialize();
  Blob[0] ^= 0xff;
  ProfilePackage Out;
  EXPECT_FALSE(ProfilePackage::deserialize(Blob, Out));
}

TEST(ProfilePackage, RejectsTruncation) {
  std::vector<uint8_t> Blob = makeSamplePackage().serialize();
  for (size_t Cut : {Blob.size() - 1, Blob.size() / 2, size_t(9)}) {
    std::vector<uint8_t> Short(Blob.begin(), Blob.begin() + Cut);
    ProfilePackage Out;
    EXPECT_FALSE(ProfilePackage::deserialize(Short, Out))
        << "truncated to " << Cut << " bytes";
  }
}

TEST(ProfilePackage, RejectsBitFlipsAnywhere) {
  // Property test: a checksum-protected package must reject any
  // single-bit corruption of the payload (bit flips in the trailing
  // checksum itself are also rejected, by mismatch).
  std::vector<uint8_t> Blob = makeSamplePackage().serialize();
  Rng R(77);
  int Rejected = 0;
  const int Trials = 60;
  for (int T = 0; T < Trials; ++T) {
    std::vector<uint8_t> Bad = Blob;
    size_t At = R.nextBelow(Bad.size());
    Bad[At] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
    ProfilePackage Out;
    if (!ProfilePackage::deserialize(Bad, Out))
      ++Rejected;
  }
  EXPECT_EQ(Rejected, Trials);
}

TEST(ProfilePackage, RejectsWrongVersion) {
  // Hand-craft an envelope with a bumped version.
  BlobEncoder E;
  E.writeFixed64(ProfilePackage::kMagic);
  E.writeVarint(ProfilePackage::kFormatVersion + 1);
  E.writeVarint(0);
  E.writeFixed64(fnv1a(nullptr, 0));
  ProfilePackage Out;
  EXPECT_FALSE(ProfilePackage::deserialize(E.bytes(), Out));
}

TEST(ProfilePackage, SampleCounting) {
  ProfilePackage Pkg = makeSamplePackage();
  EXPECT_EQ(Pkg.totalSamples(), 900u + 850 + 50);
  EXPECT_EQ(Pkg.numProfiledFuncs(), 1u);
  EXPECT_NE(Pkg.findFunc(17), nullptr);
  EXPECT_EQ(Pkg.findFunc(99), nullptr);
}

TEST(TypeObservationTest, DominantAndMonomorphism) {
  TypeObservation T;
  EXPECT_FALSE(T.isMonomorphic());
  for (int I = 0; I < 99; ++I)
    T.observe(runtime::Type::Int);
  T.observe(runtime::Type::Dbl);
  EXPECT_EQ(T.dominant(), runtime::Type::Int);
  EXPECT_TRUE(T.isMonomorphic(0.95));
  EXPECT_FALSE(T.isMonomorphic(0.999));
  EXPECT_EQ(T.total(), 100u);
}

TEST(TypeObservationTest, Merge) {
  TypeObservation A;
  TypeObservation B;
  A.observe(runtime::Type::Int);
  B.observe(runtime::Type::Str);
  B.observe(runtime::Type::Str);
  A.merge(B);
  EXPECT_EQ(A.total(), 3u);
  EXPECT_EQ(A.dominant(), runtime::Type::Str);
}

TEST(ProfileStoreTest, RoundTripThroughPackage) {
  ProfileStore Store;
  FuncProfile &F = Store.getOrCreate(5);
  F.EntryCount = 10;
  F.BlockCounts = {10, 3};
  Store.getOrCreate(2).EntryCount = 4;

  ProfilePackage Pkg;
  Store.exportToPackage(Pkg);
  ASSERT_EQ(Pkg.Funcs.size(), 2u);
  EXPECT_EQ(Pkg.Funcs[0].Func, 2u) << "export is FuncId-sorted";
  EXPECT_EQ(Pkg.Funcs[1].Func, 5u);

  ProfileStore Loaded;
  ASSERT_TRUE(Loaded.loadFromPackage(Pkg).ok());
  ASSERT_NE(Loaded.find(5), nullptr);
  EXPECT_EQ(Loaded.find(5)->EntryCount, 10u);
  EXPECT_EQ(Loaded.find(99), nullptr);
}

TEST(ProfileStoreTest, LoadRejectsDuplicateFunctions) {
  ProfilePackage Pkg;
  Pkg.Funcs.resize(2);
  Pkg.Funcs[0].Func = 7;
  Pkg.Funcs[1].Func = 7;
  ProfileStore Loaded;
  support::Status S = Loaded.loadFromPackage(Pkg);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), support::StatusCode::CorruptData);
}

TEST(Coverage, PassesGoodPackage) {
  ProfilePackage Pkg = makeSamplePackage();
  CoverageThresholds T;
  T.MinProfiledFuncs = 1;
  T.MinTotalSamples = 100;
  T.MinPackageBytes = 10;
  CoverageResult R = checkCoverage(Pkg, 1000, T);
  EXPECT_TRUE(R.ok()) << (R.Problems.empty() ? "" : R.Problems[0]);
  EXPECT_EQ(R.code(), support::StatusCode::Ok);
}

TEST(Coverage, FlagsUnderProfiledSeeder) {
  ProfilePackage Pkg; // empty: the "drained data center" case
  CoverageThresholds T;
  T.MinProfiledFuncs = 10;
  T.MinTotalSamples = 1000;
  CoverageResult R = checkCoverage(Pkg, 50000, T);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.code(), support::StatusCode::CoverageTooLow);
  EXPECT_GE(R.Problems.size(), 2u);
}

TEST(Coverage, FlagsFingerprintMismatch) {
  ProfilePackage Pkg = makeSamplePackage();
  CoverageThresholds T;
  T.MinProfiledFuncs = 0;
  T.MinTotalSamples = 0;
  T.MinPackageBytes = 0;
  T.ExpectedFingerprint = 0x1234;
  CoverageResult R = checkCoverage(Pkg, 1000, T);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.code(), support::StatusCode::FingerprintMismatch);
  ASSERT_EQ(R.Problems.size(), 1u);
  EXPECT_NE(R.Problems[0].find("fingerprint"), std::string::npos);
}

TEST(Coverage, FlagsTinyPackage) {
  ProfilePackage Pkg = makeSamplePackage();
  CoverageThresholds T;
  T.MinProfiledFuncs = 1;
  T.MinTotalSamples = 1;
  T.MinPackageBytes = 1 << 20;
  CoverageResult R = checkCoverage(Pkg, 100, T);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.code(), support::StatusCode::CoverageTooLow);
}

TEST(PackageIo, SaveLoadRoundTrip) {
  ProfilePackage Pkg = makeSamplePackage();
  std::string Path = ::testing::TempDir() + "/jumpstart_pkg_test.bin";
  ASSERT_TRUE(savePackageFile(Pkg, Path).ok());
  ProfilePackage Out;
  ASSERT_TRUE(loadPackageFile(Path, Out).ok());
  EXPECT_EQ(Out.serialize(), Pkg.serialize());
  std::remove(Path.c_str());
}

TEST(PackageIo, MissingFileFails) {
  ProfilePackage Out;
  EXPECT_FALSE(loadPackageFile("/nonexistent/dir/p.bin", Out).ok());
  EXPECT_FALSE(savePackageFile(Out, "/nonexistent/dir/p.bin").ok());
}

TEST(PackageIo, CorruptFileRejected) {
  ProfilePackage Pkg = makeSamplePackage();
  std::string Path = ::testing::TempDir() + "/jumpstart_pkg_corrupt.bin";
  std::vector<uint8_t> Blob = Pkg.serialize();
  Blob[Blob.size() / 3] ^= 0x10;
  ASSERT_TRUE(writeFileBytes(Path, Blob).ok());
  ProfilePackage Out;
  EXPECT_FALSE(loadPackageFile(Path, Out).ok());
  std::remove(Path.c_str());
}
