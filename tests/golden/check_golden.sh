#!/usr/bin/env bash
# Golden-export check: run a figure binary with --export and byte-diff its
# metrics JSONL against the checked-in golden file.  The figures run on a
# deterministic virtual clock, so the export must be byte-identical on
# every machine and every run; any diff is either a regression or an
# intentional model change (regenerate with:
#   <binary> --export tests/golden/<name> && git diff tests/golden/).
set -euo pipefail

if [ "$#" -ne 2 ]; then
  echo "usage: check_golden.sh <figure-binary> <golden.metrics.jsonl>" >&2
  exit 2
fi
BIN="$1"
GOLDEN="$2"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

"${BIN}" --export "${TMP_DIR}/fresh" > /dev/null

if ! cmp -s "${TMP_DIR}/fresh.metrics.jsonl" "${GOLDEN}"; then
  echo "golden mismatch: $(basename "${BIN}") export differs from ${GOLDEN}" >&2
  diff "${GOLDEN}" "${TMP_DIR}/fresh.metrics.jsonl" | head -20 >&2
  exit 1
fi
echo "golden ok: $(basename "${BIN}") matches ${GOLDEN}"
