//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fast-vs-legacy interpreter engine conformance.
///
/// The fast engine (threaded dispatch, arena frames, interned strings,
/// inline caches, per-run step accounting) must be observably identical
/// to the legacy switch loop: same results, same faults, same step
/// totals, same per-function instruction counts, and -- the strictest
/// check -- the same callback stream event for event, including type
/// observations and simulated heap addresses.  These tests drive both
/// engines over generated programs and hand-written edge cases and diff
/// everything.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "interp/InterpCache.h"
#include "runtime/ValueOps.h"
#include "support/StringUtil.h"
#include "testing/DiffRunner.h"
#include "testing/ProgramGen.h"

#include <gtest/gtest.h>

using namespace jumpstart;
namespace jstest = jumpstart::testing;

namespace {

/// Records every callback invocation as one line, so two engines'
/// observation streams can be diffed as strings.
class RecordingCallbacks : public interp::ExecCallbacks {
public:
  /// Tracing every instruction of every function makes the stream (and
  /// the legacy/fast preamble paths) maximally sensitive.
  bool wantsInstrTrace(bc::FuncId) override { return true; }

  void onFuncEnter(bc::FuncId Callee, bc::FuncId Caller,
                   const runtime::Value *Args, uint32_t NumArgs) override {
    Log += strFormat("enter %u from %u args %u\n", Callee.raw(), Caller.raw(),
                     NumArgs);
    for (uint32_t I = 0; I < NumArgs; ++I)
      Log += strFormat("  arg %s\n", runtime::toString(Args[I]).c_str());
  }
  void onFuncExit(bc::FuncId F) override {
    Log += strFormat("exit %u\n", F.raw());
  }
  void onBlockEnter(bc::FuncId F, uint32_t Block) override {
    Log += strFormat("block %u:%u\n", F.raw(), Block);
  }
  void onInstr(bc::FuncId F, uint32_t InstrIndex, uint32_t Depth) override {
    Log += strFormat("instr %u:%u depth %u\n", F.raw(), InstrIndex, Depth);
  }
  void onVirtualCall(bc::FuncId Caller, uint32_t InstrIndex,
                     bc::FuncId Callee) override {
    Log += strFormat("vcall %u:%u -> %u\n", Caller.raw(), InstrIndex,
                     Callee.raw());
  }
  void onTypeObserve(bc::FuncId F, uint32_t InstrIndex,
                     runtime::Type T) override {
    Log += strFormat("type %u:%u %s\n", F.raw(), InstrIndex,
                     runtime::typeName(T));
  }
  void onPropAccess(bc::ClassId Cls, bc::StringId Prop, bool IsWrite,
                    uint64_t Addr) override {
    Log += strFormat("prop %u.%u w%d @%llu\n", Cls.raw(), Prop.raw(), IsWrite,
                     static_cast<unsigned long long>(Addr));
  }
  void onDataAccess(uint64_t Addr, bool IsWrite) override {
    Log += strFormat("data w%d @%llu\n", IsWrite,
                     static_cast<unsigned long long>(Addr));
  }

  std::string Log;
};

/// Everything one engine produced for one program.
struct EngineTrace {
  std::vector<std::string> Rets;
  std::vector<std::string> Outputs;
  std::vector<uint64_t> Faults;
  std::vector<uint64_t> Steps;
  std::vector<bool> Oks;
  std::vector<uint64_t> InstrCounts;
  std::string CallbackLog;
};

/// Runs \p Requests requests against every endpoint of \p W on a fresh
/// interpreter using \p Engine, with full observation attached.
EngineTrace runEngine(const fleet::Workload &W, interp::InterpEngine Engine,
                      uint32_t Requests, uint64_t StepBudget = 200'000) {
  runtime::ClassTable Classes(W.Repo);
  runtime::Heap Heap;
  interp::InterpOptions Opts;
  Opts.Engine = Engine;
  Opts.StepBudget = StepBudget;
  interp::Interpreter Interp(W.Repo, Classes, Heap,
                             runtime::BuiltinTable::standard(), Opts);
  EngineTrace T;
  RecordingCallbacks CB;
  Interp.setCallbacks(&CB);
  Interp.setInstrCounts(&T.InstrCounts);
  std::string Output;
  Interp.setOutput(&Output);
  for (uint32_t Rq = 0; Rq < Requests; ++Rq) {
    bc::FuncId F = W.Endpoints[Rq % W.Endpoints.size()];
    std::vector<runtime::Value> Args = {runtime::Value::integer(
        static_cast<int64_t>((Rq * 2654435761ull) & 0xFFFFFull))};
    interp::InterpResult R = Interp.call(F, Args);
    T.Rets.push_back(runtime::toString(R.Ret));
    T.Outputs.push_back(Output);
    T.Faults.push_back(R.Faults);
    T.Steps.push_back(R.Steps);
    T.Oks.push_back(R.Ok);
    Heap.reset();
    Output.clear();
  }
  T.CallbackLog = std::move(CB.Log);
  return T;
}

void expectTracesEqual(const EngineTrace &Fast, const EngineTrace &Legacy,
                       uint64_t Seed) {
  ASSERT_EQ(Fast.Rets.size(), Legacy.Rets.size()) << "seed " << Seed;
  for (size_t I = 0; I < Fast.Rets.size(); ++I) {
    EXPECT_EQ(Fast.Rets[I], Legacy.Rets[I]) << "seed " << Seed << " rq " << I;
    EXPECT_EQ(Fast.Outputs[I], Legacy.Outputs[I])
        << "seed " << Seed << " rq " << I;
    EXPECT_EQ(Fast.Faults[I], Legacy.Faults[I])
        << "seed " << Seed << " rq " << I;
    EXPECT_EQ(Fast.Steps[I], Legacy.Steps[I])
        << "seed " << Seed << " rq " << I;
    EXPECT_EQ(Fast.Oks[I], Legacy.Oks[I]) << "seed " << Seed << " rq " << I;
  }
  EXPECT_EQ(Fast.InstrCounts, Legacy.InstrCounts) << "seed " << Seed;
  EXPECT_EQ(Fast.CallbackLog, Legacy.CallbackLog) << "seed " << Seed;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generative cross-engine conformance.
//===----------------------------------------------------------------------===//

TEST(InterpEngine, GeneratedProgramsMatchAcrossEngines) {
  // 50 generated programs, every observable diffed between engines --
  // including the full callback stream (blocks, instr traces, type
  // observations, property and data-access addresses).
  for (uint32_t I = 0; I < 50; ++I) {
    uint64_t Seed = 90'000'001ull + I;
    jstest::GenParams G;
    G.Seed = Seed;
    G.NumClasses = 2;
    jstest::GenProgram Prog = jstest::generateProgram(G);
    fleet::Workload W;
    ASSERT_TRUE(jstest::DiffRunner::compileProgram(Prog.render(), W).ok())
        << "seed " << Seed;
    EngineTrace Fast = runEngine(W, interp::InterpEngine::Fast, 8);
    EngineTrace Legacy = runEngine(W, interp::InterpEngine::Legacy, 8);
    expectTracesEqual(Fast, Legacy, Seed);
  }
}

TEST(InterpEngine, StepBudgetAbortsIdentically) {
  // Tight budgets land the abort mid-program; the per-run bulk charge
  // must abort at exactly the same instruction (same Steps, same
  // truncated callback stream) as the per-instruction legacy check.
  jstest::GenParams G;
  G.Seed = 424242;
  G.MaxStmts = 6;
  jstest::GenProgram Prog = jstest::generateProgram(G);
  fleet::Workload W;
  ASSERT_TRUE(jstest::DiffRunner::compileProgram(Prog.render(), W).ok());
  // First find a budget that actually truncates execution.
  EngineTrace Free = runEngine(W, interp::InterpEngine::Legacy, 2);
  uint64_t FullSteps = Free.Steps[0];
  ASSERT_GT(FullSteps, 4u);
  for (uint64_t Budget : {FullSteps / 2, FullSteps - 1, uint64_t(3),
                          uint64_t(1)}) {
    EngineTrace Fast = runEngine(W, interp::InterpEngine::Fast, 2, Budget);
    EngineTrace Legacy = runEngine(W, interp::InterpEngine::Legacy, 2, Budget);
    expectTracesEqual(Fast, Legacy, Budget);
    EXPECT_FALSE(Fast.Oks[0]) << "budget " << Budget << " did not abort";
  }
}

TEST(InterpEngine, UninstrumentedResultsMatchInstrumented) {
  // The fast engine compiles two instantiations (with and without
  // callback code), and only the plain one contains the fused peephole
  // paths -- so this diff is the fused paths' primary oracle.  Sweep a
  // spread of generated programs, endpoints, and arguments.
  for (uint64_t Seed = 777; Seed < 777 + 30; ++Seed) {
    jstest::GenParams G;
    G.Seed = Seed;
    G.NumClasses = 2;
    jstest::GenProgram Prog = jstest::generateProgram(G);
    fleet::Workload W;
    ASSERT_TRUE(jstest::DiffRunner::compileProgram(Prog.render(), W).ok());

    runtime::ClassTable Classes(W.Repo);
    runtime::Heap Heap;
    interp::Interpreter Interp(W.Repo, Classes, Heap,
                               runtime::BuiltinTable::standard());
    RecordingCallbacks CB;
    for (bc::FuncId Endpoint : W.Endpoints) {
      for (int64_t Arg : {0, 5, 999}) {
        std::vector<runtime::Value> Args = {runtime::Value::integer(Arg)};
        Interp.setCallbacks(nullptr);
        interp::InterpResult Plain = Interp.call(Endpoint, Args);
        // Stringify before reset: a string return points into the heap.
        std::string PlainRet = runtime::toString(Plain.Ret);
        Heap.reset();
        Interp.setCallbacks(&CB);
        interp::InterpResult Observed = Interp.call(Endpoint, Args);
        std::string ObservedRet = runtime::toString(Observed.Ret);
        Heap.reset();
        EXPECT_EQ(PlainRet, ObservedRet)
            << "seed " << Seed << " arg " << Arg;
        EXPECT_EQ(Plain.Steps, Observed.Steps)
            << "seed " << Seed << " arg " << Arg;
        EXPECT_EQ(Plain.Faults, Observed.Faults)
            << "seed " << Seed << " arg " << Arg;
      }
    }
    EXPECT_FALSE(CB.Log.empty());
  }
}

//===----------------------------------------------------------------------===//
// Inline caches.
//===----------------------------------------------------------------------===//

TEST(InterpEngine, InlineCachesHitAndStayCorrect) {
  jstest::TestVm Vm(
      "class P { prop $x; method get() { return $this->x; } }"
      "function main() {"
      "  $p = new P(); $p->x = 0; $i = 0; $t = 0;"
      "  while ($i < 50) { $p->x = $i; $t = $t + $p->get(); $i = $i + 1; }"
      "  return $t;"
      "}");
  ASSERT_TRUE(Vm.ok());
  EXPECT_EQ(Vm.runInt("main"), 49 * 50 / 2);
  const interp::InterpCaches &C = Vm.Interp->caches();
  // Each site misses once (first execution) and hits thereafter.
  EXPECT_GT(C.ICHits, C.ICMisses);
  EXPECT_GT(C.ICMisses, 0u);
}

TEST(InterpEngine, PolymorphicSitesStayCorrect) {
  // One call site alternating between two receiver layouts: the
  // monomorphic cache thrashes but must never dispatch to the wrong
  // method or slot.
  jstest::TestVm Vm(
      "class A { prop $v; method tag() { return 100 + $this->v; } }"
      "class B { prop $v; method tag() { return 200 + $this->v; } }"
      "function poke($o) { return $o->tag(); }"
      "function main() {"
      "  $a = new A(); $a->v = 1; $b = new B(); $b->v = 2;"
      "  $i = 0; $t = 0;"
      "  while ($i < 10) { $t = $t + poke($a) + poke($b); $i = $i + 1; }"
      "  return $t;"
      "}");
  ASSERT_TRUE(Vm.ok());
  EXPECT_EQ(Vm.runInt("main"), 10 * (101 + 202));
}

TEST(InterpEngine, ICStatsAreDeterministic) {
  const char *Source =
      "class K { prop $n; method bump() { $this->n = $this->n + 1; "
      "return $this->n; } }"
      "function main() {"
      "  $k = new K(); $k->n = 0; $i = 0;"
      "  while ($i < 20) { $k->bump(); $i = $i + 1; }"
      "  return $k->n;"
      "}";
  uint64_t Hits[2], Misses[2];
  for (int Round = 0; Round < 2; ++Round) {
    jstest::TestVm Vm(Source);
    ASSERT_TRUE(Vm.ok());
    EXPECT_EQ(Vm.runInt("main"), 20);
    Hits[Round] = Vm.Interp->caches().ICHits;
    Misses[Round] = Vm.Interp->caches().ICMisses;
  }
  EXPECT_EQ(Hits[0], Hits[1]);
  EXPECT_EQ(Misses[0], Misses[1]);
  EXPECT_GT(Hits[0], 0u);
}

//===----------------------------------------------------------------------===//
// Static execution metadata.
//===----------------------------------------------------------------------===//

TEST(InterpEngine, ExecInfoRunLengthsAndMaxStack) {
  jstest::TestVm Vm("function main() {"
                    "  $a = 1 + 2 * 3;"
                    "  if ($a > 5) { $a = $a - 1; }"
                    "  return $a;"
                    "}");
  ASSERT_TRUE(Vm.ok());
  const bc::Function &F = Vm.Repo.func(Vm.Repo.findFunction("main"));
  interp::FuncExecInfo Info = interp::computeExecInfo(F);
  ASSERT_TRUE(Info.HasStaticStack);
  ASSERT_EQ(Info.RunLen.size(), F.Code.size());
  // Every run length is >= 1, and positions followed by a non-run-ending
  // instruction extend the successor's run by exactly one.
  for (size_t I = 0; I < F.Code.size(); ++I) {
    EXPECT_GE(Info.RunLen[I], 1u);
    const bc::OpInfo &OI = bc::opInfo(F.Code[I].Opcode);
    bool Ends = bc::hasFlag(OI.Flags, bc::OpFlags::Branch) ||
                bc::hasFlag(OI.Flags, bc::OpFlags::CondBranch) ||
                bc::hasFlag(OI.Flags, bc::OpFlags::Terminal) ||
                bc::hasFlag(OI.Flags, bc::OpFlags::Call);
    if (Ends || I + 1 == F.Code.size())
      EXPECT_EQ(Info.RunLen[I], 1u) << "at " << I;
    else
      EXPECT_EQ(Info.RunLen[I], Info.RunLen[I + 1] + 1) << "at " << I;
  }
  // `1 + 2 * 3` needs at least three simultaneous stack slots.
  EXPECT_GE(Info.MaxStack, 3u);
  EXPECT_LE(Info.MaxStack, 16u);
}

TEST(InterpEngine, UnsoundFunctionFallsBackToLegacy) {
  // A function whose last instruction can fall off the end fails the
  // static analysis; the fast engine must refuse it (and the interpreter
  // then runs it on the legacy engine, which tolerates anything).
  bc::Function F;
  F.NumLocals = 1;
  bc::Instr Nop;
  Nop.Opcode = bc::Op::Nop;
  F.Code = {Nop};
  interp::FuncExecInfo Info = interp::computeExecInfo(F);
  EXPECT_FALSE(Info.HasStaticStack);

  // Out-of-range local index: same verdict.
  bc::Function G;
  G.NumLocals = 1;
  bc::Instr Get;
  Get.Opcode = bc::Op::GetL;
  Get.ImmA = 9; // only local 0 exists
  bc::Instr Ret;
  Ret.Opcode = bc::Op::RetC;
  G.Code = {Get, Ret};
  interp::FuncExecInfo GInfo = interp::computeExecInfo(G);
  EXPECT_FALSE(GInfo.HasStaticStack);
}

//===----------------------------------------------------------------------===//
// Frame arena.
//===----------------------------------------------------------------------===//

TEST(InterpEngine, FrameArenaLifoReuse) {
  runtime::FrameArena A;
  runtime::FrameArena::Mark M0 = A.mark();
  runtime::Value *F1 = A.alloc(10);
  runtime::FrameArena::Mark M1 = A.mark();
  runtime::Value *F2 = A.alloc(20);
  EXPECT_EQ(F2, F1 + 10) << "nested frames are contiguous";
  A.rewind(M1);
  runtime::Value *F3 = A.alloc(5);
  EXPECT_EQ(F3, F2) << "rewind frees the nested frame's space";
  A.rewind(M0);
  EXPECT_EQ(A.alloc(1), F1) << "full rewind returns to the base";

  // Oversized frames get their own chunk; normal allocation continues
  // after rewind.
  A.clear();
  runtime::Value *Big = A.alloc(100'000);
  Big[99'999] = runtime::Value::integer(7);
  EXPECT_EQ(Big[99'999].I, 7);
  EXPECT_GE(A.numChunks(), 1u);
  A.clear();
  runtime::Value *After = A.alloc(1);
  After[0] = runtime::Value::integer(1);
  EXPECT_EQ(After[0].I, 1);
}

TEST(InterpEngine, DeepRecursionReusesArena) {
  // 60 nested frames, run twice: the second request must not grow the
  // arena (capacity is retained across Heap::reset).
  jstest::TestVm Vm("function f($n) {"
                    "  if ($n <= 0) { return 0; }"
                    "  return $n + f($n - 1);"
                    "}"
                    "function main() { return f(60); }");
  ASSERT_TRUE(Vm.ok());
  EXPECT_EQ(Vm.runInt("main"), 60 * 61 / 2);
  size_t ChunksAfterFirst = Vm.Heap.frameArena().numChunks();
  Vm.Heap.reset();
  EXPECT_EQ(Vm.runInt("main"), 60 * 61 / 2);
  EXPECT_EQ(Vm.Heap.frameArena().numChunks(), ChunksAfterFirst);
}

//===----------------------------------------------------------------------===//
// Allocation accounting (what the benchmark and CI perf smoke measure).
//===----------------------------------------------------------------------===//

TEST(InterpEngine, FastEngineAllocatesLessThanLegacy) {
  // Call-and-string-heavy source: the legacy engine pays two vector
  // allocations per frame plus one VmString per Str execution; the fast
  // engine pays neither after the first request.
  const char *Source =
      "function leaf($i) { $s = \"tag\"; return strlen($s) + $i; }"
      "function main() {"
      "  $i = 0; $t = 0;"
      "  while ($i < 30) { $t = $t + leaf($i); $i = $i + 1; }"
      "  return $t;"
      "}";
  auto AllocsPerRequest = [&](interp::InterpEngine E) {
    jstest::TestVm Vm(Source);
    EXPECT_TRUE(Vm.ok());
    interp::InterpOptions Opts;
    Opts.Engine = E;
    interp::Interpreter Interp(Vm.Repo, Vm.Classes, Vm.Heap, Vm.Builtins,
                               Opts);
    bc::FuncId Main = Vm.Repo.findFunction("main");
    // Warmup request pays one-time costs (interning, metadata).
    Interp.call(Main, {});
    Vm.Heap.reset();
    uint64_t Before = Vm.Heap.hostAllocs();
    Interp.call(Main, {});
    return Vm.Heap.hostAllocs() - Before;
  };
  uint64_t Fast = AllocsPerRequest(interp::InterpEngine::Fast);
  uint64_t Legacy = AllocsPerRequest(interp::InterpEngine::Legacy);
  // Legacy: >= 62 frame vectors + 30 strings.  Fast: 0.
  EXPECT_EQ(Fast, 0u);
  EXPECT_GE(Legacy, 90u);
}

TEST(InterpEngine, InternedStringsKeepLegacyAddressStream) {
  // The interned VmString is reused, but the simulated address space
  // must advance exactly as if each execution allocated afresh --
  // that is what keeps D-cache simulation results engine-independent.
  runtime::Heap Interning;
  runtime::VmString *A = Interning.internString(3, "hello");
  runtime::VmString *B = Interning.internString(3, "hello");
  EXPECT_EQ(A, B) << "same id must intern to the same string";
  EXPECT_EQ(A->Data, "hello");

  runtime::Heap Allocating;
  runtime::VmString *X = Allocating.allocString("hello");
  runtime::VmString *Y = Allocating.allocString("hello");
  EXPECT_NE(X, Y);
  EXPECT_EQ(A->Addr, X->Addr);
  // The probe allocation lands at the same simulated address on both
  // heaps only if the intern *hit* advanced the bump pointer too.
  EXPECT_EQ(Interning.allocString("probe")->Addr,
            Allocating.allocString("probe")->Addr)
      << "an intern hit must still advance the simulated heap";
}
