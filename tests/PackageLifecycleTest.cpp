//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-package lifecycle end to end: multi-seeder merge
/// determinism across arrival orders, delta-release round trips,
/// manifest provenance under release epochs, staleness under drift
/// (core::runDriftSweep), worker-count invariance of deployment-published
/// merges, and the reliability partition invariant when stale packages
/// join the rotation.
///
//===----------------------------------------------------------------------===//

#include "core/Deployment.h"
#include "core/DriftSweep.h"
#include "core/Seeder.h"
#include "fleet/Reliability.h"
#include "fleet/Traffic.h"
#include "profile/PackageDelta.h"
#include "profile/PackageMerge.h"
#include "support/Random.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace jumpstart;
using namespace jumpstart::core;

namespace {

/// Shared fixture: one small site and four genuine seeder packages grown
/// on it (distinct SeederIds, distinct request streams, one fingerprint).
class LifecycleFixture : public ::testing::Test {
protected:
  static constexpr uint32_t kSeeders = 4;

  static void SetUpTestSuite() {
    fleet::WorkloadParams P;
    P.NumHelpers = 120;
    P.NumClasses = 24;
    P.NumEndpoints = 12;
    P.NumUnits = 12;
    W = fleet::generateWorkload(P).release();
    Traffic = new fleet::TrafficModel(*W, fleet::TrafficParams(), 42);
    Seeded = new std::vector<profile::ProfilePackage>();

    PackageManager Manager;
    for (uint32_t I = 0; I < kSeeders; ++I) {
      SeederParams SP;
      SP.SeederId = I + 1;
      SP.Requests = 120;
      SP.Seed = 5 + I;
      SeederOutcome Out = runSeederWorkflow(*W, *Traffic, baseConfig(),
                                           lenientOpts(), Manager, SP);
      ASSERT_TRUE(Out.Published) << Out.Result.message();
      Seeded->push_back(std::move(Out.Package));
    }
  }
  static void TearDownTestSuite() {
    delete Seeded;
    delete Traffic;
    delete W;
    Seeded = nullptr;
    Traffic = nullptr;
    W = nullptr;
  }

  static vm::ServerConfig baseConfig() {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 20;
    return C;
  }

  static JumpStartOptions lenientOpts() {
    JumpStartOptions O;
    O.Coverage.MinProfiledFuncs = 3;
    O.Coverage.MinTotalSamples = 50;
    O.Coverage.MinPackageBytes = 64;
    O.ValidationRequests = 10;
    return O;
  }

  /// The per-seeder merge weight, keyed by SeederId so it follows the
  /// package through any arrival-order shuffle.
  static uint64_t weightFor(uint64_t SeederId) {
    return 1 + (SeederId * 7) % 5;
  }

  static fleet::Workload *W;
  static fleet::TrafficModel *Traffic;
  static std::vector<profile::ProfilePackage> *Seeded;
};

fleet::Workload *LifecycleFixture::W = nullptr;
fleet::TrafficModel *LifecycleFixture::Traffic = nullptr;
std::vector<profile::ProfilePackage> *LifecycleFixture::Seeded = nullptr;

} // namespace

//===----------------------------------------------------------------------===//
// Multi-seeder merge: deterministic under any arrival order.
//===----------------------------------------------------------------------===//

TEST_F(LifecycleFixture, MergeIsByteIdenticalForAnySeederOrder) {
  // Reference: canonical (SeederId) order.
  std::vector<profile::MergeInput> Ref;
  for (const profile::ProfilePackage &P : *Seeded)
    Ref.push_back({&P, weightFor(P.SeederId)});
  profile::ProfilePackage RefMerged;
  ASSERT_TRUE(profile::mergePackages(Ref, RefMerged).ok());
  const std::vector<uint8_t> RefBytes = RefMerged.serialize();
  ASSERT_FALSE(RefBytes.empty());

  // 40 random arrival orders must all produce those exact bytes.
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    std::vector<profile::MergeInput> Shuffled = Ref;
    Rng R(Seed);
    for (size_t I = Shuffled.size(); I > 1; --I)
      std::swap(Shuffled[I - 1], Shuffled[R.nextBelow(I)]);
    profile::ProfilePackage Merged;
    ASSERT_TRUE(profile::mergePackages(Shuffled, Merged).ok());
    EXPECT_EQ(Merged.serialize(), RefBytes)
        << "merge order changed the released bytes (shuffle seed " << Seed
        << ")";
  }
}

TEST_F(LifecycleFixture, ManagerMergeIgnoresPublicationOrder) {
  // Two managers receive the same seeder set in opposite orders; the
  // shelf-level merge must release identical bytes either way.
  std::map<uint64_t, uint64_t> Weights;
  for (const profile::ProfilePackage &P : *Seeded)
    Weights[P.SeederId] = weightFor(P.SeederId);

  PackageManager Forward, Backward;
  for (size_t I = 0; I < Seeded->size(); ++I) {
    ASSERT_TRUE(Forward.publish(0, 0, (*Seeded)[I].serialize()).ok());
    ASSERT_TRUE(
        Backward.publish(0, 0, (*Seeded)[Seeded->size() - 1 - I].serialize())
            .ok());
  }
  PackageManifest MF, MB;
  ASSERT_TRUE(Forward.merge(0, 0, &MF, &Weights).ok());
  ASSERT_TRUE(Backward.merge(0, 0, &MB, &Weights).ok());
  EXPECT_EQ(MF.Checksum, MB.Checksum);
  EXPECT_EQ(MF.Seeders, MB.Seeders);
  EXPECT_EQ(MF.Seeders.size(), Seeded->size());

  PackageHandle HF, HB;
  ASSERT_TRUE(Forward.fetch(MF.Id, HF).ok());
  ASSERT_TRUE(Backward.fetch(MB.Id, HB).ok());
  EXPECT_EQ(*HF.Blob, *HB.Blob);
}

TEST_F(LifecycleFixture, MergeRejectsBadInputSets) {
  profile::ProfilePackage Out;
  // Duplicate SeederIds.
  std::vector<profile::MergeInput> Dup = {{&(*Seeded)[0], 1},
                                          {&(*Seeded)[0], 1}};
  EXPECT_FALSE(profile::mergePackages(Dup, Out).ok());
  // Zero weight is a contract violation, not a no-op.
  std::vector<profile::MergeInput> Voiceless = {{&(*Seeded)[0], 0}};
  EXPECT_FALSE(profile::mergePackages(Voiceless, Out).ok());
  // Empty input set.
  EXPECT_FALSE(profile::mergePackages({}, Out).ok());
}

//===----------------------------------------------------------------------===//
// Delta releases: exact round trips, tamper detection.
//===----------------------------------------------------------------------===//

TEST(PackageDeltaTest, RoundTripsAreExactAcrossSeeds) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Rng R(Seed);
    // Parent: random blob; target: parent with random edits, so the
    // encoder sees realistic mostly-shared releases.
    std::vector<uint8_t> Parent(64 + R.nextBelow(4096));
    for (uint8_t &B : Parent)
      B = static_cast<uint8_t>(R.nextBelow(256));
    std::vector<uint8_t> Target = Parent;
    for (uint32_t Edit = 0; Edit < 1 + R.nextBelow(8); ++Edit) {
      switch (R.nextBelow(3)) {
      case 0: // overwrite a span
        for (uint32_t I = 0; I < 16 && !Target.empty(); ++I)
          Target[R.nextBelow(Target.size())] =
              static_cast<uint8_t>(R.nextBelow(256));
        break;
      case 1: // insert new bytes
        Target.insert(Target.begin() + R.nextBelow(Target.size() + 1),
                      1 + R.nextBelow(64),
                      static_cast<uint8_t>(R.nextBelow(256)));
        break;
      default: // delete a span
        if (Target.size() > 32) {
          size_t At = R.nextBelow(Target.size() - 16);
          Target.erase(Target.begin() + At, Target.begin() + At + 16);
        }
        break;
      }
    }

    std::vector<uint8_t> Delta = profile::encodeDelta(Parent, Target);
    std::vector<uint8_t> Rebuilt;
    ASSERT_TRUE(profile::applyDelta(Parent, Delta, Rebuilt).ok())
        << "seed " << Seed;
    EXPECT_EQ(Rebuilt, Target) << "seed " << Seed;

    // The wrong parent must be refused before any op runs.
    std::vector<uint8_t> NotParent = Parent;
    NotParent.push_back(0x5a);
    std::vector<uint8_t> Out;
    support::Status Wrong = profile::applyDelta(NotParent, Delta, Out);
    EXPECT_FALSE(Wrong.ok());
    EXPECT_TRUE(Out.empty());
  }
}

TEST(PackageDeltaTest, IdenticalAndDisjointBlobsDegradeGracefully) {
  std::vector<uint8_t> A(2048, 0x41);
  // Identical releases: the delta is essentially header-only.
  std::vector<uint8_t> Same = profile::encodeDelta(A, A);
  EXPECT_LT(Same.size(), 64u);
  std::vector<uint8_t> Out;
  ASSERT_TRUE(profile::applyDelta(A, Same, Out).ok());
  EXPECT_EQ(Out, A);
  // Nothing shared: the delta degenerates to (compressed) literals/runs
  // and still reconstructs exactly.
  std::vector<uint8_t> B;
  Rng R(7);
  for (int I = 0; I < 2048; ++I)
    B.push_back(static_cast<uint8_t>(R.nextBelow(256)));
  std::vector<uint8_t> Disjoint = profile::encodeDelta(A, B);
  ASSERT_TRUE(profile::applyDelta(A, Disjoint, Out).ok());
  EXPECT_EQ(Out, B);
}

TEST(PackageDeltaTest, TamperedDeltasAreRejected) {
  Rng R(3);
  std::vector<uint8_t> Parent(1024), Target(1024);
  for (int I = 0; I < 1024; ++I) {
    Parent[I] = static_cast<uint8_t>(R.nextBelow(256));
    Target[I] = static_cast<uint8_t>(I & 0xff);
  }
  std::vector<uint8_t> Delta = profile::encodeDelta(Parent, Target);
  for (int Flip = 0; Flip < 32; ++Flip) {
    std::vector<uint8_t> Bad = Delta;
    Bad[R.nextBelow(Bad.size())] ^= 1u << R.nextBelow(8);
    std::vector<uint8_t> Out;
    support::Status S = profile::applyDelta(Parent, Bad, Out);
    // Either the corruption is detected (usual) or the flip restored an
    // equivalent encoding; it must never "succeed" with wrong bytes.
    if (S.ok())
      EXPECT_EQ(Out, Target);
    else
      EXPECT_TRUE(Out.empty());
  }
}

TEST_F(LifecycleFixture, DeltaPublishRecordsProvenanceAndReconstructs) {
  PackageManager M;
  std::vector<uint8_t> Base = (*Seeded)[0].serialize();
  std::vector<uint8_t> Next = (*Seeded)[1].serialize();

  PackageManifest BaseManifest;
  ASSERT_TRUE(M.publish(3, 1, Base, &BaseManifest).ok());
  EXPECT_FALSE(BaseManifest.isDelta());

  M.beginRelease();
  PackageManifest DeltaManifest;
  ASSERT_TRUE(M.publishDelta(3, 1, Next, BaseManifest.Id, &DeltaManifest)
                  .ok());
  EXPECT_TRUE(DeltaManifest.isDelta());
  EXPECT_EQ(DeltaManifest.Parent, BaseManifest.Id);
  EXPECT_EQ(DeltaManifest.Id.Release, 1u);
  EXPECT_EQ(DeltaManifest.Bytes, Next.size());
  EXPECT_GT(DeltaManifest.DeltaBytes, 0u);

  // The shelf serves the full bytes; the wire record reconstructs them.
  PackageHandle H;
  ASSERT_TRUE(M.fetch(DeltaManifest.Id, H).ok());
  EXPECT_EQ(*H.Blob, Next);
  std::vector<uint8_t> Rebuilt;
  ASSERT_TRUE(M.reconstruct(DeltaManifest.Id, Rebuilt).ok());
  EXPECT_EQ(Rebuilt, Next);

  // A delta against an unknown parent is refused.
  PackageId Bogus;
  Bogus.Region = 3;
  Bogus.Bucket = 1;
  Bogus.Index = 99;
  EXPECT_FALSE(M.publishDelta(3, 1, Next, Bogus).ok());
}

//===----------------------------------------------------------------------===//
// Staleness under drift: the sweep itself, quick mode.
//===----------------------------------------------------------------------===//

TEST(DriftSweepTest, QuickSweepCompletesAndKeepsBenefitAtAgeZero) {
  DriftSweepParams P;
  P.Site.NumHelpers = 120;
  P.Site.NumClasses = 24;
  P.Site.NumEndpoints = 12;
  P.Site.NumUnits = 12;
  P.MaxAge = 2;
  P.SeederRequests = 400;
  P.WarmupSeconds = 120;
  P.OfferedRps = 200;
  P.Config.Jit.ProfileRequestTarget = 20;

  DriftSweepResult R = runDriftSweep(P);
  ASSERT_TRUE(R.Result.ok()) << R.Result.message();
  ASSERT_EQ(R.Points.size(), P.MaxAge + 1);

  // Age 0 is the identity rebase: nothing may be dropped, the consumer
  // must accept, and Jump-Start must beat cold boot.
  const DriftAgePoint &Fresh = R.Points[0];
  EXPECT_EQ(Fresh.Rebase.FuncsDropped, 0u);
  EXPECT_TRUE(Fresh.ConsumerUsedJumpStart);
  EXPECT_GT(Fresh.BenefitFraction, 0.0);

  for (const DriftAgePoint &Point : R.Points) {
    EXPECT_GT(Point.ProfiledFuncs, 0u) << "age " << Point.Age;
    EXPECT_GT(Point.WireBytes, 0u) << "age " << Point.Age;
    EXPECT_TRUE(Point.ConsumerUsedJumpStart) << "age " << Point.Age;
  }
  // Drift must actually bite: later ages lose profile anchors.
  EXPECT_GT(R.Points.back().Rebase.FuncsDropped, 0u);
}

//===----------------------------------------------------------------------===//
// Deployment: merged releases are worker-count invariant.
//===----------------------------------------------------------------------===//

TEST_F(LifecycleFixture, DeployedMergePackagesAreWorkerCountInvariant) {
  DeploymentParams DP;
  DP.Regions = 1;
  DP.Buckets = 2;
  DP.SeedersPerPair = 2;
  DP.SeederRequests = 120;
  DP.PublishMergedPackage = true;

  PackageManager Serial;
  DeploymentReport SerialReport = simulateDeployment(
      *W, *Traffic, baseConfig(), lenientOpts(), Serial, DP);

  support::ThreadPool Pool(3);
  DP.Pool = &Pool;
  PackageManager Pooled;
  DeploymentReport PooledReport = simulateDeployment(
      *W, *Traffic, baseConfig(), lenientOpts(), Pooled, DP);

  EXPECT_EQ(SerialReport.MergedPackages, DP.Buckets);
  EXPECT_EQ(PooledReport.MergedPackages, SerialReport.MergedPackages);
  EXPECT_EQ(PooledReport.PackagesPublished, SerialReport.PackagesPublished);

  for (uint32_t B = 0; B < DP.Buckets; ++B) {
    std::vector<PackageManifest> A = Serial.manifests(0, B);
    std::vector<PackageManifest> P2 = Pooled.manifests(0, B);
    ASSERT_EQ(A.size(), P2.size()) << "bucket " << B;
    for (size_t I = 0; I < A.size(); ++I) {
      EXPECT_EQ(A[I].Checksum, P2[I].Checksum)
          << "bucket " << B << " package " << I;
      EXPECT_EQ(A[I].Seeders, P2[I].Seeders)
          << "bucket " << B << " package " << I;
    }
    // Exactly one package on each shelf is the multi-seeder merge.
    size_t Merges = 0;
    for (const PackageManifest &Manifest : A)
      Merges += Manifest.Seeders.size() > 1 ? 1 : 0;
    EXPECT_EQ(Merges, 1u) << "bucket " << B;
  }
}

//===----------------------------------------------------------------------===//
// Reliability: the partition invariant holds with stale packages in
// rotation, and staleness is visible as rejections, not crashes.
//===----------------------------------------------------------------------===//

TEST(ReliabilityDriftTest, PartitionInvariantHoldsUnderStaleness) {
  uint64_t TotalStaleRejections = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    fleet::ReliabilityParams P;
    P.NumConsumers = 300;
    P.NumPackages = 6;
    P.NumPoisoned = 1;
    P.NumStale = 2;
    P.StaleRejectProbability = 0.6;
    P.Rounds = 8;
    P.Seed = Seed;
    fleet::ReliabilityResult R = fleet::simulateCrashLoop(P);
    EXPECT_EQ(R.HealthyAtEnd + R.FallbackCount, P.NumConsumers)
        << "seed " << Seed;
    TotalStaleRejections += R.StaleRejections;
  }
  EXPECT_GT(TotalStaleRejections, 0u);
}
