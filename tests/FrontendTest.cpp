//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frontend tests: lexer tokens, parser diagnostics, compiler-level
/// semantic errors, and cross-unit compilation.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"
#include "frontend/Compiler.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "runtime/Builtins.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::frontend;

namespace {

std::vector<Token> lexAll(std::string_view Src) {
  Lexer L(Src);
  std::vector<Token> Tokens;
  for (;;) {
    Token T = L.next();
    Tokens.push_back(T);
    if (T.Kind == TokKind::Eof || T.Kind == TokKind::Error)
      break;
  }
  return Tokens;
}

std::vector<std::string> compileErrors(const std::string &Src) {
  bc::Repo R;
  return compileUnit(R, runtime::BuiltinTable::standard(), "t.hack", Src);
}

bool anyErrorContains(const std::vector<std::string> &Errors,
                      const std::string &Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer.
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenKinds) {
  auto Tokens = lexAll("function f($x) { return $x + 1.5 >= \"s\"; }");
  std::vector<TokKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expected{
      TokKind::KwFunction, TokKind::Ident,  TokKind::LParen,
      TokKind::Variable,   TokKind::RParen, TokKind::LBrace,
      TokKind::KwReturn,   TokKind::Variable, TokKind::Plus,
      TokKind::DblLit,     TokKind::Ge,     TokKind::StrLit,
      TokKind::Semi,       TokKind::RBrace, TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, NumbersAndValues) {
  auto Tokens = lexAll("42 3.25");
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Kind, TokKind::IntLit);
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_EQ(Tokens[1].Kind, TokKind::DblLit);
  EXPECT_DOUBLE_EQ(Tokens[1].DblValue, 3.25);
}

TEST(Lexer, StringEscapes) {
  auto Tokens = lexAll(R"("a\nb\t\"c\\")");
  ASSERT_EQ(Tokens[0].Kind, TokKind::StrLit);
  EXPECT_EQ(Tokens[0].Text, "a\nb\t\"c\\");
}

TEST(Lexer, CommentsAreSkipped) {
  auto Tokens = lexAll("1 // line comment\n /* block\ncomment */ 2");
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].IntValue, 1);
  EXPECT_EQ(Tokens[1].IntValue, 2);
  EXPECT_EQ(Tokens[2].Kind, TokKind::Eof);
}

TEST(Lexer, ThisIsKeyword) {
  auto Tokens = lexAll("$this $thisx");
  EXPECT_EQ(Tokens[0].Kind, TokKind::KwThis);
  EXPECT_EQ(Tokens[1].Kind, TokKind::Variable);
  EXPECT_EQ(Tokens[1].Text, "thisx");
}

TEST(Lexer, ErrorsAreTokens) {
  auto Tokens = lexAll("\"unterminated");
  EXPECT_EQ(Tokens.back().Kind, TokKind::Error);
  auto Tokens2 = lexAll("a @ b");
  bool SawError = false;
  for (const Token &T : Tokens2)
    if (T.Kind == TokKind::Error)
      SawError = true;
  EXPECT_TRUE(SawError);
}

TEST(Lexer, LineTracking) {
  Lexer L("a\nb\n\nc");
  EXPECT_EQ(L.next().Line, 1u);
  EXPECT_EQ(L.next().Line, 2u);
  EXPECT_EQ(L.next().Line, 4u);
}

//===----------------------------------------------------------------------===//
// Parser diagnostics.
//===----------------------------------------------------------------------===//

TEST(ParserTest, ReportsMissingSemicolon) {
  Parser P("function f() { return 1 }");
  P.parseProgram();
  ASSERT_FALSE(P.errors().empty());
  EXPECT_NE(P.errors()[0].find("';'"), std::string::npos);
}

TEST(ParserTest, ReportsBadAssignTarget) {
  Parser P("function f() { 1 + 2 = 3; }");
  P.parseProgram();
  ASSERT_FALSE(P.errors().empty());
  EXPECT_NE(P.errors()[0].find("not assignable"), std::string::npos);
}

TEST(ParserTest, RecoversAcrossDeclarations) {
  Parser P("function broken( { }\nfunction ok() { return 1; }");
  Program Prog = P.parseProgram();
  EXPECT_FALSE(P.errors().empty());
  // The second function still parses.
  bool FoundOk = false;
  for (const FuncDecl &F : Prog.Funcs)
    if (F.Name == "ok")
      FoundOk = true;
  EXPECT_TRUE(FoundOk);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  Parser P("function f() {\n\n  return @;\n}");
  P.parseProgram();
  ASSERT_FALSE(P.errors().empty());
  EXPECT_NE(P.errors()[0].find("line 3"), std::string::npos);
}

TEST(ParserTest, ElseIfChains) {
  Parser P("function f($x) {"
           "  if ($x == 1) { return 1; }"
           "  else if ($x == 2) { return 2; }"
           "  else { return 3; }"
           "}");
  Program Prog = P.parseProgram();
  EXPECT_TRUE(P.errors().empty());
  ASSERT_EQ(Prog.Funcs.size(), 1u);
}

TEST(ParserTest, ErrorCascadeIsBounded) {
  // A pathological input must not produce unbounded diagnostics.
  std::string Bad = "function f() {";
  for (int I = 0; I < 500; ++I)
    Bad += " @ ";
  Bad += "}";
  Parser P(Bad);
  P.parseProgram();
  EXPECT_LE(P.errors().size(), 50u);
}

//===----------------------------------------------------------------------===//
// Compiler semantic diagnostics.
//===----------------------------------------------------------------------===//

TEST(CompilerTest, UnknownFunction) {
  auto Errors = compileErrors("function f() { return nope(); }");
  EXPECT_TRUE(anyErrorContains(Errors, "unknown function 'nope'"));
}

TEST(CompilerTest, UnknownClass) {
  auto Errors = compileErrors("function f() { return new Nope(); }");
  EXPECT_TRUE(anyErrorContains(Errors, "unknown class 'Nope'"));
}

TEST(CompilerTest, ArityMismatch) {
  auto Errors = compileErrors("function g($a, $b) { return $a; }"
                              "function f() { return g(1); }");
  EXPECT_TRUE(anyErrorContains(Errors, "expects 2"));
}

TEST(CompilerTest, BuiltinArityMismatch) {
  auto Errors = compileErrors("function f() { return strlen(); }");
  EXPECT_TRUE(anyErrorContains(Errors, "takes 1 args"));
}

TEST(CompilerTest, ThisOutsideMethod) {
  auto Errors = compileErrors("function f() { return $this; }");
  EXPECT_TRUE(anyErrorContains(Errors, "'$this' outside"));
}

TEST(CompilerTest, BreakOutsideLoop) {
  auto Errors = compileErrors("function f() { break; return 1; }");
  EXPECT_TRUE(anyErrorContains(Errors, "'break' outside"));
}

TEST(CompilerTest, DuplicateFunction) {
  auto Errors = compileErrors("function f() { return 1; }"
                              "function f() { return 2; }");
  EXPECT_TRUE(anyErrorContains(Errors, "duplicate function"));
}

TEST(CompilerTest, DuplicateClass) {
  auto Errors = compileErrors("class C { prop $p; } class C { prop $q; }");
  EXPECT_TRUE(anyErrorContains(Errors, "duplicate class"));
}

TEST(CompilerTest, UnknownParent) {
  auto Errors = compileErrors("class C extends Nope { prop $p; }");
  EXPECT_TRUE(anyErrorContains(Errors, "unknown parent"));
}

TEST(CompilerTest, InheritanceCycleDetected) {
  auto Errors = compileErrors("class A extends B { prop $a; }"
                              "class B extends A { prop $b; }");
  EXPECT_TRUE(anyErrorContains(Errors, "cycle"));
}

TEST(CompilerTest, CrossUnitReferencesResolve) {
  bc::Repo R;
  std::vector<SourceFile> Files{
      {"a.hack", "function fa() { return fb() + 1; }"},
      {"b.hack", "function fb() { return new K()->m(); }"},
      {"k.hack", "class K { prop $p; method m() { return 41; } }"},
  };
  auto Errors =
      compileProgram(R, runtime::BuiltinTable::standard(), Files);
  EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors[0]);
  EXPECT_EQ(R.numUnits(), 3u);
  // Everything verifier-clean.
  auto VErrors =
      bc::verifyRepo(R, runtime::BuiltinTable::standard().size());
  EXPECT_TRUE(VErrors.empty()) << (VErrors.empty() ? "" : VErrors[0]);
}

TEST(CompilerTest, GeneratedBytecodeAlwaysVerifies) {
  // Property: anything the compiler accepts must pass the verifier.
  const char *Programs[] = {
      "function f($a) { $x = vec[1,2]; $x[0] = $a; return $x[0]; }",
      "function f($a) { while ($a > 0) { $a -= 1; if ($a == 3) { break; } }"
      " return $a; }",
      "function f($a) { return ($a && true) || !($a == 2); }",
      "class C { prop $v; method m($x) { $this->v = $x; return $this; } }"
      "function f($a) { return new C()->m($a)->v; }",
      "function f($a) { $d = dict[\"k\" => $a]; $d[\"j\"] = $a * 2;"
      " return keys($d); }",
  };
  for (const char *Src : Programs) {
    bc::Repo R;
    auto Errors =
        compileUnit(R, runtime::BuiltinTable::standard(), "p.hack", Src);
    ASSERT_TRUE(Errors.empty()) << Src << ": " << Errors[0];
    auto VErrors =
        bc::verifyRepo(R, runtime::BuiltinTable::standard().size());
    EXPECT_TRUE(VErrors.empty())
        << Src << ": " << (VErrors.empty() ? "" : VErrors[0]);
  }
}
