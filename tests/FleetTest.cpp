//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the fleet simulators: workload generation, traffic model,
/// warmup runs, reliability model, steady-state measurement.
///
//===----------------------------------------------------------------------===//

#include "core/Seeder.h"
#include "fleet/Reliability.h"
#include "fleet/ServerSim.h"
#include "fleet/SteadyState.h"
#include "fleet/Traffic.h"
#include "fleet/WarmupStats.h"
#include "fleet/WorkloadGen.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace jumpstart;
using namespace jumpstart::fleet;

namespace {

WorkloadParams smallParams() {
  WorkloadParams P;
  P.NumHelpers = 120;
  P.NumClasses = 24;
  P.NumEndpoints = 12;
  P.NumUnits = 12;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Workload generation.
//===----------------------------------------------------------------------===//

TEST(WorkloadGenTest, GeneratesCompilableSite) {
  auto W = generateWorkload(smallParams());
  EXPECT_EQ(W->Endpoints.size(), 12u);
  EXPECT_GT(W->Repo.numFuncs(), 120u); // helpers + endpoints + methods
  EXPECT_EQ(W->Repo.numClasses(), 24u);
  EXPECT_GT(W->Repo.totalBytecode(), 1000u);
  EXPECT_FALSE(W->Sources.empty());
}

TEST(WorkloadGenTest, DeterministicForSameSeed) {
  auto A = generateWorkload(smallParams());
  auto B = generateWorkload(smallParams());
  ASSERT_EQ(A->Sources.size(), B->Sources.size());
  for (size_t I = 0; I < A->Sources.size(); ++I)
    EXPECT_EQ(A->Sources[I].second, B->Sources[I].second);
}

TEST(WorkloadGenTest, DifferentSeedsDiffer) {
  WorkloadParams P = smallParams();
  auto A = generateWorkload(P);
  P.Seed = 777;
  auto B = generateWorkload(P);
  bool AnyDifferent = false;
  for (size_t I = 0; I < A->Sources.size(); ++I)
    if (A->Sources[I].second != B->Sources[I].second)
      AnyDifferent = true;
  EXPECT_TRUE(AnyDifferent);
}

TEST(WorkloadGenTest, EndpointsExecuteWithoutAborting) {
  auto W = generateWorkload(smallParams());
  runtime::ClassTable Classes(W->Repo);
  runtime::Heap Heap;
  interp::Interpreter Interp(W->Repo, Classes, Heap,
                             runtime::BuiltinTable::standard());
  for (bc::FuncId E : W->Endpoints) {
    for (int64_t Req : {0, 7, 123}) {
      interp::InterpResult R =
          Interp.call(E, {runtime::Value::integer(Req)});
      EXPECT_TRUE(R.Ok) << "endpoint aborted";
      EXPECT_EQ(R.Faults, 0u)
          << "generated code must not fault on integer requests";
      Heap.reset();
    }
  }
}

TEST(WorkloadGenTest, ProfileIsFlat) {
  // Execute a traffic mix and check no single function dominates.
  auto W = generateWorkload(smallParams());
  TrafficModel Traffic(*W, TrafficParams(), 5);
  runtime::ClassTable Classes(W->Repo);
  runtime::Heap Heap;
  interp::Interpreter Interp(W->Repo, Classes, Heap,
                             runtime::BuiltinTable::standard());
  std::vector<uint64_t> Counts;
  Interp.setInstrCounts(&Counts);
  Rng R(3);
  for (int I = 0; I < 100; ++I) {
    uint32_t E = Traffic.sampleEndpoint(0, R.nextBelow(10), R);
    Interp.call(W->Endpoints[E], TrafficModel::makeArgs(R));
    Heap.reset();
  }
  uint64_t Total = std::accumulate(Counts.begin(), Counts.end(), 0ull);
  uint64_t Max = *std::max_element(Counts.begin(), Counts.end());
  ASSERT_GT(Total, 0u);
  // The miniature test site (120 helpers) is less flat than a full-size
  // one; 20% is the dominance bound at this scale.
  EXPECT_LT(static_cast<double>(Max) / Total, 0.20)
      << "no function should dominate the flat profile";
  size_t Executed = 0;
  for (uint64_t C : Counts)
    if (C > 0)
      ++Executed;
  EXPECT_GT(Executed, W->Repo.numFuncs() / 4)
      << "a long tail of functions should execute";
}

//===----------------------------------------------------------------------===//
// Traffic model.
//===----------------------------------------------------------------------===//

TEST(TrafficTest, BucketAffinity) {
  auto W = generateWorkload(smallParams());
  TrafficParams TP;
  TP.BucketAffinity = 0.9;
  TrafficModel Traffic(*W, TP, 9);
  Rng R(4);
  int InBucket = 0;
  const int N = 2000;
  for (int I = 0; I < N; ++I) {
    uint32_t E = Traffic.sampleEndpoint(0, 3, R);
    if (W->EndpointPartition[E] == 3)
      ++InBucket;
  }
  // ~90% affinity plus ~1/10 of the spillover landing back home.
  EXPECT_GT(InBucket, N * 0.8);
  EXPECT_LT(InBucket, N * 0.98);
}

TEST(TrafficTest, RegionsHaveDifferentMixes) {
  auto W = generateWorkload(smallParams());
  TrafficModel Traffic(*W, TrafficParams(), 9);
  Rng R(4);
  std::vector<int> CountsA(W->Endpoints.size(), 0);
  std::vector<int> CountsB(W->Endpoints.size(), 0);
  for (int I = 0; I < 3000; ++I) {
    ++CountsA[Traffic.sampleEndpoint(0, 2, R)];
    ++CountsB[Traffic.sampleEndpoint(1, 2, R)];
  }
  // The hottest endpoint should differ between regions (shuffled heads).
  size_t HotA = std::max_element(CountsA.begin(), CountsA.end()) -
                CountsA.begin();
  size_t HotB = std::max_element(CountsB.begin(), CountsB.end()) -
                CountsB.begin();
  EXPECT_TRUE(HotA != HotB || CountsA[HotA] != CountsB[HotB]);
}

//===----------------------------------------------------------------------===//
// Warmup simulation.
//===----------------------------------------------------------------------===//

TEST(WarmupSim, JumpStartBeatsColdStart) {
  auto W = generateWorkload(smallParams());
  TrafficModel Traffic(*W, TrafficParams(), 21);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 200;

  // Seed a package.
  vm::ServerConfig SeederConfig = Config;
  SeederConfig.Jit.SeederInstrumentation = true;
  auto Seeder = runSeeder(*W, Traffic, SeederConfig, 0, 0, 150, 3);
  profile::ProfilePackage Pkg = Seeder->buildSeederPackage(0, 0, 1);

  ServerSimParams P;
  P.DurationSeconds = 120;
  P.OfferedRps = 1200;
  WarmupResult Cold = runWarmup(*W, Traffic, Config, P);
  WarmupResult Js = runWarmup(*W, Traffic, Config, P, &Pkg);

  EXPECT_GT(Cold.CapacityLossFraction, Js.CapacityLossFraction)
      << "Jump-Start must reduce capacity loss";
  EXPECT_GT(Cold.CapacityLossFraction, 0.05);
  // The Jump-Start server must end the window serving more of the load.
  EXPECT_GT(Js.normalizedRps().points().back().Value,
            Cold.normalizedRps().points().back().Value * 0.99);
}

TEST(WarmupSim, JumpStartImprovesWarmupClass) {
  // The statistical reading of Figure 4: the cold boot's normalized-RPS
  // curve classifies `warmup`, and Jump-Start either removes the warmup
  // phase entirely (`flat`) or reaches steady state strictly earlier.
  auto W = generateWorkload(smallParams());
  TrafficModel Traffic(*W, TrafficParams(), 21);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 200;

  vm::ServerConfig SeederConfig = Config;
  SeederConfig.Jit.SeederInstrumentation = true;
  auto Seeder = runSeeder(*W, Traffic, SeederConfig, 0, 0, 150, 3);
  profile::ProfilePackage Pkg = Seeder->buildSeederPackage(0, 0, 1);

  ServerSimParams P;
  P.DurationSeconds = 120;
  P.OfferedRps = 450;
  P.RunLabel = "class-cold";
  WarmupResult ColdRun = runWarmup(*W, Traffic, Config, P);
  P.RunLabel = "class-js";
  WarmupResult JsRun = runWarmup(*W, Traffic, Config, P, &Pkg);

  stats::Classification Cold = classifyWarmupThroughput(ColdRun);
  stats::Classification Js = classifyWarmupThroughput(JsRun);
  EXPECT_EQ(Cold.Class, stats::WarmupClass::Warmup);
  EXPECT_TRUE(Js.Class == stats::WarmupClass::Flat ||
              Js.SteadyStart < Cold.SteadyStart)
      << "jump-start class " << stats::warmupClassName(Js.Class)
      << " steady-start " << Js.SteadyStart << " vs cold "
      << Cold.SteadyStart;
}

TEST(WarmupSim, ClassificationIdenticalAcrossWorkerCounts) {
  // The transition-table rendering must be byte-identical whether the
  // sweep runs serially or sharded across a host thread pool: each run
  // records into its own registry and classification is RNG-free.
  auto W = generateWorkload(smallParams());
  TrafficModel Traffic(*W, TrafficParams(), 21);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 200;

  vm::ServerConfig SeederConfig = Config;
  SeederConfig.Jit.SeederInstrumentation = true;
  auto Seeder = runSeeder(*W, Traffic, SeederConfig, 0, 0, 150, 3);
  profile::ProfilePackage Pkg = Seeder->buildSeederPackage(0, 0, 1);

  std::vector<WarmupSweepRun> Runs;
  for (uint64_t Seed : {5, 6}) {
    for (bool WithJs : {false, true}) {
      WarmupSweepRun Run;
      Run.Params.DurationSeconds = 120;
      Run.Params.OfferedRps = 450;
      Run.Params.Seed = Seed;
      Run.Params.RunLabel = strFormat("sweep-s%llu-%s",
                                      static_cast<unsigned long long>(Seed),
                                      WithJs ? "js" : "nojs");
      Run.Package = WithJs ? &Pkg : nullptr;
      Runs.push_back(std::move(Run));
    }
  }

  auto RenderWith = [&](support::ThreadPool *Pool) {
    std::vector<WarmupResult> Sweep =
        runWarmupSweep(*W, Traffic, Config, Runs, Pool);
    std::vector<ClassTransition> Rows;
    for (size_t I = 0; I + 1 < Sweep.size(); I += 2) {
      ClassTransition T;
      T.Label = strFormat("server-%zu", I / 2);
      T.Seed = Runs[I].Params.Seed;
      T.Cold = classifyWarmupThroughput(Sweep[I]);
      T.Warm = classifyWarmupThroughput(Sweep[I + 1]);
      Rows.push_back(std::move(T));
    }
    return renderTransitionTableText(Rows) + renderTransitionTableJson(Rows);
  };

  std::string Serial = RenderWith(nullptr);
  support::ThreadPool Pool(4);
  std::string Sharded = RenderWith(&Pool);
  EXPECT_EQ(Serial, Sharded);
}

TEST(WarmupSim, PhaseTimesAreOrdered) {
  auto W = generateWorkload(smallParams());
  TrafficModel Traffic(*W, TrafficParams(), 22);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 300;
  ServerSimParams P;
  P.DurationSeconds = 150;
  P.OfferedRps = 2000;
  WarmupResult Res = runWarmup(*W, Traffic, Config, P);
  ASSERT_GE(Res.Phases.ProfilingEnd, 0) << "profiling must end in-window";
  EXPECT_LE(Res.Phases.ServeStart, Res.Phases.ProfilingEnd);
  ASSERT_GE(Res.Phases.RelocationEnd, 0);
  EXPECT_LE(Res.Phases.ProfilingEnd, Res.Phases.RelocationEnd);
  // Code keeps growing (live tail) at or past relocation end.
  EXPECT_GE(Res.Phases.JitingStopped, Res.Phases.RelocationEnd);
  // Code size curve is nondecreasing.
  const auto &Pts = Res.codeBytes().points();
  for (size_t I = 1; I < Pts.size(); ++I)
    EXPECT_GE(Pts[I].Value, Pts[I - 1].Value);
}

//===----------------------------------------------------------------------===//
// Steady-state measurement.
//===----------------------------------------------------------------------===//

TEST(SteadyStateTest, ProducesCountersAndThroughput) {
  auto W = generateWorkload(smallParams());
  TrafficModel Traffic(*W, TrafficParams(), 23);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 60;
  auto Server = runSeeder(*W, Traffic, Config, 0, 0, 120, 5);
  ASSERT_EQ(Server->theJit().phase(), jit::JitPhase::Mature);

  SteadyStateParams P;
  P.Requests = 40;
  P.WarmupRequests = 10;
  SteadyStateResult R = measureSteadyState(*W, Traffic, *Server, P);
  EXPECT_GT(R.Counters.Instructions, 1000u);
  EXPECT_GT(R.Counters.Branches, 0u);
  EXPECT_GT(R.Counters.L1DAccesses, 0u);
  EXPECT_GT(R.Throughput, 0.0);
  EXPECT_GT(R.CyclesPerRequest, 0.0);
  EXPECT_LE(R.L1IMissRate, 1.0);
}

//===----------------------------------------------------------------------===//
// Reliability model (paper section VI).
//===----------------------------------------------------------------------===//

TEST(ReliabilityTest, NoPoisonNoCrashes) {
  ReliabilityParams P;
  P.NumPoisoned = 0;
  ReliabilityResult R = simulateCrashLoop(P);
  EXPECT_EQ(R.PeakCrashed, 0u);
  EXPECT_EQ(R.HealthyAtEnd, P.NumConsumers);
  EXPECT_EQ(R.FallbackCount, 0u);
}

TEST(ReliabilityTest, RandomizedSelectionDecaysExponentially) {
  ReliabilityParams P;
  P.NumConsumers = 8000;
  P.NumPackages = 8;
  P.NumPoisoned = 1;
  P.RandomizedSelection = true;
  ReliabilityResult R = simulateCrashLoop(P);
  ASSERT_GE(R.CrashedPerRound.size(), 3u);
  // Round 0 hits ~1/8 of consumers; each later round shrinks ~8x.
  EXPECT_NEAR(R.CrashedPerRound[0], 1000, 200);
  EXPECT_LT(R.CrashedPerRound[1], R.CrashedPerRound[0] / 4);
  EXPECT_LT(R.CrashedPerRound[2], R.CrashedPerRound[1]);
  EXPECT_EQ(R.HealthyAtEnd + R.FallbackCount, P.NumConsumers)
      << "every consumer recovers (good pick or fallback)";
}

TEST(ReliabilityTest, SinglePackageModeIsCatastrophic) {
  ReliabilityParams P;
  P.NumConsumers = 1000;
  P.NumPackages = 4;
  P.NumPoisoned = 1;
  P.RandomizedSelection = false; // everyone uses package 0 (the bad one)
  ReliabilityResult R = simulateCrashLoop(P);
  EXPECT_EQ(R.CrashedPerRound[0], P.NumConsumers)
      << "without randomization, one bad package takes down everything";
  EXPECT_EQ(R.FallbackCount, P.NumConsumers)
      << "only the fallback saves the fleet";
}

TEST(ReliabilityTest, ValidationPreventsPublication) {
  ReliabilityParams P;
  P.NumPoisoned = 1;
  P.ValidationCatchProbability = 1.0;
  ReliabilityResult R = simulateCrashLoop(P);
  EXPECT_EQ(R.PoisonedPublished, 0u);
  EXPECT_EQ(R.PeakCrashed, 0u);
}

TEST(ReliabilityTest, FallbackBoundsCrashCount) {
  ReliabilityParams P;
  P.NumConsumers = 500;
  P.NumPackages = 1;
  P.NumPoisoned = 1; // the only package is bad
  P.MaxJumpStartAttempts = 2;
  ReliabilityResult R = simulateCrashLoop(P);
  uint64_t TotalCrashes = 0;
  for (uint32_t C : R.CrashedPerRound)
    TotalCrashes += C;
  EXPECT_EQ(TotalCrashes, 500u * 2)
      << "each consumer crashes at most MaxJumpStartAttempts times";
  EXPECT_EQ(R.FallbackCount, 500u);
  EXPECT_EQ(R.HealthyAtEnd, 0u)
      << "nobody is healthy WITH Jump-Start when the only package is bad";
}

TEST(ReliabilityTest, PartitionInvariantHoldsForAnySeed) {
  // HealthyAtEnd counts Jump-Start successes, FallbackCount the rest;
  // with randomized selection and enough rounds for every consumer to
  // exhaust its attempts, the two always partition the fleet -- across
  // seeds and parameter shapes.  CrashedPerRound is monotone
  // non-increasing by construction (only round r's crashers can still be
  // unresolved in round r+1), and identically zero from round
  // MaxJumpStartAttempts on (everyone has found a good package or
  // exhausted their attempts by then).
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    ReliabilityParams P;
    P.Seed = Seed;
    P.NumConsumers = 100 + static_cast<uint32_t>(Seed) * 37;
    P.NumPackages = 1 + static_cast<uint32_t>(Seed % 9);
    P.NumPoisoned = static_cast<uint32_t>(Seed % (P.NumPackages + 1));
    P.MaxJumpStartAttempts = 1 + static_cast<uint32_t>(Seed % 4);
    P.Rounds = P.MaxJumpStartAttempts + 2 +
               static_cast<uint32_t>(Seed % 5);
    P.ValidationCatchProbability = (Seed % 3) * 0.4;
    P.RandomizedSelection = true;
    ReliabilityResult R = simulateCrashLoop(P);
    EXPECT_EQ(R.HealthyAtEnd + R.FallbackCount, P.NumConsumers)
        << "seed " << Seed;
    ASSERT_EQ(R.CrashedPerRound.size(), P.Rounds) << "seed " << Seed;
    for (size_t Round = 1; Round < R.CrashedPerRound.size(); ++Round)
      EXPECT_LE(R.CrashedPerRound[Round], R.CrashedPerRound[Round - 1])
          << "seed " << Seed << " round " << Round;
    for (size_t Round = P.MaxJumpStartAttempts;
         Round < R.CrashedPerRound.size(); ++Round)
      EXPECT_EQ(R.CrashedPerRound[Round], 0u)
          << "seed " << Seed << " round " << Round;
  }
}

TEST(ReliabilityTest, RandomizationStrictlyImprovesPeak) {
  // The paper's section VI argument as a property: with at least one
  // poisoned package published and no validation, single-package mode
  // crashes the entire fleet at once while randomized selection never
  // does.
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    ReliabilityParams P;
    P.Seed = Seed;
    P.NumConsumers = 2000;
    P.NumPackages = 8;
    P.NumPoisoned = 1;
    P.ValidationCatchProbability = 0.0;

    P.RandomizedSelection = false;
    ReliabilityResult Single = simulateCrashLoop(P);
    P.RandomizedSelection = true;
    ReliabilityResult Rand = simulateCrashLoop(P);

    EXPECT_EQ(Single.PeakCrashed, P.NumConsumers) << "seed " << Seed;
    EXPECT_LT(Rand.PeakCrashed, Single.PeakCrashed) << "seed " << Seed;
  }
}
