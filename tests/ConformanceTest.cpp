//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential conformance harness tests (src/testing): the generator
/// emits compilable programs, the oracle finds no mismatch between
/// execution tiers on correct builds, the sweep digest is reproducible,
/// and -- the harness's own acceptance test -- an injected interpreter
/// divergence is caught and shrunk to a minimal reproducer.
///
//===----------------------------------------------------------------------===//

#include "testing/DiffRunner.h"
#include "testing/ProgramGen.h"
#include "testing/Shrinker.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace jumpstart;
namespace jstest = jumpstart::testing;

//===----------------------------------------------------------------------===//
// Program generator.
//===----------------------------------------------------------------------===//

TEST(ProgramGenTest, DeterministicForAFixedSeed) {
  jstest::GenParams P;
  P.Seed = 99;
  EXPECT_EQ(jstest::generateProgram(P).render(),
            jstest::generateProgram(P).render());
}

TEST(ProgramGenTest, SeedsProduceDistinctPrograms) {
  jstest::GenParams A, B;
  A.Seed = 1;
  B.Seed = 2;
  EXPECT_NE(jstest::generateProgram(A).render(),
            jstest::generateProgram(B).render());
}

TEST(ProgramGenTest, ShapeKnobsAreRespected) {
  jstest::GenParams P;
  P.Seed = 5;
  P.NumEndpoints = 4;
  P.NumClasses = 3;
  jstest::GenProgram Prog = jstest::generateProgram(P);
  EXPECT_EQ(Prog.endpointNames().size(), 4u);
  EXPECT_EQ(Prog.Classes.size(), 3u);
}

TEST(ProgramGenTest, GeneratorAlwaysCompiles) {
  // The sweeps depend on this: a generator emitting uncompilable
  // programs would poison every differential result.  Vary the shape
  // knobs with the seed to cover the generator's whole surface.
  for (uint64_t Seed = 1; Seed <= 80; ++Seed) {
    jstest::GenParams P;
    P.Seed = Seed;
    P.MaxHelpers = 1 + static_cast<uint32_t>(Seed % 6);
    P.MinHelpers = P.MaxHelpers > 2 ? 2 : 1;
    P.NumEndpoints = 1 + static_cast<uint32_t>(Seed % 3);
    P.NumClasses = static_cast<uint32_t>(Seed % 4);
    P.MaxStmts = 2 + static_cast<uint32_t>(Seed % 5);
    P.MaxExprDepth = 1 + static_cast<uint32_t>(Seed % 4);
    jstest::GenProgram Prog = jstest::generateProgram(P);
    fleet::Workload W;
    support::Status S =
        jstest::DiffRunner::compileProgram(Prog.render(), W);
    ASSERT_TRUE(S.ok()) << "seed " << Seed << ": " << S.message() << "\n"
                        << Prog.render();
    EXPECT_EQ(W.Endpoints.size(), P.NumEndpoints) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Shrinker.
//===----------------------------------------------------------------------===//

TEST(ShrinkerTest, RemovesEverythingIrrelevant) {
  // Textual predicate: "still contains the magic print".  Everything
  // else -- other functions, other statements, the return expression --
  // must be stripped.
  jstest::GenParams P;
  P.Seed = 3;
  P.MaxHelpers = 4;
  P.NumEndpoints = 2;
  jstest::GenProgram Prog = jstest::generateProgram(P);
  Prog.Funcs[1].Stmts.push_back("print(\"needle\");");

  jstest::ShrinkStats Stats;
  jstest::GenProgram Min = jstest::shrinkProgram(
      Prog,
      [](const jstest::GenProgram &Cand) {
        return Cand.render().find("needle") != std::string::npos;
      },
      600, &Stats);

  EXPECT_NE(Min.render().find("needle"), std::string::npos);
  EXPECT_EQ(Min.Funcs.size(), 1u) << "only the needle function survives";
  EXPECT_EQ(Min.Funcs[0].Stmts.size(), 1u)
      << "only the needle statement survives";
  EXPECT_EQ(Min.Classes.size(), 0u);
  EXPECT_EQ(Min.Funcs[0].ReturnExpr, "0");
  EXPECT_GT(Stats.Removals, 0u);
}

TEST(ShrinkerTest, BoundsPredicateCalls) {
  jstest::GenParams P;
  P.Seed = 4;
  jstest::GenProgram Prog = jstest::generateProgram(P);
  jstest::ShrinkStats Stats;
  jstest::shrinkProgram(
      Prog, [](const jstest::GenProgram &) { return true; }, 10, &Stats);
  EXPECT_LE(Stats.PredicateCalls, 10u);
}

//===----------------------------------------------------------------------===//
// Differential oracle.
//===----------------------------------------------------------------------===//

TEST(DiffRunnerTest, SmokeSweepFindsNoMismatches) {
  jstest::DiffParams P;
  P.Seed = 11;
  P.NumPrograms = 30;
  jstest::DiffRunner Runner(P);
  jstest::DiffStats Stats = Runner.run();

  for (const jstest::Mismatch &M : Stats.Mismatches)
    ADD_FAILURE() << "seed " << M.ProgramSeed << " " << M.ConfigA
                  << " vs " << M.ConfigB << ": " << M.What << "\n"
                  << M.Shrunk;
  EXPECT_EQ(Stats.Programs, 30u);
  // 8 matrix cells: interp, interp-legacy, profile, jit, jit-legacy,
  // jit-proven, jumpstart, jumpstart-threads4.
  EXPECT_EQ(Stats.Runs, 30u * 8);
  EXPECT_GT(Stats.JumpStartBoots, 0u)
      << "the jumpstart matrix cells never actually booted from a "
         "package -- the sweep silently lost its main coverage";
  EXPECT_GT(Stats.DigestComparisons, 0u)
      << "no determinism digests were compared";
}

TEST(DiffRunnerTest, SweepDigestIsReproducible) {
  jstest::DiffParams P;
  P.Seed = 17;
  P.NumPrograms = 6;
  jstest::DiffStats A = jstest::DiffRunner(P).run();
  jstest::DiffStats B = jstest::DiffRunner(P).run();
  ASSERT_EQ(A.Mismatches.size(), 0u);
  EXPECT_EQ(A.SweepDigest, B.SweepDigest)
      << "same seed, same sweep -- the digest covers every observable "
         "and must be bit-for-bit stable";
  EXPECT_NE(A.SweepDigest, 0u);

  jstest::DiffParams Q = P;
  Q.Seed = 18;
  EXPECT_NE(jstest::DiffRunner(Q).run().SweepDigest, A.SweepDigest)
      << "a different seed must visit different programs";
}

TEST(DiffRunnerTest, InjectedDivergenceIsCaughtAndShrunk) {
  // The harness's own acceptance test: a +1 skew on every integer Add in
  // one config must surface as a mismatch, and the shrinker must cut the
  // reproducer down to a handful of lines.
  std::string ReproDir =
      (std::filesystem::temp_directory_path() / "jumpstart-diff-repro")
          .string();
  std::filesystem::remove_all(ReproDir);

  jstest::DiffParams P;
  P.Seed = 7;
  P.NumPrograms = 10;
  P.Matrix = {jstest::smokeMatrix().front(), jstest::skewConfig()};
  P.ReproDir = ReproDir;
  jstest::DiffRunner Runner(P);
  jstest::DiffStats Stats = Runner.run();

  ASSERT_GT(Stats.Mismatches.size(), 0u)
      << "the oracle missed an injected single-opcode divergence";
  for (const jstest::Mismatch &M : Stats.Mismatches) {
    EXPECT_LE(M.ShrunkLines, 20u)
        << "reproducer not minimal:\n" << M.Shrunk;
    EXPECT_FALSE(M.What.empty());
    ASSERT_FALSE(M.ArtifactPath.empty());
    EXPECT_TRUE(std::filesystem::exists(M.ArtifactPath))
        << M.ArtifactPath;

    // The shrunk program must still reproduce the divergence on its own.
    fleet::Workload W;
    ASSERT_TRUE(jstest::DiffRunner::compileProgram(M.Shrunk, W).ok());
    jstest::RunTrace Ref = Runner.runConfig(W, Runner.matrix()[0]);
    jstest::RunTrace Skewed = Runner.runConfig(W, Runner.matrix()[1]);
    EXPECT_FALSE(jstest::DiffRunner::compareTraces(Ref, Skewed).empty())
        << "shrunk reproducer no longer reproduces:\n" << M.Shrunk;
  }
  std::filesystem::remove_all(ReproDir);
}

TEST(DiffRunnerTest, FullMatrixCoversEveryAxis) {
  std::vector<jstest::ExecConfig> M = jstest::fullMatrix();
  bool SawInterp = false, SawJumpStart = false, SawThreads = false,
       SawLayoutOff = false, SawLegacyEngine = false;
  for (const jstest::ExecConfig &C : M) {
    SawInterp |= C.Mode == jstest::ExecConfig::Tier::InterpOnly;
    SawJumpStart |= C.JumpStart;
    SawThreads |= C.HostThreads > 1;
    SawLegacyEngine |= C.LegacyInterp;
    SawLayoutOff |= !C.UseExtTsp || !C.SplitHotCold || !C.UseFunctionSort ||
                    !C.ReorderProperties;
    EXPECT_EQ(C.IntAddSkew, 0) << C.Name
                               << ": skew is for self-tests only";
  }
  EXPECT_TRUE(SawInterp);
  EXPECT_TRUE(SawJumpStart);
  EXPECT_TRUE(SawThreads);
  EXPECT_TRUE(SawLayoutOff);
  EXPECT_TRUE(SawLegacyEngine);
}

TEST(DiffRunnerTest, ElisionAblationPreservesObservables) {
  // The proven-guard-elision ablation: run the same programs through the
  // full-JIT cell with elision off and again with it on.  The
  // observables digest folds sources, return values, outputs and fault
  // counts -- and nothing placement-level -- so equality says elision
  // never changed a single observable, while the guard counter says the
  // analysis actually did something.
  jstest::ExecConfig Off;
  Off.Name = "jit";
  jstest::ExecConfig On = Off;
  On.Name = "jit";
  On.ProvenGuardElision = true;

  jstest::DiffParams P;
  P.Seed = 29;
  P.NumPrograms = 30;
  P.Matrix = {Off};
  jstest::DiffStats A = jstest::DiffRunner(P).run();
  P.Matrix = {On};
  jstest::DiffStats B = jstest::DiffRunner(P).run();

  ASSERT_EQ(A.Mismatches.size(), 0u);
  ASSERT_EQ(B.Mismatches.size(), 0u);
  EXPECT_NE(A.ObsDigest, 0u);
  EXPECT_EQ(A.ObsDigest, B.ObsDigest)
      << "guard elision changed an observable";
}
