//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability subsystem (metrics registry, tracer,
/// exporters) and the Status/Options APIs that ride on it: registry
/// semantics and label interning, span nesting under the virtual clock,
/// exporter golden output, byte-identical traces across identical runs,
/// and the package-rejection counters the corrupt-package paths feed.
///
//===----------------------------------------------------------------------===//

#include "core/Consumer.h"
#include "core/PackageManager.h"
#include "core/Seeder.h"
#include "fleet/ServerSim.h"
#include "fleet/WorkloadGen.h"
#include "obs/Export.h"
#include "obs/Observability.h"
#include "support/Status.h"

#include <gtest/gtest.h>

using namespace jumpstart;

//===----------------------------------------------------------------------===//
// support::Status
//===----------------------------------------------------------------------===//

TEST(StatusTest, DefaultIsOk) {
  support::Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), support::StatusCode::Ok);
  EXPECT_TRUE(S.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  support::Status S =
      support::Status::error(support::StatusCode::CorruptData, "bad bytes");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), support::StatusCode::CorruptData);
  EXPECT_EQ(S.message(), "bad bytes");
  EXPECT_EQ(S.str(), "corrupt_data: bad bytes");
}

TEST(StatusTest, FormattedError) {
  support::Status S = support::errorStatus(
      support::StatusCode::NotFound, "no package #%u in bucket %u", 7u, 3u);
  EXPECT_EQ(S.code(), support::StatusCode::NotFound);
  EXPECT_EQ(S.message(), "no package #7 in bucket 3");
}

TEST(StatusTest, CodeNamesAreStableSnakeCase) {
  EXPECT_STREQ(support::statusCodeName(support::StatusCode::Ok), "ok");
  EXPECT_STREQ(
      support::statusCodeName(support::StatusCode::FingerprintMismatch),
      "fingerprint_mismatch");
  EXPECT_STREQ(
      support::statusCodeName(support::StatusCode::ValidationFaultRate),
      "validation_fault_rate");
}

static support::Status failsThrough(bool Fail) {
  auto Inner = [&]() -> support::Status {
    if (Fail)
      return support::Status::error(support::StatusCode::IoError, "inner");
    return support::Status::okStatus();
  };
  JUMPSTART_RETURN_IF_ERROR(Inner());
  return support::Status::error(support::StatusCode::Internal, "reached");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(failsThrough(true).code(), support::StatusCode::IoError);
  EXPECT_EQ(failsThrough(false).code(), support::StatusCode::Internal);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, CounterIdentityAndFind) {
  obs::MetricsRegistry M;
  obs::Counter &C = M.counter("requests", {{"server", "a"}});
  C.inc();
  C.inc(4);
  // Same name+labels -> same instance.
  EXPECT_EQ(&M.counter("requests", {{"server", "a"}}), &C);
  // Different labels -> different instance.
  EXPECT_NE(&M.counter("requests", {{"server", "b"}}), &C);
  const obs::Counter *Found = M.findCounter("requests", {{"server", "a"}});
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->value(), 5u);
  EXPECT_EQ(M.findCounter("requests", {{"server", "zzz"}}), nullptr);
  EXPECT_EQ(M.findCounter("nonexistent"), nullptr);
}

TEST(MetricsRegistryTest, LabelInterningCanonicalizesOrder) {
  obs::MetricsRegistry M;
  uint32_t A = M.internLabels({{"b", "2"}, {"a", "1"}});
  uint32_t B = M.internLabels({{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(A, B);
  EXPECT_EQ(M.labelsKey(A), "a=1,b=2");
  // Metrics keyed through differently-ordered label sets coincide too.
  obs::Counter &C1 = M.counter("x", {{"k1", "v"}, {"k0", "w"}});
  obs::Counter &C2 = M.counter("x", {{"k0", "w"}, {"k1", "v"}});
  EXPECT_EQ(&C1, &C2);
}

TEST(MetricsRegistryTest, NameInterningIsStable) {
  obs::MetricsRegistry M;
  uint32_t N1 = M.internName("alpha");
  uint32_t N2 = M.internName("beta");
  EXPECT_NE(N1, N2);
  EXPECT_EQ(M.internName("alpha"), N1);
  EXPECT_EQ(M.name(N1), "alpha");
}

TEST(MetricsRegistryTest, HistogramBuckets) {
  obs::MetricsRegistry M;
  obs::Histogram &H = M.histogram("lat", {}, {0.1, 1.0, 10.0});
  H.observe(0.05);  // bucket 0
  H.observe(0.1);   // bucket 0 (<= bound)
  H.observe(0.5);   // bucket 1
  H.observe(100.0); // overflow
  EXPECT_EQ(H.count(), 4u);
  EXPECT_DOUBLE_EQ(H.sum(), 100.65);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 0u);
  EXPECT_EQ(H.bucketCount(3), 1u); // overflow
  // Bounds are fixed at creation; later calls return the same histogram.
  EXPECT_EQ(&M.histogram("lat", {}, {99.0}), &H);
  EXPECT_EQ(H.bounds().size(), 3u);
}

TEST(MetricsRegistryTest, GaugeAndSeries) {
  obs::MetricsRegistry M;
  M.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(M.findGauge("g")->value(), 2.5);
  TimeSeries &S = M.series("s", {{"run", "r1"}});
  S.record(0, 1);
  S.record(1, 2);
  EXPECT_EQ(M.findSeries("s", {{"run", "r1"}})->points().size(), 2u);
  EXPECT_EQ(M.findSeries("s"), nullptr);
}

TEST(MetricsRegistryTest, SortedEntriesDeterministicOrder) {
  obs::MetricsRegistry M;
  // Created in scrambled order; export order must be (name, labels, kind).
  M.counter("zeta");
  M.gauge("alpha", {{"x", "2"}});
  M.counter("alpha", {{"x", "1"}});
  M.counter("alpha");
  std::vector<obs::MetricsRegistry::Entry> E = M.sortedEntries();
  ASSERT_EQ(E.size(), 4u);
  EXPECT_EQ(M.name(E[0].NameId), "alpha");
  EXPECT_EQ(M.labelsKey(E[0].LabelsId), "");
  EXPECT_EQ(M.labelsKey(E[1].LabelsId), "x=1");
  EXPECT_EQ(M.labelsKey(E[2].LabelsId), "x=2");
  EXPECT_EQ(M.name(E[3].NameId), "zeta");
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(TracerTest, SpanNestingUnderVirtualClock) {
  obs::VirtualClock Clock;
  obs::Tracer T(Clock);
  uint32_t Track = T.allocTrack("server");
  uint32_t Other = T.allocTrack("server/jit");
  EXPECT_EQ(T.trackName(Track), "server");

  size_t Outer = T.beginSpan("startup", "phase", Track);
  Clock.advance(1.0);
  size_t Inner = T.beginSpan("warmup", "phase", Track);
  Clock.advance(2.0);
  // A span on another track does NOT nest under this track's stack.
  size_t Foreign = T.beginSpan("compile", "jit", Other);
  T.endSpan(Foreign);
  T.endSpan(Inner);
  Clock.advance(0.5);
  T.endSpan(Outer);

  const std::vector<obs::Span> &S = T.spans();
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0].Name, "startup");
  EXPECT_EQ(S[0].Parent, -1);
  EXPECT_DOUBLE_EQ(S[0].StartSec, 0.0);
  EXPECT_DOUBLE_EQ(S[0].DurSec, 3.5);
  EXPECT_EQ(S[1].Name, "warmup");
  EXPECT_EQ(S[1].Parent, 0); // nested under "startup"
  EXPECT_DOUBLE_EQ(S[1].StartSec, 1.0);
  EXPECT_DOUBLE_EQ(S[1].DurSec, 2.0);
  EXPECT_EQ(S[2].Parent, -1); // other track: top level
}

TEST(TracerTest, CompleteSpanAndInstant) {
  obs::VirtualClock Clock;
  obs::Tracer T(Clock);
  uint32_t Track = T.allocTrack("jit");
  Clock.advance(10.0);
  size_t Job = T.completeSpan("compile-tier2", "jit", Track, 8.0, 2.0,
                              {"func=7"});
  size_t Evt = T.instant("retranslate-all", "jit", Track);
  const std::vector<obs::Span> &S = T.spans();
  EXPECT_DOUBLE_EQ(S[Job].StartSec, 8.0);
  EXPECT_DOUBLE_EQ(S[Job].DurSec, 2.0);
  ASSERT_EQ(S[Job].Args.size(), 1u);
  EXPECT_EQ(S[Job].Args[0], "func=7");
  EXPECT_TRUE(S[Evt].Instant);
  EXPECT_DOUBLE_EQ(S[Evt].StartSec, 10.0);
}

TEST(TracerTest, ScopedSpanNullTracerIsNoop) {
  obs::ScopedSpan Span(nullptr, "nothing", "phase", 0);
  Span.addArg("ignored");
  // Destructor must not crash.
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(obs::jsonEscape("plain"), "plain");
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(ExportTest, MetricsGolden) {
  obs::MetricsRegistry M;
  M.counter("reqs", {{"server", "s0"}}).inc(3);
  M.gauge("init_seconds").set(1.5);
  obs::Histogram &H = M.histogram("lat", {}, {0.5, 1.0});
  H.observe(0.25);
  H.observe(2.0);
  TimeSeries &S = M.series("rps", {{"run", "a"}});
  S.record(0, 10);
  S.record(1, 20.5);

  EXPECT_EQ(
      obs::metricsToJsonLines(M),
      "{\"name\":\"init_seconds\",\"type\":\"gauge\",\"value\":1.5}\n"
      "{\"name\":\"lat\",\"type\":\"histogram\",\"count\":2,\"sum\":2.25,"
      "\"bounds\":[0.5,1],\"buckets\":[1,0,1]}\n"
      "{\"name\":\"reqs\",\"labels\":{\"server\":\"s0\"},\"type\":"
      "\"counter\",\"value\":3}\n"
      "{\"name\":\"rps\",\"labels\":{\"run\":\"a\"},\"type\":\"series\","
      "\"points\":[[0,10],[1,20.5]]}\n");
}

TEST(ExportTest, TraceGoldenAndChromeShape) {
  obs::VirtualClock Clock;
  obs::Tracer T(Clock);
  uint32_t Track = T.allocTrack("server");
  size_t Span = T.beginSpan("request", "request", Track);
  Clock.advance(0.25);
  T.endSpan(Span);
  T.instant("install-package", "package", Track, {"bytes=42"});

  EXPECT_EQ(obs::traceToJsonLines(T),
            "{\"name\":\"request\",\"cat\":\"request\",\"track\":"
            "\"server\",\"start\":0,\"dur\":0.25}\n"
            "{\"name\":\"install-package\",\"cat\":\"package\",\"track\":"
            "\"server\",\"start\":0.25,\"instant\":true,\"args\":[\"bytes="
            "42\"]}\n");

  std::string Chrome = obs::traceToChromeJson(T);
  // Track metadata + both events, microsecond timestamps.
  EXPECT_NE(Chrome.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"server\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"dur\":250000"), std::string::npos);
  EXPECT_NE(Chrome.find("\"ph\":\"i\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JumpStartOptions API
//===----------------------------------------------------------------------===//

TEST(OptionsTest, DefaultsValidate) {
  core::JumpStartOptions Opts;
  EXPECT_TRUE(Opts.validate().empty());
}

TEST(OptionsTest, SetAndParseAssignments) {
  core::JumpStartOptions Opts;
  EXPECT_TRUE(Opts.set("enabled", "false").ok());
  EXPECT_FALSE(Opts.Enabled);
  EXPECT_TRUE(
      Opts.parseAssignments("enabled=yes,max_consumer_attempts=5 "
                            "max_validation_fault_rate=0.25")
          .ok());
  EXPECT_TRUE(Opts.Enabled);
  EXPECT_EQ(Opts.MaxConsumerAttempts, 5u);
  EXPECT_DOUBLE_EQ(Opts.MaxValidationFaultRate, 0.25);

  EXPECT_EQ(Opts.set("no_such_option", "1").code(),
            support::StatusCode::InvalidArgument);
  EXPECT_EQ(Opts.set("enabled", "maybe").code(),
            support::StatusCode::InvalidArgument);
  EXPECT_EQ(Opts.parseAssignments("enabled").code(),
            support::StatusCode::InvalidArgument);
}

TEST(OptionsTest, KeyValuesRoundTrip) {
  core::JumpStartOptions Opts;
  Opts.Enabled = false;
  Opts.AffinityPropertyOrder = true;
  Opts.MaxConsumerAttempts = 9;
  core::JumpStartOptions Restored;
  for (const auto &[Key, Value] : Opts.toKeyValues())
    ASSERT_TRUE(Restored.set(Key, Value).ok()) << Key << "=" << Value;
  EXPECT_EQ(Restored.Enabled, Opts.Enabled);
  EXPECT_EQ(Restored.AffinityPropertyOrder, Opts.AffinityPropertyOrder);
  EXPECT_EQ(Restored.MaxConsumerAttempts, Opts.MaxConsumerAttempts);
}

TEST(OptionsTest, ValidateCatchesIncoherence) {
  core::JumpStartOptions Opts;
  Opts.AffinityPropertyOrder = true;
  Opts.PropertyReordering = false;
  EXPECT_FALSE(Opts.validate().empty());

  core::JumpStartOptions Opts2;
  Opts2.MaxConsumerAttempts = 0;
  EXPECT_FALSE(Opts2.validate().empty());
}

TEST(OptionsTest, Builder) {
  core::JumpStartOptions Opts = core::JumpStartOptionsBuilder()
                                    .enabled(true)
                                    .functionOrder(false)
                                    .maxConsumerAttempts(7)
                                    .build();
  EXPECT_FALSE(Opts.FunctionOrder);
  EXPECT_EQ(Opts.MaxConsumerAttempts, 7u);

  core::JumpStartOptions Bad;
  support::Status S = core::JumpStartOptionsBuilder()
                          .maxConsumerAttempts(0)
                          .tryBuild(Bad);
  EXPECT_EQ(S.code(), support::StatusCode::FailedPrecondition);
}

//===----------------------------------------------------------------------===//
// End-to-end: package lifecycle counters + byte-identical runs
//===----------------------------------------------------------------------===//

namespace {

fleet::WorkloadParams tinySite() {
  fleet::WorkloadParams P;
  P.NumHelpers = 100;
  P.NumClasses = 12;
  P.NumEndpoints = 10;
  P.NumUnits = 8;
  return P;
}

vm::ServerConfig tinyConfig() {
  vm::ServerConfig C;
  C.Jit.ProfileRequestTarget = 40;
  return C;
}

core::JumpStartOptions tinyOptions() {
  core::JumpStartOptions Opts;
  Opts.Coverage.MinProfiledFuncs = 2;
  Opts.Coverage.MinTotalSamples = 10;
  Opts.Coverage.MinPackageBytes = 64;
  Opts.ValidationRequests = 10;
  return Opts;
}

} // namespace

TEST(ObsEndToEndTest, CorruptPackageInjectionCountsRejections) {
  auto W = fleet::generateWorkload(tinySite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = tinyConfig();
  core::JumpStartOptions Opts = tinyOptions();
  obs::Observability Obs;

  core::PackageManager Store;
  core::SeederParams SP;
  SP.Requests = 120;
  core::SeederOutcome Seeded = core::runSeederWorkflow(
      *W, Traffic, Config, Opts, Store, SP, nullptr, &Obs);
  ASSERT_TRUE(Seeded.Published);
  EXPECT_TRUE(Seeded.Result.ok());
  const obs::Counter *Published =
      Obs.Metrics.findCounter("jumpstart.package.published");
  ASSERT_NE(Published, nullptr);
  EXPECT_EQ(Published->value(), 1u);

  // Corrupt the published package in the distribution layer, then boot a
  // consumer: every attempt must reject it as corrupt_data, fall back,
  // and count each rejection.
  Rng R(7);
  ASSERT_TRUE(Store.corrupt(0, 0, 0, R).ok());
  core::ConsumerParams CP;
  CP.Name = "consumer-corrupt";
  core::ConsumerOutcome Out = core::startConsumer(
      *W, Config, Opts, Store, CP, nullptr, &Obs);
  EXPECT_FALSE(Out.UsedJumpStart);
  EXPECT_EQ(Out.Attempts, Opts.MaxConsumerAttempts);
  ASSERT_EQ(Out.Rejections.size(), Out.Attempts);
  for (const support::Status &Rej : Out.Rejections)
    EXPECT_EQ(Rej.code(), support::StatusCode::CorruptData);

  const obs::Counter *Rejected = Obs.Metrics.findCounter(
      "jumpstart.package.rejected", {{"reason", "corrupt_data"}});
  ASSERT_NE(Rejected, nullptr);
  EXPECT_EQ(Rejected->value(), Out.Attempts);
  EXPECT_EQ(Obs.Metrics.findCounter("jumpstart.package.accepted"), nullptr);

  // Publish a clean copy; the next consumer eventually accepts it.
  ASSERT_TRUE(Store.publish(0, 0, Seeded.Package.serialize()).ok());
  CP.Name = "consumer-mixed";
  core::ConsumerOutcome Out2 = core::startConsumer(
      *W, Config, Opts, Store, CP, nullptr, &Obs);
  EXPECT_TRUE(Out2.UsedJumpStart);
  const obs::Counter *Accepted =
      Obs.Metrics.findCounter("jumpstart.package.accepted");
  ASSERT_NE(Accepted, nullptr);
  EXPECT_EQ(Accepted->value(), 1u);
}

TEST(ObsEndToEndTest, SeederRejectionReasonsEnumerated) {
  auto W = fleet::generateWorkload(tinySite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = tinyConfig();
  core::JumpStartOptions Opts = tinyOptions();
  obs::Observability Obs;
  core::PackageManager Store;

  // Chaos: validation crashes -> validation_crash, message keeps "crash".
  core::ChaosHooks Chaos;
  Chaos.CrashesInValidation = [](const profile::ProfilePackage &) {
    return true;
  };
  core::SeederParams SP;
  SP.Requests = 120;
  core::SeederOutcome Outcome = core::runSeederWorkflow(
      *W, Traffic, Config, Opts, Store, SP, &Chaos, &Obs);
  EXPECT_FALSE(Outcome.Published);
  EXPECT_EQ(Outcome.Result.code(), support::StatusCode::ValidationCrash);
  EXPECT_NE(Outcome.Result.message().find("crash"), std::string::npos);
  const obs::Counter *Rejected = Obs.Metrics.findCounter(
      "jumpstart.package.rejected", {{"reason", "validation_crash"}});
  ASSERT_NE(Rejected, nullptr);
  EXPECT_EQ(Rejected->value(), 1u);

  // Impossible coverage thresholds -> coverage_too_low.
  core::JumpStartOptions Strict = Opts;
  Strict.Coverage.MinTotalSamples = 1000000000;
  core::SeederOutcome Low = core::runSeederWorkflow(
      *W, Traffic, Config, Strict, Store, SP, nullptr, &Obs);
  EXPECT_FALSE(Low.Published);
  EXPECT_EQ(Low.Result.code(), support::StatusCode::CoverageTooLow);
  EXPECT_EQ(Obs.Metrics
                .findCounter("jumpstart.package.rejected",
                             {{"reason", "coverage_too_low"}})
                ->value(),
            1u);
}

TEST(ObsEndToEndTest, IdenticalRunsProduceIdenticalBytes) {
  // Two identical fig4-style mini-runs (shared registry, per-run labels)
  // must export byte-identical metrics and traces: every timestamp comes
  // from the virtual clock, every container is deterministically ordered.
  auto RunOnce = [](std::string &Metrics, std::string &Trace,
                    std::string &Chrome) {
    auto W = fleet::generateWorkload(tinySite());
    fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
    vm::ServerConfig Config = tinyConfig();
    obs::Observability Obs;

    vm::ServerConfig SeederConfig = Config;
    SeederConfig.Jit.SeederInstrumentation = true;
    std::unique_ptr<vm::Server> Seeder =
        fleet::runSeeder(*W, Traffic, SeederConfig, 0, 0, 120, 12);
    profile::ProfilePackage Pkg = Seeder->buildSeederPackage(0, 0, 1);

    fleet::ServerSimParams P;
    P.DurationSeconds = 30;
    P.OfferedRps = 60;
    P.Obs = &Obs;
    P.RunLabel = "no-jumpstart";
    fleet::WarmupResult NoJs = fleet::runWarmup(*W, Traffic, Config, P);
    P.RunLabel = "jumpstart";
    fleet::WarmupResult Js =
        fleet::runWarmup(*W, Traffic, Config, P, &Pkg);
    EXPECT_GT(Js.rps().points().size(), 0u);
    EXPECT_GT(NoJs.rps().points().size(), 0u);

    Metrics = obs::metricsToJsonLines(Obs.Metrics);
    Trace = obs::traceToJsonLines(Obs.Trace);
    Chrome = obs::traceToChromeJson(Obs.Trace);
  };

  std::string MetricsA, TraceA, ChromeA, MetricsB, TraceB, ChromeB;
  RunOnce(MetricsA, TraceA, ChromeA);
  RunOnce(MetricsB, TraceB, ChromeB);
  EXPECT_EQ(MetricsA, MetricsB);
  EXPECT_EQ(TraceA, TraceB);
  EXPECT_EQ(ChromeA, ChromeB);
  EXPECT_FALSE(MetricsA.empty());
  EXPECT_FALSE(TraceA.empty());

  // The traces carry the spans the acceptance criteria name.
  EXPECT_NE(TraceA.find("\"request\""), std::string::npos);
  EXPECT_NE(TraceA.find("compile-tier2"), std::string::npos);
  EXPECT_NE(TraceA.find("deserialize-package"), std::string::npos);
  EXPECT_NE(TraceA.find("retranslate-all"), std::string::npos);
}

TEST(ObsEndToEndTest, WarmupRunsOwnObsWhenNoneGiven) {
  auto W = fleet::generateWorkload(tinySite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  fleet::ServerSimParams P;
  P.DurationSeconds = 10;
  P.OfferedRps = 40;
  fleet::WarmupResult Res =
      fleet::runWarmup(*W, Traffic, tinyConfig(), P);
  ASSERT_NE(Res.Obs, nullptr);
  EXPECT_NE(Res.OwnedObs, nullptr);
  EXPECT_GT(Res.rps().points().size(), 0u);
  EXPECT_GT(Res.Obs->Trace.numSpans(), 0u);
}
