//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the host-parallelism layer: the thread pool itself, the
/// shard-then-merge metrics machinery, and -- the load-bearing property
/// -- that every simulated result is byte-identical for any worker
/// count.  Host threads may only change wall-clock time, never output.
///
//===----------------------------------------------------------------------===//

#include "core/Deployment.h"
#include "fleet/ServerSim.h"
#include "fleet/WorkloadGen.h"
#include "obs/Export.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"
#include "vm/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

using namespace jumpstart;
using support::ThreadPool;

//===----------------------------------------------------------------------===//
// ThreadPool.
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, InlineModeRunsOnCaller) {
  for (uint32_t N : {0u, 1u}) {
    ThreadPool P(N);
    EXPECT_EQ(P.numWorkers(), 0u) << "<=1 workers spawns no threads";
    int Ran = 0;
    std::thread::id TaskThread;
    P.submit([&] {
      ++Ran;
      TaskThread = std::this_thread::get_id();
    });
    EXPECT_EQ(Ran, 1) << "inline submit completes before returning";
    EXPECT_EQ(TaskThread, std::this_thread::get_id());
    P.wait();
    std::vector<uint64_t> Counts = P.perWorkerTaskCounts();
    ASSERT_EQ(Counts.size(), 1u);
    EXPECT_EQ(Counts[0], 1u);
  }
}

TEST(ThreadPoolTest, RunsEveryTaskAcrossWorkers) {
  ThreadPool P(4);
  EXPECT_EQ(P.numWorkers(), 4u);
  std::atomic<int> Sum{0};
  for (int I = 0; I < 500; ++I)
    P.submit([&Sum] { Sum.fetch_add(1, std::memory_order_relaxed); });
  P.wait();
  EXPECT_EQ(Sum.load(), 500);
  uint64_t Total = 0;
  for (uint64_t C : P.perWorkerTaskCounts())
    Total += C;
  EXPECT_EQ(Total, 500u) << "per-worker stats account for every task";
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool P(3);
  std::vector<std::atomic<int>> Hits(97);
  P.parallelFor(Hits.size(), [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
  // N == 0 is a no-op.
  P.parallelFor(0, [&](size_t) { ADD_FAILURE() << "body ran for N=0"; });
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool P(2);
  P.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(P.wait(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> Ran{0};
  P.submit([&Ran] { ++Ran; });
  P.wait();
  EXPECT_EQ(Ran.load(), 1);
}

TEST(ThreadPoolTest, InlineModeAlsoRethrows) {
  ThreadPool P(1);
  P.submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(P.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWorkUnderLoad) {
  std::atomic<int> Ran{0};
  {
    ThreadPool P(2, /*QueueCapacity=*/8);
    for (int I = 0; I < 64; ++I)
      P.submit([&Ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        Ran.fetch_add(1, std::memory_order_relaxed);
      });
    P.shutdown(); // graceful: drains the queue, then joins
  }
  EXPECT_EQ(Ran.load(), 64) << "shutdown must not drop queued tasks";
}

TEST(ThreadPoolTest, ZeroCapacityQueueIsClampedNotDeadlocked) {
  // QueueCapacity 0 would make NotFull.wait() unsatisfiable: every
  // submit() would block forever.  The constructor clamps it to 1.
  ThreadPool P(2, /*QueueCapacity=*/0);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 16; ++I)
    P.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  P.wait();
  EXPECT_EQ(Ran.load(), 16);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotPoisonThePool) {
  // One task throwing must neither kill the worker nor block later
  // tasks; wait() reports the first exception and clears it.
  ThreadPool P(2);
  std::atomic<int> Ran{0};
  P.submit([] { throw std::runtime_error("task boom"); });
  for (int I = 0; I < 32; ++I)
    P.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_THROW(P.wait(), std::runtime_error);
  EXPECT_EQ(Ran.load(), 32) << "tasks after the throw still ran";
  // The error was consumed: a second wait() is clean.
  P.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  P.wait();
  EXPECT_EQ(Ran.load(), 33);
}

TEST(ThreadPoolDeathTest, SubmitAfterShutdownAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Queue path (live workers)...
  EXPECT_DEATH(
      {
        ThreadPool P(2);
        P.shutdown();
        P.submit([] {});
      },
      "submit\\(\\) after shutdown\\(\\)");
  // ...and the inline path: a pool with joined (or no) workers must not
  // silently run the task on the caller either.
  EXPECT_DEATH(
      {
        ThreadPool P(0);
        P.shutdown();
        P.submit([] {});
      },
      "submit\\(\\) after shutdown\\(\\)");
}

TEST(ThreadPoolTest, NestedSubmitFromLastLiveWorker) {
  // A task that submits from a worker while every other worker is
  // blocked: the nested submits must run inline on that worker (queueing
  // them could deadlock -- nobody is left to drain the queue).
  ThreadPool P(2, /*QueueCapacity=*/1);
  std::atomic<bool> Release{false};
  std::atomic<int> Nested{0};
  P.submit([&Release] {
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  P.submit([&] {
    for (int I = 0; I < 8; ++I)
      P.submit([&Nested] {
        Nested.fetch_add(1, std::memory_order_relaxed);
      });
    Release.store(true, std::memory_order_release);
  });
  P.wait();
  EXPECT_EQ(Nested.load(), 8);
  // All eight ran inline on the submitting worker, none were queued.
  std::vector<uint64_t> Counts = P.perWorkerTaskCounts();
  uint64_t QueuedTasks = 0;
  for (uint64_t C : Counts)
    QueuedTasks += C;
  EXPECT_EQ(QueuedTasks, 2u) << "only the two outer tasks went through "
                                "the queue";
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A task running on a pool worker fans out on the same pool (the
  // deployment boots consumers whose servers use the same CompilePool);
  // the nested fan-out must run inline instead of deadlocking.
  ThreadPool P(2);
  std::atomic<int> Inner{0};
  P.parallelFor(4, [&](size_t) {
    P.parallelFor(8, [&](size_t) {
      Inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(Inner.load(), 32);
}

//===----------------------------------------------------------------------===//
// Shard-then-merge metrics.
//===----------------------------------------------------------------------===//

TEST(MetricsMergeTest, HistogramMergeAddsBuckets) {
  obs::Histogram A({1.0, 2.0});
  obs::Histogram B({1.0, 2.0});
  A.observe(0.5);
  A.observe(1.5);
  B.observe(1.5);
  B.observe(5.0);
  A.merge(B);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_DOUBLE_EQ(A.sum(), 8.5);
  EXPECT_EQ(A.bucketCount(0), 1u);
  EXPECT_EQ(A.bucketCount(1), 2u);
  EXPECT_EQ(A.bucketCount(2), 1u) << "overflow bucket";
}

TEST(MetricsMergeTest, MergeFromFoldsEveryKind) {
  obs::MetricsRegistry Shard;
  Shard.counter("c", {{"k", "v"}}).inc(3);
  Shard.gauge("g").set(2.5);
  Shard.histogram("h", {}, {1.0}).observe(0.5);
  Shard.series("s", {{"run", "a"}}).record(1.0, 10.0);

  obs::MetricsRegistry Main;
  Main.counter("c", {{"k", "v"}}).inc(2);
  Main.mergeFrom(Shard);
  EXPECT_EQ(Main.findCounter("c", {{"k", "v"}})->value(), 5u);
  EXPECT_DOUBLE_EQ(Main.findGauge("g")->value(), 2.5);
  EXPECT_EQ(Main.findHistogram("h")->count(), 1u);
  ASSERT_NE(Main.findSeries("s", {{"run", "a"}}), nullptr);
  EXPECT_EQ(Main.findSeries("s", {{"run", "a"}})->points().size(), 1u);

  // Merging identical shards in the same order renders identically.
  obs::MetricsRegistry M1, M2;
  M1.mergeFrom(Shard);
  M2.mergeFrom(Shard);
  EXPECT_EQ(obs::metricsToJsonLines(M1), obs::metricsToJsonLines(M2));
}

//===----------------------------------------------------------------------===//
// Determinism: identical output for any worker count.
//===----------------------------------------------------------------------===//

namespace {

class ThreadingFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    fleet::WorkloadParams P;
    P.NumHelpers = 120;
    P.NumClasses = 24;
    P.NumEndpoints = 12;
    P.NumUnits = 12;
    W = fleet::generateWorkload(P).release();
    Traffic = new fleet::TrafficModel(*W, fleet::TrafficParams(), 42);
    vm::ServerConfig SeederConfig = baseConfig();
    SeederConfig.Jit.SeederInstrumentation = true;
    Pkg = new profile::ProfilePackage(
        fleet::runSeeder(*W, *Traffic, SeederConfig, 0, 0, 300, 12)
            ->buildSeederPackage(0, 0, 1));
  }
  static void TearDownTestSuite() {
    delete Pkg;
    delete Traffic;
    delete W;
    Pkg = nullptr;
    Traffic = nullptr;
    W = nullptr;
  }

  static vm::ServerConfig baseConfig() {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 40;
    return C;
  }

  /// Boots a consumer with the given host pool and renders everything
  /// observable about the result into one string: full metrics + trace
  /// dumps plus a per-translation TransDb summary.
  static std::string bootSignature(support::ThreadPool *Pool,
                                   bool PrecompileLive) {
    obs::Observability Obs;
    vm::ServerConfig C = baseConfig();
    C.CompilePool = Pool;
    C.Jit.PrecompileLiveCode = PrecompileLive;
    C.Obs = &Obs;
    C.Name = "consumer";
    vm::Server S(W->Repo, C, 17);
    if (!S.installPackage(*Pkg).ok())
      return "install failed";
    vm::InitStats Init = S.startup();
    std::string Sig = strFormat("init=%.6f precompile=%.6f code=%llu\n",
                                Init.TotalSeconds, Init.PrecompileSeconds,
                                static_cast<unsigned long long>(
                                    S.theJit().totalCodeBytes()));
    for (const auto &T : S.theJit().transDb().all())
      Sig += strFormat("t%u k=%s f=%u placed=%d entry=%llu blocks=%zu "
                       "cost=%.6f\n",
                       T->Id, jit::transKindName(T->Kind),
                       T->func().raw(), T->Placed ? 1 : 0,
                       static_cast<unsigned long long>(T->entryAddr()),
                       T->BlockAddrs.size(), T->CostPerBytecode);
    Sig += obs::metricsToJsonLines(Obs.Metrics);
    Sig += obs::traceToJsonLines(Obs.Trace);
    return Sig;
  }

  static fleet::Workload *W;
  static fleet::TrafficModel *Traffic;
  static profile::ProfilePackage *Pkg;
};

fleet::Workload *ThreadingFixture::W = nullptr;
fleet::TrafficModel *ThreadingFixture::Traffic = nullptr;
profile::ProfilePackage *ThreadingFixture::Pkg = nullptr;

} // namespace

TEST_F(ThreadingFixture, ConsumerBootIdenticalForAnyWorkerCount) {
  for (bool PrecompileLive : {false, true}) {
    std::string Serial = bootSignature(nullptr, PrecompileLive);
    ASSERT_NE(Serial.find("placed=1"), std::string::npos)
        << "precompile must place translations";
    for (uint32_t Workers : {1u, 2u, 8u}) {
      ThreadPool Pool(Workers);
      EXPECT_EQ(bootSignature(&Pool, PrecompileLive), Serial)
          << Workers << " workers, precompile_live=" << PrecompileLive;
    }
  }
}

TEST_F(ThreadingFixture, WarmupSweepMatchesSerial) {
  vm::ServerConfig Config = baseConfig();
  auto MakeRuns = [&] {
    std::vector<fleet::WarmupSweepRun> Runs;
    for (int I = 0; I < 3; ++I) {
      fleet::WarmupSweepRun Run;
      Run.Params.DurationSeconds = 60;
      Run.Params.Seed = 7 + I;
      Run.Params.RunLabel = strFormat("run%d", I);
      Run.Package = (I == 1) ? Pkg : nullptr;
      Runs.push_back(std::move(Run));
    }
    return Runs;
  };
  obs::MetricsRegistry SerialMerged;
  std::vector<fleet::WarmupResult> Serial = fleet::runWarmupSweep(
      *W, *Traffic, Config, MakeRuns(), nullptr, &SerialMerged);
  std::string SerialJson = obs::metricsToJsonLines(SerialMerged);
  for (uint32_t Workers : {2u, 8u}) {
    ThreadPool Pool(Workers);
    obs::MetricsRegistry Merged;
    std::vector<fleet::WarmupResult> Results = fleet::runWarmupSweep(
        *W, *Traffic, Config, MakeRuns(), &Pool, &Merged);
    EXPECT_EQ(obs::metricsToJsonLines(Merged), SerialJson)
        << Workers << " workers";
    ASSERT_EQ(Results.size(), Serial.size());
    for (size_t I = 0; I < Results.size(); ++I)
      EXPECT_DOUBLE_EQ(Results[I].CapacityLossFraction,
                       Serial[I].CapacityLossFraction);
  }
}

TEST_F(ThreadingFixture, DeploymentIdenticalForAnyWorkerCount) {
  core::JumpStartOptions Opts;
  Opts.Coverage.MinProfiledFuncs = 5;
  Opts.Coverage.MinTotalSamples = 100;
  Opts.ValidationRequests = 10;
  core::DeploymentParams DP;
  DP.Regions = 1;
  DP.Buckets = 2;
  DP.SeedersPerPair = 1;
  DP.SeederRequests = 120;
  DP.ConsumerSamplesPerPair = 1;
  vm::ServerConfig Config = baseConfig();

  auto RunPush = [&](support::ThreadPool *Pool, core::PackageManager &Manager) {
    core::DeploymentParams P = DP;
    P.Pool = Pool;
    return core::simulateDeployment(*W, *Traffic, Config, Opts, Manager, P);
  };
  auto ReportText = [](const core::DeploymentReport &R) {
    std::string S = strFormat(
        "canary=%d seeders=%u published=%u failures=%u booted=%u js=%u "
        "init=%.6f\n",
        R.CanaryHealthy ? 1 : 0, R.SeedersRun, R.PackagesPublished,
        R.SeederFailures, R.ConsumersBooted, R.ConsumersUsedJumpStart,
        R.MeanConsumerInitSeconds);
    for (const std::string &Line : R.Log)
      S += Line + "\n";
    return S;
  };

  core::PackageManager SerialManager;
  std::string Serial = ReportText(RunPush(nullptr, SerialManager));
  for (uint32_t Workers : {1u, 2u, 8u}) {
    ThreadPool Pool(Workers);
    core::PackageManager Manager;
    EXPECT_EQ(ReportText(RunPush(&Pool, Manager)), Serial)
        << Workers << " workers";
    for (uint32_t B = 0; B < DP.Buckets; ++B) {
      EXPECT_EQ(Manager.available(0, B), SerialManager.available(0, B))
          << "published blobs must land on the same shelves";
      // Manifest-level determinism: same checksums in the same order.
      auto A = Manager.manifests(0, B);
      auto S2 = SerialManager.manifests(0, B);
      ASSERT_EQ(A.size(), S2.size());
      for (size_t I = 0; I < A.size(); ++I)
        EXPECT_EQ(A[I].Checksum, S2[I].Checksum)
            << "shelf (0," << B << ") package #" << I;
    }
  }

  // The parallel path's merged metrics are themselves deterministic
  // across worker counts (the serial path records into the shared
  // registry directly, so it is compared separately above).
  auto MetricsText = [&](uint32_t Workers) {
    ThreadPool Pool(Workers);
    obs::Observability Obs;
    core::PackageManager Manager;
    core::DeploymentParams P = DP;
    P.Pool = &Pool;
    core::simulateDeployment(*W, *Traffic, Config, Opts, Manager, P,
                             /*Chaos=*/nullptr, &Obs);
    return obs::metricsToJsonLines(Obs.Metrics);
  };
  std::string M1 = MetricsText(1);
  EXPECT_EQ(MetricsText(2), M1);
  EXPECT_EQ(MetricsText(8), M1);
}
