//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end language semantics: source -> bytecode -> interpreter.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace jumpstart;
using jumpstart::testing::TestVm;

TEST(Interpreter, ArithmeticAndLocals) {
  TestVm Vm("function main() { $x = 3; $y = 4; return $x * $y + 2; }");
  EXPECT_EQ(Vm.runInt("main"), 14);
}

TEST(Interpreter, IntegerDivisionStaysExact) {
  TestVm Vm("function main() { return 12 / 4; }");
  EXPECT_EQ(Vm.runInt("main"), 3);
}

TEST(Interpreter, InexactDivisionPromotesToDouble) {
  TestVm Vm("function main() { return 7 / 2; }");
  interp::InterpResult R = Vm.run("main");
  ASSERT_EQ(R.Ret.T, runtime::Type::Dbl);
  EXPECT_DOUBLE_EQ(R.Ret.D, 3.5);
}

TEST(Interpreter, DivisionByZeroFaultsToNull) {
  TestVm Vm("function main() { return 1 / 0; }");
  interp::InterpResult R = Vm.run("main");
  EXPECT_TRUE(R.Ret.isNull());
  EXPECT_GE(R.Faults, 1u);
}

TEST(Interpreter, ModuloAndPrecedence) {
  TestVm Vm("function main() { return 2 + 3 * 4 % 5; }");
  EXPECT_EQ(Vm.runInt("main"), 4); // 3*4 % 5 = 2; 2+2
}

TEST(Interpreter, WhileLoopSumsRange) {
  TestVm Vm("function main($n) {"
            "  $sum = 0; $i = 1;"
            "  while ($i <= $n) { $sum = $sum + $i; $i = $i + 1; }"
            "  return $sum;"
            "}");
  EXPECT_EQ(Vm.runInt("main", {100}), 5050);
}

TEST(Interpreter, BreakAndContinue) {
  TestVm Vm("function main() {"
            "  $sum = 0; $i = 0;"
            "  while (true) {"
            "    $i = $i + 1;"
            "    if ($i > 10) { break; }"
            "    if ($i % 2 == 0) { continue; }"
            "    $sum = $sum + $i;"
            "  }"
            "  return $sum;" // 1+3+5+7+9
            "}");
  EXPECT_EQ(Vm.runInt("main"), 25);
}

TEST(Interpreter, IfElseChains) {
  TestVm Vm("function classify($x) {"
            "  if ($x < 0) { return 0 - 1; }"
            "  else if ($x == 0) { return 0; }"
            "  else { return 1; }"
            "}");
  EXPECT_EQ(Vm.runInt("classify", {-5}), -1);
  EXPECT_EQ(Vm.runInt("classify", {0}), 0);
  EXPECT_EQ(Vm.runInt("classify", {7}), 1);
}

TEST(Interpreter, ShortCircuitAndOr) {
  TestVm Vm("function boom() { return 1 / 0; }"
            "function andFalse() { return false && boom(); }"
            "function orTrue() { return true || boom(); }");
  interp::InterpResult RAnd = Vm.run("andFalse");
  EXPECT_EQ(RAnd.Ret.T, runtime::Type::Bool);
  EXPECT_FALSE(RAnd.Ret.B);
  EXPECT_EQ(RAnd.Faults, 0u) << "short-circuit must not evaluate rhs";
  interp::InterpResult ROr = Vm.run("orTrue");
  EXPECT_EQ(ROr.Ret.T, runtime::Type::Bool);
  EXPECT_TRUE(ROr.Ret.B);
  EXPECT_EQ(ROr.Faults, 0u);
}

TEST(Interpreter, DirectCallsAndRecursion) {
  TestVm Vm("function fib($n) {"
            "  if ($n < 2) { return $n; }"
            "  return fib($n - 1) + fib($n - 2);"
            "}");
  EXPECT_EQ(Vm.runInt("fib", {15}), 610);
}

TEST(Interpreter, StringConcatAndCompare) {
  TestVm Vm("function main() {"
            "  $a = \"foo\" . \"bar\";"
            "  if ($a == \"foobar\") { return 1; }"
            "  return 0;"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 1);
}

TEST(Interpreter, ConcatCoercesNumbers) {
  TestVm Vm("function main() { print(\"n=\" . 42); return 0; }");
  EXPECT_EQ(Vm.runForOutput("main"), "n=42");
}

TEST(Interpreter, VecLiteralIndexAndAppend) {
  TestVm Vm("function main() {"
            "  $v = vec[10, 20, 30];"
            "  $v[3] = 40;"          // append at size
            "  $v[0] = $v[0] + 1;"   // in-place update
            "  return $v[0] + $v[3];"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 51);
}

TEST(Interpreter, VecOutOfBoundsFaults) {
  TestVm Vm("function main() { $v = vec[1]; return $v[5]; }");
  interp::InterpResult R = Vm.run("main");
  EXPECT_TRUE(R.Ret.isNull());
  EXPECT_GE(R.Faults, 1u);
}

TEST(Interpreter, DictLiteralLookupInsertOverwrite) {
  TestVm Vm("function main() {"
            "  $d = dict[\"a\" => 1, \"b\" => 2];"
            "  $d[\"c\"] = 3;"
            "  $d[\"a\"] = 10;"
            "  return $d[\"a\"] + $d[\"b\"] + $d[\"c\"];"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 15);
}

TEST(Interpreter, DictMissingKeyIsNull) {
  TestVm Vm("function main() {"
            "  $d = dict[\"a\" => 1];"
            "  if ($d[\"zzz\"] == null) { return 1; }"
            "  return 0;"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 1);
}

TEST(Interpreter, DictIntegerKeys) {
  TestVm Vm("function main() {"
            "  $d = dict[7 => \"seven\"];"
            "  $d[8] = \"eight\";"
            "  print($d[7] . \",\" . $d[8]);"
            "  return 0;"
            "}");
  EXPECT_EQ(Vm.runForOutput("main"), "seven,eight");
}

TEST(Interpreter, ObjectsPropsAndMethods) {
  TestVm Vm("class Point {"
            "  prop $x; prop $y;"
            "  method init($x, $y) { $this->x = $x; $this->y = $y; return $this; }"
            "  method norm2() { return $this->x * $this->x + $this->y * $this->y; }"
            "}"
            "function main() {"
            "  $p = new Point()->init(3, 4);"
            "  return $p->norm2();"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 25);
}

TEST(Interpreter, InheritanceAndOverride) {
  TestVm Vm("class Base {"
            "  prop $v;"
            "  method get() { return 1; }"
            "  method both() { return $this->get() + 10; }"
            "}"
            "class Derived extends Base {"
            "  method get() { return 2; }"
            "}"
            "function main() {"
            "  $b = new Base(); $d = new Derived();"
            "  return $b->both() * 100 + $d->both();"
            "}");
  // Base: 1+10=11; Derived: 2+10=12 (virtual dispatch through $this).
  EXPECT_EQ(Vm.runInt("main"), 1112);
}

TEST(Interpreter, InheritedPropertiesAccessible) {
  TestVm Vm("class A { prop $a; }"
            "class B extends A { prop $b; }"
            "function main() {"
            "  $o = new B();"
            "  $o->a = 5; $o->b = 7;"
            "  return $o->a + $o->b;"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 12);
}

TEST(Interpreter, MethodOnNonObjectFaults) {
  TestVm Vm("function main() { $x = 3; return $x->foo(); }");
  interp::InterpResult R = Vm.run("main");
  EXPECT_TRUE(R.Ret.isNull());
  EXPECT_GE(R.Faults, 1u);
}

TEST(Interpreter, UnknownMethodFaults) {
  TestVm Vm("class C { prop $p; }"
            "function main() { $c = new C(); return $c->nope(); }");
  interp::InterpResult R = Vm.run("main");
  EXPECT_TRUE(R.Ret.isNull());
  EXPECT_GE(R.Faults, 1u);
}

TEST(Interpreter, BuiltinsWork) {
  TestVm Vm("function main() {"
            "  $s = \"hello\";"
            "  return strlen($s) + abs(0 - 3) + max(2, 9) + min(2, 9)"
            "       + floor(2.9) + ord(\"A\");"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 5 + 3 + 9 + 2 + 2 + 65);
}

TEST(Interpreter, SubstrAndRepeat) {
  TestVm Vm("function main() {"
            "  print(substr(\"abcdef\", 1, 3));"
            "  print(str_repeat(\"xy\", 2));"
            "  return 0;"
            "}");
  EXPECT_EQ(Vm.runForOutput("main"), "bcdxyxy");
}

TEST(Interpreter, CompoundAssignments) {
  TestVm Vm("function main() {"
            "  $x = 10; $x += 5; $x -= 3;"
            "  $s = \"a\"; $s .= \"b\";"
            "  if ($s == \"ab\") { return $x; }"
            "  return 0;"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 12);
}

TEST(Interpreter, PropertyIndexAssignment) {
  TestVm Vm("class Box { prop $items; }"
            "function main() {"
            "  $b = new Box();"
            "  $b->items = vec[1, 2];"
            "  $b->items[2] = 3;"
            "  return $b->items[0] + $b->items[1] + $b->items[2];"
            "}");
  EXPECT_EQ(Vm.runInt("main"), 6);
}

TEST(Interpreter, StepBudgetAbortsInfiniteLoop) {
  TestVm Vm("function main() { while (true) { $x = 1; } return 0; }");
  interp::InterpOptions Opts;
  Opts.StepBudget = 10'000;
  interp::Interpreter Interp(Vm.Repo, Vm.Classes, Vm.Heap, Vm.Builtins, Opts);
  interp::InterpResult R = Interp.call(Vm.Repo.findFunction("main"), {});
  EXPECT_FALSE(R.Ok);
}

TEST(Interpreter, DeepRecursionAborts) {
  TestVm Vm("function down($n) { return down($n + 1); }"
            "function main() { return down(0); }");
  interp::InterpResult R = Vm.run("main");
  EXPECT_FALSE(R.Ok);
}

TEST(Interpreter, UninitializedLocalIsNull) {
  TestVm Vm("function main() { if ($never == null) { return 1; } return 0; }");
  EXPECT_EQ(Vm.runInt("main"), 1);
}

TEST(Interpreter, LenBuiltinViaOpcode) {
  TestVm Vm("function main() {"
            "  $v = vec[1,2,3];"
            "  $d = dict[\"k\" => 1];"
            "  $n = keys($d);"
            "  return strlen(\"abc\") + $v[2] + $n[0] == \"k\";"
            "}");
  interp::InterpResult R = Vm.run("main");
  EXPECT_TRUE(R.Ok);
}

TEST(Interpreter, InstrCountsAccumulatePerFunction) {
  TestVm Vm("function helper() { return 1; }"
            "function main() { $s = 0; $i = 0;"
            "  while ($i < 10) { $s = $s + helper(); $i = $i + 1; }"
            "  return $s; }");
  std::vector<uint64_t> Counts;
  Vm.Interp->setInstrCounts(&Counts);
  EXPECT_EQ(Vm.runInt("main"), 10);
  bc::FuncId Helper = Vm.Repo.findFunction("helper");
  bc::FuncId Main = Vm.Repo.findFunction("main");
  ASSERT_GE(Counts.size(), Vm.Repo.numFuncs());
  EXPECT_GT(Counts[Helper.raw()], 0u);
  EXPECT_GT(Counts[Main.raw()], Counts[Helper.raw()]);
}
