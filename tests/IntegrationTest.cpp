//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-module integration and property tests: semantic invariance
/// across execution tiers and observation modes, end-to-end package round
/// trips over randomly generated workloads, and simulator determinism.
///
//===----------------------------------------------------------------------===//

#include "core/Consumer.h"
#include "core/Seeder.h"
#include "fleet/ServerSim.h"
#include "fleet/SteadyState.h"
#include "jit/VasmTracer.h"
#include "runtime/ValueOps.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace jumpstart;

namespace {

fleet::WorkloadParams tinySite(uint64_t Seed) {
  fleet::WorkloadParams P;
  P.Seed = Seed;
  P.NumHelpers = 96;
  P.NumClasses = 18;
  P.NumEndpoints = 10;
  P.NumUnits = 10;
  return P;
}

/// Runs every endpoint once in a bare interpreter and returns the
/// stringified results.
std::vector<std::string> endpointResults(const fleet::Workload &W,
                                         interp::ExecCallbacks *CB,
                                         int64_t Arg) {
  runtime::ClassTable Classes(W.Repo);
  runtime::Heap Heap;
  interp::Interpreter Interp(W.Repo, Classes, Heap,
                             runtime::BuiltinTable::standard());
  Interp.setCallbacks(CB);
  std::vector<std::string> Results;
  for (bc::FuncId E : W.Endpoints) {
    interp::InterpResult R =
        Interp.call(E, {runtime::Value::integer(Arg)});
    Results.push_back(runtime::toString(R.Ret));
    Heap.reset();
  }
  return Results;
}

} // namespace

//===----------------------------------------------------------------------===//
// Semantic invariance.
//===----------------------------------------------------------------------===//

TEST(SemanticInvariance, ObservationDoesNotChangeResults) {
  // Attaching profiling hooks or the Vasm tracer must never change what
  // the program computes.
  auto W = fleet::generateWorkload(tinySite(3));
  std::vector<std::string> Plain = endpointResults(*W, nullptr, 12345);

  jit::Jit J(W->Repo, jit::JitConfig());
  jit::JitProfilingHooks Hooks(J);
  EXPECT_EQ(endpointResults(*W, &Hooks, 12345), Plain);

  sim::MachineSim Machine;
  jit::VasmTracer Tracer(J, Machine);
  EXPECT_EQ(endpointResults(*W, &Tracer, 12345), Plain);
}

TEST(SemanticInvariance, TiersDoNotChangeResults) {
  // A fully warmed Jump-Start consumer and a bare interpreter must agree
  // on every endpoint result: the JIT affects cost, never semantics.
  auto W = fleet::generateWorkload(tinySite(4));
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 9);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 30;
  Config.Jit.SeederInstrumentation = true;
  auto Seeder = fleet::runSeeder(*W, Traffic, Config, 0, 0, 100, 5);
  profile::ProfilePackage Pkg = Seeder->buildSeederPackage(0, 0, 1);

  vm::ServerConfig CConfig;
  CConfig.Jit.ProfileRequestTarget = 30;
  vm::Server Consumer(W->Repo, CConfig, 6);
  ASSERT_TRUE(Consumer.installPackage(Pkg).ok());
  Consumer.startup();
  ASSERT_EQ(Consumer.theJit().phase(), jit::JitPhase::Mature);

  std::vector<std::string> Plain = endpointResults(*W, nullptr, 777);
  for (size_t E = 0; E < W->Endpoints.size(); ++E) {
    // Execute on the consumer (hooks attached, optimized code "running").
    runtime::Heap Scratch;
    interp::InterpResult R = Consumer.interpreter().call(
        W->Endpoints[E], {runtime::Value::integer(777)});
    EXPECT_EQ(runtime::toString(R.Ret), Plain[E])
        << "endpoint " << E << " diverged on the warmed consumer";
  }
}

TEST(SemanticInvariance, PropertyReorderingPreservesSemantics) {
  // Reordered object layouts are an internal matter: results identical.
  auto W = fleet::generateWorkload(tinySite(5));
  std::vector<std::string> Plain = endpointResults(*W, nullptr, 999);

  // Build a counts map that reorders aggressively (every property hot in
  // reverse declaration order).
  std::unordered_map<std::string, uint64_t> Counts;
  for (const bc::Class &K : W->Repo.classes()) {
    uint64_t Hot = 1;
    for (const bc::StringId P : K.DeclProps)
      Counts[K.Name + "::" + W->Repo.str(P)] = Hot++;
  }
  runtime::ClassTable Classes(W->Repo);
  Classes.enablePropReordering(&Counts);
  runtime::Heap Heap;
  interp::Interpreter Interp(W->Repo, Classes, Heap,
                             runtime::BuiltinTable::standard());
  for (size_t E = 0; E < W->Endpoints.size(); ++E) {
    interp::InterpResult R = Interp.call(
        W->Endpoints[E], {runtime::Value::integer(999)});
    EXPECT_EQ(runtime::toString(R.Ret), Plain[E]);
    Heap.reset();
  }
}

//===----------------------------------------------------------------------===//
// End-to-end package round trip over random workloads.
//===----------------------------------------------------------------------===//

class PackageRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PackageRoundTrip, SeedConsumeServe) {
  auto W = fleet::generateWorkload(tinySite(GetParam()));
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), GetParam());
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 30;

  core::PackageManager Manager;
  core::JumpStartOptions Opts;
  Opts.Coverage.MinProfiledFuncs = 3;
  Opts.Coverage.MinTotalSamples = 50;
  Opts.ValidationRequests = 8;
  core::SeederParams SP;
  SP.Requests = 80;
  SP.Seed = GetParam() * 7 + 1;
  core::SeederOutcome Seeded = core::runSeederWorkflow(
      *W, Traffic, Config, Opts, Manager, SP);
  ASSERT_TRUE(Seeded.Published)
      << (Seeded.Problems.empty() ? "?" : Seeded.Problems[0]);

  core::ConsumerParams CP;
  CP.Seed = GetParam() * 13 + 5;
  core::ConsumerOutcome Consumer =
      core::startConsumer(*W, Config, Opts, Manager, CP);
  ASSERT_TRUE(Consumer.UsedJumpStart);
  ASSERT_EQ(Consumer.Server->theJit().phase(), jit::JitPhase::Mature);

  // The consumer serves every endpoint without faults and its mature
  // requests are much cheaper than a cold server's.
  vm::Server Cold(W->Repo, Config, 1);
  Cold.startup();
  Rng R(GetParam());
  double WarmCost = 0;
  double ColdCost = 0;
  uint64_t FaultsBefore = Consumer.Server->totalFaults();
  for (int I = 0; I < 10; ++I) {
    auto Args = fleet::TrafficModel::makeArgs(R);
    bc::FuncId E = W->Endpoints[R.nextBelow(W->Endpoints.size())];
    WarmCost += Consumer.Server->executeRequest(E, Args).Seconds;
    ColdCost += Cold.executeRequest(E, Args).Seconds;
  }
  EXPECT_EQ(Consumer.Server->totalFaults(), FaultsBefore);
  EXPECT_LT(WarmCost, ColdCost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackageRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55));

//===----------------------------------------------------------------------===//
// Simulator determinism.
//===----------------------------------------------------------------------===//

TEST(Determinism, WarmupRunsAreReproducible) {
  auto W = fleet::generateWorkload(tinySite(6));
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 6);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 100;
  fleet::ServerSimParams P;
  P.DurationSeconds = 60;
  P.OfferedRps = 800;
  fleet::WarmupResult A = fleet::runWarmup(*W, Traffic, Config, P);
  fleet::WarmupResult B = fleet::runWarmup(*W, Traffic, Config, P);
  EXPECT_DOUBLE_EQ(A.CapacityLossFraction, B.CapacityLossFraction);
  ASSERT_EQ(A.rps().points().size(), B.rps().points().size());
  for (size_t I = 0; I < A.rps().points().size(); ++I)
    EXPECT_DOUBLE_EQ(A.rps().points()[I].Value, B.rps().points()[I].Value);
}

TEST(Determinism, SteadyStateMeasurementIsReproducible) {
  auto W = fleet::generateWorkload(tinySite(7));
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 7);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 30;
  auto S1 = fleet::runSeeder(*W, Traffic, Config, 0, 0, 80, 9);
  auto S2 = fleet::runSeeder(*W, Traffic, Config, 0, 0, 80, 9);
  fleet::SteadyStateParams P;
  P.Requests = 40;
  P.WarmupRequests = 10;
  fleet::SteadyStateResult A = measureSteadyState(*W, Traffic, *S1, P);
  fleet::SteadyStateResult B = measureSteadyState(*W, Traffic, *S2, P);
  EXPECT_EQ(A.Counters.Instructions, B.Counters.Instructions);
  EXPECT_EQ(A.Counters.BranchMisses, B.Counters.BranchMisses);
  EXPECT_EQ(A.Counters.L1IMisses, B.Counters.L1IMisses);
  EXPECT_DOUBLE_EQ(A.Cycles, B.Cycles);
}

TEST(Determinism, PackagesAreByteIdentical) {
  auto W = fleet::generateWorkload(tinySite(8));
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 8);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 30;
  Config.Jit.SeederInstrumentation = true;
  auto S1 = fleet::runSeeder(*W, Traffic, Config, 0, 0, 60, 10);
  auto S2 = fleet::runSeeder(*W, Traffic, Config, 0, 0, 60, 10);
  EXPECT_EQ(S1->buildSeederPackage(0, 0, 1).serialize(),
            S2->buildSeederPackage(0, 0, 1).serialize());
}

TEST(Determinism, ConsumerBootIdenticalAcrossHostThreads) {
  // The host compile pool only changes wall-clock time: the translations
  // a consumer boots with -- ids, placement addresses, block layout,
  // costs -- must be byte-for-byte identical for any worker count.
  auto W = fleet::generateWorkload(tinySite(10));
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 10);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 30;
  Config.Jit.SeederInstrumentation = true;
  auto Seeder = fleet::runSeeder(*W, Traffic, Config, 0, 0, 100, 11);
  profile::ProfilePackage Pkg = Seeder->buildSeederPackage(0, 0, 1);

  auto TransDbDump = [&](support::ThreadPool *Pool) {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 30;
    C.CompilePool = Pool;
    vm::Server S(W->Repo, C, 12);
    EXPECT_TRUE(S.installPackage(Pkg).ok());
    S.startup();
    std::string Dump;
    for (const auto &T : S.theJit().transDb().all()) {
      Dump += strFormat("t%u k=%s f=%u entry=%llu cost=%f [", T->Id,
                        jit::transKindName(T->Kind), T->func().raw(),
                        static_cast<unsigned long long>(T->entryAddr()),
                        T->CostPerBytecode);
      for (uint64_t A : T->BlockAddrs)
        Dump += strFormat("%llu,", static_cast<unsigned long long>(A));
      Dump += "]\n";
    }
    return Dump;
  };
  std::string Serial = TransDbDump(nullptr);
  ASSERT_FALSE(Serial.empty());
  for (uint32_t Workers : {2u, 8u}) {
    support::ThreadPool Pool(Workers);
    EXPECT_EQ(TransDbDump(&Pool), Serial) << Workers << " workers";
  }
}

//===----------------------------------------------------------------------===//
// The Vasm tracer against a mature server.
//===----------------------------------------------------------------------===//

TEST(TracerIntegration, MatureServerProducesJitAddressTraffic) {
  auto W = fleet::generateWorkload(tinySite(9));
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 9);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 30;
  auto Server = fleet::runSeeder(*W, Traffic, Config, 0, 0, 100, 4);
  ASSERT_EQ(Server->theJit().phase(), jit::JitPhase::Mature);

  sim::MachineSim Machine;
  jit::VasmTracer Tracer(Server->theJit(), Machine);
  {
    vm::CallbackScope Scope(*Server, &Tracer);
    Rng R(2);
    for (int I = 0; I < 20; ++I) {
      bc::FuncId E = W->Endpoints[R.nextBelow(W->Endpoints.size())];
      Server->executeRequest(E, fleet::TrafficModel::makeArgs(R));
    }
  }

  const sim::PerfCounters &C = Machine.counters();
  EXPECT_GT(C.Instructions, 10000u);
  EXPECT_GT(C.Branches, 100u);
  EXPECT_GT(C.L1DAccesses, 100u);
  // Mature servers fetch from the code cache, not the interpreter loop:
  // the vast majority of instruction fetches land above the cache base.
  EXPECT_GT(C.L1IAccesses, C.Instructions / 2);
}
