//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays every checked-in fuzz reproducer under tests/corpus/ (the
/// JUMPSTART_CORPUS_DIR compile definition).  Each entry is a (kind,
/// seed) pair some fuzz run once failed on; replaying them on every test
/// run keeps historical failures fixed.  See src/testing/Corpus.h for the
/// format and tests/FuzzTest.cpp for how failures are dumped.
///
//===----------------------------------------------------------------------===//

#include "analysis/WholeProgram.h"
#include "testing/Corpus.h"
#include "testing/DiffRunner.h"
#include "testing/PackageMutator.h"
#include "testing/ProgramGen.h"

#include <gtest/gtest.h>

using namespace jumpstart;
namespace jstest = jumpstart::testing;

#ifndef JUMPSTART_CORPUS_DIR
#error "build must define JUMPSTART_CORPUS_DIR"
#endif

namespace {

/// Replays a diff_program entry: the seed is a program seed for the
/// smoke-matrix differential check (no shrinking -- a corpus failure
/// message should point at the original, reproducible seed).
std::string replayDiffProgram(const jstest::CorpusEntry &E) {
  jstest::DiffParams P;
  P.Shrink = false;
  jstest::DiffRunner Runner(P);
  jstest::GenParams G;
  G.Seed = E.Seed;
  jstest::DiffStats Stats;
  Runner.checkProgram(jstest::generateProgram(G), E.Seed, Stats);
  if (!Stats.Mismatches.empty())
    return Stats.Mismatches.front().ConfigA + " vs " +
           Stats.Mismatches.front().ConfigB + ": " +
           Stats.Mismatches.front().What;
  return "";
}

} // namespace

TEST(CorpusReplay, EveryCheckedInReproducerStillPasses) {
  std::vector<jstest::CorpusEntry> Corpus =
      jstest::loadCorpusDir(JUMPSTART_CORPUS_DIR);
  ASSERT_FALSE(Corpus.empty())
      << "no corpus entries under " JUMPSTART_CORPUS_DIR
      << " -- the replay harness itself is broken";

  // The package environment is expensive (a full seeder workflow); build
  // it once iff some entry needs it.
  std::unique_ptr<jstest::MutationEnv> Env;
  for (const jstest::CorpusEntry &E : Corpus) {
    SCOPED_TRACE(E.Path + " (" + E.Kind + " seed " +
                 std::to_string(E.Seed) + ": " + E.Note + ")");
    std::string Failure;
    if (E.Kind == "diff_program") {
      Failure = replayDiffProgram(E);
    } else {
      if (!Env)
        Env = std::make_unique<jstest::MutationEnv>(
            jstest::buildMutationEnv());
      Failure = jstest::replayPackageEntry(*Env, E);
    }
    EXPECT_EQ(Failure, "");
  }
}

TEST(CorpusFormat, RoundTripsAndRejectsGarbage) {
  jstest::CorpusEntry E;
  E.Kind = "pkg_struct";
  E.Seed = 12345;
  E.Note = "multi\nline notes are flattened";
  jstest::CorpusEntry Back;
  ASSERT_TRUE(
      jstest::parseCorpusEntry(jstest::renderCorpusEntry(E), Back).ok());
  EXPECT_EQ(Back.Kind, E.Kind);
  EXPECT_EQ(Back.Seed, E.Seed);
  EXPECT_EQ(Back.Note, "multi line notes are flattened");

  jstest::CorpusEntry Bad;
  EXPECT_FALSE(jstest::parseCorpusEntry("kind=pkg_struct\n", Bad).ok())
      << "missing seed must fail";
  EXPECT_FALSE(jstest::parseCorpusEntry("seed=notanumber\nkind=x\n", Bad)
                   .ok());
  EXPECT_FALSE(jstest::parseCorpusEntry("no equals sign\n", Bad).ok());
  // Unknown keys are forward-compatible, not errors.
  EXPECT_TRUE(jstest::parseCorpusEntry(
                  "kind=pkg_struct\nseed=1\nfuture_key=whatever\n", Bad)
                  .ok());
}

TEST(CorpusReplay, RecursiveProgramSurvivesElision) {
  // A hand-kept reproducer class of its own: recursive programs are the
  // summary fixpoint's hard case (optimistic rounds, widening fallback),
  // and a generated corpus does not reliably produce them.  The source
  // mirrors examples/hack/recursion.hack.
  static const char *Source = R"(
function fact($n) {
  if ($n < 2) { return 1; }
  return $n * fact($n - 1);
}
function isEven($n) {
  if ($n == 0) { return 1; }
  return isOdd($n - 1);
}
function isOdd($n) {
  if ($n == 0) { return 0; }
  return isEven($n - 1);
}
function endpoint0($n) {
  $bounded = $n - ($n / 9) * 9;
  return fact($bounded) + isEven($bounded);
}
)";
  fleet::Workload W;
  ASSERT_TRUE(jstest::DiffRunner::compileProgram(Source, W).ok());

  // The analysis must see the recursion and still converge.
  analysis::WholeProgram WP(W.Repo);
  analysis::WholeProgram::Stats S = WP.stats();
  EXPECT_EQ(S.RecursiveComponents, 2u)
      << "fact's self-loop and the isEven/isOdd pair";
  EXPECT_GE(S.MaxRounds, 2u);

  // Elision on vs off must agree on every observable.
  jstest::DiffParams P;
  P.Shrink = false;
  jstest::DiffRunner Runner(P);
  jstest::ExecConfig Off;
  Off.Name = "jit";
  jstest::ExecConfig On = Off;
  On.ProvenGuardElision = true;
  jstest::RunTrace A = Runner.runConfig(W, Off);
  jstest::RunTrace B = Runner.runConfig(W, On);
  EXPECT_EQ(jstest::DiffRunner::compareTraces(A, B), "");
  EXPECT_EQ(B.ElisionLint, "")
      << "a guard elided in the recursive program failed re-proof";
}
