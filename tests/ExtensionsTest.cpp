//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the extension features beyond the paper's core system:
/// ShareJIT-style machine-code sharing (the section III comparison),
/// affinity-based property ordering (section V-C future work), and jump
/// elision at placement.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "fleet/ServerSim.h"
#include "fleet/WorkloadGen.h"
#include "jit/Jit.h"
#include "jit/TransLayout.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using jumpstart::testing::TestVm;

//===----------------------------------------------------------------------===//
// ShareJIT mode.
//===----------------------------------------------------------------------===//

namespace {

/// Builds a package for a small workload and returns (workload, package).
struct ShareJitFixture {
  std::unique_ptr<fleet::Workload> W;
  std::unique_ptr<fleet::TrafficModel> Traffic;
  profile::ProfilePackage Pkg;

  ShareJitFixture() {
    fleet::WorkloadParams P;
    P.NumHelpers = 100;
    P.NumClasses = 18;
    P.NumEndpoints = 10;
    P.NumUnits = 10;
    W = fleet::generateWorkload(P);
    Traffic = std::make_unique<fleet::TrafficModel>(
        *W, fleet::TrafficParams(), 5);
    vm::ServerConfig Config;
    Config.Jit.ProfileRequestTarget = 30;
    Config.Jit.SeederInstrumentation = true;
    auto Seeder = fleet::runSeeder(*W, *Traffic, Config, 0, 0, 100, 3);
    Pkg = Seeder->buildSeederPackage(0, 0, 1);
  }
};

} // namespace

TEST(ShareJit, NoInliningUnderSharingConstraints) {
  ShareJitFixture Fix;
  jit::JitConfig Config;
  Config.ShareJitMode = true;
  jit::Jit J(Fix.W->Repo, Config);
  J.startConsumerPrecompile(Fix.Pkg);
  while (J.hasPendingWork())
    J.runJitWork(1e9);
  for (const auto &T : J.transDb().all()) {
    if (T->Kind == jit::TransKind::Optimized) {
      EXPECT_TRUE(T->Unit->Inlined.empty())
          << "shared code must not inline user-defined functions";
    }
  }
}

TEST(ShareJit, SharedCodeIsSlowerPerBytecode) {
  ShareJitFixture Fix;
  jit::Jit Full(Fix.W->Repo, jit::JitConfig());
  Full.startConsumerPrecompile(Fix.Pkg);
  while (Full.hasPendingWork())
    Full.runJitWork(1e9);

  jit::JitConfig SharedConfig;
  SharedConfig.ShareJitMode = true;
  jit::Jit Shared(Fix.W->Repo, SharedConfig);
  Shared.startConsumerPrecompile(Fix.Pkg);
  while (Shared.hasPendingWork())
    Shared.runJitWork(1e9);

  // Aggregate cost per bytecode across all optimized translations.
  auto MeanCost = [](const jit::Jit &J) {
    double Sum = 0;
    int N = 0;
    for (const auto &T : J.transDb().all())
      if (T->Kind == jit::TransKind::Optimized) {
        Sum += T->CostPerBytecode;
        ++N;
      }
    return N ? Sum / N : 0;
  };
  EXPECT_GT(MeanCost(Shared), MeanCost(Full))
      << "sharing constraints must cost steady-state performance";
}

TEST(ShareJit, PrecompileIsMuchCheaper) {
  ShareJitFixture Fix;
  jit::Jit Full(Fix.W->Repo, jit::JitConfig());
  Full.startConsumerPrecompile(Fix.Pkg);
  double FullWork = 0;
  while (Full.hasPendingWork())
    FullWork += Full.runJitWork(1e9);

  jit::JitConfig SharedConfig;
  SharedConfig.ShareJitMode = true;
  jit::Jit Shared(Fix.W->Repo, SharedConfig);
  Shared.startConsumerPrecompile(Fix.Pkg);
  double SharedWork = 0;
  while (Shared.hasPendingWork())
    SharedWork += Shared.runJitWork(1e9);

  EXPECT_LT(SharedWork, FullWork / 5)
      << "adopting shared code must be far cheaper than recompiling";
  EXPECT_EQ(Shared.phase(), jit::JitPhase::Mature);
}

//===----------------------------------------------------------------------===//
// Affinity-based property ordering.
//===----------------------------------------------------------------------===//

namespace {

/// class W { $a $b $c $d } with affinity a<->c and b<->d.
struct AffinityFixture {
  bc::Repo R;
  bc::ClassId K;
  std::unordered_map<std::string, uint64_t> Counts{
      {"W::a", 100}, {"W::b", 99}, {"W::c", 98}, {"W::d", 97}};
  std::unordered_map<std::string, uint64_t> Affinity{
      {"W::a::c", 500}, {"W::b::d", 500}};

  AffinityFixture() {
    bc::Unit &U = R.createUnit("u");
    bc::Class &C = R.createClass(U, "W");
    for (const char *P : {"a", "b", "c", "d"})
      C.DeclProps.push_back(R.internString(P));
    K = C.Id;
  }

  std::string orderString(runtime::ClassTable &T) {
    const runtime::ClassLayout &L = T.layout(K);
    std::string S;
    for (uint32_t I = 0; I < L.numSlots(); ++I)
      S += R.str(L.propAtSlot(I));
    return S;
  }
};

} // namespace

TEST(AffinityOrder, ChainsCoAccessedProperties) {
  AffinityFixture Fix;
  runtime::ClassTable T(Fix.R);
  T.enableAffinityReordering(&Fix.Counts, &Fix.Affinity);
  EXPECT_EQ(T.orderMode(), runtime::PropOrderMode::Affinity);
  // Seed = hottest (a); chain a->c (affinity), then restart at hottest
  // unplaced (b), chain b->d.
  EXPECT_EQ(Fix.orderString(T), "acbd");
}

TEST(AffinityOrder, HotnessModeInterleaves) {
  AffinityFixture Fix;
  runtime::ClassTable T(Fix.R);
  T.enablePropReordering(&Fix.Counts);
  EXPECT_EQ(T.orderMode(), runtime::PropOrderMode::Hotness);
  EXPECT_EQ(Fix.orderString(T), "abcd"); // counts already descending
}

TEST(AffinityOrder, FallsBackToHotnessWithoutAffinityData) {
  AffinityFixture Fix;
  std::unordered_map<std::string, uint64_t> Empty;
  runtime::ClassTable T(Fix.R);
  T.enableAffinityReordering(&Fix.Counts, &Empty);
  // No affinity signal: chain restarts at the hottest each time, which
  // degenerates to hotness order.
  EXPECT_EQ(Fix.orderString(T), "abcd");
}

TEST(AffinityOrder, StillAPermutationWithPartialData) {
  AffinityFixture Fix;
  std::unordered_map<std::string, uint64_t> Partial{{"W::a::d", 7}};
  runtime::ClassTable T(Fix.R);
  T.enableAffinityReordering(&Fix.Counts, &Partial);
  std::string S = Fix.orderString(T);
  ASSERT_EQ(S.size(), 4u);
  for (char C : {'a', 'b', 'c', 'd'})
    EXPECT_NE(S.find(C), std::string::npos);
  EXPECT_EQ(S.substr(0, 2), "ad") << "the only affinity pair chains";
}

TEST(AffinityOrder, PackageCarriesAffinityCounters) {
  profile::ProfilePackage Pkg;
  Pkg.Opt.PropAffinity["K::x::y"] = 42;
  std::vector<uint8_t> Blob = Pkg.serialize();
  profile::ProfilePackage Out;
  ASSERT_TRUE(profile::ProfilePackage::deserialize(Blob, Out));
  EXPECT_EQ(Out.Opt.PropAffinity.at("K::x::y"), 42u);
}

//===----------------------------------------------------------------------===//
// Jump elision at placement.
//===----------------------------------------------------------------------===//

TEST(JumpElision, AdjacentTargetDropsJump) {
  TestVm Vm("function f($x) {"
            "  if ($x > 0) { $x = $x + 1; } else { $x = $x - 1; }"
            "  return $x;"
            "}");
  bc::BlockCache Blocks(Vm.Repo);
  profile::ProfileStore Store;
  jit::RegionDescriptor Region;
  Region.Func = Vm.Repo.findFunction("f");
  jit::LowerOptions Opts;
  Opts.Kind = jit::TransKind::Optimized;
  jit::TransDb Db;
  jit::Translation &T = Db.create(
      jit::TransKind::Optimized,
      lowerFunction(Vm.Repo, Blocks, Region.Func, &Store, &Region, Opts));
  jit::CodeCache Cache;
  // Keep the lowering order (then-block ends with a Jump to the join
  // block, which is placed right after the else-block -- at least one
  // jump in this diamond becomes elidable under some order).
  jit::LayoutOptions L;
  L.UseExtTsp = true;
  L.SplitCold = false;
  jit::UnitLayout Layout = layoutUnit(*T.Unit, L);
  ASSERT_TRUE(placeTranslation(T, Cache, jit::CodeArea::Hot, Layout));

  // Verify the invariant rather than a specific block: a block is marked
  // elided iff it ends with a Jump and its target starts exactly at its
  // (shrunk) end.
  for (uint32_t B = 0; B < T.Unit->Blocks.size(); ++B) {
    const jit::VBlock &VB = T.Unit->Blocks[B];
    if (!T.JumpElided[B])
      continue;
    ASSERT_FALSE(VB.Instrs.empty());
    EXPECT_EQ(VB.Instrs.back().Kind, jit::VKind::Jump);
    uint64_t EffEnd = T.BlockAddrs[B] + VB.sizeBytes() -
                      VB.Instrs.back().SizeBytes;
    EXPECT_EQ(T.BlockAddrs[VB.Taken], EffEnd)
        << "an elided jump's target must be physically adjacent";
  }
}

TEST(JumpElision, ShrinksPlacedFootprint) {
  // A chain of blocks each jumping to the next: placed contiguously,
  // every jump but the last one elides.
  TestVm Vm("function f($x) {"
            "  $a = 0;"
            "  while ($x > 0) { $a = $a + $x; $x = $x - 1; }"
            "  return $a;"
            "}");
  bc::BlockCache Blocks(Vm.Repo);
  profile::ProfileStore Store;
  jit::RegionDescriptor Region;
  Region.Func = Vm.Repo.findFunction("f");
  jit::LowerOptions Opts;
  Opts.Kind = jit::TransKind::Optimized;
  jit::TransDb Db;
  jit::Translation &T = Db.create(
      jit::TransKind::Optimized,
      lowerFunction(Vm.Repo, Blocks, Region.Func, &Store, &Region, Opts));
  jit::CodeCache Cache;
  jit::UnitLayout Layout = layoutUnit(*T.Unit, jit::LayoutOptions());
  ASSERT_TRUE(placeTranslation(T, Cache, jit::CodeArea::Hot, Layout));
  uint64_t Placed = Cache.used(jit::CodeArea::Hot) +
                    Cache.used(jit::CodeArea::Cold);
  uint64_t Nominal = T.Unit->sizeBytes();
  EXPECT_LE(Placed, Nominal + 15 /*alignment slack*/);
}

//===----------------------------------------------------------------------===//
// Live-code pre-compilation (the section IV-A alternative).
//===----------------------------------------------------------------------===//

TEST(LivePrecompile, PackageCarriesLiveListAndConsumerUsesIt) {
  // A seeder that serves past its profiling window accumulates live
  // translations; the package lists them.
  fleet::WorkloadParams P;
  P.NumHelpers = 100;
  P.NumClasses = 18;
  P.NumEndpoints = 10;
  P.NumUnits = 10;
  auto W = fleet::generateWorkload(P);
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 5);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 10; // profiling ends almost at once
  Config.Jit.SeederInstrumentation = true;
  auto Seeder = fleet::runSeeder(*W, Traffic, Config, 0, 0, 150, 3);
  profile::ProfilePackage Pkg = Seeder->buildSeederPackage(0, 0, 1);
  ASSERT_FALSE(Pkg.Intermediate.LiveFuncs.empty())
      << "a post-profiling seeder must have a live-code tail";

  // Round trip preserves the list.
  profile::ProfilePackage Out;
  ASSERT_TRUE(profile::ProfilePackage::deserialize(Pkg.serialize(), Out));
  EXPECT_EQ(Out.Intermediate.LiveFuncs, Pkg.Intermediate.LiveFuncs);

  // A consumer with PrecompileLiveCode boots with live translations
  // already placed; the default consumer has none.
  auto CountLive = [](const jit::Jit &J) {
    size_t N = 0;
    for (const auto &T : J.transDb().all())
      if (T->Kind == jit::TransKind::Live && T->Placed)
        ++N;
    return N;
  };
  jit::JitConfig Plain;
  jit::Jit Default(W->Repo, Plain);
  Default.startConsumerPrecompile(Pkg);
  while (Default.hasPendingWork())
    Default.runJitWork(1e9);
  EXPECT_EQ(CountLive(Default), 0u);

  jit::JitConfig WithLive;
  WithLive.PrecompileLiveCode = true;
  jit::Jit Eager(W->Repo, WithLive);
  Eager.startConsumerPrecompile(Pkg);
  while (Eager.hasPendingWork())
    Eager.runJitWork(1e9);
  EXPECT_EQ(Eager.phase(), jit::JitPhase::Mature);
  EXPECT_GT(CountLive(Eager), 0u);
}
