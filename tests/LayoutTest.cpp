//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the code-layout optimizations: Ext-TSP
/// basic-block ordering, hot/cold splitting, and C3 / Pettis-Hansen
/// function sorting.
///
//===----------------------------------------------------------------------===//

#include "layout/ExtTsp.h"
#include "layout/FunctionSort.h"
#include "layout/HotCold.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

using namespace jumpstart;
using namespace jumpstart::layout;

namespace {

/// Checks that \p Order is a permutation of 0..N-1.
void expectPermutation(const std::vector<uint32_t> &Order, size_t N) {
  ASSERT_EQ(Order.size(), N);
  std::set<uint32_t> Seen(Order.begin(), Order.end());
  EXPECT_EQ(Seen.size(), N) << "order contains duplicates";
  if (!Order.empty()) {
    EXPECT_LT(*std::max_element(Order.begin(), Order.end()), N);
  }
}

/// A diamond CFG: 0 -> {1 hot, 2 cold} -> 3.
Cfg makeDiamond() {
  Cfg G;
  G.addBlock(16, 100); // 0 entry
  G.addBlock(32, 90);  // 1 hot arm
  G.addBlock(32, 10);  // 2 cold arm
  G.addBlock(16, 100); // 3 join
  G.addEdge(0, 1, 90);
  G.addEdge(0, 2, 10);
  G.addEdge(1, 3, 90);
  G.addEdge(2, 3, 10);
  return G;
}

Cfg makeRandomCfg(Rng &R, size_t NumBlocks) {
  Cfg G;
  for (size_t I = 0; I < NumBlocks; ++I)
    G.addBlock(8 + static_cast<uint32_t>(R.nextBelow(64)),
               R.nextBelow(1000));
  // A chain backbone guarantees connectivity, plus random extra edges.
  for (size_t I = 0; I + 1 < NumBlocks; ++I)
    G.addEdge(static_cast<uint32_t>(I), static_cast<uint32_t>(I + 1),
              1 + R.nextBelow(100));
  for (size_t I = 0; I < NumBlocks; ++I) {
    uint32_t Src = static_cast<uint32_t>(R.nextBelow(NumBlocks));
    uint32_t Dst = static_cast<uint32_t>(R.nextBelow(NumBlocks));
    if (Src != Dst)
      G.addEdge(Src, Dst, 1 + R.nextBelow(500));
  }
  return G;
}

} // namespace

TEST(ExtTsp, SingleBlock) {
  Cfg G;
  G.addBlock(16, 1);
  auto Order = extTspOrder(G);
  ASSERT_EQ(Order.size(), 1u);
  EXPECT_EQ(Order[0], 0u);
}

TEST(ExtTsp, EmptyCfg) {
  Cfg G;
  EXPECT_TRUE(extTspOrder(G).empty());
}

TEST(ExtTsp, PrefersHotFallthrough) {
  Cfg G = makeDiamond();
  auto Order = extTspOrder(G);
  expectPermutation(Order, 4);
  EXPECT_EQ(Order[0], 0u) << "entry must stay first";
  // The hot arm (1) should be laid out directly after the entry.
  EXPECT_EQ(Order[1], 1u);
}

TEST(ExtTsp, ScoreOfFallthroughChainIsFullWeight) {
  Cfg G;
  G.addBlock(16, 10);
  G.addBlock(16, 10);
  G.addBlock(16, 10);
  G.addEdge(0, 1, 10);
  G.addEdge(1, 2, 10);
  std::vector<uint32_t> Chain{0, 1, 2};
  EXPECT_DOUBLE_EQ(extTspScore(G, Chain), 20.0);
}

TEST(ExtTsp, ForwardJumpScoresPartial) {
  Cfg G;
  G.addBlock(16, 10);
  G.addBlock(100, 0); // filler
  G.addBlock(16, 10);
  G.addEdge(0, 2, 10);
  std::vector<uint32_t> Order{0, 1, 2};
  double S = extTspScore(G, Order);
  EXPECT_GT(S, 0.0);
  EXPECT_LT(S, 10.0 * 0.1 + 1e-12)
      << "a 100-byte forward jump scores below the zero-distance cap";
}

TEST(ExtTsp, FarJumpScoresZero) {
  Cfg G;
  G.addBlock(16, 10);
  G.addBlock(5000, 0);
  G.addBlock(16, 10);
  G.addEdge(0, 2, 10);
  std::vector<uint32_t> Order{0, 1, 2};
  EXPECT_DOUBLE_EQ(extTspScore(G, Order), 0.0);
}

TEST(ExtTsp, BeatsOrBlocksOriginalOrderOnRandomCfgs) {
  Rng R(2021);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Cfg G = makeRandomCfg(R, 5 + R.nextBelow(40));
    std::vector<uint32_t> Original(G.numBlocks());
    std::iota(Original.begin(), Original.end(), 0u);
    auto Optimized = extTspOrder(G);
    expectPermutation(Optimized, G.numBlocks());
    EXPECT_GE(extTspScore(G, Optimized) + 1e-9, extTspScore(G, Original))
        << "Ext-TSP must never be worse than the original order on trial "
        << Trial;
  }
}

TEST(ExtTsp, EntryAlwaysFirstOnRandomCfgs) {
  Rng R(77);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Cfg G = makeRandomCfg(R, 3 + R.nextBelow(30));
    auto Order = extTspOrder(G);
    ASSERT_FALSE(Order.empty());
    EXPECT_EQ(Order[0], 0u);
  }
}

TEST(ExtTsp, DeterministicAcrossRuns) {
  Rng R(5);
  Cfg G = makeRandomCfg(R, 25);
  EXPECT_EQ(extTspOrder(G), extTspOrder(G));
}

TEST(ExtTsp, SelfLoopIgnoredSafely) {
  Cfg G;
  G.addBlock(16, 10);
  G.addBlock(16, 10);
  G.addEdge(0, 0, 1000);
  G.addEdge(0, 1, 5);
  auto Order = extTspOrder(G);
  expectPermutation(Order, 2);
}

TEST(HotCold, ColdBlocksSplitOut) {
  Cfg G = makeDiamond();
  std::vector<uint32_t> Order{0, 1, 3, 2};
  HotColdSplit Split = splitHotCold(G, Order, /*ColdRatio=*/0.5);
  // Block 2 has weight 10 < 0.5 * 100.
  ASSERT_EQ(Split.Cold.size(), 1u);
  EXPECT_EQ(Split.Cold[0], 2u);
  EXPECT_EQ(Split.Hot.size(), 3u);
  EXPECT_EQ(Split.Hot[0], 0u);
}

TEST(HotCold, EntryNeverCold) {
  Cfg G;
  G.addBlock(16, 0); // entry with zero weight
  G.addBlock(16, 100);
  G.addEdge(0, 1, 100);
  std::vector<uint32_t> Order{0, 1};
  HotColdSplit Split = splitHotCold(G, Order, 0.5);
  EXPECT_TRUE(Split.Cold.empty()) << "zero entry weight disables splitting";
  EXPECT_EQ(Split.Hot.size(), 2u);
}

TEST(HotCold, SplitPreservesAllBlocks) {
  Rng R(9);
  Cfg G = makeRandomCfg(R, 30);
  auto Order = extTspOrder(G);
  HotColdSplit Split = splitHotCold(G, Order, 0.1);
  std::vector<uint32_t> All = Split.Hot;
  All.insert(All.end(), Split.Cold.begin(), Split.Cold.end());
  expectPermutation(All, G.numBlocks());
}

//===----------------------------------------------------------------------===//
// Function sorting.
//===----------------------------------------------------------------------===//

namespace {

/// Builds the call graph from the C3 paper's running-example shape:
/// main calls a hot helper pair and a cold utility.
CallGraph makeSimpleCallGraph() {
  CallGraph G;
  G.setNode(0, 100, 1000); // main
  G.setNode(1, 50, 900);   // hot helper
  G.setNode(2, 50, 850);   // helper's hot callee
  G.setNode(3, 200, 5);    // cold utility
  G.addArc(0, 1, 900);
  G.addArc(1, 2, 850);
  G.addArc(0, 3, 5);
  return G;
}

} // namespace

TEST(C3, ChainsHotCallPath) {
  CallGraph G = makeSimpleCallGraph();
  auto Order = c3Order(G);
  expectPermutation(Order, 4);
  // The hot chain main -> helper -> callee should be contiguous.
  auto Pos = [&](uint32_t N) {
    return std::find(Order.begin(), Order.end(), N) - Order.begin();
  };
  EXPECT_EQ(Pos(1), Pos(0) + 1);
  EXPECT_EQ(Pos(2), Pos(1) + 1);
  // The cold utility lands last.
  EXPECT_EQ(Order.back(), 3u);
}

TEST(C3, RespectsClusterSizeCap) {
  CallGraph G;
  G.setNode(0, 600, 100);
  G.setNode(1, 600, 90);
  G.addArc(0, 1, 90);
  C3Params P;
  P.MaxClusterBytes = 1000; // too small to merge 600+600
  auto Order = c3Order(G, P);
  expectPermutation(Order, 2);
  // No merge happened: both are singleton clusters sorted by density.
  // (Both outcomes 0,1 / 1,0 are permutations; density of node0 > node1.)
  EXPECT_EQ(Order[0], 0u);
}

TEST(C3, ColdFunctionsStaySeparate) {
  CallGraph G;
  G.setNode(0, 10, 100);
  G.setNode(1, 10, 0); // never sampled
  G.addArc(1, 0, 0);
  auto Order = c3Order(G);
  expectPermutation(Order, 2);
  EXPECT_EQ(Order[0], 0u) << "hot functions lead the layout";
}

TEST(C3, ReducesWeightedCallDistanceVsOriginal) {
  Rng R(123);
  for (int Trial = 0; Trial < 10; ++Trial) {
    CallGraph G;
    size_t N = 30 + R.nextBelow(50);
    for (uint32_t I = 0; I < N; ++I)
      G.setNode(I, 32 + static_cast<uint32_t>(R.nextBelow(256)),
                R.nextBelow(1000));
    for (size_t E = 0; E < 3 * N; ++E) {
      uint32_t A = static_cast<uint32_t>(R.nextBelow(N));
      uint32_t B = static_cast<uint32_t>(R.nextBelow(N));
      if (A != B)
        G.addArc(A, B, 1 + R.nextBelow(800));
    }
    auto C3 = c3Order(G);
    expectPermutation(C3, N);
    double DistC3 = weightedCallDistance(G, C3);
    double DistOrig = weightedCallDistance(G, originalOrder(G));
    EXPECT_LT(DistC3, DistOrig * 1.05)
        << "C3 should not be much worse than original order, trial "
        << Trial;
  }
}

TEST(PettisHansen, MergesHeaviestFirst) {
  CallGraph G = makeSimpleCallGraph();
  auto Order = pettisHansenOrder(G);
  expectPermutation(Order, 4);
  auto Pos = [&](uint32_t N) {
    return std::find(Order.begin(), Order.end(), N) - Order.begin();
  };
  // 0,1,2 end up in one cluster; they must be adjacent to each other.
  EXPECT_LE(std::max({Pos(0), Pos(1), Pos(2)}) -
                std::min({Pos(0), Pos(1), Pos(2)}),
            2);
}

TEST(PettisHansen, HandlesDisconnectedGraph) {
  CallGraph G;
  G.setNode(0, 10, 5);
  G.setNode(1, 10, 50);
  G.setNode(2, 10, 1);
  auto Order = pettisHansenOrder(G);
  expectPermutation(Order, 3);
  EXPECT_EQ(Order[0], 1u) << "hottest cluster first";
}

TEST(CallGraph, ArcAccumulation) {
  CallGraph G;
  G.addArc(0, 1, 10);
  G.addArc(0, 1, 5);
  ASSERT_EQ(G.arcs().size(), 1u);
  EXPECT_EQ(G.arcs()[0].Weight, 15u);
}

TEST(CallGraph, HottestCaller) {
  CallGraph G;
  G.addArc(0, 2, 10);
  G.addArc(1, 2, 90);
  EXPECT_EQ(G.hottestCaller(2), 1u);
  EXPECT_EQ(G.hottestCaller(0), ~0u);
}

TEST(CallGraph, SelfArcNotOwnHottestCaller) {
  CallGraph G;
  G.addArc(2, 2, 1000);
  G.addArc(1, 2, 5);
  EXPECT_EQ(G.hottestCaller(2), 1u);
}
