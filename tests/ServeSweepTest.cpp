//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier-2 concurrent-serving sweep: generated programs through the
/// serveMatrix() -- the interpreter reference plus Jump-Start-booted
/// servers serving the schedule through 1 and 4 closed-loop client
/// threads.  Zero mismatches means per-request observables survive real
/// host concurrency; the "serve" digest group asserts the determinism
/// digest (placement + exported metrics) is byte-identical for 1 vs N
/// threads.  Run twice for a bit-for-bit reproducible sweep digest.
///
/// Labeled tier2 in ctest; ci/sanitize.sh excludes it (-LE tier2), plain
/// `ctest` runs it.
///
//===----------------------------------------------------------------------===//

#include "testing/DiffRunner.h"

#include <gtest/gtest.h>

using namespace jumpstart;
namespace jstest = jumpstart::testing;

TEST(ServeSweep, ObservablesAndDigestsSurviveThreadCount) {
  jstest::DiffParams P;
  P.Seed = 777;
  P.NumPrograms = 60;
  P.Matrix = jstest::serveMatrix(4);

  jstest::DiffStats First = jstest::DiffRunner(P).run();
  for (const jstest::Mismatch &M : First.Mismatches)
    ADD_FAILURE() << "seed " << M.ProgramSeed << " " << M.ConfigA
                  << " vs " << M.ConfigB << ": " << M.What << "\n"
                  << M.Shrunk;
  EXPECT_EQ(First.Programs, 60u);
  EXPECT_EQ(First.Runs, 60u * jstest::serveMatrix(4).size());
  // Both serving cells boot from the seeder package.
  EXPECT_EQ(First.JumpStartBoots, 60u * 2);
  // The "serve" digest group compared 1-thread vs 4-thread digests for
  // every program.
  EXPECT_GT(First.DigestComparisons, 0u);

  jstest::DiffStats Second = jstest::DiffRunner(P).run();
  EXPECT_EQ(Second.Mismatches.size(), 0u);
  EXPECT_EQ(First.SweepDigest, Second.SweepDigest)
      << "the concurrent-serving sweep is not deterministic across "
         "re-runs";
}
