//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier-2 conformance sweep: 200 generated programs through the FULL
/// configuration matrix (every tier, Jump-Start on/off, each layout flag
/// toggled, host threads 1/4), run twice.  Zero semantic mismatches and a
/// bit-for-bit reproducible sweep digest are the repo's strongest
/// end-to-end statement that Jump-Start is semantically invisible.
///
/// Labeled tier2 in ctest; ci/sanitize.sh excludes it (-LE tier2) to keep
/// sanitizer runs fast, plain `ctest` runs it.
///
//===----------------------------------------------------------------------===//

#include "testing/DiffRunner.h"

#include <gtest/gtest.h>

using namespace jumpstart;
namespace jstest = jumpstart::testing;

TEST(ConformanceSweep, TwoHundredProgramsFullMatrixTwice) {
  jstest::DiffParams P;
  P.Seed = 2021;
  P.NumPrograms = 200;
  P.Matrix = jstest::fullMatrix();

  jstest::DiffStats First = jstest::DiffRunner(P).run();
  for (const jstest::Mismatch &M : First.Mismatches)
    ADD_FAILURE() << "seed " << M.ProgramSeed << " " << M.ConfigA
                  << " vs " << M.ConfigB << ": " << M.What << "\n"
                  << M.Shrunk;
  EXPECT_EQ(First.Programs, 200u);
  EXPECT_EQ(First.Runs, 200u * jstest::fullMatrix().size());
  // Every jumpstart cell must genuinely boot from the package: 6 such
  // cells in the full matrix (incl. the proven-guard-elision pair).
  EXPECT_EQ(First.JumpStartBoots, 200u * 6);
  EXPECT_GT(First.DigestComparisons, 0u);

  jstest::DiffStats Second = jstest::DiffRunner(P).run();
  EXPECT_EQ(Second.Mismatches.size(), 0u);
  EXPECT_EQ(First.SweepDigest, Second.SweepDigest)
      << "the sweep is not deterministic across re-runs";
}

TEST(ConformanceSweep, TwoHundredProgramElisionAblation) {
  // Acceptance bar for the whole-program analysis: across 200 generated
  // programs, enabling proven-guard elision must not change a single
  // observable (the ObsDigest folds sources, return values, outputs and
  // fault counts only -- no placement-level data), while the analysis
  // must measurably fire somewhere in the corpus.
  jstest::ExecConfig Off;
  Off.Name = "jit";
  jstest::ExecConfig On = Off;
  On.ProvenGuardElision = true;

  jstest::DiffParams P;
  P.Seed = 4099;
  P.NumPrograms = 200;
  P.Matrix = {Off};
  jstest::DiffStats A = jstest::DiffRunner(P).run();
  P.Matrix = {On};
  jstest::DiffStats B = jstest::DiffRunner(P).run();

  ASSERT_EQ(A.Mismatches.size(), 0u);
  ASSERT_EQ(B.Mismatches.size(), 0u)
      << "elision run hit a mismatch (incl. elision re-proof failures)";
  EXPECT_NE(A.ObsDigest, 0u);
  EXPECT_EQ(A.ObsDigest, B.ObsDigest)
      << "proven-guard elision changed an observable somewhere in the "
         "200-program corpus";
}
