//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier-2 conformance sweep: 200 generated programs through the FULL
/// configuration matrix (every tier, Jump-Start on/off, each layout flag
/// toggled, host threads 1/4), run twice.  Zero semantic mismatches and a
/// bit-for-bit reproducible sweep digest are the repo's strongest
/// end-to-end statement that Jump-Start is semantically invisible.
///
/// Labeled tier2 in ctest; ci/sanitize.sh excludes it (-LE tier2) to keep
/// sanitizer runs fast, plain `ctest` runs it.
///
//===----------------------------------------------------------------------===//

#include "testing/DiffRunner.h"

#include <gtest/gtest.h>

using namespace jumpstart;
namespace jstest = jumpstart::testing;

TEST(ConformanceSweep, TwoHundredProgramsFullMatrixTwice) {
  jstest::DiffParams P;
  P.Seed = 2021;
  P.NumPrograms = 200;
  P.Matrix = jstest::fullMatrix();

  jstest::DiffStats First = jstest::DiffRunner(P).run();
  for (const jstest::Mismatch &M : First.Mismatches)
    ADD_FAILURE() << "seed " << M.ProgramSeed << " " << M.ConfigA
                  << " vs " << M.ConfigB << ": " << M.What << "\n"
                  << M.Shrunk;
  EXPECT_EQ(First.Programs, 200u);
  EXPECT_EQ(First.Runs, 200u * jstest::fullMatrix().size());
  // Every jumpstart cell must genuinely boot from the package: 4 such
  // cells in the full matrix.
  EXPECT_EQ(First.JumpStartBoots, 200u * 4);
  EXPECT_GT(First.DigestComparisons, 0u);

  jstest::DiffStats Second = jstest::DiffRunner(P).run();
  EXPECT_EQ(Second.Mismatches.size(), 0u);
  EXPECT_EQ(First.SweepDigest, Second.SweepDigest)
      << "the sweep is not deterministic across re-runs";
}
