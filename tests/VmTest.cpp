//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the VM server: lifecycle, cost accounting, Jump-Start
/// consumer/seeder paths.
///
//===----------------------------------------------------------------------===//

#include "fleet/WorkloadGen.h"
#include "vm/Server.h"

#include <gtest/gtest.h>

using namespace jumpstart;

namespace {

/// A tiny workload shared by the fixtures in this file.
class VmTestFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    fleet::WorkloadParams P;
    P.NumHelpers = 120;
    P.NumClasses = 24;
    P.NumEndpoints = 12;
    P.NumUnits = 12;
    W = fleet::generateWorkload(P).release();
  }
  static void TearDownTestSuite() {
    delete W;
    W = nullptr;
  }

  static vm::ServerConfig fastConfig() {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 20;
    return C;
  }

  /// Serves \p N requests round-robin over endpoints, with JIT time.
  static void serve(vm::Server &S, int N, uint64_t Seed = 1) {
    Rng R(Seed);
    for (int I = 0; I < N; ++I) {
      bc::FuncId E = W->Endpoints[R.nextBelow(W->Endpoints.size())];
      S.executeRequest(E, {runtime::Value::integer(
                              static_cast<int64_t>(R.nextBelow(1000)))});
      S.grantJitTime(0.5);
    }
    while (S.theJit().hasPendingWork())
      S.grantJitTime(1.0);
  }

  static fleet::Workload *W;
};

fleet::Workload *VmTestFixture::W = nullptr;

} // namespace

TEST_F(VmTestFixture, RequestsGetCheaperAsJitWarms) {
  vm::Server S(W->Repo, fastConfig(), 7);
  S.startup();
  bc::FuncId E = W->Endpoints[0];
  std::vector<runtime::Value> Args{runtime::Value::integer(5)};
  double FirstCost = S.executeRequest(E, Args).Seconds;
  serve(S, 60);
  ASSERT_EQ(S.theJit().phase(), jit::JitPhase::Mature);
  double WarmCost = S.executeRequest(E, Args).Seconds;
  EXPECT_LT(WarmCost, FirstCost / 3)
      << "optimized execution must be several times cheaper than "
         "interpret+load";
}

TEST_F(VmTestFixture, FingerprintDetectsDifferentProgram) {
  uint64_t A = vm::Server::repoFingerprint(W->Repo);
  fleet::WorkloadParams P;
  P.NumHelpers = 121; // one extra helper: different program
  P.NumClasses = 24;
  P.NumEndpoints = 12;
  P.NumUnits = 12;
  auto W2 = fleet::generateWorkload(P);
  EXPECT_NE(A, vm::Server::repoFingerprint(W2->Repo));
  EXPECT_EQ(A, vm::Server::repoFingerprint(W->Repo))
      << "fingerprint must be stable";
}

TEST_F(VmTestFixture, InstallPackageRejectsWrongFingerprint) {
  vm::Server S(W->Repo, fastConfig(), 3);
  profile::ProfilePackage Pkg;
  Pkg.RepoFingerprint = 0x1111; // not this repo
  EXPECT_FALSE(S.installPackage(Pkg).ok());
  profile::ProfilePackage Ok;
  Ok.RepoFingerprint = vm::Server::repoFingerprint(W->Repo);
  vm::Server S2(W->Repo, fastConfig(), 3);
  EXPECT_TRUE(S2.installPackage(Ok).ok());
}

TEST_F(VmTestFixture, SeederPackageIsSubstantive) {
  vm::ServerConfig Config = fastConfig();
  Config.Jit.SeederInstrumentation = true;
  vm::Server S(W->Repo, Config, 11);
  S.startup();
  serve(S, 80);
  profile::ProfilePackage Pkg = S.buildSeederPackage(1, 2, 77);
  EXPECT_GT(Pkg.numProfiledFuncs(), 10u);
  EXPECT_GT(Pkg.totalSamples(), 100u);
  EXPECT_FALSE(Pkg.Preload.Units.empty());
  EXPECT_FALSE(Pkg.Intermediate.FuncOrder.empty());
  EXPECT_FALSE(Pkg.Opt.VasmBlockCounts.empty())
      << "seeder instrumentation must collect Vasm counters";
  EXPECT_FALSE(Pkg.Opt.CallArcs.empty())
      << "seeder instrumentation must collect tier-2 call arcs";
  EXPECT_FALSE(Pkg.Opt.PropAccessCounts.empty())
      << "tier-1 instrumentation must collect property accesses";
  EXPECT_EQ(Pkg.RepoFingerprint, vm::Server::repoFingerprint(W->Repo));
}

TEST_F(VmTestFixture, ConsumerBootsMatureAndFast) {
  // Seed.
  vm::ServerConfig SeederConfig = fastConfig();
  SeederConfig.Jit.SeederInstrumentation = true;
  vm::Server Seeder(W->Repo, SeederConfig, 13);
  Seeder.startup();
  serve(Seeder, 80);
  profile::ProfilePackage Pkg = Seeder.buildSeederPackage(0, 0, 1);

  // Consume.
  vm::ServerConfig ConsumerConfig = fastConfig();
  ConsumerConfig.WarmupEndpoints = {W->Endpoints[0].raw()};
  vm::Server Consumer(W->Repo, ConsumerConfig, 17);
  ASSERT_TRUE(Consumer.installPackage(Pkg).ok());
  vm::InitStats Init = Consumer.startup();
  EXPECT_TRUE(Init.UsedJumpStart);
  EXPECT_GT(Init.PrecompileSeconds, 0.0);
  EXPECT_EQ(Consumer.theJit().phase(), jit::JitPhase::Mature);

  // First request is already fast (no interpretation of hot code).
  double Cost = Consumer
                    .executeRequest(W->Endpoints[0],
                                    {runtime::Value::integer(5)})
                    .Seconds;
  vm::Server Cold(W->Repo, fastConfig(), 17);
  Cold.startup();
  double ColdCost = Cold.executeRequest(W->Endpoints[0],
                                        {runtime::Value::integer(5)})
                        .Seconds;
  EXPECT_LT(Cost, ColdCost / 3);
}

TEST_F(VmTestFixture, ConsumerWarmupRequestsRunParallel) {
  vm::ServerConfig SeederConfig = fastConfig();
  SeederConfig.Jit.SeederInstrumentation = true;
  vm::Server Seeder(W->Repo, SeederConfig, 19);
  Seeder.startup();
  serve(Seeder, 60);
  profile::ProfilePackage Pkg = Seeder.buildSeederPackage(0, 0, 2);

  vm::ServerConfig WithWarmup = fastConfig();
  for (int I = 0; I < 6; ++I)
    WithWarmup.WarmupEndpoints.push_back(W->Endpoints[I].raw());

  vm::Server Js(W->Repo, WithWarmup, 23);
  ASSERT_TRUE(Js.installPackage(Pkg).ok());
  vm::InitStats JsInit = Js.startup();

  vm::Server NoJs(W->Repo, WithWarmup, 23);
  vm::InitStats NoJsInit = NoJs.startup();

  // Paper section VII-A: sequential warmup requests without Jump-Start,
  // parallel with it -- and on top of that each request is much cheaper.
  EXPECT_LT(JsInit.WarmupRequestSeconds,
            NoJsInit.WarmupRequestSeconds / 4);
}

TEST_F(VmTestFixture, PropertyReorderingRequiresPackageCounts) {
  vm::Server Plain(W->Repo, fastConfig(), 29);
  EXPECT_FALSE(Plain.classes().reorderingEnabled());

  vm::ServerConfig SeederConfig = fastConfig();
  SeederConfig.Jit.SeederInstrumentation = true;
  vm::Server Seeder(W->Repo, SeederConfig, 31);
  Seeder.startup();
  serve(Seeder, 60);
  profile::ProfilePackage Pkg = Seeder.buildSeederPackage(0, 0, 3);
  ASSERT_FALSE(Pkg.Opt.PropAccessCounts.empty());

  vm::Server Consumer(W->Repo, fastConfig(), 37);
  ASSERT_TRUE(Consumer.installPackage(Pkg).ok());
  EXPECT_TRUE(Consumer.classes().reorderingEnabled());

  vm::ServerConfig NoReorder = fastConfig();
  NoReorder.ReorderProperties = false;
  vm::Server Disabled(W->Repo, NoReorder, 37);
  ASSERT_TRUE(Disabled.installPackage(Pkg).ok());
  EXPECT_FALSE(Disabled.classes().reorderingEnabled());
}

TEST_F(VmTestFixture, FaultsAreCountedNotFatal) {
  vm::Server S(W->Repo, fastConfig(), 41);
  S.startup();
  // Endpoint with a nonsense argument type: dynamic errors become faults.
  runtime::Heap Scratch;
  std::vector<runtime::Value> Args{runtime::Value::null()};
  S.executeRequest(W->Endpoints[0], Args);
  // The server is still alive and serving.
  double Cost = S.executeRequest(W->Endpoints[1],
                                 {runtime::Value::integer(1)})
                    .Seconds;
  EXPECT_GT(Cost, 0.0);
}
