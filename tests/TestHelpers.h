//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the test suite: compile a snippet, run a function,
/// and inspect the result.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_TESTS_TESTHELPERS_H
#define JUMPSTART_TESTS_TESTHELPERS_H

#include "bytecode/Repo.h"
#include "bytecode/Verifier.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "runtime/Builtins.h"
#include "runtime/ClassLayout.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace jumpstart::testing {

/// A compiled program plus the runtime needed to execute it.
class TestVm {
public:
  /// Compiles \p Source; fails the current test on any diagnostic.
  explicit TestVm(const std::string &Source)
      : Builtins(runtime::BuiltinTable::standard()), Classes(Repo), Heap() {
    std::vector<std::string> Errors =
        frontend::compileUnit(Repo, Builtins, "test.src", Source);
    for (const std::string &E : Errors)
      ADD_FAILURE() << "compile error: " << E;
    CompileOk = Errors.empty();
    if (CompileOk) {
      std::vector<std::string> VerifyErrors =
          bc::verifyRepo(Repo, Builtins.size());
      for (const std::string &E : VerifyErrors)
        ADD_FAILURE() << "verifier error: " << E;
      CompileOk = VerifyErrors.empty();
    }
    Interp = std::make_unique<interp::Interpreter>(Repo, Classes, Heap,
                                                   Builtins);
    Interp->setOutput(&Output);
  }

  bool ok() const { return CompileOk; }

  /// Runs free function \p Name with integer arguments \p Args.
  interp::InterpResult run(const std::string &Name,
                           std::vector<int64_t> Args = {}) {
    bc::FuncId F = Repo.findFunction(Name);
    EXPECT_TRUE(F.valid()) << "no such function: " << Name;
    std::vector<runtime::Value> Values;
    Values.reserve(Args.size());
    for (int64_t A : Args)
      Values.push_back(runtime::Value::integer(A));
    Output.clear();
    return Interp->call(F, Values);
  }

  /// Runs \p Name and expects an Int result, which is returned.
  int64_t runInt(const std::string &Name, std::vector<int64_t> Args = {}) {
    interp::InterpResult R = run(Name, std::move(Args));
    EXPECT_TRUE(R.Ok) << "execution aborted";
    EXPECT_EQ(R.Ret.T, runtime::Type::Int)
        << "expected Int result, got " << runtime::typeName(R.Ret.T);
    return R.Ret.isInt() ? R.Ret.I : 0;
  }

  /// Runs \p Name and returns the captured print output.
  std::string runForOutput(const std::string &Name,
                           std::vector<int64_t> Args = {}) {
    run(Name, std::move(Args));
    return Output;
  }

  bc::Repo Repo;
  const runtime::BuiltinTable &Builtins;
  runtime::ClassTable Classes;
  runtime::Heap Heap;
  std::unique_ptr<interp::Interpreter> Interp;
  std::string Output;
  bool CompileOk = false;
};

} // namespace jumpstart::testing

#endif // JUMPSTART_TESTS_TESTHELPERS_H
