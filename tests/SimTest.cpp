//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the micro-architecture simulator.
///
//===----------------------------------------------------------------------===//

#include "sim/Branch.h"
#include "sim/Cache.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::sim;

TEST(Cache, HitAfterMiss) {
  Cache C(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1038)) << "same 64-byte line";
  EXPECT_EQ(C.misses(), 1u);
  EXPECT_EQ(C.accesses(), 3u);
}

TEST(Cache, DistinctLinesMiss) {
  Cache C(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_FALSE(C.access(0x1040));
  EXPECT_EQ(C.misses(), 2u);
}

TEST(Cache, LruEviction) {
  // 2-way, line 64, size 128 bytes -> exactly 1 set of 2 ways.
  Cache C(CacheConfig{128, 64, 2});
  C.access(0x0000);  // A miss
  C.access(0x1000);  // B miss
  C.access(0x0000);  // A hit (B becomes LRU)
  C.access(0x2000);  // C miss, evicts B
  EXPECT_TRUE(C.access(0x0000)) << "A must survive (was MRU)";
  EXPECT_FALSE(C.access(0x1000)) << "B must have been evicted (was LRU)";
}

TEST(Cache, CapacityBehaviour) {
  // Working set fits: second pass all hits.
  Cache C(CacheConfig{32 * 1024, 64, 8});
  for (uint64_t A = 0; A < 16 * 1024; A += 64)
    C.access(A);
  uint64_t MissesAfterFirstPass = C.misses();
  for (uint64_t A = 0; A < 16 * 1024; A += 64)
    C.access(A);
  EXPECT_EQ(C.misses(), MissesAfterFirstPass)
      << "a fitting working set must not miss on re-walk";

  // Working set 2x capacity with LRU streaming: every access misses.
  Cache D(CacheConfig{4 * 1024, 64, 4});
  for (int Pass = 0; Pass < 3; ++Pass)
    for (uint64_t A = 0; A < 8 * 1024; A += 64)
      D.access(A);
  EXPECT_EQ(D.misses(), D.accesses())
      << "streaming over 2x capacity with LRU must always miss";
}

TEST(Cache, ResetClears) {
  Cache C(CacheConfig{1024, 64, 2});
  C.access(0x1000);
  C.reset();
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.access(0x1000));
}

TEST(Tlb, PageGranularity) {
  Tlb T(16, 4, 4096);
  EXPECT_FALSE(T.access(0x10000));
  EXPECT_TRUE(T.access(0x10FFF)) << "same 4 KB page";
  EXPECT_FALSE(T.access(0x11000)) << "next page";
}

TEST(BranchPredictor, LearnsStrongBias) {
  BranchPredictor P(256);
  // Always-taken branch: after warmup, all predictions correct.
  for (int I = 0; I < 10; ++I)
    P.predict(0x400, true);
  uint64_t Before = P.mispredicts();
  for (int I = 0; I < 100; ++I)
    P.predict(0x400, true);
  EXPECT_EQ(P.mispredicts(), Before);
}

TEST(BranchPredictor, AlternatingIsHard) {
  BranchPredictor P(256);
  bool Taken = false;
  for (int I = 0; I < 200; ++I) {
    P.predict(0x800, Taken);
    Taken = !Taken;
  }
  // A bimodal predictor cannot learn a perfect alternation.
  EXPECT_GT(P.missRate(), 0.3);
}

TEST(TargetPredictor, MonomorphicTargetPredicts) {
  TargetPredictor P(64);
  P.predict(0x100, 0xAAAA); // cold miss
  for (int I = 0; I < 50; ++I)
    EXPECT_TRUE(P.predict(0x100, 0xAAAA));
}

TEST(TargetPredictor, PolymorphicTargetMisses) {
  TargetPredictor P(64);
  for (int I = 0; I < 100; ++I)
    P.predict(0x100, I % 2 ? 0xAAAA : 0xBBBB);
  EXPECT_GT(P.missRate(), 0.9);
}

TEST(Machine, FetchSpanningLinesTouchesBoth) {
  MachineSim M;
  M.fetch(60, 8); // crosses the 64-byte boundary
  EXPECT_EQ(M.counters().L1IAccesses, 2u);
  EXPECT_EQ(M.counters().Instructions, 1u);
}

TEST(Machine, MissesFlowToLlc) {
  MachineSim M;
  M.fetch(0x100000, 4);
  EXPECT_EQ(M.counters().L1IMisses, 1u);
  EXPECT_EQ(M.counters().LlcAccesses, 1u);
  EXPECT_EQ(M.counters().LlcMisses, 1u);
  // Second fetch of the same line: L1 hit, no LLC traffic.
  M.fetch(0x100000, 4);
  EXPECT_EQ(M.counters().LlcAccesses, 1u);
}

TEST(Machine, CyclesGrowWithMisses) {
  MachineSim Tight;
  for (int I = 0; I < 1000; ++I)
    Tight.fetch(0x1000 + (I % 4) * 64, 4); // tiny loop, all hits
  MachineSim Scattered;
  for (int I = 0; I < 1000; ++I)
    Scattered.fetch(0x1000 + I * 4096, 4); // a page per instruction
  EXPECT_LT(Tight.cycles(), Scattered.cycles());
  EXPECT_GT(Tight.ipc(), Scattered.ipc());
}

TEST(Machine, DataAndInstructionStreamsAreSeparate) {
  MachineSim M;
  M.dataAccess(0x5000, false);
  EXPECT_EQ(M.counters().L1DAccesses, 1u);
  EXPECT_EQ(M.counters().L1IAccesses, 0u);
  EXPECT_EQ(M.counters().DTlbAccesses, 1u);
  EXPECT_EQ(M.counters().ITlbAccesses, 0u);
}

TEST(Machine, SummaryMentionsKeyRates) {
  MachineSim M;
  M.fetch(0, 4);
  std::string S = M.summary();
  EXPECT_NE(S.find("instr="), std::string::npos);
  EXPECT_NE(S.find("itlbMR="), std::string::npos);
}
