//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support library: RNG, blob serde, statistics.
///
//===----------------------------------------------------------------------===//

#include "support/Blob.h"
#include "support/Hashing.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace jumpstart;

TEST(Rng, DeterministicFromSeed) {
  Rng A(42);
  Rng B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1);
  Rng B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 3);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u) << "all values in a small range should appear";
}

TEST(Rng, DoublesInUnitInterval) {
  Rng R(99);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyCorrectMean) {
  Rng R(5);
  double Sum = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.nextExponential(2.0);
  double Mean = Sum / N;
  EXPECT_NEAR(Mean, 0.5, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng A(42);
  Rng B = A.fork();
  // The fork and parent should not emit identical sequences.
  int Same = 0;
  for (int I = 0; I < 50; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 3);
}

TEST(Rng, ShuffleKeepsAllElements) {
  Rng R(3);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end());
  std::multiset<int> B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfDistribution Z(100, 0.8);
  double Sum = 0;
  for (size_t I = 0; I < Z.size(); ++I)
    Sum += Z.probability(I);
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(Zipf, HeadIsHotterThanTail) {
  ZipfDistribution Z(1000, 1.0);
  EXPECT_GT(Z.probability(0), Z.probability(999) * 10);
}

TEST(Zipf, FlatParameterFlattens) {
  ZipfDistribution Flat(100, 0.1);
  ZipfDistribution Skewed(100, 1.5);
  double FlatRatio = Flat.probability(0) / Flat.probability(99);
  double SkewRatio = Skewed.probability(0) / Skewed.probability(99);
  EXPECT_LT(FlatRatio, SkewRatio);
}

TEST(Zipf, SamplesCoverSupport) {
  Rng R(11);
  ZipfDistribution Z(10, 0.5);
  std::set<size_t> Seen;
  for (int I = 0; I < 5000; ++I)
    Seen.insert(Z.sample(R));
  EXPECT_EQ(Seen.size(), 10u);
}

TEST(Blob, VarintRoundTrip) {
  BlobEncoder E;
  std::vector<uint64_t> Values{0, 1, 127, 128, 300, 1ull << 20, 1ull << 40,
                               ~0ull};
  for (uint64_t V : Values)
    E.writeVarint(V);
  BlobDecoder D(E.bytes());
  for (uint64_t V : Values)
    EXPECT_EQ(D.readVarint(), V);
  EXPECT_TRUE(D.atEnd());
}

TEST(Blob, SignedVarintRoundTrip) {
  BlobEncoder E;
  std::vector<int64_t> Values{0, 1, -1, 63, -64, 1000, -1000,
                              INT64_MAX, INT64_MIN};
  for (int64_t V : Values)
    E.writeSignedVarint(V);
  BlobDecoder D(E.bytes());
  for (int64_t V : Values)
    EXPECT_EQ(D.readSignedVarint(), V);
  EXPECT_TRUE(D.atEnd());
}

TEST(Blob, StringAndDoubleRoundTrip) {
  BlobEncoder E;
  E.writeString("hello");
  E.writeString("");
  E.writeString(std::string("with\0nul", 8));
  E.writeDouble(3.14159);
  E.writeDouble(-0.0);
  BlobDecoder D(E.bytes());
  EXPECT_EQ(D.readString(), "hello");
  EXPECT_EQ(D.readString(), "");
  EXPECT_EQ(D.readString(), std::string("with\0nul", 8));
  EXPECT_DOUBLE_EQ(D.readDouble(), 3.14159);
  EXPECT_DOUBLE_EQ(D.readDouble(), -0.0);
  EXPECT_TRUE(D.atEnd());
}

TEST(Blob, VectorAndMapRoundTrip) {
  BlobEncoder E;
  std::vector<uint64_t> U{5, 10, 15};
  E.writeU64Vector(U);
  std::unordered_map<std::string, uint64_t> M{{"a", 1}, {"b", 2}};
  E.writeStringU64Map(M);
  BlobDecoder D(E.bytes());
  EXPECT_EQ(D.readU64Vector(), U);
  EXPECT_EQ(D.readStringU64Map(), M);
  EXPECT_TRUE(D.atEnd());
}

TEST(Blob, TruncatedInputSetsError) {
  BlobEncoder E;
  E.writeString("a fairly long string that will be cut off");
  std::vector<uint8_t> Bytes = E.bytes();
  Bytes.resize(Bytes.size() / 2);
  BlobDecoder D(Bytes);
  (void)D.readString();
  EXPECT_FALSE(D.ok());
}

TEST(Blob, HostileLengthPrefixRejected) {
  BlobEncoder E;
  E.writeVarint(~0ull); // claims ~2^64 elements
  BlobDecoder D(E.bytes());
  std::vector<uint64_t> V = D.readU64Vector();
  EXPECT_FALSE(D.ok());
  EXPECT_TRUE(V.empty());
}

TEST(Blob, ReadPastEndSetsErrorNotCrash) {
  BlobDecoder D(nullptr, 0);
  EXPECT_EQ(D.readVarint(), 0u);
  EXPECT_EQ(D.readByte(), 0u);
  EXPECT_EQ(D.readFixed64(), 0u);
  EXPECT_FALSE(D.ok());
}

TEST(Blob, DeterministicMapEncoding) {
  std::unordered_map<std::string, uint64_t> M{
      {"z", 1}, {"a", 2}, {"m", 3}, {"q", 4}};
  BlobEncoder E1;
  E1.writeStringU64Map(M);
  // Rebuild the map with a different insertion order.
  std::unordered_map<std::string, uint64_t> M2;
  M2.emplace("a", 2);
  M2.emplace("q", 4);
  M2.emplace("z", 1);
  M2.emplace("m", 3);
  BlobEncoder E2;
  E2.writeStringU64Map(M2);
  EXPECT_EQ(E1.bytes(), E2.bytes());
}

TEST(Hashing, FnvIsStable) {
  EXPECT_EQ(hashString("abc"), hashString("abc"));
  EXPECT_NE(hashString("abc"), hashString("abd"));
  EXPECT_NE(hashString(""), hashString(std::string_view("\0", 1)));
}

TEST(Stats, MeanMinMax) {
  SampleStats S;
  S.add(1);
  S.add(2);
  S.add(3);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
  EXPECT_EQ(S.count(), 3u);
}

TEST(Stats, Percentiles) {
  SampleStats S;
  for (int I = 1; I <= 100; ++I)
    S.add(I);
  EXPECT_NEAR(S.percentile(50), 50.5, 1.0);
  EXPECT_NEAR(S.percentile(99), 99, 1.1);
  EXPECT_DOUBLE_EQ(S.percentile(0), 1);
  EXPECT_DOUBLE_EQ(S.percentile(100), 100);
}

TEST(Stats, EmptyStatsAreZero) {
  SampleStats S;
  EXPECT_EQ(S.mean(), 0);
  EXPECT_EQ(S.percentile(50), 0);
}

TEST(TimeSeries, ValueAtInterpolates) {
  TimeSeries T("t");
  T.record(0, 0);
  T.record(10, 100);
  EXPECT_DOUBLE_EQ(T.valueAt(5), 50);
  EXPECT_DOUBLE_EQ(T.valueAt(-1), 0);
  EXPECT_DOUBLE_EQ(T.valueAt(99), 100);
}

TEST(TimeSeries, IntegrateTrapezoid) {
  TimeSeries T("t");
  T.record(0, 0);
  T.record(10, 10);
  // Triangle area = 50.
  EXPECT_NEAR(T.integrate(0, 10), 50, 1e-9);
  // Beyond the last point the curve holds its final value.
  EXPECT_NEAR(T.integrate(0, 20), 150, 1e-9);
}

TEST(TimeSeries, AreaAboveIsCapacityLoss) {
  TimeSeries Rps("rps");
  Rps.record(0, 0);
  Rps.record(10, 1.0); // ramps linearly to full capacity
  // Served = 5, ideal = 10, loss = 5.
  EXPECT_NEAR(Rps.areaAbove(1.0, 0, 10), 5.0, 1e-9);
}

TEST(TimeSeries, ResampleBounds) {
  TimeSeries T("t");
  for (int I = 0; I <= 1000; ++I)
    T.record(I, I * 2);
  auto Pts = T.resample(11);
  ASSERT_EQ(Pts.size(), 11u);
  EXPECT_DOUBLE_EQ(Pts.front().TimeSec, 0);
  EXPECT_DOUBLE_EQ(Pts.back().TimeSec, 1000);
  EXPECT_DOUBLE_EQ(Pts[5].Value, 1000);
}

TEST(StringUtil, Format) {
  EXPECT_EQ(strFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strFormat("%s", ""), "");
}

TEST(StringUtil, Split) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(1536), "1.5 KB");
  EXPECT_EQ(formatBytes(3ull << 20), "3.0 MB");
}
