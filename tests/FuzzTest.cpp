//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grammar-directed fuzzing: generate random (syntactically valid)
/// mini-Hack programs and check the pipeline invariants -- everything the
/// compiler accepts must verify, and everything that verifies must
/// execute without crashing the VM (dynamic faults are fine; crashes and
/// verifier escapes are not).  Also cross-checks that JIT observation
/// hooks never change results on the fuzzed programs.
///
//===----------------------------------------------------------------------===//

#include "analysis/Linter.h"
#include "bytecode/Verifier.h"
#include "core/Consumer.h"
#include "core/Seeder.h"
#include "fleet/Traffic.h"
#include "fleet/WorkloadGen.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "jit/Jit.h"
#include "jit/Recorders.h"
#include "profile/ProfilePackage.h"
#include "runtime/Builtins.h"
#include "runtime/ValueOps.h"
#include "support/Random.h"
#include "support/StringUtil.h"
#include "testing/Corpus.h"
#include "testing/PackageMutator.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace jumpstart;

namespace {

/// Generates random well-formed programs.
class ProgramFuzzer {
public:
  explicit ProgramFuzzer(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Source.clear();
    NumFuncs = 2 + static_cast<int>(R.nextBelow(5));
    genClass();
    for (int F = 0; F < NumFuncs; ++F)
      genFunction(F);
    return Source;
  }

private:
  /// Variables in scope for the function currently being generated.
  std::vector<std::string> Vars;

  void genClass() {
    Source += "class Box {\n  prop $a; prop $b; prop $c;\n"
              "  method set($v) { $this->a = $v; $this->b = $v * 2; "
              "return $this; }\n"
              "  method get() { return $this->a + $this->b; }\n}\n";
  }

  std::string randVar() {
    if (Vars.empty())
      return "$unset"; // reads as null: legal
    return Vars[R.nextBelow(Vars.size())];
  }

  /// A random expression of bounded depth.  All constructs are legal in
  /// any context; type errors at runtime are intentional (they must
  /// fault, not crash).
  std::string genExpr(int Depth) {
    if (Depth <= 0 || R.nextBool(0.3)) {
      switch (R.nextBelow(6)) {
      case 0:
        return strFormat("%d", static_cast<int>(R.nextBelow(100)));
      case 1:
        return strFormat("%d.5", static_cast<int>(R.nextBelow(9)));
      case 2:
        return "\"s" + std::to_string(R.nextBelow(10)) + "\"";
      case 3:
        return R.nextBool(0.5) ? "true" : "null";
      default:
        return randVar();
      }
    }
    switch (R.nextBelow(8)) {
    case 0: {
      const char *Ops[] = {"+", "-", "*", "/", "%", ".",
                           "==", "!=", "<", "<=", ">", ">="};
      return "(" + genExpr(Depth - 1) + " " +
             Ops[R.nextBelow(sizeof(Ops) / sizeof(Ops[0]))] + " " +
             genExpr(Depth - 1) + ")";
    }
    case 1:
      return "(" + genExpr(Depth - 1) +
             (R.nextBool(0.5) ? " && " : " || ") + genExpr(Depth - 1) +
             ")";
    case 2:
      return "(!" + genExpr(Depth - 1) + ")";
    case 3:
      return "vec[" + genExpr(Depth - 1) + ", " + genExpr(Depth - 1) +
             "]";
    case 4:
      return "dict[\"k\" => " + genExpr(Depth - 1) + "]";
    case 5:
      return genExpr(Depth - 1) + "[" + genExpr(Depth - 1) + "]";
    case 6:
      // A call to an already-generated function (acyclic by index).
      if (CurrentFunc > 0) {
        int Callee = static_cast<int>(R.nextBelow(CurrentFunc));
        return strFormat("f%d(%s)", Callee, genExpr(Depth - 1).c_str());
      }
      return "abs(" + genExpr(Depth - 1) + ")";
    default:
      return "new Box()->set(" + genExpr(Depth - 1) + ")->get()";
    }
  }

  void genStmt(int Depth, int Indent) {
    std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    switch (R.nextBelow(Depth > 0 ? 5 : 2)) {
    case 0: {
      std::string V = strFormat("$v%d", static_cast<int>(R.nextBelow(6)));
      Source += Pad + V + " = " + genExpr(2) + ";\n";
      Vars.push_back(V);
      return;
    }
    case 1:
      Source += Pad + "print(to_str(" + genExpr(1) + "));\n";
      return;
    case 2: {
      Source += Pad + "if (" + genExpr(1) + ") {\n";
      genStmt(Depth - 1, Indent + 1);
      Source += Pad + "} else {\n";
      genStmt(Depth - 1, Indent + 1);
      Source += Pad + "}\n";
      return;
    }
    case 3: {
      // Loops are always bounded by construction.
      std::string I = strFormat("$i%d", Indent);
      Source += Pad + I + " = 0;\n";
      Source += Pad + "while (" + I + " < " +
                std::to_string(1 + R.nextBelow(6)) + ") {\n";
      genStmt(Depth - 1, Indent + 1);
      Source += Pad + "  " + I + " = " + I + " + 1;\n";
      Source += Pad + "}\n";
      Vars.push_back(I);
      return;
    }
    default:
      Source += Pad + "if (" + genExpr(1) + ") { return " + genExpr(2) +
                "; }\n";
      return;
    }
  }

  void genFunction(int Index) {
    CurrentFunc = Index;
    Vars = {"$x"};
    Source += strFormat("function f%d($x) {\n", Index);
    int Stmts = 2 + static_cast<int>(R.nextBelow(5));
    for (int S = 0; S < Stmts; ++S)
      genStmt(2, 1);
    Source += "  return " + genExpr(2) + ";\n}\n";
  }

  Rng R;
  std::string Source;
  int NumFuncs = 0;
  int CurrentFunc = 0;
};

} // namespace

class FuzzPipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipeline, CompileVerifyExecute) {
  ProgramFuzzer Fuzzer(GetParam());
  std::string Source = Fuzzer.generate();

  bc::Repo Repo;
  const runtime::BuiltinTable &Builtins = runtime::BuiltinTable::standard();
  std::vector<std::string> Errors =
      frontend::compileUnit(Repo, Builtins, "fuzz.hack", Source);
  ASSERT_TRUE(Errors.empty())
      << "fuzzer emitted an invalid program (seed " << GetParam()
      << "): " << Errors[0] << "\n"
      << Source;

  // Invariant 1: accepted programs verify.
  std::vector<std::string> VErrors = bc::verifyRepo(Repo, Builtins.size());
  ASSERT_TRUE(VErrors.empty())
      << "verifier escape (seed " << GetParam() << "): " << VErrors[0]
      << "\n" << Source;

  // Invariant 2: verified programs execute without crashing, observed or
  // not, and observation never changes results.
  runtime::ClassTable Classes(Repo);
  runtime::Heap Heap;
  interp::InterpOptions Opts;
  Opts.StepBudget = 2'000'000;
  interp::Interpreter Interp(Repo, Classes, Heap, Builtins, Opts);
  std::string Output;
  Interp.setOutput(&Output);

  jit::Jit J(Repo, jit::JitConfig());
  jit::JitProfilingHooks Hooks(J);

  for (const bc::Function &F : Repo.funcs()) {
    if (F.isMethod())
      continue;
    std::vector<runtime::Value> Args;
    for (uint32_t P = 0; P < F.NumParams; ++P)
      Args.push_back(runtime::Value::integer(7));

    Interp.setCallbacks(nullptr);
    interp::InterpResult Plain = Interp.call(F.Id, Args);
    std::string PlainOut = Output;
    // Render the return value before the reset: it may point into the heap.
    std::string PlainRet = runtime::toString(Plain.Ret);
    Heap.reset();
    Output.clear();

    Interp.setCallbacks(&Hooks);
    interp::InterpResult Observed = Interp.call(F.Id, Args);
    std::string ObservedRet = runtime::toString(Observed.Ret);
    Heap.reset();

    EXPECT_EQ(Plain.Ok, Observed.Ok);
    EXPECT_EQ(Plain.Steps, Observed.Steps);
    EXPECT_EQ(Plain.Faults, Observed.Faults);
    EXPECT_EQ(PlainRet, ObservedRet)
        << "observation changed a result (seed " << GetParam() << ", "
        << F.Name << ")\n" << Source;
    EXPECT_EQ(Output, PlainOut);
    Output.clear();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<uint64_t>(1, 25));

//===----------------------------------------------------------------------===//
// Package-mutation fuzzing.
//
// The checkers live in src/testing/PackageMutator.h (shared with the
// corpus replayer); these tests drive them across a seed range and, on
// failure, dump a replayable (kind, seed) corpus entry so the regression
// is pinned forever.  tests/CorpusReplayTest.cpp replays every checked-in
// entry on every run.
//===----------------------------------------------------------------------===//

namespace jstest = jumpstart::testing;

namespace {

/// On failure, writes a corpus entry to $JUMPSTART_CORPUS_DUMP_DIR (or
/// the checked-in corpus dir) so the failing seed can be committed as a
/// permanent regression test.
void dumpCorpusOnFailure(const std::string &Kind, uint64_t Seed,
                         const std::string &Failure) {
  if (Failure.empty())
    return;
  const char *DumpDir = std::getenv("JUMPSTART_CORPUS_DUMP_DIR");
  jstest::CorpusEntry E;
  E.Kind = Kind;
  E.Seed = Seed;
  E.Note = Failure;
  std::string Path;
  if (jstest::writeCorpusEntry(DumpDir ? DumpDir : JUMPSTART_CORPUS_DIR,
                               E, &Path)
          .ok())
    ADD_FAILURE() << "corpus entry dumped to " << Path
                  << " -- commit it to pin this regression";
}

const jstest::MutationEnv &sharedEnv() {
  // Built once per process: the env runs a full seeder workflow.
  static const jstest::MutationEnv Env = jstest::buildMutationEnv();
  return Env;
}

} // namespace

class PackageFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PackageFuzz, ByteFlipsAndTruncationsFailCleanly) {
  std::string Failure = jstest::checkByteFlips(sharedEnv(), GetParam());
  dumpCorpusOnFailure("pkg_byteflip", GetParam(), Failure);
  EXPECT_EQ(Failure, "");
}

TEST_P(PackageFuzz, StructMutationsAreCaughtOrHarmless) {
  std::string Failure =
      jstest::checkStructMutation(sharedEnv(), GetParam());
  dumpCorpusOnFailure("pkg_struct", GetParam(), Failure);
  EXPECT_EQ(Failure, "");
}

TEST_P(PackageFuzz, DistributionCorruptionFallsBack) {
  std::string Failure =
      jstest::checkDistributionCorruption(sharedEnv(), GetParam());
  dumpCorpusOnFailure("pkg_distribution", GetParam(), Failure);
  EXPECT_EQ(Failure, "");
}

TEST_P(PackageFuzz, RebasedPackageSurvivesDrift) {
  std::string Failure = jstest::checkDriftRebase(sharedEnv(), GetParam());
  dumpCorpusOnFailure("pkg_drift", GetParam(), Failure);
  EXPECT_EQ(Failure, "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackageFuzz,
                         ::testing::Range<uint64_t>(1, 13));
