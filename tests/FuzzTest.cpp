//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grammar-directed fuzzing: generate random (syntactically valid)
/// mini-Hack programs and check the pipeline invariants -- everything the
/// compiler accepts must verify, and everything that verifies must
/// execute without crashing the VM (dynamic faults are fine; crashes and
/// verifier escapes are not).  Also cross-checks that JIT observation
/// hooks never change results on the fuzzed programs.
///
//===----------------------------------------------------------------------===//

#include "analysis/Linter.h"
#include "bytecode/Verifier.h"
#include "core/Consumer.h"
#include "core/Seeder.h"
#include "fleet/Traffic.h"
#include "fleet/WorkloadGen.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "jit/Jit.h"
#include "jit/Recorders.h"
#include "profile/ProfilePackage.h"
#include "runtime/Builtins.h"
#include "runtime/ValueOps.h"
#include "support/Random.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace jumpstart;

namespace {

/// Generates random well-formed programs.
class ProgramFuzzer {
public:
  explicit ProgramFuzzer(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Source.clear();
    NumFuncs = 2 + static_cast<int>(R.nextBelow(5));
    genClass();
    for (int F = 0; F < NumFuncs; ++F)
      genFunction(F);
    return Source;
  }

private:
  /// Variables in scope for the function currently being generated.
  std::vector<std::string> Vars;

  void genClass() {
    Source += "class Box {\n  prop $a; prop $b; prop $c;\n"
              "  method set($v) { $this->a = $v; $this->b = $v * 2; "
              "return $this; }\n"
              "  method get() { return $this->a + $this->b; }\n}\n";
  }

  std::string randVar() {
    if (Vars.empty())
      return "$unset"; // reads as null: legal
    return Vars[R.nextBelow(Vars.size())];
  }

  /// A random expression of bounded depth.  All constructs are legal in
  /// any context; type errors at runtime are intentional (they must
  /// fault, not crash).
  std::string genExpr(int Depth) {
    if (Depth <= 0 || R.nextBool(0.3)) {
      switch (R.nextBelow(6)) {
      case 0:
        return strFormat("%d", static_cast<int>(R.nextBelow(100)));
      case 1:
        return strFormat("%d.5", static_cast<int>(R.nextBelow(9)));
      case 2:
        return "\"s" + std::to_string(R.nextBelow(10)) + "\"";
      case 3:
        return R.nextBool(0.5) ? "true" : "null";
      default:
        return randVar();
      }
    }
    switch (R.nextBelow(8)) {
    case 0: {
      const char *Ops[] = {"+", "-", "*", "/", "%", ".",
                           "==", "!=", "<", "<=", ">", ">="};
      return "(" + genExpr(Depth - 1) + " " +
             Ops[R.nextBelow(sizeof(Ops) / sizeof(Ops[0]))] + " " +
             genExpr(Depth - 1) + ")";
    }
    case 1:
      return "(" + genExpr(Depth - 1) +
             (R.nextBool(0.5) ? " && " : " || ") + genExpr(Depth - 1) +
             ")";
    case 2:
      return "(!" + genExpr(Depth - 1) + ")";
    case 3:
      return "vec[" + genExpr(Depth - 1) + ", " + genExpr(Depth - 1) +
             "]";
    case 4:
      return "dict[\"k\" => " + genExpr(Depth - 1) + "]";
    case 5:
      return genExpr(Depth - 1) + "[" + genExpr(Depth - 1) + "]";
    case 6:
      // A call to an already-generated function (acyclic by index).
      if (CurrentFunc > 0) {
        int Callee = static_cast<int>(R.nextBelow(CurrentFunc));
        return strFormat("f%d(%s)", Callee, genExpr(Depth - 1).c_str());
      }
      return "abs(" + genExpr(Depth - 1) + ")";
    default:
      return "new Box()->set(" + genExpr(Depth - 1) + ")->get()";
    }
  }

  void genStmt(int Depth, int Indent) {
    std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    switch (R.nextBelow(Depth > 0 ? 5 : 2)) {
    case 0: {
      std::string V = strFormat("$v%d", static_cast<int>(R.nextBelow(6)));
      Source += Pad + V + " = " + genExpr(2) + ";\n";
      Vars.push_back(V);
      return;
    }
    case 1:
      Source += Pad + "print(to_str(" + genExpr(1) + "));\n";
      return;
    case 2: {
      Source += Pad + "if (" + genExpr(1) + ") {\n";
      genStmt(Depth - 1, Indent + 1);
      Source += Pad + "} else {\n";
      genStmt(Depth - 1, Indent + 1);
      Source += Pad + "}\n";
      return;
    }
    case 3: {
      // Loops are always bounded by construction.
      std::string I = strFormat("$i%d", Indent);
      Source += Pad + I + " = 0;\n";
      Source += Pad + "while (" + I + " < " +
                std::to_string(1 + R.nextBelow(6)) + ") {\n";
      genStmt(Depth - 1, Indent + 1);
      Source += Pad + "  " + I + " = " + I + " + 1;\n";
      Source += Pad + "}\n";
      Vars.push_back(I);
      return;
    }
    default:
      Source += Pad + "if (" + genExpr(1) + ") { return " + genExpr(2) +
                "; }\n";
      return;
    }
  }

  void genFunction(int Index) {
    CurrentFunc = Index;
    Vars = {"$x"};
    Source += strFormat("function f%d($x) {\n", Index);
    int Stmts = 2 + static_cast<int>(R.nextBelow(5));
    for (int S = 0; S < Stmts; ++S)
      genStmt(2, 1);
    Source += "  return " + genExpr(2) + ";\n}\n";
  }

  Rng R;
  std::string Source;
  int NumFuncs = 0;
  int CurrentFunc = 0;
};

} // namespace

class FuzzPipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipeline, CompileVerifyExecute) {
  ProgramFuzzer Fuzzer(GetParam());
  std::string Source = Fuzzer.generate();

  bc::Repo Repo;
  const runtime::BuiltinTable &Builtins = runtime::BuiltinTable::standard();
  std::vector<std::string> Errors =
      frontend::compileUnit(Repo, Builtins, "fuzz.hack", Source);
  ASSERT_TRUE(Errors.empty())
      << "fuzzer emitted an invalid program (seed " << GetParam()
      << "): " << Errors[0] << "\n"
      << Source;

  // Invariant 1: accepted programs verify.
  std::vector<std::string> VErrors = bc::verifyRepo(Repo, Builtins.size());
  ASSERT_TRUE(VErrors.empty())
      << "verifier escape (seed " << GetParam() << "): " << VErrors[0]
      << "\n" << Source;

  // Invariant 2: verified programs execute without crashing, observed or
  // not, and observation never changes results.
  runtime::ClassTable Classes(Repo);
  runtime::Heap Heap;
  interp::InterpOptions Opts;
  Opts.StepBudget = 2'000'000;
  interp::Interpreter Interp(Repo, Classes, Heap, Builtins, Opts);
  std::string Output;
  Interp.setOutput(&Output);

  jit::Jit J(Repo, jit::JitConfig());
  jit::JitProfilingHooks Hooks(J);

  for (const bc::Function &F : Repo.funcs()) {
    if (F.isMethod())
      continue;
    std::vector<runtime::Value> Args;
    for (uint32_t P = 0; P < F.NumParams; ++P)
      Args.push_back(runtime::Value::integer(7));

    Interp.setCallbacks(nullptr);
    interp::InterpResult Plain = Interp.call(F.Id, Args);
    std::string PlainOut = Output;
    // Render the return value before the reset: it may point into the heap.
    std::string PlainRet = runtime::toString(Plain.Ret);
    Heap.reset();
    Output.clear();

    Interp.setCallbacks(&Hooks);
    interp::InterpResult Observed = Interp.call(F.Id, Args);
    std::string ObservedRet = runtime::toString(Observed.Ret);
    Heap.reset();

    EXPECT_EQ(Plain.Ok, Observed.Ok);
    EXPECT_EQ(Plain.Steps, Observed.Steps);
    EXPECT_EQ(Plain.Faults, Observed.Faults);
    EXPECT_EQ(PlainRet, ObservedRet)
        << "observation changed a result (seed " << GetParam() << ", "
        << F.Name << ")\n" << Source;
    EXPECT_EQ(Output, PlainOut);
    Output.clear();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<uint64_t>(1, 25));

//===----------------------------------------------------------------------===//
// Package-mutation fuzzing.
//
// Jump-Start's safety story (paper section VI) rests on two layers: the
// wire format rejects anything corrupted in transit, and the strict
// package lint rejects anything checksum-clean but semantically wrong.
// Fuzz both layers from a genuine seeder-produced package: random byte
// flips and truncations must fail deserialization cleanly, and
// field-level struct mutations (re-serialized, so the checksum is valid
// again) must either be caught by the lint at consumer accept time or be
// genuinely harmless.  Nothing may ever crash, and the consumer must
// always end up with a booted server.
//===----------------------------------------------------------------------===//

namespace {

uint32_t numBuiltins() {
  return static_cast<uint32_t>(runtime::BuiltinTable::standard().size());
}

/// Applies one random semantic mutation to \p Pkg; \returns a description
/// for failure messages.  Some mutations are benign by design: the fuzzer
/// must also demonstrate the lint does not over-reject.
std::string mutatePackage(profile::ProfilePackage &Pkg, Rng &R) {
  switch (R.nextBelow(10)) {
  case 0:
    if (Pkg.Preload.Strings.empty())
      Pkg.Preload.Strings.push_back(0);
    Pkg.Preload.Strings.push_back(Pkg.Preload.Strings.front());
    return "duplicate preload string";
  case 1:
    Pkg.Preload.Units.push_back(1u << 20);
    return "out-of-range preload unit";
  case 2:
    if (!Pkg.Funcs.empty())
      Pkg.Funcs[R.nextBelow(Pkg.Funcs.size())].Func = 1u << 20;
    return "out-of-range profiled function id";
  case 3:
    if (!Pkg.Funcs.empty())
      Pkg.Funcs[R.nextBelow(Pkg.Funcs.size())].BlockCounts.resize(4096, 0);
    return "oversized block-counter vector";
  case 4:
    if (!Pkg.Funcs.empty())
      Pkg.Funcs[R.nextBelow(Pkg.Funcs.size())].CallTargets[0xFFFFFF][0] = 1;
    return "call-target record past end of bytecode";
  case 5:
    if (!Pkg.Funcs.empty())
      Pkg.Funcs[R.nextBelow(Pkg.Funcs.size())].ParamTypes.resize(
          bc::kMaxCallArgs + 8);
    return "implausible parameter arity";
  case 6:
    Pkg.Opt.VasmBlockCounts[1u << 20] = {1, 2, 3};
    return "vasm counters for unknown function";
  case 7:
    Pkg.Opt.PropAccessCounts["NoSuchClass::p"] = 9;
    return "property counter for unknown class";
  case 8:
    Pkg.Intermediate.FuncOrder.push_back(1u << 20);
    return "out-of-range function-order entry";
  default:
    // Benign: counters only.  The lint must still pass and the consumer
    // must not log a lint rejection.
    for (profile::FuncProfile &F : Pkg.Funcs)
      F.EntryCount += 1;
    return "benign counter perturbation";
  }
}

class PackageFuzz : public ::testing::TestWithParam<uint64_t> {
protected:
  static void SetUpTestSuite() {
    fleet::WorkloadParams P;
    P.NumHelpers = 120;
    P.NumClasses = 24;
    P.NumEndpoints = 12;
    P.NumUnits = 12;
    W = fleet::generateWorkload(P).release();

    fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
    core::PackageStore Store;
    core::SeederParams SP;
    SP.Requests = 120;
    SP.Seed = 5;
    core::SeederOutcome Out = core::runSeederWorkflow(
        *W, Traffic, baseConfig(), opts(), Store, SP);
    ASSERT_TRUE(Out.Published)
        << (Out.Problems.empty() ? "" : Out.Problems.front());
    Seeded = new profile::ProfilePackage(Out.Package);
  }
  static void TearDownTestSuite() {
    delete Seeded;
    delete W;
    Seeded = nullptr;
    W = nullptr;
  }

  static vm::ServerConfig baseConfig() {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 20;
    return C;
  }

  static core::JumpStartOptions opts() {
    core::JumpStartOptions O;
    O.Coverage.MinProfiledFuncs = 3;
    O.Coverage.MinTotalSamples = 50;
    O.Coverage.MinPackageBytes = 64;
    O.ValidationRequests = 10;
    return O;
  }

  static fleet::Workload *W;
  static profile::ProfilePackage *Seeded;
};

fleet::Workload *PackageFuzz::W = nullptr;
profile::ProfilePackage *PackageFuzz::Seeded = nullptr;

} // namespace

TEST_P(PackageFuzz, ByteFlipsAndTruncationsFailCleanly) {
  Rng R(GetParam() * 977);
  std::vector<uint8_t> Blob = Seeded->serialize();
  ASSERT_FALSE(Blob.empty());

  for (int I = 0; I < 200; ++I) {
    std::vector<uint8_t> Mutant = Blob;
    uint32_t Flips = 1 + static_cast<uint32_t>(R.nextBelow(8));
    for (uint32_t F = 0; F < Flips; ++F) {
      size_t Pos = R.nextBelow(Mutant.size());
      Mutant[Pos] ^= static_cast<uint8_t>(1 + R.nextBelow(255));
    }
    profile::ProfilePackage Out;
    if (profile::ProfilePackage::deserialize(Mutant, Out)) {
      // The checksum survived the flips (vanishingly rare).  Whatever came
      // out must still go through the lint without crashing.
      analysis::Linter L(W->Repo, numBuiltins());
      (void)L.lintPackage(Out);
    }
  }

  // Every truncation band must be rejected, including the empty blob.
  for (size_t Len = 0; Len < Blob.size(); Len += 1 + Blob.size() / 64) {
    std::vector<uint8_t> Trunc(Blob.begin(),
                               Blob.begin() + static_cast<ptrdiff_t>(Len));
    profile::ProfilePackage Out;
    EXPECT_FALSE(profile::ProfilePackage::deserialize(Trunc, Out))
        << "truncated to " << Len << " bytes";
  }
}

TEST_P(PackageFuzz, StructMutationsAreCaughtOrHarmless) {
  Rng R(GetParam() * 31337);
  profile::ProfilePackage Mutant = *Seeded;
  std::string What = mutatePackage(Mutant, R);

  // The re-serialized mutant is checksum-clean and fingerprint-correct:
  // only the strict lint stands between it and the JIT.
  analysis::Linter L(W->Repo, numBuiltins());
  size_t LintErrors = analysis::countErrors(L.lintPackage(Mutant));

  core::PackageStore Store;
  Store.publish(0, 0, Mutant.serialize());
  core::ConsumerParams CP;
  CP.Seed = GetParam();
  core::ConsumerOutcome Out =
      core::startConsumer(*W, baseConfig(), opts(), Store, CP);

  ASSERT_NE(Out.Server, nullptr)
      << "fallback must boot a server (" << What << ")";
  bool SawLintRejection = false;
  for (const std::string &Line : Out.Log)
    if (Line.find("strict lint") != std::string::npos)
      SawLintRejection = true;

  if (LintErrors > 0) {
    EXPECT_FALSE(Out.UsedJumpStart)
        << "lint-rejected package steered a boot (" << What << ")";
    EXPECT_TRUE(SawLintRejection) << What;
  } else {
    EXPECT_FALSE(SawLintRejection)
        << "lint-clean package rejected as if it had errors (" << What
        << ")";
  }
}

TEST_P(PackageFuzz, DistributionCorruptionFallsBack) {
  Rng R(GetParam() * 40503);
  core::PackageStore Store;
  Store.publish(0, 0, Seeded->serialize());
  ASSERT_TRUE(Store.corrupt(0, 0, 0, R).ok());

  core::ConsumerParams CP;
  CP.Seed = GetParam();
  core::ConsumerOutcome Out =
      core::startConsumer(*W, baseConfig(), opts(), Store, CP);
  ASSERT_NE(Out.Server, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackageFuzz,
                         ::testing::Range<uint64_t>(1, 13));
