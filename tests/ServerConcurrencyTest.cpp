//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the concurrent-serving engine: epoch-based reclamation
/// properties, translation-snapshot publication, admission control
/// (shed accounting), the concurrent-vs-serial equivalence of a
/// background retranslate-all under live load, and the redesigned
/// Server API surface (RequestResult, CallbackScope, ServerConfig
/// builder).  Tier-1; ci/sanitize.sh runs it under TSAN
/// (JUMPSTART_SANITIZE=thread), which is what actually checks the
/// epoch pin/retire race.
///
//===----------------------------------------------------------------------===//

#include "fleet/WorkloadGen.h"
#include "jit/TransSnapshot.h"
#include "support/Epoch.h"
#include "support/ThreadPool.h"
#include "vm/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace jumpstart;

namespace {

//===----------------------------------------------------------------------===//
// Epoch-based reclamation.
//===----------------------------------------------------------------------===//

TEST(EpochDomain, RetireUnderPinIsDeferred) {
  support::EpochDomain D;
  support::EpochDomain::Slot *S = D.acquireSlot();

  bool Freed = false;
  D.pin(*S);
  D.retire([&Freed] { Freed = true; });
  // The reader entered at or before the retire tag, so nothing may be
  // freed however often the writer tries.
  D.tryReclaim();
  D.tryReclaim();
  EXPECT_FALSE(Freed);
  EXPECT_EQ(D.pendingCount(), 1u);

  D.unpin(*S);
  EXPECT_EQ(D.tryReclaim(), 1u);
  EXPECT_TRUE(Freed);
  EXPECT_EQ(D.pendingCount(), 0u);
  EXPECT_EQ(D.retiredCount(), 1u);
  EXPECT_EQ(D.freedCount(), 1u);
  D.releaseSlot(S);
}

TEST(EpochDomain, QuiescentDomainDrainsImmediately) {
  support::EpochDomain D;
  int Freed = 0;
  for (int I = 0; I < 5; ++I)
    D.retire([&Freed] { ++Freed; });
  EXPECT_EQ(D.tryReclaim(), 5u);
  EXPECT_EQ(Freed, 5);
}

TEST(EpochDomain, ReclaimAllRequiresQuiescence) {
  support::EpochDomain D;
  bool Freed = false;
  D.retire([&Freed] { Freed = true; });
  EXPECT_EQ(D.reclaimAll(), 1u);
  EXPECT_TRUE(Freed);
}

TEST(EpochDomain, GuardPinsForItsScope) {
  support::EpochDomain D;
  support::EpochDomain::Slot *S = D.acquireSlot();
  bool Freed = false;
  {
    support::EpochGuard G(D, *S);
    EXPECT_GE(G.epoch(), 1u);
    EXPECT_EQ(D.pinnedReaders(), 1u);
    D.retire([&Freed] { Freed = true; });
    D.tryReclaim();
    EXPECT_FALSE(Freed);
  }
  EXPECT_EQ(D.pinnedReaders(), 0u);
  D.tryReclaim();
  EXPECT_TRUE(Freed);
  D.releaseSlot(S);
}

TEST(EpochDomain, SlotsArePooled) {
  support::EpochDomain D;
  support::EpochDomain::Slot *A = D.acquireSlot();
  D.releaseSlot(A);
  support::EpochDomain::Slot *B = D.acquireSlot();
  EXPECT_EQ(A, B) << "released slot should be reused before growing";
  D.releaseSlot(B);
}

/// The reclamation safety property under real concurrency: readers
/// continuously pin, read the published object, and verify it is
/// internally consistent; the writer keeps swapping + retiring.  A
/// premature free shows up as a torn read (and, under TSAN, as a race).
TEST(EpochDomain, ConcurrentPublishNeverFreesVisibleObject) {
  struct Obj {
    uint64_t A = 0;
    uint64_t B = 0; ///< invariant: B == ~A
  };
  support::EpochDomain D;
  std::atomic<const Obj *> Cur{new Obj{0, ~uint64_t{0}}};

  constexpr int kReaders = 4;
  constexpr int kVersions = 400;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Torn{0};

  std::vector<support::EpochDomain::Slot *> Slots;
  for (int I = 0; I < kReaders; ++I)
    Slots.push_back(D.acquireSlot());

  std::vector<std::thread> Readers;
  for (int I = 0; I < kReaders; ++I)
    Readers.emplace_back([&, I] {
      while (!Stop.load(std::memory_order_acquire)) {
        support::EpochGuard G(D, *Slots[I]);
        const Obj *O = Cur.load(std::memory_order_acquire);
        if (O->B != ~O->A)
          Torn.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (uint64_t V = 1; V <= kVersions; ++V) {
    const Obj *Next = new Obj{V, ~V};
    const Obj *Old = Cur.exchange(Next, std::memory_order_acq_rel);
    D.retire([Old] { delete Old; });
    D.tryReclaim();
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  for (support::EpochDomain::Slot *S : Slots)
    D.releaseSlot(S);

  EXPECT_EQ(Torn.load(), 0u);
  delete Cur.load();
  D.reclaimAll();
  EXPECT_EQ(D.freedCount(), D.retiredCount());
  EXPECT_EQ(D.retiredCount(), static_cast<uint64_t>(kVersions));
}

//===----------------------------------------------------------------------===//
// Snapshot publication.
//===----------------------------------------------------------------------===//

TEST(SnapshotPublisher, VersionsAdvanceAndRetireesDrain) {
  support::EpochDomain D;
  jit::SnapshotPublisher P(D);
  EXPECT_EQ(P.current(), nullptr);
  for (uint64_t V = 1; V <= 3; ++V) {
    auto S = std::make_unique<jit::TransSnapshot>();
    S->Version = V;
    P.publish(std::unique_ptr<const jit::TransSnapshot>(std::move(S)));
    ASSERT_NE(P.current(), nullptr);
    EXPECT_EQ(P.current()->Version, V);
  }
  EXPECT_EQ(P.published(), 3u);
  // Two superseded snapshots retired; with no reader pinned they free
  // on the opportunistic reclaim inside publish().
  EXPECT_EQ(D.retiredCount(), 2u);
  EXPECT_EQ(D.pendingCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Server fixtures.
//===----------------------------------------------------------------------===//

class ServerConcurrencyFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    fleet::WorkloadParams P;
    P.NumHelpers = 120;
    P.NumClasses = 24;
    P.NumEndpoints = 12;
    P.NumUnits = 12;
    W = fleet::generateWorkload(P).release();
  }
  static void TearDownTestSuite() {
    delete W;
    W = nullptr;
  }

  static vm::ServerConfig fastConfig() {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 20;
    C.JitWorkerCores = 1;
    return C;
  }

  /// The deterministic request schedule shared by every serving mode.
  static bc::FuncId endpointFor(uint32_t Rq) {
    return W->Endpoints[Rq % W->Endpoints.size()];
  }
  static std::vector<runtime::Value> argsFor(uint32_t Rq) {
    return {runtime::Value::integer(
        static_cast<int64_t>((Rq * 2654435761ull) & 0xFFFFFull))};
  }

  /// Runs the profiling prefix serially with small per-request JIT
  /// grants (profile translations must compile for samples to
  /// accumulate), withholding the grant after the final request so the
  /// retranslate-all triggered by it is still fully queued on return.
  static void profilePrefix(vm::Server &S, uint32_t N) {
    for (uint32_t Rq = 0; Rq < N; ++Rq) {
      S.executeRequest(endpointFor(Rq), argsFor(Rq));
      if (Rq + 1 < N)
        S.grantJitTime(0.25);
    }
  }

  static fleet::Workload *W;
};

fleet::Workload *ServerConcurrencyFixture::W = nullptr;

//===----------------------------------------------------------------------===//
// The tentpole: background retranslate-all under live load.
//===----------------------------------------------------------------------===//

TEST_F(ServerConcurrencyFixture, RetranslateAllUnderLiveLoadMatchesSerial) {
  constexpr uint32_t kProfile = 20;
  constexpr uint32_t kServe = 48;
  constexpr uint32_t kClients = 4;

  // Twin A: serial reference.  Drain the queued retranslate-all to
  // maturity, then serve the schedule one request at a time.
  vm::ServerConfig CA = fastConfig();
  vm::Server A(W->Repo, CA, 7);
  A.startup();
  profilePrefix(A, kProfile);
  ASSERT_TRUE(A.theJit().hasPendingWork());
  while (A.theJit().hasPendingWork())
    A.grantJitTime(1.0);
  ASSERT_EQ(A.theJit().phase(), jit::JitPhase::Mature);
  std::vector<vm::RequestObservables> SerialObs;
  for (uint32_t Rq = 0; Rq < kServe; ++Rq)
    SerialObs.push_back(A.executeRequest(endpointFor(Rq), argsFor(Rq)).Obs);
  std::string SerialPlacement = A.theJit().transDb().placementDigest();

  // Twin B: identical profiling prefix, then the retranslate-all runs on
  // a background thread WHILE kClients threads serve the same schedule
  // concurrently -- no quiescence anywhere.
  vm::ServerConfig CB = fastConfig();
  CB.ServeWorkers = kClients;
  vm::Server B(W->Repo, CB, 7);
  B.startup();
  profilePrefix(B, kProfile);
  ASSERT_TRUE(B.theJit().hasPendingWork());

  B.beginConcurrentServing();
  std::thread Compiler([&B] {
    while (B.theJit().hasPendingWork())
      B.runBackgroundJitWork(0.25);
  });

  std::vector<vm::RequestObservables> ConcObs(kServe);
  std::atomic<uint32_t> Next{0};
  auto Client = [&] {
    for (;;) {
      uint32_t Rq = Next.fetch_add(1, std::memory_order_relaxed);
      if (Rq >= kServe)
        break;
      vm::RequestResult Res = B.serve(endpointFor(Rq), argsFor(Rq), Rq);
      ASSERT_FALSE(Res.Shed);
      ConcObs[Rq] = std::move(Res.Obs);
    }
  };
  std::vector<std::thread> Clients;
  for (uint32_t I = 0; I < kClients; ++I)
    Clients.emplace_back(Client);
  for (std::thread &T : Clients)
    T.join();
  Compiler.join();
  vm::ServeStats Stats = B.endConcurrentServing();

  // No lost requests, nothing shed (Block policy), compilation finished.
  EXPECT_EQ(Stats.Submitted, kServe);
  EXPECT_EQ(Stats.Served, kServe);
  EXPECT_EQ(Stats.Shed, 0u);
  EXPECT_EQ(B.theJit().phase(), jit::JitPhase::Mature);
  EXPECT_EQ(B.requestsServed(), A.requestsServed());

  // At least the initial snapshot plus one mid-window publication, and
  // every superseded snapshot reclaimed.
  EXPECT_GE(Stats.SnapshotsPublished, 2u);
  EXPECT_EQ(Stats.SnapshotsReclaimed, Stats.SnapshotsPublished - 1);

  // The concurrent engine is semantically invisible: per-index
  // observables and the final translation placement match the serial
  // twin exactly.
  for (uint32_t Rq = 0; Rq < kServe; ++Rq) {
    EXPECT_EQ(ConcObs[Rq].Ret, SerialObs[Rq].Ret) << "request " << Rq;
    EXPECT_EQ(ConcObs[Rq].Output, SerialObs[Rq].Output) << "request " << Rq;
    EXPECT_EQ(ConcObs[Rq].Faults, SerialObs[Rq].Faults) << "request " << Rq;
    EXPECT_EQ(ConcObs[Rq].Ok, SerialObs[Rq].Ok) << "request " << Rq;
  }
  EXPECT_EQ(B.theJit().transDb().placementDigest(), SerialPlacement);
}

TEST_F(ServerConcurrencyFixture, BackgroundPrelowerMatchesSerialDigest) {
  constexpr uint32_t kProfile = 20;

  // Serial reference: drain the queued retranslate-all inline.
  vm::Server A(W->Repo, fastConfig(), 7);
  A.startup();
  profilePrefix(A, kProfile);
  while (A.theJit().hasPendingWork())
    A.grantJitTime(1.0);
  std::string SerialPlacement = A.theJit().transDb().placementDigest();

  // Twin: same prefix, but the background drain prelowers every queued
  // unit on a host compile pool before each slice.  The pool must be
  // invisible in the placement digest.
  support::ThreadPool Pool(3);
  vm::ServerConfig CB = fastConfig();
  CB.CompilePool = &Pool;
  vm::Server B(W->Repo, CB, 7);
  B.startup();
  profilePrefix(B, kProfile);
  ASSERT_TRUE(B.theJit().hasPendingWork());

  B.beginConcurrentServing();
  while (B.theJit().hasPendingWork())
    B.runBackgroundJitWork(0.25);
  vm::ServeStats Stats = B.endConcurrentServing();
  EXPECT_EQ(Stats.Submitted, 0u);

  EXPECT_EQ(B.theJit().phase(), jit::JitPhase::Mature);
  EXPECT_EQ(B.theJit().transDb().placementDigest(), SerialPlacement);
}

TEST_F(ServerConcurrencyFixture, SnapshotCaptureMatchesJitCosts) {
  vm::Server S(W->Repo, fastConfig(), 7);
  S.startup();
  profilePrefix(S, 20);
  while (S.theJit().hasPendingWork())
    S.grantJitTime(1.0);
  auto Snap = jit::TransSnapshot::capture(S.theJit(), 1);
  ASSERT_EQ(Snap->CostPerBytecode.size(), W->Repo.numFuncs());
  EXPECT_GT(Snap->Translations, 0u);
  for (size_t F = 0; F < W->Repo.numFuncs(); ++F)
    EXPECT_EQ(Snap->CostPerBytecode[F],
              S.theJit().execCostPerBytecode(
                  bc::FuncId(static_cast<uint32_t>(F))));
}

//===----------------------------------------------------------------------===//
// Admission control.
//===----------------------------------------------------------------------===//

TEST_F(ServerConcurrencyFixture, ShedPolicyAccountsEveryRequest) {
  vm::ServerConfig C = fastConfig();
  C.ServeWorkers = 1;
  C.Admission.MaxInFlight = 1;
  C.Admission.OnOverload = vm::AdmissionConfig::Policy::Shed;
  vm::Server S(W->Repo, C, 7);
  S.startup();
  S.beginConcurrentServing();

  // Hammer the single-context server from 4 threads until someone is
  // shed; every arrival must be accounted as served or shed.
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kPerThread = 4000;
  std::atomic<uint64_t> LocalServed{0}, LocalShed{0};
  std::atomic<uint32_t> Ticket{0};
  std::atomic<bool> SawShed{false};
  std::vector<std::thread> Threads;
  for (uint32_t T = 0; T < kThreads; ++T)
    Threads.emplace_back([&] {
      for (uint32_t I = 0; I < kPerThread; ++I) {
        if (SawShed.load(std::memory_order_acquire) && I > 16)
          break;
        uint32_t Rq = Ticket.fetch_add(1, std::memory_order_relaxed);
        vm::RequestResult Res = S.serve(endpointFor(Rq), argsFor(Rq), Rq);
        if (Res.Shed) {
          LocalShed.fetch_add(1, std::memory_order_relaxed);
          SawShed.store(true, std::memory_order_release);
        } else {
          LocalServed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  vm::ServeStats Stats = S.endConcurrentServing();

  EXPECT_EQ(Stats.Submitted, Stats.Served + Stats.Shed)
      << "lost request under overload";
  EXPECT_EQ(Stats.Served, LocalServed.load());
  EXPECT_EQ(Stats.Shed, LocalShed.load());
  EXPECT_GT(Stats.Shed, 0u)
      << "4 threads against MaxInFlight=1 never overlapped";
}

TEST_F(ServerConcurrencyFixture, BlockPolicyNeverSheds) {
  vm::ServerConfig C = fastConfig();
  C.ServeWorkers = 2;
  C.Admission.MaxInFlight = 2;
  C.Admission.OnOverload = vm::AdmissionConfig::Policy::Block;
  vm::Server S(W->Repo, C, 7);
  S.startup();
  S.beginConcurrentServing();

  constexpr uint32_t kRequests = 256;
  std::atomic<uint32_t> Next{0};
  auto Client = [&] {
    for (;;) {
      uint32_t Rq = Next.fetch_add(1, std::memory_order_relaxed);
      if (Rq >= kRequests)
        break;
      vm::RequestResult Res = S.serve(endpointFor(Rq), argsFor(Rq), Rq);
      EXPECT_FALSE(Res.Shed);
    }
  };
  std::vector<std::thread> Clients;
  for (uint32_t I = 0; I < 6; ++I)
    Clients.emplace_back(Client);
  for (std::thread &T : Clients)
    T.join();
  vm::ServeStats Stats = S.endConcurrentServing();
  EXPECT_EQ(Stats.Submitted, kRequests);
  EXPECT_EQ(Stats.Served, kRequests);
  EXPECT_EQ(Stats.Shed, 0u);
}

//===----------------------------------------------------------------------===//
// API redesign: RequestResult, CallbackScope, builder.
//===----------------------------------------------------------------------===//

TEST_F(ServerConcurrencyFixture, RequestResultCarriesObservables) {
  vm::Server S(W->Repo, fastConfig(), 7);
  S.startup();
  vm::RequestResult Res = S.executeRequest(endpointFor(3), argsFor(3));
  EXPECT_GT(Res.Seconds, 0.0);
  EXPECT_FALSE(Res.Shed);
  EXPECT_TRUE(Res.Obs.Ok);
  EXPECT_EQ(Res.Obs.Faults, 0u);
  // The request is deterministic: the same call must observe the same
  // return value and output, carried entirely in the RequestResult.
  vm::RequestResult Again = S.executeRequest(endpointFor(3), argsFor(3));
  EXPECT_EQ(Res.Obs.Ret, Again.Obs.Ret);
  EXPECT_EQ(Res.Obs.Output, Again.Obs.Output);
  EXPECT_EQ(Res.Obs.Ok, Again.Obs.Ok);
}

namespace {
class CountingCallbacks : public interp::ExecCallbacks {
public:
  uint64_t Enters = 0;
  void onFuncEnter(bc::FuncId, bc::FuncId, const runtime::Value *,
                   uint32_t) override {
    ++Enters;
  }
};
} // namespace

TEST_F(ServerConcurrencyFixture, CallbackScopeRestoresProfilingHooks) {
  vm::Server S(W->Repo, fastConfig(), 7);
  S.startup();
  CountingCallbacks CB;
  {
    vm::CallbackScope Scope(S, &CB);
    S.executeRequest(endpointFor(0), argsFor(0));
    EXPECT_GT(CB.Enters, 0u);
    // With measurement callbacks attached, the profiling hooks are off:
    // the JIT sees no function entries, so nothing is enqueued.
    EXPECT_FALSE(S.theJit().hasPendingWork());
  }
  uint64_t EntersAfterScope = CB.Enters;
  S.executeRequest(endpointFor(1), argsFor(1));
  EXPECT_EQ(CB.Enters, EntersAfterScope)
      << "scope exit did not detach the measurement callbacks";
  EXPECT_TRUE(S.theJit().hasPendingWork())
      << "scope exit did not restore the profiling hooks";
}

TEST(ServerConfigBuilder, DefaultsValidate) {
  EXPECT_TRUE(vm::validateServerConfig(vm::ServerConfig{}).empty());
  vm::ServerConfig C;
  EXPECT_TRUE(vm::ServerConfigBuilder().tryBuild(C).ok());
}

TEST(ServerConfigBuilder, RejectsIncoherentSettings) {
  struct Case {
    const char *Field;
    vm::ServerConfigBuilder B;
  };
  std::vector<Case> Cases;
  Cases.push_back({"Cores", vm::ServerConfigBuilder().cores(0)});
  Cases.push_back(
      {"JitWorkerCores", vm::ServerConfigBuilder().jitWorkerCores(0)});
  Cases.push_back({"UnitsPerCorePerSecond",
                   vm::ServerConfigBuilder().unitsPerCorePerSecond(0)});
  Cases.push_back({"UnitLoadCost",
                   vm::ServerConfigBuilder().unitLoadCost(-1)});
  Cases.push_back({"RuntimeWarmupTau",
                   vm::ServerConfigBuilder().runtimeWarmup(2.0, 0)});
  Cases.push_back({"ServeWorkers",
                   vm::ServerConfigBuilder().serveWorkers(0)});
  Cases.push_back({"MaxInFlight", vm::ServerConfigBuilder()
                                      .serveWorkers(4)
                                      .maxInFlight(1)});
  Cases.push_back({"Name", vm::ServerConfigBuilder().name("")});
  for (Case &C : Cases) {
    vm::ServerConfig Out;
    support::Status S = C.B.tryBuild(Out);
    EXPECT_FALSE(S.ok()) << C.Field;
    EXPECT_EQ(S.code(), support::StatusCode::FailedPrecondition) << C.Field;
  }
}

TEST(ServerConfigBuilder, BuildsWhatWasSet) {
  vm::ServerConfig C = vm::ServerConfigBuilder()
                           .cores(8)
                           .jitWorkerCores(2)
                           .serveWorkers(4)
                           .maxInFlight(16)
                           .onOverload(vm::AdmissionConfig::Policy::Shed)
                           .name("c8")
                           .build();
  EXPECT_EQ(C.Cores, 8u);
  EXPECT_EQ(C.JitWorkerCores, 2u);
  EXPECT_EQ(C.ServeWorkers, 4u);
  EXPECT_EQ(C.Admission.MaxInFlight, 16u);
  EXPECT_EQ(C.Admission.OnOverload, vm::AdmissionConfig::Policy::Shed);
  EXPECT_EQ(C.Name, "c8");
}

} // namespace
