//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the stats library: exact changepoint detection, outlier
/// masking, warmup-curve classification, and bootstrap confidence
/// intervals.  Includes the scaling-invariance property sweep the
/// data-derived penalty exists for: classification must not change when
/// the metric's unit does.
///
//===----------------------------------------------------------------------===//

#include "stats/Changepoint.h"
#include "stats/Warmup.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace jumpstart;
using namespace jumpstart::stats;

namespace {

/// A series built from mean-stable blocks plus uniform noise in
/// [-Noise, Noise] from an explicit seed.
std::vector<double> blockSeries(const std::vector<std::pair<size_t, double>>
                                    &Blocks,
                                double Noise, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> V;
  for (const auto &[Len, Mean] : Blocks)
    for (size_t I = 0; I < Len; ++I)
      V.push_back(Mean + Noise * (2 * R.nextDouble() - 1));
  return V;
}

std::vector<double> scaled(const std::vector<double> &V, double C) {
  std::vector<double> Out = V;
  for (double &X : Out)
    X *= C;
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Changepoint detection
//===----------------------------------------------------------------------===//

TEST(Changepoint, RecoversCleanStepExactly) {
  // A noise-free step: 20 iterations at 10, then 20 at 2.
  std::vector<double> V = blockSeries({{20, 10.0}, {20, 2.0}}, 0, 1);
  Segmentation S = detectChangepoints(V);
  ASSERT_EQ(S.Changepoints.size(), 1u);
  EXPECT_EQ(S.Changepoints[0], 20u);
  ASSERT_EQ(S.Segments.size(), 2u);
  EXPECT_DOUBLE_EQ(S.Segments[0].Mean, 10.0);
  EXPECT_DOUBLE_EQ(S.Segments[1].Mean, 2.0);
  EXPECT_DOUBLE_EQ(S.Cost, 0.0);
}

TEST(Changepoint, RecoversNoisyStepExactly) {
  // Noise more than an order of magnitude below the shift: the boundary
  // must land on the exact iteration, for every noise realization.
  for (uint64_t Seed : {1, 2, 3, 5, 13}) {
    std::vector<double> V =
        blockSeries({{25, 8.0}, {15, 3.0}}, 0.2, Seed);
    Segmentation S = detectChangepoints(V);
    ASSERT_EQ(S.Changepoints.size(), 1u) << "seed " << Seed;
    EXPECT_EQ(S.Changepoints[0], 25u) << "seed " << Seed;
    EXPECT_NEAR(S.Segments[0].Mean, 8.0, 0.15);
    EXPECT_NEAR(S.Segments[1].Mean, 3.0, 0.15);
  }
}

TEST(Changepoint, RecoversMultipleSteps) {
  // A three-level staircase down (the canonical warmup shape).
  std::vector<double> V =
      blockSeries({{12, 20.0}, {10, 8.0}, {18, 2.0}}, 0.15, 3);
  Segmentation S = detectChangepoints(V);
  ASSERT_EQ(S.Changepoints.size(), 2u);
  EXPECT_EQ(S.Changepoints[0], 12u);
  EXPECT_EQ(S.Changepoints[1], 22u);
}

TEST(Changepoint, RampApproximatedByMonotoneSegments) {
  // A gradual ramp down into a plateau.  The piecewise-constant model
  // approximates the ramp with a monotone staircase whose final segment
  // is the plateau -- what the classifier needs to call it warmup.
  std::vector<double> V;
  for (size_t I = 0; I < 15; ++I)
    V.push_back(20.0 - static_cast<double>(I));
  for (size_t I = 0; I < 25; ++I)
    V.push_back(5.0);
  Segmentation S = detectChangepoints(V);
  ASSERT_GE(S.Segments.size(), 2u);
  for (size_t I = 1; I < S.Segments.size(); ++I)
    EXPECT_LT(S.Segments[I].Mean, S.Segments[I - 1].Mean);
  EXPECT_DOUBLE_EQ(S.Segments.back().Mean, 5.0);
  EXPECT_LE(S.Segments.back().Begin, 15u);

  ClassifyParams P;
  P.MaskOutliers = false; // the plateau dominates: fences would clip the ramp
  Classification C = classifySeries(V, P);
  EXPECT_EQ(C.Class, WarmupClass::Warmup);
  EXPECT_LE(C.SteadyStart, 15u);
}

TEST(Changepoint, NoisyFlatSeriesIsOneSegment) {
  // Pure noise around one mean: the BIC penalty must suppress every
  // spurious split.
  std::vector<double> V = blockSeries({{60, 5.0}}, 0.3, 11);
  Segmentation S = detectChangepoints(V);
  EXPECT_TRUE(S.Changepoints.empty());
  ASSERT_EQ(S.Segments.size(), 1u);
  EXPECT_NEAR(S.Segments[0].Mean, 5.0, 0.15);
}

TEST(Changepoint, ConstantSeriesIsOneSegment) {
  std::vector<double> V(40, 3.25);
  Segmentation S = detectChangepoints(V);
  EXPECT_TRUE(S.Changepoints.empty());
  ASSERT_EQ(S.Segments.size(), 1u);
  EXPECT_DOUBLE_EQ(S.Segments[0].Mean, 3.25);
}

TEST(Changepoint, MinSegmentLengthBlocksShortSegments) {
  // A 2-point excursion cannot become its own segment with the default
  // MinSegmentLength = 3.
  std::vector<double> V(30, 1.0);
  V[14] = 50.0;
  V[15] = 50.0;
  ChangepointParams P;
  P.Penalty = 1.0; // cheap splits: only the length floor protects us
  Segmentation S = detectChangepoints(V, P);
  for (const Segment &Seg : S.Segments)
    EXPECT_GE(Seg.length(), 3u);
}

TEST(Changepoint, EmptyAndTinySeries) {
  EXPECT_TRUE(detectChangepoints({}).Segments.empty());
  Segmentation S = detectChangepoints({1.0, 2.0, 3.0});
  EXPECT_TRUE(S.Changepoints.empty());
  ASSERT_EQ(S.Segments.size(), 1u);
  EXPECT_DOUBLE_EQ(S.Segments[0].Mean, 2.0);
}

TEST(Changepoint, SegmentsTileTheSeries) {
  std::vector<double> V =
      blockSeries({{10, 4.0}, {14, 9.0}, {12, 1.0}}, 0.2, 19);
  Segmentation S = detectChangepoints(V);
  ASSERT_FALSE(S.Segments.empty());
  EXPECT_EQ(S.Segments.front().Begin, 0u);
  EXPECT_EQ(S.Segments.back().End, V.size());
  for (size_t I = 1; I < S.Segments.size(); ++I)
    EXPECT_EQ(S.Segments[I].Begin, S.Segments[I - 1].End);
}

TEST(Changepoint, PeriodicOutliersMaskedAway) {
  // A GC-style spike every 10 iterations.  Unmasked, the detector
  // faithfully reports spike-level segments (~10x the base level);
  // winsorizing to the Tukey fences bounds every value -- and therefore
  // every segment mean -- to within a few IQRs of the quartiles, so no
  // segment strays more than ~10% from the true level.
  std::vector<double> V = blockSeries({{60, 4.0}}, 0.1, 23);
  for (size_t I = 9; I < V.size(); I += 10)
    V[I] = 40.0;

  Segmentation Raw = detectChangepoints(V);
  double RawWorst = 0;
  for (const Segment &S : Raw.Segments)
    RawWorst = std::max(RawWorst, S.Mean);
  EXPECT_GT(RawWorst, 8.0) << "unmasked spikes must surface as segments";

  std::vector<double> Masked = maskOutliers(V);
  for (double X : Masked)
    EXPECT_LT(X, 4.5);
  Segmentation S = detectChangepoints(Masked);
  for (const Segment &Seg : S.Segments)
    EXPECT_NEAR(Seg.Mean, 4.0, 0.4);
}

TEST(Changepoint, MaskingPreservesRealStep) {
  // Winsorizing must not erase a genuine level shift that covers a large
  // fraction of the series.
  std::vector<double> V = blockSeries({{30, 10.0}, {30, 2.0}}, 0.2, 29);
  Segmentation S = detectChangepoints(maskOutliers(V));
  ASSERT_EQ(S.Changepoints.size(), 1u);
  EXPECT_EQ(S.Changepoints[0], 30u);
}

TEST(Changepoint, RobustNoiseVarianceIgnoresLevelShifts) {
  // The successive-difference estimator must see the noise, not the step.
  std::vector<double> Flat = blockSeries({{40, 5.0}}, 0.3, 31);
  std::vector<double> Stepped = blockSeries({{20, 5.0}, {20, 50.0}}, 0.3, 31);
  double VarFlat = robustNoiseVariance(Flat);
  double VarStepped = robustNoiseVariance(Stepped);
  EXPECT_GT(VarFlat, 0.0);
  // One jump contributes one of n-1 differences: the median barely moves.
  EXPECT_LT(VarStepped, 4.0 * VarFlat);
  EXPECT_DOUBLE_EQ(robustNoiseVariance({}), 0.0);
  EXPECT_DOUBLE_EQ(robustNoiseVariance({1.0}), 0.0);
}

TEST(Changepoint, DeterministicAcrossCalls) {
  std::vector<double> V =
      blockSeries({{15, 6.0}, {25, 2.0}}, 0.25, 37);
  Segmentation A = detectChangepoints(V);
  Segmentation B = detectChangepoints(V);
  EXPECT_EQ(A.Changepoints, B.Changepoints);
  EXPECT_DOUBLE_EQ(A.Cost, B.Cost);
  EXPECT_DOUBLE_EQ(A.PenaltyUsed, B.PenaltyUsed);
}

//===----------------------------------------------------------------------===//
// Warmup classification
//===----------------------------------------------------------------------===//

TEST(WarmupClassify, TruthTable) {
  ClassifyParams P; // lower is better (latency-like)

  // Flat: noise around one mean from the start.
  Classification Flat =
      classifySeries(blockSeries({{40, 5.0}}, 0.1, 41), P);
  EXPECT_EQ(Flat.Class, WarmupClass::Flat);
  EXPECT_EQ(Flat.SteadyStart, 0u);

  // Warmup: starts slow, steps down to steady.
  Classification Warm = classifySeries(
      blockSeries({{10, 20.0}, {10, 8.0}, {20, 2.0}}, 0.1, 43), P);
  EXPECT_EQ(Warm.Class, WarmupClass::Warmup);
  EXPECT_EQ(Warm.SteadyStart, 20u);
  EXPECT_NEAR(Warm.SteadyMean, 2.0, 0.1);

  // Slowdown: starts fast, degrades into its final state.
  Classification Slow = classifySeries(
      blockSeries({{15, 2.0}, {25, 9.0}}, 0.1, 47), P);
  EXPECT_EQ(Slow.Class, WarmupClass::Slowdown);

  // Inconsistent: dips below steady, then rises above it.
  Classification Mixed = classifySeries(
      blockSeries({{12, 2.0}, {12, 20.0}, {16, 8.0}}, 0.1, 53), P);
  EXPECT_EQ(Mixed.Class, WarmupClass::Inconsistent);
}

TEST(WarmupClassify, ThroughputDirectionFlips) {
  // The same rising staircase is a warmup curve for throughput and a
  // slowdown for latency.
  std::vector<double> Rising =
      blockSeries({{10, 100.0}, {30, 400.0}}, 2.0, 59);
  ClassifyParams Latency;
  Latency.LowerIsBetter = true;
  ClassifyParams Throughput;
  Throughput.LowerIsBetter = false;
  EXPECT_EQ(classifySeries(Rising, Latency).Class, WarmupClass::Slowdown);
  EXPECT_EQ(classifySeries(Rising, Throughput).Class, WarmupClass::Warmup);
}

TEST(WarmupClassify, ShortFinalSegmentIsInconsistent) {
  // The run was still moving when it ended: the final segment covers
  // less than MinSteadyFraction of the series.
  std::vector<double> V = blockSeries({{36, 10.0}, {3, 2.0}}, 0, 61);
  ClassifyParams P;
  P.Changepoints.Penalty = 0.5;
  // Masking off: with 92% of the series at one value the Tukey fences
  // collapse (IQR = 0) and would clip away the very tail under test.
  P.MaskOutliers = false;
  EXPECT_EQ(classifySeries(V, P).Class, WarmupClass::Inconsistent);
}

TEST(WarmupClassify, NearSteadySegmentsExtendSteadyState) {
  // A segment within RelTolerance of steady counts as already steady, so
  // SteadyStart walks back past it.
  std::vector<double> V;
  for (size_t I = 0; I < 10; ++I)
    V.push_back(30.0);
  for (size_t I = 0; I < 10; ++I)
    V.push_back(10.05);
  for (size_t I = 0; I < 20; ++I)
    V.push_back(10.0);
  ClassifyParams P;
  P.Changepoints.Penalty = 0.1;
  Classification C = classifySeries(V, P);
  EXPECT_EQ(C.Class, WarmupClass::Warmup);
  EXPECT_EQ(C.SteadyStart, 10u);
}

TEST(WarmupClassify, PeriodicOutliersDoNotBreakFlat) {
  // With masking on (the default), GC-style spikes leave a flat run
  // flat: winsorizing bounds them to the Tukey fences, well inside the
  // equivalence tolerance.  Unmasked, the spikes dominate and the run
  // misclassifies.
  std::vector<double> V = blockSeries({{50, 5.0}}, 0.02, 67);
  for (size_t I = 7; I < V.size(); I += 10)
    V[I] = 60.0;
  EXPECT_EQ(classifySeries(V).Class, WarmupClass::Flat);
  ClassifyParams NoMask;
  NoMask.MaskOutliers = false;
  EXPECT_NE(classifySeries(V, NoMask).Class, WarmupClass::Flat);
}

TEST(WarmupClassify, EmptySeriesIsInconsistent) {
  EXPECT_EQ(classifySeries({}).Class, WarmupClass::Inconsistent);
}

TEST(WarmupClassify, ClassNamesAndRanks) {
  EXPECT_STREQ(warmupClassName(WarmupClass::Flat), "flat");
  EXPECT_STREQ(warmupClassName(WarmupClass::Warmup), "warmup");
  EXPECT_STREQ(warmupClassName(WarmupClass::Slowdown), "slowdown");
  EXPECT_STREQ(warmupClassName(WarmupClass::Inconsistent), "inconsistent");
  EXPECT_LT(warmupClassRank(WarmupClass::Flat),
            warmupClassRank(WarmupClass::Warmup));
  EXPECT_LT(warmupClassRank(WarmupClass::Warmup),
            warmupClassRank(WarmupClass::Slowdown));
  EXPECT_LT(warmupClassRank(WarmupClass::Slowdown),
            warmupClassRank(WarmupClass::Inconsistent));
}

TEST(WarmupClassify, ScalingInvarianceProperty) {
  // The reason the penalty is data-derived: classification is a property
  // of the curve's *shape*, so changing the metric's unit (seconds vs
  // milliseconds vs allocations) must not change the verdict.  40 seeds
  // of random block structure, each checked under three positive scales.
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    Rng R(1000 + Seed);
    std::vector<std::pair<size_t, double>> Blocks;
    size_t NumBlocks = 1 + R.nextBelow(3);
    for (size_t B = 0; B < NumBlocks; ++B)
      Blocks.push_back({8 + R.nextBelow(20), 1.0 + 9.0 * R.nextDouble()});
    std::vector<double> V = blockSeries(Blocks, 0.05, 2000 + Seed);

    Classification Base = classifySeries(V);
    for (double C : {0.5, 3.7, 1e3}) {
      Classification Scaled = classifySeries(scaled(V, C));
      EXPECT_EQ(Scaled.Class, Base.Class)
          << "seed " << Seed << " scale " << C;
      EXPECT_EQ(Scaled.SteadyStart, Base.SteadyStart)
          << "seed " << Seed << " scale " << C;
      EXPECT_EQ(Scaled.Seg.Changepoints, Base.Seg.Changepoints)
          << "seed " << Seed << " scale " << C;
    }
  }
}

//===----------------------------------------------------------------------===//
// Bootstrap confidence intervals
//===----------------------------------------------------------------------===//

TEST(Bootstrap, DeterministicForFixedSeed) {
  std::vector<double> V = blockSeries({{25, 7.0}}, 0.5, 71);
  ConfidenceInterval A = bootstrapMeanCI(V);
  ConfidenceInterval B = bootstrapMeanCI(V);
  EXPECT_DOUBLE_EQ(A.Lo, B.Lo);
  EXPECT_DOUBLE_EQ(A.Hi, B.Hi);
  EXPECT_DOUBLE_EQ(A.Mean, B.Mean);

  BootstrapParams P;
  P.Seed = 99;
  ConfidenceInterval C = bootstrapMeanCI(V, P);
  // A different seed resamples differently (the interval is still close,
  // but not bit-identical) -- the fixed default seed is what makes the
  // committed stats blocks reproducible.
  EXPECT_TRUE(C.Lo != A.Lo || C.Hi != A.Hi);
}

TEST(Bootstrap, IntervalBracketsTheMean) {
  std::vector<double> V = blockSeries({{30, 12.0}}, 1.0, 73);
  ConfidenceInterval CI = bootstrapMeanCI(V);
  EXPECT_LE(CI.Lo, CI.Mean);
  EXPECT_GE(CI.Hi, CI.Mean);
  EXPECT_NEAR(CI.Mean, 12.0, 0.5);
  EXPECT_GT(CI.Hi - CI.Lo, 0.0);
}

TEST(Bootstrap, DegenerateInputs) {
  ConfidenceInterval Empty = bootstrapMeanCI({});
  EXPECT_DOUBLE_EQ(Empty.Lo, 0.0);
  EXPECT_DOUBLE_EQ(Empty.Hi, 0.0);
  ConfidenceInterval Single = bootstrapMeanCI({4.5});
  EXPECT_DOUBLE_EQ(Single.Lo, 4.5);
  EXPECT_DOUBLE_EQ(Single.Hi, 4.5);
  ConfidenceInterval Constant = bootstrapMeanCI({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(Constant.Lo, 2.0);
  EXPECT_DOUBLE_EQ(Constant.Hi, 2.0);
}

TEST(Bootstrap, DisjointlyWorseGate) {
  ConfidenceInterval Committed{1.0, 2.0, 1.5};
  ConfidenceInterval Worse{2.5, 3.0, 2.75};
  ConfidenceInterval Overlapping{1.8, 2.6, 2.2};
  ConfidenceInterval Better{0.2, 0.6, 0.4};
  // Latency-like: larger is worse.
  EXPECT_TRUE(Worse.disjointlyWorseThan(Committed, /*LowerIsBetter=*/true));
  EXPECT_FALSE(
      Overlapping.disjointlyWorseThan(Committed, /*LowerIsBetter=*/true));
  EXPECT_FALSE(Better.disjointlyWorseThan(Committed, /*LowerIsBetter=*/true));
  // Throughput: smaller is worse.
  EXPECT_TRUE(Better.disjointlyWorseThan(Committed, /*LowerIsBetter=*/false));
  EXPECT_FALSE(Worse.disjointlyWorseThan(Committed, /*LowerIsBetter=*/false));
}

//===----------------------------------------------------------------------===//
// Multi-seed aggregation
//===----------------------------------------------------------------------===//

TEST(AnalyzeRuns, TallyAndWorstClass) {
  std::vector<std::pair<uint64_t, std::vector<double>>> Seeds;
  Seeds.push_back({0, blockSeries({{40, 5.0}}, 0.1, 81)});
  Seeds.push_back({1, blockSeries({{10, 20.0}, {30, 5.0}}, 0.1, 83)});
  Seeds.push_back({2, blockSeries({{40, 5.0}}, 0.1, 87)});
  StatsSummary S = analyzeRuns(Seeds);
  EXPECT_EQ(S.Tally[static_cast<size_t>(WarmupClass::Flat)], 2u);
  EXPECT_EQ(S.Tally[static_cast<size_t>(WarmupClass::Warmup)], 1u);
  EXPECT_EQ(S.WorstClass, WarmupClass::Warmup);
  ASSERT_EQ(S.Runs.size(), 3u);
  EXPECT_EQ(S.Runs[1].Seed, 1u);
  // Every steady mean is ~5, so the CI over them brackets 5.
  EXPECT_GT(S.SteadyCI.Lo, 4.5);
  EXPECT_LT(S.SteadyCI.Hi, 5.5);
}

TEST(AnalyzeRuns, ByteDeterministic) {
  std::vector<std::pair<uint64_t, std::vector<double>>> Seeds;
  for (uint64_t I = 0; I < 5; ++I)
    Seeds.push_back(
        {I, blockSeries({{12, 9.0}, {24, 3.0}}, 0.2, 91 + I)});
  StatsSummary A = analyzeRuns(Seeds);
  StatsSummary B = analyzeRuns(Seeds);
  EXPECT_EQ(A.WorstClass, B.WorstClass);
  EXPECT_DOUBLE_EQ(A.SteadyCI.Lo, B.SteadyCI.Lo);
  EXPECT_DOUBLE_EQ(A.SteadyCI.Hi, B.SteadyCI.Hi);
  EXPECT_DOUBLE_EQ(A.SteadyStartMean, B.SteadyStartMean);
  ASSERT_EQ(A.Runs.size(), B.Runs.size());
  for (size_t I = 0; I < A.Runs.size(); ++I) {
    EXPECT_EQ(A.Runs[I].C.Class, B.Runs[I].C.Class);
    EXPECT_EQ(A.Runs[I].C.SteadyStart, B.Runs[I].C.SteadyStart);
    EXPECT_DOUBLE_EQ(A.Runs[I].C.SteadyMean, B.Runs[I].C.SteadyMean);
  }
}
