//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the bytecode substrate: opcode metadata, repo, builder,
/// basic blocks, verifier, disassembler.
///
//===----------------------------------------------------------------------===//

#include "bytecode/BlockCache.h"
#include "bytecode/Disasm.h"
#include "bytecode/FuncBuilder.h"
#include "bytecode/Repo.h"
#include "bytecode/Verifier.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::bc;

namespace {

/// Builds a repo with one function assembled by \p Assemble.
struct RepoFixture {
  Repo R;
  FuncId F;

  template <typename Fn> explicit RepoFixture(Fn Assemble) {
    Unit &U = R.createUnit("test");
    Function &Func = R.createFunction(U, "f");
    FuncBuilder B(Func);
    Assemble(R, Func, B);
    B.finish();
    F = Func.Id;
  }
};

} // namespace

TEST(Opcode, MetadataConsistency) {
  for (unsigned I = 0; I < kNumOpcodes; ++I) {
    Op O = static_cast<Op>(I);
    const OpInfo &Info = opInfo(O);
    EXPECT_NE(Info.Name, nullptr);
    // Variable-pop opcodes must carry a Count immediate.
    if (Info.Pop < 0) {
      EXPECT_TRUE(Info.ImmB == ImmKind::Count)
          << Info.Name << " pops a variable count without a count imm";
    }
  }
  EXPECT_TRUE(opEndsBlock(Op::Jmp));
  EXPECT_TRUE(opEndsBlock(Op::JmpZ));
  EXPECT_TRUE(opEndsBlock(Op::RetC));
  EXPECT_FALSE(opEndsBlock(Op::FCall));
  EXPECT_FALSE(opEndsBlock(Op::Add));
}

TEST(Repo, StringInterning) {
  Repo R;
  StringId A = R.internString("hello");
  StringId B = R.internString("hello");
  StringId C = R.internString("world");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(R.str(A), "hello");
  EXPECT_EQ(R.findString("world"), C);
  EXPECT_FALSE(R.findString("absent").valid());
}

TEST(Repo, MethodResolutionWalksAncestors) {
  Repo R;
  Unit &U = R.createUnit("u");
  Class &Base = R.createClass(U, "Base");
  ClassId BaseId = Base.Id;
  StringId M = R.internString("m");
  Function &F = R.createFunction(U, "Base::m");
  R.clsMutable(BaseId).Methods.emplace(M.raw(), F.Id);
  Class &Child = R.createClass(U, "Child");
  ClassId ChildId = Child.Id;
  R.clsMutable(ChildId).Parent = BaseId;
  EXPECT_EQ(R.resolveMethod(ChildId, M), F.Id);
  EXPECT_FALSE(R.resolveMethod(ChildId, R.internString("nope")).valid());
}

TEST(FuncBuilder, ForwardAndBackwardLabels) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    auto Top = B.newLabel();
    auto End = B.newLabel();
    B.bind(Top);                 // backward target at 0
    B.emit(Op::Int, 1);          // 0
    B.emitJump(Op::JmpZ, End);   // 1 -> 4
    B.emitJump(Op::Jmp, Top);    // 2 -> 0
    B.emit(Op::Nop);             // 3 (unreachable filler)
    B.bind(End);
    B.emit(Op::Null);            // 4
    B.emit(Op::RetC);            // 5
  });
  const Function &F = Fix.R.func(Fix.F);
  EXPECT_EQ(F.Code[1].targetImm(), 4u);
  EXPECT_EQ(F.Code[2].targetImm(), 0u);
}

TEST(Blocks, DiamondStructure) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    auto Else = B.newLabel();
    auto End = B.newLabel();
    B.emit(Op::Int, 1);          // B0
    B.emitJump(Op::JmpZ, Else);  // B0 end
    B.emit(Op::Int, 2);          // B1
    B.emitJump(Op::Jmp, End);    // B1 end
    B.bind(Else);
    B.emit(Op::Int, 3);          // B2
    B.bind(End);
    B.emit(Op::RetC);            // B3
  });
  BlockList BL = BlockList::compute(Fix.R.func(Fix.F));
  ASSERT_EQ(BL.numBlocks(), 4u);
  EXPECT_EQ(BL.block(0).Taken, 2u);
  EXPECT_EQ(BL.block(0).Fallthru, 1u);
  EXPECT_EQ(BL.block(1).Taken, 3u);
  EXPECT_FALSE(BL.block(1).hasFallthru());
  EXPECT_EQ(BL.block(2).Fallthru, 3u);
  EXPECT_FALSE(BL.block(3).hasTaken());
  EXPECT_FALSE(BL.block(3).hasFallthru());
  // Instruction -> block mapping.
  EXPECT_EQ(BL.blockOf(0), 0u);
  EXPECT_EQ(BL.blockOf(2), 1u);
  EXPECT_EQ(BL.blockOf(4), 2u);
  EXPECT_EQ(BL.blockOf(5), 3u);
}

TEST(Blocks, SingleBlockFunction) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    B.emit(Op::Int, 1);
    B.emit(Op::RetC);
  });
  BlockList BL = BlockList::compute(Fix.R.func(Fix.F));
  EXPECT_EQ(BL.numBlocks(), 1u);
  EXPECT_EQ(BL.block(0).size(), 2u);
}

TEST(BlockCacheTest, MemoizesPerFunction) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    B.emit(Op::Null);
    B.emit(Op::RetC);
  });
  BlockCache Cache(Fix.R);
  const BlockList &A = Cache.blocks(Fix.F);
  const BlockList &B2 = Cache.blocks(Fix.F);
  EXPECT_EQ(&A, &B2);
}

TEST(Verifier, AcceptsWellFormed) {
  RepoFixture Fix([](Repo &R, Function &, FuncBuilder &B) {
    B.emit(Op::Str, R.internString("x").raw());
    B.emit(Op::RetC);
  });
  EXPECT_TRUE(verifyFunction(Fix.R, Fix.R.func(Fix.F), 0).empty());
}

TEST(Verifier, RejectsFallOffEnd) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    B.emit(Op::Int, 1);
    B.emit(Op::PopC);
  });
  auto Errors = verifyFunction(Fix.R, Fix.R.func(Fix.F), 0);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("fall off"), std::string::npos);
}

TEST(Verifier, RejectsStackUnderflow) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    B.emit(Op::Add); // nothing on the stack
    B.emit(Op::RetC);
  });
  auto Errors = verifyFunction(Fix.R, Fix.R.func(Fix.F), 0);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("underflow"), std::string::npos);
}

TEST(Verifier, RejectsUncleanReturn) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    B.emit(Op::Int, 1);
    B.emit(Op::Int, 2);
    B.emit(Op::RetC); // leaves one value behind
  });
  auto Errors = verifyFunction(Fix.R, Fix.R.func(Fix.F), 0);
  ASSERT_FALSE(Errors.empty());
}

TEST(Verifier, RejectsBadLocalIndex) {
  RepoFixture Fix([](Repo &, Function &F, FuncBuilder &B) {
    F.NumLocals = 1;
    B.emit(Op::GetL, 5);
    B.emit(Op::RetC);
  });
  auto Errors = verifyFunction(Fix.R, Fix.R.func(Fix.F), 0);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("local"), std::string::npos);
}

TEST(Verifier, RejectsBadStringId) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    B.emit(Op::Str, 999);
    B.emit(Op::RetC);
  });
  auto Errors = verifyFunction(Fix.R, Fix.R.func(Fix.F), 0);
  ASSERT_FALSE(Errors.empty());
}

TEST(Verifier, RejectsInconsistentBlockDepth) {
  RepoFixture Fix([](Repo &, Function &, FuncBuilder &B) {
    auto Join = B.newLabel();
    B.emit(Op::Int, 1);
    B.emitJump(Op::JmpNZ, Join); // to Join with depth 0
    B.emit(Op::Int, 2);          // depth 1 falls into Join
    B.bind(Join);
    B.emit(Op::Int, 3);
    B.emit(Op::PopC);
    B.emit(Op::Null);
    B.emit(Op::RetC);
  });
  auto Errors = verifyFunction(Fix.R, Fix.R.func(Fix.F), 0);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("inconsistent"), std::string::npos);
}

TEST(Verifier, RejectsArityMismatch) {
  Repo R;
  Unit &U = R.createUnit("u");
  Function &Callee = R.createFunction(U, "callee");
  Callee.NumParams = 2;
  Callee.NumLocals = 2;
  {
    FuncBuilder B(Callee);
    B.emit(Op::Null);
    B.emit(Op::RetC);
    B.finish();
  }
  Function &Caller = R.createFunction(U, "caller");
  FuncId CalleeId = R.findFunction("callee");
  {
    FuncBuilder B(R.funcMutable(Caller.Id));
    B.emit(Op::Int, 1);
    B.emit(Op::FCall, CalleeId.raw(), 1); // passes 1, expects 2
    B.emit(Op::RetC);
    B.finish();
  }
  auto Errors = verifyFunction(R, R.func(R.findFunction("caller")), 0);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("expects"), std::string::npos);
}

TEST(Disasm, SymbolicImmediates) {
  Repo R;
  Unit &U = R.createUnit("u");
  Function &F = R.createFunction(U, "main");
  FuncBuilder B(F);
  B.emit(Op::Str, R.internString("greeting").raw());
  B.emit(Op::RetC);
  B.finish();
  std::string Text = disasmFunction(R, R.func(F.Id));
  EXPECT_NE(Text.find("\"greeting\""), std::string::npos);
  EXPECT_NE(Text.find("RetC"), std::string::npos);
  EXPECT_NE(Text.find("B0:"), std::string::npos);
}
