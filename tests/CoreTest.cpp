//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Jump-Start core: package manager, seeder workflow with
/// validation, consumer fallback behaviour, and the phased-deployment
/// simulation.
///
//===----------------------------------------------------------------------===//

#include "core/Consumer.h"
#include "core/Deployment.h"
#include "core/Seeder.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::core;

namespace {

class CoreFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    fleet::WorkloadParams P;
    P.NumHelpers = 120;
    P.NumClasses = 24;
    P.NumEndpoints = 12;
    P.NumUnits = 12;
    W = fleet::generateWorkload(P).release();
    Traffic = new fleet::TrafficModel(*W, fleet::TrafficParams(), 42);
  }
  static void TearDownTestSuite() {
    delete Traffic;
    delete W;
  }

  static vm::ServerConfig baseConfig() {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 20;
    return C;
  }

  static JumpStartOptions lenientOpts() {
    JumpStartOptions O;
    O.Coverage.MinProfiledFuncs = 3;
    O.Coverage.MinTotalSamples = 50;
    O.Coverage.MinPackageBytes = 64;
    O.ValidationRequests = 10;
    return O;
  }

  static SeederOutcome seedInto(PackageManager &Manager, uint64_t Seed = 5,
                                const ChaosHooks *Chaos = nullptr) {
    SeederParams SP;
    SP.Requests = 120;
    SP.Seed = Seed;
    return runSeederWorkflow(*W, *Traffic, baseConfig(), lenientOpts(),
                             Manager, SP, Chaos);
  }

  static fleet::Workload *W;
  static fleet::TrafficModel *Traffic;
};

fleet::Workload *CoreFixture::W = nullptr;
fleet::TrafficModel *CoreFixture::Traffic = nullptr;

} // namespace

//===----------------------------------------------------------------------===//
// PackageManager.
//===----------------------------------------------------------------------===//

TEST(PackageManagerTest, PublishAndPick) {
  PackageManager M;
  Rng R(1);
  PackageHandle Pick;
  support::Status Empty = M.pickRandom(0, 0, R, Pick);
  EXPECT_FALSE(Empty.ok());
  EXPECT_EQ(Empty.code(), support::StatusCode::Unavailable);
  ASSERT_TRUE(M.publish(0, 0, {1, 2, 3}).ok());
  ASSERT_TRUE(M.publish(0, 0, {4, 5, 6}).ok());
  EXPECT_EQ(M.available(0, 0), 2u);
  ASSERT_TRUE(M.pickRandom(0, 0, R, Pick).ok());
  EXPECT_LT(Pick.Manifest.Id.Index, 2u);
  EXPECT_FALSE(M.pickRandom(0, 1, R, Pick).ok())
      << "shelves are per (region, bucket)";
}

TEST(PackageManagerTest, RandomPickCoversAllPackages) {
  PackageManager M;
  for (uint8_t I = 0; I < 4; ++I)
    ASSERT_TRUE(M.publish(1, 1, {I}).ok());
  Rng R(9);
  std::set<uint32_t> Seen;
  for (int I = 0; I < 200; ++I) {
    PackageHandle Pick;
    ASSERT_TRUE(M.pickRandom(1, 1, R, Pick).ok());
    Seen.insert(Pick.Manifest.Id.Index);
  }
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(PackageManagerTest, QuarantineRemovesFromRotation) {
  PackageManager M;
  ASSERT_TRUE(M.publish(0, 0, {1}).ok());
  ASSERT_TRUE(M.publish(0, 0, {2}).ok());
  ASSERT_TRUE(M.quarantine(0, 0, 0).ok());
  EXPECT_EQ(M.available(0, 0), 1u);
  EXPECT_EQ(M.quarantinedCount(), 1u);
  Rng R(3);
  for (int I = 0; I < 50; ++I) {
    PackageHandle Pick;
    ASSERT_TRUE(M.pickRandom(0, 0, R, Pick).ok());
    EXPECT_EQ(Pick.Manifest.Id.Index, 1u);
  }
  // Idempotent.
  ASSERT_TRUE(M.quarantine(0, 0, 0).ok());
  EXPECT_EQ(M.quarantinedCount(), 1u);
}

TEST(PackageManagerTest, QuarantineAndCorruptReportNotFound) {
  PackageManager M;
  Rng R(8);
  EXPECT_EQ(M.quarantine(3, 1, 0).code(), support::StatusCode::NotFound)
      << "unknown shelf";
  EXPECT_EQ(M.corrupt(3, 1, 0, R).code(), support::StatusCode::NotFound);
  ASSERT_TRUE(M.publish(0, 0, {1}).ok());
  EXPECT_EQ(M.quarantine(0, 0, 9).code(), support::StatusCode::NotFound)
      << "unknown package index";
  EXPECT_EQ(M.corrupt(0, 0, 9, R).code(), support::StatusCode::NotFound);
}

TEST(PackageManagerTest, CorruptFlipsBytes) {
  PackageManager M;
  std::vector<uint8_t> Blob(100, 0xAA);
  ASSERT_TRUE(M.publish(0, 0, Blob).ok());
  Rng R(4);
  ASSERT_TRUE(M.corrupt(0, 0, 0, R).ok());
  PackageHandle Pick;
  ASSERT_TRUE(M.pickRandom(0, 0, R, Pick).ok());
  EXPECT_NE(*Pick.Blob, Blob);
}

TEST(PackageManagerTest, ManifestRecordsProvenance) {
  PackageManager M;
  M.beginRelease();
  PackageManifest Out;
  ASSERT_TRUE(M.publish(2, 3, {9, 9, 9}, &Out).ok());
  EXPECT_EQ(Out.Id.Region, 2u);
  EXPECT_EQ(Out.Id.Bucket, 3u);
  EXPECT_EQ(Out.Id.Release, 1u);
  EXPECT_EQ(Out.Id.Index, 0u);
  EXPECT_EQ(Out.Bytes, 3u);
  EXPECT_FALSE(Out.isDelta());
  EXPECT_EQ(Out.RepoFingerprint, 0u) << "opaque blobs carry no fingerprint";

  PackageHandle H;
  ASSERT_TRUE(M.fetch(Out.Id, H).ok());
  EXPECT_EQ(H.Manifest.Checksum, Out.Checksum);
  ASSERT_NE(H.Blob, nullptr);
  EXPECT_EQ(H.Blob->size(), 3u);

  PackageId Missing = Out.Id;
  Missing.Release = 7;
  EXPECT_EQ(M.fetch(Missing, H).code(), support::StatusCode::NotFound)
      << "all four id coordinates must match";
}

//===----------------------------------------------------------------------===//
// Seeder workflow.
//===----------------------------------------------------------------------===//

TEST_F(CoreFixture, SeederPublishesValidPackage) {
  PackageManager Manager;
  SeederOutcome Out = seedInto(Manager);
  ASSERT_TRUE(Out.Published)
      << (Out.Problems.empty() ? "?" : Out.Problems[0]);
  EXPECT_EQ(Manager.available(0, 0), 1u);
  EXPECT_GT(Out.PackageBytes, 500u);
  EXPECT_EQ(Out.Manifest.Seeders.size(), 1u);
  EXPECT_NE(Out.Manifest.RepoFingerprint, 0u);
  // The published blob deserializes back to an equivalent package.
  Rng R(1);
  PackageHandle Pick;
  ASSERT_TRUE(Manager.pickRandom(0, 0, R, Pick).ok());
  profile::ProfilePackage Pkg;
  ASSERT_TRUE(profile::ProfilePackage::deserialize(*Pick.Blob, Pkg));
  EXPECT_EQ(Pkg.numProfiledFuncs(), Out.Package.numProfiledFuncs());
}

TEST_F(CoreFixture, SeederRejectsUnderProfiledRun) {
  PackageManager Manager;
  JumpStartOptions Strict = lenientOpts();
  Strict.Coverage.MinProfiledFuncs = 100000; // impossible
  SeederParams SP;
  SP.Requests = 60;
  SeederOutcome Out = runSeederWorkflow(*W, *Traffic, baseConfig(), Strict,
                                        Manager, SP);
  EXPECT_FALSE(Out.Published);
  ASSERT_FALSE(Out.Problems.empty());
  EXPECT_EQ(Manager.available(0, 0), 0u);
}

TEST_F(CoreFixture, SeederValidationCatchesCrashingPackage) {
  PackageManager Manager;
  ChaosHooks Chaos;
  Chaos.CrashesInValidation = [](const profile::ProfilePackage &) {
    return true;
  };
  SeederOutcome Out = seedInto(Manager, 5, &Chaos);
  EXPECT_FALSE(Out.Published);
  ASSERT_FALSE(Out.Problems.empty());
  EXPECT_NE(Out.Problems[0].find("crash"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Consumer workflow + fallback.
//===----------------------------------------------------------------------===//

TEST_F(CoreFixture, ConsumerUsesPublishedPackage) {
  PackageManager Manager;
  ASSERT_TRUE(seedInto(Manager).Published);
  ConsumerOutcome Out = startConsumer(*W, baseConfig(), lenientOpts(),
                                      Manager, ConsumerParams());
  EXPECT_TRUE(Out.UsedJumpStart);
  EXPECT_EQ(Out.Attempts, 1u);
  ASSERT_NE(Out.Server, nullptr);
  EXPECT_EQ(Out.Server->theJit().phase(), jit::JitPhase::Mature);
}

TEST_F(CoreFixture, ConsumerFallsBackWhenStoreEmpty) {
  PackageManager Manager;
  ConsumerOutcome Out = startConsumer(*W, baseConfig(), lenientOpts(),
                                      Manager, ConsumerParams());
  EXPECT_FALSE(Out.UsedJumpStart);
  ASSERT_NE(Out.Server, nullptr);
  EXPECT_EQ(Out.Server->theJit().phase(), jit::JitPhase::Profiling);
}

TEST_F(CoreFixture, ConsumerSkipsCorruptPackage) {
  PackageManager Manager;
  ASSERT_TRUE(seedInto(Manager, 5).Published);
  ASSERT_TRUE(seedInto(Manager, 6).Published);
  Rng R(2);
  ASSERT_TRUE(Manager.corrupt(0, 0, 0, R).ok());

  // With two packages and one corrupt, consumers eventually succeed; with
  // enough attempts allowed, every boot should end up on the good one.
  JumpStartOptions Opts = lenientOpts();
  Opts.MaxConsumerAttempts = 8;
  int UsedJs = 0;
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    ConsumerParams CP;
    CP.Seed = Seed;
    ConsumerOutcome Out = startConsumer(*W, baseConfig(), Opts, Manager, CP);
    if (Out.UsedJumpStart)
      ++UsedJs;
  }
  EXPECT_EQ(UsedJs, 5);
}

TEST_F(CoreFixture, ConsumerDisabledByMasterSwitch) {
  PackageManager Manager;
  ASSERT_TRUE(seedInto(Manager).Published);
  JumpStartOptions Opts = lenientOpts();
  Opts.Enabled = false;
  ConsumerOutcome Out = startConsumer(*W, baseConfig(), Opts, Manager,
                                      ConsumerParams());
  EXPECT_FALSE(Out.UsedJumpStart);
  EXPECT_EQ(Out.Attempts, 0u);
}

TEST_F(CoreFixture, ConsumerCrashLoopEndsInFallback) {
  PackageManager Manager;
  ASSERT_TRUE(seedInto(Manager).Published);
  ChaosHooks Chaos;
  Chaos.CrashesInProduction = [](const profile::ProfilePackage &) {
    return true; // every package crashes in production
  };
  JumpStartOptions Opts = lenientOpts();
  Opts.MaxConsumerAttempts = 3;
  ConsumerOutcome Out = startConsumer(*W, baseConfig(), Opts, Manager,
                                      ConsumerParams(), &Chaos);
  EXPECT_FALSE(Out.UsedJumpStart);
  EXPECT_EQ(Out.CrashCount, 3u);
  ASSERT_NE(Out.Server, nullptr) << "fallback must still boot the server";
}

TEST_F(CoreFixture, OptimizationSwitchesReachServerConfig) {
  JumpStartOptions Opts;
  Opts.VasmBlockCounters = false;
  Opts.FunctionOrder = false;
  Opts.PropertyReordering = false;
  vm::ServerConfig Config = baseConfig();
  applyOptimizationOptions(Config, Opts);
  EXPECT_FALSE(Config.Jit.UseVasmCounters);
  EXPECT_FALSE(Config.Jit.UsePackageFuncOrder);
  EXPECT_FALSE(Config.ReorderProperties);
}

//===----------------------------------------------------------------------===//
// Phased deployment.
//===----------------------------------------------------------------------===//

TEST_F(CoreFixture, DeploymentRunsAllPhases) {
  PackageManager Manager;
  DeploymentParams P;
  P.Regions = 1;
  P.Buckets = 2;
  P.SeedersPerPair = 1;
  P.SeederRequests = 120;
  P.ConsumerSamplesPerPair = 1;
  DeploymentReport Report = simulateDeployment(
      *W, *Traffic, baseConfig(), lenientOpts(), Manager, P);
  EXPECT_TRUE(Report.CanaryHealthy);
  EXPECT_EQ(Report.SeedersRun, 2u);
  EXPECT_EQ(Report.PackagesPublished, 2u)
      << (Report.Log.empty() ? "" : Report.Log.back());
  EXPECT_EQ(Report.ConsumersBooted, 2u);
  EXPECT_EQ(Report.ConsumersUsedJumpStart, 2u);
  EXPECT_GT(Report.MeanConsumerInitSeconds, 0.0);
}

TEST_F(CoreFixture, NewCodeVersionInvalidatesOldPackages) {
  // Continuous deployment: packages are tied to the code version that
  // produced them.  After a push changes the site, consumers on the new
  // version must reject the stale packages and fall back.
  PackageManager Manager;
  ASSERT_TRUE(seedInto(Manager).Published);

  fleet::WorkloadParams P;
  P.NumHelpers = 121; // "new release": one helper added
  P.NumClasses = 24;
  P.NumEndpoints = 12;
  P.NumUnits = 12;
  auto NewSite = fleet::generateWorkload(P);

  ConsumerOutcome Out = startConsumer(*NewSite, baseConfig(),
                                      lenientOpts(), Manager,
                                      ConsumerParams());
  EXPECT_FALSE(Out.UsedJumpStart)
      << "a stale package must never jump-start a new code version";
  ASSERT_NE(Out.Server, nullptr);
  // The log records the fingerprint rejections.
  bool SawRejection = false;
  for (const std::string &Line : Out.Log)
    if (Line.find("fingerprint") != std::string::npos)
      SawRejection = true;
  EXPECT_TRUE(SawRejection);
}
