//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Jump-Start core: package store, seeder workflow with
/// validation, consumer fallback behaviour, and the phased-deployment
/// simulation.
///
//===----------------------------------------------------------------------===//

#include "core/Consumer.h"
#include "core/Deployment.h"
#include "core/Seeder.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::core;

namespace {

class CoreFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    fleet::WorkloadParams P;
    P.NumHelpers = 120;
    P.NumClasses = 24;
    P.NumEndpoints = 12;
    P.NumUnits = 12;
    W = fleet::generateWorkload(P).release();
    Traffic = new fleet::TrafficModel(*W, fleet::TrafficParams(), 42);
  }
  static void TearDownTestSuite() {
    delete Traffic;
    delete W;
  }

  static vm::ServerConfig baseConfig() {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 20;
    return C;
  }

  static JumpStartOptions lenientOpts() {
    JumpStartOptions O;
    O.Coverage.MinProfiledFuncs = 3;
    O.Coverage.MinTotalSamples = 50;
    O.Coverage.MinPackageBytes = 64;
    O.ValidationRequests = 10;
    return O;
  }

  static SeederOutcome seedInto(PackageStore &Store, uint64_t Seed = 5,
                                const ChaosHooks *Chaos = nullptr) {
    SeederParams SP;
    SP.Requests = 120;
    SP.Seed = Seed;
    return runSeederWorkflow(*W, *Traffic, baseConfig(), lenientOpts(),
                             Store, SP, Chaos);
  }

  static fleet::Workload *W;
  static fleet::TrafficModel *Traffic;
};

fleet::Workload *CoreFixture::W = nullptr;
fleet::TrafficModel *CoreFixture::Traffic = nullptr;

} // namespace

//===----------------------------------------------------------------------===//
// PackageStore.
//===----------------------------------------------------------------------===//

TEST(PackageStoreTest, PublishAndPick) {
  PackageStore S;
  Rng R(1);
  PackageStore::Selection Pick;
  support::Status Empty = S.pickRandom(0, 0, R, Pick);
  EXPECT_FALSE(Empty.ok());
  EXPECT_EQ(Empty.code(), support::StatusCode::Unavailable);
  S.publish(0, 0, {1, 2, 3});
  S.publish(0, 0, {4, 5, 6});
  EXPECT_EQ(S.available(0, 0), 2u);
  ASSERT_TRUE(S.pickRandom(0, 0, R, Pick).ok());
  EXPECT_LT(Pick.Index, 2u);
  EXPECT_FALSE(S.pickRandom(0, 1, R, Pick).ok())
      << "shelves are per (region, bucket)";
}

TEST(PackageStoreTest, RandomPickCoversAllPackages) {
  PackageStore S;
  for (uint8_t I = 0; I < 4; ++I)
    S.publish(1, 1, {I});
  Rng R(9);
  std::set<uint32_t> Seen;
  for (int I = 0; I < 200; ++I) {
    PackageStore::Selection Pick;
    ASSERT_TRUE(S.pickRandom(1, 1, R, Pick).ok());
    Seen.insert(Pick.Index);
  }
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(PackageStoreTest, QuarantineRemovesFromRotation) {
  PackageStore S;
  S.publish(0, 0, {1});
  S.publish(0, 0, {2});
  ASSERT_TRUE(S.quarantine(0, 0, 0).ok());
  EXPECT_EQ(S.available(0, 0), 1u);
  EXPECT_EQ(S.quarantinedCount(), 1u);
  Rng R(3);
  for (int I = 0; I < 50; ++I) {
    PackageStore::Selection Pick;
    ASSERT_TRUE(S.pickRandom(0, 0, R, Pick).ok());
    EXPECT_EQ(Pick.Index, 1u);
  }
  // Idempotent.
  ASSERT_TRUE(S.quarantine(0, 0, 0).ok());
  EXPECT_EQ(S.quarantinedCount(), 1u);
}

TEST(PackageStoreTest, QuarantineAndCorruptReportNotFound) {
  PackageStore S;
  Rng R(8);
  EXPECT_EQ(S.quarantine(3, 1, 0).code(), support::StatusCode::NotFound)
      << "unknown shelf";
  EXPECT_EQ(S.corrupt(3, 1, 0, R).code(), support::StatusCode::NotFound);
  S.publish(0, 0, {1});
  EXPECT_EQ(S.quarantine(0, 0, 9).code(), support::StatusCode::NotFound)
      << "unknown package index";
  EXPECT_EQ(S.corrupt(0, 0, 9, R).code(), support::StatusCode::NotFound);
}

TEST(PackageStoreTest, CorruptFlipsBytes) {
  PackageStore S;
  std::vector<uint8_t> Blob(100, 0xAA);
  S.publish(0, 0, Blob);
  Rng R(4);
  ASSERT_TRUE(S.corrupt(0, 0, 0, R).ok());
  PackageStore::Selection Pick;
  ASSERT_TRUE(S.pickRandom(0, 0, R, Pick).ok());
  EXPECT_NE(*Pick.Blob, Blob);
}

//===----------------------------------------------------------------------===//
// Seeder workflow.
//===----------------------------------------------------------------------===//

TEST_F(CoreFixture, SeederPublishesValidPackage) {
  PackageStore Store;
  SeederOutcome Out = seedInto(Store);
  ASSERT_TRUE(Out.Published)
      << (Out.Problems.empty() ? "?" : Out.Problems[0]);
  EXPECT_EQ(Store.available(0, 0), 1u);
  EXPECT_GT(Out.PackageBytes, 500u);
  // The published blob deserializes back to an equivalent package.
  Rng R(1);
  PackageStore::Selection Pick;
  ASSERT_TRUE(Store.pickRandom(0, 0, R, Pick).ok());
  profile::ProfilePackage Pkg;
  ASSERT_TRUE(profile::ProfilePackage::deserialize(*Pick.Blob, Pkg));
  EXPECT_EQ(Pkg.numProfiledFuncs(), Out.Package.numProfiledFuncs());
}

TEST_F(CoreFixture, SeederRejectsUnderProfiledRun) {
  PackageStore Store;
  JumpStartOptions Strict = lenientOpts();
  Strict.Coverage.MinProfiledFuncs = 100000; // impossible
  SeederParams SP;
  SP.Requests = 60;
  SeederOutcome Out = runSeederWorkflow(*W, *Traffic, baseConfig(), Strict,
                                        Store, SP);
  EXPECT_FALSE(Out.Published);
  ASSERT_FALSE(Out.Problems.empty());
  EXPECT_EQ(Store.available(0, 0), 0u);
}

TEST_F(CoreFixture, SeederValidationCatchesCrashingPackage) {
  PackageStore Store;
  ChaosHooks Chaos;
  Chaos.CrashesInValidation = [](const profile::ProfilePackage &) {
    return true;
  };
  SeederOutcome Out = seedInto(Store, 5, &Chaos);
  EXPECT_FALSE(Out.Published);
  ASSERT_FALSE(Out.Problems.empty());
  EXPECT_NE(Out.Problems[0].find("crash"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Consumer workflow + fallback.
//===----------------------------------------------------------------------===//

TEST_F(CoreFixture, ConsumerUsesPublishedPackage) {
  PackageStore Store;
  ASSERT_TRUE(seedInto(Store).Published);
  ConsumerOutcome Out = startConsumer(*W, baseConfig(), lenientOpts(),
                                      Store, ConsumerParams());
  EXPECT_TRUE(Out.UsedJumpStart);
  EXPECT_EQ(Out.Attempts, 1u);
  ASSERT_NE(Out.Server, nullptr);
  EXPECT_EQ(Out.Server->theJit().phase(), jit::JitPhase::Mature);
}

TEST_F(CoreFixture, ConsumerFallsBackWhenStoreEmpty) {
  PackageStore Store;
  ConsumerOutcome Out = startConsumer(*W, baseConfig(), lenientOpts(),
                                      Store, ConsumerParams());
  EXPECT_FALSE(Out.UsedJumpStart);
  ASSERT_NE(Out.Server, nullptr);
  EXPECT_EQ(Out.Server->theJit().phase(), jit::JitPhase::Profiling);
}

TEST_F(CoreFixture, ConsumerSkipsCorruptPackage) {
  PackageStore Store;
  ASSERT_TRUE(seedInto(Store, 5).Published);
  ASSERT_TRUE(seedInto(Store, 6).Published);
  Rng R(2);
  ASSERT_TRUE(Store.corrupt(0, 0, 0, R).ok());

  // With two packages and one corrupt, consumers eventually succeed; with
  // enough attempts allowed, every boot should end up on the good one.
  JumpStartOptions Opts = lenientOpts();
  Opts.MaxConsumerAttempts = 8;
  int UsedJs = 0;
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    ConsumerParams CP;
    CP.Seed = Seed;
    ConsumerOutcome Out = startConsumer(*W, baseConfig(), Opts, Store, CP);
    if (Out.UsedJumpStart)
      ++UsedJs;
  }
  EXPECT_EQ(UsedJs, 5);
}

TEST_F(CoreFixture, ConsumerDisabledByMasterSwitch) {
  PackageStore Store;
  ASSERT_TRUE(seedInto(Store).Published);
  JumpStartOptions Opts = lenientOpts();
  Opts.Enabled = false;
  ConsumerOutcome Out = startConsumer(*W, baseConfig(), Opts, Store,
                                      ConsumerParams());
  EXPECT_FALSE(Out.UsedJumpStart);
  EXPECT_EQ(Out.Attempts, 0u);
}

TEST_F(CoreFixture, ConsumerCrashLoopEndsInFallback) {
  PackageStore Store;
  ASSERT_TRUE(seedInto(Store).Published);
  ChaosHooks Chaos;
  Chaos.CrashesInProduction = [](const profile::ProfilePackage &) {
    return true; // every package crashes in production
  };
  JumpStartOptions Opts = lenientOpts();
  Opts.MaxConsumerAttempts = 3;
  ConsumerOutcome Out = startConsumer(*W, baseConfig(), Opts, Store,
                                      ConsumerParams(), &Chaos);
  EXPECT_FALSE(Out.UsedJumpStart);
  EXPECT_EQ(Out.CrashCount, 3u);
  ASSERT_NE(Out.Server, nullptr) << "fallback must still boot the server";
}

TEST_F(CoreFixture, OptimizationSwitchesReachServerConfig) {
  JumpStartOptions Opts;
  Opts.VasmBlockCounters = false;
  Opts.FunctionOrder = false;
  Opts.PropertyReordering = false;
  vm::ServerConfig Config = baseConfig();
  applyOptimizationOptions(Config, Opts);
  EXPECT_FALSE(Config.Jit.UseVasmCounters);
  EXPECT_FALSE(Config.Jit.UsePackageFuncOrder);
  EXPECT_FALSE(Config.ReorderProperties);
}

//===----------------------------------------------------------------------===//
// Phased deployment.
//===----------------------------------------------------------------------===//

TEST_F(CoreFixture, DeploymentRunsAllPhases) {
  PackageStore Store;
  DeploymentParams P;
  P.Regions = 1;
  P.Buckets = 2;
  P.SeedersPerPair = 1;
  P.SeederRequests = 120;
  P.ConsumerSamplesPerPair = 1;
  DeploymentReport Report = simulateDeployment(
      *W, *Traffic, baseConfig(), lenientOpts(), Store, P);
  EXPECT_TRUE(Report.CanaryHealthy);
  EXPECT_EQ(Report.SeedersRun, 2u);
  EXPECT_EQ(Report.PackagesPublished, 2u)
      << (Report.Log.empty() ? "" : Report.Log.back());
  EXPECT_EQ(Report.ConsumersBooted, 2u);
  EXPECT_EQ(Report.ConsumersUsedJumpStart, 2u);
  EXPECT_GT(Report.MeanConsumerInitSeconds, 0.0);
}

TEST_F(CoreFixture, NewCodeVersionInvalidatesOldPackages) {
  // Continuous deployment: packages are tied to the code version that
  // produced them.  After a push changes the site, consumers on the new
  // version must reject the stale packages and fall back.
  PackageStore Store;
  ASSERT_TRUE(seedInto(Store).Published);

  fleet::WorkloadParams P;
  P.NumHelpers = 121; // "new release": one helper added
  P.NumClasses = 24;
  P.NumEndpoints = 12;
  P.NumUnits = 12;
  auto NewSite = fleet::generateWorkload(P);

  ConsumerOutcome Out = startConsumer(*NewSite, baseConfig(),
                                      lenientOpts(), Store,
                                      ConsumerParams());
  EXPECT_FALSE(Out.UsedJumpStart)
      << "a stale package must never jump-start a new code version";
  ASSERT_NE(Out.Server, nullptr);
  // The log records the fingerprint rejections.
  bool SawRejection = false;
  for (const std::string &Line : Out.Log)
    if (Line.find("fingerprint") != std::string::npos)
      SawRejection = true;
  EXPECT_TRUE(SawRejection);
}
