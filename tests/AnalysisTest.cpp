//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the static-analysis subsystem: the abstract-value lattice,
/// the dataflow passes over hand-assembled defect fixtures, the JIT
/// region/translation cross-checks, the deep package lint, and a
/// zero-false-positive sweep over a whole generated workload.
///
//===----------------------------------------------------------------------===//

#include "analysis/AbstractType.h"
#include "analysis/Linter.h"
#include "analysis/WholeProgram.h"
#include "bytecode/FuncBuilder.h"
#include "core/Consumer.h"
#include "core/Seeder.h"
#include "jit/TransDb.h"
#include "fleet/Traffic.h"
#include "fleet/WorkloadGen.h"
#include "runtime/Builtins.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::analysis;
using bc::FuncBuilder;
using bc::Op;
using runtime::Type;

namespace {

uint32_t numBuiltins() {
  return static_cast<uint32_t>(runtime::BuiltinTable::standard().size());
}

/// A repo with one class K (property "p", method "m") and one function
/// assembled by the test.
struct AnalysisFixture {
  bc::Repo R;
  bc::ClassId K;
  bc::StringId PropP;
  bc::StringId NameM;
  bc::FuncId MethodM;
  bc::FuncId F;

  template <typename Fn>
  explicit AnalysisFixture(Fn Assemble, uint32_t NumParams = 0,
                           uint32_t NumLocals = 0) {
    bc::Unit &U = R.createUnit("test");

    bc::Class &Cls = R.createClass(U, "K");
    K = Cls.Id;
    PropP = R.internString("p");
    NameM = R.internString("m");
    R.clsMutable(K).DeclProps.push_back(PropP);
    bc::Function &M = R.createFunction(U, "K::m");
    M.Cls = K;
    M.NumParams = 0;
    M.Code = {bc::Instr(Op::Null), bc::Instr(Op::RetC)};
    MethodM = M.Id;
    R.clsMutable(K).Methods.emplace(NameM.raw(), MethodM);

    bc::Function &Func = R.createFunction(U, "f");
    Func.NumParams = NumParams;
    Func.NumLocals = NumLocals;
    FuncBuilder B(Func);
    Assemble(R, Func, B);
    B.finish();
    F = Func.Id;
  }

  std::vector<Diagnostic> lint() {
    Linter L(R, numBuiltins());
    return L.lintFunction(F);
  }
};

size_t countKind(const std::vector<Diagnostic> &Diags, DiagKind Kind) {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Kind == Kind;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// The AbstractValue lattice.
//===----------------------------------------------------------------------===//

TEST(AbstractValue, BottomAndTop) {
  AbstractValue B;
  EXPECT_TRUE(B.isBottom());
  EXPECT_FALSE(B.mayBe(Type::Int));
  EXPECT_FALSE(B.subsetOf(AbstractValue::kAllBits));
  EXPECT_TRUE(AbstractValue::top().isTop());
  EXPECT_TRUE(AbstractValue::top().mayBe(Type::Obj));
}

TEST(AbstractValue, JoinIsLub) {
  AbstractValue V = AbstractValue::ofType(Type::Int);
  EXPECT_FALSE(V.join(AbstractValue::ofType(Type::Int))) << "join is idempotent";
  EXPECT_TRUE(V.join(AbstractValue::ofType(Type::Str)));
  EXPECT_TRUE(V.mayBe(Type::Int));
  EXPECT_TRUE(V.mayBe(Type::Str));
  EXPECT_FALSE(V.mayBe(Type::Null));
  EXPECT_FALSE(V.definitely(Type::Int));
  EXPECT_EQ(V.str(), "{int|string}");

  // Joining with bottom changes nothing; joining bottom with V copies V.
  AbstractValue Copy = V;
  EXPECT_FALSE(V.join(AbstractValue::bottom()));
  AbstractValue B;
  EXPECT_TRUE(B.join(Copy));
  EXPECT_EQ(B, Copy);
}

TEST(AbstractValue, JoinCollapsesRefinements) {
  AbstractValue K0 = AbstractValue::obj(bc::ClassId(0));
  AbstractValue K1 = AbstractValue::obj(bc::ClassId(1));
  EXPECT_EQ(K0.exactClass().raw(), 0u);
  AbstractValue Same = K0;
  EXPECT_FALSE(Same.join(K0));
  EXPECT_TRUE(Same.exactClass().valid()) << "same class survives the join";
  EXPECT_TRUE(K0.join(K1));
  EXPECT_FALSE(K0.exactClass().valid()) << "disagreeing classes collapse";
  EXPECT_TRUE(K0.definitely(Type::Obj)) << "the type mask is unaffected";

  AbstractValue T = AbstractValue::boolConst(true);
  EXPECT_EQ(T.truthiness(), Tribool::True);
  EXPECT_TRUE(T.join(AbstractValue::boolConst(false)));
  EXPECT_EQ(T.truthiness(), Tribool::Unknown);
  EXPECT_TRUE(T.definitely(Type::Bool));
}

TEST(AbstractValue, Truthiness) {
  EXPECT_EQ(AbstractValue::ofType(Type::Null).truthiness(), Tribool::False);
  EXPECT_EQ(AbstractValue::obj(bc::ClassId(3)).truthiness(), Tribool::True);
  EXPECT_EQ(AbstractValue::boolConst(false).truthiness(), Tribool::False);
  EXPECT_EQ(AbstractValue::ofType(Type::Int).truthiness(), Tribool::Unknown);
  EXPECT_EQ(AbstractValue::top().truthiness(), Tribool::Unknown);
}

TEST(AbstractValue, WideningJumpsToTop) {
  AbstractValue Old = AbstractValue::ofType(Type::Int);
  // No growth: widening is a no-op (modulo refinements).
  EXPECT_EQ(AbstractValue::widen(Old, Old), Old);
  // Any growth jumps straight to Top.
  AbstractValue Grown = AbstractValue::widen(Old, AbstractValue::ofType(Type::Str));
  EXPECT_TRUE(Grown.isTop());
  // Widening from bottom adopts the new value.
  EXPECT_EQ(AbstractValue::widen(AbstractValue::bottom(), Old), Old);
}

//===----------------------------------------------------------------------===//
// Defect fixtures: each seeded defect must be caught, with the right kind.
//===----------------------------------------------------------------------===//

TEST(TypeFlow, UnreachableBlockBehindConstantBranch) {
  AnalysisFixture Fix([](bc::Repo &, bc::Function &, FuncBuilder &B) {
    auto End = B.newLabel();
    B.emit(Op::True);           // 0
    B.emitJump(Op::JmpNZ, End); // 1: always taken
    B.emit(Op::Int, 42);        // 2: dead, and not compiler plumbing
    B.emit(Op::PopC);           // 3
    B.bind(End);
    B.emit(Op::Null);           // 4
    B.emit(Op::RetC);           // 5
  });
  std::vector<Diagnostic> Diags = Fix.lint();
  EXPECT_TRUE(hasKind(Diags, DiagKind::UnreachableBlock));
  EXPECT_TRUE(hasKind(Diags, DiagKind::DeadGuard));
  EXPECT_EQ(countErrors(Diags), 0u) << "dead code is legal, so warnings only";
}

TEST(TypeFlow, DeadGuardOnConstantCondition) {
  AnalysisFixture Fix([](bc::Repo &, bc::Function &, FuncBuilder &B) {
    auto End = B.newLabel();
    B.emit(Op::True);          // 0
    B.emitJump(Op::JmpZ, End); // 1: never taken
    B.emit(Op::Int, 1);        // 2
    B.emit(Op::PopC);          // 3
    B.bind(End);
    B.emit(Op::Null);          // 4
    B.emit(Op::RetC);          // 5
  });
  std::vector<Diagnostic> Diags = Fix.lint();
  ASSERT_TRUE(hasKind(Diags, DiagKind::DeadGuard));
  for (const Diagnostic &D : Diags) {
    if (D.Kind == DiagKind::DeadGuard) {
      EXPECT_EQ(D.Instr, 1u);
    }
  }
}

TEST(TypeFlow, UseBeforeAssign) {
  AnalysisFixture Fix(
      [](bc::Repo &, bc::Function &, FuncBuilder &B) {
        B.emit(Op::GetL, 0); // 0: local 0 is never assigned
        B.emit(Op::RetC);    // 1
      },
      /*NumParams=*/0, /*NumLocals=*/1);
  std::vector<Diagnostic> Diags = Fix.lint();
  ASSERT_TRUE(hasKind(Diags, DiagKind::UseBeforeAssign));
  EXPECT_EQ(countErrors(Diags), 0u) << "reading null is legal -> warning";
}

TEST(TypeFlow, ParamsAreNotUseBeforeAssign) {
  AnalysisFixture Fix(
      [](bc::Repo &, bc::Function &, FuncBuilder &B) {
        B.emit(Op::GetL, 0); // parameter: assigned by the caller
        B.emit(Op::RetC);
      },
      /*NumParams=*/1, /*NumLocals=*/1);
  EXPECT_TRUE(Fix.lint().empty());
}

TEST(TypeFlow, SameBlockDeadStore) {
  AnalysisFixture Fix(
      [](bc::Repo &, bc::Function &, FuncBuilder &B) {
        B.emit(Op::Int, 1);  // 0
        B.emit(Op::SetL, 0); // 1: dead -- overwritten at 3, never read
        B.emit(Op::Int, 2);  // 2
        B.emit(Op::SetL, 0); // 3
        B.emit(Op::GetL, 0); // 4
        B.emit(Op::RetC);    // 5
      },
      /*NumParams=*/0, /*NumLocals=*/1);
  std::vector<Diagnostic> Diags = Fix.lint();
  ASSERT_EQ(countKind(Diags, DiagKind::DeadStore), 1u);
  for (const Diagnostic &D : Diags) {
    if (D.Kind == DiagKind::DeadStore) {
      EXPECT_EQ(D.Instr, 1u) << "the dead store is the *earlier* SetL";
    }
  }
}

TEST(TypeFlow, StoreReadBeforeOverwriteIsNotDead) {
  AnalysisFixture Fix(
      [](bc::Repo &, bc::Function &, FuncBuilder &B) {
        B.emit(Op::Int, 1);  // 0
        B.emit(Op::SetL, 0); // 1
        B.emit(Op::GetL, 0); // 2: reads it
        B.emit(Op::PopC);    // 3
        B.emit(Op::Int, 2);  // 4
        B.emit(Op::SetL, 0); // 5
        B.emit(Op::GetL, 0); // 6
        B.emit(Op::RetC);    // 7
      },
      /*NumParams=*/0, /*NumLocals=*/1);
  EXPECT_FALSE(hasKind(Fix.lint(), DiagKind::DeadStore));
}

TEST(TypeFlow, GuaranteedArithTypeError) {
  AnalysisFixture Fix([](bc::Repo &R, bc::Function &, FuncBuilder &B) {
    B.emit(Op::Str, R.internString("s").raw()); // 0
    B.emit(Op::Int, 1);                         // 1
    B.emit(Op::Add);                            // 2: str + int always faults
    B.emit(Op::RetC);                           // 3
  });
  std::vector<Diagnostic> Diags = Fix.lint();
  ASSERT_TRUE(hasKind(Diags, DiagKind::TypeError));
  EXPECT_GT(countErrors(Diags), 0u);
}

TEST(TypeFlow, IntArithIsClean) {
  AnalysisFixture Fix([](bc::Repo &, bc::Function &, FuncBuilder &B) {
    B.emit(Op::Int, 2);
    B.emit(Op::Int, 3);
    B.emit(Op::Add);
    B.emit(Op::RetC);
  });
  EXPECT_TRUE(Fix.lint().empty());
}

TEST(TypeFlow, GetPropOnNonObject) {
  AnalysisFixture Fix([](bc::Repo &R, bc::Function &, FuncBuilder &B) {
    B.emit(Op::Int, 3);                           // 0
    B.emit(Op::GetProp, R.internString("p").raw()); // 1: receiver is int
    B.emit(Op::RetC);                             // 2
  });
  EXPECT_TRUE(hasKind(Fix.lint(), DiagKind::TypeError));
}

TEST(TypeFlow, MissingMethodOnExactClass) {
  AnalysisFixture Fix([](bc::Repo &R, bc::Function &Func, FuncBuilder &B) {
    (void)Func;
    B.emit(Op::NewObj, R.findClass("K").raw());                // 0
    B.emit(Op::FCallObj, R.internString("nope").raw(), 0);     // 1
    B.emit(Op::RetC);                                          // 2
  });
  EXPECT_TRUE(hasKind(Fix.lint(), DiagKind::TypeError));
}

TEST(TypeFlow, MissingPropertyOnExactClass) {
  AnalysisFixture Fix([](bc::Repo &R, bc::Function &, FuncBuilder &B) {
    B.emit(Op::NewObj, R.findClass("K").raw());                 // 0
    B.emit(Op::GetProp, R.internString("absent").raw());        // 1
    B.emit(Op::RetC);                                           // 2
  });
  EXPECT_TRUE(hasKind(Fix.lint(), DiagKind::TypeError));
}

TEST(TypeFlow, CleanDiamondJoin) {
  // A value that is int on one path and str on the other; using it in
  // arithmetic afterwards *may* fault but is not guaranteed to -> clean.
  AnalysisFixture Fix(
      [](bc::Repo &R, bc::Function &, FuncBuilder &B) {
        auto Else = B.newLabel();
        auto End = B.newLabel();
        B.emit(Op::GetL, 0);                         // 0
        B.emitJump(Op::JmpZ, Else);                  // 1
        B.emit(Op::Int, 1);                          // 2
        B.emit(Op::SetL, 1);                         // 3
        B.emitJump(Op::Jmp, End);                    // 4
        B.bind(Else);
        B.emit(Op::Str, R.internString("x").raw());  // 5
        B.emit(Op::SetL, 1);                         // 6
        B.bind(End);
        B.emit(Op::GetL, 1);                         // 7
        B.emit(Op::Int, 1);                          // 8
        B.emit(Op::Add);                             // 9
        B.emit(Op::RetC);                            // 10
      },
      /*NumParams=*/1, /*NumLocals=*/2);
  EXPECT_TRUE(Fix.lint().empty());
}

TEST(Linter, PassZeroCatchesStructuralBreakage) {
  // Falls off the end of the function: a structural error, reported as
  // DiagKind::Structural, and the dataflow passes must not run (their
  // preconditions do not hold).
  AnalysisFixture Fix([](bc::Repo &, bc::Function &, FuncBuilder &B) {
    B.emit(Op::Int, 1);
    B.emit(Op::PopC);
  });
  std::vector<Diagnostic> Diags = Fix.lint();
  ASSERT_FALSE(Diags.empty());
  for (const Diagnostic &D : Diags) {
    EXPECT_EQ(D.Kind, DiagKind::Structural);
    EXPECT_EQ(D.Sev, Severity::Error);
  }
}

//===----------------------------------------------------------------------===//
// Region cross-validation.
//===----------------------------------------------------------------------===//

namespace {

/// Receiver in local 0 (a parameter), two devirtualized FCallObj sites on
/// it: the second guard is implied by the first.
AnalysisFixture twoGuardFixture() {
  return AnalysisFixture(
      [](bc::Repo &R, bc::Function &, FuncBuilder &B) {
        int64_t M = R.internString("m").raw();
        B.emit(Op::GetL, 0);       // 0
        B.emit(Op::FCallObj, M, 0); // 1: first guard
        B.emit(Op::PopC);          // 2
        B.emit(Op::GetL, 0);       // 3
        B.emit(Op::FCallObj, M, 0); // 4: implied by the guard at 1
        B.emit(Op::RetC);          // 5
      },
      /*NumParams=*/1, /*NumLocals=*/1);
}

} // namespace

TEST(RegionCheck, RedundantGuardViaDominatingGuard) {
  AnalysisFixture Fix = twoGuardFixture();
  jit::RegionDescriptor Region;
  Region.Func = Fix.F;
  Region.DevirtualizedCalls[jit::RegionDescriptor::siteKey(Fix.F, 1)] =
      Fix.MethodM;
  Region.DevirtualizedCalls[jit::RegionDescriptor::siteKey(Fix.F, 4)] =
      Fix.MethodM;

  Linter L(Fix.R, numBuiltins());
  std::vector<Diagnostic> Diags = L.lintRegion(Region);
  ASSERT_EQ(countKind(Diags, DiagKind::RedundantGuard), 1u);
  for (const Diagnostic &D : Diags) {
    if (D.Kind == DiagKind::RedundantGuard) {
      EXPECT_EQ(D.Instr, 4u) << "the *second* guard is the redundant one";
    }
  }
  EXPECT_FALSE(hasKind(Diags, DiagKind::GuardNeverPasses));
  EXPECT_EQ(countErrors(Diags), 0u);
}

TEST(RegionCheck, RedundantGuardViaStaticReceiverType) {
  AnalysisFixture Fix(
      [](bc::Repo &R, bc::Function &, FuncBuilder &B) {
        B.emit(Op::NewObj, R.findClass("K").raw());        // 0
        B.emit(Op::SetL, 0);                               // 1
        B.emit(Op::GetL, 0);                               // 2
        B.emit(Op::FCallObj, R.internString("m").raw(), 0); // 3
        B.emit(Op::RetC);                                  // 4
      },
      /*NumParams=*/0, /*NumLocals=*/1);
  jit::RegionDescriptor Region;
  Region.Func = Fix.F;
  Region.DevirtualizedCalls[jit::RegionDescriptor::siteKey(Fix.F, 3)] =
      Fix.MethodM;

  Linter L(Fix.R, numBuiltins());
  std::vector<Diagnostic> Diags = L.lintRegion(Region);
  ASSERT_TRUE(hasKind(Diags, DiagKind::RedundantGuard));
  EXPECT_EQ(countErrors(Diags), 0u);
}

TEST(RegionCheck, GuardOnNonObjectNeverPasses) {
  AnalysisFixture Fix(
      [](bc::Repo &R, bc::Function &, FuncBuilder &B) {
        B.emit(Op::Int, 7);                                // 0
        B.emit(Op::SetL, 0);                               // 1
        B.emit(Op::GetL, 0);                               // 2
        B.emit(Op::FCallObj, R.internString("m").raw(), 0); // 3
        B.emit(Op::RetC);                                  // 4
      },
      /*NumParams=*/0, /*NumLocals=*/1);
  jit::RegionDescriptor Region;
  Region.Func = Fix.F;
  Region.DevirtualizedCalls[jit::RegionDescriptor::siteKey(Fix.F, 3)] =
      Fix.MethodM;

  Linter L(Fix.R, numBuiltins());
  std::vector<Diagnostic> Diags = L.lintRegion(Region);
  ASSERT_TRUE(hasKind(Diags, DiagKind::GuardNeverPasses));
  EXPECT_GT(countErrors(Diags), 0u);
}

TEST(RegionCheck, StructurallyBadSites) {
  AnalysisFixture Fix([](bc::Repo &, bc::Function &, FuncBuilder &B) {
    B.emit(Op::Nop);  // 0
    B.emit(Op::Null); // 1
    B.emit(Op::RetC); // 2
  });
  jit::RegionDescriptor Region;
  Region.Func = Fix.F;
  // Site 0 is a Nop, not a call; and a site in a function that does not
  // exist.
  Region.DevirtualizedCalls[jit::RegionDescriptor::siteKey(Fix.F, 0)] =
      Fix.MethodM;
  Region.InlinedCalls[jit::RegionDescriptor::siteKey(bc::FuncId(999), 0)] =
      Fix.MethodM;

  Linter L(Fix.R, numBuiltins());
  std::vector<Diagnostic> Diags = L.lintRegion(Region);
  EXPECT_GE(countKind(Diags, DiagKind::RegionInconsistent), 2u);
}

TEST(RegionCheck, RealTranslationsAreConsistent) {
  // Boot a real server over a generated workload, let the JIT go through
  // profile -> optimize, then cross-check every translation it made.
  fleet::WorkloadParams P;
  P.NumHelpers = 80;
  P.NumClasses = 16;
  P.NumEndpoints = 8;
  P.NumUnits = 8;
  auto W = fleet::generateWorkload(P);

  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 15;
  vm::Server Server(W->Repo, Config, /*Seed=*/7);
  Server.startup();
  Rng R(11);
  for (uint32_t I = 0; I < 60; ++I) {
    uint32_t E = R.nextBelow(static_cast<uint32_t>(W->Endpoints.size()));
    Server.executeRequest(W->Endpoints[E], fleet::TrafficModel::makeArgs(R));
    Server.grantJitTime(0.5);
  }
  while (Server.theJit().hasPendingWork())
    Server.grantJitTime(1.0);
  ASSERT_GT(Server.theJit().transDb().all().size(), 0u);

  Linter L(W->Repo, numBuiltins());
  std::vector<Diagnostic> Diags =
      L.lintTranslations(Server.theJit().transDb());
  EXPECT_TRUE(Diags.empty())
      << "first inconsistency: " << Diags.front().str(&W->Repo);
}

//===----------------------------------------------------------------------===//
// Profile-package lint.
//===----------------------------------------------------------------------===//

namespace {

/// A fixture repo for package linting (class K with property "p").
struct PackageFixture {
  AnalysisFixture Fix;
  Linter L;

  PackageFixture()
      : Fix([](bc::Repo &, bc::Function &, FuncBuilder &B) {
          B.emit(Op::Null);  // 0
          B.emit(Op::RetC);  // 1
        }),
        L(Fix.R, numBuiltins()) {}

  std::vector<Diagnostic> lint(const profile::ProfilePackage &Pkg) {
    return L.lintPackage(Pkg);
  }
};

} // namespace

TEST(PackageLint, CleanEmptyPackage) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  EXPECT_TRUE(Fx.lint(Pkg).empty());
}

TEST(PackageLint, FunctionIdOutOfRange) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  profile::FuncProfile FP;
  FP.Func = 1000;
  Pkg.Funcs.push_back(FP);
  EXPECT_TRUE(hasKind(Fx.lint(Pkg), DiagKind::PackageStructure));
}

TEST(PackageLint, DuplicateFunctionProfile) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  profile::FuncProfile FP;
  FP.Func = 0;
  Pkg.Funcs.push_back(FP);
  Pkg.Funcs.push_back(FP);
  EXPECT_TRUE(hasKind(Fx.lint(Pkg), DiagKind::PackageStructure));
}

TEST(PackageLint, OversizedBlockCounters) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  profile::FuncProfile FP;
  FP.Func = Fx.Fix.F.raw();
  FP.BlockCounts.assign(50, 1); // "f" has a single block
  Pkg.Funcs.push_back(FP);
  EXPECT_TRUE(hasKind(Fx.lint(Pkg), DiagKind::PackageStructure));
}

TEST(PackageLint, CallTargetsAtNonVirtualSite) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  profile::FuncProfile FP;
  FP.Func = Fx.Fix.F.raw();
  FP.CallTargets[0][Fx.Fix.MethodM.raw()] = 10; // instr 0 is Null
  Pkg.Funcs.push_back(FP);
  EXPECT_TRUE(hasKind(Fx.lint(Pkg), DiagKind::PackageSemantics));
}

TEST(PackageLint, TypeObservationAtNonObservingSite) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  profile::FuncProfile FP;
  FP.Func = Fx.Fix.F.raw();
  FP.LoadTypes[1].observe(Type::Int); // instr 1 is RetC
  Pkg.Funcs.push_back(FP);
  EXPECT_TRUE(hasKind(Fx.lint(Pkg), DiagKind::PackageSemantics));
}

TEST(PackageLint, ImplausibleParamArity) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  profile::FuncProfile FP;
  FP.Func = Fx.Fix.F.raw();
  FP.ParamTypes.resize(bc::kMaxCallArgs + 1);
  Pkg.Funcs.push_back(FP);
  EXPECT_TRUE(hasKind(Fx.lint(Pkg), DiagKind::PackageStructure));
}

TEST(PackageLint, PreloadDuplicatesAndRanges) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  Pkg.Preload.Strings = {0, 0}; // duplicate
  EXPECT_TRUE(hasKind(Fx.lint(Pkg), DiagKind::PackageStructure));

  profile::ProfilePackage Pkg2;
  Pkg2.Preload.Classes = {12345}; // out of range
  EXPECT_TRUE(hasKind(Fx.lint(Pkg2), DiagKind::PackageStructure));
}

TEST(PackageLint, PropertyCounterKeys) {
  PackageFixture Fx;

  profile::ProfilePackage Good;
  Good.Opt.PropAccessCounts["K::p"] = 5;
  EXPECT_TRUE(Fx.lint(Good).empty());

  profile::ProfilePackage BadProp;
  BadProp.Opt.PropAccessCounts["K::nope"] = 5;
  EXPECT_TRUE(hasKind(Fx.lint(BadProp), DiagKind::PackageSemantics));

  profile::ProfilePackage BadClass;
  BadClass.Opt.PropAccessCounts["Ghost::p"] = 5;
  EXPECT_TRUE(hasKind(Fx.lint(BadClass), DiagKind::PackageSemantics));

  profile::ProfilePackage Malformed;
  Malformed.Opt.PropAccessCounts["K"] = 5;
  EXPECT_TRUE(hasKind(Fx.lint(Malformed), DiagKind::PackageStructure));
}

TEST(PackageLint, AffinityKeysMustBeCanonical) {
  PackageFixture Fx;
  // "K" declares only "p", so use two synthetic names on the class.
  Fx.Fix.R.clsMutable(Fx.Fix.K).DeclProps.push_back(
      Fx.Fix.R.internString("q"));

  profile::ProfilePackage Good;
  Good.Opt.PropAffinity["K::p::q"] = 3;
  EXPECT_TRUE(Fx.lint(Good).empty());

  profile::ProfilePackage Reversed;
  Reversed.Opt.PropAffinity["K::q::p"] = 3;
  EXPECT_TRUE(hasKind(Fx.lint(Reversed), DiagKind::PackageStructure));
}

TEST(PackageLint, IntermediateResultIds) {
  PackageFixture Fx;
  profile::ProfilePackage Pkg;
  Pkg.Intermediate.FuncOrder = {0, 1, 0}; // duplicate
  EXPECT_TRUE(hasKind(Fx.lint(Pkg), DiagKind::PackageStructure));

  profile::ProfilePackage Pkg2;
  Pkg2.Intermediate.LiveFuncs = {4444}; // out of range
  EXPECT_TRUE(hasKind(Fx.lint(Pkg2), DiagKind::PackageStructure));
}

//===----------------------------------------------------------------------===//
// StrictPackageLint in the consumer accept path.
//===----------------------------------------------------------------------===//

namespace {

class StrictLintFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    fleet::WorkloadParams P;
    P.NumHelpers = 120;
    P.NumClasses = 24;
    P.NumEndpoints = 12;
    P.NumUnits = 12;
    W = fleet::generateWorkload(P).release();
    Traffic = new fleet::TrafficModel(*W, fleet::TrafficParams(), 42);
  }
  static void TearDownTestSuite() {
    delete Traffic;
    delete W;
  }

  static vm::ServerConfig baseConfig() {
    vm::ServerConfig C;
    C.Jit.ProfileRequestTarget = 20;
    return C;
  }

  static core::JumpStartOptions lenientOpts() {
    core::JumpStartOptions O;
    O.Coverage.MinProfiledFuncs = 3;
    O.Coverage.MinTotalSamples = 50;
    O.Coverage.MinPackageBytes = 64;
    O.ValidationRequests = 10;
    return O;
  }

  static fleet::Workload *W;
  static fleet::TrafficModel *Traffic;
};

fleet::Workload *StrictLintFixture::W = nullptr;
fleet::TrafficModel *StrictLintFixture::Traffic = nullptr;

} // namespace

TEST_F(StrictLintFixture, SeederPublishesCleanPackage) {
  core::PackageManager Store;
  core::SeederParams SP;
  SP.Requests = 120;
  SP.Seed = 5;
  core::SeederOutcome Out = core::runSeederWorkflow(
      *W, *Traffic, baseConfig(), lenientOpts(), Store, SP);
  ASSERT_TRUE(Out.Published)
      << (Out.Problems.empty() ? "" : Out.Problems.front());

  // The published package really is lint-clean.
  Linter L(W->Repo, numBuiltins());
  EXPECT_TRUE(L.lintPackage(Out.Package).empty());
}

TEST_F(StrictLintFixture, ConsumerRejectsCorruptPackageBeforeUse) {
  // Produce a genuine package, then corrupt it *semantically*: the blob
  // stays checksum-clean and fingerprint-correct, so only the strict lint
  // can catch it -- at accept time, before it steers any compilation.
  core::PackageManager CleanStore;
  core::SeederParams SP;
  SP.Requests = 120;
  SP.Seed = 5;
  core::SeederOutcome Seeded = core::runSeederWorkflow(
      *W, *Traffic, baseConfig(), lenientOpts(), CleanStore, SP);
  ASSERT_TRUE(Seeded.Published);

  profile::ProfilePackage Corrupt = Seeded.Package;
  if (Corrupt.Preload.Strings.empty())
    Corrupt.Preload.Strings.push_back(0);
  Corrupt.Preload.Strings.push_back(Corrupt.Preload.Strings.front());

  core::PackageManager Store;
  ASSERT_TRUE(Store.publish(0, 0, Corrupt.serialize()).ok());

  core::ConsumerOutcome Out = core::startConsumer(
      *W, baseConfig(), lenientOpts(), Store, core::ConsumerParams());
  EXPECT_FALSE(Out.UsedJumpStart);
  ASSERT_NE(Out.Server, nullptr) << "fallback must still boot the server";
  bool SawLintRejection = false;
  for (const std::string &Line : Out.Log)
    if (Line.find("strict lint") != std::string::npos)
      SawLintRejection = true;
  EXPECT_TRUE(SawLintRejection);

  // Control: with strict linting off, the same package is accepted (the
  // duplicate preload entry is operationally harmless).
  core::JumpStartOptions Lax = lenientOpts();
  Lax.StrictPackageLint = false;
  core::ConsumerOutcome Out2 = core::startConsumer(
      *W, baseConfig(), Lax, Store, core::ConsumerParams());
  EXPECT_TRUE(Out2.UsedJumpStart);
}

//===----------------------------------------------------------------------===//
// Zero false positives over a whole generated application.
//===----------------------------------------------------------------------===//

TEST(ZeroFalsePositives, GeneratedWorkloadIsClean) {
  fleet::WorkloadParams P;
  P.NumHelpers = 150;
  P.NumClasses = 30;
  P.NumEndpoints = 15;
  P.NumUnits = 15;
  auto W = fleet::generateWorkload(P);

  Linter L(W->Repo, numBuiltins());
  std::vector<Diagnostic> Diags = L.lintRepo();
  EXPECT_TRUE(Diags.empty())
      << "first diagnostic: " << Diags.front().str(&W->Repo);
}

//===----------------------------------------------------------------------===//
// Interprocedural analysis: call graph, summaries, whole-program facts.
//===----------------------------------------------------------------------===//

namespace {

/// A seven-function repo exercising every call-graph shape: a leaf, a
/// direct caller of it, a mutually recursive pair with a base case, a
/// heap-writing function, and a devirtualizable virtual call on a fresh
/// exact-class receiver.
struct InterproceduralFixture {
  bc::Repo R;
  bc::ClassId K;
  bc::StringId NameM, PropP;
  bc::FuncId MethodM, Leaf, Caller, RecA, RecB, Writer, Virt;
  /// Instruction index of the FCallObj inside virt().
  uint32_t VirtCallPc = 1;

  InterproceduralFixture() {
    bc::Unit &U = R.createUnit("inter");
    bc::Class &Cls = R.createClass(U, "K");
    K = Cls.Id;
    NameM = R.internString("m");
    PropP = R.internString("p");
    R.clsMutable(K).DeclProps.push_back(PropP);

    // Create every function up front: Repo stores functions in a vector,
    // so references from createFunction go stale as more are added.
    MethodM = R.createFunction(U, "K::m").Id;
    Leaf = R.createFunction(U, "leaf").Id;
    Caller = R.createFunction(U, "caller").Id;
    RecA = R.createFunction(U, "recA").Id;
    RecB = R.createFunction(U, "recB").Id;
    Writer = R.createFunction(U, "writer").Id;
    Virt = R.createFunction(U, "virt").Id;

    R.funcMutable(MethodM).Cls = K;
    R.clsMutable(K).Methods.emplace(NameM.raw(), MethodM);

    build(MethodM, 0, 0, [&](FuncBuilder &B) {
      B.emit(Op::Int, 7);
      B.emit(Op::RetC);
    });
    build(Leaf, 0, 0, [&](FuncBuilder &B) {
      B.emit(Op::Int, 1);
      B.emit(Op::RetC);
    });
    build(Caller, 0, 0, [&](FuncBuilder &B) {
      B.emit(Op::FCall, Leaf.raw(), 0);
      B.emit(Op::RetC);
    });
    auto Recur = [&](bc::FuncId Other) {
      return [&, Other](FuncBuilder &B) {
        auto Base = B.newLabel();
        B.emit(Op::GetL, 0);        // 0
        B.emitJump(Op::JmpZ, Base); // 1
        B.emit(Op::GetL, 0);        // 2
        B.emit(Op::FCall, Other.raw(), 1); // 3
        B.emit(Op::RetC);           // 4
        B.bind(Base);
        B.emit(Op::Int, 0);         // 5
        B.emit(Op::RetC);           // 6
      };
    };
    build(RecA, 1, 1, Recur(RecB));
    build(RecB, 1, 1, Recur(RecA));
    build(Writer, 0, 0, [&](FuncBuilder &B) {
      B.emit(Op::NewObj, K.raw()); // 0
      B.emit(Op::Int, 1);          // 1
      B.emit(Op::SetProp, PropP.raw()); // 2
      B.emit(Op::Null);            // 3
      B.emit(Op::RetC);            // 4
    });
    build(Virt, 0, 0, [&](FuncBuilder &B) {
      B.emit(Op::NewObj, K.raw());          // 0
      B.emit(Op::FCallObj, NameM.raw(), 0); // 1
      B.emit(Op::RetC);                     // 2
    });
  }

  template <typename Fn>
  void build(bc::FuncId F, uint32_t NumParams, uint32_t NumLocals, Fn Body) {
    bc::Function &Func = R.funcMutable(F);
    Func.NumParams = NumParams;
    Func.NumLocals = NumLocals;
    FuncBuilder B(Func);
    Body(B);
    B.finish();
  }

  /// Index of the component containing \p F in bottom-up order.
  static size_t componentIndex(const CallGraph &CG, bc::FuncId F) {
    const auto &Comps = CG.components();
    for (size_t I = 0; I < Comps.size(); ++I)
      for (bc::FuncId G : Comps[I])
        if (G == F)
          return I;
    ADD_FAILURE() << "function " << F.raw() << " is in no component";
    return 0;
  }
};

} // namespace

TEST(CallGraphTest, DirectAndChaEdges) {
  InterproceduralFixture Fx;
  CallGraph CG(Fx.R);

  EXPECT_TRUE(CG.hasEdge(Fx.Caller, Fx.Leaf));
  EXPECT_FALSE(CG.hasEdge(Fx.Leaf, Fx.Caller));
  EXPECT_TRUE(CG.hasEdge(Fx.Virt, Fx.MethodM))
      << "virtual sites contribute class-hierarchy edges";
  // caller->leaf, recA->recB, recB->recA, virt->K::m.
  EXPECT_EQ(CG.numEdges(), 4u);

  ASSERT_EQ(CG.sites(Fx.Virt).size(), 1u);
  const CallSite &S = CG.sites(Fx.Virt).front();
  EXPECT_TRUE(S.Virtual);
  EXPECT_EQ(S.Pc, Fx.VirtCallPc);
  ASSERT_EQ(S.Targets.size(), 1u);
  EXPECT_EQ(S.Targets.front(), Fx.MethodM);

  EXPECT_EQ(CG.uniqueResolution(Fx.NameM), Fx.MethodM);
  EXPECT_TRUE(CG.allClassesResolve(Fx.NameM));
  ASSERT_EQ(CG.resolutions(Fx.NameM).size(), 1u);
}

TEST(CallGraphTest, SccCondensationIsBottomUp) {
  InterproceduralFixture Fx;
  CallGraph CG(Fx.R);

  EXPECT_EQ(CG.sccOf(Fx.RecA), CG.sccOf(Fx.RecB))
      << "mutual recursion collapses into one component";
  EXPECT_NE(CG.sccOf(Fx.Leaf), CG.sccOf(Fx.Caller));
  EXPECT_TRUE(CG.recursive(Fx.RecA));
  EXPECT_TRUE(CG.recursive(Fx.RecB));
  EXPECT_FALSE(CG.recursive(Fx.Caller));
  EXPECT_FALSE(CG.recursive(Fx.Leaf));

  // 7 functions, RecA+RecB merged: 6 components, callees first.
  EXPECT_EQ(CG.components().size(), 6u);
  EXPECT_LT(InterproceduralFixture::componentIndex(CG, Fx.Leaf),
            InterproceduralFixture::componentIndex(CG, Fx.Caller));
  EXPECT_LT(InterproceduralFixture::componentIndex(CG, Fx.MethodM),
            InterproceduralFixture::componentIndex(CG, Fx.Virt));
}

TEST(SummariesTest, ReturnLatticePurityAndRecursiveFixpoint) {
  InterproceduralFixture Fx;
  WholeProgram WP(Fx.R);

  EXPECT_TRUE(WP.summary(Fx.Leaf).Ret.definitely(Type::Int));
  EXPECT_TRUE(WP.summary(Fx.Caller).Ret.definitely(Type::Int))
      << "the callee's return summary must flow into the caller's";
  EXPECT_TRUE(WP.summary(Fx.RecA).Ret.definitely(Type::Int))
      << "the recursive component must converge to int, not widen to top";
  EXPECT_TRUE(WP.summary(Fx.RecB).Ret.definitely(Type::Int));
  EXPECT_GE(WP.summaries().maxRounds(), 2u)
      << "a recursive component cannot stabilize in a single round";

  EXPECT_TRUE(WP.summary(Fx.Leaf).pure());
  EXPECT_TRUE(WP.summary(Fx.Caller).pure())
      << "purity is transitive through pure callees";
  EXPECT_TRUE(WP.summary(Fx.Writer).WritesHeap);
  EXPECT_FALSE(WP.summary(Fx.Writer).pure());
}

TEST(WholeProgramTest, ProvenDevirtAndStats) {
  InterproceduralFixture Fx;
  WholeProgram WP(Fx.R);
  std::shared_ptr<const jit::ProvenFacts> Facts = WP.jitFacts();
  ASSERT_NE(Facts, nullptr);

  auto It = Facts->ProvenCalls.find(
      jit::ProvenFacts::siteKey(Fx.Virt.raw(), Fx.VirtCallPc));
  ASSERT_NE(It, Facts->ProvenCalls.end())
      << "a virtual call on a freshly allocated receiver must be proven";
  EXPECT_EQ(It->second.Target, Fx.MethodM.raw());
  EXPECT_EQ(It->second.Proof, jit::GuardProof::ExactRecv);
  EXPECT_EQ(It->second.RecvCls, Fx.K.raw());

  bool SawCallSeed = false;
  for (const jit::ProvenFacts::ICSeed &S : Facts->ICSeeds)
    SawCallSeed |= S.Func == Fx.Virt.raw() && S.Pc == Fx.VirtCallPc &&
                   S.Cls == Fx.K.raw() &&
                   S.K == jit::ProvenFacts::ICSeed::Kind::Call;
  EXPECT_TRUE(SawCallSeed) << "the proven monomorphic site must seed its IC";

  WholeProgram::Stats S = WP.stats();
  EXPECT_EQ(S.Functions, Fx.R.numFuncs());
  EXPECT_EQ(S.Edges, 4u);
  EXPECT_EQ(S.Components, 6u);
  EXPECT_EQ(S.RecursiveComponents, 1u);
  EXPECT_GE(S.MaxRounds, 2u);
  EXPECT_GE(S.ProvenCalls, 1u);
  EXPECT_GE(S.ICSeeds, 1u);
}

TEST(RegionCheck, ElisionReproofCatchesBogusClaims) {
  InterproceduralFixture Fx;
  jit::TransDb Db;
  auto MakeUnit = [&](uint8_t Proof, uint32_t Target, uint32_t Cls) {
    auto U = std::make_unique<jit::VasmUnit>();
    U->Func = Fx.Virt;
    jit::VasmUnit::ElidedGuard EG;
    EG.SiteKey = jit::ProvenFacts::siteKey(Fx.Virt.raw(), Fx.VirtCallPc);
    EG.ProofKind = Proof;
    EG.ClsOrMask = Cls;
    EG.Target = Target;
    U->ElidedGuards.push_back(EG);
    return U;
  };
  uint8_t Exact = static_cast<uint8_t>(jit::GuardProof::ExactRecv);
  // Sound claim: the analysis proves exactly this elision.
  Db.create(jit::TransKind::Optimized,
            MakeUnit(Exact, Fx.MethodM.raw(), Fx.K.raw()));
  // Wrong target: claims the site dispatches somewhere it cannot.
  Db.create(jit::TransKind::Optimized,
            MakeUnit(Exact, Fx.Leaf.raw(), Fx.K.raw()));
  // Wrong receiver class for an otherwise-correct target.
  Db.create(jit::TransKind::Optimized,
            MakeUnit(Exact, Fx.MethodM.raw(), Fx.K.raw() + 17));
  EXPECT_EQ(Db.guardsElided(), 3u);

  Linter L(Fx.R, numBuiltins());
  std::vector<Diagnostic> Diags = L.lintTranslations(Db);
  EXPECT_EQ(countKind(Diags, DiagKind::ElisionUnproven), 2u)
      << "exactly the two bogus claims must fail re-proof";
  for (const Diagnostic &D : Diags)
    if (D.Kind == DiagKind::ElisionUnproven)
      EXPECT_EQ(D.Sev, Severity::Error);
}

TEST(PackageLint, CallGraphContradictions) {
  InterproceduralFixture Fx;
  Linter L(Fx.R, numBuiltins());

  // A profiled dynamic target that is not a CHA resolution of the site's
  // method name contradicts the static over-approximation.
  profile::ProfilePackage Bad;
  profile::FuncProfile FP;
  FP.Func = Fx.Virt.raw();
  FP.CallTargets[Fx.VirtCallPc][Fx.Leaf.raw()] = 10;
  Bad.Funcs.push_back(FP);
  EXPECT_TRUE(hasKind(L.lintPackage(Bad, /*CrossCheckCallGraph=*/true),
                      DiagKind::SummaryContradiction));
  EXPECT_FALSE(hasKind(L.lintPackage(Bad, /*CrossCheckCallGraph=*/false),
                       DiagKind::SummaryContradiction))
      << "the cross-check is opt-in";

  // The genuine resolution is consistent.
  profile::ProfilePackage Good;
  profile::FuncProfile GP;
  GP.Func = Fx.Virt.raw();
  GP.CallTargets[Fx.VirtCallPc][Fx.MethodM.raw()] = 10;
  Good.Funcs.push_back(GP);
  EXPECT_FALSE(hasKind(L.lintPackage(Good, /*CrossCheckCallGraph=*/true),
                       DiagKind::SummaryContradiction));

  // A profiled call arc with no static call path is impossible (leaf
  // calls nothing, so leaf -> caller cannot be explained by inlining).
  profile::ProfilePackage BadArc;
  BadArc.Opt.CallArcs[{Fx.Leaf.raw(), Fx.Caller.raw()}] = 3;
  EXPECT_TRUE(hasKind(L.lintPackage(BadArc, /*CrossCheckCallGraph=*/true),
                      DiagKind::SummaryContradiction));

  profile::ProfilePackage GoodArc;
  GoodArc.Opt.CallArcs[{Fx.Caller.raw(), Fx.Leaf.raw()}] = 3;
  EXPECT_FALSE(hasKind(L.lintPackage(GoodArc, /*CrossCheckCallGraph=*/true),
                       DiagKind::SummaryContradiction));

  // Arcs record *physical* callers, so inlining collapses semantic
  // frames: a recA -> recA self-arc (recB inlined away) is a path, not
  // an edge, and must be accepted.
  profile::ProfilePackage InlinedArc;
  InlinedArc.Opt.CallArcs[{Fx.RecA.raw(), Fx.RecA.raw()}] = 3;
  EXPECT_FALSE(hasKind(L.lintPackage(InlinedArc, /*CrossCheckCallGraph=*/true),
                       DiagKind::SummaryContradiction))
      << "a transitive (inlined) arc is not a contradiction";
}
