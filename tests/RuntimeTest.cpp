//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the runtime: value semantics, the request-local heap,
/// and class layouts with property reordering (paper section V-C).
///
//===----------------------------------------------------------------------===//

#include "runtime/Builtins.h"
#include "runtime/ClassLayout.h"
#include "runtime/Heap.h"
#include "runtime/ValueOps.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::runtime;

//===----------------------------------------------------------------------===//
// Value semantics.
//===----------------------------------------------------------------------===//

TEST(ValueOps, Truthiness) {
  Heap H;
  EXPECT_FALSE(toBool(Value::null()));
  EXPECT_FALSE(toBool(Value::boolean(false)));
  EXPECT_FALSE(toBool(Value::integer(0)));
  EXPECT_FALSE(toBool(Value::dbl(0.0)));
  EXPECT_FALSE(toBool(Value::str(H.allocString(""))));
  EXPECT_TRUE(toBool(Value::integer(-1)));
  EXPECT_TRUE(toBool(Value::str(H.allocString("0"))))
      << "unlike PHP, any nonempty string is truthy here";
  VmVec *V = H.allocVec();
  EXPECT_FALSE(toBool(Value::vec(V)));
  V->Elems.push_back(Value::integer(1));
  EXPECT_TRUE(toBool(Value::vec(V)));
}

TEST(ValueOps, ArithmeticTypePromotion) {
  Value I = arith(ArithOp::Add, Value::integer(2), Value::integer(3));
  ASSERT_TRUE(I.isInt());
  EXPECT_EQ(I.I, 5);
  Value D = arith(ArithOp::Add, Value::integer(2), Value::dbl(0.5));
  ASSERT_TRUE(D.isDbl());
  EXPECT_DOUBLE_EQ(D.D, 2.5);
  Value B = arith(ArithOp::Mul, Value::boolean(true), Value::integer(7));
  ASSERT_TRUE(B.isInt());
  EXPECT_EQ(B.I, 7);
}

TEST(ValueOps, IllTypedArithmeticIsNull) {
  Heap H;
  Value S = Value::str(H.allocString("x"));
  EXPECT_TRUE(arith(ArithOp::Add, S, Value::integer(1)).isNull());
  EXPECT_TRUE(arith(ArithOp::Div, Value::integer(1), Value::integer(0))
                  .isNull());
  EXPECT_TRUE(arith(ArithOp::Mod, Value::dbl(1), Value::dbl(0)).isNull());
}

TEST(ValueOps, EqualitySemantics) {
  Heap H;
  EXPECT_TRUE(valueEquals(Value::integer(1), Value::dbl(1.0)))
      << "numerics compare across types";
  EXPECT_TRUE(valueEquals(Value::boolean(true), Value::integer(1)));
  EXPECT_TRUE(valueEquals(Value::null(), Value::null()));
  EXPECT_FALSE(valueEquals(Value::null(), Value::integer(0)));
  Value S1 = Value::str(H.allocString("ab"));
  Value S2 = Value::str(H.allocString("ab"));
  EXPECT_TRUE(valueEquals(S1, S2)) << "strings compare by content";
  VmVec *V = H.allocVec();
  EXPECT_TRUE(valueEquals(Value::vec(V), Value::vec(V)));
  EXPECT_FALSE(valueEquals(Value::vec(V), Value::vec(H.allocVec())))
      << "containers compare by identity";
}

TEST(ValueOps, OrderingIsTotal) {
  Heap H;
  Value Vals[] = {Value::null(), Value::integer(3), Value::dbl(2.5),
                  Value::str(H.allocString("a")),
                  Value::vec(H.allocVec())};
  for (const Value &A : Vals) {
    for (const Value &B : Vals) {
      Value Lt = compare(CmpOp::Lt, A, B);
      Value Gt = compare(CmpOp::Gt, A, B);
      Value Eq = compare(CmpOp::Eq, A, B);
      int Count = (Lt.B ? 1 : 0) + (Gt.B ? 1 : 0) + (Eq.B ? 1 : 0);
      // Exactly one of <, >, == holds... except that Eq is stricter than
      // !(< or >) for same-type non-comparable kinds; allow Count >= 1
      // only when comparing a value with itself or numerics.
      EXPECT_LE(Count, 2);
      EXPECT_TRUE(Lt.isBool() && Gt.isBool() && Eq.isBool());
    }
  }
  EXPECT_TRUE(compare(CmpOp::Lt, Value::integer(1), Value::dbl(1.5)).B);
  EXPECT_TRUE(compare(CmpOp::Ge, Value::str(H.allocString("b")),
                      Value::str(H.allocString("a")))
                  .B);
}

TEST(ValueOps, ConcatCoercion) {
  Heap H;
  Value R = concat(H, Value::integer(4), Value::str(H.allocString("x")));
  ASSERT_TRUE(R.isStr());
  EXPECT_EQ(R.S->Data, "4x");
  Value N = concat(H, Value::null(), Value::boolean(true));
  EXPECT_EQ(N.S->Data, "1");
}

TEST(ValueOps, ToStringForms) {
  Heap H;
  EXPECT_EQ(toString(Value::null()), "");
  EXPECT_EQ(toString(Value::boolean(false)), "");
  EXPECT_EQ(toString(Value::boolean(true)), "1");
  EXPECT_EQ(toString(Value::integer(-12)), "-12");
  EXPECT_EQ(toString(Value::dbl(2.5)), "2.5");
}

//===----------------------------------------------------------------------===//
// Heap.
//===----------------------------------------------------------------------===//

TEST(HeapTest, AddressesAreAlignedAndMonotonic) {
  Heap H;
  VmString *A = H.allocString("aaa");
  VmString *B = H.allocString("bbb");
  EXPECT_EQ(A->Addr % 16, 0u);
  EXPECT_EQ(B->Addr % 16, 0u);
  EXPECT_GT(B->Addr, A->Addr);
}

TEST(HeapTest, ResetRewindsAddressSpace) {
  Heap H;
  H.allocString("x");
  uint64_t Used = H.bytesAllocated();
  EXPECT_GT(Used, 0u);
  H.reset();
  EXPECT_EQ(H.bytesAllocated(), 0u);
  VmString *S = H.allocString("y");
  EXPECT_EQ(S->Addr % 16, 0u);
}

TEST(HeapTest, ObjectSlotAddresses) {
  Heap H;
  VmObject *O = H.allocObject(nullptr, 4);
  EXPECT_EQ(O->slotAddr(0), O->Addr + 16);
  EXPECT_EQ(O->slotAddr(3), O->Addr + 16 + 48);
  EXPECT_EQ(O->Slots.size(), 4u);
  EXPECT_TRUE(O->Slots[2].isNull());
}

//===----------------------------------------------------------------------===//
// Class layout and property reordering (paper section V-C).
//===----------------------------------------------------------------------===//

namespace {

/// Builds: class A { $p0 $p1 $p2 } ; class B extends A { $q0 $q1 }.
struct LayoutFixture {
  bc::Repo R;
  bc::ClassId A;
  bc::ClassId B;

  LayoutFixture() {
    bc::Unit &U = R.createUnit("u");
    bc::Class &CA = R.createClass(U, "A");
    CA.DeclProps = {R.internString("p0"), R.internString("p1"),
                    R.internString("p2")};
    A = CA.Id;
    bc::Class &CB = R.createClass(U, "B");
    CB.DeclProps = {R.internString("q0"), R.internString("q1")};
    B = CB.Id;
    R.clsMutable(B).Parent = A;
  }
};

} // namespace

TEST(ClassLayout, DeclaredOrderWithoutProfile) {
  LayoutFixture Fix;
  ClassTable T(Fix.R);
  const ClassLayout &LB = T.layout(Fix.B);
  ASSERT_EQ(LB.numSlots(), 5u);
  EXPECT_EQ(Fix.R.str(LB.propAtSlot(0)), "p0");
  EXPECT_EQ(Fix.R.str(LB.propAtSlot(3)), "q0");
  // Identity decl -> phys mapping.
  for (uint32_t I = 0; I < 5; ++I)
    EXPECT_EQ(LB.declToPhys()[I], I);
}

TEST(ClassLayout, ReorderingSortsByHotnessWithinLayer) {
  LayoutFixture Fix;
  std::unordered_map<std::string, uint64_t> Counts{
      {"A::p2", 100}, {"A::p0", 10}, {"B::q1", 50},
      // p1, q0 unprofiled (0)
  };
  ClassTable T(Fix.R);
  T.enablePropReordering(&Counts);
  const ClassLayout &LB = T.layout(Fix.B);
  // Parent layer: p2 (100), p0 (10), p1 (0) in slots 0..2.
  EXPECT_EQ(Fix.R.str(LB.propAtSlot(0)), "p2");
  EXPECT_EQ(Fix.R.str(LB.propAtSlot(1)), "p0");
  EXPECT_EQ(Fix.R.str(LB.propAtSlot(2)), "p1");
  // Child layer: q1 (50) before q0 (0), in slots 3..4.
  EXPECT_EQ(Fix.R.str(LB.propAtSlot(3)), "q1");
  EXPECT_EQ(Fix.R.str(LB.propAtSlot(4)), "q0");
}

TEST(ClassLayout, ParentLayoutIsPrefixOfChild) {
  LayoutFixture Fix;
  std::unordered_map<std::string, uint64_t> Counts{{"A::p1", 7},
                                                   {"B::q0", 3}};
  ClassTable T(Fix.R);
  T.enablePropReordering(&Counts);
  const ClassLayout &LA = T.layout(Fix.A);
  const ClassLayout &LB = T.layout(Fix.B);
  ASSERT_LE(LA.numSlots(), LB.numSlots());
  for (uint32_t S = 0; S < LA.numSlots(); ++S)
    EXPECT_EQ(LA.propAtSlot(S), LB.propAtSlot(S))
        << "inherited properties must keep their slots (subtyping)";
}

TEST(ClassLayout, DeclToPhysIsAPermutationAndConsistent) {
  LayoutFixture Fix;
  std::unordered_map<std::string, uint64_t> Counts{
      {"A::p1", 9}, {"A::p2", 5}, {"B::q1", 2}};
  ClassTable T(Fix.R);
  T.enablePropReordering(&Counts);
  const ClassLayout &LB = T.layout(Fix.B);
  const std::vector<uint32_t> &Map = LB.declToPhys();
  ASSERT_EQ(Map.size(), 5u);
  std::vector<bool> Seen(5, false);
  for (uint32_t Phys : Map) {
    ASSERT_LT(Phys, 5u);
    EXPECT_FALSE(Seen[Phys]) << "decl->phys must be a bijection";
    Seen[Phys] = true;
  }
  // Declared order of the full chain is parent-decl then own-decl; check
  // the mapping points at the right names.
  const char *DeclOrder[] = {"p0", "p1", "p2", "q0", "q1"};
  for (uint32_t D = 0; D < 5; ++D)
    EXPECT_EQ(Fix.R.str(LB.propAtSlot(Map[D])), DeclOrder[D]);
}

TEST(ClassLayout, FindSlotAndMethods) {
  LayoutFixture Fix;
  ClassTable T(Fix.R);
  const ClassLayout &LB = T.layout(Fix.B);
  EXPECT_GE(LB.findSlot(Fix.R.findString("p1")), 0);
  EXPECT_EQ(LB.findSlot(Fix.R.internString("absent")), -1);
  EXPECT_TRUE(T.isLoaded(Fix.B));
  EXPECT_TRUE(T.isLoaded(Fix.A)) << "building B forces A";
}

TEST(Builtins, StandardTableLookup) {
  const BuiltinTable &T = BuiltinTable::standard();
  EXPECT_NE(T.find("print"), BuiltinTable::kNotFound);
  EXPECT_NE(T.find("strlen"), BuiltinTable::kNotFound);
  EXPECT_EQ(T.find("no_such_builtin"), BuiltinTable::kNotFound);
  uint32_t Id = T.find("substr");
  EXPECT_EQ(T.builtin(Id).Arity, 3u);
  EXPECT_EQ(T.builtin(Id).Name, "substr");
}
