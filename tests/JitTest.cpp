//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the JIT: code cache, lowering, region selection,
/// translation layout/placement, and the tiering state machine.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "jit/Jit.h"
#include "jit/Lower.h"
#include "jit/Recorders.h"
#include "jit/Region.h"
#include "jit/TransLayout.h"

#include <gtest/gtest.h>

using namespace jumpstart;
using namespace jumpstart::jit;
using jumpstart::testing::TestVm;

//===----------------------------------------------------------------------===//
// Code cache.
//===----------------------------------------------------------------------===//

TEST(CodeCacheTest, BumpAllocationAndAlignment) {
  CodeCache C;
  uint64_t A = C.allocate(CodeArea::Hot, 100);
  uint64_t B = C.allocate(CodeArea::Hot, 10);
  EXPECT_EQ(A, C.base(CodeArea::Hot));
  EXPECT_EQ(B, A + 112) << "allocations are 16-byte aligned";
  EXPECT_EQ(C.used(CodeArea::Hot), 128u);
}

TEST(CodeCacheTest, AreasAreDisjoint) {
  CodeCache C;
  uint64_t Hot = C.allocate(CodeArea::Hot, 64);
  uint64_t Cold = C.allocate(CodeArea::Cold, 64);
  uint64_t Prof = C.allocate(CodeArea::Profile, 64);
  uint64_t Live = C.allocate(CodeArea::Live, 64);
  EXPECT_LT(Hot, Cold);
  EXPECT_LT(Cold, Prof);
  EXPECT_LT(Prof, Live);
}

TEST(CodeCacheTest, ExhaustionReturnsZero) {
  CodeCacheConfig Config;
  Config.LiveBytes = 256;
  CodeCache C(Config);
  EXPECT_NE(C.allocate(CodeArea::Live, 200), 0u);
  EXPECT_EQ(C.allocate(CodeArea::Live, 200), 0u)
      << "a full area must reject further allocation";
  EXPECT_TRUE(C.isFull(CodeArea::Live) ||
              C.used(CodeArea::Live) + 200 > C.capacity(CodeArea::Live));
}

TEST(CodeCacheTest, ResetHotColdForRelocation) {
  CodeCache C;
  C.allocate(CodeArea::Hot, 1000);
  C.allocate(CodeArea::Profile, 500);
  C.resetHotCold();
  EXPECT_EQ(C.used(CodeArea::Hot), 0u);
  EXPECT_GT(C.used(CodeArea::Profile), 0u) << "profile area untouched";
}

//===----------------------------------------------------------------------===//
// Lowering.
//===----------------------------------------------------------------------===//

namespace {

/// Compiles a snippet and lowers function \p Name.
std::unique_ptr<VasmUnit> lowerSnippet(TestVm &Vm, const std::string &Name,
                                       TransKind Kind,
                                       bool Instrument = false) {
  bc::BlockCache Blocks(Vm.Repo);
  LowerOptions Opts;
  Opts.Kind = Kind;
  Opts.SeederInstrumentation = Instrument;
  return lowerFunction(Vm.Repo, Blocks, Vm.Repo.findFunction(Name),
                       nullptr, nullptr, Opts);
}

} // namespace

TEST(Lowering, BlocksMirrorBytecodeBlocks) {
  TestVm Vm("function f($x) {"
            "  if ($x > 0) { return $x; }"
            "  return 0 - $x;"
            "}");
  auto Unit = lowerSnippet(Vm, "f", TransKind::Live);
  bc::BlockCache Blocks(Vm.Repo);
  const bc::BlockList &BL = Blocks.blocks(Vm.Repo.findFunction("f"));
  // Live lowering: one Vasm block per bytecode block (no exit stub).
  EXPECT_EQ(Unit->Blocks.size(), BL.numBlocks());
  for (uint32_t B = 0; B < BL.numBlocks(); ++B)
    EXPECT_NE(Unit->findBlock(Vm.Repo.findFunction("f"), B),
              VasmUnit::kNoBlock);
}

TEST(Lowering, ProfileKindAddsCounters) {
  TestVm Vm("function f($x) { return $x + 1; }");
  auto Live = lowerSnippet(Vm, "f", TransKind::Live);
  auto Prof = lowerSnippet(Vm, "f", TransKind::Profile);
  EXPECT_GT(Prof->sizeBytes(), Live->sizeBytes())
      << "instrumentation must cost bytes";
  bool SawCounter = false;
  for (const VBlock &B : Prof->Blocks)
    for (const VInstr &I : B.Instrs)
      if (I.Kind == VKind::Counter)
        SawCounter = true;
  EXPECT_TRUE(SawCounter);
}

TEST(Lowering, SeederInstrumentationOnOptimized) {
  TestVm Vm("function f($x) { return $x + 1; }");
  bc::BlockCache Blocks(Vm.Repo);
  profile::ProfileStore Store;
  RegionDescriptor Region;
  Region.Func = Vm.Repo.findFunction("f");
  LowerOptions Plain;
  Plain.Kind = TransKind::Optimized;
  LowerOptions Seeder = Plain;
  Seeder.SeederInstrumentation = true;
  auto A = lowerFunction(Vm.Repo, Blocks, Region.Func, &Store, &Region,
                         Plain);
  auto B = lowerFunction(Vm.Repo, Blocks, Region.Func, &Store, &Region,
                         Seeder);
  EXPECT_GT(B->numInstrs(), A->numInstrs());
}

TEST(Lowering, TypeSpecializationShrinksCode) {
  TestVm Vm("function f($x) { return $x * 2 + 1; }");
  bc::FuncId F = Vm.Repo.findFunction("f");
  bc::BlockCache Blocks(Vm.Repo);

  profile::ProfileStore Mono;
  {
    profile::FuncProfile &P = Mono.getOrCreate(F.raw());
    const bc::Function &Func = Vm.Repo.func(F);
    for (uint32_t Pc = 0; Pc < Func.Code.size(); ++Pc)
      for (int I = 0; I < 100; ++I)
        P.LoadTypes[Pc].observe(runtime::Type::Int);
  }
  profile::ProfileStore Empty;

  RegionDescriptor Region;
  Region.Func = F;
  LowerOptions Opts;
  Opts.Kind = TransKind::Optimized;
  auto Specialized =
      lowerFunction(Vm.Repo, Blocks, F, &Mono, &Region, Opts);
  auto Generic = lowerFunction(Vm.Repo, Blocks, F, &Empty, &Region, Opts);
  EXPECT_LT(Specialized->sizeBytes(), Generic->sizeBytes())
      << "monomorphic sites must lower to guard+op, not helper calls";
}

//===----------------------------------------------------------------------===//
// Region selection / inlining.
//===----------------------------------------------------------------------===//

namespace {

/// Seeds a store with block counts and entry counts so inlining fires.
void primeProfile(TestVm &Vm, profile::ProfileStore &Store,
                  const std::string &Name, uint64_t Entries) {
  bc::FuncId F = Vm.Repo.findFunction(Name);
  ASSERT_TRUE(F.valid());
  bc::BlockCache Blocks(Vm.Repo);
  profile::FuncProfile &P = Store.getOrCreate(F.raw());
  P.EntryCount = Entries;
  P.BlockCounts.assign(Blocks.blocks(F).numBlocks(), Entries);
}

} // namespace

TEST(Region, InlinesHotSmallCallee) {
  TestVm Vm("function callee($x) { return $x + 1; }"
            "function caller($x) { return callee($x) * 2; }");
  profile::ProfileStore Store;
  primeProfile(Vm, Store, "callee", 1000);
  primeProfile(Vm, Store, "caller", 1000);
  bc::BlockCache Blocks(Vm.Repo);
  RegionDescriptor R = selectRegion(Vm.Repo, Blocks, Store,
                                    Vm.Repo.findFunction("caller"));
  EXPECT_EQ(R.InlinedFuncs.size(), 1u);
  EXPECT_EQ(R.InlinedFuncs[0], Vm.Repo.findFunction("callee"));
}

TEST(Region, DoesNotInlineUnprofiledCallee) {
  TestVm Vm("function callee($x) { return $x + 1; }"
            "function caller($x) { return callee($x) * 2; }");
  profile::ProfileStore Store;
  primeProfile(Vm, Store, "caller", 1000); // callee unprofiled
  bc::BlockCache Blocks(Vm.Repo);
  RegionDescriptor R = selectRegion(Vm.Repo, Blocks, Store,
                                    Vm.Repo.findFunction("caller"));
  EXPECT_TRUE(R.InlinedFuncs.empty());
}

TEST(Region, RespectsSizeLimit) {
  // A callee with a big body (many statements) must not inline.
  std::string Big = "function callee($x) { $a = $x;";
  for (int I = 0; I < 60; ++I)
    Big += " $a = $a + " + std::to_string(I) + ";";
  Big += " return $a; }"
         "function caller($x) { return callee($x); }";
  TestVm Vm(Big);
  profile::ProfileStore Store;
  primeProfile(Vm, Store, "callee", 1000);
  primeProfile(Vm, Store, "caller", 1000);
  bc::BlockCache Blocks(Vm.Repo);
  RegionParams Params;
  Params.MaxInlineBytecodes = 48;
  RegionDescriptor R = selectRegion(Vm.Repo, Blocks, Store,
                                    Vm.Repo.findFunction("caller"), Params);
  EXPECT_TRUE(R.InlinedFuncs.empty());
}

TEST(Region, DevirtualizesMonomorphicSite) {
  TestVm Vm("class C { prop $p; method m($x) { return $x + 1; } }"
            "function caller($o, $x) { return $o->m($x); }");
  bc::FuncId Caller = Vm.Repo.findFunction("caller");
  bc::FuncId Target = Vm.Repo.findFunction("C::m");
  ASSERT_TRUE(Target.valid());
  profile::ProfileStore Store;
  primeProfile(Vm, Store, "caller", 100);
  // Find the FCallObj site.
  const bc::Function &F = Vm.Repo.func(Caller);
  uint32_t Site = ~0u;
  for (uint32_t Pc = 0; Pc < F.Code.size(); ++Pc)
    if (F.Code[Pc].Opcode == bc::Op::FCallObj)
      Site = Pc;
  ASSERT_NE(Site, ~0u);
  Store.getOrCreate(Caller.raw()).CallTargets[Site][Target.raw()] = 100;
  // Also profile the target so it is inline-eligible.
  primeProfile(Vm, Store, "C::m", 100);

  bc::BlockCache Blocks(Vm.Repo);
  RegionDescriptor R =
      selectRegion(Vm.Repo, Blocks, Store, Caller);
  // Monomorphic + small: devirtualize-and-inline.
  EXPECT_TRUE(R.inlinedCallee(Caller, Site).valid() ||
              R.devirtTarget(Caller, Site).valid());
}

TEST(Region, PolymorphicSiteStaysIndirect) {
  TestVm Vm("class A { prop $p; method m($x) { return $x; } }"
            "class B { prop $q; method m($x) { return $x * 2; } }"
            "function caller($o, $x) { return $o->m($x); }");
  bc::FuncId Caller = Vm.Repo.findFunction("caller");
  profile::ProfileStore Store;
  primeProfile(Vm, Store, "caller", 100);
  const bc::Function &F = Vm.Repo.func(Caller);
  uint32_t Site = ~0u;
  for (uint32_t Pc = 0; Pc < F.Code.size(); ++Pc)
    if (F.Code[Pc].Opcode == bc::Op::FCallObj)
      Site = Pc;
  ASSERT_NE(Site, ~0u);
  auto &Targets = Store.getOrCreate(Caller.raw()).CallTargets[Site];
  Targets[Vm.Repo.findFunction("A::m").raw()] = 50;
  Targets[Vm.Repo.findFunction("B::m").raw()] = 50;
  bc::BlockCache Blocks(Vm.Repo);
  RegionDescriptor R = selectRegion(Vm.Repo, Blocks, Store, Caller);
  EXPECT_FALSE(R.inlinedCallee(Caller, Site).valid());
  EXPECT_FALSE(R.devirtTarget(Caller, Site).valid());
}

//===----------------------------------------------------------------------===//
// Layout + placement.
//===----------------------------------------------------------------------===//

TEST(TransLayoutTest, PlacementAssignsDisjointAddresses) {
  TestVm Vm("function f($x) {"
            "  if ($x > 0) { $x = $x * 2; } else { $x = 0 - $x; }"
            "  return $x;"
            "}");
  bc::BlockCache Blocks(Vm.Repo);
  LowerOptions Opts;
  Opts.Kind = TransKind::Optimized;
  profile::ProfileStore Store;
  RegionDescriptor Region;
  Region.Func = Vm.Repo.findFunction("f");
  TransDb Db;
  Translation &T = Db.create(
      TransKind::Optimized,
      lowerFunction(Vm.Repo, Blocks, Region.Func, &Store, &Region, Opts));
  CodeCache Cache;
  UnitLayout L = layoutUnit(*T.Unit, LayoutOptions());
  ASSERT_TRUE(placeTranslation(T, Cache, CodeArea::Hot, L));
  EXPECT_TRUE(T.Placed);
  // Every block has a unique address and blocks do not overlap
  // (accounting for trailing jumps elided when the target is adjacent).
  std::vector<std::pair<uint64_t, uint64_t>> Ranges;
  for (uint32_t B = 0; B < T.Unit->Blocks.size(); ++B) {
    uint64_t Start = T.BlockAddrs[B];
    ASSERT_NE(Start, 0u);
    uint64_t Size = T.Unit->Blocks[B].sizeBytes();
    if (T.JumpElided[B])
      Size -= T.Unit->Blocks[B].Instrs.back().SizeBytes;
    Ranges.push_back({Start, Start + Size});
  }
  std::sort(Ranges.begin(), Ranges.end());
  for (size_t I = 1; I < Ranges.size(); ++I)
    EXPECT_LE(Ranges[I - 1].second, Ranges[I].first)
        << "blocks must not overlap";
}

TEST(TransLayoutTest, InjectedCountsOverrideWeights) {
  TestVm Vm("function f($x) { if ($x > 0) { return 1; } return 2; }");
  bc::BlockCache Blocks(Vm.Repo);
  profile::ProfileStore Store;
  RegionDescriptor Region;
  Region.Func = Vm.Repo.findFunction("f");
  LowerOptions Opts;
  Opts.Kind = TransKind::Optimized;
  auto Unit =
      lowerFunction(Vm.Repo, Blocks, Region.Func, &Store, &Region, Opts);
  std::vector<uint64_t> Counts(Unit->Blocks.size());
  for (size_t I = 0; I < Counts.size(); ++I)
    Counts[I] = 1000 + I;
  injectVasmCounts(*Unit, Counts);
  for (size_t I = 0; I < Unit->Blocks.size(); ++I)
    EXPECT_EQ(Unit->Blocks[I].Weight, 1000 + I);
}

//===----------------------------------------------------------------------===//
// Tiering state machine (driven through real execution).
//===----------------------------------------------------------------------===//

namespace {

/// Drives a Jit through its lifecycle by executing a function repeatedly.
struct TieringFixture {
  TestVm Vm;
  JitConfig Config;
  std::unique_ptr<Jit> J;
  std::unique_ptr<JitProfilingHooks> Hooks;

  TieringFixture()
      : Vm("function helper($x) { return $x * 3 + 1; }"
           "function main($x) {"
           "  $s = 0; $i = 0;"
           "  while ($i < 8) { $s = $s + helper($x + $i); $i = $i + 1; }"
           "  return $s;"
           "}") {
    Config.ProfileRequestTarget = 5;
    J = std::make_unique<Jit>(Vm.Repo, Config);
    Hooks = std::make_unique<JitProfilingHooks>(*J);
    Vm.Interp->setCallbacks(Hooks.get());
  }

  void runRequest() {
    bc::FuncId Main = Vm.Repo.findFunction("main");
    J->onFuncEntered(Main);
    J->onFuncEntered(Vm.Repo.findFunction("helper"));
    Vm.Interp->call(Main, {runtime::Value::integer(3)});
    J->onRequestFinished();
  }

  void drainJit() {
    while (J->hasPendingWork())
      J->runJitWork(1e9);
  }

  /// Serves \p N requests, draining JIT work between them (as background
  /// workers would), so profile translations exist to collect data.
  void serve(int N) {
    for (int I = 0; I < N; ++I) {
      runRequest();
      drainJit();
    }
  }
};

} // namespace

TEST(Tiering, FullLifecycle) {
  TieringFixture Fix;
  EXPECT_EQ(Fix.J->phase(), JitPhase::Profiling);

  // Requests trigger profile compilation.
  Fix.runRequest();
  EXPECT_TRUE(Fix.J->hasPendingWork());
  Fix.drainJit();
  bc::FuncId Main = Fix.Vm.Repo.findFunction("main");
  const Translation *ProfTrans = Fix.J->transDb().best(Main);
  ASSERT_NE(ProfTrans, nullptr);
  EXPECT_EQ(ProfTrans->Kind, TransKind::Profile);

  // More requests: profiling window closes, retranslate-all fires.
  for (int I = 0; I < 6; ++I)
    Fix.runRequest();
  EXPECT_NE(Fix.J->phase(), JitPhase::Profiling);
  Fix.drainJit();
  EXPECT_EQ(Fix.J->phase(), JitPhase::Mature);

  const Translation *Opt = Fix.J->transDb().best(Main);
  ASSERT_NE(Opt, nullptr);
  EXPECT_EQ(Opt->Kind, TransKind::Optimized);
  EXPECT_TRUE(Opt->Placed);
  EXPECT_LT(Opt->CostPerBytecode, Fix.Config.InterpCostPerBytecode);
}

TEST(Tiering, ProfilingCollectsData) {
  TieringFixture Fix;
  Fix.runRequest();
  Fix.drainJit();
  // Now main runs its profile translation: this request records counts.
  Fix.runRequest();
  bc::FuncId Main = Fix.Vm.Repo.findFunction("main");
  const profile::FuncProfile *P = Fix.J->profileStore().find(Main.raw());
  ASSERT_NE(P, nullptr);
  EXPECT_GT(P->EntryCount, 0u);
  EXPECT_FALSE(P->BlockCounts.empty());
  uint64_t Total = 0;
  for (uint64_t C : P->BlockCounts)
    Total += C;
  EXPECT_GT(Total, 0u);
}

TEST(Tiering, LiveTranslationsAfterMaturity) {
  TieringFixture Fix;
  for (int I = 0; I < 6; ++I)
    Fix.runRequest();
  Fix.drainJit();
  ASSERT_EQ(Fix.J->phase(), JitPhase::Mature);
  // A function never seen during profiling gets a live translation.
  TestVm &Vm = Fix.Vm;
  bc::FuncId Helper = Vm.Repo.findFunction("helper");
  (void)Helper;
  // Re-enter main (already optimized: no new work)...
  Fix.J->onFuncEntered(Vm.Repo.findFunction("main"));
  size_t JobsBefore = Fix.J->pendingJobs();
  EXPECT_EQ(JobsBefore, 0u);
}

TEST(Tiering, ConsumerPrecompileSkipsProfiling) {
  // Build a package from one VM's profiling, then feed it to a fresh Jit.
  TieringFixture Seeder;
  Seeder.serve(6);
  profile::ProfilePackage Pkg = Seeder.J->buildPackage(0, 0, 1, 0);
  EXPECT_GT(Pkg.numProfiledFuncs(), 0u);

  TieringFixture Consumer;
  // Fresh consumer Jit (unused requests).
  Jit Fresh(Consumer.Vm.Repo, Consumer.Config);
  Fresh.startConsumerPrecompile(Pkg);
  EXPECT_NE(Fresh.phase(), JitPhase::Profiling);
  while (Fresh.hasPendingWork())
    Fresh.runJitWork(1e9);
  EXPECT_EQ(Fresh.phase(), JitPhase::Mature);
  const Translation *T =
      Fresh.transDb().best(Consumer.Vm.Repo.findFunction("main"));
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, TransKind::Optimized);
  EXPECT_TRUE(T->Placed);
}

TEST(Tiering, PackageCarriesPreloadListsAndOrder) {
  TieringFixture Fix;
  Fix.serve(6);
  profile::ProfilePackage Pkg = Fix.J->buildPackage(3, 4, 7, 0x99);
  EXPECT_EQ(Pkg.Region, 3u);
  EXPECT_EQ(Pkg.Bucket, 4u);
  EXPECT_EQ(Pkg.RepoFingerprint, 0x99u);
  EXPECT_FALSE(Pkg.Preload.Units.empty());
  EXPECT_FALSE(Pkg.Intermediate.FuncOrder.empty());
}

TEST(Tiering, JitWorkRespectsBudget) {
  TieringFixture Fix;
  Fix.runRequest();
  ASSERT_TRUE(Fix.J->hasPendingWork());
  double Consumed = Fix.J->runJitWork(10.0);
  EXPECT_LE(Consumed, 10.0 + 1e-9);
  EXPECT_TRUE(Fix.J->hasPendingWork())
      << "a tiny budget cannot finish a compile job";
}
