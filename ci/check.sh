#!/usr/bin/env bash
# The tier-1 verification gate: configure, build, run the tier-1 test
# suite, then check the fig4 determinism guarantee (two identical runs
# must export byte-identical metrics/trace dumps).
#
# Usage: ci/check.sh [build-dir]
#
#   ci/check.sh                 # tier-1 gate against ./build
#   CHECK_SANITIZE=1 ci/check.sh  # additionally run ci/sanitize.sh (ASan+UBSan)
#   CHECK_TSAN=1 ci/check.sh      # additionally run the TSan sweep, which
#                                 # re-runs the tests and the --threads
#                                 # determinism sweep instrumented
#   CHECK_DIFF=0 ci/check.sh      # skip the differential conformance smoke
#                                 # (50 generated programs through the
#                                 # interp/JIT/Jump-Start config matrix)
#   CHECK_ANALYZE=0 ci/check.sh   # skip the static-analysis gate (jslint
#                                 # --json over examples/hack plus a
#                                 # 100-program soundness sweep with
#                                 # proven-guard elision enabled)
#   CHECK_STATS=0 ci/check.sh     # skip the stats-determinism gate (two
#                                 # quick micro_interp --stats runs must
#                                 # emit byte-identical `stats` blocks:
#                                 # the changepoint/classifier/bootstrap
#                                 # pipeline is exactly reproducible)
#   CHECK_PERF=0 ci/check.sh      # skip the interpreter perf smoke (two
#                                 # quick micro_interp runs byte-compared,
#                                 # plus the statistical regression gate
#                                 # against the committed BENCH_interp.json:
#                                 # fail only if the fresh steady-state CI
#                                 # is disjointly worse, or the warmup
#                                 # class degrades)
#   CHECK_SERVER=0 ci/check.sh    # skip the concurrent-serving smoke (the
#                                 # server_load harness at --threads 1 and
#                                 # 4 byte-compared -- the thread-count
#                                 # invariance contract -- plus the
#                                 # deterministic fields of the committed
#                                 # BENCH_server.json)
#   CHECK_PACKAGE=0 ci/check.sh   # skip the package-lifecycle gate (a
#                                 # 100-program merge-order/delta/lint
#                                 # property sweep, plus the drift sweep
#                                 # byte-compared against the committed
#                                 # BENCH_package.json)
#
# This is what "the tests pass" means for this repository; ci/sanitize.sh
# is the deeper (slower) sanitizer sweep.

set -euo pipefail

REPO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_DIR}/build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -S "${REPO_DIR}" -B "${BUILD_DIR}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" -L tier1 --output-on-failure -j "${JOBS}"

# Determinism acceptance checks: identical runs -> identical bytes, and
# the host compile pool (--threads) must not change a single exported
# byte -- worker threads only move wall-clock time.
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT
"${BUILD_DIR}/bench/fig4_warmup" --export "${TMP_DIR}/run-a" >/dev/null
"${BUILD_DIR}/bench/fig4_warmup" --export "${TMP_DIR}/run-b" >/dev/null
for SUFFIX in metrics.jsonl trace.jsonl chrome.json classes.json; do
  if ! cmp -s "${TMP_DIR}/run-a.${SUFFIX}" "${TMP_DIR}/run-b.${SUFFIX}"; then
    echo "check.sh: FAIL: fig4_warmup ${SUFFIX} differs between runs" >&2
    exit 1
  fi
done
echo "check.sh: fig4_warmup exports byte-identical across runs"

for THREADS in 2 8; do
  "${BUILD_DIR}/bench/fig4_warmup" --export "${TMP_DIR}/thr-${THREADS}" \
    --threads "${THREADS}" >/dev/null
  for SUFFIX in metrics.jsonl trace.jsonl chrome.json classes.json; do
    if ! cmp -s "${TMP_DIR}/run-a.${SUFFIX}" "${TMP_DIR}/thr-${THREADS}.${SUFFIX}"; then
      echo "check.sh: FAIL: fig4_warmup ${SUFFIX} differs at --threads ${THREADS}" >&2
      exit 1
    fi
  done
done
echo "check.sh: fig4_warmup exports byte-identical for --threads 1/2/8"

# Differential conformance smoke: 50 generated programs through the smoke
# config matrix (interpreter / JIT tiers / Jump-Start consumer boot), run
# twice -- zero mismatches and a byte-identical summary (which embeds the
# sweep digest covering every observable).
if [[ "${CHECK_DIFF:-1}" == "1" ]]; then
  "${BUILD_DIR}/examples/jsvm" fuzz --programs 50 --seed 7 \
    --repro "${TMP_DIR}/repro" > "${TMP_DIR}/diff-a.txt"
  "${BUILD_DIR}/examples/jsvm" fuzz --programs 50 --seed 7 \
    --repro "${TMP_DIR}/repro" > "${TMP_DIR}/diff-b.txt"
  if ! cmp -s "${TMP_DIR}/diff-a.txt" "${TMP_DIR}/diff-b.txt"; then
    echo "check.sh: FAIL: conformance sweep digest differs between runs" >&2
    diff "${TMP_DIR}/diff-a.txt" "${TMP_DIR}/diff-b.txt" >&2 || true
    exit 1
  fi
  echo "check.sh: $(cat "${TMP_DIR}/diff-a.txt")"
fi

# Static-analysis gate: jslint --json over the checked-in mini-Hack
# examples (must lint clean) and a 100-program generated-corpus soundness
# sweep (every guard the JIT elides must be re-proven by an independent
# whole-program analysis run, with zero error findings and at least one
# guard measurably elided).
if [[ "${CHECK_ANALYZE:-1}" == "1" ]]; then
  errors_of() { sed -n 's/.*"errors": \([0-9]*\).*/\1/p' "$1"; }
  for HACK in "${REPO_DIR}"/examples/hack/*.hack; do
    "${BUILD_DIR}/examples/jslint" --json "${HACK}" > "${TMP_DIR}/lint.json" \
      || { echo "check.sh: FAIL: jslint found errors in ${HACK}:" >&2; \
           cat "${TMP_DIR}/lint.json" >&2; exit 1; }
    if [[ "$(errors_of "${TMP_DIR}/lint.json")" != "0" ]]; then
      echo "check.sh: FAIL: jslint reports errors for ${HACK}" >&2
      cat "${TMP_DIR}/lint.json" >&2
      exit 1
    fi
  done
  "${BUILD_DIR}/examples/jslint" --json --gen 100 21 > "${TMP_DIR}/gen.json" \
    || { echo "check.sh: FAIL: analysis soundness sweep found errors:" >&2; \
         cat "${TMP_DIR}/gen.json" >&2; exit 1; }
  if [[ "$(errors_of "${TMP_DIR}/gen.json")" != "0" ]]; then
    echo "check.sh: FAIL: analysis soundness sweep reports errors" >&2
    cat "${TMP_DIR}/gen.json" >&2
    exit 1
  fi
  ELIDED="$(sed -n 's/.*"guards_elided": \([0-9]*\).*/\1/p' "${TMP_DIR}/gen.json")"
  if [[ -z "${ELIDED}" || "${ELIDED}" == "0" ]]; then
    echo "check.sh: FAIL: soundness sweep elided no guards (analysis inert)" >&2
    cat "${TMP_DIR}/gen.json" >&2
    exit 1
  fi
  echo "check.sh: analysis gate clean (100-program sweep, ${ELIDED} guards elided)"
fi

# Helpers for the statistical gates below: pull scalar fields out of a
# `stats` block's one-line header (the first match is the header; later
# "steady_mean"s belong to per-seed runs lines).
stat_of() { sed -n 's/.*"'"$2"'": \([0-9.]*\).*/\1/p' "$1" | head -1; }
class_of() { sed -n 's/.*"worst_class": "\([a-z]*\)".*/\1/p' "$1" | head -1; }
class_rank() {
  case "$1" in
    flat) echo 0 ;; warmup) echo 1 ;; slowdown) echo 2 ;;
    inconsistent) echo 3 ;; *) echo 4 ;;
  esac
}
stats_block() { sed -n '/"stats": {/,/^  }/p' "$1"; }

# Stats-determinism gate: the changepoint detector, curve classifier and
# bootstrap CI are exactly reproducible -- two quick multi-seed sweeps
# must emit byte-identical `stats` blocks.
if [[ "${CHECK_STATS:-1}" == "1" ]]; then
  "${BUILD_DIR}/bench/micro_interp" --quick --stats seeds=5,iters=30 \
    --json "${TMP_DIR}/stats-a.json" >/dev/null
  "${BUILD_DIR}/bench/micro_interp" --quick --stats seeds=5,iters=30 \
    --json "${TMP_DIR}/stats-b.json" >/dev/null
  stats_block "${TMP_DIR}/stats-a.json" > "${TMP_DIR}/stats-a.block"
  stats_block "${TMP_DIR}/stats-b.json" > "${TMP_DIR}/stats-b.block"
  if [[ ! -s "${TMP_DIR}/stats-a.block" ]]; then
    echo "check.sh: FAIL: micro_interp --stats emitted no stats block" >&2
    exit 1
  fi
  if ! cmp -s "${TMP_DIR}/stats-a.block" "${TMP_DIR}/stats-b.block"; then
    echo "check.sh: FAIL: micro_interp stats blocks differ between runs" >&2
    diff "${TMP_DIR}/stats-a.block" "${TMP_DIR}/stats-b.block" >&2 || true
    exit 1
  fi
  echo "check.sh: stats analysis deterministic (byte-identical stats blocks)"
fi

# Interpreter perf smoke: the wall-clock numbers are host noise, but
# every counter micro_interp emits (steps, faults, allocs, IC hits) is
# deterministic -- two runs must be byte-identical.  The regression gate
# against the committed snapshot is statistical: fail only when the fresh
# steady-state confidence interval is disjointly worse than the committed
# one (allocs/request: lower is better), or when the warmup class
# degrades (flat < warmup < slowdown < inconsistent).
if [[ "${CHECK_PERF:-1}" == "1" ]]; then
  "${REPO_DIR}/bench/run_bench.sh" --quick --build-dir "${BUILD_DIR}" \
    --json "${TMP_DIR}/perf-a.json" --counters "${TMP_DIR}/perf-a.counters" \
    >/dev/null
  "${REPO_DIR}/bench/run_bench.sh" --quick --build-dir "${BUILD_DIR}" \
    --counters "${TMP_DIR}/perf-b.counters" >/dev/null
  if ! cmp -s "${TMP_DIR}/perf-a.counters" "${TMP_DIR}/perf-b.counters"; then
    echo "check.sh: FAIL: micro_interp deterministic counters differ between runs" >&2
    diff "${TMP_DIR}/perf-a.counters" "${TMP_DIR}/perf-b.counters" >&2 || true
    exit 1
  fi
  SNAPSHOT="${REPO_DIR}/BENCH_interp.json"
  if [[ -f "${SNAPSHOT}" ]]; then
    COMMITTED_HI="$(stat_of "${SNAPSHOT}" steady_ci_hi)"
    CURRENT_LO="$(stat_of "${TMP_DIR}/perf-a.json" steady_ci_lo)"
    COMMITTED_CLASS="$(class_of "${SNAPSHOT}")"
    CURRENT_CLASS="$(class_of "${TMP_DIR}/perf-a.json")"
    if [[ -z "${COMMITTED_HI}" || -z "${CURRENT_LO}" ||
          -z "${COMMITTED_CLASS}" || -z "${CURRENT_CLASS}" ]]; then
      echo "check.sh: FAIL: cannot parse stats block from perf JSON" >&2
      exit 1
    fi
    # CI gate: the fresh interval must overlap (or beat) the committed
    # one.  Disjointly above it = a real allocation regression, not
    # noise.
    if ! awk -v lo="${CURRENT_LO}" -v hi="${COMMITTED_HI}" \
        'BEGIN { exit !(lo <= hi) }'; then
      echo "check.sh: FAIL: fast-engine allocs/request CI disjointly" \
           "regressed: fresh lo ${CURRENT_LO} > committed hi ${COMMITTED_HI}" \
           "(BENCH_interp.json)" >&2
      exit 1
    fi
    if [[ "$(class_rank "${CURRENT_CLASS}")" -gt \
          "$(class_rank "${COMMITTED_CLASS}")" ]]; then
      echo "check.sh: FAIL: fast-engine warmup class degraded:" \
           "${CURRENT_CLASS} vs committed ${COMMITTED_CLASS}" >&2
      exit 1
    fi
    echo "check.sh: micro_interp counters deterministic; steady CI lo ${CURRENT_LO} vs committed hi ${COMMITTED_HI}, class ${CURRENT_CLASS}"
  else
    echo "check.sh: micro_interp counters deterministic (no BENCH_interp.json snapshot)"
  fi
fi

# Concurrent-serving smoke: the load harness's deterministic counters
# (served/shed, per-index observables digest, placement digest, snapshot
# count) must be byte-identical across client thread counts -- host
# threads move wall-clock time, never an observable -- and must match
# the committed BENCH_server.json snapshot (which is the --quick
# workload; host-time percentiles in it are reported, never gated).
if [[ "${CHECK_SERVER:-1}" == "1" ]]; then
  # --stats on both runs: the counters byte-compare below then also
  # proves the multi-seed stats sweep is thread-count invariant.
  "${BUILD_DIR}/bench/server_load" --quick --threads 1 \
    --stats seeds=5,iters=30 \
    --counters "${TMP_DIR}/serve-t1.counters" >/dev/null
  "${BUILD_DIR}/bench/server_load" --quick --threads 4 \
    --stats seeds=5,iters=30 \
    --counters "${TMP_DIR}/serve-t4.counters" >/dev/null
  if ! cmp -s "${TMP_DIR}/serve-t1.counters" "${TMP_DIR}/serve-t4.counters"; then
    echo "check.sh: FAIL: server_load deterministic counters differ across --threads 1/4" >&2
    diff "${TMP_DIR}/serve-t1.counters" "${TMP_DIR}/serve-t4.counters" >&2 || true
    exit 1
  fi
  SERVER_SNAPSHOT="${REPO_DIR}/BENCH_server.json"
  if [[ -f "${SERVER_SNAPSHOT}" ]]; then
    # Warmup-class gate: the serving curve's class must not degrade
    # versus the committed snapshot (warmup is expected; slowdown or
    # inconsistent would mean the JIT ramp no longer converges).
    SRV_COMMITTED_CLASS="$(class_of "${SERVER_SNAPSHOT}")"
    SRV_CURRENT_CLASS="$(sed -n 's/.*worst_class=\([a-z]*\).*/\1/p' \
                         "${TMP_DIR}/serve-t4.counters" | head -1)"
    if [[ -n "${SRV_COMMITTED_CLASS}" && -n "${SRV_CURRENT_CLASS}" &&
          "$(class_rank "${SRV_CURRENT_CLASS}")" -gt \
          "$(class_rank "${SRV_COMMITTED_CLASS}")" ]]; then
      echo "check.sh: FAIL: server_load warmup class degraded:" \
           "${SRV_CURRENT_CLASS} vs committed ${SRV_COMMITTED_CLASS}" >&2
      exit 1
    fi
    field_of() { sed -n 's/.*"'"$2"'": "\{0,1\}\([0-9a-fx]*\)"\{0,1\}[,}].*/\1/p' "$1"; }
    for FIELD in served shed obs_digest placement_digest snapshots_published; do
      WANT="$(field_of "${SERVER_SNAPSHOT}" "${FIELD}")"
      GOT="$(sed -n 's/.*\b'"${FIELD/snapshots_published/snapshots}"'=\([0-9a-f]*\).*/\1/p' \
             "${TMP_DIR}/serve-t4.counters")"
      if [[ -z "${WANT}" || -z "${GOT}" || "${WANT}" != "${GOT}" ]]; then
        echo "check.sh: FAIL: server_load ${FIELD} = '${GOT}' differs from" \
             "committed BENCH_server.json ('${WANT}')" >&2
        exit 1
      fi
    done
    echo "check.sh: server_load counters deterministic across threads and match BENCH_server.json"
  else
    echo "check.sh: server_load counters deterministic across threads (no BENCH_server.json snapshot)"
  fi
fi

# Package-lifecycle gate: per generated program, the merged package's
# bytes must be identical for either seeder arrival order, the delta
# against a sibling release must reconstruct exactly, and the merged
# package must pass the consumer's strict lint.  Then the full
# staleness-under-drift sweep re-runs; it is virtual-clock deterministic,
# so its JSON must byte-match the committed BENCH_package.json.
if [[ "${CHECK_PACKAGE:-1}" == "1" ]]; then
  "${BUILD_DIR}/bench/package_lifecycle" --check 100 1
  PACKAGE_SNAPSHOT="${REPO_DIR}/BENCH_package.json"
  # Same --stats spec the committed snapshot was generated with
  # (bench/run_bench.sh --package): the byte-compare covers the stats
  # block and the per-age warmup-class columns too.
  "${BUILD_DIR}/bench/package_lifecycle" --json "${TMP_DIR}/package.json" \
    --stats seeds=3,iters=60 >/dev/null
  if [[ -f "${PACKAGE_SNAPSHOT}" ]]; then
    if ! cmp -s "${TMP_DIR}/package.json" "${PACKAGE_SNAPSHOT}"; then
      echo "check.sh: FAIL: drift sweep differs from committed BENCH_package.json" >&2
      diff "${TMP_DIR}/package.json" "${PACKAGE_SNAPSHOT}" >&2 || true
      exit 1
    fi
    echo "check.sh: package lifecycle clean; drift sweep matches BENCH_package.json"
  else
    echo "check.sh: package lifecycle clean (no BENCH_package.json snapshot)"
  fi
fi

if [[ "${CHECK_SANITIZE:-0}" == "1" ]]; then
  "${REPO_DIR}/ci/sanitize.sh"
fi
if [[ "${CHECK_TSAN:-0}" == "1" ]]; then
  JUMPSTART_SANITIZE=thread "${REPO_DIR}/ci/sanitize.sh"
fi

echo "check.sh: OK"
