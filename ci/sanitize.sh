#!/usr/bin/env bash
# Builds and runs the full test suite under ASan+UBSan.
#
# Usage: ci/sanitize.sh [build-dir]
#
# The sanitizer build lives in its own tree (default build-asan/) so it
# never clobbers the regular build/.  Any sanitizer report is fatal:
# -fno-sanitize-recover=all is set by the JUMPSTART_SANITIZE option, so a
# finding aborts the offending test and fails ctest.

set -euo pipefail

REPO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_DIR}/build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -S "${REPO_DIR}" -B "${BUILD_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DJUMPSTART_SANITIZE=address,undefined

cmake --build "${BUILD_DIR}" -j "${JOBS}"

# halt_on_error makes ASan findings fail the run even in code paths that
# would otherwise keep going; detect_leaks stays on by default.
export ASAN_OPTIONS="halt_on_error=1:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
