#!/usr/bin/env bash
# Builds and runs the full test suite under a sanitizer set.
#
# Usage: ci/sanitize.sh [build-dir]
#
#   ci/sanitize.sh                            # ASan+UBSan in build-asan/
#   JUMPSTART_SANITIZE=thread ci/sanitize.sh  # TSan in build-tsan/
#   JUMPSTART_SANITIZE=thread-safety ci/sanitize.sh
#                     # clang static -Wthread-safety analysis (compile
#                     # only, -Werror) against src/support/ThreadSafety.h
#                     # annotations, in build-threadsafety/.  No-op
#                     # (prints a skip notice) when CXX is gcc, which
#                     # has no such analysis.
#
# Each sanitizer set lives in its own tree so it never clobbers the
# regular build/ (or each other).  Any sanitizer report is fatal:
# -fno-sanitize-recover=all is set by the JUMPSTART_SANITIZE cmake
# option, so a finding aborts the offending test and fails ctest.
#
# The thread set exists for the host compile pool (support::ThreadPool,
# jit::ParallelRetranslate, the sharded fleet/deployment fan-outs): on
# top of the full test suite it runs the fig4_warmup --threads sweep and
# byte-compares the exports, so a data race that *changes output* fails
# twice -- once under TSan, once on the diff.

set -euo pipefail

REPO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SANITIZERS="${JUMPSTART_SANITIZE:-address,undefined}"
case "${SANITIZERS}" in
  thread) DEFAULT_BUILD_DIR="${REPO_DIR}/build-tsan" ;;
  thread-safety) DEFAULT_BUILD_DIR="${REPO_DIR}/build-threadsafety" ;;
  *) DEFAULT_BUILD_DIR="${REPO_DIR}/build-asan" ;;
esac
BUILD_DIR="${1:-${DEFAULT_BUILD_DIR}}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# thread-safety is a static analysis, not a runtime sanitizer: a clean
# clang build with -Wthread-safety promoted to an error IS the result,
# so there is nothing to execute afterwards.  gcc has no equivalent
# analysis; the annotations compile away there, so the mode is an
# explicit no-op rather than a false green.
if [[ "${SANITIZERS}" == "thread-safety" ]]; then
  if ! "${CXX:-c++}" --version 2>/dev/null | grep -qi clang; then
    echo "sanitize.sh: thread-safety analysis needs clang (CXX=${CXX:-c++} is not); skipping"
    exit 0
  fi
  cmake -S "${REPO_DIR}" -B "${BUILD_DIR}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DJUMPSTART_SANITIZE=thread-safety
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  echo "sanitize.sh: -Wthread-safety analysis clean"
  exit 0
fi

cmake -S "${REPO_DIR}" -B "${BUILD_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DJUMPSTART_SANITIZE="${SANITIZERS}"

cmake --build "${BUILD_DIR}" -j "${JOBS}"

# halt_on_error makes findings fail the run even in code paths that
# would otherwise keep going; ASan's detect_leaks stays on by default.
export ASAN_OPTIONS="halt_on_error=1:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:abort_on_error=1:second_deadlock_stack=1"

# tier2 (the 200-program conformance sweep) is excluded: sanitizer
# overhead makes it many-minutes slow, and ci/check.sh already runs the
# uninstrumented sweep plus a 50-program smoke.
ctest --test-dir "${BUILD_DIR}" -LE tier2 --output-on-failure -j "${JOBS}"

# The interpreter perf harness exercises the frame arena, interned
# strings, and the inline-cache side table far harder than any unit
# test; run its quick mode -- with a small multi-seed stats sweep so the
# changepoint/classifier/bootstrap analysis path is instrumented too.
"${BUILD_DIR}/bench/micro_interp" --quick --stats seeds=2,iters=10 >/dev/null
echo "sanitize.sh: micro_interp --quick --stats clean"

# The concurrent-serving load harness is the densest epoch/snapshot
# churn in the tree: N client threads pinning read epochs while the
# background compiler publishes and reclaims translation snapshots.
"${BUILD_DIR}/bench/server_load" --quick --threads 4 >/dev/null
echo "sanitize.sh: server_load --quick clean"

# The package lifecycle crosses every serialization boundary in one run
# (merge, delta encode/apply, rebase, manager round trips, consumer
# accept); the quick drift sweep gives the sanitizers that whole path.
"${BUILD_DIR}/bench/package_lifecycle" --quick >/dev/null
echo "sanitize.sh: package_lifecycle --quick clean"

if [[ "${SANITIZERS}" == "thread" ]]; then
  TMP_DIR="$(mktemp -d)"
  trap 'rm -rf "${TMP_DIR}"' EXIT
  for THREADS in 1 2 8; do
    "${BUILD_DIR}/bench/fig4_warmup" --export "${TMP_DIR}/t${THREADS}" \
      --threads "${THREADS}" >/dev/null
  done
  for SUFFIX in metrics.jsonl trace.jsonl chrome.json; do
    for THREADS in 2 8; do
      if ! cmp -s "${TMP_DIR}/t1.${SUFFIX}" "${TMP_DIR}/t${THREADS}.${SUFFIX}"; then
        echo "sanitize.sh: FAIL: fig4_warmup ${SUFFIX} differs at --threads ${THREADS}" >&2
        exit 1
      fi
    done
  done
  echo "sanitize.sh: fig4_warmup exports byte-identical under TSan for --threads 1/2/8"

  # Concurrent serving: the deterministic counters must survive client
  # thread count even with TSan's scheduling distortion.
  for THREADS in 1 4; do
    "${BUILD_DIR}/bench/server_load" --quick --threads "${THREADS}" \
      --counters "${TMP_DIR}/serve-t${THREADS}.counters" >/dev/null
  done
  if ! cmp -s "${TMP_DIR}/serve-t1.counters" "${TMP_DIR}/serve-t4.counters"; then
    echo "sanitize.sh: FAIL: server_load counters differ across --threads 1/4 under TSan" >&2
    diff "${TMP_DIR}/serve-t1.counters" "${TMP_DIR}/serve-t4.counters" >&2 || true
    exit 1
  fi
  echo "sanitize.sh: server_load counters byte-identical under TSan for --threads 1/4"
fi
