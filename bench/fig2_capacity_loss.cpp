//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces **Figure 2**: normalized requests-per-second over a server
/// restart without Jump-Start.  At time 0 the old process stops accepting
/// requests; the new process initializes and ramps as the JIT warms.  The
/// area above the curve is the *capacity loss* the paper quantifies.
///
/// Expected shape: a dead period during initialization, a long ramp while
/// code is interpreted/profiled, a knee once optimized code lands, peak
/// late in the window.
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace jumpstart;
using namespace jumpstart::bench;

int main(int argc, char **argv) {
  FigureFlags Flags = parseFigureFlags(argc, argv);
  std::printf("=== Figure 2: server capacity loss due to restart and "
              "warmup (no Jump-Start) ===\n");
  auto W = fleet::generateWorkload(standardSite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = figureServerConfig();
  auto Pool = makeCompilePool(Flags.Threads);
  Config.CompilePool = Pool.get();

  obs::Observability Obs;
  fleet::ServerSimParams P;
  P.DurationSeconds = 1500;
  P.OfferedRps = 340;
  P.Seed = 2;
  P.Obs = &Obs;
  P.RunLabel = "fig2";
  fleet::WarmupResult Res = fleet::runWarmup(*W, Traffic, Config, P);

  printSeries("  time(s)   normalized RPS (%)", Res.normalizedRps(), 30,
              100.0);

  std::printf("\ncapacity loss over the window: %.1f%% of ideal\n",
              100.0 * Res.CapacityLossFraction);
  std::printf("served area: %.1f%%; the paper's Figure 2 shows the same "
              "restart-dead-time + slow-ramp shape over ~25 min\n",
              100.0 * (1 - Res.CapacityLossFraction));
  std::printf("peak reached: %.0f%% of offered at t=%.0fs\n",
              100.0 * Res.normalizedRps().points().back().Value,
              Res.normalizedRps().points().back().TimeSec);
  return exportIfRequested(Obs, Flags.ExportPrefix);
}
