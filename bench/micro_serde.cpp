//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks (google-benchmark) for profile-package serialization:
/// the cost of the "share profile data, not machine code" design choice
/// (paper section III) is one serialize on the seeder and one deserialize
/// per consumer restart -- this harness measures both, plus package size
/// scaling.
///
//===----------------------------------------------------------------------===//

#include "profile/ProfilePackage.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace jumpstart;
using namespace jumpstart::profile;

namespace {

/// Builds a package with \p Funcs synthetic function profiles.
ProfilePackage makePackage(size_t Funcs, uint64_t Seed) {
  Rng R(Seed);
  ProfilePackage Pkg;
  Pkg.RepoFingerprint = 0x1234;
  for (uint32_t F = 0; F < Funcs; ++F) {
    FuncProfile P;
    P.Func = F;
    P.EntryCount = R.nextBelow(100000);
    P.BlockCounts.resize(4 + R.nextBelow(28));
    for (uint64_t &C : P.BlockCounts)
      C = R.nextBelow(100000);
    if (F % 3 == 0)
      P.CallTargets[2][F + 1] = R.nextBelow(5000);
    P.ParamTypes.resize(1 + R.nextBelow(3));
    for (auto &T : P.ParamTypes)
      T.observe(runtime::Type::Int);
    P.LoadTypes[5].observe(runtime::Type::Obj);
    Pkg.Funcs.push_back(std::move(P));
    Pkg.Opt.VasmBlockCounts[F].resize(8, R.nextBelow(1000));
    if (F + 1 < Funcs)
      Pkg.Opt.CallArcs[{F, F + 1}] = R.nextBelow(9999);
  }
  for (int I = 0; I < 200; ++I)
    Pkg.Opt.PropAccessCounts["K" + std::to_string(I) + "::p"] =
        R.nextBelow(10000);
  Pkg.Intermediate.FuncOrder.resize(Funcs);
  for (uint32_t F = 0; F < Funcs; ++F)
    Pkg.Intermediate.FuncOrder[F] = F;
  return Pkg;
}

void BM_PackageSerialize(benchmark::State &State) {
  ProfilePackage Pkg = makePackage(static_cast<size_t>(State.range(0)), 3);
  size_t Bytes = 0;
  for (auto _ : State) {
    std::vector<uint8_t> Blob = Pkg.serialize();
    Bytes = Blob.size();
    benchmark::DoNotOptimize(Blob.data());
  }
  State.counters["package_bytes"] = static_cast<double>(Bytes);
  State.SetBytesProcessed(static_cast<int64_t>(Bytes) *
                          State.iterations());
}
BENCHMARK(BM_PackageSerialize)->Arg(100)->Arg(1000)->Arg(5000);

void BM_PackageDeserialize(benchmark::State &State) {
  ProfilePackage Pkg = makePackage(static_cast<size_t>(State.range(0)), 3);
  std::vector<uint8_t> Blob = Pkg.serialize();
  for (auto _ : State) {
    ProfilePackage Out;
    bool Ok = ProfilePackage::deserialize(Blob, Out);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(static_cast<int64_t>(Blob.size()) *
                          State.iterations());
}
BENCHMARK(BM_PackageDeserialize)->Arg(100)->Arg(1000)->Arg(5000);

void BM_CorruptRejection(benchmark::State &State) {
  // Rejection speed matters: consumers probe packages during restart.
  ProfilePackage Pkg = makePackage(1000, 3);
  std::vector<uint8_t> Blob = Pkg.serialize();
  Blob[Blob.size() / 2] ^= 0x40;
  for (auto _ : State) {
    ProfilePackage Out;
    bool Ok = ProfilePackage::deserialize(Blob, Out);
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(BM_CorruptRejection);

} // namespace

BENCHMARK_MAIN();
