//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the figure-reproduction harnesses.
///
/// Calibration note (see EXPERIMENTS.md): the synthetic site is ~10^4x
/// smaller than the Facebook website, so JIT compile costs are scaled
/// *up* per bytecode to keep the ratio of (compile work) / (serving
/// capacity) in the regime the paper measures.  Virtual seconds therefore
/// correspond to paper minutes only in *shape*, not absolutely; every
/// harness prints the same curves/series the paper's figures plot.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BENCH_FIGURECOMMON_H
#define JUMPSTART_BENCH_FIGURECOMMON_H

#include "core/Consumer.h"
#include "core/Seeder.h"
#include "fleet/ServerSim.h"
#include "fleet/SteadyState.h"
#include "obs/Export.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace jumpstart::bench {

/// The standard evaluation site: big enough for warmup phenomenology,
/// small enough that each harness finishes in seconds.
inline fleet::WorkloadParams standardSite() {
  fleet::WorkloadParams P;
  P.NumHelpers = 700;
  P.NumClasses = 72;
  P.NumEndpoints = 40;
  P.NumUnits = 48;
  return P;
}

/// The standard server: 16 cores (the paper's Xeon D-1581), with compile
/// costs stretched so the JIT lifecycle spans the observation window.
inline vm::ServerConfig figureServerConfig() {
  vm::ServerConfig C;
  C.Cores = 16;
  C.JitWorkerCores = 3;
  // The profiling window (point A of Figure 1).
  C.Jit.ProfileRequestTarget = 40000;
  // Stretched compile costs (see file header).
  C.Jit.ProfileCompileCostPerBytecode = 800;
  C.Jit.LiveCompileCostPerBytecode = 12000;
  C.Jit.OptCompileCostPerBytecode = 25000;
  C.Jit.RelocateCostPerByte = 700;
  C.UnitLoadCost = 120000;
  return C;
}

/// Machine geometry for the steady-state figures, scaled down with the
/// synthetic site: the site's JITed code is ~1000x smaller than the
/// paper's ~500 MB, so cache/TLB reach shrinks proportionally to keep
/// the same pressure regime as the evaluation hardware.
inline sim::MachineConfig scaledMachine() {
  sim::MachineConfig M;
  M.L1I = sim::CacheConfig{16 * 1024, 64, 8};
  M.L1D = sim::CacheConfig{16 * 1024, 64, 8};
  M.Llc = sim::CacheConfig{256 * 1024, 64, 16};
  M.ITlbEntries = 8;
  M.ITlbWays = 4;
  M.DTlbEntries = 8;
  M.DTlbWays = 4;
  M.BtbSize = 512;
  M.BranchTableSize = 2048;
  return M;
}

/// Grows a seeder package for (region, bucket) on the standard site.
inline profile::ProfilePackage
growPackage(const fleet::Workload &W, const fleet::TrafficModel &Traffic,
            const vm::ServerConfig &Base, uint32_t Region = 0,
            uint32_t Bucket = 0, uint32_t Requests = 1200,
            uint64_t Seed = 12) {
  vm::ServerConfig SeederConfig = Base;
  SeederConfig.Jit.SeederInstrumentation = true;
  std::unique_ptr<vm::Server> Seeder = fleet::runSeeder(
      W, Traffic, SeederConfig, Region, Bucket, Requests, Seed);
  return Seeder->buildSeederPackage(Region, Bucket, /*SeederId=*/1);
}

/// Prints a time series as aligned rows, resampled to \p Points.
inline void printSeries(const char *Header, const TimeSeries &S,
                        size_t Points = 30, double Scale = 1.0,
                        const char *Fmt = "%10.1f  %12.3f\n") {
  std::printf("%s\n", Header);
  for (const TimePoint &Pt : S.resample(Points))
    std::printf(Fmt, Pt.TimeSec, Pt.Value * Scale);
}

/// Prints two aligned series (e.g. with/without Jump-Start).
inline void printSeriesPair(const char *Header, const TimeSeries &A,
                            const TimeSeries &B, size_t Points = 30,
                            double Scale = 1.0) {
  std::printf("%s\n", Header);
  auto PA = A.resample(Points);
  auto PB = B.resample(Points);
  for (size_t I = 0; I < PA.size() && I < PB.size(); ++I)
    std::printf("%10.1f  %12.3f  %12.3f\n", PA[I].TimeSec,
                PA[I].Value * Scale, PB[I].Value * Scale);
}

/// The command line every figure harness shares.
struct FigureFlags {
  /// `--export PREFIX`: dump observability next to the printed tables.
  const char *ExportPrefix = nullptr;
  /// `--threads N`: host compile-pool workers.  Wall-clock only -- the
  /// virtual cost model and every exported number are byte-identical for
  /// any value (ci/check.sh diffs the exports to enforce it).
  uint32_t Threads = 1;
};

/// Parses the shared flags.  Unknown or incomplete flags are a hard
/// error: a typo like `--exprot` must not silently run the harness
/// without its export.
inline FigureFlags parseFigureFlags(int argc, char **argv) {
  auto Usage = [&](const char *Bad) {
    std::fprintf(stderr,
                 "%s: bad flag \"%s\"\n"
                 "usage: %s [--export PREFIX] [--threads N]\n",
                 argv[0], Bad, argv[0]);
    std::exit(2);
  };
  FigureFlags F;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--export") == 0) {
      if (I + 1 >= argc)
        Usage(argv[I]);
      F.ExportPrefix = argv[++I];
    } else if (std::strcmp(argv[I], "--threads") == 0) {
      if (I + 1 >= argc)
        Usage(argv[I]);
      char *End = nullptr;
      unsigned long V = std::strtoul(argv[I + 1], &End, 10);
      if (End == argv[I + 1] || *End != '\0')
        Usage(argv[I + 1]);
      F.Threads = static_cast<uint32_t>(V);
      ++I;
    } else {
      Usage(argv[I]);
    }
  }
  return F;
}

/// The host compile pool for `--threads` (null for N <= 1: the serial
/// path needs no pool).
inline std::unique_ptr<support::ThreadPool>
makeCompilePool(uint32_t Threads) {
  if (Threads <= 1)
    return nullptr;
  return std::make_unique<support::ThreadPool>(Threads);
}

/// Writes PREFIX.metrics.jsonl / .trace.jsonl / .chrome.json when a
/// prefix was given.  \returns the harness exit code contribution (0 ok).
inline int exportIfRequested(const obs::Observability &Obs,
                             const char *Prefix) {
  if (!Prefix)
    return 0;
  support::Status S = obs::exportAll(Obs, Prefix);
  if (!S.ok()) {
    std::fprintf(stderr, "export failed: %s\n", S.str().c_str());
    return 1;
  }
  std::printf("\nexported %s.metrics.jsonl / .trace.jsonl / .chrome.json "
              "(%zu metrics, %zu spans)\n",
              Prefix, Obs.Metrics.numMetrics(), Obs.Trace.numSpans());
  return 0;
}

} // namespace jumpstart::bench

#endif // JUMPSTART_BENCH_FIGURECOMMON_H
