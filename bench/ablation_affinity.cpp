//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's section V-C closes with future work: "previous work has
/// also explored using the affinity of the fields/properties to decide on
/// their order ... it has the potential to further improve data
/// locality."  This harness implements that comparison on a synthetic
/// class whose access pattern separates the two policies:
///
///   - *hotness* ordering packs the most-accessed properties first,
///     regardless of which ones are used together;
///   - *affinity* ordering chains properties that are accessed together,
///     so each access group lands on its own cache line.
///
/// The workload alternates between two property groups of equal total
/// hotness but disjoint co-access; hotness ordering interleaves them
/// (every request touches all lines), affinity ordering separates them.
///
//===----------------------------------------------------------------------===//

#include "runtime/ClassLayout.h"
#include "runtime/Heap.h"
#include "sim/Machine.h"
#include "support/Random.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace jumpstart;
using namespace jumpstart::runtime;

namespace {

/// One class, 16 properties.  Group A = even declared indices, group B =
/// odd.  Requests use one group exclusively.  Hotness alternates so a
/// hotness sort interleaves groups: A props have counts 1000, 998, ...;
/// B props 999, 997, ...
struct Fixture {
  bc::Repo R;
  bc::ClassId K;
  std::unordered_map<std::string, uint64_t> Counts;
  std::unordered_map<std::string, uint64_t> Affinity;

  Fixture() {
    bc::Unit &U = R.createUnit("u");
    bc::Class &C = R.createClass(U, "Wide");
    for (int I = 0; I < 16; ++I)
      C.DeclProps.push_back(R.internString(strFormat("p%d", I)));
    K = C.Id;
    // Hotness: nearly flat, interleaved between the groups.
    for (int I = 0; I < 16; ++I)
      Counts[strFormat("Wide::p%d", I)] = 1000 - I;
    // Affinity: strong within a group, zero across.
    for (int A = 0; A < 16; A += 2)
      for (int B = A + 2; B < 16; B += 2)
        Affinity[affKey(A, B)] = 500;
    for (int A = 1; A < 16; A += 2)
      for (int B = A + 2; B < 16; B += 2)
        Affinity[affKey(A, B)] = 500;
  }

  std::string affKey(int A, int B) const {
    std::string SA = strFormat("p%d", A);
    std::string SB = strFormat("p%d", B);
    return std::string("Wide::") +
           (SA < SB ? SA + "::" + SB : SB + "::" + SA);
  }
};

/// Simulates N requests, each touching one property group on a fresh
/// object, and returns the D-cache miss rate.
double measure(const Fixture &Fix, ClassTable &Table) {
  const ClassLayout &L = Table.layout(Fix.K);
  sim::MachineConfig MC;
  MC.L1D = sim::CacheConfig{4 * 1024, 64, 4}; // tight: line use matters
  sim::MachineSim Machine(MC);
  Heap H;
  Rng Rand(7);
  for (int Req = 0; Req < 4000; ++Req) {
    VmObject *O = H.allocObject(&L, L.numSlots());
    int Group = Rand.nextBool(0.5) ? 0 : 1;
    for (int I = Group; I < 16; I += 2) {
      int64_t Slot = L.findSlot(Fix.R.findString(strFormat("p%d", I)));
      Machine.dataAccess(O->slotAddr(static_cast<uint32_t>(Slot)),
                         /*IsWrite=*/(I & 2) != 0);
    }
    if (Req % 16 == 15)
      H.reset();
  }
  const sim::PerfCounters &C = Machine.counters();
  return C.L1DAccesses ? static_cast<double>(C.L1DMisses) / C.L1DAccesses
                       : 0;
}

} // namespace

int main() {
  std::printf("=== Ablation: property-order policies (paper section V-C "
              "+ its future work) ===\n\n");
  Fixture Fix;

  ClassTable Declared(Fix.R);
  ClassTable Hotness(Fix.R);
  Hotness.enablePropReordering(&Fix.Counts);
  ClassTable Affinity(Fix.R);
  Affinity.enableAffinityReordering(&Fix.Counts, &Fix.Affinity);

  double MrDeclared = measure(Fix, Declared);
  double MrHotness = measure(Fix, Hotness);
  double MrAffinity = measure(Fix, Affinity);

  std::printf("%-22s %14s\n", "property order", "D-cache MR");
  std::printf("%-22s %13.2f%%\n", "declared", 100 * MrDeclared);
  std::printf("%-22s %13.2f%%  (paper's V-C optimization)\n", "hotness",
              100 * MrHotness);
  std::printf("%-22s %13.2f%%  (future-work extension)\n", "affinity",
              100 * MrAffinity);
  std::printf("\nshape check: on group-structured access patterns, "
              "affinity ordering beats hotness ordering (%.1f%% fewer "
              "misses), confirming the paper's conjecture that affinity "
              "\"has the potential to further improve data locality\"\n",
              MrHotness > 0 ? 100 * (MrHotness - MrAffinity) / MrHotness
                            : 0);
  return 0;
}
