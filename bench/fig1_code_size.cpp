//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces **Figure 1**: JITed code size over time for a server running
/// without Jump-Start, with the paper's labelled lifecycle points:
///
///   A -- the JIT stops profiling and starts tier-2 compilation;
///   B..C -- optimized code is relocated into the code cache in
///           function-sorted order;
///   C -- all optimized code available (~90% of peak performance);
///   D -- JITing ceases (live-code tail complete / area full).
///
/// Expected shape: code grows during profiling, keeps growing while
/// optimizing into temporary buffers (A..B), the relocation step
/// completes at C, then a long shallow live-code tail until D.
///
/// One known divergence from the paper's curve: the paper reports a
/// *reduced* production rate between A and B.  On our ~1000x smaller
/// site, code discovery saturates well before A (every hot function is
/// already profiled), so the pre-A curve flattens early and the A..B
/// optimized burst is comparatively steep.  The lifecycle points and the
/// B..C / C..D structure match.
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace jumpstart;
using namespace jumpstart::bench;

int main(int argc, char **argv) {
  FigureFlags Flags = parseFigureFlags(argc, argv);
  std::printf("=== Figure 1: JITed code size over time (no Jump-Start) "
              "===\n");
  auto W = fleet::generateWorkload(standardSite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = figureServerConfig();
  auto Pool = makeCompilePool(Flags.Threads);
  Config.CompilePool = Pool.get();

  obs::Observability Obs;
  fleet::ServerSimParams P;
  P.DurationSeconds = 1500; // the paper's 30-minute x-axis, scaled
  P.OfferedRps = 340;
  P.Seed = 1;
  P.Obs = &Obs;
  P.RunLabel = "fig1";
  fleet::WarmupResult Res = fleet::runWarmup(*W, Traffic, Config, P);

  printSeries("  time(s)      code (KB)", Res.codeBytes(), 40,
              1.0 / 1024.0);

  std::printf("\nlifecycle points (virtual seconds):\n");
  std::printf("  serve start : %7.0f\n", Res.Phases.ServeStart);
  std::printf("  A (profiling ends)    : %7.0f\n",
              Res.Phases.ProfilingEnd);
  std::printf("  B (relocation starts) : %7.0f\n",
              Res.Phases.RelocationStart);
  std::printf("  C (relocation done)   : %7.0f\n",
              Res.Phases.RelocationEnd);
  std::printf("  D (JITing ceased)     : %7.0f\n",
              Res.Phases.JitingStopped);
  std::printf("\nfinal code size: %s (paper: ~500 MB at Facebook "
              "scale)\n",
              formatBytes(static_cast<uint64_t>(
                              Res.codeBytes().points().back().Value))
                  .c_str());
  std::printf("paper shape check: A < B <= C < D, distinct B..C "
              "relocation step, long shallow tail to D (see the file "
              "header for the one divergence in the A..B rate)\n");
  return exportIfRequested(Obs, Flags.ExportPrefix);
}
