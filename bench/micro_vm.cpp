//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks (google-benchmark) for the VM substrate itself:
/// interpreter dispatch throughput, frontend compilation speed, and the
/// tier-2 pipeline (region selection + lowering + layout) per function --
/// the costs a downstream user of the library actually pays.
///
//===----------------------------------------------------------------------===//

#include "fleet/WorkloadGen.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "jit/Jit.h"
#include "jit/Recorders.h"
#include "jit/Lower.h"
#include "jit/ParallelRetranslate.h"
#include "jit/TransLayout.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace jumpstart;

namespace {

const char *kHotLoop = "function main($n) {"
                       "  $acc = 0; $i = 0;"
                       "  while ($i < $n) {"
                       "    $acc = ($acc * 3 + $i) % 65537;"
                       "    $i = $i + 1;"
                       "  }"
                       "  return $acc;"
                       "}";

void BM_InterpreterDispatch(benchmark::State &State) {
  bc::Repo Repo;
  auto Errors = frontend::compileUnit(
      Repo, runtime::BuiltinTable::standard(), "b.hack", kHotLoop);
  if (!Errors.empty())
    State.SkipWithError("compile failed");
  runtime::ClassTable Classes(Repo);
  runtime::Heap Heap;
  interp::Interpreter Interp(Repo, Classes, Heap,
                             runtime::BuiltinTable::standard());
  bc::FuncId Main = Repo.findFunction("main");
  uint64_t Steps = 0;
  for (auto _ : State) {
    interp::InterpResult R = Interp.call(
        Main, {runtime::Value::integer(State.range(0))});
    Steps += R.Steps;
    Heap.reset();
    benchmark::DoNotOptimize(R.Ret);
  }
  State.counters["bytecodes_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterDispatch)->Arg(1000)->Arg(10000);

void BM_InterpreterWithProfilingHooks(benchmark::State &State) {
  bc::Repo Repo;
  auto Errors = frontend::compileUnit(
      Repo, runtime::BuiltinTable::standard(), "b.hack", kHotLoop);
  if (!Errors.empty())
    State.SkipWithError("compile failed");
  runtime::ClassTable Classes(Repo);
  runtime::Heap Heap;
  interp::Interpreter Interp(Repo, Classes, Heap,
                             runtime::BuiltinTable::standard());
  jit::Jit J(Repo, jit::JitConfig());
  jit::JitProfilingHooks Hooks(J);
  Interp.setCallbacks(&Hooks);
  bc::FuncId Main = Repo.findFunction("main");
  for (auto _ : State) {
    interp::InterpResult R = Interp.call(
        Main, {runtime::Value::integer(State.range(0))});
    Heap.reset();
    benchmark::DoNotOptimize(R.Ret);
  }
}
BENCHMARK(BM_InterpreterWithProfilingHooks)->Arg(1000);

void BM_FrontendCompile(benchmark::State &State) {
  // Compile the synthetic site's sources from scratch each iteration.
  fleet::WorkloadParams P;
  P.NumHelpers = static_cast<uint32_t>(State.range(0));
  P.NumClasses = P.NumHelpers / 8;
  P.NumEndpoints = 16;
  P.NumUnits = 12;
  auto W = fleet::generateWorkload(P);
  std::vector<frontend::SourceFile> Files;
  for (const auto &[Name, Source] : W->Sources)
    Files.push_back({Name, Source});
  size_t Bytecodes = 0;
  for (auto _ : State) {
    bc::Repo Repo;
    auto Errors = frontend::compileProgram(
        Repo, runtime::BuiltinTable::standard(), Files);
    if (!Errors.empty())
      State.SkipWithError("compile failed");
    Bytecodes = Repo.totalBytecode();
    benchmark::DoNotOptimize(Repo.numFuncs());
  }
  State.counters["bytecodes"] = static_cast<double>(Bytecodes);
}
BENCHMARK(BM_FrontendCompile)->Arg(200)->Arg(800);

void BM_Tier2Pipeline(benchmark::State &State) {
  // Region selection + lowering + Ext-TSP layout for one mid-size
  // function with a synthetic profile.
  bc::Repo Repo;
  std::string Src = "function callee($x) { return $x * 2 + 1; }"
                    "function main($n) { $a = 0; $i = 0;"
                    "  while ($i < 10) {"
                    "    if ($i % 2 == 0) { $a = $a + callee($i); }"
                    "    else { $a = $a - callee($i); }"
                    "    $i = $i + 1; }"
                    "  return $a; }";
  auto Errors = frontend::compileUnit(
      Repo, runtime::BuiltinTable::standard(), "b.hack", Src);
  if (!Errors.empty())
    State.SkipWithError("compile failed");
  bc::FuncId Main = Repo.findFunction("main");
  bc::BlockCache Blocks(Repo);
  profile::ProfileStore Store;
  for (bc::FuncId F : {Main, Repo.findFunction("callee")}) {
    profile::FuncProfile &P = Store.getOrCreate(F.raw());
    P.EntryCount = 1000;
    P.BlockCounts.assign(Blocks.blocks(F).numBlocks(), 1000);
  }
  for (auto _ : State) {
    jit::RegionDescriptor Region =
        jit::selectRegion(Repo, Blocks, Store, Main);
    jit::LowerOptions Opts;
    Opts.Kind = jit::TransKind::Optimized;
    auto Unit =
        lowerFunction(Repo, Blocks, Main, &Store, &Region, Opts);
    jit::UnitLayout Layout = layoutUnit(*Unit, jit::LayoutOptions());
    benchmark::DoNotOptimize(Layout.HotOrder.data());
  }
}
BENCHMARK(BM_Tier2Pipeline);

void BM_RetranslateAll(benchmark::State &State) {
  // Full retranslate-all over a profiled site, lowered on Arg(0) host
  // workers.  The output is byte-identical for every arg (the pool only
  // moves the pure lowering work); wall-clock is what this measures.
  fleet::WorkloadParams P;
  P.NumHelpers = 400;
  P.NumClasses = 48;
  P.NumEndpoints = 24;
  P.NumUnits = 16;
  auto W = fleet::generateWorkload(P);
  uint32_t Workers = static_cast<uint32_t>(State.range(0));
  std::unique_ptr<support::ThreadPool> Pool;
  if (Workers > 1)
    Pool = std::make_unique<support::ThreadPool>(Workers);
  size_t Placed = 0;
  for (auto _ : State) {
    State.PauseTiming();
    jit::Jit J(W->Repo, jit::JitConfig());
    for (uint32_t F = 0; F < W->Repo.numFuncs(); ++F) {
      if (W->Repo.func(bc::FuncId(F)).Code.empty())
        continue;
      profile::FuncProfile &FP = J.profileStore().getOrCreate(F);
      FP.EntryCount = 1000;
      FP.BlockCounts.assign(
          J.blockCache().blocks(bc::FuncId(F)).numBlocks(), 1000);
    }
    State.ResumeTiming();
    jit::ParallelRetranslate Driver(J, Pool.get());
    jit::RetranslateStats Stats = Driver.run(1e12);
    Placed = Stats.TranslationsPlaced;
    benchmark::DoNotOptimize(Placed);
  }
  State.counters["translations"] = static_cast<double>(Placed);
}
BENCHMARK(BM_RetranslateAll)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
