//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The design-choice ablation behind paper **section III**: share profile
/// data (Jump-Start) or share machine code (ShareJIT-style)?
///
/// Sharing machine code wins more warmup (no recompilation at all), but
/// the code must be compiled under sharing constraints -- no inlining of
/// user-defined functions, no embedded absolute addresses -- which
/// "can significantly degrade steady-state performance" (section III,
/// reason 1).  This harness measures both sides of that trade-off.
///
/// Expected shape: ShareJIT's consumer init is shorter than Jump-Start's;
/// its steady-state throughput is clearly worse than Jump-Start's (and
/// at or below plain no-Jump-Start, which at least compiles with full
/// optimizations).
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::bench;

int main() {
  std::printf("=== Ablation: share profile data (Jump-Start) vs share "
              "machine code (ShareJIT-style) ===\n");
  auto W = fleet::generateWorkload(standardSite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = figureServerConfig();
  Config.Jit.ProfileRequestTarget = 400;

  // One package serves both consumers; the ShareJIT fleet would compile
  // its shared code on the seeder under sharing constraints, which the
  // consumer-side ShareJitMode flag reproduces.
  profile::ProfilePackage Pkg = growPackage(*W, Traffic, Config);

  struct Variant {
    const char *Name;
    vm::InitStats Init;
    double CyclesPerRequest = 0;
  };
  Variant JumpStart{"jump-start (share profile data)", {}, 0};
  Variant ShareJit{"sharejit (share machine code)", {}, 0};
  Variant NoShare{"no sharing (self-warmed)", {}, 0};

  fleet::SteadyStateParams P;
  P.Requests = 400;
  P.WarmupRequests = 120;
  P.Machine = scaledMachine();

  {
    vm::Server S(W->Repo, Config, 91);
    alwaysAssert(S.installPackage(Pkg).ok(), "package rejected");
    JumpStart.Init = S.startup();
    JumpStart.CyclesPerRequest =
        measureSteadyState(*W, Traffic, S, P).CyclesPerRequest;
  }
  {
    vm::ServerConfig SJ = Config;
    SJ.Jit.ShareJitMode = true;
    vm::Server S(W->Repo, SJ, 91);
    alwaysAssert(S.installPackage(Pkg).ok(), "package rejected");
    ShareJit.Init = S.startup();
    ShareJit.CyclesPerRequest =
        measureSteadyState(*W, Traffic, S, P).CyclesPerRequest;
  }
  {
    auto S = fleet::runSeeder(*W, Traffic, Config, 0, 0, 1200, 31);
    NoShare.CyclesPerRequest =
        measureSteadyState(*W, Traffic, *S, P).CyclesPerRequest;
  }

  std::printf("\n%-36s %14s %16s %12s\n", "variant", "consumer init",
              "cycles/request", "vs jumpstart");
  for (const Variant *V : {&JumpStart, &ShareJit, &NoShare}) {
    std::printf("%-36s %12.2fs %16.0f %+11.1f%%\n", V->Name,
                V->Init.TotalSeconds, V->CyclesPerRequest,
                100.0 * (V->CyclesPerRequest /
                             JumpStart.CyclesPerRequest -
                         1.0));
  }
  std::printf("\npaper shape check (section III): sharing machine code "
              "boots faster but runs slower in steady state -- the "
              "trade-off that made HHVM share profile data instead\n");
  return 0;
}
