//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces **Figure 5**: steady-state speedup and micro-architectural
/// miss reductions of Jump-Start (all section V optimizations on) over
/// running without Jump-Start.
///
/// Paper results (shape to match -- all reductions positive, I-TLB
/// largest, D-cache smallest):
///   speedup ~5.4%, branch MR -6.8%, I-cache MR -6.2%, I-TLB MR -20.8%,
///   D-cache MR -1.4%, D-TLB MR -12.1%, LLC MR -3.5%.
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::bench;

int main(int argc, char **argv) {
  FigureFlags Flags = parseFigureFlags(argc, argv);
  std::unique_ptr<support::ThreadPool> Pool = makeCompilePool(Flags.Threads);
  std::printf("=== Figure 5: steady-state impact of Jump-Start ===\n");
  auto W = fleet::generateWorkload(standardSite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = figureServerConfig();
  Config.Jit.ProfileRequestTarget = 400; // fast maturity for measurement

  // Seeder (C2): collect the package.
  profile::ProfilePackage Pkg = growPackage(*W, Traffic, Config);

  // Jump-Start consumer with every section V optimization enabled.
  vm::ServerConfig JsConfig = Config;
  JsConfig.Jit.UseVasmCounters = true;
  JsConfig.Jit.UsePackageFuncOrder = true;
  JsConfig.ReorderProperties = true;
  JsConfig.CompilePool = Pool.get();
  vm::Server Js(W->Repo, JsConfig, 77);
  support::Status Installed = Js.installPackage(Pkg);
  alwaysAssert(Installed.ok(), "package rejected");
  Js.startup();

  // No Jump-Start: the server warms itself (profiles its own traffic,
  // retranslate-all with tier-1-derived weights and tier-1 call graph).
  std::unique_ptr<vm::Server> NoJs =
      fleet::runSeeder(*W, Traffic, Config, 0, 0, /*Requests=*/1200,
                       /*Seed=*/31);

  fleet::SteadyStateParams P;
  P.Requests = 800;
  P.WarmupRequests = 150;
  P.Machine = scaledMachine();
  fleet::SteadyStateResult RJs = measureSteadyState(*W, Traffic, Js, P);
  fleet::SteadyStateResult RNo = measureSteadyState(*W, Traffic, *NoJs, P);

  auto Reduction = [](double No, double JsRate) {
    return No > 0 ? 100.0 * (No - JsRate) / No : 0.0;
  };
  double Speedup = 100.0 * (RNo.CyclesPerRequest / RJs.CyclesPerRequest -
                            1.0);

  std::printf("\n%-28s %10s %10s\n", "metric", "this repro", "paper");
  std::printf("%-28s %9.1f%% %9.1f%%\n", "throughput speedup", Speedup,
              5.4);
  std::printf("%-28s %9.1f%% %9.1f%%\n", "branch miss reduction",
              Reduction(RNo.BranchMissRate, RJs.BranchMissRate), 6.8);
  std::printf("%-28s %9.1f%% %9.1f%%\n", "I-cache miss reduction",
              Reduction(RNo.L1IMissRate, RJs.L1IMissRate), 6.2);
  std::printf("%-28s %9.1f%% %9.1f%%\n", "I-TLB miss reduction",
              Reduction(RNo.ITlbMissRate, RJs.ITlbMissRate), 20.8);
  std::printf("%-28s %9.1f%% %9.1f%%\n", "D-cache miss reduction",
              Reduction(RNo.L1DMissRate, RJs.L1DMissRate), 1.4);
  std::printf("%-28s %9.1f%% %9.1f%%\n", "D-TLB miss reduction",
              Reduction(RNo.DTlbMissRate, RJs.DTlbMissRate), 12.1);
  std::printf("%-28s %9.1f%% %9.1f%%\n", "LLC miss reduction",
              Reduction(RNo.LlcMissRate, RJs.LlcMissRate), 3.5);

  std::printf("\nraw counters:\n  JS : %s\n  NoJ: %s\n",
              strFormat("cycles/req=%.0f brMR=%.4f l1iMR=%.4f "
                        "itlbMR=%.4f l1dMR=%.4f dtlbMR=%.4f llcMR=%.4f",
                        RJs.CyclesPerRequest, RJs.BranchMissRate,
                        RJs.L1IMissRate, RJs.ITlbMissRate, RJs.L1DMissRate,
                        RJs.DTlbMissRate, RJs.LlcMissRate)
                  .c_str(),
              strFormat("cycles/req=%.0f brMR=%.4f l1iMR=%.4f "
                        "itlbMR=%.4f l1dMR=%.4f dtlbMR=%.4f llcMR=%.4f",
                        RNo.CyclesPerRequest, RNo.BranchMissRate,
                        RNo.L1IMissRate, RNo.ITlbMissRate, RNo.L1DMissRate,
                        RNo.DTlbMissRate, RNo.LlcMissRate)
                  .c_str());

  // Export: one gauge per counter per mode, plus the headline speedup
  // (tests/golden/fig5.metrics.jsonl byte-diffs this).
  obs::Observability Obs;
  auto Record = [&](const char *Mode, const fleet::SteadyStateResult &R) {
    obs::LabelSet L{{"mode", Mode}};
    Obs.Metrics.gauge("fig5.cycles_per_request", L).set(R.CyclesPerRequest);
    Obs.Metrics.gauge("fig5.branch_miss_rate", L).set(R.BranchMissRate);
    Obs.Metrics.gauge("fig5.l1i_miss_rate", L).set(R.L1IMissRate);
    Obs.Metrics.gauge("fig5.itlb_miss_rate", L).set(R.ITlbMissRate);
    Obs.Metrics.gauge("fig5.l1d_miss_rate", L).set(R.L1DMissRate);
    Obs.Metrics.gauge("fig5.dtlb_miss_rate", L).set(R.DTlbMissRate);
    Obs.Metrics.gauge("fig5.llc_miss_rate", L).set(R.LlcMissRate);
  };
  Record("jumpstart", RJs);
  Record("nojumpstart", RNo);
  Obs.Metrics.gauge("fig5.speedup_percent").set(Speedup);
  return exportIfRequested(Obs, Flags.ExportPrefix);
}
