//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks (google-benchmark) for the layout algorithms: Ext-TSP
/// solve time and score quality vs original order, and C3 vs
/// Pettis-Hansen vs original on synthetic call graphs -- the ablation
/// benches for DESIGN.md's layout design choices.
///
//===----------------------------------------------------------------------===//

#include "layout/ExtTsp.h"
#include "layout/FunctionSort.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <numeric>

using namespace jumpstart;
using namespace jumpstart::layout;

namespace {

Cfg makeCfg(size_t Blocks, uint64_t Seed) {
  Rng R(Seed);
  Cfg G;
  for (size_t I = 0; I < Blocks; ++I)
    G.addBlock(8 + static_cast<uint32_t>(R.nextBelow(56)),
               R.nextBelow(1000));
  for (size_t I = 0; I + 1 < Blocks; ++I)
    G.addEdge(static_cast<uint32_t>(I), static_cast<uint32_t>(I + 1),
              1 + R.nextBelow(500));
  for (size_t I = 0; I < Blocks; ++I) {
    uint32_t A = static_cast<uint32_t>(R.nextBelow(Blocks));
    uint32_t B = static_cast<uint32_t>(R.nextBelow(Blocks));
    if (A != B)
      G.addEdge(A, B, 1 + R.nextBelow(300));
  }
  return G;
}

CallGraph makeCallGraph(size_t Funcs, uint64_t Seed) {
  Rng R(Seed);
  CallGraph G;
  for (uint32_t I = 0; I < Funcs; ++I)
    G.setNode(I, 64 + static_cast<uint32_t>(R.nextBelow(512)),
              R.nextBelow(10000));
  for (size_t E = 0; E < Funcs * 4; ++E) {
    uint32_t A = static_cast<uint32_t>(R.nextBelow(Funcs));
    uint32_t B = static_cast<uint32_t>(R.nextBelow(Funcs));
    if (A != B)
      G.addArc(A, B, 1 + R.nextBelow(2000));
  }
  return G;
}

void BM_ExtTspSolve(benchmark::State &State) {
  Cfg G = makeCfg(static_cast<size_t>(State.range(0)), 42);
  for (auto _ : State) {
    auto Order = extTspOrder(G);
    benchmark::DoNotOptimize(Order.data());
  }
  // Report the quality improvement alongside the timing.
  std::vector<uint32_t> Original(G.numBlocks());
  std::iota(Original.begin(), Original.end(), 0u);
  double Base = extTspScore(G, Original);
  double Opt = extTspScore(G, extTspOrder(G));
  State.counters["score_gain_pct"] =
      Base > 0 ? 100.0 * (Opt - Base) / Base : 0;
}
BENCHMARK(BM_ExtTspSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_C3Solve(benchmark::State &State) {
  CallGraph G = makeCallGraph(static_cast<size_t>(State.range(0)), 7);
  for (auto _ : State) {
    auto Order = c3Order(G);
    benchmark::DoNotOptimize(Order.data());
  }
  double DistC3 = weightedCallDistance(G, c3Order(G));
  double DistOrig = weightedCallDistance(G, originalOrder(G));
  State.counters["dist_vs_orig_pct"] =
      DistOrig > 0 ? 100.0 * DistC3 / DistOrig : 0;
}
BENCHMARK(BM_C3Solve)->Arg(100)->Arg(500)->Arg(2000);

void BM_PettisHansenSolve(benchmark::State &State) {
  CallGraph G = makeCallGraph(static_cast<size_t>(State.range(0)), 7);
  for (auto _ : State) {
    auto Order = pettisHansenOrder(G);
    benchmark::DoNotOptimize(Order.data());
  }
  double DistPh = weightedCallDistance(G, pettisHansenOrder(G));
  double DistOrig = weightedCallDistance(G, originalOrder(G));
  State.counters["dist_vs_orig_pct"] =
      DistOrig > 0 ? 100.0 * DistPh / DistOrig : 0;
}
BENCHMARK(BM_PettisHansenSolve)->Arg(100)->Arg(500);

} // namespace

BENCHMARK_MAIN();
