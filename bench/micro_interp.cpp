//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fast-vs-legacy interpreter engine benchmark.
///
/// Drives both engines over the same request mix (dispatch-heavy loops,
/// calls, string constants, dict lookups, property/method sites) and
/// reports requests/sec, interpreted instructions/sec and host
/// allocations per request for each, plus the fast:legacy ratios.  The
/// checked-in BENCH_interp.json is a snapshot of this harness's `--json`
/// output; ci/check.sh re-runs `--quick` and fails if allocs/request
/// regress against that snapshot.
///
/// Wall-clock numbers vary with the host; every counter in `--counters`
/// output (steps, faults, allocations, inline-cache hits) is
/// deterministic and byte-compared across runs by the CI perf smoke.
///
//===----------------------------------------------------------------------===//

#include "StatsRunner.h"
#include "analysis/WholeProgram.h"
#include "core/Consumer.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "jit/Jit.h"
#include "runtime/ValueOps.h"
#include "support/StringUtil.h"
#include "vm/Server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace jumpstart;

namespace {

/// The benchmark program: each endpoint stresses one part of the engine,
/// and the request mix cycles through all of them.  Weighted toward the
/// costs the fast engine removes -- frame vectors (deep call chains),
/// string materialization, dict probes, property/method dispatch --
/// while endpoint0 keeps pure dispatch arithmetic in the mix.
const char *kSource =
    // Pure dispatch: tight arithmetic loop, no allocation.
    "function endpoint0($n) {"
    "  $acc = 0; $i = 0;"
    "  while ($i < 400) {"
    "    $acc = ($acc * 3 + $i + $n) % 65537;"
    "    $i = $i + 1;"
    "  }"
    "  return $acc;"
    "}"
    // Call-heavy: every iteration pays two frames (legacy: 4 vectors).
    "function leafA($x) { return $x * 2 + 1; }"
    "function leafB($x) { return leafA($x) + leafA($x + 1); }"
    "function endpoint1($n) {"
    "  $t = 0; $i = 0;"
    "  while ($i < 120) { $t = $t + leafB($i + $n % 7); $i = $i + 1; }"
    "  return $t;"
    "}"
    // String constants: legacy allocates a VmString per execution.
    "function endpoint2($n) {"
    "  $t = 0; $i = 0;"
    "  while ($i < 100) {"
    "    $t = $t + strlen(\"alpha\") + strlen(\"beta-longer-constant\")"
    "       + strlen(\"gamma-const\") + strlen(\"delta-string-constant-x\");"
    "    $i = $i + 1;"
    "  }"
    "  return $t + $n % 3;"
    "}"
    // Dict workload: build once, then probe far past the index threshold.
    "function endpoint3($n) {"
    "  $d = dict[]; $i = 0;"
    "  while ($i < 24) { $d[$i * 7 % 31] = $i; $i = $i + 1; }"
    "  $t = 0; $j = 0;"
    "  while ($j < 80) { $t = $t + $d[$j * 7 % 31 % 31]; $j = $j + 1; }"
    "  return $t + $n % 5;"
    "}"
    // Property/method sites: the inline-cache workload.  The class has a
    // realistic handful of properties and methods so uncached lookups
    // pay a real scan; the hot sites touch the last-declared ones.
    "class Counter {"
    "  prop $a; prop $b; prop $c; prop $d; prop $e; prop $f; prop $g;"
    "  prop $v;"
    "  method m0() { return 0; } method m1() { return 1; }"
    "  method m2() { return 2; } method m3() { return 3; }"
    "  method bump($d) { $this->v = $this->v + $d; return $this->v; }"
    "  method scale($k) { return $this->v * $k + $this->a; }"
    "}"
    "function endpoint4($n) {"
    "  $c = new Counter(); $c->v = 0; $c->a = 3; $i = 0; $t = 0;"
    "  while ($i < 90) {"
    "    $t = $t + $c->bump($i % 5) + $c->scale(2);"
    "    $i = $i + 1;"
    "  }"
    "  return $t + $n % 2;"
    "}";

constexpr uint32_t kNumEndpoints = 5;

/// Request cycle, weighted toward the call/string/property endpoints the
/// fast engine targets (the paper's workload is dominated by calls and
/// member access, not straight-line arithmetic); the arithmetic and dict
/// endpoints stay in the mix as the honest tail.
constexpr uint32_t kMix[] = {0, 1, 2, 4, 3, 1, 2, 4};
constexpr uint32_t kMixLen = sizeof(kMix) / sizeof(kMix[0]);

struct EngineResult {
  std::string Name;
  uint64_t Requests = 0;
  double Seconds = 0;
  uint64_t Steps = 0;
  uint64_t Allocs = 0;
  uint64_t Faults = 0;
  uint64_t ICHits = 0;
  uint64_t ICMisses = 0;

  double requestsPerSec() const { return Requests / Seconds; }
  double instrsPerSec() const { return Steps / Seconds; }
  double allocsPerRequest() const {
    return static_cast<double>(Allocs) / Requests;
  }
  double stepsPerRequest() const {
    return static_cast<double>(Steps) / Requests;
  }
};

/// When >= 0, every request hits that one endpoint (per-endpoint
/// breakdown mode, `--endpoint N`).
int OnlyEndpoint = -1;

/// One engine's VM instance plus the endpoint ids it serves.
struct EngineState {
  runtime::ClassTable Classes;
  runtime::Heap Heap;
  interp::Interpreter Interp;
  std::vector<bc::FuncId> Endpoints;

  EngineState(const bc::Repo &Repo, interp::InterpEngine Engine)
      : Classes(Repo),
        Interp(Repo, Classes, Heap, runtime::BuiltinTable::standard(),
               [Engine] {
                 interp::InterpOptions O;
                 O.Engine = Engine;
                 return O;
               }()) {
    for (uint32_t E = 0; E < kNumEndpoints; ++E) {
      bc::FuncId F = Repo.findFunction(strFormat("endpoint%u", E));
      if (!F.valid()) {
        std::fprintf(stderr, "missing endpoint%u\n", E);
        std::exit(1);
      }
      Endpoints.push_back(F);
    }
  }

  interp::InterpResult serve(uint32_t Rq) {
    Args[0] = runtime::Value::integer(static_cast<int64_t>(Rq * 37 % 1000));
    bc::FuncId Target = OnlyEndpoint >= 0
                            ? Endpoints[static_cast<uint32_t>(OnlyEndpoint)]
                            : Endpoints[kMix[Rq % kMixLen]];
    interp::InterpResult R = Interp.call(Target, Args);
    Heap.reset();
    return R;
  }

  // Reused across requests: argument marshalling is harness cost, not
  // engine cost, and must not dilute the engine comparison.
  std::vector<runtime::Value> Args{runtime::Value::null()};
};

/// One timed pass of \p Requests requests.  The first pass per engine
/// also accumulates the deterministic counters (identical every pass, so
/// once is enough).
double timedPass(EngineState &S, uint32_t Requests, EngineResult *Counters) {
  uint64_t AllocsBefore = S.Heap.hostAllocs();
  auto T0 = std::chrono::steady_clock::now();
  if (Counters) {
    for (uint32_t Rq = 0; Rq < Requests; ++Rq) {
      interp::InterpResult Res = S.serve(Rq);
      Counters->Steps += Res.Steps;
      Counters->Faults += Res.Faults;
    }
  } else {
    for (uint32_t Rq = 0; Rq < Requests; ++Rq)
      S.serve(Rq);
  }
  auto T1 = std::chrono::steady_clock::now();
  if (Counters)
    Counters->Allocs = S.Heap.hostAllocs() - AllocsBefore;
  double Sec = std::chrono::duration<double>(T1 - T0).count();
  return Sec > 0 ? Sec : 1e-9;
}

/// Benchmarks both engines over the same request stream.  The timed
/// windows interleave (fast, legacy, fast, legacy, ...) and each engine
/// keeps its best window, so a load spike on a shared host degrades both
/// engines rather than whichever one it happened to land on.
void runEngines(const bc::Repo &Repo, uint32_t Requests, uint32_t Reps,
                EngineResult &Fast, EngineResult &Legacy) {
  EngineState FastS(Repo, interp::InterpEngine::Fast);
  EngineState LegacyS(Repo, interp::InterpEngine::Legacy);

  // One warmup pass over all endpoints pays the one-time costs (string
  // interning, per-function metadata, arena growth) outside the window.
  for (uint32_t Rq = 0; Rq < kNumEndpoints; ++Rq) {
    FastS.serve(Rq);
    LegacyS.serve(Rq);
  }

  Fast.Name = "fast";
  Legacy.Name = "legacy";
  Fast.Requests = Legacy.Requests = Requests;
  Fast.Seconds = Legacy.Seconds = 1e300;
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    double SecF = timedPass(FastS, Requests, Rep == 0 ? &Fast : nullptr);
    double SecL = timedPass(LegacyS, Requests, Rep == 0 ? &Legacy : nullptr);
    Fast.Seconds = std::min(Fast.Seconds, SecF);
    Legacy.Seconds = std::min(Legacy.Seconds, SecL);
  }
  Fast.ICHits = FastS.Interp.caches().ICHits;
  Fast.ICMisses = FastS.Interp.caches().ICMisses;
  Legacy.ICHits = LegacyS.Interp.caches().ICHits;
  Legacy.ICMisses = LegacyS.Interp.caches().ICMisses;
}

//===----------------------------------------------------------------------===//
// Proven-facts ablation: the whole-program analysis on the same workload.
//===----------------------------------------------------------------------===//

/// What the interprocedural analysis buys on this workload: statically
/// seeded interpreter ICs (cold-start req/s delta, miss-count delta) and
/// guards elided by the JIT lowering.
struct ProvenResult {
  uint32_t ICsSeeded = 0;
  uint64_t GuardsElided = 0;
  uint64_t Requests = 0;
  double OffSeconds = 0;
  double OnSeconds = 0;
  uint64_t MissesOff = 0;
  uint64_t MissesOn = 0;

  double offRequestsPerSec() const { return Requests / OffSeconds; }
  double onRequestsPerSec() const { return Requests / OnSeconds; }
};

/// Pre-populates \p S's inline caches from the analysis's proven
/// monomorphic sites -- the same seeding vm::Server::seedInlineCaches
/// performs at startup, applied to a bare interpreter.
uint32_t seedProvenICs(EngineState &S, const bc::Repo &Repo,
                       const jit::ProvenFacts &Facts) {
  uint32_t Seeded = 0;
  for (const jit::ProvenFacts::ICSeed &Seed : Facts.ICSeeds) {
    bc::FuncId F(Seed.Func);
    if (F.raw() >= Repo.numFuncs() || Seed.Pc >= Repo.func(F).Code.size() ||
        Seed.Cls >= Repo.numClasses())
      continue;
    const bc::Instr &In = Repo.func(F).Code[Seed.Pc];
    const runtime::ClassLayout &L = S.Classes.layout(bc::ClassId(Seed.Cls));
    uint64_t Payload;
    if (Seed.K == jit::ProvenFacts::ICSeed::Kind::Call) {
      bc::FuncId M = L.findMethod(In.strImm());
      if (!M.valid())
        continue;
      Payload = M.raw();
    } else {
      int64_t Slot = L.findSlot(In.strImm());
      if (Slot < 0)
        continue;
      Payload = static_cast<uint64_t>(Slot);
    }
    if (S.Interp.seedIC(F, Seed.Pc, &L, Payload))
      ++Seeded;
  }
  return Seeded;
}

/// Matures the full JIT over the benchmark mix with proven-guard elision
/// on and reports how many guards the lowering actually dropped.
uint64_t countElidedGuards(const bc::Repo &Repo, uint32_t Requests) {
  vm::ServerConfig SC;
  SC.Cores = 4;
  SC.JitWorkerCores = 1;
  SC.WarmupEndpoints.clear();
  SC.Jit.ProfileRequestTarget = std::max<uint32_t>(2, Requests / 3);
  SC.Jit.ProvenGuardElision = true;
  core::attachProvenFacts(SC, Repo);
  SC.Name = "bench";
  vm::Server S(Repo, SC, /*Seed=*/7);
  S.startup();
  std::vector<runtime::Value> Args{runtime::Value::null()};
  for (uint32_t Rq = 0; Rq < Requests; ++Rq) {
    Args[0] = runtime::Value::integer(static_cast<int64_t>(Rq * 37 % 1000));
    bc::FuncId F = Repo.findFunction(strFormat("endpoint%u", kMix[Rq % kMixLen]));
    S.executeRequest(F, Args);
    S.grantJitTime(16.0);
  }
  return S.theJit().transDb().guardsElided();
}

/// Cold-start ablation: a fresh fast-engine instance per repetition (so
/// every inline cache starts empty), with and without analysis-seeded
/// ICs.  Cold starts are where static seeding can matter at all -- a
/// warmed engine converges to the same caches either way -- mirroring
/// the paper's warmup-vs-steady-state framing at interpreter scale.
ProvenResult runProvenAblation(const bc::Repo &Repo, uint32_t Requests,
                               uint32_t Reps) {
  ProvenResult P;
  P.Requests = Requests;
  analysis::WholeProgram WP(Repo);
  std::shared_ptr<const jit::ProvenFacts> Facts = WP.jitFacts();

  P.OffSeconds = P.OnSeconds = 1e300;
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    EngineState Off(Repo, interp::InterpEngine::Fast);
    P.OffSeconds = std::min(P.OffSeconds, timedPass(Off, Requests, nullptr));
    if (Rep == 0)
      P.MissesOff = Off.Interp.caches().ICMisses;

    EngineState On(Repo, interp::InterpEngine::Fast);
    P.ICsSeeded = seedProvenICs(On, Repo, *Facts);
    P.OnSeconds = std::min(P.OnSeconds, timedPass(On, Requests, nullptr));
    if (Rep == 0)
      P.MissesOn = On.Interp.caches().ICMisses;
  }

  P.GuardsElided = countElidedGuards(Repo, std::min<uint32_t>(Requests, 64));
  return P;
}

//===----------------------------------------------------------------------===//
// Statistical mode (--stats seeds=N,iters=M): multi-seed warmup curves.
//===----------------------------------------------------------------------===//

/// Runs the fast engine N times from cold with distinct request streams
/// and records host allocations per request over fixed-size iteration
/// blocks.  The block size is independent of --quick so the quick CI run
/// and the full snapshot run produce the same series -- allocation counts
/// are a pure function of the request stream, so the resulting stats
/// block is byte-identical across hosts and runs.
stats::StatsSummary runStatsSweep(const bc::Repo &Repo,
                                  const bench::StatsCliOptions &O) {
  constexpr uint32_t kBlock = 60;
  std::vector<std::pair<uint64_t, std::vector<double>>> SeedSeries;
  for (uint32_t Seed = 0; Seed < O.Seeds; ++Seed) {
    // Fresh engine per seed: iteration 0 pays the one-time costs
    // (interning, metadata, arena growth) and later blocks are steady.
    EngineState Eng(Repo, interp::InterpEngine::Fast);
    std::vector<double> Series;
    Series.reserve(O.Iters);
    uint64_t Prev = Eng.Heap.hostAllocs();
    for (uint32_t It = 0; It < O.Iters; ++It) {
      for (uint32_t Rq = 0; Rq < kBlock; ++Rq)
        Eng.serve(Seed * 131 + It * kBlock + Rq);
      uint64_t Now = Eng.Heap.hostAllocs();
      Series.push_back(static_cast<double>(Now - Prev) /
                       static_cast<double>(kBlock));
      Prev = Now;
    }
    SeedSeries.emplace_back(Seed, std::move(Series));
  }
  return stats::analyzeRuns(SeedSeries);
}

void writeJson(const std::string &Path, const EngineResult &Fast,
               const EngineResult &Legacy, const ProvenResult &Proven,
               const bench::StatsCliOptions &StatsOpts,
               const stats::StatsSummary *Stats) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  auto Emit = [&](const EngineResult &R, const char *Trail) {
    Out << strFormat(
        "  \"%s\": {\"requests\": %llu, \"seconds\": %.6f, "
        "\"requests_per_sec\": %.1f, \"instrs_per_sec\": %.1f, "
        "\"steps_per_request\": %.2f, \"allocs_per_request\": %.4f, "
        "\"faults\": %llu, \"ic_hits\": %llu, \"ic_misses\": %llu}%s\n",
        R.Name.c_str(), static_cast<unsigned long long>(R.Requests),
        R.Seconds, R.requestsPerSec(), R.instrsPerSec(),
        R.stepsPerRequest(), R.allocsPerRequest(),
        static_cast<unsigned long long>(R.Faults),
        static_cast<unsigned long long>(R.ICHits),
        static_cast<unsigned long long>(R.ICMisses), Trail);
  };
  double AllocRatio = Fast.Allocs == 0
                          ? Legacy.allocsPerRequest() / 0.0001
                          : Legacy.allocsPerRequest() / Fast.allocsPerRequest();
  Out << "{\n";
  Emit(Fast, ",");
  Emit(Legacy, ",");
  // Whole-program analysis ablation on the same workload.  Keys are
  // chosen so CHECK_PERF's `"fast": {...allocs_per_request...}` sed
  // still matches exactly one line.
  Out << strFormat(
      "  \"proven\": {\"ics_seeded\": %u, \"guards_elided\": %llu, "
      "\"cold_requests_per_sec_off\": %.1f, "
      "\"cold_requests_per_sec_on\": %.1f, \"cold_speedup\": %.3f, "
      "\"ic_misses_off\": %llu, \"ic_misses_on\": %llu},\n",
      Proven.ICsSeeded, static_cast<unsigned long long>(Proven.GuardsElided),
      Proven.offRequestsPerSec(), Proven.onRequestsPerSec(),
      Proven.onRequestsPerSec() / Proven.offRequestsPerSec(),
      static_cast<unsigned long long>(Proven.MissesOff),
      static_cast<unsigned long long>(Proven.MissesOn));
  if (Stats)
    Out << bench::statsBlockJson("allocs_per_request", StatsOpts, *Stats)
        << ",\n";
  Out << strFormat("  \"speedup_requests_per_sec\": %.2f,\n",
                   Fast.requestsPerSec() / Legacy.requestsPerSec());
  Out << strFormat("  \"alloc_reduction\": %.1f\n", AllocRatio);
  Out << "}\n";
}

/// Deterministic counters only -- byte-identical across runs on any
/// host, which the CI perf smoke asserts by diffing two runs.
void writeCounters(const std::string &Path, const EngineResult &Fast,
                   const EngineResult &Legacy, const ProvenResult &Proven,
                   const stats::StatsSummary *Stats) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  for (const EngineResult *R : {&Fast, &Legacy})
    Out << strFormat("%s steps=%llu faults=%llu allocs=%llu ic_hits=%llu "
                     "ic_misses=%llu\n",
                     R->Name.c_str(),
                     static_cast<unsigned long long>(R->Steps),
                     static_cast<unsigned long long>(R->Faults),
                     static_cast<unsigned long long>(R->Allocs),
                     static_cast<unsigned long long>(R->ICHits),
                     static_cast<unsigned long long>(R->ICMisses));
  // Analysis-side counters are deterministic too: the facts are a pure
  // function of the bytecode and the JIT pipeline is single-threaded
  // here, so CI byte-compares these lines across runs like the rest.
  Out << strFormat("proven ics_seeded=%u guards_elided=%llu "
                   "ic_misses_off=%llu ic_misses_on=%llu\n",
                   Proven.ICsSeeded,
                   static_cast<unsigned long long>(Proven.GuardsElided),
                   static_cast<unsigned long long>(Proven.MissesOff),
                   static_cast<unsigned long long>(Proven.MissesOn));
  if (Stats)
    Out << bench::statsCountersLine("allocs_per_request", *Stats);
}

} // namespace

int main(int argc, char **argv) {
  uint32_t Requests = 20000;
  uint32_t Reps = 5;
  std::string JsonPath;
  std::string CountersPath;
  bench::StatsCliOptions StatsOpts;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0) {
      Requests = 2000;
      Reps = 3;
    } else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--counters") == 0 && I + 1 < argc) {
      CountersPath = argv[++I];
    } else if (std::strcmp(argv[I], "--endpoint") == 0 && I + 1 < argc) {
      OnlyEndpoint = std::atoi(argv[++I]);
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      std::string_view Spec =
          I + 1 < argc && argv[I + 1][0] != '-' ? argv[++I] : "";
      if (!bench::parseStatsSpec(Spec, StatsOpts)) {
        std::fprintf(stderr, "bad --stats spec: %s\n",
                     std::string(Spec).c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json PATH] [--counters PATH] "
                   "[--endpoint N] [--stats [seeds=N,iters=M]]\n",
                   argv[0]);
      return 2;
    }
  }

  bc::Repo Repo;
  std::vector<std::string> Errors = frontend::compileUnit(
      Repo, runtime::BuiltinTable::standard(), "bench.hack", kSource);
  if (!Errors.empty()) {
    std::fprintf(stderr, "compile failed: %s\n", Errors.front().c_str());
    return 1;
  }

  EngineResult Fast, Legacy;
  runEngines(Repo, Requests, Reps, Fast, Legacy);
  ProvenResult Proven = runProvenAblation(Repo, Requests, Reps);
  stats::StatsSummary Stats;
  if (StatsOpts.Enabled)
    Stats = runStatsSweep(Repo, StatsOpts);

  // The engines must agree on every deterministic counter except the
  // IC stats (the legacy engine has no caches); a mismatch here means
  // an engine bug, not a perf problem.
  if (Fast.Steps != Legacy.Steps || Fast.Faults != Legacy.Faults) {
    std::fprintf(stderr,
                 "ENGINE DIVERGENCE: steps %llu vs %llu, faults %llu vs "
                 "%llu\n",
                 static_cast<unsigned long long>(Fast.Steps),
                 static_cast<unsigned long long>(Legacy.Steps),
                 static_cast<unsigned long long>(Fast.Faults),
                 static_cast<unsigned long long>(Legacy.Faults));
    return 1;
  }

  for (const EngineResult *R : {&Fast, &Legacy})
    std::printf("%-6s  %8.0f req/s  %12.0f instr/s  %7.2f allocs/req  "
                "%6.1f steps/req\n",
                R->Name.c_str(), R->requestsPerSec(), R->instrsPerSec(),
                R->allocsPerRequest(), R->stepsPerRequest());
  std::printf("speedup %.2fx   alloc reduction %.1fx\n",
              Fast.requestsPerSec() / Legacy.requestsPerSec(),
              Fast.Allocs == 0 ? Legacy.allocsPerRequest() / 0.0001
                               : Legacy.allocsPerRequest() /
                                     Fast.allocsPerRequest());
  std::printf("proven  %u ICs seeded, %llu guards elided, cold IC misses "
              "%llu -> %llu, cold speedup %.3fx\n",
              Proven.ICsSeeded,
              static_cast<unsigned long long>(Proven.GuardsElided),
              static_cast<unsigned long long>(Proven.MissesOff),
              static_cast<unsigned long long>(Proven.MissesOn),
              Proven.onRequestsPerSec() / Proven.offRequestsPerSec());
  if (StatsOpts.Enabled)
    std::printf("stats   allocs/req over %u seeds x %u iters: worst=%s "
                "ci=[%.4f, %.4f]\n",
                StatsOpts.Seeds, StatsOpts.Iters,
                stats::warmupClassName(Stats.WorstClass), Stats.SteadyCI.Lo,
                Stats.SteadyCI.Hi);

  if (!JsonPath.empty())
    writeJson(JsonPath, Fast, Legacy, Proven, StatsOpts,
              StatsOpts.Enabled ? &Stats : nullptr);
  if (!CountersPath.empty())
    writeCounters(CountersPath, Fast, Legacy, Proven,
                  StatsOpts.Enabled ? &Stats : nullptr);
  return 0;
}
