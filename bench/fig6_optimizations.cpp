//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces **Figure 6**: ablation of the Jump-Start-based steady-state
/// optimizations.  The baseline is Jump-Start with all section V
/// optimizations disabled; each bar enables exactly one:
///
///   paper: no Jump-Start       -0.2%
///          BB layout (V-A)     +3.8%   <- largest
///          function sort (V-B) +0.75%
///          prop reorder (V-C)  +0.8%
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::bench;

namespace {

/// Boots a Jump-Start consumer with the given optimization switches and
/// measures its steady state.
fleet::SteadyStateResult
measureVariant(const fleet::Workload &W, const fleet::TrafficModel &Traffic,
               const vm::ServerConfig &Base,
               const profile::ProfilePackage &Pkg, bool VasmCounters,
               bool FuncOrder, bool PropReorder) {
  vm::ServerConfig Config = Base;
  Config.Jit.UseVasmCounters = VasmCounters;
  Config.Jit.UsePackageFuncOrder = FuncOrder;
  Config.ReorderProperties = PropReorder;
  vm::Server Server(W.Repo, Config, 55);
  support::Status Installed = Server.installPackage(Pkg);
  alwaysAssert(Installed.ok(), "package rejected");
  Server.startup();
  fleet::SteadyStateParams P;
  P.Requests = 400;
  P.WarmupRequests = 120;
  P.Machine = scaledMachine();
  return fleet::measureSteadyState(W, Traffic, Server, P);
}

} // namespace

int main() {
  std::printf("=== Figure 6: speedup of each Jump-Start-based "
              "optimization over Jump-Start-without-optimizations ===\n");
  auto W = fleet::generateWorkload(standardSite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = figureServerConfig();
  Config.Jit.ProfileRequestTarget = 400;

  profile::ProfilePackage Pkg = growPackage(*W, Traffic, Config);

  // Baseline: Jump-Start, no section V optimizations.
  fleet::SteadyStateResult Base =
      measureVariant(*W, Traffic, Config, Pkg, false, false, false);

  // Bar 1: Jump-Start disabled entirely (server warms itself).
  std::unique_ptr<vm::Server> NoJs =
      fleet::runSeeder(*W, Traffic, Config, 0, 0, 1200, 31);
  fleet::SteadyStateParams P;
  P.Requests = 400;
  P.WarmupRequests = 120;
  P.Machine = scaledMachine();
  fleet::SteadyStateResult RNoJs =
      fleet::measureSteadyState(*W, Traffic, *NoJs, P);

  // Bars 2-4: one optimization at a time.
  fleet::SteadyStateResult RBb =
      measureVariant(*W, Traffic, Config, Pkg, true, false, false);
  fleet::SteadyStateResult RFn =
      measureVariant(*W, Traffic, Config, Pkg, false, true, false);
  fleet::SteadyStateResult RProp =
      measureVariant(*W, Traffic, Config, Pkg, false, false, true);

  auto Speedup = [&](const fleet::SteadyStateResult &R) {
    return 100.0 * (Base.CyclesPerRequest / R.CyclesPerRequest - 1.0);
  };

  std::printf("\n%-34s %10s %10s\n", "configuration", "this repro",
              "paper");
  std::printf("%-34s %+9.2f%% %+9.2f%%\n", "no Jump-Start",
              Speedup(RNoJs), -0.2);
  std::printf("%-34s %+9.2f%% %+9.2f%%\n",
              "BB layout (Vasm counters, V-A)", Speedup(RBb), 3.8);
  std::printf("%-34s %+9.2f%% %+9.2f%%\n",
              "function sorting (tier-2 CG, V-B)", Speedup(RFn), 0.75);
  std::printf("%-34s %+9.2f%% %+9.2f%%\n",
              "property reordering (V-C)", Speedup(RProp), 0.8);

  std::printf("\nbaseline cycles/request: %.0f\n", Base.CyclesPerRequest);
  std::printf("paper shape check: every optimization positive with BB "
              "layout the largest; disabling Jump-Start slightly "
              "negative (within noise of baseline)\n");
  return 0;
}
