//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the reliability machinery of paper **section VI**, which the
/// paper describes qualitatively: what happens when a crash-inducing
/// profile package escapes validation, under each combination of the three
/// defenses (validation, randomized multi-package selection, automatic
/// no-Jump-Start fallback).
///
/// Expected shapes:
///  - with randomized selection, the number of crashing consumers decays
///    exponentially with each restart round ("reducing the number of
///    affected consumers exponentially with each restart");
///  - without it, a single bad package takes down every consumer at once
///    and only the fallback recovers the fleet;
///  - validation prevents publication outright when it catches the bug.
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "fleet/Reliability.h"

#include <cstdio>

using namespace jumpstart;
using namespace jumpstart::bench;
using namespace jumpstart::fleet;

static void printRun(const char *Name, const ReliabilityResult &R,
                     uint32_t Consumers) {
  std::printf("%s\n", Name);
  std::printf("  poisoned packages published: %u\n", R.PoisonedPublished);
  std::printf("  crashes per restart round  :");
  for (uint32_t C : R.CrashedPerRound)
    std::printf(" %u", C);
  std::printf("\n  peak simultaneous crashes  : %u (%.1f%% of fleet)\n",
              R.PeakCrashed, 100.0 * R.PeakCrashed / Consumers);
  std::printf("  consumers in fallback      : %u\n", R.FallbackCount);
  std::printf("  healthy with Jump-Start    : %u / %u\n\n", R.HealthyAtEnd,
              Consumers);
}

int main(int argc, char **argv) {
  FigureFlags Flags = parseFigureFlags(argc, argv);
  std::printf("=== Section VI: reliability of Jump-Start deployment ===\n\n");
  const uint32_t Fleet = 8000;
  obs::Observability Obs;

  // A bad package escapes validation; consumers pick at random from 8.
  ReliabilityParams Randomized;
  Randomized.NumConsumers = Fleet;
  Randomized.NumPackages = 8;
  Randomized.NumPoisoned = 1;
  Randomized.RandomizedSelection = true;
  Randomized.Obs = &Obs;
  Randomized.RunLabel = "randomized";
  printRun("[1] randomized selection (paper VI-A technique 2):",
           simulateCrashLoop(Randomized), Fleet);

  // The "straightforward deployment" the paper warns against: everyone
  // uses the same package.
  ReliabilityParams Single = Randomized;
  Single.RandomizedSelection = false;
  Single.RunLabel = "single-package";
  printRun("[2] single shared package (no randomization):",
           simulateCrashLoop(Single), Fleet);

  // Validation catches the bug before publication.
  ReliabilityParams Validated = Randomized;
  Validated.ValidationCatchProbability = 1.0;
  Validated.RunLabel = "validated";
  printRun("[3] validation catches the bad package (technique 1):",
           simulateCrashLoop(Validated), Fleet);

  // Worst case: every published package is bad; only fallback saves us.
  ReliabilityParams AllBad = Randomized;
  AllBad.NumPackages = 4;
  AllBad.NumPoisoned = 4;
  AllBad.MaxJumpStartAttempts = 3;
  AllBad.RunLabel = "all-bad";
  printRun("[4] every package bad; automatic no-Jump-Start fallback "
           "(technique 3):",
           simulateCrashLoop(AllBad), Fleet);

  std::printf("paper shape check: [1] decays ~8x per round; [2] is a "
              "full-fleet outage; [3] zero crashes; [4] bounded by "
              "attempts x fleet, all consumers recover via fallback\n");

  return exportIfRequested(Obs, Flags.ExportPrefix);
}
