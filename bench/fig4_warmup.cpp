//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces **Figure 4**: warmup with vs without Jump-Start over the
/// critical first part of a server's life.
///
///   4a -- average wall time per request over uptime: the no-Jump-Start
///         server starts ~3x slower (loading + interpreting bytecode) and
///         converges only after optimized translations finish; the
///         Jump-Start server starts near steady state.
///   4b -- normalized RPS over uptime: the paper reports capacity loss of
///         78.3% (no Jump-Start) vs 35.3% (Jump-Start) over the first 10
///         minutes -- a 54.9% reduction.
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace jumpstart;
using namespace jumpstart::bench;

int main() {
  std::printf("=== Figure 4: warmup benefits of Jump-Start ===\n");
  auto W = fleet::generateWorkload(standardSite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = figureServerConfig();

  // Seed a package from this (region, bucket)'s traffic (the C2 phase).
  profile::ProfilePackage Pkg = growPackage(*W, Traffic, Config);
  std::printf("seeder package: %zu bytes, %zu funcs profiled\n\n",
              Pkg.serialize().size(), Pkg.numProfiledFuncs());

  // The paper evaluates the first 10 minutes: the window in which the
  // no-Jump-Start server reaches ~90% of peak.
  fleet::ServerSimParams P;
  P.DurationSeconds = 600;
  P.OfferedRps = 340;
  P.Seed = 4;
  fleet::WarmupResult NoJs = fleet::runWarmup(*W, Traffic, Config, P);
  fleet::WarmupResult Js = fleet::runWarmup(*W, Traffic, Config, P, &Pkg);

  std::printf("(a) average wall time per request (ms) over uptime\n");
  printSeriesPair("  time(s)    jump-start     no-jump-start",
                  Js.LatencySeconds, NoJs.LatencySeconds, 30, 1000.0);

  // The paper's headline early-latency ratio: ~3x between serve-start
  // and 250s-equivalent.
  double EarlyFrom = std::max(Js.Phases.ServeStart,
                              NoJs.Phases.ServeStart);
  double EarlyTo = P.DurationSeconds * 0.4;
  double JsEarly =
      Js.LatencySeconds.integrate(EarlyFrom, EarlyTo) / (EarlyTo - EarlyFrom);
  double NoJsEarly = NoJs.LatencySeconds.integrate(EarlyFrom, EarlyTo) /
                     (EarlyTo - EarlyFrom);
  std::printf("\nearly-warmup latency ratio (no-JS / JS, first 40%% of "
              "window): %.2fx (paper: ~3x)\n",
              NoJsEarly / JsEarly);
  double JsLate = Js.LatencySeconds.points().back().Value;
  double NoJsLate = NoJs.LatencySeconds.points().back().Value;
  std::printf("end-of-window latency: JS %.2f ms vs no-JS %.2f ms "
              "(paper: curves converge, JS slightly lower)\n\n",
              1000 * JsLate, 1000 * NoJsLate);

  std::printf("(b) normalized RPS (%%) over uptime\n");
  printSeriesPair("  time(s)    jump-start     no-jump-start",
                  Js.NormalizedRps, NoJs.NormalizedRps, 30, 100.0);

  double LossNoJs = NoJs.CapacityLossFraction;
  double LossJs = Js.CapacityLossFraction;
  std::printf("\ncapacity loss over first %.0fs:\n", P.DurationSeconds);
  std::printf("  no-jump-start : %5.1f%%   (paper: 78.3%%)\n",
              100 * LossNoJs);
  std::printf("  jump-start    : %5.1f%%   (paper: 35.3%%)\n",
              100 * LossJs);
  std::printf("  reduction     : %5.1f%%   (paper: 54.9%%)\n",
              100 * (1 - LossJs / LossNoJs));
  std::printf("\nserve start: JS %.0fs vs no-JS %.0fs (paper: JS starts "
              "taking requests slightly earlier despite precompiling, "
              "thanks to parallel warmup requests)\n",
              Js.Phases.ServeStart, NoJs.Phases.ServeStart);
  return 0;
}
