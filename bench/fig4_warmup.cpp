//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces **Figure 4**: warmup with vs without Jump-Start over the
/// critical first part of a server's life.
///
///   4a -- average wall time per request over uptime: the no-Jump-Start
///         server starts ~3x slower (loading + interpreting bytecode) and
///         converges only after optimized translations finish; the
///         Jump-Start server starts near steady state.
///   4b -- normalized RPS over uptime: the paper reports capacity loss of
///         78.3% (no Jump-Start) vs 35.3% (Jump-Start) over the first 10
///         minutes -- a 54.9% reduction.
///
/// Both runs record into one observability context; `fig4_warmup
/// --export PREFIX` additionally dumps PREFIX.metrics.jsonl,
/// PREFIX.trace.jsonl and PREFIX.chrome.json.  All timestamps are
/// virtual, so two runs produce byte-identical dumps (the determinism
/// acceptance check diffs them).  A package-lifecycle epilogue publishes
/// one good and one corrupted package and boots consumers against each,
/// making accept and per-reason reject events visible in the same trace.
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "core/PackageManager.h"
#include "fleet/WarmupStats.h"
#include "support/Assert.h"

#include <fstream>

using namespace jumpstart;
using namespace jumpstart::bench;

int main(int argc, char **argv) {
  FigureFlags Flags = parseFigureFlags(argc, argv);

  std::printf("=== Figure 4: warmup benefits of Jump-Start ===\n");
  auto W = fleet::generateWorkload(standardSite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = figureServerConfig();
  // Host compile pool: spreads the consumer precompile lowering across
  // OS threads.  Every virtual number below -- and the exported dumps --
  // must be byte-identical for any --threads value.
  auto Pool = makeCompilePool(Flags.Threads);
  Config.CompilePool = Pool.get();

  obs::Observability Obs;

  // Seed a package from this (region, bucket)'s traffic (the C2 phase).
  profile::ProfilePackage Pkg = growPackage(*W, Traffic, Config);
  std::printf("seeder package: %zu bytes, %zu funcs profiled\n\n",
              Pkg.serialize().size(), Pkg.numProfiledFuncs());

  // The paper evaluates the first 10 minutes: the window in which the
  // no-Jump-Start server reaches ~90% of peak.
  fleet::ServerSimParams P;
  P.DurationSeconds = 600;
  P.OfferedRps = 340;
  P.Seed = 4;
  P.Obs = &Obs;
  P.RunLabel = "no-jumpstart";
  fleet::WarmupResult NoJs = fleet::runWarmup(*W, Traffic, Config, P);
  P.RunLabel = "jumpstart";
  fleet::WarmupResult Js = fleet::runWarmup(*W, Traffic, Config, P, &Pkg);

  std::printf("(a) average wall time per request (ms) over uptime\n");
  printSeriesPair("  time(s)    jump-start     no-jump-start",
                  Js.latencySeconds(), NoJs.latencySeconds(), 30, 1000.0);

  // The paper's headline early-latency ratio: ~3x between serve-start
  // and 250s-equivalent.
  double EarlyFrom = std::max(Js.Phases.ServeStart,
                              NoJs.Phases.ServeStart);
  double EarlyTo = P.DurationSeconds * 0.4;
  double JsEarly = Js.latencySeconds().integrate(EarlyFrom, EarlyTo) /
                   (EarlyTo - EarlyFrom);
  double NoJsEarly = NoJs.latencySeconds().integrate(EarlyFrom, EarlyTo) /
                     (EarlyTo - EarlyFrom);
  std::printf("\nearly-warmup latency ratio (no-JS / JS, first 40%% of "
              "window): %.2fx (paper: ~3x)\n",
              NoJsEarly / JsEarly);
  double JsLate = Js.latencySeconds().points().back().Value;
  double NoJsLate = NoJs.latencySeconds().points().back().Value;
  std::printf("end-of-window latency: JS %.2f ms vs no-JS %.2f ms "
              "(paper: curves converge, JS slightly lower)\n\n",
              1000 * JsLate, 1000 * NoJsLate);

  std::printf("(b) normalized RPS (%%) over uptime\n");
  printSeriesPair("  time(s)    jump-start     no-jump-start",
                  Js.normalizedRps(), NoJs.normalizedRps(), 30, 100.0);

  double LossNoJs = NoJs.CapacityLossFraction;
  double LossJs = Js.CapacityLossFraction;
  std::printf("\ncapacity loss over first %.0fs:\n", P.DurationSeconds);
  std::printf("  no-jump-start : %5.1f%%   (paper: 78.3%%)\n",
              100 * LossNoJs);
  std::printf("  jump-start    : %5.1f%%   (paper: 35.3%%)\n",
              100 * LossJs);
  std::printf("  reduction     : %5.1f%%   (paper: 54.9%%)\n",
              100 * (1 - LossJs / LossNoJs));
  std::printf("\nserve start: JS %.0fs vs no-JS %.0fs (paper: JS starts "
              "taking requests slightly earlier despite precompiling, "
              "thanks to parallel warmup requests)\n",
              Js.Phases.ServeStart, NoJs.Phases.ServeStart);

  // --- Package-lifecycle epilogue: exercise the consumer accept and
  // reject paths so the exported trace carries the full package story.
  std::printf("\npackage lifecycle (accept + reject observability):\n");
  core::JumpStartOptions Opts;
  core::PackageManager Manager;
  Rng CorruptRng(99);

  // A shelf holding only a corrupted package: every attempt rejects
  // (corrupt_data), then the consumer falls back to booting without
  // Jump-Start.
  core::PackageManifest Manifest;
  alwaysAssert(Manager.publish(0, 0, Pkg.serialize(), &Manifest).ok(),
               "publishing the package");
  support::Status Corrupted =
      Manager.corrupt(0, 0, Manifest.Id.Index, CorruptRng);
  alwaysAssert(Corrupted.ok(), "corrupting a just-published package");
  core::ConsumerParams CP;
  CP.Seed = 21;
  CP.Name = "consumer-corrupt";
  core::ConsumerOutcome Bad = core::startConsumer(
      *W, Config, Opts, Manager, CP, /*Chaos=*/nullptr, &Obs);
  std::printf("  corrupt-only store: jump-start=%s after %u attempts\n",
              Bad.UsedJumpStart ? "yes" : "no", Bad.Attempts);

  // Publish the good package too: the next consumer eventually accepts.
  alwaysAssert(Manager.publish(0, 0, Pkg.serialize()).ok(),
               "publishing the good package");
  CP.Name = "consumer-mixed";
  core::ConsumerOutcome Good = core::startConsumer(
      *W, Config, Opts, Manager, CP, /*Chaos=*/nullptr, &Obs);
  std::printf("  mixed store:        jump-start=%s after %u attempts\n",
              Good.UsedJumpStart ? "yes" : "no", Good.Attempts);

  const obs::Counter *Accepted =
      Obs.Metrics.findCounter("jumpstart.package.accepted");
  const obs::Counter *Rejected = Obs.Metrics.findCounter(
      "jumpstart.package.rejected", {{"reason", "corrupt_data"}});
  std::printf("  counters: accepted=%llu rejected{corrupt_data}=%llu\n",
              static_cast<unsigned long long>(
                  Accepted ? Accepted->value() : 0),
              static_cast<unsigned long long>(
                  Rejected ? Rejected->value() : 0));

  // --- Warmup-class transition table: the statistical reading of this
  // figure.  Per seed, the no-Jump-Start and Jump-Start runs are
  // re-simulated and their normalized-RPS curves classified by the exact
  // changepoint detector; Jump-Start should turn `warmup` into `flat`
  // (or at least an earlier steady-state tick).  The sweep shards across
  // the --threads pool with run-owned registries (Merged = nullptr), so
  // the shared export above is untouched and the table -- exported as
  // PREFIX.classes.json -- is byte-identical for any worker count.
  std::printf("\nwarmup-class transitions (changepoint classification):\n");
  constexpr uint64_t kClassSeeds[] = {4, 5, 6, 7};
  std::vector<fleet::WarmupSweepRun> Runs;
  for (uint64_t Seed : kClassSeeds) {
    for (bool WithJs : {false, true}) {
      fleet::WarmupSweepRun Run;
      Run.Params.DurationSeconds = P.DurationSeconds;
      Run.Params.OfferedRps = P.OfferedRps;
      Run.Params.Seed = Seed;
      Run.Params.RunLabel =
          strFormat("class-s%llu-%s", static_cast<unsigned long long>(Seed),
                    WithJs ? "js" : "nojs");
      Run.Package = WithJs ? &Pkg : nullptr;
      Runs.push_back(std::move(Run));
    }
  }
  std::vector<fleet::WarmupResult> Sweep =
      fleet::runWarmupSweep(*W, Traffic, Config, Runs, Pool.get());
  std::vector<fleet::ClassTransition> Transitions;
  for (size_t I = 0; I + 1 < Sweep.size(); I += 2) {
    fleet::ClassTransition T;
    T.Seed = kClassSeeds[I / 2];
    T.Label = strFormat("server-%zu", I / 2);
    T.Cold = fleet::classifyWarmupThroughput(Sweep[I]);
    T.Warm = fleet::classifyWarmupThroughput(Sweep[I + 1]);
    Transitions.push_back(std::move(T));
  }
  std::printf("%s", fleet::renderTransitionTableText(Transitions).c_str());
  if (Flags.ExportPrefix) {
    std::string ClassesPath = strFormat("%s.classes.json", Flags.ExportPrefix);
    std::ofstream ClassesOut(ClassesPath);
    alwaysAssert(static_cast<bool>(ClassesOut), "writing classes.json");
    ClassesOut << fleet::renderTransitionTableJson(Transitions);
    std::printf("exported %s\n", ClassesPath.c_str());
  }

  // --- Modeled-parallelism epilogue (see EXPERIMENTS.md): the virtual
  // cost model charges the consumer precompile pass ceil(work/k) for k
  // modeled cores, so boot time shrinks with diminishing returns.  This
  // is the *virtual* knob (jit parallelism), independent of --threads.
  std::printf("\nconsumer init vs modeled precompile parallelism:\n");
  for (uint32_t K : {1u, 2u, 4u, 8u, 16u}) {
    vm::ServerConfig C = Config;
    C.Jit.Parallelism = K;
    vm::Server S(W->Repo, C, 71);
    alwaysAssert(S.installPackage(Pkg).ok(), "package rejected");
    vm::InitStats Init = S.startup();
    std::printf("  parallelism %2u: init %6.2fs (precompile %6.2fs)\n", K,
                Init.TotalSeconds, Init.PrecompileSeconds);
  }

  return exportIfRequested(Obs, Flags.ExportPrefix);
}
