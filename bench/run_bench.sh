#!/usr/bin/env bash
# Runs a perf harness and writes its snapshot: by default the
# interpreter engine benchmark (bench/micro_interp); with --server the
# concurrent-serving load harness (bench/server_load).
#
# Usage: bench/run_bench.sh [--server] [--quick] [--json PATH]
#                           [--counters PATH] [--threads N]
#                           [--build-dir DIR]
#
#   bench/run_bench.sh                  # full run, rewrites ./BENCH_interp.json
#   bench/run_bench.sh --quick          # 10x fewer requests; writes nothing
#                                       # unless --json/--counters are given
#   bench/run_bench.sh --server         # rewrites ./BENCH_server.json (always
#                                       # the --quick workload: its
#                                       # deterministic fields are what
#                                       # CHECK_SERVER re-checks, and they
#                                       # depend on the request count)
#
# The committed BENCH_interp.json at the repo root is this script's full
# output on some host: wall-clock fields are host-dependent, but the
# counter fields (steps, allocs, IC hits) are deterministic, and
# ci/check.sh's CHECK_PERF stage re-runs --quick against the snapshot to
# catch allocation regressions.  BENCH_*.json is gitignored except the
# committed snapshot, so scratch runs never dirty the tree.

set -euo pipefail

REPO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_DIR}/build"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=""
JSON_PATH=""
COUNTERS_PATH=""
SERVER=""
THREADS=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK="--quick"; shift ;;
    --server) SERVER=1; shift ;;
    --threads) THREADS="$2"; shift 2 ;;
    --json) JSON_PATH="$2"; shift 2 ;;
    --counters) COUNTERS_PATH="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [--server] [--quick] [--json PATH] [--counters PATH]" \
            "[--threads N] [--build-dir DIR]" >&2
       exit 2 ;;
  esac
done

if [[ -n "${SERVER}" ]]; then
  # The committed server snapshot is always the --quick workload (see
  # usage above); a bare --server run rewrites it.
  TARGET=server_load
  QUICK="--quick"
  [[ -z "${JSON_PATH}" ]] && JSON_PATH="${REPO_DIR}/BENCH_server.json"
  [[ -z "${THREADS}" ]] && THREADS=4
else
  TARGET=micro_interp
  # Full runs default to rewriting the committed snapshot.
  if [[ -z "${QUICK}" && -z "${JSON_PATH}" ]]; then
    JSON_PATH="${REPO_DIR}/BENCH_interp.json"
  fi
fi

cmake -S "${REPO_DIR}" -B "${BUILD_DIR}" >/dev/null
cmake --build "${BUILD_DIR}" --target "${TARGET}" -j "${JOBS}" >/dev/null

ARGS=(${QUICK})
[[ -n "${JSON_PATH}" ]] && ARGS+=(--json "${JSON_PATH}")
[[ -n "${COUNTERS_PATH}" ]] && ARGS+=(--counters "${COUNTERS_PATH}")
[[ -n "${SERVER}" && -n "${THREADS}" ]] && ARGS+=(--threads "${THREADS}")

"${BUILD_DIR}/bench/${TARGET}" "${ARGS[@]}"
if [[ -n "${JSON_PATH}" ]]; then
  echo "run_bench.sh: wrote ${JSON_PATH}"
fi
