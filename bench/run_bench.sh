#!/usr/bin/env bash
# Runs the interpreter engine benchmark (bench/micro_interp) and writes
# the perf-trajectory snapshot.
#
# Usage: bench/run_bench.sh [--quick] [--json PATH] [--counters PATH]
#                           [--build-dir DIR]
#
#   bench/run_bench.sh                  # full run, rewrites ./BENCH_interp.json
#   bench/run_bench.sh --quick          # 10x fewer requests; writes nothing
#                                       # unless --json/--counters are given
#
# The committed BENCH_interp.json at the repo root is this script's full
# output on some host: wall-clock fields are host-dependent, but the
# counter fields (steps, allocs, IC hits) are deterministic, and
# ci/check.sh's CHECK_PERF stage re-runs --quick against the snapshot to
# catch allocation regressions.  BENCH_*.json is gitignored except the
# committed snapshot, so scratch runs never dirty the tree.

set -euo pipefail

REPO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_DIR}/build"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=""
JSON_PATH=""
COUNTERS_PATH=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK="--quick"; shift ;;
    --json) JSON_PATH="$2"; shift 2 ;;
    --counters) COUNTERS_PATH="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [--quick] [--json PATH] [--counters PATH] [--build-dir DIR]" >&2
       exit 2 ;;
  esac
done

# Full runs default to rewriting the committed snapshot.
if [[ -z "${QUICK}" && -z "${JSON_PATH}" ]]; then
  JSON_PATH="${REPO_DIR}/BENCH_interp.json"
fi

cmake -S "${REPO_DIR}" -B "${BUILD_DIR}" >/dev/null
cmake --build "${BUILD_DIR}" --target micro_interp -j "${JOBS}" >/dev/null

ARGS=(${QUICK})
[[ -n "${JSON_PATH}" ]] && ARGS+=(--json "${JSON_PATH}")
[[ -n "${COUNTERS_PATH}" ]] && ARGS+=(--counters "${COUNTERS_PATH}")

"${BUILD_DIR}/bench/micro_interp" "${ARGS[@]}"
if [[ -n "${JSON_PATH}" ]]; then
  echo "run_bench.sh: wrote ${JSON_PATH}"
fi
