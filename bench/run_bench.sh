#!/usr/bin/env bash
# Runs a perf harness and writes its snapshot: by default the
# interpreter engine benchmark (bench/micro_interp); with --server the
# concurrent-serving load harness (bench/server_load); with --package
# the drift-sweep lifecycle harness (bench/package_lifecycle); with
# --all every snapshot in sequence.
#
# Usage: bench/run_bench.sh [--server|--package|--all] [--quick]
#                           [--json PATH] [--counters PATH] [--threads N]
#                           [--stats SPEC] [--build-dir DIR]
#
#   bench/run_bench.sh                  # full run, rewrites ./BENCH_interp.json
#   bench/run_bench.sh --quick          # 10x fewer requests; writes nothing
#                                       # unless --json/--counters are given
#   bench/run_bench.sh --server         # rewrites ./BENCH_server.json (always
#                                       # the --quick workload: its
#                                       # deterministic fields are what
#                                       # CHECK_SERVER re-checks, and they
#                                       # depend on the request count)
#   bench/run_bench.sh --package        # rewrites ./BENCH_package.json (the
#                                       # full staleness-under-drift sweep)
#   bench/run_bench.sh --all            # rewrites all three snapshots; exits
#                                       # nonzero if ANY bench failed (each
#                                       # binary's exit code is checked
#                                       # individually -- one bad bench never
#                                       # yields a green run)
#   bench/run_bench.sh --stats seeds=8,iters=40   # override the stats sweep
#
# Snapshot runs always include the multi-seed `--stats` sweep, so every
# committed BENCH_*.json carries a `stats` block (warmup classes,
# steady-state confidence interval, per-seed changepoints).  The canonical
# specs below are what the committed snapshots were generated with; the
# stats sub-runs use fixed workload sizes independent of --quick, so
# ci/check.sh's quick re-runs reproduce the committed stats blocks
# byte-for-byte.
#
# The committed BENCH_interp.json at the repo root is this script's full
# output on some host: wall-clock fields are host-dependent, but the
# counter fields (steps, allocs, IC hits) are deterministic, and
# ci/check.sh's CHECK_PERF stage re-runs --quick against the snapshot,
# gating on the steady-state CI instead of a single number.  BENCH_*.json
# is gitignored except the committed snapshots, so scratch runs never
# dirty the tree.

set -euo pipefail

REPO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_DIR}/build"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=""
JSON_PATH=""
COUNTERS_PATH=""
MODE="interp"
THREADS=""
STATS_SPEC=""

# The specs the committed snapshots are generated with (and that
# ci/check.sh re-derives when byte-comparing stats blocks).
INTERP_STATS="seeds=5,iters=30"
SERVER_STATS="seeds=5,iters=30"
PACKAGE_STATS="seeds=3,iters=60"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK="--quick"; shift ;;
    --server) MODE="server"; shift ;;
    --package) MODE="package"; shift ;;
    --all) MODE="all"; shift ;;
    --threads) THREADS="$2"; shift 2 ;;
    --json) JSON_PATH="$2"; shift 2 ;;
    --counters) COUNTERS_PATH="$2"; shift 2 ;;
    --stats) STATS_SPEC="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [--server|--package|--all] [--quick] [--json PATH]" \
            "[--counters PATH] [--threads N] [--stats SPEC] [--build-dir DIR]" >&2
       exit 2 ;;
  esac
done

# Runs one bench binary, checking its exit code explicitly: a failing
# bench must fail the script even when more benches follow (--all).
# Returns the binary's status so --all can accumulate failures.
run_target() {
  local target="$1"; shift
  cmake --build "${BUILD_DIR}" --target "${target}" -j "${JOBS}" >/dev/null
  local status=0
  "${BUILD_DIR}/bench/${target}" "$@" || status=$?
  if [[ "${status}" -ne 0 ]]; then
    echo "run_bench.sh: FAIL: ${target} exited with status ${status}" >&2
  fi
  return "${status}"
}

run_interp() {
  local args=()
  [[ -n "${QUICK}" ]] && args+=("${QUICK}")
  local json="${JSON_PATH}"
  # Full runs default to rewriting the committed snapshot.
  if [[ -z "${QUICK}" && -z "${json}" ]]; then
    json="${REPO_DIR}/BENCH_interp.json"
  fi
  [[ -n "${json}" ]] && args+=(--json "${json}")
  [[ -n "${COUNTERS_PATH}" ]] && args+=(--counters "${COUNTERS_PATH}")
  args+=(--stats "${STATS_SPEC:-${INTERP_STATS}}")
  run_target micro_interp "${args[@]}"
  if [[ -n "${json}" ]]; then
    echo "run_bench.sh: wrote ${json}"
  fi
}

run_server() {
  # The committed server snapshot is always the --quick workload (see
  # usage above); a bare --server run rewrites it.
  local json="${JSON_PATH:-${REPO_DIR}/BENCH_server.json}"
  local args=(--quick --json "${json}" --threads "${THREADS:-4}")
  [[ -n "${COUNTERS_PATH}" ]] && args+=(--counters "${COUNTERS_PATH}")
  args+=(--stats "${STATS_SPEC:-${SERVER_STATS}}")
  run_target server_load "${args[@]}"
  echo "run_bench.sh: wrote ${json}"
}

run_package() {
  local json="${JSON_PATH:-${REPO_DIR}/BENCH_package.json}"
  local args=(--sweep --json "${json}")
  [[ -n "${QUICK}" ]] && args+=("${QUICK}")
  args+=(--stats "${STATS_SPEC:-${PACKAGE_STATS}}")
  run_target package_lifecycle "${args[@]}"
  echo "run_bench.sh: wrote ${json}"
}

cmake -S "${REPO_DIR}" -B "${BUILD_DIR}" >/dev/null

case "${MODE}" in
  interp) run_interp ;;
  server) run_server ;;
  package) run_package ;;
  all)
    # Run every bench even after a failure, then report: per-binary exit
    # codes are individually checked and any nonzero fails the run.
    FAILED=()
    run_interp || FAILED+=(micro_interp)
    run_server || FAILED+=(server_load)
    run_package || FAILED+=(package_lifecycle)
    if [[ "${#FAILED[@]}" -gt 0 ]]; then
      echo "run_bench.sh: FAIL: ${FAILED[*]}" >&2
      exit 1
    fi
    ;;
esac
