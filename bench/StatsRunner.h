//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared `--stats seeds=N,iters=M` harness for the bench binaries.
///
/// micro_interp, server_load, and package_lifecycle all speak the same
/// statistical dialect: run the benchmark N times with distinct seeds,
/// record a deterministic per-iteration metric series for each run, feed
/// the series through the stats/ changepoint classifier, and emit one
/// `stats` JSON block (and one counters line) into their snapshot
/// outputs.  This header holds the CLI parsing and the renderings so the
/// three binaries cannot drift apart in format.
///
/// Determinism contract: every metric fed through here is derived from
/// deterministic quantities (host allocation counters, virtual-clock
/// seconds), the analysis is RNG-free, and the bootstrap uses a fixed
/// explicit seed -- so two runs of the same binary produce byte-identical
/// stats blocks, which ci/check.sh's CHECK_STATS stage enforces with a
/// literal byte compare.  The scalar summary fields are emitted on a
/// single line so the statistical CHECK_PERF gate can sed them out of
/// both the committed and the freshly generated snapshots.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_BENCH_STATSRUNNER_H
#define JUMPSTART_BENCH_STATSRUNNER_H

#include "stats/Warmup.h"
#include "support/StringUtil.h"

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace jumpstart::bench {

/// Parsed `--stats seeds=N,iters=M` request.
struct StatsCliOptions {
  bool Enabled = false;
  /// Distinct-seed repetitions of the benchmark.
  uint32_t Seeds = 5;
  /// Iterations (metric samples) per repetition.
  uint32_t Iters = 30;
};

/// Parses a `--stats` spec: comma-separated `seeds=N` / `iters=M` in
/// either order, both optional (defaults above).  \returns false on a
/// malformed spec.  An empty spec is valid and keeps the defaults.
inline bool parseStatsSpec(std::string_view Spec, StatsCliOptions &Out) {
  Out.Enabled = true;
  if (Spec.empty())
    return true;
  for (const std::string &Field : splitString(Spec, ',')) {
    size_t Eq = Field.find('=');
    if (Eq == std::string::npos)
      return false;
    std::string Key = Field.substr(0, Eq);
    std::string Digits = Field.substr(Eq + 1);
    char *End = nullptr;
    unsigned long Value = std::strtoul(Digits.c_str(), &End, 10);
    if (Digits.empty() || End != Digits.c_str() + Digits.size() || Value == 0)
      return false;
    if (Key == "seeds")
      Out.Seeds = static_cast<uint32_t>(Value);
    else if (Key == "iters")
      Out.Iters = static_cast<uint32_t>(Value);
    else
      return false;
  }
  return true;
}

/// Renders the `stats` block as a JSON object member: `"stats": {...}`,
/// indented by \p Indent, no trailing comma or newline.  The scalar
/// summary fields share one line (the CHECK_PERF sed contract); each
/// per-seed run gets its own line.
inline std::string statsBlockJson(const std::string &Metric,
                                  const StatsCliOptions &O,
                                  const stats::StatsSummary &S,
                                  const std::string &Indent = "  ") {
  std::string Out;
  Out += Indent + "\"stats\": {\n";
  Out += Indent +
         strFormat("  \"metric\": \"%s\", \"seeds\": %u, \"iters\": %u, "
                   "\"worst_class\": \"%s\", \"steady_mean\": %.6f, "
                   "\"steady_ci_lo\": %.6f, \"steady_ci_hi\": %.6f, "
                   "\"steady_start_mean\": %.6f,\n",
                   Metric.c_str(), O.Seeds, O.Iters,
                   stats::warmupClassName(S.WorstClass), S.SteadyCI.Mean,
                   S.SteadyCI.Lo, S.SteadyCI.Hi, S.SteadyStartMean);
  Out += Indent +
         strFormat("  \"classes\": {\"flat\": %u, \"warmup\": %u, "
                   "\"slowdown\": %u, \"inconsistent\": %u},\n",
                   S.Tally[0], S.Tally[1], S.Tally[2], S.Tally[3]);
  Out += Indent + "  \"runs\": [\n";
  for (size_t I = 0; I < S.Runs.size(); ++I) {
    const stats::RunAnalysis &Run = S.Runs[I];
    std::string Cps;
    for (size_t C = 0; C < Run.C.Seg.Changepoints.size(); ++C)
      Cps += strFormat("%s%zu", C ? ", " : "", Run.C.Seg.Changepoints[C]);
    Out += Indent +
           strFormat("    {\"seed\": %llu, \"class\": \"%s\", "
                     "\"steady_start\": %zu, \"steady_mean\": %.6f, "
                     "\"changepoints\": [%s]}%s\n",
                     static_cast<unsigned long long>(Run.Seed),
                     stats::warmupClassName(Run.C.Class), Run.C.SteadyStart,
                     Run.C.SteadyMean, Cps.c_str(),
                     I + 1 < S.Runs.size() ? "," : "");
  }
  Out += Indent + "  ]\n";
  Out += Indent + "}";
  return Out;
}

/// One-line rendering of the same summary for the deterministic
/// counters files ci/check.sh byte-compares.
inline std::string statsCountersLine(const std::string &Metric,
                                     const stats::StatsSummary &S) {
  return strFormat("stats_%s worst_class=%s flat=%u warmup=%u slowdown=%u "
                   "inconsistent=%u steady_mean=%.6f steady_ci_lo=%.6f "
                   "steady_ci_hi=%.6f steady_start_mean=%.6f\n",
                   Metric.c_str(), stats::warmupClassName(S.WorstClass),
                   S.Tally[0], S.Tally[1], S.Tally[2], S.Tally[3],
                   S.SteadyCI.Mean, S.SteadyCI.Lo, S.SteadyCI.Hi,
                   S.SteadyStartMean);
}

} // namespace jumpstart::bench

#endif // JUMPSTART_BENCH_STATSRUNNER_H
