//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The **section IV-A** design choice: pre-compile only the optimized
/// code (what HHVM ships) or also the live (tracelet) code?
///
/// The paper rejects live pre-compilation for two reasons:
///  1. collecting the live-code profile takes the full ~25-minute warmup
///     on the seeders, which does not fit in the C2 validation window;
///  2. optimized code alone already reaches ~90% of peak.
///
/// This harness quantifies both sides on the simulated fleet: seeder
/// collection time needed before the package is complete, consumer init
/// time, and the size of the post-start live-compilation tail.
///
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::bench;

namespace {

/// Counts live-translation bytes a server compiled after it started
/// serving (the post-start tracelet tail).
uint64_t liveBytes(const vm::Server &S) {
  return S.theJit().transDb().bytesOfKind(jit::TransKind::Live);
}

} // namespace

int main() {
  std::printf("=== Ablation: pre-compile optimized code only (paper) vs "
              "optimized + live code (section IV-A alternative) ===\n\n");
  auto W = fleet::generateWorkload(standardSite());
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 42);
  vm::ServerConfig Config = figureServerConfig();
  Config.Jit.ProfileRequestTarget = 400;

  // Seeder collection time: the optimized-code profile is complete once
  // profiling + instrumented-opt collection finish (a short window); the
  // live-code list keeps growing for the whole warmup (Figure 1's C..D
  // tail), so a "complete" live list needs a far longer seeder run.
  vm::ServerConfig SeederConfig = Config;
  SeederConfig.Jit.SeederInstrumentation = true;
  auto ShortSeeder =
      fleet::runSeeder(*W, Traffic, SeederConfig, 0, 0, 600, 12);
  auto LongSeeder =
      fleet::runSeeder(*W, Traffic, SeederConfig, 0, 0, 2400, 12);
  profile::ProfilePackage ShortPkg =
      ShortSeeder->buildSeederPackage(0, 0, 1);
  profile::ProfilePackage LongPkg =
      LongSeeder->buildSeederPackage(0, 0, 1);
  std::printf("seeder live-code coverage: %zu funcs after a C2-length "
              "run, %zu after 4x longer (the live list is still growing "
              "-- the paper's reason 1)\n\n",
              ShortPkg.Intermediate.LiveFuncs.size(),
              LongPkg.Intermediate.LiveFuncs.size());

  // Consumers: optimized-only vs optimized+live, same long package.
  auto BootAndMeasure = [&](bool PrecompileLive) {
    vm::ServerConfig C = Config;
    C.Jit.PrecompileLiveCode = PrecompileLive;
    auto S = std::make_unique<vm::Server>(W->Repo, C, 71);
    alwaysAssert(S->installPackage(LongPkg).ok(), "package rejected");
    vm::InitStats Init = S->startup();
    uint64_t LiveAtStart = liveBytes(*S);
    // Serve a while; watch the post-start live tail.
    Rng R(5);
    for (int I = 0; I < 300; ++I) {
      uint32_t E = Traffic.sampleEndpoint(0, 0, R);
      S->executeRequest(W->Endpoints[E], fleet::TrafficModel::makeArgs(R));
      S->grantJitTime(0.5);
    }
    while (S->theJit().hasPendingWork())
      S->grantJitTime(1.0);
    uint64_t LiveTail = liveBytes(*S) - LiveAtStart;
    std::printf("  %-24s init %6.2fs, live code at start %6llu B, "
                "post-start live tail %6llu B\n",
                PrecompileLive ? "optimized + live:" : "optimized only:",
                Init.TotalSeconds,
                static_cast<unsigned long long>(LiveAtStart),
                static_cast<unsigned long long>(LiveTail));
    return Init.TotalSeconds;
  };

  std::printf("consumer boot (same package):\n");
  double InitOptOnly = BootAndMeasure(false);
  double InitWithLive = BootAndMeasure(true);

  std::printf("\nshape check (paper section IV-A): pre-compiling live "
              "code lengthens consumer init (%.2fs -> %.2fs) and "
              "requires seeders to run far past the C2 window for "
              "coverage, in exchange for shrinking the post-start "
              "tracelet tail -- the trade HHVM declined, since optimized "
              "code alone reaches ~90%% of peak\n",
              InitOptOnly, InitWithLive);
  return 0;
}
