//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrent-serving load harness: N closed-loop client threads drive
/// vm::Server::serve() while a background thread drains the
/// retranslate-all pipeline through runBackgroundJitWork(), publishing a
/// fresh translation snapshot after each grant.  Per-request host
/// latencies are split at the warmup boundary -- the ticket index at
/// which the compiler thread ran out of work, i.e. the last snapshot
/// publication -- and p50/p95/p99 are reported separately for the warmup
/// and steady phases (warmup exclusion per Barrett et al., "Virtual
/// Machine Warmup Blows Hot and Cold").
///
/// Wall-clock numbers vary with the host; everything in `--counters`
/// output (served/shed counts, the per-index observables digest, the
/// translation placement digest, snapshots published) is deterministic
/// by the serving engine's contract -- byte-identical across runs AND
/// across client thread counts, which ci/check.sh's CHECK_SERVER stage
/// asserts by diffing `--threads 1` against `--threads 4`.  The
/// checked-in BENCH_server.json is this harness's `--quick --json`
/// output; CHECK_SERVER re-checks its deterministic fields every run.
///
//===----------------------------------------------------------------------===//

#include "StatsRunner.h"
#include "fleet/WorkloadGen.h"
#include "support/Hashing.h"
#include "support/StringUtil.h"
#include "vm/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace jumpstart;

namespace {

/// The deterministic request schedule: round-robin endpoints, hashed
/// argument stream (same recurrence as the DiffRunner's).
std::vector<runtime::Value> argsFor(uint32_t Rq) {
  return {runtime::Value::integer(
      static_cast<int64_t>((Rq * 2654435761ull) & 0xFFFFFull))};
}

struct LoadResult {
  uint32_t Threads = 0;
  uint64_t Requests = 0;
  double Seconds = 0;
  /// Ticket index at which the background compiler finished (the last
  /// snapshot publication); requests before it are warmup samples.
  uint64_t WarmupBoundary = 0;
  std::vector<double> WarmupNs;
  std::vector<double> SteadyNs;
  // Deterministic by the serving engine's contract.
  vm::ServeStats Stats;
  uint64_t ObsDigest = 0;
  uint64_t PlacementDigest = 0;
  uint64_t JitTranslations = 0;

  double requestsPerSec() const { return Requests / Seconds; }
};

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t I = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

/// Serial profiling prefix with per-request JIT grants, withholding the
/// grant after the final request so the retranslate-all it triggers is
/// still fully queued when the concurrent window opens.
void profilePrefix(vm::Server &S, const fleet::Workload &W, uint32_t N) {
  for (uint32_t Rq = 0; Rq < N; ++Rq) {
    S.executeRequest(W.Endpoints[Rq % W.Endpoints.size()], argsFor(Rq));
    if (Rq + 1 < N)
      S.grantJitTime(0.25);
  }
}

LoadResult runLoad(const fleet::Workload &W, uint32_t ProfileTarget,
                   uint32_t Requests, uint32_t Threads) {
  vm::ServerConfig C =
      vm::ServerConfigBuilder()
          .cores(16)
          .jitWorkerCores(2)
          .serveWorkers(Threads)
          .name(strFormat("load-t%u", Threads))
          .build();
  C.Jit.ProfileRequestTarget = ProfileTarget;
  // Stretch optimized-compile costs so the background retranslate-all
  // spans a few dozen grant quanta (=> several mid-window publications).
  C.Jit.OptCompileCostPerBytecode = 2500;

  vm::Server S(W.Repo, C, /*Seed=*/7);
  S.startup();
  profilePrefix(S, W, ProfileTarget);

  LoadResult R;
  R.Threads = Threads;
  R.Requests = Requests;

  S.beginConcurrentServing();
  std::atomic<uint32_t> Next{0};
  std::atomic<uint64_t> Boundary{0};
  // Two-sided pacing couples the drain to client progress so the
  // retranslate-all genuinely overlaps live serving on any host: the
  // grants themselves are simulation arithmetic that would otherwise
  // finish in microseconds, while host-time pacing starves behind the
  // clients on single-core machines.  The compiler performs grant i
  // once ticket i*Step has been issued and then allows Step more
  // tickets; clients gate on the allowance OUTSIDE the timed region.
  // Pacing never reaches the deterministic counters: the number of
  // grants, and so of publications, is fixed by the virtual budget.
  const uint32_t Step = std::max<uint32_t>(1, Requests / 128);
  std::atomic<uint32_t> Allowed{Step};
  std::thread Compiler([&] {
    uint32_t Threshold = 0;
    while (S.theJit().hasPendingWork()) {
      while (Next.load(std::memory_order_relaxed) < Threshold &&
             Next.load(std::memory_order_relaxed) < Requests)
        std::this_thread::yield();
      S.runBackgroundJitWork(0.25);
      Threshold += Step;
      Allowed.fetch_add(Step, std::memory_order_relaxed);
    }
    Boundary.store(Next.load(std::memory_order_relaxed),
                   std::memory_order_release);
    Allowed.store(~uint32_t{0}, std::memory_order_release);
  });

  std::vector<double> LatencyNs(Requests);
  std::vector<vm::RequestObservables> Obs(Requests);
  auto Client = [&] {
    for (;;) {
      uint32_t Rq = Next.fetch_add(1, std::memory_order_relaxed);
      if (Rq >= Requests)
        break;
      while (Rq >= Allowed.load(std::memory_order_acquire))
        std::this_thread::yield();
      auto T0 = std::chrono::steady_clock::now();
      vm::RequestResult Res =
          S.serve(W.Endpoints[Rq % W.Endpoints.size()], argsFor(Rq), Rq);
      auto T1 = std::chrono::steady_clock::now();
      LatencyNs[Rq] =
          std::chrono::duration<double, std::nano>(T1 - T0).count();
      Obs[Rq] = std::move(Res.Obs);
    }
  };

  auto W0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Clients;
  for (uint32_t I = 1; I < Threads; ++I)
    Clients.emplace_back(Client);
  Client();
  for (std::thread &T : Clients)
    T.join();
  Compiler.join();
  auto W1 = std::chrono::steady_clock::now();
  R.Seconds = std::chrono::duration<double>(W1 - W0).count();
  R.Stats = S.endConcurrentServing();

  // Fold per-index observables in schedule order: identical for any
  // thread count or interleaving, by the engine's determinism contract.
  uint64_t H = 0xcbf29ce484222325ULL;
  for (const vm::RequestObservables &O : Obs) {
    H = fnv1a(O.Ret.data(), O.Ret.size(), H);
    H = fnv1a(O.Output.data(), O.Output.size(), H);
    H = hashCombine(H, O.Faults);
    H = hashCombine(H, O.Ok ? 1 : 0);
  }
  R.ObsDigest = H;
  R.PlacementDigest = hashString(S.theJit().transDb().placementDigest());
  R.JitTranslations = S.theJit().transDb().size();

  R.WarmupBoundary = std::min<uint64_t>(Boundary.load(), Requests);
  R.WarmupNs.assign(LatencyNs.begin(),
                    LatencyNs.begin() + static_cast<size_t>(R.WarmupBoundary));
  R.SteadyNs.assign(LatencyNs.begin() + static_cast<size_t>(R.WarmupBoundary),
                    LatencyNs.end());
  std::sort(R.WarmupNs.begin(), R.WarmupNs.end());
  std::sort(R.SteadyNs.begin(), R.SteadyNs.end());
  return R;
}

//===----------------------------------------------------------------------===//
// Statistical mode (--stats seeds=N,iters=M): multi-seed warmup curves.
//===----------------------------------------------------------------------===//

/// Runs N fresh servers serially and records mean *virtual* seconds per
/// request over fixed-size iteration blocks, granting the JIT a quantum
/// after every request so translations mature mid-series.  The early
/// blocks run interpreted and the later ones JITed: a genuine warmup
/// curve, measured on the virtual clock so the series -- and the stats
/// block derived from it -- is byte-identical on any host.  Block size
/// and profile target are fixed independently of --quick so the quick CI
/// run reproduces the committed snapshot's stats block exactly.
stats::StatsSummary runStatsSweep(const fleet::Workload &W,
                                  const bench::StatsCliOptions &O) {
  constexpr uint32_t kBlock = 40;
  constexpr uint32_t kProfileTarget = 120;
  std::vector<std::pair<uint64_t, std::vector<double>>> SeedSeries;
  for (uint32_t Seed = 0; Seed < O.Seeds; ++Seed) {
    vm::ServerConfig C = vm::ServerConfigBuilder()
                             .cores(16)
                             .jitWorkerCores(2)
                             .name(strFormat("stats-s%u", Seed))
                             .build();
    C.Jit.ProfileRequestTarget = kProfileTarget;
    vm::Server S(W.Repo, C, /*Seed=*/7 + Seed);
    S.startup();
    std::vector<double> Series;
    Series.reserve(O.Iters);
    const uint32_t Rq0 = Seed * 9176;
    for (uint32_t It = 0; It < O.Iters; ++It) {
      double Sum = 0;
      for (uint32_t B = 0; B < kBlock; ++B) {
        uint32_t Rq = Rq0 + It * kBlock + B;
        vm::RequestResult Res =
            S.executeRequest(W.Endpoints[Rq % W.Endpoints.size()], argsFor(Rq));
        Sum += Res.Seconds;
        S.grantJitTime(0.25);
      }
      Series.push_back(Sum / kBlock);
    }
    SeedSeries.emplace_back(Seed, std::move(Series));
  }
  return stats::analyzeRuns(SeedSeries);
}

void printPhase(const char *Name, const std::vector<double> &Sorted) {
  std::printf("  %-7s samples=%-7zu p50=%9.0fns  p95=%9.0fns  p99=%9.0fns\n",
              Name, Sorted.size(), percentile(Sorted, 0.50),
              percentile(Sorted, 0.95), percentile(Sorted, 0.99));
}

void emitPhaseJson(std::ofstream &Out, const char *Name,
                   const std::vector<double> &Sorted, const char *Trail) {
  Out << strFormat("    \"%s\": {\"samples\": %zu, \"p50_ns\": %.0f, "
                   "\"p95_ns\": %.0f, \"p99_ns\": %.0f}%s\n",
                   Name, Sorted.size(), percentile(Sorted, 0.50),
                   percentile(Sorted, 0.95), percentile(Sorted, 0.99), Trail);
}

void writeJson(const std::string &Path, const LoadResult &R,
               const bench::StatsCliOptions &StatsOpts,
               const stats::StatsSummary *Stats) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  Out << "{\n";
  // Host-dependent: reported, never gated.
  Out << strFormat("  \"host\": {\n    \"threads\": %u, \"seconds\": %.6f, "
                   "\"requests_per_sec\": %.1f, \"warmup_boundary\": %llu,\n",
                   R.Threads, R.Seconds, R.requestsPerSec(),
                   static_cast<unsigned long long>(R.WarmupBoundary));
  emitPhaseJson(Out, "warmup", R.WarmupNs, ",");
  emitPhaseJson(Out, "steady", R.SteadyNs, "");
  Out << "  },\n";
  // Deterministic: ci/check.sh CHECK_SERVER byte-checks these against a
  // fresh run (and across --threads 1/4).
  Out << strFormat(
      "  \"deterministic\": {\"requests\": %llu, \"served\": %llu, "
      "\"shed\": %llu, \"faults\": %llu, \"snapshots_published\": %llu, "
      "\"snapshots_reclaimed\": %llu, \"translations\": %llu, "
      "\"obs_digest\": \"%016llx\", \"placement_digest\": \"%016llx\"}%s\n",
      static_cast<unsigned long long>(R.Requests),
      static_cast<unsigned long long>(R.Stats.Served),
      static_cast<unsigned long long>(R.Stats.Shed),
      static_cast<unsigned long long>(R.Stats.Faults),
      static_cast<unsigned long long>(R.Stats.SnapshotsPublished),
      static_cast<unsigned long long>(R.Stats.SnapshotsReclaimed),
      static_cast<unsigned long long>(R.JitTranslations),
      static_cast<unsigned long long>(R.ObsDigest),
      static_cast<unsigned long long>(R.PlacementDigest), Stats ? "," : "");
  if (Stats)
    Out << bench::statsBlockJson("virtual_seconds_per_request", StatsOpts,
                                 *Stats)
        << "\n";
  Out << "}\n";
}

void writeCounters(const std::string &Path, const LoadResult &R,
                   const stats::StatsSummary *Stats) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  Out << strFormat(
      "serve requests=%llu served=%llu shed=%llu faults=%llu "
      "snapshots=%llu reclaimed=%llu translations=%llu "
      "obs_digest=%016llx placement_digest=%016llx\n",
      static_cast<unsigned long long>(R.Requests),
      static_cast<unsigned long long>(R.Stats.Served),
      static_cast<unsigned long long>(R.Stats.Shed),
      static_cast<unsigned long long>(R.Stats.Faults),
      static_cast<unsigned long long>(R.Stats.SnapshotsPublished),
      static_cast<unsigned long long>(R.Stats.SnapshotsReclaimed),
      static_cast<unsigned long long>(R.JitTranslations),
      static_cast<unsigned long long>(R.ObsDigest),
      static_cast<unsigned long long>(R.PlacementDigest));
  if (Stats)
    Out << bench::statsCountersLine("virtual_seconds_per_request", *Stats);
}

} // namespace

int main(int argc, char **argv) {
  uint32_t ProfileTarget = 300;
  uint32_t Requests = 12000;
  uint32_t Threads = 4;
  std::string JsonPath;
  std::string CountersPath;
  bench::StatsCliOptions StatsOpts;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0) {
      ProfileTarget = 60;
      Requests = 2000;
    } else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--counters") == 0 && I + 1 < argc) {
      CountersPath = argv[++I];
    } else if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      Threads = static_cast<uint32_t>(std::atoi(argv[++I]));
      if (Threads == 0) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      std::string_view Spec =
          I + 1 < argc && argv[I + 1][0] != '-' ? argv[++I] : "";
      if (!bench::parseStatsSpec(Spec, StatsOpts)) {
        std::fprintf(stderr, "bad --stats spec: %s\n",
                     std::string(Spec).c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json PATH] [--counters PATH] "
                   "[--threads N] [--stats [seeds=N,iters=M]]\n",
                   argv[0]);
      return 2;
    }
  }

  fleet::WorkloadParams P;
  P.NumHelpers = 240;
  P.NumClasses = 48;
  P.NumEndpoints = 24;
  P.NumUnits = 24;
  std::unique_ptr<fleet::Workload> W = fleet::generateWorkload(P);

  LoadResult R = runLoad(*W, ProfileTarget, Requests, Threads);
  stats::StatsSummary Stats;
  if (StatsOpts.Enabled)
    Stats = runStatsSweep(*W, StatsOpts);

  std::printf("server_load: %u client threads, %llu requests, %.3fs "
              "(%.0f req/s), warmup boundary at ticket %llu\n",
              R.Threads, static_cast<unsigned long long>(R.Requests),
              R.Seconds, R.requestsPerSec(),
              static_cast<unsigned long long>(R.WarmupBoundary));
  printPhase("warmup", R.WarmupNs);
  printPhase("steady", R.SteadyNs);
  std::printf("  served=%llu shed=%llu snapshots=%llu/%llu reclaimed "
              "obs_digest=%016llx\n",
              static_cast<unsigned long long>(R.Stats.Served),
              static_cast<unsigned long long>(R.Stats.Shed),
              static_cast<unsigned long long>(R.Stats.SnapshotsReclaimed),
              static_cast<unsigned long long>(R.Stats.SnapshotsPublished),
              static_cast<unsigned long long>(R.ObsDigest));
  if (StatsOpts.Enabled)
    std::printf("  stats virtual-s/req over %u seeds x %u iters: worst=%s "
                "ci=[%.6f, %.6f] steady from iter %.1f\n",
                StatsOpts.Seeds, StatsOpts.Iters,
                stats::warmupClassName(Stats.WorstClass), Stats.SteadyCI.Lo,
                Stats.SteadyCI.Hi, Stats.SteadyStartMean);

  if (!JsonPath.empty())
    writeJson(JsonPath, R, StatsOpts, StatsOpts.Enabled ? &Stats : nullptr);
  if (!CountersPath.empty())
    writeCounters(CountersPath, R, StatsOpts.Enabled ? &Stats : nullptr);
  return 0;
}
