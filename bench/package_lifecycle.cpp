//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile-package lifecycle harness (ROADMAP item 4).  Two jobs:
///
///   * `--sweep` (default): the staleness-under-drift sweep
///     (core::runDriftSweep) -- one seeder package rebased onto 0..N
///     drifted releases of the synthetic site, published full-then-delta
///     through core::PackageManager, consumer-accepted and warmup-
///     measured per age.  Everything runs on the virtual clock, so the
///     `--json` rendering is byte-deterministic; the committed
///     BENCH_package.json is this harness's default `--json` output and
///     ci/check.sh's CHECK_PACKAGE stage byte-compares a fresh run
///     against it.  `--quick` shrinks the site and age range for
///     sanitizer runs.
///
///   * `--check N SEED`: the lifecycle property sweep over N generated
///     programs (testing::ProgramGen): per program, two seeders grow
///     packages on the same repo, and the harness asserts (a) the merged
///     package bytes are identical for either seeder arrival order,
///     (b) the delta against the sibling package reconstructs its exact
///     bytes, and (c) the merged package is lint-clean.  Exits non-zero
///     on the first violated property.
///
//===----------------------------------------------------------------------===//

#include "StatsRunner.h"
#include "analysis/Linter.h"
#include "core/DriftSweep.h"
#include "profile/PackageDelta.h"
#include "profile/PackageMerge.h"
#include "runtime/Builtins.h"
#include "support/StringUtil.h"
#include "testing/DiffRunner.h"
#include "testing/ProgramGen.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace jumpstart;

namespace {

core::DriftSweepParams sweepParams(bool Quick) {
  core::DriftSweepParams P;
  if (Quick) {
    P.Site.NumHelpers = 120;
    P.Site.NumClasses = 24;
    P.Site.NumEndpoints = 12;
    P.Site.NumUnits = 12;
    P.MaxAge = 2;
    P.SeederRequests = 400;
    P.WarmupSeconds = 120;
    P.OfferedRps = 200;
    P.Config.Jit.ProfileRequestTarget = 100;
  } else {
    P.Site.NumHelpers = 300;
    P.Site.NumClasses = 48;
    P.Site.NumEndpoints = 24;
    P.Site.NumUnits = 24;
    P.MaxAge = 4;
    // Long enough that every endpoint is profiled: endpoint renames must
    // show up as dropped anchors, not vanish under a helper-only profile.
    P.Config.Jit.ProfileRequestTarget = 400;
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Statistical mode (--stats seeds=N,iters=M): multi-seed warmup curves.
//===----------------------------------------------------------------------===//

/// Runs N Jump-Start consumer warmup simulations with distinct seeds on
/// a fixed small site (independent of --quick, so every invocation
/// reproduces the committed snapshot's stats block) and classifies each
/// virtual-time normalized-RPS curve.  Iterations map to simulated
/// seconds: one sample per tick.
stats::StatsSummary runStatsSweep(const bench::StatsCliOptions &O) {
  fleet::WorkloadParams SiteP;
  SiteP.NumHelpers = 120;
  SiteP.NumClasses = 24;
  SiteP.NumEndpoints = 12;
  SiteP.NumUnits = 12;
  std::unique_ptr<fleet::Workload> W = fleet::generateWorkload(SiteP);
  fleet::TrafficModel Traffic(*W, fleet::TrafficParams(), 21);
  vm::ServerConfig Config;
  Config.Jit.ProfileRequestTarget = 200;

  vm::ServerConfig SeederConfig = Config;
  SeederConfig.Jit.SeederInstrumentation = true;
  auto Seeder = fleet::runSeeder(*W, Traffic, SeederConfig, 0, 0, 150, 3);
  profile::ProfilePackage Pkg = Seeder->buildSeederPackage(0, 0, 1);
  Seeder.reset();

  std::vector<std::pair<uint64_t, std::vector<double>>> SeedSeries;
  for (uint32_t Seed = 0; Seed < O.Seeds; ++Seed) {
    fleet::ServerSimParams P;
    P.DurationSeconds = O.Iters;
    P.OfferedRps = 450;
    P.Seed = 7 + Seed;
    P.RunLabel = strFormat("stats-s%u", Seed);
    fleet::WarmupResult R = fleet::runWarmup(*W, Traffic, Config, P, &Pkg);
    SeedSeries.emplace_back(Seed, R.normalizedRps().values());
  }
  return stats::analyzeRuns(SeedSeries,
                            fleet::warmupThroughputClassifyParams());
}

void writeJson(const std::string &Path, const core::DriftSweepParams &P,
               const core::DriftSweepResult &R,
               const bench::StatsCliOptions &StatsOpts,
               const stats::StatsSummary *Stats) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  // Everything below runs on the virtual clock: the whole file is
  // deterministic and ci/check.sh CHECK_PACKAGE byte-compares it
  // against the committed BENCH_package.json.
  Out << "{\n";
  Out << strFormat("  \"site\": {\"helpers\": %u, \"endpoints\": %u, "
                   "\"max_age\": %u, \"seeder_requests\": %u},\n",
                   P.Site.NumHelpers, P.Site.NumEndpoints, P.MaxAge,
                   P.SeederRequests);
  Out << "  \"drift\": [\n";
  for (size_t I = 0; I < R.Points.size(); ++I) {
    const core::DriftAgePoint &Pt = R.Points[I];
    Out << strFormat(
        "    {\"age\": %u, \"jump_start\": %s, \"profiled_funcs\": %zu, "
        "\"funcs_dropped\": %zu, \"package_bytes\": %zu, "
        "\"wire_bytes\": %zu, \"loss_with\": %.6f, \"loss_without\": %.6f, "
        "\"benefit_fraction\": %.6f, \"class_without\": \"%s\", "
        "\"class_with\": \"%s\", \"steady_start_without\": %zu, "
        "\"steady_start_with\": %zu}%s\n",
        Pt.Age, Pt.ConsumerUsedJumpStart ? "true" : "false",
        Pt.ProfiledFuncs, Pt.Rebase.FuncsDropped, Pt.PackageBytes,
        Pt.WireBytes, Pt.CapacityLossWith, Pt.CapacityLossWithout,
        Pt.BenefitFraction, stats::warmupClassName(Pt.ColdClass.Class),
        stats::warmupClassName(Pt.WarmClass.Class), Pt.ColdClass.SteadyStart,
        Pt.WarmClass.SteadyStart, I + 1 < R.Points.size() ? "," : "");
  }
  Out << strFormat("  ]%s\n", Stats ? "," : "");
  if (Stats)
    Out << bench::statsBlockJson("jumpstart_normalized_rps", StatsOpts,
                                 *Stats)
        << "\n";
  Out << "}\n";
}

int runSweep(bool Quick, const std::string &JsonPath,
             const bench::StatsCliOptions &StatsOpts) {
  core::DriftSweepParams P = sweepParams(Quick);
  core::DriftSweepResult R = core::runDriftSweep(P);
  for (const std::string &Line : R.Log)
    std::printf("package_lifecycle: %s\n", Line.c_str());
  if (!R.Result.ok()) {
    std::fprintf(stderr, "package_lifecycle: sweep failed: %s\n",
                 R.Result.message().c_str());
    return 1;
  }
  std::printf("package_lifecycle: %zu ages swept; benefit %.1f%% fresh "
              "-> %.1f%% at age %u\n",
              R.Points.size(), 100 * R.Points.front().BenefitFraction,
              100 * R.Points.back().BenefitFraction, R.Points.back().Age);
  stats::StatsSummary Stats;
  if (StatsOpts.Enabled) {
    Stats = runStatsSweep(StatsOpts);
    std::printf("package_lifecycle: stats js normalized-rps over %u seeds "
                "x %u iters: worst=%s ci=[%.6f, %.6f] steady from %.1f\n",
                StatsOpts.Seeds, StatsOpts.Iters,
                stats::warmupClassName(Stats.WorstClass), Stats.SteadyCI.Lo,
                Stats.SteadyCI.Hi, Stats.SteadyStartMean);
  }
  if (!JsonPath.empty())
    writeJson(JsonPath, P, R, StatsOpts, StatsOpts.Enabled ? &Stats : nullptr);
  return 0;
}

/// Grows one package on \p W: a seeder-instrumented server executes
/// \p Requests requests of a SeederId-dependent schedule, draining the
/// JIT pipeline as it goes.
profile::ProfilePackage growPackage(const fleet::Workload &W,
                                    uint64_t SeederId, uint32_t Requests) {
  vm::ServerConfig SC;
  SC.Name = strFormat("check-seeder-%llu",
                      static_cast<unsigned long long>(SeederId));
  SC.Jit.SeederInstrumentation = true;
  SC.Jit.ProfileRequestTarget = std::max<uint32_t>(2, Requests / 3);
  vm::Server S(W.Repo, SC, /*Seed=*/7 + SeederId);
  S.startup();
  for (uint32_t Rq = 0; Rq < Requests; ++Rq) {
    uint64_t Mix = Rq + SeederId * 5;
    S.executeRequest(
        W.Endpoints[Mix % W.Endpoints.size()],
        {runtime::Value::integer(
            static_cast<int64_t>((Mix * 2654435761ull) & 0xFFFFFull))});
    S.grantJitTime(16.0);
  }
  while (S.theJit().hasPendingWork())
    S.grantJitTime(16.0);
  return S.buildSeederPackage(0, 0, SeederId);
}

int runCheck(uint32_t Programs, uint64_t Seed) {
  const uint32_t NumBuiltins = static_cast<uint32_t>(
      runtime::BuiltinTable::standard().size());
  uint64_t MergedBytes = 0, DeltaBytes = 0;
  for (uint32_t I = 0; I < Programs; ++I) {
    uint64_t ProgSeed = Seed + I;
    testing::GenParams GP;
    GP.Seed = ProgSeed;
    fleet::Workload W;
    support::Status Compiled = testing::DiffRunner::compileProgram(
        testing::generateProgram(GP).render(), W);
    if (!Compiled.ok()) {
      std::fprintf(stderr,
                   "package_lifecycle: program %llu failed to compile: %s\n",
                   static_cast<unsigned long long>(ProgSeed),
                   Compiled.message().c_str());
      return 1;
    }

    profile::ProfilePackage A = growPackage(W, /*SeederId=*/1, 24);
    profile::ProfilePackage B = growPackage(W, /*SeederId=*/2, 24);

    // (a) Merge-order independence: byte-identical released blob.
    profile::ProfilePackage AB, BA;
    support::Status MergedAB =
        profile::mergePackages({{&A, 2}, {&B, 3}}, AB);
    support::Status MergedBA =
        profile::mergePackages({{&B, 3}, {&A, 2}}, BA);
    if (!MergedAB.ok() || !MergedBA.ok()) {
      std::fprintf(stderr, "package_lifecycle: program %llu merge failed: %s\n",
                   static_cast<unsigned long long>(ProgSeed),
                   (MergedAB.ok() ? MergedBA : MergedAB).message().c_str());
      return 1;
    }
    std::vector<uint8_t> Released = AB.serialize();
    if (Released != BA.serialize()) {
      std::fprintf(stderr,
                   "package_lifecycle: program %llu merged bytes depend on "
                   "seeder arrival order\n",
                   static_cast<unsigned long long>(ProgSeed));
      return 1;
    }
    MergedBytes += Released.size();

    // (b) Delta releases reconstruct exactly.
    std::vector<uint8_t> Parent = A.serialize();
    std::vector<uint8_t> Delta = profile::encodeDelta(Parent, Released);
    std::vector<uint8_t> Rebuilt;
    support::Status Applied = profile::applyDelta(Parent, Delta, Rebuilt);
    if (!Applied.ok() || Rebuilt != Released) {
      std::fprintf(stderr,
                   "package_lifecycle: program %llu delta round trip "
                   "broke: %s\n",
                   static_cast<unsigned long long>(ProgSeed),
                   Applied.ok() ? "bytes differ"
                                : Applied.message().c_str());
      return 1;
    }
    DeltaBytes += Delta.size();

    // (c) The merged package passes the consumer's strict lint.
    analysis::Linter L(W.Repo, NumBuiltins);
    for (const analysis::Diagnostic &D : L.lintPackage(AB)) {
      if (D.Sev != analysis::Severity::Error)
        continue;
      std::fprintf(stderr,
                   "package_lifecycle: program %llu merged package fails "
                   "lint: %s\n",
                   static_cast<unsigned long long>(ProgSeed),
                   D.str(&W.Repo).c_str());
      return 1;
    }
  }
  std::printf("package_lifecycle: %u programs checked: merge order "
              "invariant, deltas exact, merges lint-clean "
              "(%llu merged bytes, %llu delta bytes)\n",
              Programs, static_cast<unsigned long long>(MergedBytes),
              static_cast<unsigned long long>(DeltaBytes));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string JsonPath;
  int CheckPrograms = -1;
  uint64_t CheckSeed = 1;
  bench::StatsCliOptions StatsOpts;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
    } else if (std::strcmp(argv[I], "--sweep") == 0) {
      // default mode; accepted for symmetry
    } else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--check") == 0 && I + 2 < argc) {
      CheckPrograms = std::atoi(argv[++I]);
      CheckSeed = static_cast<uint64_t>(std::atoll(argv[++I]));
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      std::string_view Spec =
          I + 1 < argc && argv[I + 1][0] != '-' ? argv[++I] : "";
      if (!bench::parseStatsSpec(Spec, StatsOpts)) {
        std::fprintf(stderr, "bad --stats spec: %s\n",
                     std::string(Spec).c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sweep] [--quick] [--json PATH] "
                   "[--check PROGRAMS SEED] [--stats [seeds=N,iters=M]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (CheckPrograms >= 0)
    return runCheck(static_cast<uint32_t>(CheckPrograms), CheckSeed);
  return runSweep(Quick, JsonPath, StatsOpts);
}
