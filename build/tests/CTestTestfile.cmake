# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bytecode_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/jit_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
