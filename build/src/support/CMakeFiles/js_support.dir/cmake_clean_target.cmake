file(REMOVE_RECURSE
  "libjs_support.a"
)
