file(REMOVE_RECURSE
  "CMakeFiles/js_support.dir/Blob.cpp.o"
  "CMakeFiles/js_support.dir/Blob.cpp.o.d"
  "CMakeFiles/js_support.dir/Random.cpp.o"
  "CMakeFiles/js_support.dir/Random.cpp.o.d"
  "CMakeFiles/js_support.dir/Stats.cpp.o"
  "CMakeFiles/js_support.dir/Stats.cpp.o.d"
  "CMakeFiles/js_support.dir/StringUtil.cpp.o"
  "CMakeFiles/js_support.dir/StringUtil.cpp.o.d"
  "libjs_support.a"
  "libjs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
