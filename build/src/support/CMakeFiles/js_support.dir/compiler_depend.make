# Empty compiler generated dependencies file for js_support.
# This may be replaced when dependencies are built.
