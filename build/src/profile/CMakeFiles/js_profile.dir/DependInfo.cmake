
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/PackageIo.cpp" "src/profile/CMakeFiles/js_profile.dir/PackageIo.cpp.o" "gcc" "src/profile/CMakeFiles/js_profile.dir/PackageIo.cpp.o.d"
  "/root/repo/src/profile/ProfilePackage.cpp" "src/profile/CMakeFiles/js_profile.dir/ProfilePackage.cpp.o" "gcc" "src/profile/CMakeFiles/js_profile.dir/ProfilePackage.cpp.o.d"
  "/root/repo/src/profile/ProfileStore.cpp" "src/profile/CMakeFiles/js_profile.dir/ProfileStore.cpp.o" "gcc" "src/profile/CMakeFiles/js_profile.dir/ProfileStore.cpp.o.d"
  "/root/repo/src/profile/Validation.cpp" "src/profile/CMakeFiles/js_profile.dir/Validation.cpp.o" "gcc" "src/profile/CMakeFiles/js_profile.dir/Validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/js_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/js_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/js_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
