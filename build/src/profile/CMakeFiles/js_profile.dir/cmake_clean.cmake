file(REMOVE_RECURSE
  "CMakeFiles/js_profile.dir/PackageIo.cpp.o"
  "CMakeFiles/js_profile.dir/PackageIo.cpp.o.d"
  "CMakeFiles/js_profile.dir/ProfilePackage.cpp.o"
  "CMakeFiles/js_profile.dir/ProfilePackage.cpp.o.d"
  "CMakeFiles/js_profile.dir/ProfileStore.cpp.o"
  "CMakeFiles/js_profile.dir/ProfileStore.cpp.o.d"
  "CMakeFiles/js_profile.dir/Validation.cpp.o"
  "CMakeFiles/js_profile.dir/Validation.cpp.o.d"
  "libjs_profile.a"
  "libjs_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
