# Empty compiler generated dependencies file for js_profile.
# This may be replaced when dependencies are built.
