file(REMOVE_RECURSE
  "libjs_profile.a"
)
