file(REMOVE_RECURSE
  "CMakeFiles/js_sim.dir/Branch.cpp.o"
  "CMakeFiles/js_sim.dir/Branch.cpp.o.d"
  "CMakeFiles/js_sim.dir/Cache.cpp.o"
  "CMakeFiles/js_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/js_sim.dir/Machine.cpp.o"
  "CMakeFiles/js_sim.dir/Machine.cpp.o.d"
  "libjs_sim.a"
  "libjs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
