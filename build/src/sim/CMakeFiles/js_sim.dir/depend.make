# Empty dependencies file for js_sim.
# This may be replaced when dependencies are built.
