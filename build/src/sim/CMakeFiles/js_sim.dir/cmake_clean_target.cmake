file(REMOVE_RECURSE
  "libjs_sim.a"
)
