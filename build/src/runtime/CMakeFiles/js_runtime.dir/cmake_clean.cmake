file(REMOVE_RECURSE
  "CMakeFiles/js_runtime.dir/Builtins.cpp.o"
  "CMakeFiles/js_runtime.dir/Builtins.cpp.o.d"
  "CMakeFiles/js_runtime.dir/ClassLayout.cpp.o"
  "CMakeFiles/js_runtime.dir/ClassLayout.cpp.o.d"
  "CMakeFiles/js_runtime.dir/Heap.cpp.o"
  "CMakeFiles/js_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/js_runtime.dir/ValueOps.cpp.o"
  "CMakeFiles/js_runtime.dir/ValueOps.cpp.o.d"
  "libjs_runtime.a"
  "libjs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
