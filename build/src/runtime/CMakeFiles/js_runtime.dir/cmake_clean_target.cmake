file(REMOVE_RECURSE
  "libjs_runtime.a"
)
