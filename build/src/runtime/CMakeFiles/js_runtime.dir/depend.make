# Empty dependencies file for js_runtime.
# This may be replaced when dependencies are built.
