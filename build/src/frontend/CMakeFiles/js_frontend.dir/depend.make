# Empty dependencies file for js_frontend.
# This may be replaced when dependencies are built.
