file(REMOVE_RECURSE
  "libjs_frontend.a"
)
