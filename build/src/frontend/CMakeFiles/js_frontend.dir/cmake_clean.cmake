file(REMOVE_RECURSE
  "CMakeFiles/js_frontend.dir/Compiler.cpp.o"
  "CMakeFiles/js_frontend.dir/Compiler.cpp.o.d"
  "CMakeFiles/js_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/js_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/js_frontend.dir/Parser.cpp.o"
  "CMakeFiles/js_frontend.dir/Parser.cpp.o.d"
  "libjs_frontend.a"
  "libjs_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
