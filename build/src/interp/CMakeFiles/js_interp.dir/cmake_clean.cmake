file(REMOVE_RECURSE
  "CMakeFiles/js_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/js_interp.dir/Interpreter.cpp.o.d"
  "libjs_interp.a"
  "libjs_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
