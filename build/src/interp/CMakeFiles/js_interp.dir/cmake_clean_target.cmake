file(REMOVE_RECURSE
  "libjs_interp.a"
)
