# Empty compiler generated dependencies file for js_interp.
# This may be replaced when dependencies are built.
