# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("bytecode")
subdirs("frontend")
subdirs("runtime")
subdirs("interp")
subdirs("layout")
subdirs("profile")
subdirs("jit")
subdirs("sim")
subdirs("vm")
subdirs("fleet")
subdirs("core")
