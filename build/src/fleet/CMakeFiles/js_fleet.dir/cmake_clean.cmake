file(REMOVE_RECURSE
  "CMakeFiles/js_fleet.dir/Reliability.cpp.o"
  "CMakeFiles/js_fleet.dir/Reliability.cpp.o.d"
  "CMakeFiles/js_fleet.dir/ServerSim.cpp.o"
  "CMakeFiles/js_fleet.dir/ServerSim.cpp.o.d"
  "CMakeFiles/js_fleet.dir/SteadyState.cpp.o"
  "CMakeFiles/js_fleet.dir/SteadyState.cpp.o.d"
  "CMakeFiles/js_fleet.dir/Traffic.cpp.o"
  "CMakeFiles/js_fleet.dir/Traffic.cpp.o.d"
  "CMakeFiles/js_fleet.dir/WorkloadGen.cpp.o"
  "CMakeFiles/js_fleet.dir/WorkloadGen.cpp.o.d"
  "libjs_fleet.a"
  "libjs_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
