file(REMOVE_RECURSE
  "libjs_fleet.a"
)
