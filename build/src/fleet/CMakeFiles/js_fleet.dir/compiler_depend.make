# Empty compiler generated dependencies file for js_fleet.
# This may be replaced when dependencies are built.
