file(REMOVE_RECURSE
  "libjs_bytecode.a"
)
