
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/Blocks.cpp" "src/bytecode/CMakeFiles/js_bytecode.dir/Blocks.cpp.o" "gcc" "src/bytecode/CMakeFiles/js_bytecode.dir/Blocks.cpp.o.d"
  "/root/repo/src/bytecode/Disasm.cpp" "src/bytecode/CMakeFiles/js_bytecode.dir/Disasm.cpp.o" "gcc" "src/bytecode/CMakeFiles/js_bytecode.dir/Disasm.cpp.o.d"
  "/root/repo/src/bytecode/FuncBuilder.cpp" "src/bytecode/CMakeFiles/js_bytecode.dir/FuncBuilder.cpp.o" "gcc" "src/bytecode/CMakeFiles/js_bytecode.dir/FuncBuilder.cpp.o.d"
  "/root/repo/src/bytecode/Opcode.cpp" "src/bytecode/CMakeFiles/js_bytecode.dir/Opcode.cpp.o" "gcc" "src/bytecode/CMakeFiles/js_bytecode.dir/Opcode.cpp.o.d"
  "/root/repo/src/bytecode/Repo.cpp" "src/bytecode/CMakeFiles/js_bytecode.dir/Repo.cpp.o" "gcc" "src/bytecode/CMakeFiles/js_bytecode.dir/Repo.cpp.o.d"
  "/root/repo/src/bytecode/Verifier.cpp" "src/bytecode/CMakeFiles/js_bytecode.dir/Verifier.cpp.o" "gcc" "src/bytecode/CMakeFiles/js_bytecode.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/js_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
