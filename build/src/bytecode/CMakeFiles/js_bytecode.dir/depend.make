# Empty dependencies file for js_bytecode.
# This may be replaced when dependencies are built.
