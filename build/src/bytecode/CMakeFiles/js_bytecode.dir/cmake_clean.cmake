file(REMOVE_RECURSE
  "CMakeFiles/js_bytecode.dir/Blocks.cpp.o"
  "CMakeFiles/js_bytecode.dir/Blocks.cpp.o.d"
  "CMakeFiles/js_bytecode.dir/Disasm.cpp.o"
  "CMakeFiles/js_bytecode.dir/Disasm.cpp.o.d"
  "CMakeFiles/js_bytecode.dir/FuncBuilder.cpp.o"
  "CMakeFiles/js_bytecode.dir/FuncBuilder.cpp.o.d"
  "CMakeFiles/js_bytecode.dir/Opcode.cpp.o"
  "CMakeFiles/js_bytecode.dir/Opcode.cpp.o.d"
  "CMakeFiles/js_bytecode.dir/Repo.cpp.o"
  "CMakeFiles/js_bytecode.dir/Repo.cpp.o.d"
  "CMakeFiles/js_bytecode.dir/Verifier.cpp.o"
  "CMakeFiles/js_bytecode.dir/Verifier.cpp.o.d"
  "libjs_bytecode.a"
  "libjs_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
