# Empty dependencies file for js_layout.
# This may be replaced when dependencies are built.
