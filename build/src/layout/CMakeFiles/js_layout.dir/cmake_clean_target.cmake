file(REMOVE_RECURSE
  "libjs_layout.a"
)
