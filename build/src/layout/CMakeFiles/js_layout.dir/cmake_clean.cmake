file(REMOVE_RECURSE
  "CMakeFiles/js_layout.dir/CallGraph.cpp.o"
  "CMakeFiles/js_layout.dir/CallGraph.cpp.o.d"
  "CMakeFiles/js_layout.dir/ExtTsp.cpp.o"
  "CMakeFiles/js_layout.dir/ExtTsp.cpp.o.d"
  "CMakeFiles/js_layout.dir/FunctionSort.cpp.o"
  "CMakeFiles/js_layout.dir/FunctionSort.cpp.o.d"
  "CMakeFiles/js_layout.dir/HotCold.cpp.o"
  "CMakeFiles/js_layout.dir/HotCold.cpp.o.d"
  "libjs_layout.a"
  "libjs_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
