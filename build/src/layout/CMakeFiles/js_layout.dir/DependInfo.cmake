
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/CallGraph.cpp" "src/layout/CMakeFiles/js_layout.dir/CallGraph.cpp.o" "gcc" "src/layout/CMakeFiles/js_layout.dir/CallGraph.cpp.o.d"
  "/root/repo/src/layout/ExtTsp.cpp" "src/layout/CMakeFiles/js_layout.dir/ExtTsp.cpp.o" "gcc" "src/layout/CMakeFiles/js_layout.dir/ExtTsp.cpp.o.d"
  "/root/repo/src/layout/FunctionSort.cpp" "src/layout/CMakeFiles/js_layout.dir/FunctionSort.cpp.o" "gcc" "src/layout/CMakeFiles/js_layout.dir/FunctionSort.cpp.o.d"
  "/root/repo/src/layout/HotCold.cpp" "src/layout/CMakeFiles/js_layout.dir/HotCold.cpp.o" "gcc" "src/layout/CMakeFiles/js_layout.dir/HotCold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/js_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
