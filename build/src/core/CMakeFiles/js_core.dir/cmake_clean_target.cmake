file(REMOVE_RECURSE
  "libjs_core.a"
)
