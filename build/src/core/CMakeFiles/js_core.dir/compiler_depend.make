# Empty compiler generated dependencies file for js_core.
# This may be replaced when dependencies are built.
