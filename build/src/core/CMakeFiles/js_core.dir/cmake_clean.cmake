file(REMOVE_RECURSE
  "CMakeFiles/js_core.dir/Consumer.cpp.o"
  "CMakeFiles/js_core.dir/Consumer.cpp.o.d"
  "CMakeFiles/js_core.dir/Deployment.cpp.o"
  "CMakeFiles/js_core.dir/Deployment.cpp.o.d"
  "CMakeFiles/js_core.dir/PackageStore.cpp.o"
  "CMakeFiles/js_core.dir/PackageStore.cpp.o.d"
  "CMakeFiles/js_core.dir/Seeder.cpp.o"
  "CMakeFiles/js_core.dir/Seeder.cpp.o.d"
  "libjs_core.a"
  "libjs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
