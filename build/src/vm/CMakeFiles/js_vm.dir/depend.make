# Empty dependencies file for js_vm.
# This may be replaced when dependencies are built.
