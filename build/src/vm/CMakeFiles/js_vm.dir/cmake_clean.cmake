file(REMOVE_RECURSE
  "CMakeFiles/js_vm.dir/Server.cpp.o"
  "CMakeFiles/js_vm.dir/Server.cpp.o.d"
  "libjs_vm.a"
  "libjs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
