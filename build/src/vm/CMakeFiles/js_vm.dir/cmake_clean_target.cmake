file(REMOVE_RECURSE
  "libjs_vm.a"
)
