# Empty compiler generated dependencies file for js_jit.
# This may be replaced when dependencies are built.
