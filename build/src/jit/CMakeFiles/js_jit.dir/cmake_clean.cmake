file(REMOVE_RECURSE
  "CMakeFiles/js_jit.dir/CodeCache.cpp.o"
  "CMakeFiles/js_jit.dir/CodeCache.cpp.o.d"
  "CMakeFiles/js_jit.dir/Jit.cpp.o"
  "CMakeFiles/js_jit.dir/Jit.cpp.o.d"
  "CMakeFiles/js_jit.dir/Lower.cpp.o"
  "CMakeFiles/js_jit.dir/Lower.cpp.o.d"
  "CMakeFiles/js_jit.dir/Recorders.cpp.o"
  "CMakeFiles/js_jit.dir/Recorders.cpp.o.d"
  "CMakeFiles/js_jit.dir/Region.cpp.o"
  "CMakeFiles/js_jit.dir/Region.cpp.o.d"
  "CMakeFiles/js_jit.dir/TransDb.cpp.o"
  "CMakeFiles/js_jit.dir/TransDb.cpp.o.d"
  "CMakeFiles/js_jit.dir/TransLayout.cpp.o"
  "CMakeFiles/js_jit.dir/TransLayout.cpp.o.d"
  "CMakeFiles/js_jit.dir/VasmTracer.cpp.o"
  "CMakeFiles/js_jit.dir/VasmTracer.cpp.o.d"
  "libjs_jit.a"
  "libjs_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
