file(REMOVE_RECURSE
  "libjs_jit.a"
)
