
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/CodeCache.cpp" "src/jit/CMakeFiles/js_jit.dir/CodeCache.cpp.o" "gcc" "src/jit/CMakeFiles/js_jit.dir/CodeCache.cpp.o.d"
  "/root/repo/src/jit/Jit.cpp" "src/jit/CMakeFiles/js_jit.dir/Jit.cpp.o" "gcc" "src/jit/CMakeFiles/js_jit.dir/Jit.cpp.o.d"
  "/root/repo/src/jit/Lower.cpp" "src/jit/CMakeFiles/js_jit.dir/Lower.cpp.o" "gcc" "src/jit/CMakeFiles/js_jit.dir/Lower.cpp.o.d"
  "/root/repo/src/jit/Recorders.cpp" "src/jit/CMakeFiles/js_jit.dir/Recorders.cpp.o" "gcc" "src/jit/CMakeFiles/js_jit.dir/Recorders.cpp.o.d"
  "/root/repo/src/jit/Region.cpp" "src/jit/CMakeFiles/js_jit.dir/Region.cpp.o" "gcc" "src/jit/CMakeFiles/js_jit.dir/Region.cpp.o.d"
  "/root/repo/src/jit/TransDb.cpp" "src/jit/CMakeFiles/js_jit.dir/TransDb.cpp.o" "gcc" "src/jit/CMakeFiles/js_jit.dir/TransDb.cpp.o.d"
  "/root/repo/src/jit/TransLayout.cpp" "src/jit/CMakeFiles/js_jit.dir/TransLayout.cpp.o" "gcc" "src/jit/CMakeFiles/js_jit.dir/TransLayout.cpp.o.d"
  "/root/repo/src/jit/VasmTracer.cpp" "src/jit/CMakeFiles/js_jit.dir/VasmTracer.cpp.o" "gcc" "src/jit/CMakeFiles/js_jit.dir/VasmTracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/js_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/js_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/js_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/js_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/js_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/js_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/js_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
