file(REMOVE_RECURSE
  "CMakeFiles/fig1_code_size.dir/fig1_code_size.cpp.o"
  "CMakeFiles/fig1_code_size.dir/fig1_code_size.cpp.o.d"
  "fig1_code_size"
  "fig1_code_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_code_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
