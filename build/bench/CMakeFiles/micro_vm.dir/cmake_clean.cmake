file(REMOVE_RECURSE
  "CMakeFiles/micro_vm.dir/micro_vm.cpp.o"
  "CMakeFiles/micro_vm.dir/micro_vm.cpp.o.d"
  "micro_vm"
  "micro_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
