# Empty dependencies file for ablation_live_precompile.
# This may be replaced when dependencies are built.
