file(REMOVE_RECURSE
  "CMakeFiles/ablation_live_precompile.dir/ablation_live_precompile.cpp.o"
  "CMakeFiles/ablation_live_precompile.dir/ablation_live_precompile.cpp.o.d"
  "ablation_live_precompile"
  "ablation_live_precompile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_live_precompile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
