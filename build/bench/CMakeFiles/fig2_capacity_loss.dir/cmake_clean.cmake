file(REMOVE_RECURSE
  "CMakeFiles/fig2_capacity_loss.dir/fig2_capacity_loss.cpp.o"
  "CMakeFiles/fig2_capacity_loss.dir/fig2_capacity_loss.cpp.o.d"
  "fig2_capacity_loss"
  "fig2_capacity_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_capacity_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
