# Empty dependencies file for fig6_optimizations.
# This may be replaced when dependencies are built.
