# Empty compiler generated dependencies file for fig4_warmup.
# This may be replaced when dependencies are built.
