file(REMOVE_RECURSE
  "CMakeFiles/fig4_warmup.dir/fig4_warmup.cpp.o"
  "CMakeFiles/fig4_warmup.dir/fig4_warmup.cpp.o.d"
  "fig4_warmup"
  "fig4_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
