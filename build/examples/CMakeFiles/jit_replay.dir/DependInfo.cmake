
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/jit_replay.cpp" "examples/CMakeFiles/jit_replay.dir/jit_replay.cpp.o" "gcc" "examples/CMakeFiles/jit_replay.dir/jit_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/js_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/js_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/js_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/js_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/js_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/js_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/js_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/js_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/js_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/js_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/js_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/js_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
