file(REMOVE_RECURSE
  "CMakeFiles/jit_replay.dir/jit_replay.cpp.o"
  "CMakeFiles/jit_replay.dir/jit_replay.cpp.o.d"
  "jit_replay"
  "jit_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
