# Empty compiler generated dependencies file for jit_replay.
# This may be replaced when dependencies are built.
