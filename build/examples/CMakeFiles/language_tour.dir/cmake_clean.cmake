file(REMOVE_RECURSE
  "CMakeFiles/language_tour.dir/language_tour.cpp.o"
  "CMakeFiles/language_tour.dir/language_tour.cpp.o.d"
  "language_tour"
  "language_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
