# Empty dependencies file for jsvm.
# This may be replaced when dependencies are built.
