file(REMOVE_RECURSE
  "CMakeFiles/jsvm.dir/jsvm.cpp.o"
  "CMakeFiles/jsvm.dir/jsvm.cpp.o.d"
  "jsvm"
  "jsvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
