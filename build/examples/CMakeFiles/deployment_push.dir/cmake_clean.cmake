file(REMOVE_RECURSE
  "CMakeFiles/deployment_push.dir/deployment_push.cpp.o"
  "CMakeFiles/deployment_push.dir/deployment_push.cpp.o.d"
  "deployment_push"
  "deployment_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
