# Empty compiler generated dependencies file for deployment_push.
# This may be replaced when dependencies are built.
