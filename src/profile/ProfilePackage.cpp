//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfilePackage.h"

#include "support/Hashing.h"

using namespace jumpstart;
using namespace jumpstart::profile;

namespace {

void encodeTypeObservation(BlobEncoder &E, const TypeObservation &T) {
  for (uint64_t C : T.Counts)
    E.writeVarint(C);
}

TypeObservation decodeTypeObservation(BlobDecoder &D) {
  TypeObservation T;
  for (uint64_t &C : T.Counts)
    C = D.readVarint();
  return T;
}

void encodeFuncProfile(BlobEncoder &E, const FuncProfile &F) {
  E.writeVarint(F.Func);
  E.writeVarint(F.EntryCount);
  E.writeU64Vector(F.BlockCounts);
  E.writeVarint(F.CallTargets.size());
  for (const auto &[Site, Targets] : F.CallTargets) {
    E.writeVarint(Site);
    E.writeVarint(Targets.size());
    for (const auto &[Callee, Count] : Targets) {
      E.writeVarint(Callee);
      E.writeVarint(Count);
    }
  }
  E.writeVarint(F.ParamTypes.size());
  for (const TypeObservation &T : F.ParamTypes)
    encodeTypeObservation(E, T);
  E.writeVarint(F.LoadTypes.size());
  for (const auto &[Instr, T] : F.LoadTypes) {
    E.writeVarint(Instr);
    encodeTypeObservation(E, T);
  }
}

bool decodeFuncProfile(BlobDecoder &D, FuncProfile &F) {
  F.Func = static_cast<uint32_t>(D.readVarint());
  F.EntryCount = D.readVarint();
  F.BlockCounts = D.readU64Vector();
  uint64_t NumSites = D.readVarint();
  if (NumSites > D.remaining())
    return false;
  for (uint64_t I = 0; I < NumSites && D.ok(); ++I) {
    uint32_t Site = static_cast<uint32_t>(D.readVarint());
    uint64_t NumTargets = D.readVarint();
    if (NumTargets > D.remaining())
      return false;
    auto &Targets = F.CallTargets[Site];
    for (uint64_t J = 0; J < NumTargets && D.ok(); ++J) {
      uint32_t Callee = static_cast<uint32_t>(D.readVarint());
      Targets[Callee] = D.readVarint();
    }
  }
  uint64_t NumParams = D.readVarint();
  if (NumParams > D.remaining() + 1)
    return false;
  for (uint64_t I = 0; I < NumParams && D.ok(); ++I)
    F.ParamTypes.push_back(decodeTypeObservation(D));
  uint64_t NumLoads = D.readVarint();
  if (NumLoads > D.remaining() + 1)
    return false;
  for (uint64_t I = 0; I < NumLoads && D.ok(); ++I) {
    uint32_t Instr = static_cast<uint32_t>(D.readVarint());
    F.LoadTypes[Instr] = decodeTypeObservation(D);
  }
  return D.ok();
}

} // namespace

std::vector<uint8_t> ProfilePackage::serialize() const {
  BlobEncoder Payload;
  Payload.writeFixed64(RepoFingerprint);
  Payload.writeVarint(Region);
  Payload.writeVarint(Bucket);
  Payload.writeFixed64(SeederId);

  // Category 1: preload lists.
  Payload.writeU32Vector(Preload.Units);
  Payload.writeU32Vector(Preload.Strings);
  Payload.writeU32Vector(Preload.Classes);

  // Category 2: tier-1 function profiles.
  Payload.writeVarint(Funcs.size());
  for (const FuncProfile &F : Funcs)
    encodeFuncProfile(Payload, F);

  // Category 3: optimized-code profile.
  Payload.writeVarint(Opt.VasmBlockCounts.size());
  for (const auto &[Func, Counts] : Opt.VasmBlockCounts) {
    Payload.writeVarint(Func);
    Payload.writeU64Vector(Counts);
  }
  Payload.writeVarint(Opt.CallArcs.size());
  for (const auto &[Arc, Count] : Opt.CallArcs) {
    Payload.writeVarint(Arc.first);
    Payload.writeVarint(Arc.second);
    Payload.writeVarint(Count);
  }
  Payload.writeStringU64Map(Opt.PropAccessCounts);
  Payload.writeStringU64Map(Opt.PropAffinity);

  // Category 4: intermediate results.
  Payload.writeU32Vector(Intermediate.FuncOrder);
  Payload.writeU32Vector(Intermediate.LiveFuncs);

  // Envelope: magic, version, payload length, payload, checksum.
  BlobEncoder Envelope;
  Envelope.writeFixed64(kMagic);
  Envelope.writeVarint(kFormatVersion);
  const std::vector<uint8_t> &Body = Payload.bytes();
  Envelope.writeVarint(Body.size());
  for (uint8_t B : Body)
    Envelope.writeByte(B);
  Envelope.writeFixed64(fnv1a(Body.data(), Body.size()));
  return Envelope.takeBytes();
}

bool ProfilePackage::deserialize(const std::vector<uint8_t> &Bytes,
                                 ProfilePackage &Out) {
  BlobDecoder D(Bytes);
  if (D.readFixed64() != kMagic)
    return false;
  if (D.readVarint() != kFormatVersion)
    return false;
  uint64_t BodyLen = D.readVarint();
  if (!D.ok() || BodyLen > D.remaining())
    return false;
  const uint8_t *Body = Bytes.data() + D.position();
  BlobDecoder Trailer(Body + BodyLen, D.remaining() - BodyLen);
  if (Trailer.readFixed64() != fnv1a(Body, BodyLen))
    return false;

  BlobDecoder P(Body, BodyLen);
  Out = ProfilePackage();
  Out.RepoFingerprint = P.readFixed64();
  Out.Region = static_cast<uint32_t>(P.readVarint());
  Out.Bucket = static_cast<uint32_t>(P.readVarint());
  Out.SeederId = P.readFixed64();

  Out.Preload.Units = P.readU32Vector();
  Out.Preload.Strings = P.readU32Vector();
  Out.Preload.Classes = P.readU32Vector();

  uint64_t NumFuncs = P.readVarint();
  if (NumFuncs > P.remaining())
    return false;
  Out.Funcs.reserve(NumFuncs);
  for (uint64_t I = 0; I < NumFuncs && P.ok(); ++I) {
    FuncProfile F;
    if (!decodeFuncProfile(P, F))
      return false;
    Out.Funcs.push_back(std::move(F));
  }

  uint64_t NumVasm = P.readVarint();
  if (NumVasm > P.remaining())
    return false;
  for (uint64_t I = 0; I < NumVasm && P.ok(); ++I) {
    uint32_t Func = static_cast<uint32_t>(P.readVarint());
    Out.Opt.VasmBlockCounts[Func] = P.readU64Vector();
  }
  uint64_t NumArcs = P.readVarint();
  if (NumArcs > P.remaining())
    return false;
  for (uint64_t I = 0; I < NumArcs && P.ok(); ++I) {
    uint32_t Caller = static_cast<uint32_t>(P.readVarint());
    uint32_t Callee = static_cast<uint32_t>(P.readVarint());
    Out.Opt.CallArcs[{Caller, Callee}] = P.readVarint();
  }
  Out.Opt.PropAccessCounts = P.readStringU64Map();
  Out.Opt.PropAffinity = P.readStringU64Map();
  Out.Intermediate.FuncOrder = P.readU32Vector();
  Out.Intermediate.LiveFuncs = P.readU32Vector();
  return P.atEnd();
}

uint64_t ProfilePackage::totalSamples() const {
  uint64_t Sum = 0;
  for (const FuncProfile &F : Funcs)
    Sum += F.totalSamples();
  return Sum;
}

size_t ProfilePackage::numProfiledFuncs() const {
  size_t N = 0;
  for (const FuncProfile &F : Funcs)
    if (F.totalSamples() > 0)
      ++N;
  return N;
}

const FuncProfile *ProfilePackage::findFunc(uint32_t Func) const {
  for (const FuncProfile &F : Funcs)
    if (F.Func == Func)
      return &F;
  return nullptr;
}
