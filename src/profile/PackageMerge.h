//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-seeder package merge (ROADMAP item 4).
///
/// The paper ships the package of a single seeder per (region, bucket);
/// with N seeders the packages must be folded into one before release.
/// The merge is a weighted counter union with deterministic conflict
/// rules:
///
///   * Counters (block counts, call targets, type observations, Vasm
///     counters, call arcs, property counters) are summed slot-wise,
///     each input scaled by its weight.  Vectors of different lengths
///     are first resized to the longest input.
///   * Ordered lists (preload lists, the C3 function order) are combined
///     by weighted rank aggregation: an id's score is the weighted sum of
///     its positions (absent inputs charge their list length), and the
///     output is sorted by (score, id).  Every id appears exactly once,
///     so merged lists pass the same duplicate checks `lintPackage`
///     applies to single-seeder lists.
///   * LiveFuncs is the sorted union.
///
/// Inputs are canonicalized by SeederId before any folding, so the merged
/// package is byte-identical regardless of the order seeders arrive in.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_PACKAGEMERGE_H
#define JUMPSTART_PROFILE_PACKAGEMERGE_H

#include "profile/ProfilePackage.h"
#include "support/Status.h"

#include <vector>

namespace jumpstart::profile {

/// One seeder package feeding a merge, with the weight its counters are
/// scaled by (e.g. the seeder's request share).  Weight 0 is rejected --
/// a voiceless input should simply not be passed.
struct MergeInput {
  const ProfilePackage *Pkg = nullptr;
  uint64_t Weight = 1;
};

/// Merges \p Inputs into \p Out.  All inputs must target the same
/// (Region, Bucket), carry the same RepoFingerprint and have pairwise
/// distinct SeederIds; violations are InvalidArgument /
/// FailedPrecondition errors and leave \p Out untouched.  The merged
/// SeederId is a deterministic hash of the sorted input seeder set.
support::Status mergePackages(const std::vector<MergeInput> &Inputs,
                              ProfilePackage &Out);

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_PACKAGEMERGE_H
