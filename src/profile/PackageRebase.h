//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-release package rebase (ROADMAP item 4, "staleness under drift").
///
/// A package is keyed to one application build by its RepoFingerprint;
/// after a code push the ids it carries mean different things and a
/// consumer rightly rejects it.  But most of a release's code survives a
/// push, so most of the profile is still true -- it is just mis-keyed.
/// rebasePackage() re-keys a stale package onto a new repo by *name*:
/// functions (methods carry their class-qualified name), classes, units
/// and interned strings are looked up in the new repo, entries whose
/// anchor no longer exists (or whose anchoring instruction changed) are
/// dropped, and block-counter vectors are truncated to the new block
/// structure.  The result passes the same strict `lintPackage` checks as
/// a fresh package for the new repo, so it flows through the unmodified
/// consumer accept path.
///
/// What survives is exactly what drift left intact; RebaseStats reports
/// the attrition so the drift sweep can correlate benefit with package
/// age.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_PACKAGEREBASE_H
#define JUMPSTART_PROFILE_PACKAGEREBASE_H

#include "bytecode/Repo.h"
#include "profile/ProfilePackage.h"
#include "support/Status.h"

namespace jumpstart::profile {

/// Attrition accounting for one rebase.
struct RebaseStats {
  size_t FuncsMapped = 0;        ///< function profiles carried over
  size_t FuncsDropped = 0;       ///< profiled functions gone from the new repo
  size_t BlockCountsTruncated = 0; ///< functions whose counter vector shrank
  size_t CallTargetsDropped = 0; ///< call sites whose instruction changed
  size_t LoadTypesDropped = 0;   ///< load sites whose instruction changed
  size_t PreloadDropped = 0;     ///< preload-list ids gone from the new repo
  size_t OrderDropped = 0;       ///< C3 order entries gone
  size_t LiveDropped = 0;        ///< live funcs gone
  size_t ArcsDropped = 0; ///< opt-profile entries with a vanished function
  size_t PropKeysDropped = 0;    ///< property keys naming vanished members
};

/// Re-keys \p Old (collected on \p OldRepo) onto \p NewRepo, stamping the
/// result with \p NewFingerprint (the consumer-side fingerprint of
/// \p NewRepo).  Fails with FailedPrecondition when nothing survives --
/// a package with zero remaining function profiles helps nobody and
/// would only burn a consumer attempt.
support::Status rebasePackage(const ProfilePackage &Old,
                              const bc::Repo &OldRepo,
                              const bc::Repo &NewRepo,
                              uint64_t NewFingerprint, ProfilePackage &Out,
                              RebaseStats *Stats = nullptr);

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_PACKAGEREBASE_H
