//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File persistence for profile packages: what the distribution layer and
/// the problematic-data database (paper section VI-A) store on disk, and
/// what the jit_replay debugging workflow loads back.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_PACKAGEIO_H
#define JUMPSTART_PROFILE_PACKAGEIO_H

#include "profile/ProfilePackage.h"
#include "support/Status.h"

#include <string>

namespace jumpstart::profile {

/// Writes \p Pkg to \p Path.  \returns io_error on any I/O failure.
support::Status savePackageFile(const ProfilePackage &Pkg,
                                const std::string &Path);

/// Reads a package from \p Path.  \returns io_error on I/O failure,
/// corrupt_data when deserialize()'s checksum/format checks fail.
support::Status loadPackageFile(const std::string &Path,
                                ProfilePackage &Out);

/// Reads a whole file into \p Out.
support::Status readFileBytes(const std::string &Path,
                              std::vector<uint8_t> &Out);

/// Writes \p Bytes to \p Path.
support::Status writeFileBytes(const std::string &Path,
                               const std::vector<uint8_t> &Bytes);

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_PACKAGEIO_H
