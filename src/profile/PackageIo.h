//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File persistence for profile packages: what the distribution layer and
/// the problematic-data database (paper section VI-A) store on disk, and
/// what the jit_replay debugging workflow loads back.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_PACKAGEIO_H
#define JUMPSTART_PROFILE_PACKAGEIO_H

#include "profile/ProfilePackage.h"

#include <string>

namespace jumpstart::profile {

/// Writes \p Pkg to \p Path.  \returns false on any I/O failure.
bool savePackageFile(const ProfilePackage &Pkg, const std::string &Path);

/// Reads a package from \p Path.  \returns false on I/O failure or any
/// corruption (deserialize()'s checks apply).
bool loadPackageFile(const std::string &Path, ProfilePackage &Out);

/// Reads a whole file into \p Out.  \returns false on failure.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out);

/// Writes \p Bytes to \p Path.  \returns false on failure.
bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Bytes);

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_PACKAGEIO_H
