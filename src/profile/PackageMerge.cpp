//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/PackageMerge.h"

#include "support/Hashing.h"

#include <algorithm>
#include <map>
#include <set>

namespace jumpstart::profile {

using support::Status;

namespace {

/// Weighted rank aggregation over ordered id lists.  An id absent from an
/// input is charged that input's full list length, so ids every seeder
/// agrees are early stay early and ids only one seeder saw sink towards
/// the tail.  Ties break on the id itself, keeping the result independent
/// of input order.
std::vector<uint32_t>
mergeOrderedList(const std::vector<MergeInput> &Inputs,
                 const std::vector<uint32_t> &(*Get)(const ProfilePackage &)) {
  std::map<uint32_t, uint64_t> Score;
  for (const MergeInput &In : Inputs) {
    const std::vector<uint32_t> &List = Get(*In.Pkg);
    for (uint32_t Id : List)
      Score.emplace(Id, 0); // every id any input mentions gets scored
  }
  for (const MergeInput &In : Inputs) {
    const std::vector<uint32_t> &List = Get(*In.Pkg);
    std::map<uint32_t, uint64_t> Pos;
    for (size_t P = 0; P < List.size(); ++P)
      Pos.emplace(List[P], P);
    for (auto &[Id, S] : Score) {
      auto It = Pos.find(Id);
      uint64_t Rank = It != Pos.end() ? It->second : List.size();
      S += In.Weight * Rank;
    }
  }
  std::vector<std::pair<uint64_t, uint32_t>> Ranked;
  Ranked.reserve(Score.size());
  for (const auto &[Id, S] : Score)
    Ranked.emplace_back(S, Id);
  std::sort(Ranked.begin(), Ranked.end());
  std::vector<uint32_t> Out;
  Out.reserve(Ranked.size());
  for (const auto &[S, Id] : Ranked)
    Out.push_back(Id);
  return Out;
}

void addWeighted(std::vector<uint64_t> &Into, const std::vector<uint64_t> &From,
                 uint64_t W) {
  if (Into.size() < From.size())
    Into.resize(From.size(), 0);
  for (size_t I = 0; I < From.size(); ++I)
    Into[I] += W * From[I];
}

void addWeighted(TypeObservation &Into, const TypeObservation &From,
                 uint64_t W) {
  for (unsigned I = 0; I < TypeObservation::kNumTypes; ++I)
    Into.Counts[I] += W * From.Counts[I];
}

void mergeFuncProfile(FuncProfile &Into, const FuncProfile &From, uint64_t W) {
  Into.EntryCount += W * From.EntryCount;
  addWeighted(Into.BlockCounts, From.BlockCounts, W);
  for (const auto &[Pc, Targets] : From.CallTargets)
    for (const auto &[Callee, Count] : Targets)
      Into.CallTargets[Pc][Callee] += W * Count;
  if (Into.ParamTypes.size() < From.ParamTypes.size())
    Into.ParamTypes.resize(From.ParamTypes.size());
  for (size_t I = 0; I < From.ParamTypes.size(); ++I)
    addWeighted(Into.ParamTypes[I], From.ParamTypes[I], W);
  for (const auto &[Pc, Obs] : From.LoadTypes)
    addWeighted(Into.LoadTypes[Pc], Obs, W);
}

} // namespace

Status mergePackages(const std::vector<MergeInput> &Inputs,
                     ProfilePackage &Out) {
  if (Inputs.empty())
    return support::errorStatus(support::StatusCode::InvalidArgument,
                                "merge of zero packages");
  for (const MergeInput &In : Inputs) {
    if (!In.Pkg)
      return support::errorStatus(support::StatusCode::InvalidArgument,
                                  "merge input without a package");
    if (In.Weight == 0)
      return support::errorStatus(support::StatusCode::InvalidArgument,
                                  "merge input with weight 0 (seeder %llu)",
                                  (unsigned long long)In.Pkg->SeederId);
  }

  const ProfilePackage &First = *Inputs.front().Pkg;
  std::set<uint64_t> Seeders;
  for (const MergeInput &In : Inputs) {
    const ProfilePackage &P = *In.Pkg;
    if (P.Region != First.Region || P.Bucket != First.Bucket)
      return support::errorStatus(
          support::StatusCode::FailedPrecondition,
          "merge across shelves: (r%u,b%u) vs (r%u,b%u)", P.Region, P.Bucket,
          First.Region, First.Bucket);
    if (P.RepoFingerprint != First.RepoFingerprint)
      return support::errorStatus(
          support::StatusCode::FailedPrecondition,
          "merge across application builds: fingerprint %llx vs %llx",
          (unsigned long long)P.RepoFingerprint,
          (unsigned long long)First.RepoFingerprint);
    if (!Seeders.insert(P.SeederId).second)
      return support::errorStatus(support::StatusCode::FailedPrecondition,
                                  "duplicate seeder %llu in merge set",
                                  (unsigned long long)P.SeederId);
  }

  // Canonicalize: fold in SeederId order, never arrival order.
  std::vector<MergeInput> Sorted = Inputs;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const MergeInput &A, const MergeInput &B) {
              return A.Pkg->SeederId < B.Pkg->SeederId;
            });

  ProfilePackage Merged;
  Merged.RepoFingerprint = First.RepoFingerprint;
  Merged.Region = First.Region;
  Merged.Bucket = First.Bucket;
  uint64_t SeederHash = 0x6d65726765ull; // "merge"
  for (uint64_t S : Seeders)
    SeederHash = hashCombine(SeederHash, S);
  Merged.SeederId = SeederHash;

  Merged.Preload.Units = mergeOrderedList(
      Sorted, +[](const ProfilePackage &P) -> const std::vector<uint32_t> & {
        return P.Preload.Units;
      });
  Merged.Preload.Strings = mergeOrderedList(
      Sorted, +[](const ProfilePackage &P) -> const std::vector<uint32_t> & {
        return P.Preload.Strings;
      });
  Merged.Preload.Classes = mergeOrderedList(
      Sorted, +[](const ProfilePackage &P) -> const std::vector<uint32_t> & {
        return P.Preload.Classes;
      });
  Merged.Intermediate.FuncOrder = mergeOrderedList(
      Sorted, +[](const ProfilePackage &P) -> const std::vector<uint32_t> & {
        return P.Intermediate.FuncOrder;
      });

  // Tier-1 profiles: keyed by function, counters folded weight-scaled.
  std::map<uint32_t, FuncProfile> Funcs;
  for (const MergeInput &In : Sorted)
    for (const FuncProfile &FP : In.Pkg->Funcs) {
      FuncProfile &Into = Funcs[FP.Func];
      Into.Func = FP.Func;
      mergeFuncProfile(Into, FP, In.Weight);
    }
  Merged.Funcs.reserve(Funcs.size());
  for (auto &[Id, FP] : Funcs)
    Merged.Funcs.push_back(std::move(FP));

  // Optimized-code profiles (category 3).
  for (const MergeInput &In : Sorted) {
    const OptProfile &O = In.Pkg->Opt;
    for (const auto &[Func, Counts] : O.VasmBlockCounts)
      addWeighted(Merged.Opt.VasmBlockCounts[Func], Counts, In.Weight);
    for (const auto &[Arc, Count] : O.CallArcs)
      Merged.Opt.CallArcs[Arc] += In.Weight * Count;
    for (const auto &[Key, Count] : O.PropAccessCounts)
      Merged.Opt.PropAccessCounts[Key] += In.Weight * Count;
    for (const auto &[Key, Count] : O.PropAffinity)
      Merged.Opt.PropAffinity[Key] += In.Weight * Count;
  }

  // Live-code set: sorted union (order carries no ranking here).
  std::set<uint32_t> Live;
  for (const MergeInput &In : Sorted)
    Live.insert(In.Pkg->Intermediate.LiveFuncs.begin(),
                In.Pkg->Intermediate.LiveFuncs.end());
  Merged.Intermediate.LiveFuncs.assign(Live.begin(), Live.end());

  Out = std::move(Merged);
  return Status::okStatus();
}

} // namespace jumpstart::profile
