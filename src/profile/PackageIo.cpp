//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/PackageIo.h"

#include <cstdio>

using namespace jumpstart;
using namespace jumpstart::profile;

bool jumpstart::profile::readFileBytes(const std::string &Path,
                                       std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  uint8_t Buffer[64 * 1024];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.insert(Out.end(), Buffer, Buffer + N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

bool jumpstart::profile::writeFileBytes(const std::string &Path,
                                        const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = Bytes.empty()
                       ? 0
                       : std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size() && std::fflush(F) == 0;
  std::fclose(F);
  return Ok;
}

bool jumpstart::profile::savePackageFile(const ProfilePackage &Pkg,
                                         const std::string &Path) {
  return writeFileBytes(Path, Pkg.serialize());
}

bool jumpstart::profile::loadPackageFile(const std::string &Path,
                                         ProfilePackage &Out) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return false;
  return ProfilePackage::deserialize(Bytes, Out);
}
