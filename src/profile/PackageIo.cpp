//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/PackageIo.h"

#include <cstdio>

using namespace jumpstart;
using namespace jumpstart::profile;
using support::Status;
using support::StatusCode;

Status jumpstart::profile::readFileBytes(const std::string &Path,
                                         std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return support::errorStatus(StatusCode::IoError, "cannot open %s",
                                Path.c_str());
  Out.clear();
  uint8_t Buffer[64 * 1024];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.insert(Out.end(), Buffer, Buffer + N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  if (!Ok)
    return support::errorStatus(StatusCode::IoError, "read error on %s",
                                Path.c_str());
  return Status::okStatus();
}

Status jumpstart::profile::writeFileBytes(const std::string &Path,
                                          const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return support::errorStatus(StatusCode::IoError, "cannot open %s",
                                Path.c_str());
  size_t Written = Bytes.empty()
                       ? 0
                       : std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size() && std::fflush(F) == 0;
  std::fclose(F);
  if (!Ok)
    return support::errorStatus(StatusCode::IoError, "short write to %s",
                                Path.c_str());
  return Status::okStatus();
}

Status jumpstart::profile::savePackageFile(const ProfilePackage &Pkg,
                                           const std::string &Path) {
  return writeFileBytes(Path, Pkg.serialize());
}

Status jumpstart::profile::loadPackageFile(const std::string &Path,
                                           ProfilePackage &Out) {
  std::vector<uint8_t> Bytes;
  JUMPSTART_RETURN_IF_ERROR(readFileBytes(Path, Bytes));
  if (!ProfilePackage::deserialize(Bytes, Out))
    return support::errorStatus(StatusCode::CorruptData,
                                "%s: package failed checksum/format checks",
                                Path.c_str());
  return Status::okStatus();
}
