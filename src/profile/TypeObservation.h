//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-type observations collected by profiling translations.
///
/// The region-based tier-2 compiler specializes code to the types the
/// tier-1 profile observed (paper section II-A); a monomorphic observation
/// lets the JIT emit a single cheap guard plus specialized code, while
/// polymorphic sites fall back to generic lowering.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_TYPEOBSERVATION_H
#define JUMPSTART_PROFILE_TYPEOBSERVATION_H

#include "runtime/Value.h"

#include <cstdint>

namespace jumpstart::profile {

/// Counts of each runtime type observed at one program point.
struct TypeObservation {
  static constexpr unsigned kNumTypes = 8;
  uint64_t Counts[kNumTypes] = {};

  void observe(runtime::Type T) { ++Counts[static_cast<unsigned>(T)]; }

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : Counts)
      Sum += C;
    return Sum;
  }

  /// The most frequently observed type (Null when nothing was observed).
  runtime::Type dominant() const {
    unsigned Best = 0;
    for (unsigned I = 1; I < kNumTypes; ++I)
      if (Counts[I] > Counts[Best])
        Best = I;
    return static_cast<runtime::Type>(Best);
  }

  /// True when the dominant type covers at least \p Threshold of all
  /// observations (and something was observed at all).
  bool isMonomorphic(double Threshold = 0.95) const {
    uint64_t Total = total();
    if (Total == 0)
      return false;
    uint64_t Dom = Counts[static_cast<unsigned>(dominant())];
    return static_cast<double>(Dom) >=
           Threshold * static_cast<double>(Total);
  }

  void merge(const TypeObservation &Other) {
    for (unsigned I = 0; I < kNumTypes; ++I)
      Counts[I] += Other.Counts[I];
  }
};

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_TYPEOBSERVATION_H
