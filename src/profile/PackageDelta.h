//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta encoding between consecutive package releases (ROADMAP item 4).
///
/// Consecutive releases of a shelf's package share most of their bytes
/// (the site barely changes between pushes), so shipping the full blob
/// every release wastes distribution bandwidth.  A delta is a small
/// self-describing program that rebuilds the target blob from the parent
/// release:
///
///   header:  magic (fixed64) | version (varint)
///            | parent fnv1a (fixed64) | parent length (varint)
///            | target fnv1a (fixed64) | target length (varint)
///            | op count (varint)
///   ops:     0x00 Copy    srcOff (varint) len (varint)   -- from parent
///            0x01 Literal len (varint) + raw bytes       -- new data
///            0x02 Run     count (varint) + one byte      -- byte run
///
/// The encoder is a greedy block-hash matcher (the rsync family) with a
/// run-length fallback; its only promise is exact reconstruction, which
/// applyDelta() *verifies*: the parent must match the recorded checksum
/// and length before any op runs, and the rebuilt target must match its
/// recorded checksum after -- a delta can therefore never silently build
/// the wrong package.  Everything is hand-rolled on support::Blob; no
/// external compression library is involved.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_PACKAGEDELTA_H
#define JUMPSTART_PROFILE_PACKAGEDELTA_H

#include "support/Status.h"

#include <cstdint>
#include <vector>

namespace jumpstart::profile {

/// What the encoder did, for logs/benchmarks.
struct DeltaStats {
  size_t CopyOps = 0;
  size_t LiteralOps = 0;
  size_t RunOps = 0;
  size_t CopiedBytes = 0;  ///< target bytes served from the parent
  size_t LiteralBytes = 0; ///< target bytes shipped verbatim
  size_t RunBytes = 0;     ///< target bytes from byte runs
};

/// Wire-format version stamped into every delta header.
inline constexpr uint32_t kDeltaFormatVersion = 1;
/// Leading magic of a serialized delta ("JSDL1").
inline constexpr uint64_t kDeltaMagic = 0x4a53444c31ull;

/// Encodes \p Target against \p Parent.  Always succeeds; when the blobs
/// share nothing the delta degenerates to one literal op (plus header).
std::vector<uint8_t> encodeDelta(const std::vector<uint8_t> &Parent,
                                 const std::vector<uint8_t> &Target,
                                 DeltaStats *Stats = nullptr);

/// Rebuilds the target from \p Parent + \p Delta into \p Out.
/// FailedPrecondition when \p Parent is not the blob the delta was
/// encoded against; CorruptData on any malformed or checksum-failing
/// delta.  \p Out is untouched on failure.
support::Status applyDelta(const std::vector<uint8_t> &Parent,
                           const std::vector<uint8_t> &Delta,
                           std::vector<uint8_t> &Out);

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_PACKAGEDELTA_H
