//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-local store of tier-1 profile data.
///
/// The JIT reads profiles from this store regardless of where they came
/// from -- the server's own profiling translations or a deserialized
/// Jump-Start package.  This uniformity is the "Simplicity" argument of
/// paper section III: once save/reload exists, the rest of the VM runs
/// identically either way.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_PROFILESTORE_H
#define JUMPSTART_PROFILE_PROFILESTORE_H

#include "profile/ProfilePackage.h"
#include "support/Status.h"

#include <unordered_map>

namespace jumpstart::profile {

/// Mutable per-server profile state.
class ProfileStore {
public:
  /// \returns the profile for raw FuncId \p Func, creating it on demand.
  FuncProfile &getOrCreate(uint32_t Func) {
    FuncProfile &F = Profiles[Func];
    F.Func = Func;
    return F;
  }

  /// \returns the profile for \p Func, or nullptr.
  const FuncProfile *find(uint32_t Func) const {
    auto It = Profiles.find(Func);
    return It == Profiles.end() ? nullptr : &It->second;
  }

  size_t numFuncs() const { return Profiles.size(); }
  bool empty() const { return Profiles.empty(); }

  const std::unordered_map<uint32_t, FuncProfile> &all() const {
    return Profiles;
  }

  /// Replaces the store contents with the profiles of \p Pkg (consumer
  /// side of Jump-Start).  \returns corrupt_data when the package lists
  /// the same function twice (the store would silently drop one).
  support::Status loadFromPackage(const ProfilePackage &Pkg);

  /// Copies all profiles into \p Pkg in FuncId order (deterministic
  /// serialization).
  void exportToPackage(ProfilePackage &Pkg) const;

  void clear() { Profiles.clear(); }

private:
  std::unordered_map<uint32_t, FuncProfile> Profiles;
};

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_PROFILESTORE_H
