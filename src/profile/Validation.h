//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile-package coverage validation (paper section VI-B).
///
/// Before a seeder publishes a package, "profile coverage, including the
/// number of functions profiled and the total size of profile data, is
/// checked against pre-configured thresholds" -- catching the common
/// failure where a seeder's data center was drained and it barely
/// received traffic.  (Behavioural validation -- restarting in consumer
/// mode and watching health -- lives in core::Seeder.)
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_VALIDATION_H
#define JUMPSTART_PROFILE_VALIDATION_H

#include "profile/ProfilePackage.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace jumpstart::profile {

/// Pre-configured coverage thresholds.
struct CoverageThresholds {
  size_t MinProfiledFuncs = 10;
  uint64_t MinTotalSamples = 1000;
  size_t MinPackageBytes = 256;
  /// The consumer's repo fingerprint; zero disables the check (the
  /// fingerprint is always checked when nonzero).
  uint64_t ExpectedFingerprint = 0;
};

/// Result of a coverage check: an overall Status (Ok, or the first
/// failure -- coverage_too_low or fingerprint_mismatch -- with that
/// problem's text as the message) plus every problem found.
struct CoverageResult {
  support::Status Result = support::Status::okStatus();
  std::vector<std::string> Problems;

  bool ok() const { return Result.ok(); }
  support::StatusCode code() const { return Result.code(); }
  const support::Status &status() const { return Result; }
};

/// Checks the already-parsed \p Pkg (whose serialized size was
/// \p PackageBytes) against \p T.
CoverageResult checkCoverage(const ProfilePackage &Pkg, size_t PackageBytes,
                             const CoverageThresholds &T);

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_VALIDATION_H
