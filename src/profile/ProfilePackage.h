//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Jump-Start profile-data package (paper section IV-B).
///
/// The package carries the four data categories the paper enumerates:
///
///   1. Necessary global data from the bytecode repo: ordered preload
///      lists of units, literal strings and classes, so a consumer can
///      initialize in-memory metadata before any request runs (and do so
///      in an order that preserves data locality).
///   2. JIT profile data: per-function bytecode-block counters, call-target
///      profiles for virtual dispatch, and runtime-type observations --
///      everything the tier-2 region compiler needs to produce optimized
///      translations.
///   3. JIT profile data for optimized code: the seeder-side Vasm block
///      counters, the tier-2 caller/callee entry counters, and the
///      property-access counters feeding the section V optimizations.
///   4. Certain intermediate JIT results: the function order for code-cache
///      placement, precomputed on the seeder so consumers skip the C3 run.
///
/// The wire format is a checksummed, versioned blob.  Deserialization is
/// fully defensive: corruption yields a clean failure, never a crash
/// (section VI's fallback machinery depends on this).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_PROFILE_PROFILEPACKAGE_H
#define JUMPSTART_PROFILE_PROFILEPACKAGE_H

#include "bytecode/Ids.h"
#include "profile/TypeObservation.h"
#include "support/Blob.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace jumpstart::profile {

/// Tier-1 profile for one function (category 2).
struct FuncProfile {
  uint32_t Func = 0; ///< raw FuncId
  /// Times the function was entered while profiling.
  uint64_t EntryCount = 0;
  /// Execution count per bytecode basic block.
  std::vector<uint64_t> BlockCounts;
  /// Call-target profiles: instruction index of an FCallObj site -> callee
  /// FuncId -> count.  Ordered maps keep serialization deterministic.
  std::map<uint32_t, std::map<uint32_t, uint64_t>> CallTargets;
  /// Observed parameter types (index = parameter slot).
  std::vector<TypeObservation> ParamTypes;
  /// Observed result types at property/element loads, keyed by
  /// instruction index.
  std::map<uint32_t, TypeObservation> LoadTypes;

  uint64_t totalSamples() const {
    uint64_t Sum = 0;
    for (uint64_t C : BlockCounts)
      Sum += C;
    return Sum;
  }
};

/// Seeder-side profile of the *optimized* code (category 3).
struct OptProfile {
  /// Vasm block counters per function: raw FuncId -> counter per Vasm
  /// block id of that function's optimized translation.
  std::map<uint32_t, std::vector<uint64_t>> VasmBlockCounts;
  /// Tier-2 call graph: (caller raw FuncId, callee raw FuncId) -> entries.
  /// Collected by instrumenting optimized-function entries, so inlined
  /// calls do not appear -- exactly the property section V-B needs.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> CallArcs;
  /// Property-access counters keyed "Class::prop" (section V-C).
  std::unordered_map<std::string, uint64_t> PropAccessCounts;
  /// Property-affinity counters: consecutive accesses to two properties
  /// of the same class, keyed "Class::propA::propB" with the property
  /// names in lexicographic order.  Powers the affinity-based ordering
  /// the paper leaves as future work ("previous work has also explored
  /// using the affinity of the fields ... exploring this opportunity
  /// inside HHVM is left for future work", section V-C).
  std::unordered_map<std::string, uint64_t> PropAffinity;

  bool empty() const {
    return VasmBlockCounts.empty() && CallArcs.empty() &&
           PropAccessCounts.empty() && PropAffinity.empty();
  }
};

/// Repo global-data preload lists (category 1), in load order.
struct PreloadLists {
  std::vector<uint32_t> Units;
  std::vector<uint32_t> Strings;
  std::vector<uint32_t> Classes;
};

/// Precomputed intermediate JIT results (category 4).
struct IntermediateResults {
  /// The linear function order for code-cache placement (raw FuncIds),
  /// produced by running C3 on the seeder.
  std::vector<uint32_t> FuncOrder;
  /// Functions the seeder compiled through the tracelet (live) path --
  /// code reached after profiling ended.  Consumers normally leave these
  /// to their own live JIT (the paper's section IV-A trade-off); with
  /// JitConfig::PrecompileLiveCode they are compiled before serving,
  /// reproducing the alternative the paper considered and rejected.
  std::vector<uint32_t> LiveFuncs;
};

/// The complete package.
struct ProfilePackage {
  /// Bumped on any wire-format change; consumers reject other versions.
  static constexpr uint32_t kFormatVersion = 4;
  /// Leading magic bytes of a serialized package.
  static constexpr uint64_t kMagic = 0x4a53504b31ull; // "JSPK1"

  /// Identifies the application build this profile was collected on; a
  /// consumer running different code must reject the package.
  uint64_t RepoFingerprint = 0;
  /// Which (data-center region, semantic bucket) the seeder served.
  uint32_t Region = 0;
  uint32_t Bucket = 0;
  /// Which seeder produced it (for debugging stored bad packages).
  uint64_t SeederId = 0;

  PreloadLists Preload;
  std::vector<FuncProfile> Funcs;
  OptProfile Opt;
  IntermediateResults Intermediate;

  /// Serializes to a self-contained byte blob (magic + version + payload +
  /// checksum trailer).
  std::vector<uint8_t> serialize() const;

  /// Parses \p Bytes.  \returns false (leaving \p Out unspecified) on any
  /// corruption: bad magic, version mismatch, checksum failure, truncation
  /// or hostile lengths.
  static bool deserialize(const std::vector<uint8_t> &Bytes,
                          ProfilePackage &Out);

  /// Total tier-1 samples across all functions.
  uint64_t totalSamples() const;

  /// Number of functions with a nonzero profile.
  size_t numProfiledFuncs() const;

  /// Finds the profile for raw FuncId \p Func, or nullptr.
  const FuncProfile *findFunc(uint32_t Func) const;
};

} // namespace jumpstart::profile

#endif // JUMPSTART_PROFILE_PROFILEPACKAGE_H
