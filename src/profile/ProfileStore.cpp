//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileStore.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::profile;
using support::Status;
using support::StatusCode;

Status ProfileStore::loadFromPackage(const ProfilePackage &Pkg) {
  Profiles.clear();
  for (const FuncProfile &F : Pkg.Funcs)
    if (!Profiles.emplace(F.Func, F).second)
      return support::errorStatus(StatusCode::CorruptData,
                                  "package profiles function %u twice",
                                  F.Func);
  return Status::okStatus();
}

void ProfileStore::exportToPackage(ProfilePackage &Pkg) const {
  Pkg.Funcs.clear();
  Pkg.Funcs.reserve(Profiles.size());
  for (const auto &[Func, Profile] : Profiles) {
    (void)Func;
    Pkg.Funcs.push_back(Profile);
  }
  std::sort(Pkg.Funcs.begin(), Pkg.Funcs.end(),
            [](const FuncProfile &A, const FuncProfile &B) {
              return A.Func < B.Func;
            });
}
