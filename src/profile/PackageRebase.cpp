//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/PackageRebase.h"

#include "bytecode/BlockCache.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

namespace jumpstart::profile {

using support::Status;
using support::StatusCode;

namespace {

/// Splits "Class::prop" / "Class::a::b" on "::".
std::vector<std::string> splitKey(const std::string &Key) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (true) {
    size_t Next = Key.find("::", Pos);
    if (Next == std::string::npos) {
      Parts.push_back(Key.substr(Pos));
      return Parts;
    }
    Parts.push_back(Key.substr(Pos, Next - Pos));
    Pos = Next + 2;
  }
}

/// Walks the inheritance chain of \p C looking for a declared property
/// named \p Prop (the same resolution strict lint applies).
bool classDeclaresProp(const bc::Repo &R, bc::ClassId C, bc::StringId Prop) {
  while (C.valid()) {
    const bc::Class &K = R.cls(C);
    for (bc::StringId P : K.DeclProps)
      if (P == Prop)
        return true;
    C = K.Parent;
  }
  return false;
}

/// Name-keyed id maps from the old repo into the new one.  Function names
/// are class-qualified ("K0::init"), so one lookup covers methods too.
struct IdMapper {
  const bc::Repo &Old;
  const bc::Repo &New;
  std::unordered_map<std::string, uint32_t> UnitByName;

  IdMapper(const bc::Repo &Old, const bc::Repo &New) : Old(Old), New(New) {
    for (const bc::Unit &U : New.units())
      UnitByName.emplace(U.Name, U.Id.raw());
  }

  bc::FuncId mapFunc(uint32_t Raw) const {
    if (Raw >= Old.numFuncs())
      return bc::FuncId();
    return New.findFunction(Old.func(bc::FuncId(Raw)).Name);
  }
  bc::ClassId mapClass(uint32_t Raw) const {
    if (Raw >= Old.numClasses())
      return bc::ClassId();
    return New.findClass(Old.cls(bc::ClassId(Raw)).Name);
  }
  bc::StringId mapString(uint32_t Raw) const {
    if (Raw >= Old.numStrings())
      return bc::StringId();
    return New.findString(Old.str(bc::StringId(Raw)));
  }
  bc::UnitId mapUnit(uint32_t Raw) const {
    if (Raw >= Old.numUnits())
      return bc::UnitId();
    auto It = UnitByName.find(Old.unit(bc::UnitId(Raw)).Name);
    return It == UnitByName.end() ? bc::UnitId() : bc::UnitId(It->second);
  }
};

/// Maps an ordered id list, dropping vanished entries (order otherwise
/// preserved).  Mapping by unique name is injective, so the result stays
/// duplicate-free -- a lint requirement.
template <typename MapFn>
std::vector<uint32_t> mapList(const std::vector<uint32_t> &Ids, MapFn Map,
                              size_t &Dropped) {
  std::vector<uint32_t> Out;
  Out.reserve(Ids.size());
  for (uint32_t Id : Ids) {
    auto Mapped = Map(Id);
    if (Mapped.valid())
      Out.push_back(Mapped.raw());
    else
      ++Dropped;
  }
  return Out;
}

} // namespace

Status rebasePackage(const ProfilePackage &Old, const bc::Repo &OldRepo,
                     const bc::Repo &NewRepo, uint64_t NewFingerprint,
                     ProfilePackage &Out, RebaseStats *Stats) {
  IdMapper M(OldRepo, NewRepo);
  RebaseStats S;
  bc::BlockCache NewBlocks(NewRepo);

  ProfilePackage R;
  R.RepoFingerprint = NewFingerprint;
  R.Region = Old.Region;
  R.Bucket = Old.Bucket;
  R.SeederId = Old.SeederId;

  R.Preload.Units = mapList(
      Old.Preload.Units, [&](uint32_t Id) { return M.mapUnit(Id); },
      S.PreloadDropped);
  R.Preload.Strings = mapList(
      Old.Preload.Strings, [&](uint32_t Id) { return M.mapString(Id); },
      S.PreloadDropped);
  R.Preload.Classes = mapList(
      Old.Preload.Classes, [&](uint32_t Id) { return M.mapClass(Id); },
      S.PreloadDropped);

  // Tier-1 function profiles.  Output is keyed (and thus serialized) in
  // new-FuncId order for deterministic bytes.
  std::map<uint32_t, FuncProfile> Funcs;
  for (const FuncProfile &FP : Old.Funcs) {
    bc::FuncId NewId = M.mapFunc(FP.Func);
    if (!NewId.valid() || FP.Func >= OldRepo.numFuncs()) {
      ++S.FuncsDropped;
      continue;
    }
    const bc::Function &OF = OldRepo.func(bc::FuncId(FP.Func));
    const bc::Function &NF = NewRepo.func(NewId);

    FuncProfile NP;
    NP.Func = NewId.raw();
    NP.EntryCount = FP.EntryCount;

    // Block counters: the new function may have fewer blocks (a split or
    // edit); lint rejects counters past the block count, so truncate.
    size_t NewNumBlocks = NewBlocks.blocks(NewId).numBlocks();
    NP.BlockCounts = FP.BlockCounts;
    if (NP.BlockCounts.size() > NewNumBlocks) {
      NP.BlockCounts.resize(NewNumBlocks);
      ++S.BlockCountsTruncated;
    }

    // Call-target profiles survive only when the site is *provably* the
    // same call: in range on both sides, still an FCallObj, same method
    // name, the callee still exists, and the callee is still a
    // class-hierarchy resolution of that name (the CG cross-check strict
    // lint may apply).
    for (const auto &[Pc, Targets] : FP.CallTargets) {
      bool SiteOk = Pc < OF.Code.size() && Pc < NF.Code.size() &&
                    OF.Code[Pc].Opcode == bc::Op::FCallObj &&
                    NF.Code[Pc].Opcode == bc::Op::FCallObj;
      bc::StringId NewName;
      if (SiteOk) {
        const std::string &OldName = OldRepo.str(OF.Code[Pc].strImm());
        NewName = NF.Code[Pc].strImm();
        SiteOk = NewName.valid() && NewRepo.str(NewName) == OldName;
      }
      if (!SiteOk) {
        ++S.CallTargetsDropped;
        continue;
      }
      std::vector<bc::FuncId> Resolutions =
          NewRepo.allMethodResolutions(NewName);
      std::map<uint32_t, uint64_t> NewTargets;
      for (const auto &[Callee, Count] : Targets) {
        bc::FuncId NewCallee = M.mapFunc(Callee);
        if (NewCallee.valid() &&
            std::binary_search(Resolutions.begin(), Resolutions.end(),
                               NewCallee))
          NewTargets[NewCallee.raw()] += Count;
      }
      if (NewTargets.empty())
        ++S.CallTargetsDropped;
      else
        NP.CallTargets.emplace(Pc, std::move(NewTargets));
    }

    NP.ParamTypes = FP.ParamTypes;
    if (NP.ParamTypes.size() > NF.NumParams)
      NP.ParamTypes.resize(NF.NumParams);

    // Load-type observations: kept only when the instruction at that
    // index is unchanged (same opcode), which also keeps it one of the
    // type-observing opcodes lint accepts.
    for (const auto &[Pc, Obs] : FP.LoadTypes) {
      if (Pc < OF.Code.size() && Pc < NF.Code.size() &&
          OF.Code[Pc].Opcode == NF.Code[Pc].Opcode)
        NP.LoadTypes.emplace(Pc, Obs);
      else
        ++S.LoadTypesDropped;
    }

    ++S.FuncsMapped;
    Funcs.emplace(NP.Func, std::move(NP));
  }
  R.Funcs.reserve(Funcs.size());
  for (auto &[Id, FP] : Funcs)
    R.Funcs.push_back(std::move(FP));

  // Optimized-code profiles.
  for (const auto &[Func, Counts] : Old.Opt.VasmBlockCounts) {
    bc::FuncId NewId = M.mapFunc(Func);
    if (NewId.valid())
      R.Opt.VasmBlockCounts.emplace(NewId.raw(), Counts);
    else
      ++S.ArcsDropped;
  }
  for (const auto &[Arc, Count] : Old.Opt.CallArcs) {
    bc::FuncId Caller = M.mapFunc(Arc.first);
    bc::FuncId Callee = M.mapFunc(Arc.second);
    if (Caller.valid() && Callee.valid())
      R.Opt.CallArcs[{Caller.raw(), Callee.raw()}] += Count;
    else
      ++S.ArcsDropped;
  }
  for (const auto &[Key, Count] : Old.Opt.PropAccessCounts) {
    std::vector<std::string> Parts = splitKey(Key);
    bc::ClassId C = Parts.size() == 2 ? NewRepo.findClass(Parts[0])
                                      : bc::ClassId();
    bc::StringId Prop = C.valid() ? NewRepo.findString(Parts[1])
                                  : bc::StringId();
    if (Prop.valid() && classDeclaresProp(NewRepo, C, Prop))
      R.Opt.PropAccessCounts[Key] += Count;
    else
      ++S.PropKeysDropped;
  }
  for (const auto &[Key, Count] : Old.Opt.PropAffinity) {
    std::vector<std::string> Parts = splitKey(Key);
    bool Keep = Parts.size() == 3;
    if (Keep) {
      bc::ClassId C = NewRepo.findClass(Parts[0]);
      bc::StringId A = NewRepo.findString(Parts[1]);
      bc::StringId B = NewRepo.findString(Parts[2]);
      Keep = C.valid() && A.valid() && B.valid() &&
             classDeclaresProp(NewRepo, C, A) &&
             classDeclaresProp(NewRepo, C, B);
    }
    if (Keep)
      R.Opt.PropAffinity[Key] += Count;
    else
      ++S.PropKeysDropped;
  }

  R.Intermediate.FuncOrder = mapList(
      Old.Intermediate.FuncOrder, [&](uint32_t Id) { return M.mapFunc(Id); },
      S.OrderDropped);
  R.Intermediate.LiveFuncs = mapList(
      Old.Intermediate.LiveFuncs, [&](uint32_t Id) { return M.mapFunc(Id); },
      S.LiveDropped);

  if (Stats)
    *Stats = S;
  if (S.FuncsMapped == 0)
    return support::errorStatus(
        StatusCode::FailedPrecondition,
        "rebase kept no function profile: the releases share no function");
  Out = std::move(R);
  return Status::okStatus();
}

} // namespace jumpstart::profile
