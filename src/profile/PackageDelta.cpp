//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/PackageDelta.h"

#include "support/Blob.h"
#include "support/Hashing.h"

#include <unordered_map>

namespace jumpstart::profile {

using support::Status;
using support::StatusCode;

namespace {

/// Granularity of the parent block index.  Matches below this length are
/// not worth an op's overhead, so it doubles as the minimum match/run.
constexpr size_t kBlock = 16;

enum class OpKind : uint8_t { Copy = 0, Literal = 1, Run = 2 };

struct Op {
  OpKind Kind;
  size_t A = 0; ///< Copy: srcOff; Literal: start in target; Run: count
  size_t B = 0; ///< Copy: len; Literal: len; Run: the byte
};

/// Length of the match between Parent[POff..] and Target[TOff..].
size_t matchLen(const std::vector<uint8_t> &Parent, size_t POff,
                const std::vector<uint8_t> &Target, size_t TOff) {
  size_t N = 0;
  while (POff + N < Parent.size() && TOff + N < Target.size() &&
         Parent[POff + N] == Target[TOff + N])
    ++N;
  return N;
}

/// Length of the byte run starting at Target[Off].
size_t runLen(const std::vector<uint8_t> &Target, size_t Off) {
  size_t N = 1;
  while (Off + N < Target.size() && Target[Off + N] == Target[Off])
    ++N;
  return N;
}

} // namespace

std::vector<uint8_t> encodeDelta(const std::vector<uint8_t> &Parent,
                                 const std::vector<uint8_t> &Target,
                                 DeltaStats *Stats) {
  // Index the parent's non-overlapping kBlock-sized blocks by content
  // hash.  Earlier offsets win on hash collision (front of the vector),
  // keeping the encoding deterministic.
  std::unordered_map<uint64_t, std::vector<size_t>> Index;
  for (size_t Off = 0; Off + kBlock <= Parent.size(); Off += kBlock)
    Index[fnv1a(Parent.data() + Off, kBlock)].push_back(Off);

  std::vector<Op> Ops;
  size_t LitStart = 0, LitLen = 0;
  auto FlushLiteral = [&] {
    if (LitLen) {
      Ops.push_back({OpKind::Literal, LitStart, LitLen});
      LitLen = 0;
    }
  };

  size_t I = 0;
  while (I < Target.size()) {
    // A long byte run beats both copy and literal encodings.
    size_t Run = runLen(Target, I);
    if (Run >= kBlock) {
      FlushLiteral();
      Ops.push_back({OpKind::Run, Run, Target[I]});
      I += Run;
      continue;
    }
    if (I + kBlock <= Target.size()) {
      auto It = Index.find(fnv1a(Target.data() + I, kBlock));
      if (It != Index.end()) {
        size_t BestOff = 0, BestLen = 0;
        for (size_t POff : It->second) {
          size_t Len = matchLen(Parent, POff, Target, I);
          if (Len > BestLen) {
            BestOff = POff;
            BestLen = Len;
          }
        }
        if (BestLen >= kBlock) {
          FlushLiteral();
          Ops.push_back({OpKind::Copy, BestOff, BestLen});
          I += BestLen;
          continue;
        }
      }
    }
    if (LitLen == 0)
      LitStart = I;
    ++LitLen;
    ++I;
  }
  FlushLiteral();

  if (Stats) {
    *Stats = DeltaStats();
    for (const Op &O : Ops)
      switch (O.Kind) {
      case OpKind::Copy:
        ++Stats->CopyOps;
        Stats->CopiedBytes += O.B;
        break;
      case OpKind::Literal:
        ++Stats->LiteralOps;
        Stats->LiteralBytes += O.B;
        break;
      case OpKind::Run:
        ++Stats->RunOps;
        Stats->RunBytes += O.A;
        break;
      }
  }

  BlobEncoder E;
  E.writeFixed64(kDeltaMagic);
  E.writeVarint(kDeltaFormatVersion);
  E.writeFixed64(fnv1a(Parent.data(), Parent.size()));
  E.writeVarint(Parent.size());
  E.writeFixed64(fnv1a(Target.data(), Target.size()));
  E.writeVarint(Target.size());
  E.writeVarint(Ops.size());
  for (const Op &O : Ops) {
    E.writeByte(static_cast<uint8_t>(O.Kind));
    switch (O.Kind) {
    case OpKind::Copy:
      E.writeVarint(O.A);
      E.writeVarint(O.B);
      break;
    case OpKind::Literal:
      E.writeVarint(O.B);
      for (size_t K = 0; K < O.B; ++K)
        E.writeByte(Target[O.A + K]);
      break;
    case OpKind::Run:
      E.writeVarint(O.A);
      E.writeByte(static_cast<uint8_t>(O.B));
      break;
    }
  }
  return E.takeBytes();
}

Status applyDelta(const std::vector<uint8_t> &Parent,
                  const std::vector<uint8_t> &Delta,
                  std::vector<uint8_t> &Out) {
  BlobDecoder D(Delta);
  uint64_t Magic = D.readFixed64();
  uint64_t Version = D.readVarint();
  uint64_t ParentSum = D.readFixed64();
  uint64_t ParentLen = D.readVarint();
  uint64_t TargetSum = D.readFixed64();
  uint64_t TargetLen = D.readVarint();
  uint64_t NumOps = D.readVarint();
  if (!D.ok() || Magic != kDeltaMagic)
    return support::errorStatus(StatusCode::CorruptData,
                                "package delta has a malformed header");
  if (Version != kDeltaFormatVersion)
    return support::errorStatus(
        StatusCode::CorruptData,
        "package delta format version %llu (this build reads %u)",
        (unsigned long long)Version, kDeltaFormatVersion);
  if (ParentLen != Parent.size() ||
      ParentSum != fnv1a(Parent.data(), Parent.size()))
    return support::errorStatus(
        StatusCode::FailedPrecondition,
        "package delta was encoded against a different parent release");

  std::vector<uint8_t> Built;
  Built.reserve(TargetLen);
  for (uint64_t OpIdx = 0; OpIdx < NumOps; ++OpIdx) {
    uint8_t Tag = D.readByte();
    if (!D.ok())
      break;
    switch (static_cast<OpKind>(Tag)) {
    case OpKind::Copy: {
      uint64_t SrcOff = D.readVarint();
      uint64_t Len = D.readVarint();
      if (!D.ok() || SrcOff > Parent.size() || Len > Parent.size() - SrcOff ||
          Len == 0) {
        D.markError();
        break;
      }
      Built.insert(Built.end(), Parent.begin() + SrcOff,
                   Parent.begin() + SrcOff + Len);
      break;
    }
    case OpKind::Literal: {
      uint64_t Len = D.readVarint();
      if (!D.ok() || Len > D.remaining() || Len == 0) {
        D.markError();
        break;
      }
      for (uint64_t K = 0; K < Len; ++K)
        Built.push_back(D.readByte());
      break;
    }
    case OpKind::Run: {
      uint64_t Count = D.readVarint();
      uint8_t Byte = D.readByte();
      if (!D.ok() || Count == 0 || Count > TargetLen) {
        D.markError();
        break;
      }
      Built.insert(Built.end(), Count, Byte);
      break;
    }
    default:
      D.markError();
      break;
    }
    if (!D.ok() || Built.size() > TargetLen)
      return support::errorStatus(StatusCode::CorruptData,
                                  "package delta has a malformed op stream");
  }
  if (!D.atEnd())
    return support::errorStatus(StatusCode::CorruptData,
                                "package delta has a malformed op stream");
  if (Built.size() != TargetLen ||
      fnv1a(Built.data(), Built.size()) != TargetSum)
    return support::errorStatus(
        StatusCode::CorruptData,
        "package delta reconstruction failed its checksum");
  Out = std::move(Built);
  return Status::okStatus();
}

} // namespace jumpstart::profile
