//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/Validation.h"

#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::profile;

CoverageResult jumpstart::profile::checkCoverage(const ProfilePackage &Pkg,
                                                 size_t PackageBytes,
                                                 const CoverageThresholds &T) {
  CoverageResult R;
  auto Fail = [&R](support::StatusCode Code, std::string Problem) {
    if (R.ok()) // first failure's code and message win
      R.Result = support::Status::error(Code, Problem);
    R.Problems.push_back(std::move(Problem));
  };
  size_t Profiled = Pkg.numProfiledFuncs();
  if (Profiled < T.MinProfiledFuncs)
    Fail(support::StatusCode::CoverageTooLow,
         strFormat("only %zu functions profiled (minimum %zu); the seeder "
                   "likely received too little traffic",
                   Profiled, T.MinProfiledFuncs));
  uint64_t Samples = Pkg.totalSamples();
  if (Samples < T.MinTotalSamples)
    Fail(support::StatusCode::CoverageTooLow,
         strFormat("only %llu profile samples collected (minimum %llu)",
                   static_cast<unsigned long long>(Samples),
                   static_cast<unsigned long long>(T.MinTotalSamples)));
  if (PackageBytes < T.MinPackageBytes)
    Fail(support::StatusCode::CoverageTooLow,
         strFormat("package is %zu bytes (minimum %zu)", PackageBytes,
                   T.MinPackageBytes));
  if (T.ExpectedFingerprint != 0 &&
      Pkg.RepoFingerprint != T.ExpectedFingerprint)
    Fail(support::StatusCode::FingerprintMismatch,
         "repo fingerprint mismatch: profile was collected on a different "
         "code version");
  return R;
}
