//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "profile/Validation.h"

#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::profile;

CoverageResult jumpstart::profile::checkCoverage(const ProfilePackage &Pkg,
                                                 size_t PackageBytes,
                                                 const CoverageThresholds &T) {
  CoverageResult R;
  auto Fail = [&R](support::StatusCode Code) {
    if (R.Ok) // first failure's code wins
      R.Code = Code;
    R.Ok = false;
  };
  size_t Profiled = Pkg.numProfiledFuncs();
  if (Profiled < T.MinProfiledFuncs) {
    Fail(support::StatusCode::CoverageTooLow);
    R.Problems.push_back(strFormat(
        "only %zu functions profiled (minimum %zu); the seeder likely "
        "received too little traffic",
        Profiled, T.MinProfiledFuncs));
  }
  uint64_t Samples = Pkg.totalSamples();
  if (Samples < T.MinTotalSamples) {
    Fail(support::StatusCode::CoverageTooLow);
    R.Problems.push_back(strFormat(
        "only %llu profile samples collected (minimum %llu)",
        static_cast<unsigned long long>(Samples),
        static_cast<unsigned long long>(T.MinTotalSamples)));
  }
  if (PackageBytes < T.MinPackageBytes) {
    Fail(support::StatusCode::CoverageTooLow);
    R.Problems.push_back(strFormat(
        "package is %zu bytes (minimum %zu)", PackageBytes,
        T.MinPackageBytes));
  }
  if (T.ExpectedFingerprint != 0 &&
      Pkg.RepoFingerprint != T.ExpectedFingerprint) {
    Fail(support::StatusCode::FingerprintMismatch);
    R.Problems.push_back(
        "repo fingerprint mismatch: profile was collected on a different "
        "code version");
  }
  return R;
}
