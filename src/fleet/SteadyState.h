//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-state measurement (paper section VII-B): runs a warmed server
/// under its production mix with the Vasm shadow tracer attached, and
/// reports throughput and micro-architectural counters from the machine
/// simulator -- the data behind Figures 5 and 6.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FLEET_STEADYSTATE_H
#define JUMPSTART_FLEET_STEADYSTATE_H

#include "fleet/Traffic.h"
#include "fleet/WorkloadGen.h"
#include "sim/Machine.h"
#include "vm/Server.h"

namespace jumpstart::fleet {

/// Measurement knobs.
struct SteadyStateParams {
  uint32_t Requests = 300;
  /// Requests run before counters reset (cache warmup inside the
  /// measurement itself).
  uint32_t WarmupRequests = 60;
  uint32_t Region = 0;
  uint32_t Bucket = 0;
  uint64_t Seed = 99;
  sim::MachineConfig Machine;
};

/// Result of one steady-state measurement.
struct SteadyStateResult {
  sim::PerfCounters Counters;
  double Cycles = 0;
  double CyclesPerRequest = 0;
  /// Relative throughput: requests per million cycles.
  double Throughput = 0;
  double BranchMissRate = 0;
  double L1IMissRate = 0;
  double L1DMissRate = 0;
  double LlcMissRate = 0;
  double ITlbMissRate = 0;
  double DTlbMissRate = 0;
};

/// Measures \p Server (which must already be warmed: JIT mature).
SteadyStateResult measureSteadyState(const Workload &W,
                                     const TrafficModel &Traffic,
                                     vm::Server &Server,
                                     const SteadyStateParams &P);

} // namespace jumpstart::fleet

#endif // JUMPSTART_FLEET_STEADYSTATE_H
