//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warmup simulator for one web server: a fluid queueing model over a
/// real VM.
///
/// Each virtual tick, the simulator executes a few *sampled* requests for
/// real against the vm::Server (advancing JIT state and measuring the
/// current per-request service time), grants the JIT its background
/// worker time, then serves the remaining offered load analytically:
/// served = min(offered, remaining core capacity / service time).  This
/// yields the paper's performance-over-uptime curves (Figures 1, 2, 4)
/// without executing hundreds of thousands of requests.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FLEET_SERVERSIM_H
#define JUMPSTART_FLEET_SERVERSIM_H

#include "fleet/Traffic.h"
#include "fleet/WorkloadGen.h"
#include "obs/Observability.h"
#include "support/Stats.h"
#include "vm/Server.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace jumpstart::support {
class ThreadPool;
}

namespace jumpstart::fleet {

/// Simulation knobs for one server's warmup run.
struct ServerSimParams {
  double TickSeconds = 1.0;
  double DurationSeconds = 600;
  /// Offered load, as requests per second.
  double OfferedRps = 400;
  /// Real requests executed per tick to track service time and drive
  /// JIT state.
  uint32_t SamplesPerTick = 2;
  uint32_t Region = 0;
  uint32_t Bucket = 0;
  uint64_t Seed = 7;
  /// Model queueing delay in the reported latency: under utilization
  /// rho, waiting inflates wall time by ~1 + rho^2/(1-rho) (M/M/1-style,
  /// capped).  The paper's Figure 4a measures *wall* time per request,
  /// which includes queueing on saturated warming servers.
  bool ModelQueueing = true;
  /// Observability sink shared with the harness (figure binaries pass one
  /// so several runs land in a single registry/trace).  Null makes the
  /// run create its own context, owned by the returned WarmupResult.
  obs::Observability *Obs = nullptr;
  /// Distinguishes runs sharing one Observability: it names the server's
  /// tracer tracks and labels the run's metric series ({run=RunLabel}).
  /// Two runs recording into one registry must use different labels.
  std::string RunLabel = "run";
};

/// Timestamps (in virtual seconds) of the JIT lifecycle transitions --
/// the labelled points of the paper's Figure 1.
struct PhaseTimes {
  double ServeStart = 0;       ///< server began accepting requests
  double ProfilingEnd = -1;    ///< point A
  double RelocationStart = -1; ///< point B
  double RelocationEnd = -1;   ///< point C
  double JitingStopped = -1;   ///< point D (code growth ceased)
};

/// Result of one warmup run.  The per-tick curves live in the run's
/// metrics registry (names "fleet.rps", "fleet.normalized_rps",
/// "fleet.latency_seconds", "fleet.code_bytes", labelled {run=RunLabel});
/// the accessors below read them back.
struct WarmupResult {
  PhaseTimes Phases;
  vm::InitStats Init;
  /// Capacity loss over [0, DurationSeconds]: area above the normalized
  /// RPS curve, as a fraction of the ideal (paper Figure 2 / section
  /// VII-A).
  double CapacityLossFraction = 0;
  /// The warmed server, for follow-on measurement (steady state).
  std::unique_ptr<vm::Server> Server;

  /// The observability context the run recorded into: the caller's
  /// (ServerSimParams::Obs) or the run-owned fallback below.
  obs::Observability *Obs = nullptr;
  /// Owns the context when the caller passed none (per-run isolation).
  std::unique_ptr<obs::Observability> OwnedObs;

  /// Served requests/second over uptime.
  const TimeSeries &rps() const { return *RpsSeries; }
  /// Served / offered over uptime.
  const TimeSeries &normalizedRps() const { return *NormalizedRpsSeries; }
  /// Mean wall time per request over uptime (Figure 4a).
  const TimeSeries &latencySeconds() const { return *LatencySeries; }
  /// Total JITed code bytes over uptime (Figure 1).
  const TimeSeries &codeBytes() const { return *CodeBytesSeries; }

  // Registry-backed storage, set by runWarmup.
  const TimeSeries *RpsSeries = nullptr;
  const TimeSeries *NormalizedRpsSeries = nullptr;
  const TimeSeries *LatencySeries = nullptr;
  const TimeSeries *CodeBytesSeries = nullptr;
};

/// Runs one server's restart-and-warmup.  If \p Package is set the
/// server boots as a Jump-Start consumer.
WarmupResult runWarmup(const Workload &W, const TrafficModel &Traffic,
                       vm::ServerConfig Config, const ServerSimParams &P,
                       const profile::ProfilePackage *Package = nullptr);

/// One run of a warmup sweep.  Params.Obs must be null: sweep runs are
/// sharded across host threads, so each records into its own run-owned
/// registry (shard-then-merge).
struct WarmupSweepRun {
  ServerSimParams Params;
  /// Boot this run as a Jump-Start consumer with this package (null: no
  /// Jump-Start).  Shared read-only across runs.
  const profile::ProfilePackage *Package = nullptr;
};

/// Runs several *independent* warmup simulations, sharded across \p Pool
/// (null: serial), then merges every run's metrics into \p Merged (when
/// non-null) in run-index order.  Each simulation is single-threaded and
/// seeded by its own params, and the merge order is fixed, so the results
/// -- including a metricsToJsonLines() rendering of \p Merged -- are
/// byte-identical for any worker count.
std::vector<WarmupResult>
runWarmupSweep(const Workload &W, const TrafficModel &Traffic,
               const vm::ServerConfig &Config,
               const std::vector<WarmupSweepRun> &Runs,
               support::ThreadPool *Pool,
               obs::MetricsRegistry *Merged = nullptr);

/// Convenience: runs a server as a *seeder*: boots without Jump-Start,
/// serves \p Requests real requests of its (region, bucket) mix (with
/// seeder instrumentation enabled by the caller via Config), and returns
/// the server for package extraction.
std::unique_ptr<vm::Server> runSeeder(const Workload &W,
                                      const TrafficModel &Traffic,
                                      vm::ServerConfig Config,
                                      uint32_t Region, uint32_t Bucket,
                                      uint32_t Requests, uint64_t Seed);

} // namespace jumpstart::fleet

#endif // JUMPSTART_FLEET_SERVERSIM_H
