//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "fleet/WorkloadGen.h"

#include "bytecode/Verifier.h"
#include "frontend/Compiler.h"
#include "runtime/Builtins.h"
#include "support/Assert.h"
#include "support/Hashing.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <map>

using namespace jumpstart;
using namespace jumpstart::fleet;

namespace {

/// The cumulative mutation set implied by DriftParams, resolved to
/// concrete endpoint ids.  Built from its own RNG stream (never the site
/// writer's), so everything the plan leaves alone is emitted with the
/// exact release-0 bytes.
struct DriftPlan {
  /// Endpoint id -> release of its most recent rename.
  std::map<uint32_t, uint32_t> RenameRelease;
  /// Endpoint id -> release that split it (first split wins; a split
  /// endpoint keeps its tail function in every later release).
  std::map<uint32_t, uint32_t> SplitRelease;
  /// Endpoints added since release 0 (ids NumEndpoints..+NumAdded-1).
  uint32_t NumAdded = 0;
  /// Hot-slice rotation applied to every partition.
  uint32_t Rotation = 0;
};

DriftPlan buildDriftPlan(const WorkloadParams &P, const DriftParams &D) {
  DriftPlan Plan;
  for (uint32_t Rel = 1; Rel <= D.Release; ++Rel) {
    Rng DR(hashCombine(D.DriftSeed, Rel));
    for (uint32_t I = 0; I < D.RenamesPerRelease; ++I)
      Plan.RenameRelease[static_cast<uint32_t>(
          DR.nextBelow(P.NumEndpoints))] = Rel;
    for (uint32_t I = 0; I < D.SplitsPerRelease; ++I)
      Plan.SplitRelease.emplace(
          static_cast<uint32_t>(DR.nextBelow(P.NumEndpoints)), Rel);
    Plan.NumAdded += D.AddsPerRelease;
  }
  if (D.RotateHotness)
    Plan.Rotation = D.Release % P.NumPartitions;
  return Plan;
}

/// Emits the source text of the synthetic site.
class SiteWriter {
public:
  SiteWriter(const WorkloadParams &P, const DriftParams &D,
             const DriftPlan &Plan, Rng &R)
      : P(P), D(D), Plan(Plan), R(R) {}

  std::vector<frontend::SourceFile> write();

  /// Endpoint function names in endpoint-id order.
  std::vector<std::string> EndpointNames;

private:
  std::string className(uint32_t I) const { return strFormat("K%u", I); }
  std::string helperName(uint32_t I) const { return strFormat("h%u", I); }

  void writeClass(std::string &Out, uint32_t I);
  void writeHelper(std::string &Out, uint32_t I);
  void writeEndpoint(std::string &Out, uint32_t I, Rng &Rand);

  /// Helpers below this index are "common" (reachable from the endpoint
  /// mixes); the rest are rare-path helpers only reached behind
  /// low-probability request guards -- the long tail that keeps the live
  /// JIT busy until Figure 1's point D.
  uint32_t numCommon() const { return P.NumHelpers - P.NumHelpers / 8; }

  /// A deterministic "random" helper callee for caller \p I: always a
  /// higher-numbered helper, keeping the call graph acyclic and call
  /// chains index-local (which gives C3 a real signal).  Common helpers
  /// only call common helpers; rare helpers chain among themselves.
  uint32_t calleeFor(uint32_t I) {
    uint32_t Limit = I < numCommon() ? numCommon() : P.NumHelpers;
    uint32_t Lo = I + 1;
    uint32_t Hi = std::min(I + 40, Limit - 1);
    if (Lo >= Hi)
      return P.NumHelpers; // sentinel: no callee available
    return Lo + static_cast<uint32_t>(R.nextBelow(Hi - Lo + 1));
  }

  /// Arity of helper \p I (decided once, consulted by all call sites).
  uint32_t helperArity(uint32_t I) const { return (I % 5 == 2) ? 2 : 1; }

  /// Root class of the family containing class \p I.  Families are
  /// groups of kFamilySize consecutive classes; the first is the root.
  static constexpr uint32_t kFamilySize = 6;
  uint32_t familyRoot(uint32_t I) const { return I - (I % kFamilySize); }

  const WorkloadParams &P;
  const DriftParams &D;
  const DriftPlan &Plan;
  Rng &R;
};

void SiteWriter::writeClass(std::string &Out, uint32_t I) {
  uint32_t Root = familyRoot(I);
  bool IsRoot = I == Root;
  uint32_t NumProps = 4 + I % 5; // 4..8 own properties
  Out += strFormat("class %s", className(I).c_str());
  if (!IsRoot)
    Out += strFormat(" extends %s", className(Root).c_str());
  Out += " {\n";
  // Own properties.  Declared order deliberately interleaves hot and
  // cold names (methods below touch the even-indexed ones far more), so
  // profile-driven reordering has something to gain.
  for (uint32_t Pr = 0; Pr < NumProps; ++Pr)
    Out += strFormat("  prop $f%u_%u;\n", I, Pr);

  // An initializer writing the hot (even-indexed) properties.  Cold
  // properties stay null until the rare audit path touches them --
  // partially-initialized objects are the normal case in web code, and
  // they are what makes property placement matter for data locality
  // (paper section V-C).
  Out += strFormat("  method init%s($s) {\n", IsRoot ? "" : "x");
  for (uint32_t Pr = 0; Pr < NumProps; Pr += 2)
    Out += strFormat("    $this->f%u_%u = $s + %u;\n", I, Pr, Pr * 3 + 1);
  Out += "    return $this;\n  }\n";

  // compute(): declared on roots, overridden by children -- the virtual
  // dispatch surface.  Hot property reads hit even slots repeatedly.
  Out += "  method compute($x) {\n";
  Out += "    $acc = $x;\n";
  uint32_t Reps = 2 + I % 3;
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    uint32_t HotProp = (Rep * 2) % NumProps; // even-index props are hot
    Out += strFormat("    $acc = $acc + $this->f%u_%u * %u;\n", I, HotProp,
                     Rep + 1);
  }
  if (!IsRoot) // children diverge from the root's behaviour
    Out += strFormat("    $acc = $acc %% %u + $this->f%u_0;\n",
                     1009 + I, I);
  Out += "    return $acc;\n  }\n";

  // A rarely-called method touching the odd (cold) properties, so they
  // are not dead weight the verifier would flag.
  Out += "  method audit() {\n    $t = 0;\n";
  for (uint32_t Pr = 1; Pr < NumProps; Pr += 2)
    Out += strFormat("    $t = $t + $this->f%u_%u;\n", I, Pr);
  Out += "    return $t;\n  }\n";
  Out += "}\n";
}

void SiteWriter::writeHelper(std::string &Out, uint32_t I) {
  uint32_t Arity = helperArity(I);
  uint32_t Shape = static_cast<uint32_t>(R.nextBelow(7));
  const char *Params = Arity == 2 ? "$x, $y" : "$x";
  Out += strFormat("function %s(%s) {\n", helperName(I).c_str(), Params);

  auto EmitCall = [&](const char *ArgExpr) {
    uint32_t Callee = calleeFor(I);
    if (Callee >= P.NumHelpers) {
      Out += strFormat("  $c = %s;\n", ArgExpr);
      return;
    }
    if (helperArity(Callee) == 2)
      Out += strFormat("  $c = %s(%s, %u);\n",
                       helperName(Callee).c_str(), ArgExpr, I % 13);
    else
      Out += strFormat("  $c = %s(%s);\n", helperName(Callee).c_str(),
                       ArgExpr);
  };

  switch (Shape) {
  case 0: { // arithmetic loop
    uint32_t Iters = 4 + I % 9;
    Out += strFormat("  $acc = $x; $i = 0;\n"
                     "  while ($i < %u) {\n"
                     "    $acc = ($acc * 3 + $i) %% 65537;\n"
                     "    $i = $i + 1;\n"
                     "  }\n",
                     Iters);
    EmitCall("$acc");
    Out += "  return $acc + $c;\n";
    break;
  }
  case 1: { // string building
    Out += "  $s = \"r\";\n"
           "  $i = 0;\n"
           "  while ($i < 4) {\n"
           "    $s = $s . to_str($x + $i);\n"
           "    $i = $i + 1;\n"
           "  }\n";
    EmitCall("strlen($s)");
    Out += "  return strlen($s) + $c;\n";
    break;
  }
  case 2: { // vec traversal
    Out += strFormat("  $v = vec[%u, %u, %u];\n", I % 7, I % 11, I % 13);
    Out += "  $i = 0;\n"
           "  while ($i < 5) {\n"
           "    $v[3] = ($x + $i) % 97;\n"
           "    $i = $i + 1;\n"
           "  }\n"
           "  $t = $v[0] + $v[1] + $v[2] + $v[3];\n";
    EmitCall("$t");
    Out += "  return $t + $c;\n";
    break;
  }
  case 3: { // dict use
    Out += strFormat("  $d = dict[\"a\" => $x, \"b\" => %u];\n", I % 19);
    Out += "  $d[\"c\"] = $d[\"a\"] + $d[\"b\"];\n"
           "  if ($d[\"c\"] > 50) { $d[\"c\"] = $d[\"c\"] % 50; }\n";
    EmitCall("$d[\"c\"]");
    Out += "  return $d[\"c\"] + $c;\n";
    break;
  }
  case 4: { // object use, monomorphic receiver
    uint32_t Cls = I % P.NumClasses;
    bool Root = Cls == familyRoot(Cls);
    Out += strFormat("  $o = new %s();\n", className(Cls).c_str());
    Out += strFormat("  $o->init%s($x);\n", Root ? "" : "x");
    Out += "  $t = $o->compute($x);\n";
    EmitCall("$t");
    Out += "  return $t + $c;\n";
    break;
  }
  case 5: { // polymorphic receiver: class picked by data
    uint32_t Fam = familyRoot(I % P.NumClasses);
    uint32_t Child1 = std::min(Fam + 1, P.NumClasses - 1);
    uint32_t Child2 = std::min(Fam + 2, P.NumClasses - 1);
    Out += strFormat("  if ($x %% 2 == 0) { $o = new %s(); $o->init($x); }\n",
                     className(Fam).c_str());
    Out += strFormat("  else { if ($x %% 3 == 0) { $o = new %s(); "
                     "$o->initx($x); } else { $o = new %s(); "
                     "$o->initx($x); } }\n",
                     className(Child1).c_str(), className(Child2).c_str());
    Out += "  $t = $o->compute($x % 31);\n";
    EmitCall("$t");
    Out += "  return $t + $c;\n";
    break;
  }
  default: { // branching + chained calls
    Out += "  if ($x % 3 == 0) {\n"
           "    $r = $x * 2 + 1;\n"
           "  } else {\n"
           "    $r = $x - 1;\n"
           "    if ($r < 0) { $r = 0 - $r; }\n"
           "  }\n";
    EmitCall("$r");
    Out += "  return $r + $c;\n";
    break;
  }
  }
  Out += "}\n";
}

void SiteWriter::writeEndpoint(std::string &Out, uint32_t E, Rng &Rand) {
  uint32_t Partition = E % P.NumPartitions;
  std::string Name = strFormat("endpoint_%u", E);
  auto Renamed = Plan.RenameRelease.find(E);
  if (Renamed != Plan.RenameRelease.end())
    Name = strFormat("endpoint_%u_r%u", E, Renamed->second);
  EndpointNames.push_back(Name);
  Out += strFormat("function %s($req) {\n", Name.c_str());
  Out += "  $acc = 0;\n";

  // The partition's helper slice plus the shared global head (both drawn
  // from the common range; rare helpers are only reachable through the
  // guarded calls below).  Drift rotates which slice is hot without
  // touching any code.
  uint32_t Common = numCommon();
  uint32_t SliceSize = Common / P.NumPartitions;
  uint32_t SliceBase =
      ((Partition + Plan.Rotation) % P.NumPartitions) * SliceSize;
  ZipfDistribution SliceDist(SliceSize, P.Flatness);
  ZipfDistribution HeadDist(std::min<uint32_t>(Common, 64), P.Flatness);

  // Call lines are generated up-front (one fixed draw sequence per
  // endpoint regardless of drift) and only then routed into either the
  // endpoint body or its split-off tail function.
  std::vector<std::string> Calls;
  for (uint32_t C = 0; C < P.CallsPerEndpoint; ++C) {
    uint32_t Helper;
    if (Rand.nextBool(0.7))
      Helper = SliceBase + static_cast<uint32_t>(SliceDist.sample(Rand));
    else
      Helper = static_cast<uint32_t>(HeadDist.sample(Rand));
    Helper = std::min(Helper, Common - 1);

    // Argument type varies by endpoint parity: some endpoints feed
    // doubles into the same helpers others feed ints -- cross-endpoint
    // type pollution, which semantic routing (and per-bucket profiles)
    // mitigates in production.
    std::string Arg;
    if (E % 4 == 3 && C % 3 == 0)
      Arg = strFormat("($req * 1.5 + %u)", C);
    else
      Arg = strFormat("($req + %u)", C * 7 + 1);
    if (helperArity(Helper) == 2)
      Calls.push_back(strFormat("  $acc = $acc + %s(%s, $req %% 11);\n",
                                helperName(Helper).c_str(), Arg.c_str()));
    else
      Calls.push_back(strFormat("  $acc = $acc + %s(%s);\n",
                                helperName(Helper).c_str(), Arg.c_str()));
  }

  // A split endpoint keeps the first half of its helper calls and moves
  // the rest into a tail function (emitted after the endpoint, below):
  // the endpoint's body -- and so its block structure and basic-block
  // counts -- genuinely changes across the release.
  auto Split = Plan.SplitRelease.find(E);
  size_t InMain = Calls.size();
  std::string TailName;
  if (Split != Plan.SplitRelease.end() && Calls.size() >= 2) {
    InMain = Calls.size() / 2;
    TailName = strFormat("tail_%u_r%u", E, Split->second);
  }
  for (size_t C = 0; C < InMain; ++C)
    Out += Calls[C];
  if (!TailName.empty())
    Out += strFormat("  $acc = $acc + %s($req);\n", TailName.c_str());

  // Rare code paths: each endpoint calls a couple of tail helpers behind
  // low-probability request guards.  These functions are almost never
  // seen during a profiling window, so they reach the JIT through the
  // tracelet (live) path well after optimized code is in place -- the
  // C..D tail of the paper's Figure 1.
  if (P.NumHelpers / 8 > 0) {
    uint32_t RareBase = numCommon();
    uint32_t RareCount = P.NumHelpers - RareBase;
    for (uint32_t G = 0; G < 2; ++G) {
      uint32_t Modulus = 113 + (E * 7 + G * 13) % 97; // 113..209
      uint32_t Residue = (E * 31 + G * 17) % Modulus;
      uint32_t Rare = RareBase + (E * 2 + G) % RareCount;
      std::string Arg = strFormat("($req + %u)", G);
      std::string Call;
      if (helperArity(Rare) == 2)
        Call = strFormat("%s(%s, 3)", helperName(Rare).c_str(),
                         Arg.c_str());
      else
        Call = strFormat("%s(%s)", helperName(Rare).c_str(), Arg.c_str());
      Out += strFormat("  if ($req %% %u == %u) { $acc = $acc + %s; }\n",
                       Modulus, Residue, Call.c_str());
    }
  }

  // Some endpoint-local work with request-dependent branching.
  Out += "  if ($req % 5 == 0) {\n"
         "    $s = \"resp:\" . to_str($acc);\n"
         "    $acc = $acc + strlen($s);\n"
         "  }\n";
  Out += "  return $acc;\n}\n";

  if (!TailName.empty()) {
    Out += strFormat("function %s($req) {\n  $acc = 0;\n",
                     TailName.c_str());
    for (size_t C = InMain; C < Calls.size(); ++C)
      Out += Calls[C];
    Out += "  return $acc;\n}\n";
  }
}

std::vector<frontend::SourceFile> SiteWriter::write() {
  std::vector<frontend::SourceFile> Files;
  alwaysAssert(P.NumUnits >= 3, "need at least 3 units");
  alwaysAssert(P.NumHelpers >= P.NumPartitions * 4,
               "too few helpers for the partition count");
  alwaysAssert(P.NumClasses >= kFamilySize,
               "need at least one full class family");

  // Units: classes first, then helpers, then endpoints, spread evenly.
  uint32_t ClassUnits = std::max(1u, P.NumUnits / 6);
  uint32_t EndpointUnits = std::max(1u, P.NumUnits / 6);
  uint32_t HelperUnits = P.NumUnits - ClassUnits - EndpointUnits;

  for (uint32_t U = 0; U < ClassUnits; ++U) {
    std::string Src;
    for (uint32_t I = U; I < P.NumClasses; I += ClassUnits)
      writeClass(Src, I);
    Files.push_back({strFormat("classes_%u.hack", U), std::move(Src)});
  }
  for (uint32_t U = 0; U < HelperUnits; ++U) {
    std::string Src;
    // Contiguous helper ranges per unit: unit locality mirrors partition
    // locality, so preload lists carry real information.
    uint32_t Begin = U * P.NumHelpers / HelperUnits;
    uint32_t End = (U + 1) * P.NumHelpers / HelperUnits;
    for (uint32_t I = Begin; I < End; ++I)
      writeHelper(Src, I);
    Files.push_back({strFormat("helpers_%u.hack", U), std::move(Src)});
  }
  for (uint32_t U = 0; U < EndpointUnits; ++U) {
    std::string Src;
    for (uint32_t E = U; E < P.NumEndpoints; E += EndpointUnits)
      writeEndpoint(Src, E, R);
    if (U + 1 == EndpointUnits) {
      // Drift-added endpoints go at the end of the last endpoint unit.
      // Each draws from a self-seeded RNG keyed on its id, so (a) the
      // base site's draw stream is untouched and (b) an endpoint added
      // in release N has the identical body in every later release.
      for (uint32_t A = 0; A < Plan.NumAdded; ++A) {
        uint32_t E = P.NumEndpoints + A;
        Rng AddRng(hashCombine(hashCombine(D.DriftSeed, 0x616464ull), E));
        writeEndpoint(Src, E, AddRng);
      }
    }
    Files.push_back({strFormat("endpoints_%u.hack", U), std::move(Src)});
  }
  // writeEndpoint appended names in unit-interleaved order; re-sort them
  // back to endpoint-id order.
  std::sort(EndpointNames.begin(), EndpointNames.end(),
            [](const std::string &A, const std::string &B) {
              auto Num = [](const std::string &S) {
                return std::strtoul(S.c_str() + 9, nullptr, 10);
              };
              return Num(A) < Num(B);
            });
  return Files;
}

} // namespace

std::unique_ptr<Workload>
jumpstart::fleet::generateWorkload(const WorkloadParams &P) {
  return generateDriftedWorkload(P, DriftParams{});
}

std::unique_ptr<Workload>
jumpstart::fleet::generateDriftedWorkload(const WorkloadParams &P,
                                          const DriftParams &D) {
  Rng R(P.Seed);
  auto W = std::make_unique<Workload>();
  W->NumPartitions = P.NumPartitions;

  DriftPlan Plan = buildDriftPlan(P, D);
  SiteWriter Writer(P, D, Plan, R);
  std::vector<frontend::SourceFile> Files = Writer.write();
  for (const frontend::SourceFile &F : Files)
    W->Sources.emplace_back(F.Name, F.Source);

  const runtime::BuiltinTable &Builtins = runtime::BuiltinTable::standard();
  std::vector<std::string> Errors =
      frontend::compileProgram(W->Repo, Builtins, Files);
  for (const std::string &E : Errors)
    std::fprintf(stderr, "workload compile error: %s\n", E.c_str());
  alwaysAssert(Errors.empty(), "generated workload failed to compile");

  std::vector<std::string> VerifyErrors =
      bc::verifyRepo(W->Repo, Builtins.size());
  for (const std::string &E : VerifyErrors)
    std::fprintf(stderr, "workload verify error: %s\n", E.c_str());
  alwaysAssert(VerifyErrors.empty(), "generated workload failed to verify");

  uint32_t Total = P.NumEndpoints + Plan.NumAdded;
  alwaysAssert(Writer.EndpointNames.size() == Total,
               "endpoint name bookkeeping broken");
  W->EndpointNames = Writer.EndpointNames;
  for (uint32_t E = 0; E < Total; ++E) {
    bc::FuncId F = W->Repo.findFunction(W->EndpointNames[E]);
    alwaysAssert(F.valid(), "endpoint function missing");
    W->Endpoints.push_back(F);
    W->EndpointPartition.push_back(E % P.NumPartitions);
  }
  return W;
}
