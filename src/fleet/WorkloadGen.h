//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic-website generator: the reproduction's stand-in for the
/// Facebook website workload (see DESIGN.md substitution table).
///
/// The generator emits mini-Hack *source code* -- many units, a long tail
/// of helper functions with a very flat hotness profile, class hierarchies
/// with virtual dispatch, and endpoint functions partitioned into semantic
/// buckets -- then compiles it through the offline compiler into a
/// bytecode repo, exactly as production deployment would.
///
/// Properties engineered to match the paper's workload description
/// (section II-B/II-C):
///  - flat profile: no function dominates; a long tail executes;
///  - per-(region, bucket) endpoint mixes differ, but within a pair the
///    traffic is homogeneous;
///  - type polymorphism: some helpers receive different argument types
///    from different endpoints, so type specialization and its guards
///    matter;
///  - data-dependent branching: request ids steer conditions, so block
///    and call-target profiles carry real information.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FLEET_WORKLOADGEN_H
#define JUMPSTART_FLEET_WORKLOADGEN_H

#include "bytecode/Repo.h"
#include "support/Random.h"

#include <memory>
#include <string>
#include <vector>

namespace jumpstart::fleet {

/// Generator knobs.  Defaults produce a site big enough to exhibit the
/// paper's warmup phenomenology while keeping simulations fast.
struct WorkloadParams {
  uint64_t Seed = 2021;
  uint32_t NumUnits = 60;
  uint32_t NumEndpoints = 48;
  uint32_t NumHelpers = 900;
  uint32_t NumClasses = 90;
  /// Semantic partitions (the paper's load balancers use 10).
  uint32_t NumPartitions = 10;
  /// Zipf exponent of helper hotness; small = flat (paper: "very flat
  /// execution profile").
  double Flatness = 0.45;
  /// Average helpers called directly per endpoint.
  uint32_t CallsPerEndpoint = 14;
};

/// Code-drift knobs: how the synthetic site mutates across releases
/// (ROADMAP item 4, "staleness under drift").  Release 0 is byte-for-byte
/// the undrifted site; each later release cumulatively renames endpoints
/// (same body, new name -- profile anchors break by name), splits
/// endpoints (half the helper calls move into a new tail function --
/// function bodies shrink and block structures change), adds brand-new
/// endpoints (never profiled), and rotates which helper slice each
/// partition hammers (hotness shift).  The drift plan draws from its own
/// RNG, so the surviving code of release N is textually identical to
/// release 0 -- exactly the "mostly the same site" a real weekly push
/// produces.
struct DriftParams {
  /// Releases of drift to apply (0 = pristine site).
  uint32_t Release = 0;
  uint32_t RenamesPerRelease = 2;
  uint32_t SplitsPerRelease = 1;
  uint32_t AddsPerRelease = 1;
  /// Rotate each partition's hot helper slice by one partition per
  /// release (shifts hotness without touching any code).
  bool RotateHotness = true;
  uint64_t DriftSeed = 77;
};

/// The generated application.
struct Workload {
  bc::Repo Repo;
  /// Endpoint functions, index = endpoint id.
  std::vector<bc::FuncId> Endpoints;
  /// Endpoint function names, index = endpoint id (drift can rename
  /// them, so "endpoint_<id>" is not always the name).
  std::vector<std::string> EndpointNames;
  /// Semantic partition of each endpoint.
  std::vector<uint32_t> EndpointPartition;
  uint32_t NumPartitions = 0;
  /// The generated source (kept for the examples and debugging).
  std::vector<std::pair<std::string, std::string>> Sources;
};

/// Generates and compiles a workload.  Aborts (alwaysAssert) on generator
/// bugs -- generated code must always compile and verify.
std::unique_ptr<Workload> generateWorkload(const WorkloadParams &P);

/// Generates release \p D.Release of the drifting site.  With
/// D.Release == 0 the result is byte-identical to generateWorkload(P).
std::unique_ptr<Workload> generateDriftedWorkload(const WorkloadParams &P,
                                                  const DriftParams &D);

} // namespace jumpstart::fleet

#endif // JUMPSTART_FLEET_WORKLOADGEN_H
