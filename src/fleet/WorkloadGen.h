//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic-website generator: the reproduction's stand-in for the
/// Facebook website workload (see DESIGN.md substitution table).
///
/// The generator emits mini-Hack *source code* -- many units, a long tail
/// of helper functions with a very flat hotness profile, class hierarchies
/// with virtual dispatch, and endpoint functions partitioned into semantic
/// buckets -- then compiles it through the offline compiler into a
/// bytecode repo, exactly as production deployment would.
///
/// Properties engineered to match the paper's workload description
/// (section II-B/II-C):
///  - flat profile: no function dominates; a long tail executes;
///  - per-(region, bucket) endpoint mixes differ, but within a pair the
///    traffic is homogeneous;
///  - type polymorphism: some helpers receive different argument types
///    from different endpoints, so type specialization and its guards
///    matter;
///  - data-dependent branching: request ids steer conditions, so block
///    and call-target profiles carry real information.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FLEET_WORKLOADGEN_H
#define JUMPSTART_FLEET_WORKLOADGEN_H

#include "bytecode/Repo.h"
#include "support/Random.h"

#include <memory>
#include <string>
#include <vector>

namespace jumpstart::fleet {

/// Generator knobs.  Defaults produce a site big enough to exhibit the
/// paper's warmup phenomenology while keeping simulations fast.
struct WorkloadParams {
  uint64_t Seed = 2021;
  uint32_t NumUnits = 60;
  uint32_t NumEndpoints = 48;
  uint32_t NumHelpers = 900;
  uint32_t NumClasses = 90;
  /// Semantic partitions (the paper's load balancers use 10).
  uint32_t NumPartitions = 10;
  /// Zipf exponent of helper hotness; small = flat (paper: "very flat
  /// execution profile").
  double Flatness = 0.45;
  /// Average helpers called directly per endpoint.
  uint32_t CallsPerEndpoint = 14;
};

/// The generated application.
struct Workload {
  bc::Repo Repo;
  /// Endpoint functions, index = endpoint id.
  std::vector<bc::FuncId> Endpoints;
  /// Semantic partition of each endpoint.
  std::vector<uint32_t> EndpointPartition;
  uint32_t NumPartitions = 0;
  /// The generated source (kept for the examples and debugging).
  std::vector<std::pair<std::string, std::string>> Sources;
};

/// Generates and compiles a workload.  Aborts (alwaysAssert) on generator
/// bugs -- generated code must always compile and verify.
std::unique_ptr<Workload> generateWorkload(const WorkloadParams &P);

} // namespace jumpstart::fleet

#endif // JUMPSTART_FLEET_WORKLOADGEN_H
