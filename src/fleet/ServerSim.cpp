//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "fleet/ServerSim.h"

#include "support/Assert.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>

using namespace jumpstart;
using namespace jumpstart::fleet;

WarmupResult jumpstart::fleet::runWarmup(const Workload &W,
                                         const TrafficModel &Traffic,
                                         vm::ServerConfig Config,
                                         const ServerSimParams &P,
                                         const profile::ProfilePackage *Pkg) {
  WarmupResult Result;
  Rng R(P.Seed);

  // Observability: record into the caller's context, or a run-owned one
  // (per-run isolation keeps identical runs byte-identical).
  if (!P.Obs)
    Result.OwnedObs = std::make_unique<obs::Observability>();
  obs::Observability &O = P.Obs ? *P.Obs : *Result.OwnedObs;
  Result.Obs = &O;
  // Each run restarts the virtual clock; per-run track names keep traces
  // from different runs apart.
  O.Clock.set(0);
  obs::LabelSet ByRun{{"run", P.RunLabel}};
  TimeSeries &Rps = O.Metrics.series("fleet.rps", ByRun);
  TimeSeries &NormalizedRps = O.Metrics.series("fleet.normalized_rps", ByRun);
  TimeSeries &Latency = O.Metrics.series("fleet.latency_seconds", ByRun);
  TimeSeries &CodeBytes = O.Metrics.series("fleet.code_bytes", ByRun);
  alwaysAssert(Rps.empty(),
               "runWarmup: RunLabel already used in this registry");
  Result.RpsSeries = &Rps;
  Result.NormalizedRpsSeries = &NormalizedRps;
  Result.LatencySeries = &Latency;
  Result.CodeBytesSeries = &CodeBytes;

  // Default warmup requests: a sample of this bucket's mix, enough to
  // touch the important units (paper section VII-A).
  if (Config.WarmupEndpoints.empty()) {
    for (uint32_t I = 0; I < 16; ++I) {
      uint32_t E = Traffic.sampleEndpoint(P.Region, P.Bucket, R);
      Config.WarmupEndpoints.push_back(W.Endpoints[E].raw());
    }
  }

  Config.Obs = &O;
  Config.Name = P.RunLabel;
  auto Server = std::make_unique<vm::Server>(W.Repo, Config, R.next());
  if (Pkg) {
    support::Status Installed = Server->installPackage(*Pkg);
    alwaysAssert(Installed.ok(), "runWarmup: package rejected");
  }
  Result.Init = Server->startup();

  jit::Jit &J = Server->theJit();
  double Now = Result.Init.TotalSeconds;
  Result.Phases.ServeStart = Now;
  Rps.record(0, 0);
  NormalizedRps.record(0, 0);
  CodeBytes.record(0, 0);

  jit::JitPhase LastPhase = J.phase();
  if (LastPhase != jit::JitPhase::Profiling) {
    // Consumer boots already past profiling.
    Result.Phases.ProfilingEnd = Now;
    Result.Phases.RelocationStart = Now;
    Result.Phases.RelocationEnd = Now;
  }
  uint64_t LastCodeBytes = J.totalCodeBytes();
  double LastCodeGrowth = Now;

  double CoreSecondsPerTick =
      static_cast<double>(Config.Cores) * P.TickSeconds;

  while (Now < P.DurationSeconds) {
    // Sampled real requests: measure current service time and advance
    // JIT profiling state.
    double SampleCost = 0;
    uint32_t Samples = std::max(1u, P.SamplesPerTick);
    for (uint32_t S = 0; S < Samples; ++S) {
      uint32_t E = Traffic.sampleEndpoint(P.Region, P.Bucket, R);
      SampleCost += Server->executeRequest(W.Endpoints[E],
                                           TrafficModel::makeArgs(R))
                        .Seconds;
    }
    double ServiceSec = SampleCost / Samples;

    // Background JIT work.
    double JitWall = Server->grantJitTime(P.TickSeconds);
    double JitCoreSeconds =
        JitWall * static_cast<double>(Config.JitWorkerCores);

    // Fluid serving: remaining core capacity handles the offered load.
    double ServeCapacity =
        std::max(0.0, CoreSecondsPerTick - JitCoreSeconds);
    double Offered = P.OfferedRps * P.TickSeconds;
    double Served = std::min(Offered, ServeCapacity / ServiceSec);

    // The analytically-served requests advance the profiling window too.
    uint64_t Extra = static_cast<uint64_t>(Served);
    Extra -= std::min<uint64_t>(Extra, Samples);
    for (uint64_t I = 0; I < Extra; ++I)
      J.onRequestFinished();

    Now += P.TickSeconds;
    // Realign the shared clock with tick time (the sampled requests and
    // JIT grants above advanced it by their CPU costs).
    O.Clock.set(Now);
    Rps.record(Now, Served / P.TickSeconds);
    NormalizedRps.record(Now, Served / Offered);
    double WallSec = ServiceSec;
    if (P.ModelQueueing) {
      // Sakasegawa's M/M/c waiting-time approximation: queueing is
      // negligible at moderate utilization and explodes only near
      // saturation, as on a real multi-core server.
      double MaxRate = ServeCapacity / ServiceSec;
      double Rho = std::min(0.99, MaxRate > 0 ? Served / MaxRate : 0.99);
      double C = std::max(1.0, static_cast<double>(Config.Cores) -
                                   Config.JitWorkerCores);
      double Wait = std::pow(Rho, std::sqrt(2.0 * (C + 1.0))) /
                    (C * (1.0 - Rho));
      WallSec *= 1.0 + Wait;
    }
    Latency.record(Now, WallSec);
    uint64_t Code = J.totalCodeBytes();
    CodeBytes.record(Now, static_cast<double>(Code));
    if (Code > LastCodeBytes) {
      LastCodeBytes = Code;
      LastCodeGrowth = Now;
    }

    // Phase transitions (Figure 1's labelled points).
    jit::JitPhase Phase = J.phase();
    if (Phase != LastPhase) {
      if (LastPhase == jit::JitPhase::Profiling)
        Result.Phases.ProfilingEnd = Now;
      if (Phase == jit::JitPhase::Relocating)
        Result.Phases.RelocationStart = Now;
      if (Phase == jit::JitPhase::Mature)
        Result.Phases.RelocationEnd = Now;
      LastPhase = Phase;
    }
  }
  Result.Phases.JitingStopped = LastCodeGrowth;

  // Capacity loss: area above the normalized curve over the full window
  // (server restart at t=0; it serves nothing until init finishes).
  Result.CapacityLossFraction =
      NormalizedRps.areaAbove(1.0, 0, P.DurationSeconds) /
      P.DurationSeconds;
  O.Metrics.gauge("fleet.capacity_loss_fraction", ByRun)
      .set(Result.CapacityLossFraction);

  Result.Server = std::move(Server);
  return Result;
}

std::vector<WarmupResult> jumpstart::fleet::runWarmupSweep(
    const Workload &W, const TrafficModel &Traffic,
    const vm::ServerConfig &Config, const std::vector<WarmupSweepRun> &Runs,
    support::ThreadPool *Pool, obs::MetricsRegistry *Merged) {
  for (const WarmupSweepRun &Run : Runs)
    alwaysAssert(Run.Params.Obs == nullptr,
                 "sweep runs record into run-owned registries "
                 "(shard-then-merge); do not pass Params.Obs");
  std::vector<WarmupResult> Results(Runs.size());
  auto RunOne = [&](size_t I) {
    Results[I] =
        runWarmup(W, Traffic, Config, Runs[I].Params, Runs[I].Package);
  };
  if (Pool)
    Pool->parallelFor(Runs.size(), RunOne);
  else
    for (size_t I = 0; I < Runs.size(); ++I)
      RunOne(I);
  // Deterministic merge: run-index order, regardless of which worker
  // finished first.
  if (Merged)
    for (const WarmupResult &Result : Results)
      Merged->mergeFrom(Result.Obs->Metrics);
  return Results;
}

std::unique_ptr<vm::Server> jumpstart::fleet::runSeeder(
    const Workload &W, const TrafficModel &Traffic, vm::ServerConfig Config,
    uint32_t Region, uint32_t Bucket, uint32_t Requests, uint64_t Seed) {
  Rng R(Seed);
  if (Config.WarmupEndpoints.empty()) {
    for (uint32_t I = 0; I < 8 && I < W.Endpoints.size(); ++I) {
      uint32_t E = Traffic.sampleEndpoint(Region, Bucket, R);
      Config.WarmupEndpoints.push_back(W.Endpoints[E].raw());
    }
  }
  auto Server = std::make_unique<vm::Server>(W.Repo, Config, R.next());
  Server->startup();
  for (uint32_t I = 0; I < Requests; ++I) {
    uint32_t E = Traffic.sampleEndpoint(Region, Bucket, R);
    Server->executeRequest(W.Endpoints[E], TrafficModel::makeArgs(R));
    // Give the JIT generous background time: seeders run for a long
    // window (C2 lasts ~30 minutes); we only need its end state.
    Server->grantJitTime(0.25);
  }
  // Drain any outstanding compile work.
  while (Server->theJit().hasPendingWork())
    Server->grantJitTime(1.0);
  return Server;
}
