//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-scale reliability simulation (paper section VI).
///
/// Models the failure dynamics the paper describes qualitatively: a
/// crash-inducing ("poisoned") profile package slips past validation with
/// some probability; consumers pick packages at random per restart; a
/// crashed consumer restarts and re-picks; after a bounded number of
/// failed Jump-Start attempts it falls back to collecting its own profile.
/// The simulation is analytic over restart rounds -- no VM runs -- and
/// demonstrates the exponential decay of affected consumers and the
/// catastrophic alternative without randomized selection.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FLEET_RELIABILITY_H
#define JUMPSTART_FLEET_RELIABILITY_H

#include "support/Random.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jumpstart::obs {
struct Observability;
}

namespace jumpstart::fleet {

/// Crash-loop simulation knobs.
struct ReliabilityParams {
  uint32_t NumConsumers = 2000;
  /// Packages published per (region, bucket) -- "use of multiple,
  /// randomized profiles".
  uint32_t NumPackages = 8;
  uint32_t NumPoisoned = 1;
  /// Of the published packages, how many are *stale*: rebased from an
  /// older release after code drift.  A stale package never crashes a
  /// consumer, but its install is rejected (fingerprint/lint attrition)
  /// with StaleRejectProbability per pick; a rejection burns a
  /// Jump-Start attempt just like a crash does.  Poisoned and stale
  /// package sets are disjoint.
  uint32_t NumStale = 0;
  double StaleRejectProbability = 0.0;
  /// Probability that validation catches a poisoned package before
  /// publication (paper VI-A technique 1).
  double ValidationCatchProbability = 0.0;
  /// Restart attempts with Jump-Start before automatic no-Jump-Start
  /// fallback (technique 3).
  uint32_t MaxJumpStartAttempts = 3;
  /// Consumers pick a random package per restart (technique 2).  With
  /// false, every consumer uses package 0 -- the "straightforward
  /// deployment" the paper warns about.
  bool RandomizedSelection = true;
  uint32_t Rounds = 12;
  uint64_t Seed = 33;
  /// Optional observability sink: crash/fallback counters and the
  /// crashed-per-round series land here under {run=RunLabel}.
  obs::Observability *Obs = nullptr;
  std::string RunLabel = "reliability";
};

/// Outcome of the crash-loop simulation.
///
/// Partition invariant: every consumer ends either healthy *with*
/// Jump-Start or in no-Jump-Start fallback, so whenever Rounds >=
/// MaxJumpStartAttempts (enough rounds for every unlucky consumer to
/// exhaust its attempts), HealthyAtEnd + FallbackCount == NumConsumers
/// for ANY seed and any parameters with RandomizedSelection enabled.
/// The reliability property tests assert exactly this.
struct ReliabilityResult {
  /// Consumers that crashed in each restart round.
  std::vector<uint32_t> CrashedPerRound;
  /// Consumers that ended up in no-Jump-Start fallback (serving, but
  /// they collect their own profile).
  uint32_t FallbackCount = 0;
  /// Consumers serving WITH Jump-Start at the end; fallback consumers
  /// are counted in FallbackCount only, never here.
  uint32_t HealthyAtEnd = 0;
  /// Peak simultaneous crash count (site-outage indicator).
  uint32_t PeakCrashed = 0;
  /// Packages that were poisoned and published (post-validation).
  uint32_t PoisonedPublished = 0;
  /// Stale-package installs rejected across all rounds (drift attrition;
  /// each burned one Jump-Start attempt without crashing anything).
  uint32_t StaleRejections = 0;
};

/// Runs the crash-loop model.
ReliabilityResult simulateCrashLoop(const ReliabilityParams &P);

} // namespace jumpstart::fleet

#endif // JUMPSTART_FLEET_RELIABILITY_H
