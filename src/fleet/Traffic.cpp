//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "fleet/Traffic.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::fleet;

TrafficModel::TrafficModel(const Workload &W, TrafficParams P, uint64_t Seed)
    : W(W), P(P) {
  // Group endpoints by partition.
  std::vector<std::vector<uint32_t>> ByPartition(W.NumPartitions);
  for (uint32_t E = 0; E < W.Endpoints.size(); ++E)
    ByPartition[W.EndpointPartition[E]].push_back(E);
  for (const auto &Part : ByPartition)
    alwaysAssert(!Part.empty(), "a semantic partition has no endpoints");

  // Per region: shuffle each partition's endpoints so the Zipf head lands
  // on different endpoints in different regions ("the web traffic driven
  // to each region varies greatly").
  Rng R(Seed);
  RegionMix.resize(P.NumRegions);
  for (uint32_t Region = 0; Region < P.NumRegions; ++Region) {
    RegionMix[Region] = ByPartition;
    for (auto &Part : RegionMix[Region])
      R.shuffle(Part);
  }
}

uint32_t TrafficModel::sampleEndpoint(uint32_t Region, uint32_t Bucket,
                                      Rng &R) const {
  assert(Region < P.NumRegions && "region out of range");
  assert(Bucket < W.NumPartitions && "bucket out of range");
  uint32_t Partition = Bucket;
  if (!R.nextBool(P.BucketAffinity)) {
    // Spillover: a request for some other partition landed here.
    Partition = static_cast<uint32_t>(R.nextBelow(W.NumPartitions));
  }
  const std::vector<uint32_t> &Mix = RegionMix[Region][Partition];
  ZipfDistribution Dist(Mix.size(), P.BaseSkew);
  return Mix[Dist.sample(R)];
}
