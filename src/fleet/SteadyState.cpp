//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "fleet/SteadyState.h"

#include "jit/VasmTracer.h"

using namespace jumpstart;
using namespace jumpstart::fleet;

SteadyStateResult jumpstart::fleet::measureSteadyState(
    const Workload &W, const TrafficModel &Traffic, vm::Server &Server,
    const SteadyStateParams &P) {
  Rng R(P.Seed);
  sim::MachineSim Machine(P.Machine);
  jit::VasmTracer Tracer(Server.theJit(), Machine);

  {
    vm::CallbackScope Scope(Server, &Tracer);
    auto RunOne = [&] {
      uint32_t E = Traffic.sampleEndpoint(P.Region, P.Bucket, R);
      Server.executeRequest(W.Endpoints[E], TrafficModel::makeArgs(R));
    };

    for (uint32_t I = 0; I < P.WarmupRequests; ++I)
      RunOne();
    Machine.reset();
    for (uint32_t I = 0; I < P.Requests; ++I)
      RunOne();
  }

  SteadyStateResult Result;
  Result.Counters = Machine.counters();
  Result.Cycles = Machine.cycles();
  Result.CyclesPerRequest = Result.Cycles / std::max(1u, P.Requests);
  Result.Throughput =
      Result.Cycles > 0 ? 1.0e6 * P.Requests / Result.Cycles : 0;
  const sim::PerfCounters &C = Result.Counters;
  auto Rate = [](uint64_t Misses, uint64_t Accesses) {
    return Accesses ? static_cast<double>(Misses) /
                          static_cast<double>(Accesses)
                    : 0.0;
  };
  Result.BranchMissRate = Rate(C.BranchMisses, C.Branches);
  Result.L1IMissRate = Rate(C.L1IMisses, C.L1IAccesses);
  Result.L1DMissRate = Rate(C.L1DMisses, C.L1DAccesses);
  Result.LlcMissRate = Rate(C.LlcMisses, C.LlcAccesses);
  Result.ITlbMissRate = Rate(C.ITlbMisses, C.ITlbAccesses);
  Result.DTlbMissRate = Rate(C.DTlbMisses, C.DTlbAccesses);
  return Result;
}
