//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warmup-curve classification for fleet simulations.
///
/// Bridges the fleet layer's virtual-time warmup curves (WarmupResult's
/// registry-backed latency series) into the stats/ changepoint
/// classifier, and renders the Jump-Start on/off warmup-class-transition
/// table the paper's Figure 4 motivates: per (server, seed), the class
/// of the cold-start curve next to the class of the Jump-Start curve.
/// The expected transition is warmup -> flat (or at least an earlier
/// steady-state iteration); a run that stays `warmup` with Jump-Start on
/// is a regression the statistical CHECK_PERF gate flags.
///
/// Everything here is deterministic: the input curves come from the
/// virtual clock, classification is RNG-free, and both renderings format
/// with fixed printf conversions, so exports are byte-identical across
/// runs and ThreadPool worker counts.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FLEET_WARMUPSTATS_H
#define JUMPSTART_FLEET_WARMUPSTATS_H

#include "fleet/ServerSim.h"
#include "stats/Warmup.h"

#include <string>
#include <vector>

namespace jumpstart::fleet {

/// Classification parameters tuned for virtual-time latency curves.
/// Latency-like (lower is better), with a looser equivalence tolerance
/// than the allocation-counter default: the simulated latency oscillates
/// a few percent tick-to-tick with traffic-model load, and those wobbles
/// are not warmup phases.  Outlier masking is OFF for every fleet curve:
/// the virtual clock has no measurement noise to clip, and when most of
/// a run sits at its steady value the Tukey fences collapse (IQR = 0)
/// and would winsorize away the very warmup ramp being classified.
inline stats::ClassifyParams warmupLatencyClassifyParams() {
  stats::ClassifyParams P;
  P.LowerIsBetter = true;
  P.RelTolerance = 0.05;
  P.MaskOutliers = false;
  return P;
}

/// Classifies a warmup run's per-tick latency curve.  Deterministic.
stats::Classification
classifyWarmupLatency(const WarmupResult &R,
                      const stats::ClassifyParams &P =
                          warmupLatencyClassifyParams());

/// Parameters for the normalized-RPS (served/offered) curve: throughput
/// direction (higher is better).  Unlike raw latency -- which the JIT's
/// live tail keeps nudging down for the whole window -- the normalized
/// curve saturates once the server reaches offered capacity, so it is
/// the curve whose steady state the transition table reads.
inline stats::ClassifyParams warmupThroughputClassifyParams() {
  stats::ClassifyParams P;
  P.LowerIsBetter = false;
  P.RelTolerance = 0.05;
  P.MaskOutliers = false;
  return P;
}

/// Classifies a warmup run's normalized-RPS curve.  Deterministic.
stats::Classification
classifyWarmupThroughput(const WarmupResult &R,
                         const stats::ClassifyParams &P =
                             warmupThroughputClassifyParams());

/// One row of the warmup-class-transition table: the same (server,
/// seed) run measured without and with a Jump-Start profile package.
struct ClassTransition {
  std::string Label;
  uint64_t Seed = 0;
  /// Cold start (no Jump-Start package).
  stats::Classification Cold;
  /// Jump-Start consumer boot.
  stats::Classification Warm;
};

/// Human-readable table (aligned columns) for bench stdout.
std::string renderTransitionTableText(const std::vector<ClassTransition> &Rows);

/// JSON rendering for `PREFIX.classes.json` exports: one object with a
/// `rows` array; every double printed with %.6f.
std::string renderTransitionTableJson(const std::vector<ClassTransition> &Rows);

} // namespace jumpstart::fleet

#endif // JUMPSTART_FLEET_WARMUPSTATS_H
