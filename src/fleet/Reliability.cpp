//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "fleet/Reliability.h"

#include "obs/Observability.h"
#include "support/Assert.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::fleet;

ReliabilityResult
jumpstart::fleet::simulateCrashLoop(const ReliabilityParams &P) {
  alwaysAssert(P.NumPackages > 0, "need at least one package");
  alwaysAssert(P.NumPoisoned + P.NumStale <= P.NumPackages,
               "more poisoned+stale packages than packages");
  Rng R(P.Seed);
  ReliabilityResult Result;

  // Validation: each poisoned package is caught independently.  Stale
  // packages occupy the slots after the poisoned ones; validation does
  // not catch staleness (the seeder that built them was healthy -- the
  // *site* moved underneath them).
  std::vector<bool> Poisoned(P.NumPackages, false);
  std::vector<bool> Stale(P.NumPackages, false);
  std::vector<uint32_t> Published;
  for (uint32_t I = 0; I < P.NumPackages; ++I) {
    bool IsPoisoned = I < P.NumPoisoned;
    if (IsPoisoned && R.nextBool(P.ValidationCatchProbability))
      continue; // caught: never published
    Poisoned[I] = IsPoisoned;
    Stale[I] = !IsPoisoned && I < P.NumPoisoned + P.NumStale;
    Published.push_back(I);
    if (IsPoisoned)
      ++Result.PoisonedPublished;
  }
  // If validation removed everything, consumers fall back immediately:
  // all serving, none with Jump-Start.
  if (Published.empty()) {
    Result.FallbackCount = P.NumConsumers;
    Result.HealthyAtEnd = 0;
    Result.CrashedPerRound.assign(P.Rounds, 0);
    return Result;
  }

  struct Consumer {
    uint32_t FailedAttempts = 0;
    bool Fallback = false;
    bool Healthy = false;
  };
  std::vector<Consumer> Consumers(P.NumConsumers);

  for (uint32_t Round = 0; Round < P.Rounds; ++Round) {
    uint32_t Crashed = 0;
    for (Consumer &C : Consumers) {
      if (C.Healthy || C.Fallback)
        continue;
      uint32_t Pick =
          P.RandomizedSelection
              ? Published[R.nextBelow(Published.size())]
              : Published.front();
      if (Poisoned[Pick]) {
        ++Crashed;
        ++C.FailedAttempts;
        if (C.FailedAttempts >= P.MaxJumpStartAttempts) {
          // Automatic no-Jump-Start fallback: collect own profile.
          C.Fallback = true;
        }
      } else if (Stale[Pick] && R.nextBool(P.StaleRejectProbability)) {
        // Drift attrition: the install is rejected cleanly (no crash),
        // but the attempt is spent -- same bounded-retry machinery.
        ++Result.StaleRejections;
        ++C.FailedAttempts;
        if (C.FailedAttempts >= P.MaxJumpStartAttempts)
          C.Fallback = true;
      } else {
        C.Healthy = true;
      }
    }
    Result.CrashedPerRound.push_back(Crashed);
    Result.PeakCrashed = std::max(Result.PeakCrashed, Crashed);
  }

  // Healthy-with-Jump-Start and fallback are disjoint outcomes; see the
  // partition invariant on ReliabilityResult.
  for (const Consumer &C : Consumers) {
    if (C.Healthy)
      ++Result.HealthyAtEnd;
    if (C.Fallback)
      ++Result.FallbackCount;
  }

  if (P.Obs) {
    obs::LabelSet ByRun{{"run", P.RunLabel}};
    TimeSeries &PerRound =
        P.Obs->Metrics.series("fleet.crashed_per_round", ByRun);
    uint64_t TotalCrashes = 0;
    for (uint32_t Round = 0; Round < Result.CrashedPerRound.size();
         ++Round) {
      PerRound.record(Round, Result.CrashedPerRound[Round]);
      TotalCrashes += Result.CrashedPerRound[Round];
    }
    P.Obs->Metrics.counter("jumpstart.reliability.crashes", ByRun)
        .inc(TotalCrashes);
    P.Obs->Metrics.counter("jumpstart.reliability.fallbacks", ByRun)
        .inc(Result.FallbackCount);
    P.Obs->Metrics
        .counter("jumpstart.reliability.poisoned_published", ByRun)
        .inc(Result.PoisonedPublished);
    // Only materialized when the drift knob is on, so runs without stale
    // packages keep their exact metric export (golden-file compatible).
    if (P.NumStale > 0)
      P.Obs->Metrics
          .counter("jumpstart.reliability.stale_rejections", ByRun)
          .inc(Result.StaleRejections);
  }
  return Result;
}
