//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traffic modelling: per-(region, semantic-bucket) request mixes and the
/// semantic-routing load balancer (paper section II-C).
///
/// Endpoints are partitioned into a fixed number of semantic partitions;
/// web servers are partitioned into matching buckets; the load balancer
/// preferentially routes an endpoint's requests to servers of its bucket,
/// spilling over only under imbalance.  Within one (region, bucket) pair
/// the mix is homogeneous -- the property that makes profile sharing
/// across that pair's servers sound.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_FLEET_TRAFFIC_H
#define JUMPSTART_FLEET_TRAFFIC_H

#include "fleet/WorkloadGen.h"
#include "runtime/Value.h"
#include "support/Random.h"

#include <vector>

namespace jumpstart::fleet {

/// Traffic knobs.
struct TrafficParams {
  uint32_t NumRegions = 3;
  /// Fraction of a bucket's requests that hit its own partition's
  /// endpoints (the remainder is spillover routed from overloaded
  /// buckets).
  double BucketAffinity = 0.9;
  /// Zipf exponent of the endpoint mix within a partition; regions skew
  /// this differently.
  double BaseSkew = 0.7;
};

/// Samples endpoints for one (region, bucket).
class TrafficModel {
public:
  TrafficModel(const Workload &W, TrafficParams P, uint64_t Seed);

  /// Samples an endpoint id for a request arriving at a server of
  /// (\p Region, \p Bucket).
  uint32_t sampleEndpoint(uint32_t Region, uint32_t Bucket, Rng &R) const;

  /// Builds the argument vector for a request (a request id the endpoint
  /// code branches on).
  static std::vector<runtime::Value> makeArgs(Rng &R) {
    return {runtime::Value::integer(
        static_cast<int64_t>(R.nextBelow(1u << 20)))};
  }

  uint32_t numRegions() const { return P.NumRegions; }
  uint32_t numBuckets() const { return W.NumPartitions; }

private:
  const Workload &W;
  TrafficParams P;
  /// Per-region, per-partition endpoint permutation (regions have
  /// different hot endpoints within the same partition).
  std::vector<std::vector<std::vector<uint32_t>>> RegionMix;
};

} // namespace jumpstart::fleet

#endif // JUMPSTART_FLEET_TRAFFIC_H
