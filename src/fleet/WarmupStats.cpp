//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "fleet/WarmupStats.h"

#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::fleet;
using jumpstart::strFormat;

stats::Classification
jumpstart::fleet::classifyWarmupLatency(const WarmupResult &R,
                                        const stats::ClassifyParams &P) {
  return stats::classifySeries(R.latencySeconds().values(), P);
}

stats::Classification
jumpstart::fleet::classifyWarmupThroughput(const WarmupResult &R,
                                           const stats::ClassifyParams &P) {
  return stats::classifySeries(R.normalizedRps().values(), P);
}

std::string jumpstart::fleet::renderTransitionTableText(
    const std::vector<ClassTransition> &Rows) {
  std::string Out;
  Out += strFormat("  %-14s %-6s %-14s %-14s %-12s %-12s\n", "server", "seed",
                   "cold-class", "jumpstart-class", "cold-steady",
                   "js-steady");
  for (const ClassTransition &T : Rows)
    Out += strFormat("  %-14s %-6llu %-14s %-14s %-12zu %-12zu\n",
                     T.Label.c_str(), static_cast<unsigned long long>(T.Seed),
                     stats::warmupClassName(T.Cold.Class),
                     stats::warmupClassName(T.Warm.Class), T.Cold.SteadyStart,
                     T.Warm.SteadyStart);
  return Out;
}

std::string jumpstart::fleet::renderTransitionTableJson(
    const std::vector<ClassTransition> &Rows) {
  std::string Out = "{\n  \"rows\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ClassTransition &T = Rows[I];
    Out += strFormat(
        "    {\"server\": \"%s\", \"seed\": %llu, "
        "\"cold_class\": \"%s\", \"jumpstart_class\": \"%s\", "
        "\"cold_steady_start\": %zu, \"jumpstart_steady_start\": %zu, "
        "\"cold_steady_mean\": %.6f, \"jumpstart_steady_mean\": %.6f}%s\n",
        T.Label.c_str(), static_cast<unsigned long long>(T.Seed),
        stats::warmupClassName(T.Cold.Class),
        stats::warmupClassName(T.Warm.Class), T.Cold.SteadyStart,
        T.Warm.SteadyStart, T.Cold.SteadyMean, T.Warm.SteadyMean,
        I + 1 < Rows.size() ? "," : "");
  }
  Out += "  ]\n}\n";
  return Out;
}
