//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the simulators (workload generation, request
/// arrival, package selection) draw from these generators so that every
/// experiment in the repository is exactly reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_RANDOM_H
#define JUMPSTART_SUPPORT_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace jumpstart {

/// SplitMix64: a tiny, high-quality 64-bit generator.  Used both directly
/// and to seed Xoshiro256**.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: the repository-wide deterministic RNG.
///
/// Provides uniform integers, doubles in [0, 1), and a handful of
/// distributions the simulators need (exponential inter-arrival times and
/// Zipf-like hotness with a configurable flatness, matching the paper's
/// description of the Facebook website's "very flat execution profile").
class Rng {
public:
  explicit Rng(uint64_t Seed);

  /// \returns the next raw 64-bit value.
  uint64_t next();

  /// \returns a uniform integer in [0, Bound).  \p Bound must be > 0.
  uint64_t nextBelow(uint64_t Bound);

  /// \returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// \returns a uniform double in [0, 1).
  double nextDouble();

  /// \returns true with probability \p P.
  bool nextBool(double P);

  /// Samples an exponential distribution with the given rate (events per
  /// unit time).  Used for request inter-arrival times.
  double nextExponential(double Rate);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I) {
      size_t J = nextBelow(I);
      std::swap(Values[I - 1], Values[J]);
    }
  }

  /// Creates an independent generator derived from this one.  Used to give
  /// each simulated server its own stream.
  Rng fork();

private:
  uint64_t State[4];
};

/// A discrete distribution over N items with Zipf(s) weights.  Small \p S
/// produces the flat, long-tailed profile described in the paper; larger
/// \p S concentrates probability on the head.
///
/// Sampling is O(log N) via binary search of the cumulative weights.
class ZipfDistribution {
public:
  ZipfDistribution(size_t N, double S);

  /// \returns an index in [0, size()).
  size_t sample(Rng &R) const;

  /// \returns the probability mass of item \p I.
  double probability(size_t I) const;

  size_t size() const { return Cdf.size(); }

private:
  std::vector<double> Cdf;
};

} // namespace jumpstart

#endif // JUMPSTART_SUPPORT_RANDOM_H
