//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with a bounded queue.
///
/// This is the repository's only source of host-thread parallelism; the
/// simulation's *virtual* time stays single-threaded and deterministic.
/// The pool therefore never appears in any cost model -- it only changes
/// how fast the host machine gets through deterministic work (the
/// parallel retranslate-all fan-out, fleet sweeps over independent
/// servers).  Users that need determinism run the fan-out into per-task
/// scratch storage and do all order-sensitive work serially after wait().
///
/// Semantics:
///  - 0 or 1 workers means *inline* execution: submit() runs the task on
///    the calling thread and no OS threads are created.  Code written
///    against the pool degrades to the serial path with zero overhead.
///  - submit() blocks while the queue is at capacity (backpressure, not
///    unbounded memory).
///  - shutdown() is graceful: queued tasks finish first, then workers
///    join.  The destructor calls it.
///  - The first exception thrown by any task is captured and rethrown
///    from the next wait() (or swallowed by the destructor).
///  - parallelFor() shards [0, N) into contiguous per-worker chunks --
///    a deterministic static schedule -- and waits.  Calling it from
///    inside one of this pool's own workers runs inline (no deadlock on
///    nested fan-out).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_THREADPOOL_H
#define JUMPSTART_SUPPORT_THREADPOOL_H

#include "support/ThreadSafety.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace jumpstart::support {

class ThreadPool {
public:
  /// Creates \p Workers worker threads (0 or 1: inline mode, none).
  /// \p QueueCapacity bounds the number of queued-but-unstarted tasks.
  explicit ThreadPool(uint32_t Workers, size_t QueueCapacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads (0 in inline mode).
  uint32_t numWorkers() const {
    return static_cast<uint32_t>(Workers.size());
  }

  /// Enqueues \p Task; blocks while the queue is full.  Inline mode runs
  /// it immediately on the calling thread.  Aborts on a pool that has
  /// been shut down (in inline mode too -- a silently swallowed task
  /// would be a far worse bug than an abort).
  void submit(std::function<void()> Task) JUMPSTART_EXCLUDES(M);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception (if any).
  void wait() JUMPSTART_EXCLUDES(M);

  /// Graceful shutdown: stops accepting work, drains the queue, joins.
  /// Idempotent; the destructor calls it.
  void shutdown() JUMPSTART_EXCLUDES(M);

  /// Tasks completed by each worker, indexed by worker.  Inline-mode
  /// pools report one slot (the calling thread's count).
  std::vector<uint64_t> perWorkerTaskCounts() const JUMPSTART_EXCLUDES(M);

  /// Runs Body(I) for every I in [0, N), sharded into contiguous chunks
  /// across the workers (deterministic static schedule), and waits.
  /// Runs inline when the pool has no workers or when called from one of
  /// this pool's own worker threads.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

private:
  void workerLoop(uint32_t Index) JUMPSTART_EXCLUDES(M);
  void recordError(std::exception_ptr E) JUMPSTART_EXCLUDES(M);
  void rethrowFirstError() JUMPSTART_EXCLUDES(M);
  /// True when the calling thread is one of this pool's workers.
  bool onWorkerThread() const;

  const size_t QueueCapacity;
  /// Written only by the constructor and shutdown(), both of which run
  /// on the owning thread; workers never touch it.  Not guarded by M.
  std::vector<std::thread> Workers;

  /// Guards all cross-thread state below; the -Wthread-safety build
  /// (JUMPSTART_SANITIZE=thread-safety) verifies the annotations.
  mutable Mutex M;
  CondVar NotEmpty; ///< queue gained a task / stopping
  CondVar NotFull;  ///< queue lost a task
  CondVar AllDone;  ///< queue empty and nothing in flight
  std::deque<std::function<void()>> Queue JUMPSTART_GUARDED_BY(M);
  size_t InFlight JUMPSTART_GUARDED_BY(M) = 0;
  bool Stopping JUMPSTART_GUARDED_BY(M) = false;
  std::exception_ptr FirstError JUMPSTART_GUARDED_BY(M);
  std::vector<uint64_t> TaskCounts JUMPSTART_GUARDED_BY(M);
  uint64_t InlineTaskCount JUMPSTART_GUARDED_BY(M) = 0;
};

} // namespace jumpstart::support

#endif // JUMPSTART_SUPPORT_THREADPOOL_H
