//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Assert.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::support;

namespace {
/// The pool the current thread is a worker of, for nested-parallelFor
/// detection.
thread_local const ThreadPool *CurrentWorkerPool = nullptr;
} // namespace

ThreadPool::ThreadPool(uint32_t NumWorkers, size_t QueueCapacity)
    : QueueCapacity(std::max<size_t>(1, QueueCapacity)) {
  if (NumWorkers <= 1) {
    TaskCounts.resize(1, 0); // inline mode: one slot for the caller
    return;
  }
  TaskCounts.resize(NumWorkers, 0);
  Workers.reserve(NumWorkers);
  for (uint32_t I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::onWorkerThread() const { return CurrentWorkerPool == this; }

void ThreadPool::recordError(std::exception_ptr E) {
  MutexLock Lock(M);
  if (!FirstError)
    FirstError = std::move(E);
}

void ThreadPool::rethrowFirstError() {
  std::exception_ptr E;
  {
    MutexLock Lock(M);
    std::swap(E, FirstError);
  }
  if (E)
    std::rethrow_exception(E);
}

void ThreadPool::workerLoop(uint32_t Index) {
  CurrentWorkerPool = this;
  for (;;) {
    std::function<void()> Task;
    {
      MutexLock Lock(M);
      while (!Stopping && Queue.empty())
        NotEmpty.wait(Lock);
      if (Queue.empty())
        return; // Stopping and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
      NotFull.notifyOne();
    }
    try {
      Task();
    } catch (...) {
      recordError(std::current_exception());
    }
    {
      MutexLock Lock(M);
      ++TaskCounts[Index];
      --InFlight;
      if (Queue.empty() && InFlight == 0)
        AllDone.notifyAll();
    }
  }
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Workers.empty() || onWorkerThread()) {
    // Inline mode, or a task submitting from a worker (run it directly
    // rather than risking a full queue deadlock).
    {
      MutexLock Lock(M);
      alwaysAssert(!Stopping, "submit() after shutdown()");
    }
    try {
      Task();
    } catch (...) {
      recordError(std::current_exception());
    }
    MutexLock Lock(M);
    ++InlineTaskCount;
    return;
  }
  MutexLock Lock(M);
  alwaysAssert(!Stopping, "submit() after shutdown()");
  while (Queue.size() >= QueueCapacity)
    NotFull.wait(Lock);
  Queue.push_back(std::move(Task));
  NotEmpty.notifyOne();
}

void ThreadPool::wait() {
  if (!Workers.empty()) {
    MutexLock Lock(M);
    while (!Queue.empty() || InFlight != 0)
      AllDone.wait(Lock);
  }
  rethrowFirstError();
}

void ThreadPool::shutdown() {
  // Stopping is set even in inline mode (and even though joined workers
  // leave Workers empty) so a late submit() on any pool trips the
  // "submit() after shutdown()" assertion instead of silently running.
  {
    MutexLock Lock(M);
    Stopping = true;
  }
  if (!Workers.empty()) {
    NotEmpty.notifyAll();
    for (std::thread &T : Workers)
      T.join();
    Workers.clear();
  }
  // Exceptions surfacing only now are dropped (a destructor must not
  // throw); call wait() before destruction to observe them.
}

std::vector<uint64_t> ThreadPool::perWorkerTaskCounts() const {
  MutexLock Lock(M);
  std::vector<uint64_t> Counts = TaskCounts;
  if (Workers.empty())
    Counts[0] = InlineTaskCount;
  return Counts;
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (Workers.empty() || onWorkerThread()) {
    // Serial path (also taken for nested fan-out from a worker thread:
    // waiting on the pool from inside it would deadlock).
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  size_t Chunks = std::min<size_t>(N, Workers.size());
  for (size_t C = 0; C < Chunks; ++C) {
    size_t Begin = N * C / Chunks;
    size_t End = N * (C + 1) / Chunks;
    submit([&Body, Begin, End] {
      for (size_t I = Begin; I < End; ++I)
        Body(I);
    });
  }
  wait();
}
