//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Blob.h"

#include <algorithm>

using namespace jumpstart;

void BlobEncoder::writeVarint(uint64_t Value) {
  while (Value >= 0x80) {
    Buffer.push_back(static_cast<uint8_t>(Value) | 0x80);
    Value >>= 7;
  }
  Buffer.push_back(static_cast<uint8_t>(Value));
}

void BlobEncoder::writeSignedVarint(int64_t Value) {
  // Zig-zag encoding maps small negative values to small varints.
  uint64_t Encoded =
      (static_cast<uint64_t>(Value) << 1) ^ static_cast<uint64_t>(Value >> 63);
  writeVarint(Encoded);
}

void BlobEncoder::writeFixed64(uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Buffer.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

void BlobEncoder::writeDouble(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  writeFixed64(Bits);
}

void BlobEncoder::writeString(const std::string &S) {
  writeVarint(S.size());
  Buffer.insert(Buffer.end(), S.begin(), S.end());
}

void BlobEncoder::writeU64Vector(const std::vector<uint64_t> &Values) {
  writeVarint(Values.size());
  for (uint64_t V : Values)
    writeVarint(V);
}

void BlobEncoder::writeU32Vector(const std::vector<uint32_t> &Values) {
  writeVarint(Values.size());
  for (uint32_t V : Values)
    writeVarint(V);
}

void BlobEncoder::writeStringU64Map(
    const std::unordered_map<std::string, uint64_t> &M) {
  std::vector<const std::pair<const std::string, uint64_t> *> Sorted;
  Sorted.reserve(M.size());
  for (const auto &KV : M)
    Sorted.push_back(&KV);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto *A, const auto *B) { return A->first < B->first; });
  writeVarint(Sorted.size());
  for (const auto *KV : Sorted) {
    writeString(KV->first);
    writeVarint(KV->second);
  }
}

uint64_t BlobDecoder::readVarint() {
  uint64_t Result = 0;
  int Shift = 0;
  for (;;) {
    if (Pos >= Size || Shift > 63) {
      Error = true;
      return 0;
    }
    uint8_t Byte = Data[Pos++];
    Result |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return Result;
    Shift += 7;
  }
}

int64_t BlobDecoder::readSignedVarint() {
  uint64_t Encoded = readVarint();
  return static_cast<int64_t>((Encoded >> 1) ^ (~(Encoded & 1) + 1));
}

uint8_t BlobDecoder::readByte() {
  if (Pos >= Size) {
    Error = true;
    return 0;
  }
  return Data[Pos++];
}

uint64_t BlobDecoder::readFixed64() {
  if (Size - Pos < 8) {
    Error = true;
    Pos = Size;
    return 0;
  }
  uint64_t Value = 0;
  for (int I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
  return Value;
}

double BlobDecoder::readDouble() {
  uint64_t Bits = readFixed64();
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

std::string BlobDecoder::readString() {
  uint64_t Len = readVarint();
  if (Error || Len > Size - Pos) {
    Error = true;
    return std::string();
  }
  std::string Result(reinterpret_cast<const char *>(Data + Pos), Len);
  Pos += Len;
  return Result;
}

std::vector<uint64_t> BlobDecoder::readU64Vector() {
  return readVector<uint64_t>([](BlobDecoder &D) { return D.readVarint(); });
}

std::vector<uint32_t> BlobDecoder::readU32Vector() {
  return readVector<uint32_t>([](BlobDecoder &D) {
    return static_cast<uint32_t>(D.readVarint());
  });
}

std::unordered_map<std::string, uint64_t> BlobDecoder::readStringU64Map() {
  std::unordered_map<std::string, uint64_t> Result;
  uint64_t N = readVarint();
  if (N > remaining()) {
    Error = true;
    return Result;
  }
  for (uint64_t I = 0; I < N && ok(); ++I) {
    std::string Key = readString();
    uint64_t Value = readVarint();
    if (ok())
      Result.emplace(std::move(Key), Value);
  }
  return Result;
}
