//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary blob serialization (BlobEncoder / BlobDecoder).
///
/// This is the substrate under the Jump-Start profile-data package (paper
/// section IV-B).  The encoding is byte-oriented and position-independent:
/// LEB128 varints for integers, length-prefixed strings, and recursively
/// encoded containers.  Decoding is fully defensive -- a truncated or
/// corrupted blob flips the decoder into an error state instead of crashing,
/// which the reliability machinery of section VI depends on (a consumer
/// must survive a corrupt package and fall back to seeding itself).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_BLOB_H
#define JUMPSTART_SUPPORT_BLOB_H

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace jumpstart {

/// Serializes values into a growable byte buffer.
class BlobEncoder {
public:
  /// Appends an unsigned integer as LEB128.
  void writeVarint(uint64_t Value);

  /// Appends a signed integer using zig-zag + LEB128.
  void writeSignedVarint(int64_t Value);

  /// Appends a raw byte.
  void writeByte(uint8_t Byte) { Buffer.push_back(Byte); }

  /// Appends a fixed-width 64-bit little-endian value (used for the
  /// checksum trailer, which must not vary in size).
  void writeFixed64(uint64_t Value);

  /// Appends an IEEE double bit-for-bit.
  void writeDouble(double Value);

  /// Appends a bool as one byte.
  void writeBool(bool Value) { writeByte(Value ? 1 : 0); }

  /// Appends a length-prefixed string.
  void writeString(const std::string &S);

  /// Appends a length-prefixed vector using \p WriteElem for each element.
  template <typename T, typename Fn>
  void writeVector(const std::vector<T> &Values, Fn WriteElem) {
    writeVarint(Values.size());
    for (const T &V : Values)
      WriteElem(*this, V);
  }

  /// Appends a vector of unsigned integers.
  void writeU64Vector(const std::vector<uint64_t> &Values);

  /// Appends a vector of 32-bit unsigned integers.
  void writeU32Vector(const std::vector<uint32_t> &Values);

  /// Appends a map with string keys and uint64 values, in key order so the
  /// encoding is deterministic regardless of the source container.
  void writeStringU64Map(const std::unordered_map<std::string, uint64_t> &M);

  const std::vector<uint8_t> &bytes() const { return Buffer; }
  std::vector<uint8_t> takeBytes() { return std::move(Buffer); }
  size_t size() const { return Buffer.size(); }

private:
  std::vector<uint8_t> Buffer;
};

/// Deserializes values from a byte buffer.
///
/// All read methods return a zero value and latch the error flag when the
/// input is malformed; callers check ok() once after decoding a section.
class BlobDecoder {
public:
  BlobDecoder(const uint8_t *Data, size_t Size)
      : Data(Data), Size(Size), Pos(0), Error(false) {}

  explicit BlobDecoder(const std::vector<uint8_t> &Bytes)
      : BlobDecoder(Bytes.data(), Bytes.size()) {}

  uint64_t readVarint();
  int64_t readSignedVarint();
  uint8_t readByte();
  uint64_t readFixed64();
  double readDouble();
  bool readBool() { return readByte() != 0; }
  std::string readString();

  /// Reads a length-prefixed vector using \p ReadElem per element.
  template <typename T, typename Fn> std::vector<T> readVector(Fn ReadElem) {
    uint64_t N = readVarint();
    std::vector<T> Result;
    // Guard against hostile length prefixes: never reserve more elements
    // than bytes remaining (each element consumes at least one byte).
    if (N > remaining()) {
      markError();
      return Result;
    }
    Result.reserve(N);
    for (uint64_t I = 0; I < N && ok(); ++I)
      Result.push_back(ReadElem(*this));
    return Result;
  }

  std::vector<uint64_t> readU64Vector();
  std::vector<uint32_t> readU32Vector();
  std::unordered_map<std::string, uint64_t> readStringU64Map();

  /// \returns true if no decode error has occurred so far.
  bool ok() const { return !Error; }

  /// Forces the decoder into the error state (used when semantic
  /// validation of decoded values fails).
  void markError() { Error = true; }

  /// \returns true when every byte has been consumed without error.
  bool atEnd() const { return ok() && Pos == Size; }

  size_t remaining() const { return Size - Pos; }
  size_t position() const { return Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos;
  bool Error;
};

} // namespace jumpstart

#endif // JUMPSTART_SUPPORT_BLOB_H
