//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang -Wthread-safety annotation macros and annotated lock types.
///
/// The macros expand to clang's capability attributes when compiled with
/// clang and to nothing otherwise, so annotated code builds unchanged
/// under gcc.  The opt-in verification build is
/// `JUMPSTART_SANITIZE=thread-safety ci/sanitize.sh`, which compiles
/// with -Wthread-safety -Werror under clang (and prints a skip notice
/// under gcc, where the analysis does not exist).
///
/// The annotated types mirror the standard ones one-to-one:
///  - Mutex is std::mutex declared as a capability.
///  - MutexLock is a scoped capability over std::unique_lock, so it can
///    be handed to CondVar::wait (which needs to unlock and relock).
///  - CondVar wraps std::condition_variable; its wait takes a MutexLock,
///    keeping the capability association visible at the call site.
///
/// Guarded members are annotated JUMPSTART_GUARDED_BY(M); private
/// helpers that assume the lock is already held are annotated
/// JUMPSTART_REQUIRES(M).  The annotations are claims checked by the
/// compiler, not synchronization themselves -- a member without an
/// annotation is being asserted single-threaded, which should be said in
/// a comment (see jit::TransDb for the pattern).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_THREADSAFETY_H
#define JUMPSTART_SUPPORT_THREADSAFETY_H

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define JUMPSTART_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define JUMPSTART_THREAD_ANNOTATION(x)
#endif

/// Declares a type as a capability ("mutex" in diagnostics).
#define JUMPSTART_CAPABILITY(x) JUMPSTART_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires in its constructor and releases
/// in its destructor.
#define JUMPSTART_SCOPED_CAPABILITY JUMPSTART_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding \p x.
#define JUMPSTART_GUARDED_BY(x) JUMPSTART_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by \p x (the pointer itself
/// is not).
#define JUMPSTART_PT_GUARDED_BY(x) JUMPSTART_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held.
#define JUMPSTART_REQUIRES(...)                                                \
  JUMPSTART_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (held on return).
#define JUMPSTART_ACQUIRE(...)                                                 \
  JUMPSTART_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (held on entry).
#define JUMPSTART_RELEASE(...)                                                 \
  JUMPSTART_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock guard for non-reentrant locks).
#define JUMPSTART_EXCLUDES(...)                                                \
  JUMPSTART_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: the function's locking is correct for reasons the
/// analysis cannot see.  Use sparingly and say why at the use site.
#define JUMPSTART_NO_THREAD_SAFETY_ANALYSIS                                    \
  JUMPSTART_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace jumpstart::support {

/// std::mutex declared as a thread-safety capability.
class JUMPSTART_CAPABILITY("mutex") Mutex {
public:
  void lock() JUMPSTART_ACQUIRE() { M.lock(); }
  void unlock() JUMPSTART_RELEASE() { M.unlock(); }

  /// The wrapped mutex, for MutexLock/CondVar plumbing only.
  std::mutex &native() { return M; }

private:
  std::mutex M;
};

/// Scoped lock over a Mutex.  Built on std::unique_lock (not lock_guard)
/// so CondVar::wait can temporarily release it; it is always held
/// outside of a wait.
class JUMPSTART_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &Mu) JUMPSTART_ACQUIRE(Mu) : Inner(Mu.native()) {}
  ~MutexLock() JUMPSTART_RELEASE() = default;

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

  /// The wrapped lock, for CondVar::wait only.
  std::unique_lock<std::mutex> &native() { return Inner; }

private:
  std::unique_lock<std::mutex> Inner;
};

/// Condition variable whose wait takes the annotated MutexLock, keeping
/// the guarded-by relationship visible to the analysis at the call site.
/// As with std::condition_variable, the lock is released while blocked
/// and reacquired before wait returns, so the capability is continuously
/// held from the caller's point of view.
class CondVar {
public:
  /// One blocking wait (subject to spurious wakeup); callers loop on
  /// their condition.  Guarded members read in that loop condition sit
  /// in the scope holding the MutexLock, so the analysis checks them --
  /// a predicate-lambda overload would hide them from it, which is why
  /// there is none.
  void wait(MutexLock &Lock) { CV.wait(Lock.native()); }

  void notifyOne() { CV.notify_one(); }
  void notifyAll() { CV.notify_all(); }

private:
  std::condition_variable CV;
};

} // namespace jumpstart::support

#endif // JUMPSTART_SUPPORT_THREADSAFETY_H
