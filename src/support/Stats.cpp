//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace jumpstart;

void SampleStats::add(double Value) {
  Samples.push_back(Value);
  Sorted = false;
  Total += Value;
}

double SampleStats::mean() const {
  if (Samples.empty())
    return 0;
  return Total / static_cast<double>(Samples.size());
}

double SampleStats::min() const {
  if (Samples.empty())
    return 0;
  return *std::min_element(Samples.begin(), Samples.end());
}

double SampleStats::max() const {
  if (Samples.empty())
    return 0;
  return *std::max_element(Samples.begin(), Samples.end());
}

double SampleStats::percentile(double P) const {
  if (Samples.empty())
    return 0;
  if (!Sorted) {
    std::sort(Samples.begin(), Samples.end());
    Sorted = true;
  }
  P = std::clamp(P, 0.0, 100.0);
  double Rank = P / 100.0 * static_cast<double>(Samples.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Samples.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Samples[Lo] * (1 - Frac) + Samples[Hi] * Frac;
}

void TimeSeries::record(double TimeSec, double Value) {
  assert((Points.empty() || TimeSec >= Points.back().TimeSec) &&
         "time series must be recorded in nondecreasing time order");
  Points.push_back({TimeSec, Value});
}

double TimeSeries::valueAt(double TimeSec) const {
  if (Points.empty())
    return 0;
  if (TimeSec <= Points.front().TimeSec)
    return Points.front().Value;
  if (TimeSec >= Points.back().TimeSec)
    return Points.back().Value;
  // Binary search for the segment containing TimeSec.
  auto It = std::lower_bound(
      Points.begin(), Points.end(), TimeSec,
      [](const TimePoint &Pt, double T) { return Pt.TimeSec < T; });
  const TimePoint &Hi = *It;
  const TimePoint &Lo = *(It - 1);
  double Span = Hi.TimeSec - Lo.TimeSec;
  if (Span <= 0)
    return Hi.Value;
  double Frac = (TimeSec - Lo.TimeSec) / Span;
  return Lo.Value * (1 - Frac) + Hi.Value * Frac;
}

double TimeSeries::integrate(double FromSec, double ToSec) const {
  if (Points.empty() || ToSec <= FromSec)
    return 0;
  double Area = 0;
  double PrevT = FromSec;
  double PrevV = valueAt(FromSec);
  for (const TimePoint &Pt : Points) {
    if (Pt.TimeSec <= FromSec)
      continue;
    double T = std::min(Pt.TimeSec, ToSec);
    double V = valueAt(T);
    Area += 0.5 * (PrevV + V) * (T - PrevT);
    PrevT = T;
    PrevV = V;
    if (Pt.TimeSec >= ToSec)
      break;
  }
  if (PrevT < ToSec)
    Area += valueAt(ToSec) * (ToSec - PrevT);
  return Area;
}

double TimeSeries::areaAbove(double Ceiling, double FromSec,
                             double ToSec) const {
  double Full = Ceiling * (ToSec - FromSec);
  return Full - integrate(FromSec, ToSec);
}

std::vector<TimePoint> TimeSeries::resample(size_t MaxPoints) const {
  if (Points.size() <= MaxPoints || MaxPoints < 2)
    return Points;
  std::vector<TimePoint> Result;
  Result.reserve(MaxPoints);
  double T0 = Points.front().TimeSec;
  double T1 = Points.back().TimeSec;
  for (size_t I = 0; I < MaxPoints; ++I) {
    double T = T0 + (T1 - T0) * static_cast<double>(I) /
                        static_cast<double>(MaxPoints - 1);
    Result.push_back({T, valueAt(T)});
  }
  return Result;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> Result;
  Result.reserve(Points.size());
  for (const TimePoint &P : Points)
    Result.push_back(P.Value);
  return Result;
}
