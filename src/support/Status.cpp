//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include "support/StringUtil.h"

#include <cstdarg>

using namespace jumpstart;
using namespace jumpstart::support;

const char *jumpstart::support::statusCodeName(StatusCode C) {
  switch (C) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidArgument:
    return "invalid_argument";
  case StatusCode::FailedPrecondition:
    return "failed_precondition";
  case StatusCode::NotFound:
    return "not_found";
  case StatusCode::Unavailable:
    return "unavailable";
  case StatusCode::CorruptData:
    return "corrupt_data";
  case StatusCode::FingerprintMismatch:
    return "fingerprint_mismatch";
  case StatusCode::CoverageTooLow:
    return "coverage_too_low";
  case StatusCode::LintFailed:
    return "lint_failed";
  case StatusCode::ValidationCrash:
    return "validation_crash";
  case StatusCode::ValidationFaultRate:
    return "validation_fault_rate";
  case StatusCode::CrashDetected:
    return "crash_detected";
  case StatusCode::IoError:
    return "io_error";
  case StatusCode::Internal:
    return "internal";
  }
  return "?";
}

std::string Status::str() const {
  if (ok())
    return "ok";
  if (Message_.empty())
    return statusCodeName(Code_);
  return std::string(statusCodeName(Code_)) + ": " + Message_;
}

Status jumpstart::support::errorStatus(StatusCode C, const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  std::string Message = strFormatV(Fmt, Ap);
  va_end(Ap);
  return Status::error(C, std::move(Message));
}
