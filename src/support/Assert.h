//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers used across the jumpstart libraries.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_ASSERT_H
#define JUMPSTART_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace jumpstart {

/// Marks a point in the code that must never be reached.  Unlike a bare
/// assert(false), this aborts even in release builds, so impossible states
/// never silently continue.
[[noreturn]] inline void unreachable(const char *Msg) {
  std::fprintf(stderr, "jumpstart: unreachable reached: %s\n", Msg);
  std::abort();
}

/// Aborts with a message for invariant violations that must be checked even
/// in release builds (e.g. corrupted serialized data in tests).
inline void alwaysAssert(bool Cond, const char *Msg) {
  if (Cond)
    return;
  std::fprintf(stderr, "jumpstart: invariant violated: %s\n", Msg);
  std::abort();
}

} // namespace jumpstart

#endif // JUMPSTART_SUPPORT_ASSERT_H
