//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hashing utilities: FNV-1a for byte strings and a mixing combiner.
///
/// Used for profile-package checksums, string interning, and stable keys
/// such as the "Class::prop" keys of the property-access profile (paper
/// section V-C).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_HASHING_H
#define JUMPSTART_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace jumpstart {

/// 64-bit FNV-1a over an arbitrary byte range.
inline uint64_t fnv1a(const void *Data, size_t Len,
                      uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I < Len; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// 64-bit FNV-1a over a string.
inline uint64_t hashString(std::string_view S) {
  return fnv1a(S.data(), S.size());
}

/// Mixes a new 64-bit value into an existing hash (boost-style combiner
/// with a 64-bit golden-ratio constant).
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4));
}

} // namespace jumpstart

#endif // JUMPSTART_SUPPORT_HASHING_H
