//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted-vector map for read-heavy integer-keyed tables.
///
/// The JIT's translation indexes are written once per translation but
/// probed on every request (tier selection, cost lookup), and after
/// retranslate-all they are effectively frozen.  A sorted vector probed by
/// binary search beats an unordered_map here: no per-node allocation, no
/// hashing, and the whole table lands in a handful of cache lines.
/// Iteration order is key order, which is deterministic by construction.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_FLATMAP_H
#define JUMPSTART_SUPPORT_FLATMAP_H

#include <algorithm>
#include <utility>
#include <vector>

namespace jumpstart::support {

/// A map from \p Key to \p Value stored as a vector of pairs sorted by
/// key.  Lookup is O(log n); insertion is O(n) (rare in the intended
/// uses).  Keys are expected to be cheap integral types.
template <typename Key, typename Value> class FlatMap {
public:
  using Entry = std::pair<Key, Value>;

  /// \returns a pointer to the value for \p K, or nullptr when absent.
  Value *find(Key K) {
    auto It = lowerBound(K);
    return (It != Data.end() && It->first == K) ? &It->second : nullptr;
  }
  const Value *find(Key K) const {
    return const_cast<FlatMap *>(this)->find(K);
  }

  /// Inserts \p V under \p K, overwriting any existing entry.
  void insertOrAssign(Key K, Value V) {
    auto It = lowerBound(K);
    if (It != Data.end() && It->first == K)
      It->second = std::move(V);
    else
      Data.insert(It, Entry{K, std::move(V)});
  }

  bool contains(Key K) const { return find(K) != nullptr; }
  size_t size() const { return Data.size(); }
  bool empty() const { return Data.empty(); }
  void clear() { Data.clear(); }
  void reserve(size_t N) { Data.reserve(N); }

  /// Entries in ascending key order.
  typename std::vector<Entry>::const_iterator begin() const {
    return Data.begin();
  }
  typename std::vector<Entry>::const_iterator end() const {
    return Data.end();
  }

private:
  typename std::vector<Entry>::iterator lowerBound(Key K) {
    return std::lower_bound(
        Data.begin(), Data.end(), K,
        [](const Entry &E, Key Want) { return E.first < Want; });
  }

  std::vector<Entry> Data;
};

} // namespace jumpstart::support

#endif // JUMPSTART_SUPPORT_FLATMAP_H
