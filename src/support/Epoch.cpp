//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Epoch.h"

#include <algorithm>

namespace jumpstart::support {

EpochDomain::~EpochDomain() {
  MutexLock Lock(M);
  assert(SlotsInUse == 0 && "destroying EpochDomain with live readers");
  // Nothing can be pinned with no slot in use, so everything retired is
  // reclaimable.
  for (Retired &R : RetiredList) {
    R.Deleter();
    ++TotalFreed;
  }
  RetiredList.clear();
}

EpochDomain::Slot *EpochDomain::acquireSlot() {
  MutexLock Lock(M);
  ++SlotsInUse;
  if (!FreeSlots.empty()) {
    Slot *S = FreeSlots.back();
    FreeSlots.pop_back();
    return S;
  }
  Slots.emplace_back();
  return &Slots.back();
}

void EpochDomain::releaseSlot(Slot *S) {
  MutexLock Lock(M);
  assert(S && "releasing null slot");
  assert(S->Pinned.load(std::memory_order_relaxed) == kQuiescent &&
         "releasing a pinned slot");
  assert(SlotsInUse > 0 && "releaseSlot without acquireSlot");
  --SlotsInUse;
  FreeSlots.push_back(S);
}

void EpochDomain::retire(std::function<void()> Deleter) {
  uint64_t Tag = Global.load(std::memory_order_seq_cst);
  MutexLock Lock(M);
  RetiredList.push_back(Retired{Tag, std::move(Deleter)});
  ++TotalRetired;
}

uint64_t EpochDomain::minPinnedEpoch() {
  uint64_t Min = kQuiescent;
  for (Slot &S : Slots)
    Min = std::min(Min, S.Pinned.load(std::memory_order_seq_cst));
  return Min;
}

size_t EpochDomain::freeBefore(uint64_t Bound) {
  size_t Freed = 0;
  auto Keep = RetiredList.begin();
  for (auto It = RetiredList.begin(); It != RetiredList.end(); ++It) {
    if (It->Tag < Bound) {
      It->Deleter();
      ++Freed;
    } else {
      if (Keep != It)
        *Keep = std::move(*It);
      ++Keep;
    }
  }
  RetiredList.erase(Keep, RetiredList.end());
  TotalFreed += Freed;
  return Freed;
}

size_t EpochDomain::tryReclaim() {
  // Advance first so readers pinning from here on announce an epoch
  // strictly greater than any already-retired tag.
  Global.fetch_add(1, std::memory_order_seq_cst);
  MutexLock Lock(M);
  // With no reader pinned, minPinnedEpoch() is kQuiescent and every tag
  // is below it, so the whole list drains.
  return freeBefore(minPinnedEpoch());
}

size_t EpochDomain::reclaimAll() {
  MutexLock Lock(M);
  assert(minPinnedEpoch() == kQuiescent &&
         "reclaimAll() with a reader still pinned");
  size_t Freed = RetiredList.size();
  for (Retired &R : RetiredList)
    R.Deleter();
  RetiredList.clear();
  TotalFreed += Freed;
  return Freed;
}

size_t EpochDomain::pinnedReaders() {
  MutexLock Lock(M);
  size_t N = 0;
  for (Slot &S : Slots)
    if (S.Pinned.load(std::memory_order_seq_cst) != kQuiescent)
      ++N;
  return N;
}

uint64_t EpochDomain::retiredCount() {
  MutexLock Lock(M);
  return TotalRetired;
}

uint64_t EpochDomain::freedCount() {
  MutexLock Lock(M);
  return TotalFreed;
}

uint64_t EpochDomain::pendingCount() {
  MutexLock Lock(M);
  return TotalRetired - TotalFreed;
}

} // namespace jumpstart::support
