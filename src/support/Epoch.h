//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation for read-mostly published state.
///
/// The JIT publishes immutable translation snapshots while request
/// threads keep serving (paper SSVII: retranslate-all under live load).
/// Readers never take a lock on the fast path: each reader owns a Slot
/// and brackets its critical section with pin/unpin, recording the
/// global epoch it entered under.  The writer swaps the published
/// pointer, retires the old object tagged with the current epoch, and
/// frees retired objects only once every pinned reader entered at a
/// strictly later epoch -- at which point no reader can still hold a
/// reference, because the pointer swap happened before the retire.
///
/// The pin protocol closes the announce race with a re-check loop:
///
///   do { E = Global; Slot.Pinned = E; } while (Global != E);  (seq_cst)
///
/// so by the time pin() returns, the reader's announcement is visible
/// to any writer that subsequently advances the epoch.
///
/// Reclamation rule: a retired object tagged T is freeable iff
/// T < min(Pinned over all pinned slots); with no reader pinned,
/// everything retired is freeable.  tryReclaim() advances the global
/// epoch first so the rule makes progress between calls.
///
/// All slow-path state (slot registry, retired list, counters) is
/// guarded by one mutex; only Slot::Pinned and the global epoch are
/// touched on the reader fast path.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_EPOCH_H
#define JUMPSTART_SUPPORT_EPOCH_H

#include "support/ThreadSafety.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace jumpstart::support {

/// One domain of epoch-protected objects (e.g. the server's translation
/// snapshots).  Readers acquire a Slot once, then pin/unpin around each
/// critical section; the single writer retires objects and reclaims.
class EpochDomain {
public:
  /// Sentinel stored in Slot::Pinned while the reader is outside any
  /// critical section.
  static constexpr uint64_t kQuiescent = ~uint64_t{0};

  /// Per-reader announcement cell.  Owned by exactly one thread at a
  /// time between acquireSlot() and releaseSlot(); Pinned is written by
  /// the owner and read by the reclaiming writer.
  struct Slot {
    std::atomic<uint64_t> Pinned{kQuiescent};

    Slot() = default;
    Slot(const Slot &) = delete;
    Slot &operator=(const Slot &) = delete;
  };

  EpochDomain() = default;
  EpochDomain(const EpochDomain &) = delete;
  EpochDomain &operator=(const EpochDomain &) = delete;

  /// Destruction requires every slot released and every retired object
  /// reclaimed; run the pending deleters rather than leak them.
  ~EpochDomain();

  /// Registers a reader and returns its announcement slot.  Slots are
  /// pooled: a released slot is handed back out before a new one is
  /// allocated.  Slot addresses are stable for the domain's lifetime.
  Slot *acquireSlot() JUMPSTART_EXCLUDES(M);

  /// Returns a slot to the pool.  The slot must be unpinned.
  void releaseSlot(Slot *S) JUMPSTART_EXCLUDES(M);

  /// Enters a read-side critical section; returns the epoch entered
  /// under.  Lock-free.  The caller must own \p S and not already be
  /// pinned through it (no nesting).
  uint64_t pin(Slot &S) {
    assert(S.Pinned.load(std::memory_order_relaxed) == kQuiescent &&
           "pin() does not nest");
    uint64_t E = Global.load(std::memory_order_seq_cst);
    for (;;) {
      S.Pinned.store(E, std::memory_order_seq_cst);
      uint64_t Now = Global.load(std::memory_order_seq_cst);
      if (Now == E)
        return E;
      E = Now;
    }
  }

  /// Leaves the read-side critical section.  Lock-free.
  void unpin(Slot &S) {
    assert(S.Pinned.load(std::memory_order_relaxed) != kQuiescent &&
           "unpin() without pin()");
    S.Pinned.store(kQuiescent, std::memory_order_seq_cst);
  }

  /// Hands an object to the domain for deferred destruction.  The
  /// deleter runs from tryReclaim()/reclaimAll() (or the destructor)
  /// once no pinned reader can still observe the object.  Writer-side;
  /// takes the domain mutex.
  void retire(std::function<void()> Deleter) JUMPSTART_EXCLUDES(M);

  /// Advances the global epoch and frees every retired object no pinned
  /// reader can observe.  Returns the number of objects freed.  Safe to
  /// call concurrently with readers pinning and unpinning.
  size_t tryReclaim() JUMPSTART_EXCLUDES(M);

  /// Frees all retired objects.  Requires no reader pinned (asserted);
  /// used at end-of-serving once workers have quiesced.  Returns the
  /// number freed.
  size_t reclaimAll() JUMPSTART_EXCLUDES(M);

  /// Current global epoch (diagnostics and tests).
  uint64_t globalEpoch() const { return Global.load(std::memory_order_seq_cst); }

  /// Number of readers currently pinned (diagnostics; racy by nature).
  size_t pinnedReaders() JUMPSTART_EXCLUDES(M);

  /// Objects handed to retire() over the domain's lifetime.
  uint64_t retiredCount() JUMPSTART_EXCLUDES(M);

  /// Objects whose deleters have run.
  uint64_t freedCount() JUMPSTART_EXCLUDES(M);

  /// retiredCount() - freedCount(): objects awaiting reclamation.
  uint64_t pendingCount() JUMPSTART_EXCLUDES(M);

private:
  struct Retired {
    uint64_t Tag = 0;
    std::function<void()> Deleter;
  };

  /// Smallest epoch any pinned in-use reader announced, or kQuiescent
  /// when none is pinned.
  uint64_t minPinnedEpoch() JUMPSTART_REQUIRES(M);

  /// Frees entries with Tag < \p Bound; returns how many.
  size_t freeBefore(uint64_t Bound) JUMPSTART_REQUIRES(M);

  std::atomic<uint64_t> Global{1};

  Mutex M;
  /// deque for stable Slot addresses across growth.
  std::deque<Slot> Slots JUMPSTART_GUARDED_BY(M);
  std::vector<Slot *> FreeSlots JUMPSTART_GUARDED_BY(M);
  size_t SlotsInUse JUMPSTART_GUARDED_BY(M) = 0;
  std::vector<Retired> RetiredList JUMPSTART_GUARDED_BY(M);
  uint64_t TotalRetired JUMPSTART_GUARDED_BY(M) = 0;
  uint64_t TotalFreed JUMPSTART_GUARDED_BY(M) = 0;
};

/// RAII pin over a reader's slot for one critical section.
class EpochGuard {
public:
  EpochGuard(EpochDomain &D, EpochDomain::Slot &S) : Domain(D), Slot(S) {
    Epoch = Domain.pin(Slot);
  }
  ~EpochGuard() { Domain.unpin(Slot); }

  EpochGuard(const EpochGuard &) = delete;
  EpochGuard &operator=(const EpochGuard &) = delete;

  /// The epoch this critical section entered under.
  uint64_t epoch() const { return Epoch; }

private:
  EpochDomain &Domain;
  EpochDomain::Slot &Slot;
  uint64_t Epoch;
};

} // namespace jumpstart::support

#endif // JUMPSTART_SUPPORT_EPOCH_H
