//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include "support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace jumpstart;

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  SplitMix64 Seeder(Seed);
  for (uint64_t &S : State)
    S = Seeder.next();
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "nextBelow() requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "nextInRange() requires Lo <= Hi");
  return Lo + static_cast<int64_t>(
                  nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
}

double Rng::nextDouble() {
  // 53 bits of randomness mapped to [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) { return nextDouble() < P; }

double Rng::nextExponential(double Rate) {
  assert(Rate > 0 && "exponential distribution requires a positive rate");
  double U = nextDouble();
  // Guard against log(0).
  if (U <= 0)
    U = 0x1.0p-53;
  return -std::log(U) / Rate;
}

Rng Rng::fork() { return Rng(next()); }

ZipfDistribution::ZipfDistribution(size_t N, double S) {
  alwaysAssert(N > 0, "ZipfDistribution requires at least one item");
  Cdf.resize(N);
  double Sum = 0;
  for (size_t I = 0; I < N; ++I) {
    Sum += 1.0 / std::pow(static_cast<double>(I + 1), S);
    Cdf[I] = Sum;
  }
  for (double &C : Cdf)
    C /= Sum;
  // Force exact closure so sample() can never fall off the end.
  Cdf.back() = 1.0;
}

size_t ZipfDistribution::sample(Rng &R) const {
  double U = R.nextDouble();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    return Cdf.size() - 1;
  return static_cast<size_t>(It - Cdf.begin());
}

double ZipfDistribution::probability(size_t I) const {
  assert(I < Cdf.size() && "probability() index out of range");
  if (I == 0)
    return Cdf[0];
  return Cdf[I] - Cdf[I - 1];
}
