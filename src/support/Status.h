//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// support::Status -- the repository-wide error type.
///
/// A Status is a code plus a human-readable message.  The codes are
/// *enumerated*, not free-form strings, so that every layer that observes a
/// failure (the metrics registry in particular) can count failures
/// per-reason: a Jump-Start package rejection shows up as a
/// `jumpstart.package.rejected{reason=corrupt_data}` counter, not as an
/// unparseable log line.  statusCodeName() renders the snake_case label
/// used everywhere (metrics labels, logs, JSON exports).
///
/// Conventions:
///  - Functions that can fail return Status (or a result struct carrying
///    one) instead of bool / error strings.
///  - JUMPSTART_RETURN_IF_ERROR(expr) propagates failures up a call chain.
///  - Status is [[nodiscard]]: ignoring a failure is a compile-time
///    warning.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_STATUS_H
#define JUMPSTART_SUPPORT_STATUS_H

#include <string>
#include <string_view>
#include <utility>

namespace jumpstart::support {

/// Why an operation failed.  Generic codes first, then the Jump-Start
/// domain codes that the paper's section VI machinery distinguishes
/// (each is a distinct per-reason rejection counter).
enum class StatusCode : uint8_t {
  Ok = 0,
  /// A caller-supplied value is malformed (bad option key/value, ...).
  InvalidArgument,
  /// The operation is not legal in the current state.
  FailedPrecondition,
  /// The named entity does not exist.
  NotFound,
  /// No resource is available (e.g. the package store has no package).
  Unavailable,
  /// Serialized data failed checksum/format checks.
  CorruptData,
  /// A package was built against a different code version.
  FingerprintMismatch,
  /// Seeder coverage thresholds not met (paper section VI-B).
  CoverageTooLow,
  /// Strict semantic package lint found errors.
  LintFailed,
  /// The behavioural validation restart crashed (paper VI-A technique 1).
  ValidationCrash,
  /// The behavioural validation run showed an elevated fault rate.
  ValidationFaultRate,
  /// A consumer crashed in production with this package.
  CrashDetected,
  /// Filesystem I/O failed.
  IoError,
  /// An invariant the code relies on did not hold.
  Internal,
};

/// Stable snake_case name of \p C ("corrupt_data", ...), used as the
/// per-reason metric label and in rendered messages.
const char *statusCodeName(StatusCode C);

/// Code + message.  Default construction is Ok.
class [[nodiscard]] Status {
public:
  Status() = default;

  static Status okStatus() { return Status(); }
  static Status error(StatusCode C, std::string Message) {
    Status S;
    S.Code_ = C;
    S.Message_ = std::move(Message);
    return S;
  }

  bool ok() const { return Code_ == StatusCode::Ok; }
  StatusCode code() const { return Code_; }
  const std::string &message() const { return Message_; }

  /// "corrupt_data: checksum mismatch at byte 12" (or "ok").
  std::string str() const;

private:
  StatusCode Code_ = StatusCode::Ok;
  std::string Message_;
};

/// printf-style constructor for error statuses.
Status errorStatus(StatusCode C, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Propagates a failed Status out of the enclosing function.
#define JUMPSTART_RETURN_IF_ERROR(Expr)                                      \
  do {                                                                       \
    ::jumpstart::support::Status StatusForMacro_ = (Expr);                   \
    if (!StatusForMacro_.ok())                                               \
      return StatusForMacro_;                                                \
  } while (false)

} // namespace jumpstart::support

#endif // JUMPSTART_SUPPORT_STATUS_H
