//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting and manipulation helpers.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_STRINGUTIL_H
#define JUMPSTART_SUPPORT_STRINGUTIL_H

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace jumpstart {

/// printf-style formatting into a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavour of strFormat, for wrappers that forward their own
/// variadic arguments.  \p Ap is left in an unspecified state.
std::string strFormatV(const char *Fmt, va_list Ap)
    __attribute__((format(printf, 1, 0)));

/// Splits \p S on \p Sep; empty fields are kept.
std::vector<std::string> splitString(std::string_view S, char Sep);

/// \returns true if \p S starts with \p Prefix.
inline bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

/// Renders a byte count with a binary-unit suffix ("512 B", "1.5 MB").
std::string formatBytes(uint64_t Bytes);

} // namespace jumpstart

#endif // JUMPSTART_SUPPORT_STRINGUTIL_H
