//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cstdarg>
#include <cstdio>

using namespace jumpstart;

std::string jumpstart::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = strFormatV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string jumpstart::strFormatV(const char *Fmt, va_list Ap) {
  va_list ApCopy;
  va_copy(ApCopy, Ap);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Ap);
  if (Len < 0) {
    va_end(ApCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Len), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ApCopy);
  va_end(ApCopy);
  return Result;
}

std::vector<std::string> jumpstart::splitString(std::string_view S, char Sep) {
  std::vector<std::string> Result;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Result.emplace_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Result;
}

std::string jumpstart::formatBytes(uint64_t Bytes) {
  const char *Units[] = {"B", "KB", "MB", "GB", "TB"};
  double Value = static_cast<double>(Bytes);
  size_t Unit = 0;
  while (Value >= 1024.0 && Unit + 1 < sizeof(Units) / sizeof(Units[0])) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return strFormat("%llu B", static_cast<unsigned long long>(Bytes));
  return strFormat("%.1f %s", Value, Units[Unit]);
}
