//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics helpers used by the simulators and benchmark harnesses:
/// a streaming accumulator (mean/min/max/percentiles) and a time-series
/// recorder for performance-over-uptime curves (Figures 1, 2 and 4).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SUPPORT_STATS_H
#define JUMPSTART_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jumpstart {

/// Accumulates samples and answers summary queries.  Stores all samples so
/// exact percentiles are available; the simulators produce at most a few
/// million samples per run.
class SampleStats {
public:
  void add(double Value);

  size_t count() const { return Samples.size(); }
  double sum() const { return Total; }
  double mean() const;
  double min() const;
  double max() const;

  /// \returns the \p P-th percentile (P in [0, 100]) by nearest-rank, or 0
  /// when no samples have been recorded.
  double percentile(double P) const;

private:
  mutable std::vector<double> Samples;
  mutable bool Sorted = true;
  double Total = 0;
};

/// One point of a metric-over-time curve.
struct TimePoint {
  double TimeSec;
  double Value;
};

/// Records a metric sampled against a virtual clock and renders it as the
/// rows of a figure (time, value).  Also integrates the area under / above
/// the curve, which is how the paper defines served capacity and capacity
/// loss (Figure 2).
class TimeSeries {
public:
  explicit TimeSeries(std::string Name) : Name(std::move(Name)) {}

  void record(double TimeSec, double Value);

  const std::string &name() const { return Name; }
  const std::vector<TimePoint> &points() const { return Points; }
  bool empty() const { return Points.empty(); }

  /// Trapezoidal integral of the curve between \p FromSec and \p ToSec.
  /// The curve is treated as piecewise-linear between recorded points and
  /// flat beyond the last point.
  double integrate(double FromSec, double ToSec) const;

  /// Area between the horizontal line \p Ceiling and the curve over
  /// [FromSec, ToSec]: the paper's "capacity loss" when the curve is
  /// normalized RPS and Ceiling is 1.0.
  double areaAbove(double Ceiling, double FromSec, double ToSec) const;

  /// Linear interpolation of the curve value at \p TimeSec.
  double valueAt(double TimeSec) const;

  /// Downsamples to at most \p MaxPoints evenly spaced points (for
  /// printing figure rows without flooding the terminal).
  std::vector<TimePoint> resample(size_t MaxPoints) const;

  /// The recorded values in recording order, timestamps dropped: the
  /// per-iteration vector the stats/ changepoint analyses consume.
  std::vector<double> values() const;

private:
  std::string Name;
  std::vector<TimePoint> Points;
};

} // namespace jumpstart

#endif // JUMPSTART_SUPPORT_STATS_H
