//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic forward dataflow solver over the bytecode CFG (bc::Blocks).
///
/// The domain supplies the lattice:
///
///   struct Domain {
///     using State = ...;                       // one program state
///     State boundary();                        // entry-block input
///     bool join(State &Into, const State &From); // LUB; true if changed
///     void widen(State &Into, const State &Fresh); // join-budget escape
///     void transfer(State &S, uint32_t InstrIndex); // one instruction
///     // Which successors of a conditional branch are feasible, queried
///     // with the state immediately *before* the branch executes (the
///     // condition is still on the abstract stack).
///     void feasible(const State &S, uint32_t InstrIndex, bool &Taken,
///                   bool &Fallthru);
///   };
///
/// The solver runs a worklist to fixpoint and exposes the entry state of
/// every reached block.  Infeasible conditional edges are pruned, so
/// statically-dead branch arms surface as unreached blocks.  The function
/// must already have passed structural verification (pass zero): the
/// solver assumes consistent stack depths and in-range branch targets.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_DATAFLOW_H
#define JUMPSTART_ANALYSIS_DATAFLOW_H

#include "bytecode/Blocks.h"
#include "bytecode/Function.h"

#include <deque>
#include <vector>

namespace jumpstart::analysis {

template <typename Domain> class ForwardDataflow {
public:
  using State = typename Domain::State;

  ForwardDataflow(const bc::Function &F, const bc::BlockList &Blocks,
                  Domain &D, uint32_t JoinBudget = 32)
      : F(F), Blocks(Blocks), D(D), JoinBudget(JoinBudget) {}

  /// Runs the worklist to fixpoint.
  void run() {
    In.assign(Blocks.numBlocks(), State());
    Reached.assign(Blocks.numBlocks(), false);
    Joins.assign(Blocks.numBlocks(), 0);

    In[0] = D.boundary();
    Reached[0] = true;
    std::deque<uint32_t> Worklist{0};
    std::vector<bool> OnList(Blocks.numBlocks(), false);
    OnList[0] = true;

    while (!Worklist.empty()) {
      uint32_t Id = Worklist.front();
      Worklist.pop_front();
      OnList[Id] = false;

      State S = In[Id];
      const bc::BcBlock &B = Blocks.block(Id);
      bool TakenFeasible = true, FallFeasible = true;
      for (uint32_t I = B.Start; I < B.End; ++I) {
        if (I + 1 == B.End &&
            hasFlag(bc::opInfo(F.Code[I].Opcode).Flags,
                    bc::OpFlags::CondBranch))
          D.feasible(S, I, TakenFeasible, FallFeasible);
        D.transfer(S, I);
      }

      auto Propagate = [&](uint32_t Succ) {
        bool Changed;
        if (!Reached[Succ]) {
          In[Succ] = S;
          Reached[Succ] = true;
          Changed = true;
        } else if (++Joins[Succ] > JoinBudget) {
          State Old = In[Succ];
          D.widen(In[Succ], S);
          Changed = D.join(Old, In[Succ]); // did widening move the state?
        } else {
          Changed = D.join(In[Succ], S);
        }
        if (Changed && !OnList[Succ]) {
          OnList[Succ] = true;
          Worklist.push_back(Succ);
        }
      };
      if (B.hasTaken() && TakenFeasible)
        Propagate(B.Taken);
      if (B.hasFallthru() && FallFeasible)
        Propagate(B.Fallthru);
    }
  }

  /// Entry state of \p Block (meaningful only when reached()).
  const State &entryState(uint32_t Block) const { return In[Block]; }

  /// True when some feasible path reaches \p Block.
  bool reached(uint32_t Block) const { return Reached[Block]; }

private:
  const bc::Function &F;
  const bc::BlockList &Blocks;
  Domain &D;
  uint32_t JoinBudget;
  std::vector<State> In;
  std::vector<bool> Reached;
  std::vector<uint32_t> Joins;
};

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_DATAFLOW_H
