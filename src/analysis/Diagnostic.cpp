//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostic.h"

#include "support/Assert.h"
#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::analysis;

const char *jumpstart::analysis::severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "error";
  case Severity::Warning:
    return "warning";
  case Severity::Note:
    return "note";
  }
  unreachable("unhandled Severity");
}

const char *jumpstart::analysis::diagKindName(DiagKind K) {
  switch (K) {
  case DiagKind::Structural:
    return "structural";
  case DiagKind::TypeError:
    return "type-error";
  case DiagKind::DeadGuard:
    return "dead-guard";
  case DiagKind::UnreachableBlock:
    return "unreachable-block";
  case DiagKind::UseBeforeAssign:
    return "use-before-assign";
  case DiagKind::DeadStore:
    return "dead-store";
  case DiagKind::RedundantGuard:
    return "redundant-guard";
  case DiagKind::GuardNeverPasses:
    return "guard-never-passes";
  case DiagKind::RegionInconsistent:
    return "region-inconsistent";
  case DiagKind::TranslationInconsistent:
    return "translation-inconsistent";
  case DiagKind::PackageStructure:
    return "package-structure";
  case DiagKind::PackageSemantics:
    return "package-semantics";
  case DiagKind::ElisionUnproven:
    return "elision-unproven";
  case DiagKind::SummaryContradiction:
    return "summary-contradiction";
  }
  unreachable("unhandled DiagKind");
}

std::string Diagnostic::str(const bc::Repo *R) const {
  std::string Where;
  if (Func.valid()) {
    if (R && Func.raw() < R->numFuncs())
      Where = " " + R->func(Func).Name;
    else
      Where = strFormat(" func#%u", Func.raw());
  }
  std::string Loc;
  if (Block != kNone && Instr != kNone)
    Loc = strFormat(" @b%u:i%u", Block, Instr);
  else if (Instr != kNone)
    Loc = strFormat(" @i%u", Instr);
  else if (Block != kNone)
    Loc = strFormat(" @b%u", Block);
  return strFormat("%s[%s]%s%s: %s", severityName(Sev), diagKindName(Kind),
                   Where.c_str(), Loc.c_str(), Message.c_str());
}

size_t jumpstart::analysis::countErrors(const std::vector<Diagnostic> &Diags) {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      ++N;
  return N;
}

bool jumpstart::analysis::hasKind(const std::vector<Diagnostic> &Diags,
                                  DiagKind Kind) {
  for (const Diagnostic &D : Diags)
    if (D.Kind == Kind)
      return true;
  return false;
}
