//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program facts store: one object the JIT, the linter and the
/// package checks all query.
///
/// Construction builds the call graph, runs the bottom-up summary
/// fixpoint, and distills the per-site facts into the jit::ProvenFacts
/// drop box (see that header for the layering story):
///
///   - ProvenCalls: FCallObj sites whose devirtualization guard provably
///     always passes -- receiver of exact known class resolving to the
///     target (ExactRecv), or receiver provably an object where the whole
///     hierarchy resolves the name to a single target (UniqueMethod);
///   - ProvenMasks: profile-observed operand type masks the analysis
///     already proves, letting the JIT skip the profile guard;
///   - ICSeeds: statically-monomorphic dispatch/property sites whose
///     interpreter inline cache can be pre-filled at server startup.
///
/// Every fact is a *claim* to downstream consumers: RegionCheck re-proves
/// each one a translation acted on, and the DiffRunner ablation matrix
/// checks observational equivalence with elision on and off.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_WHOLEPROGRAM_H
#define JUMPSTART_ANALYSIS_WHOLEPROGRAM_H

#include "analysis/Summaries.h"
#include "jit/ProvenFacts.h"

#include <memory>

namespace jumpstart::analysis {

class WholeProgram {
public:
  explicit WholeProgram(const bc::Repo &R);

  const bc::Repo &repo() const { return R; }
  const CallGraph &callGraph() const { return CG; }
  const SummaryStore &summaries() const { return Store; }

  const FuncSummary &summary(bc::FuncId F) const { return Store.summary(F); }
  const SiteFacts &facts(bc::FuncId F) const { return Store.facts(F); }

  /// The distilled JIT-facing facts.  Shared ownership: JitConfig copies
  /// keep the facts alive across server/consumer lifetimes.
  std::shared_ptr<const jit::ProvenFacts> jitFacts() const { return JitFacts; }

  struct Stats {
    size_t Functions = 0;
    size_t Edges = 0;
    size_t Components = 0;
    size_t RecursiveComponents = 0;
    uint32_t MaxRounds = 0;
    size_t ProvenCalls = 0;
    size_t ProvenMasks = 0;
    size_t ICSeeds = 0;
  };
  Stats stats() const;

private:
  const bc::Repo &R;
  CallGraph CG;
  SummaryStore Store;
  std::shared_ptr<const jit::ProvenFacts> JitFacts;

  std::shared_ptr<const jit::ProvenFacts> distill() const;
};

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_WHOLEPROGRAM_H
