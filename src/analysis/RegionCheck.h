//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validation of JIT region descriptors and translations against the
/// bytecode-level dataflow analysis.
///
/// Regions: every inlined or devirtualized site must name a real call
/// instruction and an in-range callee, and each devirtualization guard is
/// checked against the abstract receiver types -- guards implied by a
/// dominating guard or by a statically-known receiver class are flagged
/// as redundant; guards the static types refute are errors.
///
/// Translations: every bytecode block of the translated function (and of
/// each inlined callee) must map to a Vasm block, Vasm successors must be
/// in range, and placement invariants (BlockAddrs/JumpElided shapes) must
/// hold.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_REGIONCHECK_H
#define JUMPSTART_ANALYSIS_REGIONCHECK_H

#include "analysis/Diagnostic.h"
#include "bytecode/BlockCache.h"
#include "jit/Region.h"
#include "jit/TransDb.h"

namespace jumpstart::analysis {

/// Lints \p Region (structural checks + guard analysis over the dataflow
/// fixpoint of the region's root function).
std::vector<Diagnostic> lintRegion(const bc::Repo &R, bc::BlockCache &Blocks,
                                   const jit::RegionDescriptor &Region);

class WholeProgram;

/// Lints every translation in \p Db for internal consistency with the
/// bytecode it claims to implement.  Translations carrying elided guards
/// (VasmUnit::ElidedGuards) additionally have every elision re-proven
/// against the whole-program analysis: \p WP supplies the facts store, or
/// null to build one on demand the first time an elision is seen.  An
/// elision the analysis cannot re-derive is an ElisionUnproven error --
/// the JIT acted on a claim that does not hold.
std::vector<Diagnostic> lintTranslations(const bc::Repo &R,
                                         bc::BlockCache &Blocks,
                                         const jit::TransDb &Db,
                                         const WholeProgram *WP = nullptr);

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_REGIONCHECK_H
