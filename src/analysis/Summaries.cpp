//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/Summaries.h"

#include "bytecode/Blocks.h"
#include "bytecode/Instruction.h"
#include "bytecode/Opcode.h"

using namespace jumpstart;
using namespace jumpstart::analysis;

namespace {

/// Own (non-transitive) effect bits, straight off the bytecode.
void ownEffects(const bc::Function &F, FuncSummary &S) {
  for (const bc::Instr &In : F.Code) {
    switch (In.Opcode) {
    case bc::Op::SetProp:
    case bc::Op::SetElem:
    case bc::Op::AddElem:
    case bc::Op::AddKeyElem:
      S.WritesHeap = true;
      break;
    case bc::Op::NativeCall:
      S.CallsNative = true;
      break;
    default:
      break;
    }
  }
}

} // namespace

SummaryStore::SummaryStore(const CallGraph &Graph) : CG(Graph) {
  size_t N = CG.repo().numFuncs();
  Summaries.resize(N);
  Facts.resize(N);

  for (const bc::Function &F : CG.repo().funcs()) {
    FuncSummary &S = Summaries[F.Id.raw()];
    S.ParamDemands.assign(F.NumParams, AbstractValue::kAllBits);
    ownEffects(F, S);
    if (F.Code.empty()) {
      // Unanalyzable body: assume the worst locally; transitive bits are
      // folded in by propagateEffects.
      S.Ret = AbstractValue::top();
      S.WritesHeap = true;
      S.CallsNative = true;
      S.EscapesAllocs = true;
    }
  }

  for (const std::vector<bc::FuncId> &Comp : CG.components()) {
    bool Rec = CG.recursive(Comp.front());
    analyzeComponent(Comp, Rec);
    propagateEffects(Comp);
  }
}

void SummaryStore::analyzeComponent(const std::vector<bc::FuncId> &Comp,
                                    bool Recursive) {
  const bc::Repo &R = CG.repo();

  // The lattice has tiny height (8 mask bits + two refinement collapses),
  // so even a whole component of mutually-recursive functions stabilizes
  // in a handful of rounds.  The bound is a safety valve only.
  // An acyclic component's facts depend only on callee summaries that the
  // bottom-up order has already finalized, so its single round IS the
  // fixpoint -- the bottom-to-value transition it reports is convergence,
  // not instability.  Only a recursive component can still be unstable
  // when the bound stops it.
  uint32_t Limit = Recursive ? 16 : 1;
  uint32_t Round = 0;
  bool Changed = true;
  while (Round < Limit) {
    ++Round;
    Changed = false;
    for (bc::FuncId Id : Comp) {
      const bc::Function &F = R.func(Id);
      if (F.Code.empty())
        continue;
      bc::BlockList Blocks = bc::BlockList::compute(F);
      SiteFacts New = computeSiteFacts(R, F, Blocks, this);
      if (New.Ret != Summaries[Id.raw()].Ret)
        Changed = true;
      Summaries[Id.raw()].Ret = New.Ret;
      Summaries[Id.raw()].ParamDemands = New.ParamDemands;
      if (New.EscapesAllocs)
        Summaries[Id.raw()].EscapesAllocs = true;
      Facts[Id.raw()] = std::move(New);
    }
    if (!Changed)
      break;
  }
  if (Changed && Recursive) {
    // Bound tripped (should be unreachable): give up soundly on the whole
    // component and re-derive site facts under Top returns.
    for (bc::FuncId Id : Comp)
      Summaries[Id.raw()].Ret = AbstractValue::top();
    for (bc::FuncId Id : Comp) {
      const bc::Function &F = R.func(Id);
      if (F.Code.empty())
        continue;
      bc::BlockList Blocks = bc::BlockList::compute(F);
      Facts[Id.raw()] = computeSiteFacts(R, F, Blocks, this);
      Summaries[Id.raw()].Ret = AbstractValue::top();
    }
    ++Round;
  }
  MaxRounds = std::max(MaxRounds, Round);
}

/// Transitive effect closure of one component.  Members of a cycle all
/// share one effect set: the union of every member's own bits and of the
/// (already-final, thanks to bottom-up order) transitive bits of every
/// callee outside the component.
void SummaryStore::propagateEffects(const std::vector<bc::FuncId> &Comp) {
  bool Writes = false, Native = false, Escapes = false;
  for (bc::FuncId F : Comp) {
    const FuncSummary &S = Summaries[F.raw()];
    Writes |= S.WritesHeap;
    Native |= S.CallsNative;
    Escapes |= S.EscapesAllocs;
    for (bc::FuncId Callee : CG.callees(F)) {
      if (CG.sccOf(Callee) == CG.sccOf(F))
        continue;
      const FuncSummary &C = Summaries[Callee.raw()];
      Writes |= C.WritesHeap;
      Native |= C.CallsNative;
      Escapes |= C.EscapesAllocs;
    }
  }
  for (bc::FuncId F : Comp) {
    Summaries[F.raw()].WritesHeap = Writes;
    Summaries[F.raw()].CallsNative = Native;
    Summaries[F.raw()].EscapesAllocs = Escapes;
  }
}

AbstractValue SummaryStore::returnOf(bc::FuncId Callee) const {
  if (Callee.raw() >= Summaries.size())
    return AbstractValue::top();
  return Summaries[Callee.raw()].Ret;
}

AbstractValue SummaryStore::methodReturn(bc::StringId Name,
                                         bc::ClassId Exact) const {
  const bc::Repo &R = CG.repo();
  if (Exact.valid()) {
    bc::FuncId M = R.resolveMethod(Exact, Name);
    if (!M.valid())
      return AbstractValue::ofMask(AbstractValue::kNullBit);
    return returnOf(M);
  }
  AbstractValue V = AbstractValue::bottom();
  for (bc::FuncId M : CG.resolutions(Name))
    V.join(returnOf(M));
  if (!CG.allClassesResolve(Name))
    V.join(AbstractValue::ofMask(AbstractValue::kNullBit));
  return V;
}
