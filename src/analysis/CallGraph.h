//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program call graph over a bytecode repository.
///
/// Nodes are functions; edges come from two site kinds:
///
///   - FCall: one direct edge to the callee;
///   - FCallObj: one edge per class-hierarchy resolution of the method
///     name (Repo::allMethodResolutions) -- the sound over-approximation
///     of dynamic dispatch when nothing is known about the receiver.
///
/// NativeCall sites have no bytecode callee and contribute no edges (they
/// are tracked as an effect on the caller instead).  The graph is
/// condensed into strongly-connected components (iterative Tarjan) so
/// mutual recursion collapses into single summary units; components()
/// returns them bottom-up (callees before callers), the evaluation order
/// the summary fixpoint in Summaries.cpp relies on.
///
/// Class-hierarchy resolution sets for every method name appearing at
/// some FCallObj site are precomputed here and shared by the summaries,
/// guard-elision proofs and PackageLint's contradiction checks.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_CALLGRAPH_H
#define JUMPSTART_ANALYSIS_CALLGRAPH_H

#include "bytecode/Repo.h"

#include <cstdint>
#include <map>
#include <vector>

namespace jumpstart::analysis {

/// One call site of one function.
struct CallSite {
  /// Instruction index of the FCall/FCallObj.
  uint32_t Pc = 0;
  /// True for FCallObj (dynamic dispatch), false for direct FCall.
  bool Virtual = false;
  /// Method name (Virtual sites only).
  bc::StringId Method;
  /// Possible callees: the single direct target, or every
  /// class-hierarchy resolution of Method.  Ascending raw-id order.
  std::vector<bc::FuncId> Targets;
};

class CallGraph {
public:
  explicit CallGraph(const bc::Repo &R);

  const bc::Repo &repo() const { return R; }

  /// Call sites of \p F, in bytecode order.
  const std::vector<CallSite> &sites(bc::FuncId F) const {
    return Sites[F.raw()];
  }

  /// Deduplicated callees of \p F (ascending raw-id order).
  const std::vector<bc::FuncId> &callees(bc::FuncId F) const {
    return Callees[F.raw()];
  }

  /// The strongly-connected component containing \p F.
  uint32_t sccOf(bc::FuncId F) const { return SccId[F.raw()]; }

  /// Components in bottom-up order: every callee's component precedes
  /// its callers' (mutual recursion excepted -- that is one component).
  const std::vector<std::vector<bc::FuncId>> &components() const {
    return Sccs;
  }

  /// True when \p F can (transitively through its component) call itself:
  /// member of a multi-function component, or directly self-recursive.
  bool recursive(bc::FuncId F) const { return Recursive[F.raw()]; }

  /// Total directed edges (a site with N resolutions contributes N).
  size_t numEdges() const { return Edges; }

  /// True when \p Callee appears in the resolution set of some site of
  /// \p Caller (i.e. the edge Caller -> Callee exists).
  bool hasEdge(bc::FuncId Caller, bc::FuncId Callee) const;

  /// True when a call path of length >= 1 leads from \p Caller to
  /// \p Callee.  This, not hasEdge, is the sound check for profiled
  /// call arcs: the tier-2 profiler records the *physical* caller (the
  /// unit whose code issued the call), so an arc skips every semantic
  /// frame the JIT inlined in between.
  bool reaches(bc::FuncId Caller, bc::FuncId Callee) const;

  //===--------------------------------------------------------------------===
  // Cached class-hierarchy resolution (for method names that appear at
  // some virtual site; other names fall through to the repo).
  //===--------------------------------------------------------------------===

  const std::vector<bc::FuncId> &resolutions(bc::StringId Name) const;
  bc::FuncId uniqueResolution(bc::StringId Name) const;
  bool allClassesResolve(bc::StringId Name) const;

private:
  const bc::Repo &R;
  std::vector<std::vector<CallSite>> Sites;
  std::vector<std::vector<bc::FuncId>> Callees;
  std::vector<uint32_t> SccId;
  std::vector<std::vector<bc::FuncId>> Sccs;
  std::vector<bool> Recursive;
  size_t Edges = 0;

  struct ChaEntry {
    std::vector<bc::FuncId> Resolutions;
    bool AllResolve = false;
  };
  /// Lazily filled on first query per name (single-threaded build +
  /// queries; the harness computes facts before any thread pool spins up).
  mutable std::map<uint32_t, ChaEntry> Cha;

  const ChaEntry &chaFor(bc::StringId Name) const;
  void condense();
};

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_CALLGRAPH_H
