//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "bytecode/Instruction.h"
#include "bytecode/Opcode.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::analysis;

CallGraph::CallGraph(const bc::Repo &Repo) : R(Repo) {
  size_t N = R.numFuncs();
  Sites.resize(N);
  Callees.resize(N);

  for (const bc::Function &F : R.funcs()) {
    std::vector<CallSite> &FS = Sites[F.Id.raw()];
    std::vector<bc::FuncId> &FC = Callees[F.Id.raw()];
    for (uint32_t I = 0; I < F.Code.size(); ++I) {
      const bc::Instr &In = F.Code[I];
      if (In.Opcode == bc::Op::FCall) {
        CallSite S;
        S.Pc = I;
        S.Targets.push_back(In.funcImm());
        FS.push_back(std::move(S));
      } else if (In.Opcode == bc::Op::FCallObj) {
        CallSite S;
        S.Pc = I;
        S.Virtual = true;
        S.Method = In.strImm();
        S.Targets = chaFor(S.Method).Resolutions;
        FS.push_back(std::move(S));
      }
    }
    for (const CallSite &S : FS) {
      Edges += S.Targets.size();
      FC.insert(FC.end(), S.Targets.begin(), S.Targets.end());
    }
    std::sort(FC.begin(), FC.end(),
              [](bc::FuncId A, bc::FuncId B) { return A.raw() < B.raw(); });
    FC.erase(std::unique(FC.begin(), FC.end(),
                         [](bc::FuncId A, bc::FuncId B) {
                           return A.raw() == B.raw();
                         }),
             FC.end());
  }

  condense();
}

bool CallGraph::hasEdge(bc::FuncId Caller, bc::FuncId Callee) const {
  const std::vector<bc::FuncId> &FC = Callees[Caller.raw()];
  return std::binary_search(FC.begin(), FC.end(), Callee,
                            [](bc::FuncId A, bc::FuncId B) {
                              return A.raw() < B.raw();
                            });
}

bool CallGraph::reaches(bc::FuncId Caller, bc::FuncId Callee) const {
  // Plain DFS over the successor lists.  Seeded with the caller's direct
  // callees (not the caller itself) so a self-arc needs a genuine cycle,
  // not a trivial empty path.
  std::vector<bool> Visited(Callees.size(), false);
  std::vector<uint32_t> Work;
  Work.push_back(Caller.raw());
  while (!Work.empty()) {
    uint32_t V = Work.back();
    Work.pop_back();
    for (bc::FuncId C : Callees[V]) {
      if (C.raw() == Callee.raw())
        return true;
      if (!Visited[C.raw()]) {
        Visited[C.raw()] = true;
        Work.push_back(C.raw());
      }
    }
  }
  return false;
}

const CallGraph::ChaEntry &CallGraph::chaFor(bc::StringId Name) const {
  auto It = Cha.find(Name.raw());
  if (It != Cha.end())
    return It->second;
  ChaEntry E;
  E.Resolutions = R.allMethodResolutions(Name);
  E.AllResolve = R.allClassesResolve(Name);
  return Cha.emplace(Name.raw(), std::move(E)).first->second;
}

const std::vector<bc::FuncId> &CallGraph::resolutions(bc::StringId Name) const {
  return chaFor(Name).Resolutions;
}

bc::FuncId CallGraph::uniqueResolution(bc::StringId Name) const {
  const std::vector<bc::FuncId> &All = chaFor(Name).Resolutions;
  return All.size() == 1 ? All.front() : bc::FuncId();
}

bool CallGraph::allClassesResolve(bc::StringId Name) const {
  return chaFor(Name).AllResolve;
}

/// Iterative Tarjan.  Popping a component only once all components it
/// reaches are popped gives exactly the bottom-up (callee-first) order
/// the summary fixpoint wants, so Sccs needs no post-sort.
void CallGraph::condense() {
  size_t N = R.numFuncs();
  SccId.assign(N, ~0u);
  Recursive.assign(N, false);

  constexpr uint32_t kUnvisited = ~0u;
  std::vector<uint32_t> Index(N, kUnvisited);
  std::vector<uint32_t> Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  uint32_t Next = 0;

  struct Frame {
    uint32_t Node;
    uint32_t Edge; // next callee index to visit
  };
  std::vector<Frame> Work;

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != kUnvisited)
      continue;
    Work.push_back({Root, 0});
    while (!Work.empty()) {
      Frame &Fr = Work.back();
      uint32_t V = Fr.Node;
      if (Fr.Edge == 0) {
        Index[V] = Low[V] = Next++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      const std::vector<bc::FuncId> &Succ = Callees[V];
      bool Descended = false;
      while (Fr.Edge < Succ.size()) {
        uint32_t W = Succ[Fr.Edge++].raw();
        if (Index[W] == kUnvisited) {
          Work.push_back({W, 0});
          Descended = true;
          break;
        }
        if (OnStack[W])
          Low[V] = std::min(Low[V], Index[W]);
      }
      if (Descended)
        continue;
      if (Low[V] == Index[V]) {
        std::vector<bc::FuncId> Comp;
        uint32_t W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SccId[W] = static_cast<uint32_t>(Sccs.size());
          Comp.push_back(bc::FuncId(W));
        } while (W != V);
        std::sort(Comp.begin(), Comp.end(), [](bc::FuncId A, bc::FuncId B) {
          return A.raw() < B.raw();
        });
        bool Rec = Comp.size() > 1;
        if (!Rec)
          Rec = hasEdge(Comp.front(), Comp.front());
        for (bc::FuncId F : Comp)
          Recursive[F.raw()] = Rec;
        Sccs.push_back(std::move(Comp));
      }
      Work.pop_back();
      if (!Work.empty())
        Low[Work.back().Node] = std::min(Low[Work.back().Node], Low[V]);
    }
  }
}
