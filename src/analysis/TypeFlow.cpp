//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/TypeFlow.h"

#include "analysis/AbstractType.h"
#include "analysis/Dataflow.h"
#include "support/Assert.h"
#include "support/StringUtil.h"

#include <set>

using namespace jumpstart;
using namespace jumpstart::analysis;
using runtime::Type;

bool jumpstart::analysis::classHasProp(const bc::Repo &R, bc::ClassId C,
                                       bc::StringId Prop) {
  while (C.valid()) {
    const bc::Class &K = R.cls(C);
    for (bc::StringId P : K.DeclProps)
      if (P == Prop)
        return true;
    C = K.Parent;
  }
  return false;
}

namespace {

/// One tracked local: abstract value plus definite-assignment facts.
/// May/Must join as OR/AND respectively.
struct LocalState {
  AbstractValue Val;
  bool MayAssigned = false;
  bool MustAssigned = false;
  /// May the local hold a locally-allocated, not-yet-escaped value?
  /// (May-information; joins as OR.)
  bool Fresh = false;
  /// The parameter index this local still holds unmodified (a parameter
  /// local is its own origin until a SetL overwrites it); kNoParam
  /// otherwise.  Must-information; joins intersect to kNoParam.
  static constexpr uint32_t kNoParam = ~0u;
  uint32_t OrigParam = kNoParam;
};

/// One operand-stack slot: abstract value plus provenance -- the local a
/// GetL loaded it from, invalidated when that local is reassigned.  The
/// region guard pass uses provenance to associate class guards with
/// receiver locals.
struct SlotState {
  AbstractValue Val;
  static constexpr uint32_t kNoLocal = ~0u;
  uint32_t FromLocal = kNoLocal;
  /// May the slot hold a locally-allocated, not-yet-escaped value?
  bool Fresh = false;
};

struct TypeState {
  std::vector<LocalState> Locals;
  std::vector<SlotState> Stack;
  /// Class guards established per local (must-information; joins
  /// intersect): key (methodName.raw() << 32) | target.raw().
  std::vector<std::set<uint64_t>> Guards;
};

class TypeDomain {
public:
  using State = TypeState;

  TypeDomain(const bc::Repo &R, const bc::Function &F,
             const DevirtSites *Devirt,
             const SummaryQuery *Summaries = nullptr)
      : R(R), F(F), Devirt(Devirt), Summaries(Summaries) {}

  /// Reporting mode: when set, transfer() emits diagnostics (the final
  /// walk sets it; fixpoint iterations leave it null).
  std::vector<Diagnostic> *Sink = nullptr;
  uint32_t CurBlock = Diagnostic::kNone;

  /// Fact-collection mode: when set, transfer() records per-site proofs
  /// (another final-walk-only hook, like Sink).
  SiteFacts *Facts = nullptr;

  State boundary() const {
    State S;
    S.Locals.resize(F.NumLocals);
    for (uint32_t L = 0; L < F.NumLocals; ++L) {
      if (L < F.NumParams) {
        // Parameter types are call-site dependent; a caller may even pass
        // fewer arguments than declared (virtual calls are not
        // arity-checked), leaving the slot null -- Top covers both.
        S.Locals[L].Val = AbstractValue::top();
        S.Locals[L].MayAssigned = true;
        S.Locals[L].MustAssigned = true;
        S.Locals[L].OrigParam = L;
      } else {
        // Unassigned locals read as null (Interpreter.cpp initializes the
        // frame with nulls); definite-assignment tracks the flags.
        S.Locals[L].Val = AbstractValue::ofType(Type::Null);
      }
    }
    if (Devirt)
      S.Guards.resize(F.NumLocals);
    return S;
  }

  bool join(State &Into, const State &From) const {
    bool Changed = false;
    for (size_t L = 0; L < Into.Locals.size(); ++L) {
      LocalState &A = Into.Locals[L];
      const LocalState &B = From.Locals[L];
      Changed |= A.Val.join(B.Val);
      if (B.MayAssigned && !A.MayAssigned) {
        A.MayAssigned = true;
        Changed = true;
      }
      if (!B.MustAssigned && A.MustAssigned) {
        A.MustAssigned = false;
        Changed = true;
      }
      if (B.Fresh && !A.Fresh) {
        A.Fresh = true;
        Changed = true;
      }
      if (A.OrigParam != B.OrigParam &&
          A.OrigParam != LocalState::kNoParam) {
        A.OrigParam = LocalState::kNoParam;
        Changed = true;
      }
    }
    // Pass zero guarantees consistent stack depths at joins.
    alwaysAssert(Into.Stack.size() == From.Stack.size(),
                 "join at inconsistent stack depth (verifier bypassed?)");
    for (size_t I = 0; I < Into.Stack.size(); ++I) {
      SlotState &A = Into.Stack[I];
      const SlotState &B = From.Stack[I];
      Changed |= A.Val.join(B.Val);
      if (A.FromLocal != B.FromLocal && A.FromLocal != SlotState::kNoLocal) {
        A.FromLocal = SlotState::kNoLocal;
        Changed = true;
      }
      if (B.Fresh && !A.Fresh) {
        A.Fresh = true;
        Changed = true;
      }
    }
    for (size_t L = 0; L < Into.Guards.size(); ++L) {
      std::set<uint64_t> &G = Into.Guards[L];
      for (auto It = G.begin(); It != G.end();) {
        if (!From.Guards[L].count(*It)) {
          It = G.erase(It);
          Changed = true;
        } else {
          ++It;
        }
      }
    }
    return Changed;
  }

  void widen(State &Into, const State &Fresh) const {
    for (size_t L = 0; L < Into.Locals.size(); ++L)
      Into.Locals[L].Val =
          AbstractValue::widen(Into.Locals[L].Val, Fresh.Locals[L].Val);
    for (size_t I = 0; I < Into.Stack.size(); ++I)
      Into.Stack[I].Val =
          AbstractValue::widen(Into.Stack[I].Val, Fresh.Stack[I].Val);
    join(Into, Fresh); // flags, provenance and guards have no widening
  }

  void feasible(const State &S, uint32_t InstrIndex, bool &Taken,
                bool &Fallthru) const {
    const bc::Instr &In = F.Code[InstrIndex];
    Tribool Cond = S.Stack.back().Val.truthiness();
    if (Cond == Tribool::Unknown)
      return;
    bool CondTrue = Cond == Tribool::True;
    // JmpZ takes when falsy; JmpNZ takes when truthy.
    bool Takes = In.Opcode == bc::Op::JmpZ ? !CondTrue : CondTrue;
    Taken = Takes;
    Fallthru = !Takes;
  }

  void transfer(State &S, uint32_t InstrIndex);

private:
  template <typename... Args>
  void report(DiagKind Kind, Severity Sev, uint32_t InstrIndex,
              const char *Fmt, Args... Values) {
    if (!Sink)
      return;
    Diagnostic D;
    D.Sev = Sev;
    D.Kind = Kind;
    D.Func = F.Id;
    D.Block = CurBlock;
    D.Instr = InstrIndex;
    D.Message = strFormat(Fmt, Values...);
    Sink->push_back(D);
  }

  SlotState pop(State &S) {
    alwaysAssert(!S.Stack.empty(), "abstract stack underflow");
    SlotState Top = S.Stack.back();
    S.Stack.pop_back();
    return Top;
  }

  void push(State &S, AbstractValue V,
            uint32_t FromLocal = SlotState::kNoLocal, bool Fresh = false) {
    S.Stack.push_back(SlotState{V, FromLocal, Fresh});
  }

  void setLocal(State &S, uint32_t L, const SlotState &Slot) {
    S.Locals[L].Val = Slot.Val;
    S.Locals[L].MayAssigned = true;
    S.Locals[L].MustAssigned = true;
    S.Locals[L].Fresh = Slot.Fresh;
    S.Locals[L].OrigParam = LocalState::kNoParam;
    for (SlotState &Other : S.Stack)
      if (Other.FromLocal == L)
        Other.FromLocal = SlotState::kNoLocal;
    if (L < S.Guards.size())
      S.Guards[L].clear();
  }

  /// Fact collection (final walk only; no-ops while Facts is null).
  void recordSiteMask(uint32_t InstrIndex, const AbstractValue &V) {
    if (Facts)
      Facts->SiteMask[InstrIndex] = V.mask();
  }

  /// Narrows the demand of the parameter \p Slot still carries (if any)
  /// to \p Mask -- the types for which this use cannot fault.
  void demand(const State &S, const SlotState &Slot, uint8_t Mask) {
    if (!Facts || Slot.FromLocal == SlotState::kNoLocal)
      return;
    uint32_t P = S.Locals[Slot.FromLocal].OrigParam;
    if (P != LocalState::kNoParam && P < Facts->ParamDemands.size())
      Facts->ParamDemands[P] &= Mask;
  }

  /// Marks the function escaping when \p Slot may hold a fresh
  /// allocation being consumed by an escaping use.
  void escapeIf(const SlotState &Slot) {
    if (Facts && Slot.Fresh)
      Facts->EscapesAllocs = true;
  }

  void transferArith(State &S, const bc::Instr &In, uint32_t InstrIndex);
  void transferFCallObj(State &S, const bc::Instr &In, uint32_t InstrIndex);

  const bc::Repo &R;
  const bc::Function &F;
  const DevirtSites *Devirt;
  const SummaryQuery *Summaries;
};

void TypeDomain::transferArith(State &S, const bc::Instr &In,
                               uint32_t InstrIndex) {
  SlotState SlotB = pop(S);
  SlotState SlotA = pop(S);
  AbstractValue B = SlotB.Val;
  AbstractValue A = SlotA.Val;
  // The interpreter's type profiling observes the left operand here.
  recordSiteMask(InstrIndex, A);
  // arith() cannot fault when an operand is numeric-ish or null.
  demand(S, SlotA, AbstractValue::kNumericish | AbstractValue::kNullBit);
  demand(S, SlotB, AbstractValue::kNumericish | AbstractValue::kNullBit);
  // runtime::arith yields null for any non-numeric, non-bool operand, and
  // the interpreter counts a fault only when neither operand was null.
  constexpr uint8_t kFaulting =
      AbstractValue::kStrBit | AbstractValue::kVecBit |
      AbstractValue::kDictBit | AbstractValue::kObjBit;
  bool Guaranteed =
      (A.subsetOf(kFaulting) && !B.mayBe(Type::Null)) ||
      (B.subsetOf(kFaulting) && !A.mayBe(Type::Null));
  if (Guaranteed)
    report(DiagKind::TypeError, Severity::Error, InstrIndex,
           "%s always faults: operands %s and %s are never numeric",
           bc::opName(In.Opcode), A.str().c_str(), B.str().c_str());

  uint8_t Result = 0;
  bool BothMayNumeric = (A.mask() & AbstractValue::kNumericish) != 0 &&
                        (B.mask() & AbstractValue::kNumericish) != 0;
  if (BothMayNumeric) {
    Result |= AbstractValue::kIntBit;
    if (((A.mask() | B.mask()) & AbstractValue::kDblBit) != 0 ||
        In.Opcode == bc::Op::Div)
      Result |= AbstractValue::kDblBit;
    if (In.Opcode == bc::Op::Div || In.Opcode == bc::Op::Mod)
      Result |= AbstractValue::kNullBit; // division by zero
  }
  if (((A.mask() | B.mask()) & ~AbstractValue::kNumericish) != 0)
    Result |= AbstractValue::kNullBit;
  if (Result == 0)
    Result = AbstractValue::kNullBit;
  push(S, AbstractValue::ofMask(Result));
}

void TypeDomain::transferFCallObj(State &S, const bc::Instr &In,
                                  uint32_t InstrIndex) {
  uint32_t N = In.countImm();
  alwaysAssert(S.Stack.size() >= N + 1, "abstract stack underflow at call");
  SlotState Recv = S.Stack[S.Stack.size() - N - 1];

  if (Facts) {
    Facts->RecvMask[InstrIndex] = Recv.Val.mask();
    if (bc::ClassId Exact = Recv.Val.exactClass(); Exact.valid())
      Facts->ExactRecv[InstrIndex] = Exact.raw();
    demand(S, Recv, AbstractValue::kObjBit);
    // The receiver and every argument escape into the callee.
    for (size_t I = S.Stack.size() - N - 1; I < S.Stack.size(); ++I)
      escapeIf(S.Stack[I]);
  }

  if (!Recv.Val.mayBe(Type::Obj)) {
    report(DiagKind::TypeError, Severity::Error, InstrIndex,
           "method call '%s' always faults: receiver %s is never an object",
           R.str(In.strImm()).c_str(), Recv.Val.str().c_str());
  } else if (bc::ClassId Exact = Recv.Val.exactClass(); Exact.valid()) {
    if (!R.resolveMethod(Exact, In.strImm()).valid())
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "method call always faults: class %s has no method '%s'",
             R.cls(Exact).Name.c_str(), R.str(In.strImm()).c_str());
  }

  // Region guard cross-check, when this site was devirtualized.
  if (Devirt) {
    auto Site = Devirt->TargetAt.find(InstrIndex);
    if (Site != Devirt->TargetAt.end()) {
      uint32_t Target = Site->second;
      uint64_t GuardKey =
          (static_cast<uint64_t>(In.strImm().raw()) << 32) | Target;
      if (!Recv.Val.mayBe(Type::Obj)) {
        report(DiagKind::GuardNeverPasses, Severity::Error, InstrIndex,
               "class guard for '%s' can never pass: receiver %s is never "
               "an object",
               R.str(In.strImm()).c_str(), Recv.Val.str().c_str());
      } else if (bc::ClassId Exact = Recv.Val.exactClass(); Exact.valid()) {
        bc::FuncId Resolved = R.resolveMethod(Exact, In.strImm());
        if (Resolved.valid() && Resolved.raw() == Target)
          report(DiagKind::RedundantGuard, Severity::Note, InstrIndex,
                 "class guard is implied by the statically-inferred "
                 "receiver type %s",
                 R.cls(Exact).Name.c_str());
        else
          report(DiagKind::GuardNeverPasses, Severity::Error, InstrIndex,
                 "class guard for '%s' contradicts the statically-inferred "
                 "receiver type %s",
                 R.str(In.strImm()).c_str(), R.cls(Exact).Name.c_str());
      } else if (Recv.FromLocal != SlotState::kNoLocal &&
                 Recv.FromLocal < S.Guards.size()) {
        std::set<uint64_t> &G = S.Guards[Recv.FromLocal];
        if (G.count(GuardKey))
          report(DiagKind::RedundantGuard, Severity::Note, InstrIndex,
                 "class guard for '%s' is implied by a dominating guard on "
                 "the same receiver local %u",
                 R.str(In.strImm()).c_str(), Recv.FromLocal);
        else
          G.insert(GuardKey);
      }
    }
  }

  S.Stack.resize(S.Stack.size() - N - 1);
  AbstractValue Res = AbstractValue::top();
  if (Summaries) {
    Res = Summaries->methodReturn(In.strImm(), Recv.Val.exactClass());
    // A receiver that may not be an object adds the fault path's null.
    if (!Recv.Val.subsetOf(AbstractValue::kObjBit))
      Res.join(AbstractValue::ofType(Type::Null));
  }
  push(S, Res);
}

void TypeDomain::transfer(State &S, uint32_t InstrIndex) {
  const bc::Instr &In = F.Code[InstrIndex];
  switch (In.Opcode) {
  case bc::Op::Nop:
  case bc::Op::Jmp:
    break;
  case bc::Op::Int:
    push(S, AbstractValue::ofType(Type::Int));
    break;
  case bc::Op::Dbl:
    push(S, AbstractValue::ofType(Type::Dbl));
    break;
  case bc::Op::True:
    push(S, AbstractValue::boolConst(true));
    break;
  case bc::Op::False:
    push(S, AbstractValue::boolConst(false));
    break;
  case bc::Op::Null:
    push(S, AbstractValue::ofType(Type::Null));
    break;
  case bc::Op::Str:
    push(S, AbstractValue::ofType(Type::Str));
    break;
  case bc::Op::NewVec:
    push(S, AbstractValue::ofType(Type::Vec), SlotState::kNoLocal,
         /*Fresh=*/true);
    break;
  case bc::Op::NewDict:
    push(S, AbstractValue::ofType(Type::Dict), SlotState::kNoLocal,
         /*Fresh=*/true);
    break;
  case bc::Op::AddElem: {
    SlotState V = pop(S); // value
    SlotState SC = pop(S);
    escapeIf(V);
    AbstractValue C = SC.Val;
    if (!C.mayBe(Type::Vec))
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "AddElem always faults: container %s is never a vec",
             C.str().c_str());
    uint8_t Result = C.mask() & AbstractValue::kVecBit;
    if ((C.mask() & ~AbstractValue::kVecBit) != 0 || Result == 0)
      Result |= AbstractValue::kNullBit;
    push(S, AbstractValue::ofMask(Result), SlotState::kNoLocal, SC.Fresh);
    break;
  }
  case bc::Op::AddKeyElem: {
    SlotState V = pop(S); // value
    pop(S);               // key
    SlotState SC = pop(S);
    escapeIf(V);
    AbstractValue C = SC.Val;
    if (!C.mayBe(Type::Dict))
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "AddKeyElem always faults: container %s is never a dict",
             C.str().c_str());
    uint8_t Result = C.mask() & AbstractValue::kDictBit;
    if ((C.mask() & ~AbstractValue::kDictBit) != 0 || Result == 0)
      Result |= AbstractValue::kNullBit;
    push(S, AbstractValue::ofMask(Result), SlotState::kNoLocal, SC.Fresh);
    break;
  }
  case bc::Op::GetElem: {
    pop(S); // key
    SlotState SC = pop(S);
    AbstractValue C = SC.Val;
    constexpr uint8_t kContainers =
        AbstractValue::kVecBit | AbstractValue::kDictBit;
    recordSiteMask(InstrIndex, C);
    demand(S, SC, kContainers);
    if ((C.mask() & kContainers) == 0)
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "GetElem always faults: container %s is never a vec or dict",
             C.str().c_str());
    push(S, AbstractValue::top());
    break;
  }
  case bc::Op::SetElem: {
    SlotState V = pop(S); // value
    pop(S);               // key
    SlotState SC = pop(S);
    escapeIf(V);
    AbstractValue C = SC.Val;
    constexpr uint8_t kContainers =
        AbstractValue::kVecBit | AbstractValue::kDictBit;
    recordSiteMask(InstrIndex, C);
    demand(S, SC, kContainers);
    if ((C.mask() & kContainers) == 0)
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "SetElem always faults: container %s is never a vec or dict",
             C.str().c_str());
    uint8_t Result = C.mask() & kContainers;
    // Everything except a pure dict can fault (vec writes fault out of
    // range), pushing null.
    if (!C.definitely(Type::Dict))
      Result |= AbstractValue::kNullBit;
    push(S, AbstractValue::ofMask(Result), SlotState::kNoLocal, SC.Fresh);
    break;
  }
  case bc::Op::Len: {
    SlotState SC = pop(S);
    AbstractValue C = SC.Val;
    constexpr uint8_t kMeasurable = AbstractValue::kVecBit |
                                    AbstractValue::kDictBit |
                                    AbstractValue::kStrBit;
    demand(S, SC, kMeasurable);
    if ((C.mask() & kMeasurable) == 0)
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "Len always faults: operand %s has no length", C.str().c_str());
    uint8_t Result = AbstractValue::kIntBit;
    if ((C.mask() & ~kMeasurable) != 0)
      Result |= AbstractValue::kNullBit;
    push(S, AbstractValue::ofMask(Result));
    break;
  }
  case bc::Op::PopC:
    pop(S);
    break;
  case bc::Op::Dup: {
    SlotState Top = pop(S);
    S.Stack.push_back(Top);
    S.Stack.push_back(Top);
    break;
  }
  case bc::Op::GetL: {
    uint32_t L = In.localImm();
    const LocalState &Local = S.Locals[L];
    if (!Local.MayAssigned && L >= F.NumParams)
      report(DiagKind::UseBeforeAssign, Severity::Warning, InstrIndex,
             "local %u is read before any path assigns it (reads null)", L);
    push(S, Local.Val, L, Local.Fresh);
    break;
  }
  case bc::Op::SetL:
    setLocal(S, In.localImm(), pop(S));
    break;
  case bc::Op::Add:
  case bc::Op::Sub:
  case bc::Op::Mul:
  case bc::Op::Div:
  case bc::Op::Mod:
    transferArith(S, In, InstrIndex);
    break;
  case bc::Op::Concat:
    pop(S);
    pop(S);
    push(S, AbstractValue::ofType(Type::Str));
    break;
  case bc::Op::Not: {
    Tribool T = pop(S).Val.truthiness();
    push(S, T == Tribool::Unknown
                ? AbstractValue::ofType(Type::Bool)
                : AbstractValue::boolConst(T == Tribool::False));
    break;
  }
  case bc::Op::CmpEq:
  case bc::Op::CmpNe:
  case bc::Op::CmpLt:
  case bc::Op::CmpLe:
  case bc::Op::CmpGt:
  case bc::Op::CmpGe: {
    pop(S);
    SlotState SA = pop(S);
    // Type profiling observes the left operand of comparisons too.
    recordSiteMask(InstrIndex, SA.Val);
    push(S, AbstractValue::ofType(Type::Bool));
    break;
  }
  case bc::Op::JmpZ:
  case bc::Op::JmpNZ:
    pop(S);
    break;
  case bc::Op::FCall: {
    uint32_t N = In.countImm();
    alwaysAssert(S.Stack.size() >= N, "abstract stack underflow at call");
    if (Facts)
      for (size_t I = S.Stack.size() - N; I < S.Stack.size(); ++I)
        escapeIf(S.Stack[I]);
    S.Stack.resize(S.Stack.size() - N);
    push(S, Summaries ? Summaries->returnOf(In.funcImm())
                      : AbstractValue::top());
    break;
  }
  case bc::Op::FCallObj:
    transferFCallObj(S, In, InstrIndex);
    break;
  case bc::Op::NativeCall: {
    uint32_t N = In.countImm();
    alwaysAssert(S.Stack.size() >= N, "abstract stack underflow at call");
    if (Facts)
      for (size_t I = S.Stack.size() - N; I < S.Stack.size(); ++I)
        escapeIf(S.Stack[I]);
    S.Stack.resize(S.Stack.size() - N);
    push(S, AbstractValue::top());
    break;
  }
  case bc::Op::NewObj:
    push(S, AbstractValue::obj(In.clsImm()), SlotState::kNoLocal,
         /*Fresh=*/true);
    break;
  case bc::Op::GetProp: {
    SlotState SO = pop(S);
    AbstractValue O = SO.Val;
    demand(S, SO, AbstractValue::kObjBit);
    if (Facts)
      if (bc::ClassId Exact = O.exactClass(); Exact.valid())
        Facts->ExactRecv[InstrIndex] = Exact.raw();
    if (!O.mayBe(Type::Obj))
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "GetProp '%s' always faults: receiver %s is never an object",
             R.str(In.strImm()).c_str(), O.str().c_str());
    else if (bc::ClassId Exact = O.exactClass();
             Exact.valid() && !classHasProp(R, Exact, In.strImm()))
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "GetProp always faults: class %s has no property '%s'",
             R.cls(Exact).Name.c_str(), R.str(In.strImm()).c_str());
    push(S, AbstractValue::top());
    break;
  }
  case bc::Op::SetProp: {
    SlotState V = pop(S); // value
    SlotState SO = pop(S);
    escapeIf(V);
    AbstractValue O = SO.Val;
    demand(S, SO, AbstractValue::kObjBit);
    if (Facts)
      if (bc::ClassId Exact = O.exactClass(); Exact.valid())
        Facts->ExactRecv[InstrIndex] = Exact.raw();
    if (!O.mayBe(Type::Obj))
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "SetProp '%s' always faults: receiver %s is never an object",
             R.str(In.strImm()).c_str(), O.str().c_str());
    else if (bc::ClassId Exact = O.exactClass();
             Exact.valid() && !classHasProp(R, Exact, In.strImm()))
      report(DiagKind::TypeError, Severity::Error, InstrIndex,
             "SetProp always faults: class %s has no property '%s'",
             R.cls(Exact).Name.c_str(), R.str(In.strImm()).c_str());
    break;
  }
  case bc::Op::GetThis:
    // In a method, `this` is always the FCallObj receiver (an object,
    // though not necessarily exactly F.Cls); free functions get null.
    push(S, F.Cls.valid() ? AbstractValue::ofMask(AbstractValue::kObjBit)
                          : AbstractValue::ofType(Type::Null));
    break;
  case bc::Op::RetC: {
    SlotState RS = pop(S);
    escapeIf(RS);
    if (Facts)
      Facts->Ret.join(RS.Val);
    break;
  }
  }
}

/// A block whose every instruction is compiler plumbing (jumps, the
/// synthetic "Null; RetC" epilogue, stack cleanup).  The frontend emits
/// such blocks unreachably as a matter of course -- e.g. the epilogue
/// after a user `return`, or the `Jmp` out of a then-arm that returns --
/// so the unreachable-block pass skips them to stay false-positive-free
/// on generated code.
bool isPlumbingBlock(const bc::Function &F, const bc::BcBlock &B) {
  for (uint32_t I = B.Start; I < B.End; ++I) {
    switch (F.Code[I].Opcode) {
    case bc::Op::Nop:
    case bc::Op::Jmp:
    case bc::Op::Null:
    case bc::Op::PopC:
    case bc::Op::RetC:
      break;
    default:
      return false;
    }
  }
  return true;
}

/// Same-block dead stores: a SetL overwritten by a later SetL of the same
/// local with no intervening GetL.  Only GetL reads locals, so this is
/// exact within a block; cross-block liveness is deliberately not used
/// (a store read on only some paths is not reported).
void scanDeadStores(const bc::Function &F, const bc::BcBlock &B,
                    uint32_t BlockId, std::vector<Diagnostic> &Diags) {
  std::map<uint32_t, uint32_t> UnreadStore; // local -> SetL index
  for (uint32_t I = B.Start; I < B.End; ++I) {
    const bc::Instr &In = F.Code[I];
    if (In.Opcode == bc::Op::GetL) {
      UnreadStore.erase(In.localImm());
    } else if (In.Opcode == bc::Op::SetL) {
      auto Prior = UnreadStore.find(In.localImm());
      if (Prior != UnreadStore.end()) {
        Diagnostic D;
        D.Sev = Severity::Warning;
        D.Kind = DiagKind::DeadStore;
        D.Func = F.Id;
        D.Block = BlockId;
        D.Instr = Prior->second;
        D.Message = strFormat(
            "store to local %u is overwritten at instr %u before any read",
            In.localImm(), I);
        Diags.push_back(D);
      }
      UnreadStore[In.localImm()] = I;
    }
  }
}

} // namespace

SiteFacts
jumpstart::analysis::computeSiteFacts(const bc::Repo &R,
                                      const bc::Function &F,
                                      const bc::BlockList &Blocks,
                                      const SummaryQuery *Summaries) {
  SiteFacts Facts;
  Facts.ParamDemands.assign(F.NumParams, AbstractValue::kAllBits);
  if (F.Code.empty()) {
    // Nothing to analyze; conservative facts (Top return, no proofs).
    Facts.Ret = AbstractValue::top();
    return Facts;
  }
  TypeDomain D(R, F, /*Devirt=*/nullptr, Summaries);
  ForwardDataflow<TypeDomain> Flow(F, Blocks, D);
  Flow.run();

  // Deterministic collection walk from the fixpoint entry states: every
  // reached block once, recording per-site proofs.
  D.Facts = &Facts;
  for (uint32_t B = 0; B < Blocks.numBlocks(); ++B) {
    if (!Flow.reached(B))
      continue;
    TypeState S = Flow.entryState(B);
    const bc::BcBlock &Block = Blocks.block(B);
    for (uint32_t I = Block.Start; I < Block.End; ++I)
      D.transfer(S, I);
  }
  D.Facts = nullptr;
  Facts.Analyzed = true;
  return Facts;
}

std::vector<Diagnostic>
jumpstart::analysis::analyzeFunction(const bc::Repo &R, const bc::Function &F,
                                     const bc::BlockList &Blocks,
                                     const DevirtSites *Devirt,
                                     const SummaryQuery *Summaries) {
  TypeDomain D(R, F, Devirt, Summaries);
  ForwardDataflow<TypeDomain> Flow(F, Blocks, D);
  Flow.run();

  std::vector<Diagnostic> Diags;
  D.Sink = &Diags;
  for (uint32_t B = 0; B < Blocks.numBlocks(); ++B) {
    const bc::BcBlock &Block = Blocks.block(B);
    if (!Flow.reached(B)) {
      if (!isPlumbingBlock(F, Block)) {
        Diagnostic Diag;
        Diag.Sev = Severity::Warning;
        Diag.Kind = DiagKind::UnreachableBlock;
        Diag.Func = F.Id;
        Diag.Block = B;
        Diag.Instr = Block.Start;
        Diag.Message =
            strFormat("block %u is unreachable on every feasible path", B);
        Diags.push_back(Diag);
      }
      continue;
    }

    // Re-run the transfer from the fixpoint entry state, reporting.
    TypeState S = Flow.entryState(B);
    D.CurBlock = B;
    for (uint32_t I = Block.Start; I < Block.End; ++I) {
      const bc::Instr &In = F.Code[I];
      if (I + 1 == Block.End &&
          hasFlag(bc::opInfo(In.Opcode).Flags, bc::OpFlags::CondBranch)) {
        Tribool Cond = S.Stack.back().Val.truthiness();
        if (Cond != Tribool::Unknown) {
          bool CondTrue = Cond == Tribool::True;
          bool Takes = In.Opcode == bc::Op::JmpZ ? !CondTrue : CondTrue;
          Diagnostic Diag;
          Diag.Sev = Severity::Warning;
          Diag.Kind = DiagKind::DeadGuard;
          Diag.Func = F.Id;
          Diag.Block = B;
          Diag.Instr = I;
          Diag.Message = strFormat(
              "condition is always %s; the %s arm is dead",
              CondTrue ? "true" : "false", Takes ? "fallthrough" : "branch");
          Diags.push_back(Diag);
        }
      }
      D.transfer(S, I);
    }
    scanDeadStores(F, Block, B, Diags);
  }
  D.Sink = nullptr;
  return Diags;
}
