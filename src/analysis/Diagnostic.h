//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform diagnostic record every analysis pass reports through.
///
/// Structural verification (pass zero), the dataflow passes, the JIT
/// region cross-checks and the profile-package lint all produce the same
/// record so tools (jslint, the seeder/consumer workflows, tests) can
/// filter by severity and kind without knowing which pass spoke.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_DIAGNOSTIC_H
#define JUMPSTART_ANALYSIS_DIAGNOSTIC_H

#include "bytecode/Repo.h"

#include <string>
#include <vector>

namespace jumpstart::analysis {

enum class Severity : uint8_t {
  Error,   ///< Guaranteed misbehaviour (or corrupt data); gates publishing.
  Warning, ///< Legal but almost certainly unintended.
  Note,    ///< Informational (e.g. optimization opportunities).
};

/// What kind of defect a diagnostic reports.  Tests assert on these, so
/// each pass maps to a stable set of kinds.
enum class DiagKind : uint8_t {
  Structural,       ///< Pass zero: bc::verifyFunctionIssues findings.
  TypeError,        ///< Guaranteed dynamic-type fault on every execution.
  DeadGuard,        ///< Conditional branch whose outcome is statically known.
  UnreachableBlock, ///< Block no feasible path reaches.
  UseBeforeAssign,  ///< Local read before any path assigns it.
  DeadStore,        ///< Store overwritten before any read.
  RedundantGuard,   ///< Region class guard implied by a dominating guard or
                    ///< by the statically-inferred receiver type.
  GuardNeverPasses, ///< Region class guard the static types refute.
  RegionInconsistent,      ///< Region descriptor contradicts the bytecode.
  TranslationInconsistent, ///< TransDb/Vasm unit self-inconsistency.
  PackageStructure,        ///< Package ids/shapes out of range for the repo.
  PackageSemantics,        ///< Package contents name entities that do not
                           ///< exist (properties, call sites, permutations).
  ElisionUnproven,         ///< A translation elided a guard the whole-program
                           ///< analysis cannot re-prove (JIT acted on a fact
                           ///< that does not hold).
  SummaryContradiction,    ///< Profile observations contradict the static
                           ///< call graph or type summaries (a profiled
                           ///< callee/type the analysis proves impossible).
};

const char *severityName(Severity S);
const char *diagKindName(DiagKind K);

/// One finding.  Func/Block/Instr narrow the location as far as the pass
/// can; package-level findings leave all three unset.
struct Diagnostic {
  static constexpr uint32_t kNone = ~0u;

  Severity Sev = Severity::Error;
  DiagKind Kind = DiagKind::Structural;
  bc::FuncId Func;
  uint32_t Block = kNone;
  uint32_t Instr = kNone;
  std::string Message;

  /// Renders "error[type-error] funcName @b2:i7: message".  \p R (when
  /// given) resolves the function name; otherwise the raw id is printed.
  std::string str(const bc::Repo *R = nullptr) const;
};

/// Number of Severity::Error diagnostics in \p Diags.
size_t countErrors(const std::vector<Diagnostic> &Diags);

/// True when \p Diags contains at least one diagnostic of \p Kind.
bool hasKind(const std::vector<Diagnostic> &Diags, DiagKind Kind);

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_DIAGNOSTIC_H
