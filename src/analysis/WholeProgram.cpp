//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/WholeProgram.h"

#include "bytecode/Instruction.h"
#include "bytecode/Opcode.h"

using namespace jumpstart;
using namespace jumpstart::analysis;

WholeProgram::WholeProgram(const bc::Repo &Repo)
    : R(Repo), CG(Repo), Store(CG), JitFacts(distill()) {}

std::shared_ptr<const jit::ProvenFacts> WholeProgram::distill() const {
  auto Out = std::make_shared<jit::ProvenFacts>();

  for (const bc::Function &F : R.funcs()) {
    const SiteFacts &SF = Store.facts(F.Id);
    if (!SF.Analyzed)
      continue;
    uint32_t FRaw = F.Id.raw();

    // Devirtualization guard proofs at virtual call sites.
    for (const CallSite &Site : CG.sites(F.Id)) {
      if (!Site.Virtual)
        continue;
      uint64_t Key = jit::ProvenFacts::siteKey(FRaw, Site.Pc);
      auto Exact = SF.ExactRecv.find(Site.Pc);
      if (Exact != SF.ExactRecv.end()) {
        bc::FuncId M = R.resolveMethod(bc::ClassId(Exact->second), Site.Method);
        if (M.valid()) {
          jit::ProvenFacts::CallFact Fact;
          Fact.Target = M.raw();
          Fact.Proof = jit::GuardProof::ExactRecv;
          Fact.RecvCls = Exact->second;
          Out->ProvenCalls.emplace(Key, Fact);
          jit::ProvenFacts::ICSeed Seed;
          Seed.Func = FRaw;
          Seed.Pc = Site.Pc;
          Seed.Cls = Exact->second;
          Seed.K = jit::ProvenFacts::ICSeed::Kind::Call;
          Out->ICSeeds.push_back(Seed);
        }
        continue;
      }
      // UniqueMethod: a receiver that is provably *some* object, where
      // every class resolves the name and all resolutions agree.  The
      // original guard would fault for a receiver lacking the method, so
      // the whole-hierarchy condition is load-bearing, not an
      // optimization nicety.
      auto Mask = SF.RecvMask.find(Site.Pc);
      if (Mask != SF.RecvMask.end() &&
          Mask->second == AbstractValue::kObjBit &&
          CG.allClassesResolve(Site.Method)) {
        bc::FuncId U = CG.uniqueResolution(Site.Method);
        if (U.valid()) {
          jit::ProvenFacts::CallFact Fact;
          Fact.Target = U.raw();
          Fact.Proof = jit::GuardProof::UniqueMethod;
          Out->ProvenCalls.emplace(Key, Fact);
        }
      }
    }

    // Proven operand masks at profile-observed sites.  Bottom (site
    // unreachable) and Top (nothing proven) are both useless to the JIT.
    for (const auto &[Pc, Mask] : SF.SiteMask) {
      if (Mask == 0 || Mask == AbstractValue::kAllBits)
        continue;
      Out->ProvenMasks.emplace(jit::ProvenFacts::siteKey(FRaw, Pc), Mask);
    }

    // Property-access IC seeds: exact receiver class that actually
    // declares the property (a missing property faults without caching,
    // so seeding it would invent an entry the interpreter never makes).
    for (const auto &[Pc, Cls] : SF.ExactRecv) {
      const bc::Instr &In = F.Code[Pc];
      jit::ProvenFacts::ICSeed::Kind K;
      if (In.Opcode == bc::Op::GetProp)
        K = jit::ProvenFacts::ICSeed::Kind::GetProp;
      else if (In.Opcode == bc::Op::SetProp)
        K = jit::ProvenFacts::ICSeed::Kind::SetProp;
      else
        continue; // FCallObj handled with the call-site proofs above.
      if (!classHasProp(R, bc::ClassId(Cls), In.strImm()))
        continue;
      jit::ProvenFacts::ICSeed Seed;
      Seed.Func = FRaw;
      Seed.Pc = Pc;
      Seed.Cls = Cls;
      Seed.K = K;
      Out->ICSeeds.push_back(Seed);
    }
  }
  return Out;
}

WholeProgram::Stats WholeProgram::stats() const {
  Stats S;
  S.Functions = R.numFuncs();
  S.Edges = CG.numEdges();
  S.Components = CG.components().size();
  for (const std::vector<bc::FuncId> &Comp : CG.components())
    if (CG.recursive(Comp.front()))
      ++S.RecursiveComponents;
  S.MaxRounds = Store.maxRounds();
  S.ProvenCalls = JitFacts->ProvenCalls.size();
  S.ProvenMasks = JitFacts->ProvenMasks.size();
  S.ICSeeds = JitFacts->ICSeeds.size();
  return S;
}
