//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-type dataflow passes over one function.
///
/// Runs the AbstractValue lattice through the ForwardDataflow solver,
/// tracking every operand-stack slot and local, then reports:
///
///   - guaranteed dynamic-type errors (an operation that faults on every
///     execution reaching it, mirroring interp/Interpreter.cpp's exact
///     fault rules);
///   - definitely-dead type guards (conditional branches whose outcome is
///     statically known) and the unreachable blocks they imply;
///   - definite-assignment violations and same-block dead stores on
///     locals.
///
/// When a set of devirtualized call sites is supplied (from a
/// jit::RegionDescriptor), the same fixpoint additionally tracks which
/// class guards are already established per receiver local, flagging
/// guards implied by a dominating guard or by the statically-inferred
/// receiver type, and guards the static types refute.
///
/// The function must already have passed structural verification
/// (bc::verifyFunctionIssues); the caller is responsible for pass zero.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_TYPEFLOW_H
#define JUMPSTART_ANALYSIS_TYPEFLOW_H

#include "analysis/AbstractType.h"
#include "analysis/Diagnostic.h"
#include "bytecode/Blocks.h"

#include <map>

namespace jumpstart::analysis {

/// Devirtualized virtual-call sites of one function, extracted from a
/// region descriptor: instruction index -> guarded target (raw FuncId).
struct DevirtSites {
  std::map<uint32_t, uint32_t> TargetAt;
};

/// Walks \p C's inheritance chain; \returns true when some ancestor (or
/// \p C itself) declares property \p Prop.
bool classHasProp(const bc::Repo &R, bc::ClassId C, bc::StringId Prop);

/// Callee return-type oracle, making the per-function dataflow
/// interprocedural.  Implemented by analysis::WholeProgram (which answers
/// from its bottom-up SCC summaries); without one, every call result is
/// Top -- exactly the historical intraprocedural behavior.
class SummaryQuery {
public:
  virtual ~SummaryQuery() = default;

  /// The return-value lattice element of \p Callee.  Must over-approximate
  /// every value a call can evaluate to (Bottom = provably never returns).
  virtual AbstractValue returnOf(bc::FuncId Callee) const = 0;

  /// The join of returnOf over the possible resolutions of method \p Name:
  /// with \p Exact valid, the single resolution on that class (Null when
  /// the class lacks the method -- the missing-method fault value); with
  /// \p Exact invalid, all class-hierarchy resolutions, joined with Null
  /// unless every class of the repo resolves \p Name.  The caller is
  /// responsible for folding in the non-object-receiver fault path.
  virtual AbstractValue methodReturn(bc::StringId Name,
                                     bc::ClassId Exact) const = 0;
};

/// Per-site facts of one function, proven by the abstract-type fixpoint
/// (optionally sharpened by callee summaries).  Everything here is an
/// over-approximation of all feasible executions -- the soundness
/// contract guard elision and IC seeding rely on.
struct SiteFacts {
  /// Join of the returned value over every reachable RetC.
  AbstractValue Ret = AbstractValue::bottom();
  /// Proven type mask of the operand the interpreter's type profiling
  /// observes, per observing site (GetElem/SetElem: the container;
  /// arithmetic and comparisons: the left operand).
  std::map<uint32_t, uint8_t> SiteMask;
  /// Sites (FCallObj/GetProp/SetProp) whose receiver has a statically
  /// exact class: instruction index -> raw ClassId.
  std::map<uint32_t, uint32_t> ExactRecv;
  /// FCallObj sites: proven type mask of the receiver.
  std::map<uint32_t, uint8_t> RecvMask;
  /// Per-parameter type demand: the mask of argument types for which no
  /// *direct* use of the (unreassigned) parameter can fault.  Purely
  /// advisory -- calls outside the demand may still be fine on paths
  /// that skip the demanding use.
  std::vector<uint8_t> ParamDemands;
  /// May a locally-allocated object/dict/vec escape (returned, stored
  /// into a container or property, or passed to a callee)?
  bool EscapesAllocs = false;
  /// False when the function was not analyzable (empty body); all other
  /// fields are then vacuously Top/conservative.
  bool Analyzed = false;
};

/// Runs the abstract-type fixpoint over \p F and extracts SiteFacts.
/// Reports nothing; see analyzeFunction for the diagnostic walk.
SiteFacts computeSiteFacts(const bc::Repo &R, const bc::Function &F,
                           const bc::BlockList &Blocks,
                           const SummaryQuery *Summaries = nullptr);

/// Runs all dataflow passes over \p F and \returns the diagnostics.
/// \p Blocks must be F's block list; \p Devirt (optional) enables the
/// region guard cross-checks; \p Summaries (optional) sharpens call
/// results with interprocedural return types.
std::vector<Diagnostic> analyzeFunction(const bc::Repo &R,
                                        const bc::Function &F,
                                        const bc::BlockList &Blocks,
                                        const DevirtSites *Devirt = nullptr,
                                        const SummaryQuery *Summaries =
                                            nullptr);

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_TYPEFLOW_H
