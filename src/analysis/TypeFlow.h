//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-type dataflow passes over one function.
///
/// Runs the AbstractValue lattice through the ForwardDataflow solver,
/// tracking every operand-stack slot and local, then reports:
///
///   - guaranteed dynamic-type errors (an operation that faults on every
///     execution reaching it, mirroring interp/Interpreter.cpp's exact
///     fault rules);
///   - definitely-dead type guards (conditional branches whose outcome is
///     statically known) and the unreachable blocks they imply;
///   - definite-assignment violations and same-block dead stores on
///     locals.
///
/// When a set of devirtualized call sites is supplied (from a
/// jit::RegionDescriptor), the same fixpoint additionally tracks which
/// class guards are already established per receiver local, flagging
/// guards implied by a dominating guard or by the statically-inferred
/// receiver type, and guards the static types refute.
///
/// The function must already have passed structural verification
/// (bc::verifyFunctionIssues); the caller is responsible for pass zero.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_TYPEFLOW_H
#define JUMPSTART_ANALYSIS_TYPEFLOW_H

#include "analysis/Diagnostic.h"
#include "bytecode/Blocks.h"

#include <map>

namespace jumpstart::analysis {

/// Devirtualized virtual-call sites of one function, extracted from a
/// region descriptor: instruction index -> guarded target (raw FuncId).
struct DevirtSites {
  std::map<uint32_t, uint32_t> TargetAt;
};

/// Walks \p C's inheritance chain; \returns true when some ancestor (or
/// \p C itself) declares property \p Prop.
bool classHasProp(const bc::Repo &R, bc::ClassId C, bc::StringId Prop);

/// Runs all dataflow passes over \p F and \returns the diagnostics.
/// \p Blocks must be F's block list; \p Devirt (optional) enables the
/// region guard cross-checks.
std::vector<Diagnostic> analyzeFunction(const bc::Repo &R,
                                        const bc::Function &F,
                                        const bc::BlockList &Blocks,
                                        const DevirtSites *Devirt = nullptr);

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_TYPEFLOW_H
