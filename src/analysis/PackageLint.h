//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep semantic linting of a deserialized profile package against the
/// bytecode repo it claims to profile (extends the coverage thresholds of
/// profile::Validation, paper section VI-B).
///
/// A package can be checksum-clean and still poisonous: a stale or buggy
/// seeder may ship counters for functions that do not exist, call-target
/// profiles pointing at non-virtual instructions, or property orders
/// naming properties no class declares.  Region selection steered by such
/// data compiles garbage.  Every id is therefore range-checked, every
/// profiled instruction cross-checked against the opcode actually at that
/// index, and every "Class::prop" key resolved against the class table.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_PACKAGELINT_H
#define JUMPSTART_ANALYSIS_PACKAGELINT_H

#include "analysis/Diagnostic.h"
#include "bytecode/BlockCache.h"
#include "profile/ProfilePackage.h"

namespace jumpstart::analysis {

class CallGraph;

/// Lints \p Pkg against \p R.  Structural problems (out-of-range ids,
/// duplicate entries, impossible shapes) are PackageStructure errors;
/// profile data attached to the wrong kind of instruction or naming
/// non-existent classes/properties are PackageSemantics errors.
///
/// With \p CG, profile observations are additionally cross-checked
/// against the static call graph: a profiled virtual-call target must be
/// a class-hierarchy resolution of the site's method name, and every
/// profiled call arc must be a static call-graph edge.  Violations are
/// SummaryContradiction errors -- the profile claims an execution the
/// analysis proves impossible, so one of the two is wrong.
std::vector<Diagnostic> lintPackage(const bc::Repo &R,
                                    bc::BlockCache &Blocks,
                                    const profile::ProfilePackage &Pkg,
                                    const CallGraph *CG = nullptr);

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_PACKAGELINT_H
