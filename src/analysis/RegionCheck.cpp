//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/RegionCheck.h"

#include "analysis/TypeFlow.h"
#include "analysis/WholeProgram.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <memory>

using namespace jumpstart;
using namespace jumpstart::analysis;

namespace {

void reportRegion(std::vector<Diagnostic> &Diags, bc::FuncId Func,
                  uint32_t Instr, std::string Message) {
  Diagnostic D;
  D.Sev = Severity::Error;
  D.Kind = DiagKind::RegionInconsistent;
  D.Func = Func;
  D.Instr = Instr;
  D.Message = std::move(Message);
  Diags.push_back(D);
}

/// Decodes a RegionDescriptor site key into (function, instruction).
std::pair<bc::FuncId, uint32_t> decodeSite(uint64_t Key) {
  return {bc::FuncId(static_cast<uint32_t>(Key >> 32)),
          static_cast<uint32_t>(Key)};
}

/// Checks that site (F, Pc) names instruction of kind \p Expected inside
/// the repo; reports otherwise.  \returns true when structurally valid.
bool checkSite(const bc::Repo &R, bc::FuncId F, uint32_t Pc,
               const char *What, std::vector<Diagnostic> &Diags) {
  if (!F.valid() || F.raw() >= R.numFuncs()) {
    reportRegion(Diags, bc::FuncId(), Diagnostic::kNone,
                 strFormat("%s site names function #%u, out of range", What,
                           F.raw()));
    return false;
  }
  const bc::Function &Func = R.func(F);
  if (Pc >= Func.Code.size()) {
    reportRegion(Diags, F, Pc,
                 strFormat("%s site at instr %u is past the end of %s", What,
                           Pc, Func.Name.c_str()));
    return false;
  }
  if (!hasFlag(bc::opInfo(Func.Code[Pc].Opcode).Flags, bc::OpFlags::Call)) {
    reportRegion(Diags, F, Pc,
                 strFormat("%s site at instr %u is a %s, not a call", What,
                           Pc, bc::opName(Func.Code[Pc].Opcode)));
    return false;
  }
  return true;
}

} // namespace

std::vector<Diagnostic>
jumpstart::analysis::lintRegion(const bc::Repo &R, bc::BlockCache &Blocks,
                                const jit::RegionDescriptor &Region) {
  std::vector<Diagnostic> Diags;
  if (!Region.Func.valid() || Region.Func.raw() >= R.numFuncs()) {
    reportRegion(Diags, bc::FuncId(), Diagnostic::kNone,
                 strFormat("region root function #%u out of range",
                           Region.Func.raw()));
    return Diags;
  }

  auto InRegion = [&](bc::FuncId F) {
    return F == Region.Func ||
           std::find(Region.InlinedFuncs.begin(), Region.InlinedFuncs.end(),
                     F) != Region.InlinedFuncs.end();
  };

  for (const auto &[Key, Callee] : Region.InlinedCalls) {
    auto [F, Pc] = decodeSite(Key);
    if (!checkSite(R, F, Pc, "inlined-call", Diags))
      continue;
    if (!InRegion(F))
      reportRegion(Diags, F, Pc,
                   "inlined-call site's enclosing function is not part of "
                   "the region");
    if (!Callee.valid() || Callee.raw() >= R.numFuncs())
      reportRegion(Diags, F, Pc,
                   strFormat("inlined callee #%u out of range", Callee.raw()));
  }

  DevirtSites RootSites;
  for (const auto &[Key, Target] : Region.DevirtualizedCalls) {
    auto [F, Pc] = decodeSite(Key);
    if (!checkSite(R, F, Pc, "devirtualized-call", Diags))
      continue;
    const bc::Function &Func = R.func(F);
    if (Func.Code[Pc].Opcode != bc::Op::FCallObj) {
      reportRegion(Diags, F, Pc,
                   strFormat("devirtualized site at instr %u is a %s, not a "
                             "virtual call",
                             Pc, bc::opName(Func.Code[Pc].Opcode)));
      continue;
    }
    if (!Target.valid() || Target.raw() >= R.numFuncs()) {
      reportRegion(Diags, F, Pc,
                   strFormat("devirtualization target #%u out of range",
                             Target.raw()));
      continue;
    }
    if (F == Region.Func)
      RootSites.TargetAt[Pc] = Target.raw();
  }

  // Guard analysis over the root function's dataflow fixpoint.  Only the
  // guard-related kinds belong to the region report; the plain function
  // diagnostics are the type-flow passes' business (Linter::lintFunction).
  if (!RootSites.TargetAt.empty()) {
    const bc::Function &Root = R.func(Region.Func);
    for (Diagnostic &D :
         analyzeFunction(R, Root, Blocks.blocks(Region.Func), &RootSites))
      if (D.Kind == DiagKind::RedundantGuard ||
          D.Kind == DiagKind::GuardNeverPasses)
        Diags.push_back(std::move(D));
  }
  return Diags;
}

std::vector<Diagnostic>
jumpstart::analysis::lintTranslations(const bc::Repo &R,
                                      bc::BlockCache &Blocks,
                                      const jit::TransDb &Db,
                                      const WholeProgram *WP) {
  std::vector<Diagnostic> Diags;
  // The facts store is only needed (and only built) when a translation
  // actually elided a guard; the caller may share a pre-built one.
  std::unique_ptr<WholeProgram> OwnedWP;
  auto Facts = [&]() -> const jit::ProvenFacts & {
    if (!WP) {
      OwnedWP = std::make_unique<WholeProgram>(R);
      WP = OwnedWP.get();
    }
    return *WP->jitFacts();
  };
  auto Report = [&](const jit::Translation &T, std::string Message) {
    Diagnostic D;
    D.Sev = Severity::Error;
    D.Kind = DiagKind::TranslationInconsistent;
    D.Func = T.Unit ? T.Unit->Func : bc::FuncId();
    D.Message = strFormat("translation #%u (%s): %s", T.Id,
                          transKindName(T.Kind), Message.c_str());
    Diags.push_back(D);
  };

  for (const std::unique_ptr<jit::Translation> &TP : Db.all()) {
    const jit::Translation &T = *TP;
    const jit::VasmUnit &Unit = *T.Unit;
    size_t NumVBlocks = Unit.Blocks.size();

    if (!Unit.Func.valid() || Unit.Func.raw() >= R.numFuncs()) {
      Report(T, strFormat("function #%u out of range", Unit.Func.raw()));
      continue;
    }

    for (size_t B = 0; B < NumVBlocks; ++B) {
      const jit::VBlock &VB = Unit.Blocks[B];
      if (VB.Taken != jit::VBlock::kNoSucc && VB.Taken >= NumVBlocks)
        Report(T, strFormat("vasm block %zu taken-successor %u out of range",
                            B, VB.Taken));
      if (VB.Fallthru != jit::VBlock::kNoSucc && VB.Fallthru >= NumVBlocks)
        Report(T,
               strFormat("vasm block %zu fallthrough-successor %u out of "
                         "range",
                         B, VB.Fallthru));
    }

    // Every bytecode block of the function and of each inlined callee must
    // lower to a Vasm block (Lower.cpp maps them unconditionally); a hole
    // would strand the shadow tracer mid-translation.
    auto CheckMapped = [&](bc::FuncId F) {
      const bc::BlockList &BL = Blocks.blocks(F);
      for (uint32_t B = 0; B < BL.numBlocks(); ++B) {
        uint32_t VB = Unit.findBlock(F, B);
        if (VB == jit::VasmUnit::kNoBlock)
          Report(T, strFormat("bytecode block %u of %s has no vasm block", B,
                              R.func(F).Name.c_str()));
        else if (VB >= NumVBlocks)
          Report(T,
                 strFormat("bytecode block %u of %s maps to vasm block %u, "
                           "out of range",
                           B, R.func(F).Name.c_str(), VB));
      }
    };
    CheckMapped(Unit.Func);
    for (bc::FuncId Inlined : Unit.Inlined) {
      if (!Inlined.valid() || Inlined.raw() >= R.numFuncs()) {
        Report(T, strFormat("inlined function #%u out of range",
                            Inlined.raw()));
        continue;
      }
      CheckMapped(Inlined);
    }

    for (const jit::VasmUnit::CallEdge &E : Unit.CallEdges)
      if (E.Src >= NumVBlocks || E.Dst >= NumVBlocks)
        Report(T, strFormat("call edge %u->%u out of range", E.Src, E.Dst));

    // Re-prove every elided guard.  The lowering recorded what it skipped
    // and why (ElidedGuard); an independent analysis run must reach the
    // same conclusion or the elision was unsound.
    for (const jit::VasmUnit::ElidedGuard &EG : Unit.ElidedGuards) {
      auto ReportElision = [&](std::string Message) {
        Diagnostic D;
        D.Sev = Severity::Error;
        D.Kind = DiagKind::ElisionUnproven;
        D.Func = bc::FuncId(static_cast<uint32_t>(EG.SiteKey >> 32));
        D.Instr = static_cast<uint32_t>(EG.SiteKey);
        D.Message = strFormat("translation #%u: %s", T.Id, Message.c_str());
        Diags.push_back(D);
      };
      uint32_t FRaw = static_cast<uint32_t>(EG.SiteKey >> 32);
      uint32_t Pc = static_cast<uint32_t>(EG.SiteKey);
      if (FRaw >= R.numFuncs() ||
          Pc >= R.func(bc::FuncId(FRaw)).Code.size()) {
        ReportElision(strFormat("elided guard site func#%u:i%u out of range",
                                FRaw, Pc));
        continue;
      }
      if (EG.ProofKind >
          static_cast<uint8_t>(jit::GuardProof::TypeProven)) {
        ReportElision(strFormat("elided guard carries unknown proof kind %u",
                                EG.ProofKind));
        continue;
      }
      auto Proof = static_cast<jit::GuardProof>(EG.ProofKind);
      const jit::ProvenFacts &PF = Facts();
      if (Proof == jit::GuardProof::TypeProven) {
        auto It = PF.ProvenMasks.find(EG.SiteKey);
        if (It == PF.ProvenMasks.end())
          ReportElision(strFormat(
              "type guard elided but the analysis proves no mask at i%u",
              Pc));
        else if (It->second == 0 || (It->second & ~EG.Target) != 0)
          ReportElision(strFormat(
              "type guard elided with checked set 0x%02x but the analysis "
              "proves mask 0x%02x",
              EG.Target, It->second));
      } else {
        auto It = PF.ProvenCalls.find(EG.SiteKey);
        if (It == PF.ProvenCalls.end())
          ReportElision(strFormat(
              "%s class guard elided but the site has no proven-call fact",
              guardProofName(Proof)));
        else if (It->second.Target != EG.Target)
          ReportElision(strFormat(
              "%s class guard elided for target #%u but the analysis "
              "proves target #%u",
              guardProofName(Proof), EG.Target, It->second.Target));
        else if (Proof == jit::GuardProof::ExactRecv &&
                 It->second.RecvCls != EG.ClsOrMask)
          ReportElision(strFormat(
              "exact-receiver guard elided for class #%u but the analysis "
              "proves class #%u",
              EG.ClsOrMask, It->second.RecvCls));
      }
    }

    if (T.Placed) {
      if (T.BlockAddrs.size() != NumVBlocks)
        Report(T, strFormat("placed with %zu block addresses for %zu blocks",
                            T.BlockAddrs.size(), NumVBlocks));
      if (T.JumpElided.size() != NumVBlocks)
        Report(T, strFormat("placed with %zu jump-elision flags for %zu "
                            "blocks",
                            T.JumpElided.size(), NumVBlocks));
    }
  }
  return Diags;
}
