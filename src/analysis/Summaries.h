//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up interprocedural function summaries.
///
/// For every function the store keeps a FuncSummary: the return-value
/// lattice element, per-parameter type demands, transitive effect bits
/// (heap writes, native calls) and allocation escape -- plus the full
/// per-site SiteFacts the abstract-type fixpoint proved.
///
/// Evaluation walks the call graph's strongly-connected components
/// bottom-up.  Acyclic components converge in one pass (every callee's
/// summary is final before the caller runs); recursive components iterate
/// optimistically from Bottom return values until the component's returns
/// stabilize, with a generous bound (the lattice height is tiny) and a
/// Top fallback should it ever trip.
///
/// The store implements TypeFlow's SummaryQuery, so the per-function
/// dataflow that *computes* the facts is the same pass that *consumes*
/// callee summaries -- one code path, interprocedural by construction.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_SUMMARIES_H
#define JUMPSTART_ANALYSIS_SUMMARIES_H

#include "analysis/CallGraph.h"
#include "analysis/TypeFlow.h"

#include <vector>

namespace jumpstart::analysis {

/// What the whole-program analysis knows about one function.
struct FuncSummary {
  /// Join of all reachable returns; Bottom = provably never returns.
  AbstractValue Ret = AbstractValue::bottom();
  /// Per-parameter non-faulting type masks (see SiteFacts::ParamDemands).
  std::vector<uint8_t> ParamDemands;
  /// May the function (transitively) write a property or container slot?
  bool WritesHeap = false;
  /// May the function (transitively) invoke a native builtin?
  bool CallsNative = false;
  /// May an allocation made here (transitively) escape its frame?
  bool EscapesAllocs = false;
  /// Effect-free: no heap writes, no native calls, no escaping allocs.
  bool pure() const { return !WritesHeap && !CallsNative && !EscapesAllocs; }
};

class SummaryStore final : public SummaryQuery {
public:
  /// Runs the bottom-up fixpoint over \p CG's components.  \p CG (and the
  /// repo behind it) must outlive the store.
  explicit SummaryStore(const CallGraph &CG);

  const FuncSummary &summary(bc::FuncId F) const {
    return Summaries[F.raw()];
  }

  /// The per-site facts proven for \p F during the final summary round.
  const SiteFacts &facts(bc::FuncId F) const { return Facts[F.raw()]; }

  /// Rounds the slowest recursive component took to stabilize (1 for an
  /// acyclic program); exposed for tests and the jslint report.
  uint32_t maxRounds() const { return MaxRounds; }

  //===--------------------------------------------------------------------===
  // SummaryQuery.
  //===--------------------------------------------------------------------===

  AbstractValue returnOf(bc::FuncId Callee) const override;
  AbstractValue methodReturn(bc::StringId Name,
                             bc::ClassId Exact) const override;

private:
  const CallGraph &CG;
  std::vector<FuncSummary> Summaries;
  std::vector<SiteFacts> Facts;
  uint32_t MaxRounds = 0;

  void analyzeComponent(const std::vector<bc::FuncId> &Comp, bool Recursive);
  void propagateEffects(const std::vector<bc::FuncId> &Comp);
};

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_SUMMARIES_H
