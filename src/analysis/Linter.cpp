//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/Linter.h"

#include "bytecode/Verifier.h"

using namespace jumpstart;
using namespace jumpstart::analysis;

std::vector<Diagnostic> Linter::lintFunction(bc::FuncId F) {
  std::vector<Diagnostic> Diags;
  const bc::Function &Func = R.func(F);

  // Pass zero: the structural verifier.  Its issues become Structural
  // errors, and any of them voids the dataflow passes' preconditions
  // (consistent stack depths, in-range targets), so stop here on failure.
  for (const bc::VerifyIssue &Issue :
       bc::verifyFunctionIssues(R, Func, NumBuiltins)) {
    Diagnostic D;
    D.Sev = Severity::Error;
    D.Kind = DiagKind::Structural;
    D.Func = F;
    D.Instr = Issue.Instr == bc::VerifyIssue::kNoInstr ? Diagnostic::kNone
                                                       : Issue.Instr;
    D.Message = Issue.Message;
    Diags.push_back(std::move(D));
  }
  if (!Diags.empty())
    return Diags;

  for (Diagnostic &D : analyzeFunction(R, Func, Blocks.blocks(F)))
    Diags.push_back(std::move(D));
  return Diags;
}

std::vector<Diagnostic> Linter::lintRepo() {
  std::vector<Diagnostic> Diags;
  for (size_t I = 0; I < R.numFuncs(); ++I)
    for (Diagnostic &D : lintFunction(bc::FuncId(static_cast<uint32_t>(I))))
      Diags.push_back(std::move(D));
  return Diags;
}
