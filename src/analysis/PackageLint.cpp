//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/PackageLint.h"

#include "analysis/CallGraph.h"
#include "analysis/TypeFlow.h"
#include "support/StringUtil.h"

#include <algorithm>

#include <set>
#include <string_view>

using namespace jumpstart;
using namespace jumpstart::analysis;

namespace {

class PackageSink {
public:
  explicit PackageSink(std::vector<Diagnostic> &Diags) : Diags(Diags) {}

  __attribute__((format(printf, 3, 4))) void
  structure(bc::FuncId Func, const char *Fmt, ...) {
    va_list Ap;
    va_start(Ap, Fmt);
    add(DiagKind::PackageStructure, Func, strFormatV(Fmt, Ap));
    va_end(Ap);
  }

  __attribute__((format(printf, 3, 4))) void
  semantics(bc::FuncId Func, const char *Fmt, ...) {
    va_list Ap;
    va_start(Ap, Fmt);
    add(DiagKind::PackageSemantics, Func, strFormatV(Fmt, Ap));
    va_end(Ap);
  }

  __attribute__((format(printf, 3, 4))) void
  contradiction(bc::FuncId Func, const char *Fmt, ...) {
    va_list Ap;
    va_start(Ap, Fmt);
    add(DiagKind::SummaryContradiction, Func, strFormatV(Fmt, Ap));
    va_end(Ap);
  }

private:
  void add(DiagKind Kind, bc::FuncId Func, std::string Message) {
    Diagnostic D;
    D.Sev = Severity::Error;
    D.Kind = Kind;
    D.Func = Func;
    D.Message = std::move(Message);
    Diags.push_back(std::move(D));
  }

  std::vector<Diagnostic> &Diags;
};

/// Instructions whose index may legitimately key a LoadTypes observation
/// (the interpreter's onTypeObserve call sites).
bool observesTypes(bc::Op O) {
  switch (O) {
  case bc::Op::GetElem:
  case bc::Op::SetElem:
  case bc::Op::Add:
  case bc::Op::Sub:
  case bc::Op::Mul:
  case bc::Op::Div:
  case bc::Op::Mod:
  case bc::Op::CmpEq:
  case bc::Op::CmpNe:
  case bc::Op::CmpLt:
  case bc::Op::CmpLe:
  case bc::Op::CmpGt:
  case bc::Op::CmpGe:
  case bc::Op::GetProp:
    return true;
  default:
    return false;
  }
}

/// Checks each raw id in \p Ids against \p Limit and rejects duplicates.
void checkIdList(PackageSink &Sink, const std::vector<uint32_t> &Ids,
                 size_t Limit, const char *What) {
  std::set<uint32_t> Seen;
  for (uint32_t Id : Ids) {
    if (Id >= Limit)
      Sink.structure(bc::FuncId(), "%s entry #%u out of range (limit %zu)",
                     What, Id, Limit);
    else if (!Seen.insert(Id).second)
      Sink.structure(bc::FuncId(), "%s lists #%u twice", What, Id);
  }
}

/// Splits a "Class::a" or "Class::a::b" key on "::".  \returns the parts,
/// empty on malformed keys (too few/many separators or empty components).
std::vector<std::string_view> splitPropKey(std::string_view Key,
                                           size_t WantParts) {
  std::vector<std::string_view> Parts;
  size_t Pos = 0;
  while (true) {
    size_t Sep = Key.find("::", Pos);
    if (Sep == std::string_view::npos) {
      Parts.push_back(Key.substr(Pos));
      break;
    }
    Parts.push_back(Key.substr(Pos, Sep - Pos));
    Pos = Sep + 2;
  }
  if (Parts.size() != WantParts)
    return {};
  for (std::string_view P : Parts)
    if (P.empty())
      return {};
  return Parts;
}

void lintFuncProfile(const bc::Repo &R, bc::BlockCache &Blocks,
                     const profile::FuncProfile &FP, const CallGraph *CG,
                     PackageSink &Sink) {
  bc::FuncId Func(FP.Func);
  const bc::Function &F = R.func(Func);

  size_t NumBlocks = Blocks.blocks(Func).numBlocks();
  if (FP.BlockCounts.size() > NumBlocks)
    Sink.structure(Func, "%zu block counters for a function with %zu blocks",
                   FP.BlockCounts.size(), NumBlocks);

  if (FP.ParamTypes.size() > bc::kMaxCallArgs)
    Sink.structure(Func, "%zu parameter-type observations (max arity is %u)",
                   FP.ParamTypes.size(), bc::kMaxCallArgs);

  for (const auto &[Pc, Targets] : FP.CallTargets) {
    if (Pc >= F.Code.size()) {
      Sink.structure(Func, "call-target profile at instr %u, past the end",
                     Pc);
      continue;
    }
    if (F.Code[Pc].Opcode != bc::Op::FCallObj) {
      Sink.semantics(Func,
                     "call-target profile at instr %u, but that is a %s, "
                     "not a virtual call",
                     Pc, bc::opName(F.Code[Pc].Opcode));
      continue;
    }
    for (const auto &[Target, Count] : Targets) {
      (void)Count;
      if (Target >= R.numFuncs()) {
        Sink.structure(Func,
                       "call-target profile at instr %u names function "
                       "#%u, out of range",
                       Pc, Target);
        continue;
      }
      // CHA cross-check: a dynamically-observed callee must be one of
      // the method name's class-hierarchy resolutions.
      if (CG) {
        const std::vector<bc::FuncId> &Res =
            CG->resolutions(F.Code[Pc].strImm());
        if (!std::binary_search(Res.begin(), Res.end(), bc::FuncId(Target)))
          Sink.contradiction(
              Func,
              "call-target profile at instr %u claims callee %s, which no "
              "class resolves \"%s\" to",
              Pc, R.func(bc::FuncId(Target)).Name.c_str(),
              R.str(F.Code[Pc].strImm()).c_str());
      }
    }
  }

  for (const auto &[Pc, Obs] : FP.LoadTypes) {
    (void)Obs;
    if (Pc >= F.Code.size())
      Sink.structure(Func, "type observation at instr %u, past the end", Pc);
    else if (!observesTypes(F.Code[Pc].Opcode))
      Sink.semantics(Func,
                     "type observation at instr %u, but %s never observes "
                     "types",
                     Pc, bc::opName(F.Code[Pc].Opcode));
  }
}

void lintOptProfile(const bc::Repo &R, const profile::OptProfile &Opt,
                    const CallGraph *CG, PackageSink &Sink) {
  for (const auto &[FuncRaw, Counts] : Opt.VasmBlockCounts) {
    (void)Counts;
    if (FuncRaw >= R.numFuncs())
      Sink.structure(bc::FuncId(),
                     "vasm block counters for function #%u, out of range",
                     FuncRaw);
  }
  for (const auto &[Arc, Count] : Opt.CallArcs) {
    (void)Count;
    if (Arc.first >= R.numFuncs() || Arc.second >= R.numFuncs()) {
      Sink.structure(bc::FuncId(), "call arc %u->%u out of range", Arc.first,
                     Arc.second);
      continue;
    }
    // Every dynamically-profiled arc must correspond to a call *path* in
    // the static graph (which over-approximates dispatch).  Not an edge:
    // the tier-2 profiler attributes calls to the physical caller, so
    // inlining legitimately collapses A -> B -> C into an A -> C arc.  No
    // path at all means the profile records a call the bytecode cannot
    // make.
    if (CG && !CG->reaches(bc::FuncId(Arc.first), bc::FuncId(Arc.second)))
      Sink.contradiction(bc::FuncId(Arc.first),
                         "profiled call arc %s -> %s has no static "
                         "call path",
                         R.func(bc::FuncId(Arc.first)).Name.c_str(),
                         R.func(bc::FuncId(Arc.second)).Name.c_str());
  }

  auto CheckProp = [&](std::string_view ClsName, std::string_view PropName,
                       const std::string &Key) {
    bc::ClassId C = R.findClass(ClsName);
    if (!C.valid()) {
      Sink.semantics(bc::FuncId(),
                     "property counter \"%s\" names unknown class",
                     Key.c_str());
      return;
    }
    bc::StringId Prop = R.findString(PropName);
    if (!Prop.valid() || !classHasProp(R, C, Prop))
      Sink.semantics(bc::FuncId(),
                     "property counter \"%s\" names a property %s does not "
                     "declare",
                     Key.c_str(), R.cls(C).Name.c_str());
  };

  for (const auto &[Key, Count] : Opt.PropAccessCounts) {
    (void)Count;
    std::vector<std::string_view> Parts = splitPropKey(Key, 2);
    if (Parts.empty()) {
      Sink.structure(bc::FuncId(), "malformed property counter key \"%s\"",
                     Key.c_str());
      continue;
    }
    CheckProp(Parts[0], Parts[1], Key);
  }

  for (const auto &[Key, Count] : Opt.PropAffinity) {
    (void)Count;
    std::vector<std::string_view> Parts = splitPropKey(Key, 3);
    if (Parts.empty()) {
      Sink.structure(bc::FuncId(), "malformed property-affinity key \"%s\"",
                     Key.c_str());
      continue;
    }
    if (Parts[2] < Parts[1]) {
      Sink.structure(bc::FuncId(),
                     "property-affinity key \"%s\" is not in canonical "
                     "(lexicographic) order",
                     Key.c_str());
      continue;
    }
    CheckProp(Parts[0], Parts[1], Key);
    CheckProp(Parts[0], Parts[2], Key);
  }
}

} // namespace

std::vector<Diagnostic>
jumpstart::analysis::lintPackage(const bc::Repo &R, bc::BlockCache &Blocks,
                                 const profile::ProfilePackage &Pkg,
                                 const CallGraph *CG) {
  std::vector<Diagnostic> Diags;
  PackageSink Sink(Diags);

  checkIdList(Sink, Pkg.Preload.Units, R.numUnits(), "unit preload list");
  checkIdList(Sink, Pkg.Preload.Strings, R.numStrings(),
              "string preload list");
  checkIdList(Sink, Pkg.Preload.Classes, R.numClasses(),
              "class preload list");

  std::set<uint32_t> SeenFuncs;
  for (const profile::FuncProfile &FP : Pkg.Funcs) {
    if (FP.Func >= R.numFuncs()) {
      Sink.structure(bc::FuncId(), "profile for function #%u, out of range",
                     FP.Func);
      continue;
    }
    if (!SeenFuncs.insert(FP.Func).second) {
      Sink.structure(bc::FuncId(FP.Func),
                     "duplicate profile for function #%u", FP.Func);
      continue;
    }
    lintFuncProfile(R, Blocks, FP, CG, Sink);
  }

  lintOptProfile(R, Pkg.Opt, CG, Sink);

  checkIdList(Sink, Pkg.Intermediate.FuncOrder, R.numFuncs(),
              "function order");
  checkIdList(Sink, Pkg.Intermediate.LiveFuncs, R.numFuncs(),
              "live-function list");
  return Diags;
}
