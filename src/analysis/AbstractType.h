//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-type lattice of the dataflow framework.
///
/// An AbstractValue is a set of possible runtime types (a bitmask over
/// runtime::Type) refined with two facts that the passes actually need:
/// the exact class when the value is known to be an object from a single
/// NewObj, and the constant when the value is a known boolean.  Join is
/// set union (refinements survive only when both sides agree); the lattice
/// has finite height, so the fixpoint terminates without widening, but a
/// widen() that jumps to Top is provided for the framework's join-budget
/// escape hatch.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_ABSTRACTTYPE_H
#define JUMPSTART_ANALYSIS_ABSTRACTTYPE_H

#include "bytecode/Ids.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>

namespace jumpstart::analysis {

/// Three-valued truth, for branch-feasibility pruning.
enum class Tribool : uint8_t { False, True, Unknown };

/// The mask bit representing runtime type \p T.
constexpr uint8_t typeBit(runtime::Type T) {
  return static_cast<uint8_t>(1u << static_cast<unsigned>(T));
}

class AbstractValue {
public:
  static constexpr uint8_t bit(runtime::Type T) { return typeBit(T); }

  static constexpr uint8_t kNullBit = typeBit(runtime::Type::Null);
  static constexpr uint8_t kBoolBit = typeBit(runtime::Type::Bool);
  static constexpr uint8_t kIntBit = typeBit(runtime::Type::Int);
  static constexpr uint8_t kDblBit = typeBit(runtime::Type::Dbl);
  static constexpr uint8_t kStrBit = typeBit(runtime::Type::Str);
  static constexpr uint8_t kVecBit = typeBit(runtime::Type::Vec);
  static constexpr uint8_t kDictBit = typeBit(runtime::Type::Dict);
  static constexpr uint8_t kObjBit = typeBit(runtime::Type::Obj);
  static constexpr uint8_t kAllBits = 0xFF;
  /// Types arith() accepts without yielding null.
  static constexpr uint8_t kNumericish = kBoolBit | kIntBit | kDblBit;

  /// Default-constructed: Bottom (no possible value; unreached code).
  AbstractValue() = default;

  static AbstractValue bottom() { return AbstractValue(); }
  static AbstractValue top() { return ofMask(kAllBits); }
  static AbstractValue ofMask(uint8_t Mask) {
    AbstractValue V;
    V.Mask = Mask;
    return V;
  }
  static AbstractValue ofType(runtime::Type T) { return ofMask(bit(T)); }
  static AbstractValue obj(bc::ClassId Cls) {
    AbstractValue V;
    V.Mask = kObjBit;
    V.ClsRaw = Cls.raw();
    return V;
  }
  static AbstractValue boolConst(bool B) {
    AbstractValue V;
    V.Mask = kBoolBit;
    V.BoolVal = B ? 1 : 0;
    return V;
  }

  uint8_t mask() const { return Mask; }
  bool isBottom() const { return Mask == 0; }
  bool isTop() const { return Mask == kAllBits && ClsRaw == bc::ClassId::kInvalid; }

  /// May the value have type \p T at runtime?
  bool mayBe(runtime::Type T) const { return (Mask & bit(T)) != 0; }

  /// Is the value certainly of type \p T?  (Bottom answers false: nothing
  /// is certain about unreachable values.)
  bool definitely(runtime::Type T) const { return Mask == bit(T); }

  /// Is every possible type within \p Bits?  False for Bottom.
  bool subsetOf(uint8_t Bits) const {
    return Mask != 0 && (Mask & ~Bits) == 0;
  }

  /// The exact object class, when the value is definitely an object
  /// allocated by a known NewObj; invalid otherwise.
  bc::ClassId exactClass() const {
    return Mask == kObjBit ? bc::ClassId(ClsRaw) : bc::ClassId();
  }

  /// The known boolean constant as Tribool (Unknown unless the value is
  /// definitely a bool with a known constant).
  Tribool boolConstant() const {
    if (Mask == kBoolBit && BoolVal >= 0)
      return BoolVal ? Tribool::True : Tribool::False;
    return Tribool::Unknown;
  }

  /// Truthiness under runtime::toBool, when statically decidable: null is
  /// always falsy, objects always truthy, and known bool constants decide
  /// themselves.  Int/Dbl/Str/Vec/Dict are value-dependent -> Unknown.
  Tribool truthiness() const {
    if (subsetOf(kNullBit))
      return Tribool::False;
    if (subsetOf(kObjBit))
      return Tribool::True;
    return boolConstant();
  }

  /// Least upper bound.  \returns true when *this changed.
  bool join(const AbstractValue &O) {
    if (O.Mask == 0)
      return false;
    if (Mask == 0) {
      *this = O;
      return true;
    }
    AbstractValue Old = *this;
    Mask |= O.Mask;
    if (ClsRaw != O.ClsRaw)
      ClsRaw = bc::ClassId::kInvalid;
    if (BoolVal != O.BoolVal)
      BoolVal = -1;
    return Mask != Old.Mask || ClsRaw != Old.ClsRaw || BoolVal != Old.BoolVal;
  }

  /// Widening: any strict growth jumps straight to Top.  The lattice is
  /// finite so this is never needed for termination; the framework applies
  /// it only past its join budget as a safety valve for future domains.
  static AbstractValue widen(const AbstractValue &Old,
                             const AbstractValue &New) {
    if (Old.isBottom())
      return New;
    if ((New.Mask & ~Old.Mask) != 0)
      return top();
    AbstractValue V = Old;
    V.join(New);
    return V;
  }

  friend bool operator==(const AbstractValue &A, const AbstractValue &B) {
    return A.Mask == B.Mask && A.ClsRaw == B.ClsRaw && A.BoolVal == B.BoolVal;
  }
  friend bool operator!=(const AbstractValue &A, const AbstractValue &B) {
    return !(A == B);
  }

  /// Renders like "{int|double}" or "{obj(K3)}" for diagnostics.
  std::string str() const {
    if (Mask == 0)
      return "{bottom}";
    if (isTop())
      return "{any}";
    std::string Out = "{";
    for (unsigned I = 0; I < 8; ++I) {
      if (!(Mask & (1u << I)))
        continue;
      if (Out.size() > 1)
        Out += "|";
      Out += runtime::typeName(static_cast<runtime::Type>(I));
    }
    Out += "}";
    return Out;
  }

private:
  uint8_t Mask = 0;
  uint32_t ClsRaw = bc::ClassId::kInvalid;
  int8_t BoolVal = -1;
};

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_ABSTRACTTYPE_H
