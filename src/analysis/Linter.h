//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single entry point to the static-analysis subsystem.
///
/// A Linter wraps a bytecode repo and exposes every check as a method
/// returning analysis::Diagnostic lists:
///
///   - lintFunction / lintRepo: pass zero (the structural verifier,
///     bc::verifyFunctionIssues) followed by the abstract-type dataflow
///     passes (analysis/TypeFlow.h).  Structural errors suppress the
///     dataflow run -- the solver's preconditions do not hold.
///   - lintRegion / lintTranslations: JIT cross-validation
///     (analysis/RegionCheck.h).
///   - lintPackage: profile-package semantic consistency
///     (analysis/PackageLint.h), the strict half of section VI-B's
///     validation.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_LINTER_H
#define JUMPSTART_ANALYSIS_LINTER_H

#include "analysis/Diagnostic.h"
#include "analysis/PackageLint.h"
#include "analysis/RegionCheck.h"
#include "analysis/TypeFlow.h"
#include "analysis/WholeProgram.h"
#include "bytecode/BlockCache.h"

#include <memory>

namespace jumpstart::analysis {

class Linter {
public:
  /// \p NumBuiltins bounds NativeCall ordinals (pass
  /// runtime::BuiltinTable::standard().size() for the standard table).
  Linter(const bc::Repo &R, uint32_t NumBuiltins)
      : R(R), Blocks(R), NumBuiltins(NumBuiltins) {}

  /// Structural verification plus all dataflow passes over one function.
  std::vector<Diagnostic> lintFunction(bc::FuncId F);

  /// lintFunction over every function of the repo.
  std::vector<Diagnostic> lintRepo();

  /// See analysis/RegionCheck.h.
  std::vector<Diagnostic> lintRegion(const jit::RegionDescriptor &Region) {
    return analysis::lintRegion(R, Blocks, Region);
  }
  std::vector<Diagnostic> lintTranslations(const jit::TransDb &Db) {
    return analysis::lintTranslations(R, Blocks, Db, WP.get());
  }

  /// See analysis/PackageLint.h.  \p CrossCheckCallGraph additionally
  /// validates profiled call targets/arcs against the whole-program call
  /// graph (SummaryContradiction findings); it builds the facts store on
  /// first use.
  std::vector<Diagnostic> lintPackage(const profile::ProfilePackage &Pkg,
                                      bool CrossCheckCallGraph = false) {
    return analysis::lintPackage(
        R, Blocks, Pkg,
        CrossCheckCallGraph ? &wholeProgram().callGraph() : nullptr);
  }

  /// The whole-program facts store (call graph + interprocedural
  /// summaries + distilled JIT facts), built lazily on first use and
  /// cached for the Linter's lifetime.
  const WholeProgram &wholeProgram() {
    if (!WP)
      WP = std::make_unique<WholeProgram>(R);
    return *WP;
  }

  const bc::Repo &repo() const { return R; }

private:
  const bc::Repo &R;
  bc::BlockCache Blocks;
  uint32_t NumBuiltins;
  std::unique_ptr<WholeProgram> WP;
};

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_LINTER_H
