//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single entry point to the static-analysis subsystem.
///
/// A Linter wraps a bytecode repo and exposes every check as a method
/// returning analysis::Diagnostic lists:
///
///   - lintFunction / lintRepo: pass zero (the structural verifier,
///     bc::verifyFunctionIssues) followed by the abstract-type dataflow
///     passes (analysis/TypeFlow.h).  Structural errors suppress the
///     dataflow run -- the solver's preconditions do not hold.
///   - lintRegion / lintTranslations: JIT cross-validation
///     (analysis/RegionCheck.h).
///   - lintPackage: profile-package semantic consistency
///     (analysis/PackageLint.h), the strict half of section VI-B's
///     validation.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_ANALYSIS_LINTER_H
#define JUMPSTART_ANALYSIS_LINTER_H

#include "analysis/Diagnostic.h"
#include "analysis/PackageLint.h"
#include "analysis/RegionCheck.h"
#include "analysis/TypeFlow.h"
#include "bytecode/BlockCache.h"

namespace jumpstart::analysis {

class Linter {
public:
  /// \p NumBuiltins bounds NativeCall ordinals (pass
  /// runtime::BuiltinTable::standard().size() for the standard table).
  Linter(const bc::Repo &R, uint32_t NumBuiltins)
      : R(R), Blocks(R), NumBuiltins(NumBuiltins) {}

  /// Structural verification plus all dataflow passes over one function.
  std::vector<Diagnostic> lintFunction(bc::FuncId F);

  /// lintFunction over every function of the repo.
  std::vector<Diagnostic> lintRepo();

  /// See analysis/RegionCheck.h.
  std::vector<Diagnostic> lintRegion(const jit::RegionDescriptor &Region) {
    return analysis::lintRegion(R, Blocks, Region);
  }
  std::vector<Diagnostic> lintTranslations(const jit::TransDb &Db) {
    return analysis::lintTranslations(R, Blocks, Db);
  }

  /// See analysis/PackageLint.h.
  std::vector<Diagnostic> lintPackage(const profile::ProfilePackage &Pkg) {
    return analysis::lintPackage(R, Blocks, Pkg);
  }

  const bc::Repo &repo() const { return R; }

private:
  const bc::Repo &R;
  bc::BlockCache Blocks;
  uint32_t NumBuiltins;
};

} // namespace jumpstart::analysis

#endif // JUMPSTART_ANALYSIS_LINTER_H
