//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "obs/Observability.h"

using namespace jumpstart::obs;

Observability &jumpstart::obs::defaultObservability() {
  static Observability Default;
  return Default;
}
