//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics registry: counters, gauges, fixed-bucket histograms and
/// virtual-time series, keyed by interned metric names + label sets.
///
/// This is the single source of truth for every number the figure
/// harnesses print: the VM server, the JIT tiering controller, the
/// Jump-Start seeder/consumer workflows and the fleet simulator all write
/// here, and bench/FigureCommon.h reads back.  Design points:
///
///  - Names and label sets are interned once; the hot paths (counter
///    increments per request) hold a reference and pay nothing.
///  - Lookup structures are ordered (std::map), and snapshots are sorted
///    by (name, canonical label string), so exports are deterministic --
///    byte-identical across identical runs, never dependent on hash-table
///    iteration order.
///  - Histograms have *fixed* bucket bounds chosen at creation: two runs
///    always produce structurally identical output.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_OBS_METRICSREGISTRY_H
#define JUMPSTART_OBS_METRICSREGISTRY_H

#include "support/Stats.h"

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace jumpstart::obs {

/// One metric label (key, value).
using Label = std::pair<std::string, std::string>;
/// A set of labels.  Canonicalized (sorted by key) when interned.
using LabelSet = std::vector<Label>;

/// Monotonically increasing integer metric.
class Counter {
public:
  void inc(uint64_t N = 1) { V += N; }
  uint64_t value() const { return V; }

private:
  uint64_t V = 0;
};

/// Last-value-wins floating-point metric.
class Gauge {
public:
  void set(double Value) { V = Value; }
  double value() const { return V; }

private:
  double V = 0;
};

/// Fixed-bucket histogram: counts of observations <= each upper bound,
/// plus an overflow bucket, a running sum and a count.
class Histogram {
public:
  explicit Histogram(std::vector<double> UpperBounds)
      : Bounds(std::move(UpperBounds)), Counts(Bounds.size() + 1, 0) {}

  void observe(double Value);

  /// Adds \p Other's observations bucket-wise.  Both histograms must
  /// have identical bounds (they do when both sides created the metric
  /// through the same code path, which fixed-bounds creation enforces).
  void merge(const Histogram &Other);

  uint64_t count() const { return N; }
  double sum() const { return Sum; }
  double mean() const { return N ? Sum / static_cast<double>(N) : 0; }
  const std::vector<double> &bounds() const { return Bounds; }
  /// Count in bucket \p I; I == bounds().size() is the overflow bucket.
  uint64_t bucketCount(size_t I) const { return Counts[I]; }

private:
  std::vector<double> Bounds; ///< ascending upper bounds
  std::vector<uint64_t> Counts;
  double Sum = 0;
  uint64_t N = 0;
};

/// The registry.  All accessors create the metric on first use and return
/// a stable reference (metrics are never deleted).
class MetricsRegistry {
public:
  enum class Kind : uint8_t { Counter, Gauge, Histogram, Series };

  /// Interns \p Name and \returns its id (stable for the registry's
  /// lifetime).
  uint32_t internName(std::string_view Name);
  const std::string &name(uint32_t NameId) const { return Names[NameId]; }

  /// Interns \p Labels (canonicalized: sorted by key) and \returns its id.
  uint32_t internLabels(const LabelSet &Labels);
  const LabelSet &labels(uint32_t LabelsId) const {
    return LabelSets[LabelsId];
  }
  /// The canonical rendering used for ordering and exports:
  /// "k1=v1,k2=v2".
  const std::string &labelsKey(uint32_t LabelsId) const {
    return LabelKeys[LabelsId];
  }

  Counter &counter(std::string_view Name, const LabelSet &Labels = {});
  Gauge &gauge(std::string_view Name, const LabelSet &Labels = {});
  /// \p UpperBounds must be ascending; they are fixed on first creation
  /// (subsequent calls with the same name+labels return the existing
  /// histogram regardless of the bounds argument).
  Histogram &histogram(std::string_view Name, const LabelSet &Labels,
                       const std::vector<double> &UpperBounds);
  /// A metric-over-virtual-time curve (the figures' y-axes).
  TimeSeries &series(std::string_view Name, const LabelSet &Labels = {});

  /// Read-only lookups: nullptr when the metric was never created.
  const Counter *findCounter(std::string_view Name,
                             const LabelSet &Labels = {}) const;
  const Gauge *findGauge(std::string_view Name,
                         const LabelSet &Labels = {}) const;
  const Histogram *findHistogram(std::string_view Name,
                                 const LabelSet &Labels = {}) const;
  const TimeSeries *findSeries(std::string_view Name,
                               const LabelSet &Labels = {}) const;

  /// The recorded values of a series in recording order, or empty when
  /// no such series exists.  The bridge from registry curves to the
  /// stats/ changepoint and warmup-classification analyses.
  std::vector<double> seriesValues(std::string_view Name,
                                   const LabelSet &Labels = {}) const;

  /// One registered metric instance, for enumeration/export.
  struct Entry {
    Kind MetricKind;
    uint32_t NameId;
    uint32_t LabelsId;
    /// Index into the kind-specific storage.
    uint32_t Index;
  };

  /// All metrics, sorted by (kind-independent name, canonical label
  /// string, kind) -- the deterministic export order.
  std::vector<Entry> sortedEntries() const;

  const Counter &counterAt(uint32_t Index) const { return Counters[Index]; }
  const Gauge &gaugeAt(uint32_t Index) const { return Gauges[Index]; }
  const Histogram &histogramAt(uint32_t Index) const {
    return Histograms[Index];
  }
  const TimeSeries &seriesAt(uint32_t Index) const { return Series[Index]; }

  size_t numMetrics() const { return Index.size(); }

  /// Folds \p Other into this registry: counters add, gauges last-wins,
  /// histograms merge bucket-wise, series points append (in \p Other's
  /// recording order).  Metrics absent here are created.  \p Other's
  /// entries are visited in its deterministic sortedEntries() order, so
  /// merging shard registries in a fixed order yields identical output
  /// regardless of how the shards were produced (the shard-then-merge
  /// half of the fleet's host parallelism).
  void mergeFrom(const MetricsRegistry &Other);

private:
  using MetricKey = std::tuple<uint8_t, uint32_t, uint32_t>;

  /// \returns the storage index for (Kind, Name, Labels), creating the
  /// metric via \p Create when absent.
  template <typename CreateFn>
  uint32_t findOrCreate(Kind K, std::string_view Name,
                        const LabelSet &Labels, CreateFn Create);
  const Entry *find(Kind K, std::string_view Name,
                    const LabelSet &Labels) const;

  std::vector<std::string> Names;       ///< NameId -> name
  std::map<std::string, uint32_t, std::less<>> NameIds;
  std::vector<LabelSet> LabelSets;      ///< LabelsId -> labels
  std::vector<std::string> LabelKeys;   ///< LabelsId -> canonical key
  std::map<std::string, uint32_t> LabelIds;

  // Deques: stable references across growth.
  std::deque<Counter> Counters;
  std::deque<Gauge> Gauges;
  std::deque<Histogram> Histograms;
  std::deque<TimeSeries> Series;

  std::map<MetricKey, Entry> Index;
};

/// The standard latency buckets (virtual seconds) used for request-time
/// histograms across the repository.
const std::vector<double> &latencyBucketsSeconds();

} // namespace jumpstart::obs

#endif // JUMPSTART_OBS_METRICSREGISTRY_H
