//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability context: one clock, one metrics registry, one tracer.
///
/// Components take an `Observability *` (null means "don't record") and
/// thread it downward; harnesses that want a shared sink for several
/// servers (the figure binaries, the fleet simulator) create one and pass
/// it everywhere.  resolve() maps null to a process-global default so that
/// casual callers (examples, ad-hoc tools) still aggregate somewhere.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_OBS_OBSERVABILITY_H
#define JUMPSTART_OBS_OBSERVABILITY_H

#include "obs/Clock.h"
#include "obs/MetricsRegistry.h"
#include "obs/Tracer.h"

namespace jumpstart::obs {

struct Observability {
  VirtualClock Clock;
  MetricsRegistry Metrics;
  Tracer Trace{Clock};
};

/// The process-global fallback context.
Observability &defaultObservability();

/// \returns \p Obs when non-null, else the process-global default.
inline Observability &resolve(Observability *Obs) {
  return Obs ? *Obs : defaultObservability();
}

} // namespace jumpstart::obs

#endif // JUMPSTART_OBS_OBSERVABILITY_H
