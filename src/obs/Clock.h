//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual clock behind every observability timestamp.
///
/// The whole repository runs on virtual time (cost units converted to
/// seconds), never wall-clock time; "Virtual Machine Warmup Blows Hot and
/// Cold" (Barrett et al.) is the cautionary tale for what happens
/// otherwise.  The clock is a plain mutable double: the component that
/// owns the passage of time (the fleet simulator's tick loop, a server's
/// startup sequence, a seeder's request loop) advances or sets it, and
/// every span/sample recorded against the same obs::Observability reads
/// it.  Two identical runs therefore produce byte-identical traces.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_OBS_CLOCK_H
#define JUMPSTART_OBS_CLOCK_H

namespace jumpstart::obs {

/// Virtual seconds since the start of the current experiment.
class VirtualClock {
public:
  double now() const { return NowSec; }

  void advance(double Seconds) { NowSec += Seconds; }

  /// Absolute set.  Rewinding is allowed: a harness that boots several
  /// servers restarts the clock at zero for each run (each run is its own
  /// trace track).
  void set(double Seconds) { NowSec = Seconds; }

private:
  double NowSec = 0;
};

} // namespace jumpstart::obs

#endif // JUMPSTART_OBS_CLOCK_H
