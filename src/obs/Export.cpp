//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"

#include "obs/Observability.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace jumpstart;
using namespace jumpstart::obs;
using support::Status;
using support::StatusCode;

std::string jumpstart::obs::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

/// %.9g round-trips every value the virtual-time simulation produces and
/// never prints locale- or platform-dependent digits.
static std::string num(double V) { return strFormat("%.9g", V); }

static void appendLabelsJson(std::string &Out, const LabelSet &Labels) {
  Out += "{";
  bool First = true;
  for (const Label &L : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(L.first) + "\":\"" + jsonEscape(L.second) + "\"";
  }
  Out += "}";
}

std::string jumpstart::obs::metricsToJsonLines(const MetricsRegistry &Metrics) {
  std::string Out;
  for (const MetricsRegistry::Entry &E : Metrics.sortedEntries()) {
    Out += "{\"name\":\"" + jsonEscape(Metrics.name(E.NameId)) + "\"";
    const LabelSet &Labels = Metrics.labels(E.LabelsId);
    if (!Labels.empty()) {
      Out += ",\"labels\":";
      appendLabelsJson(Out, Labels);
    }
    switch (E.MetricKind) {
    case MetricsRegistry::Kind::Counter:
      Out += ",\"type\":\"counter\",\"value\":" +
             strFormat("%llu", static_cast<unsigned long long>(
                                   Metrics.counterAt(E.Index).value()));
      break;
    case MetricsRegistry::Kind::Gauge:
      Out += ",\"type\":\"gauge\",\"value\":" +
             num(Metrics.gaugeAt(E.Index).value());
      break;
    case MetricsRegistry::Kind::Histogram: {
      const Histogram &H = Metrics.histogramAt(E.Index);
      Out += ",\"type\":\"histogram\",\"count\":" +
             strFormat("%llu", static_cast<unsigned long long>(H.count())) +
             ",\"sum\":" + num(H.sum()) + ",\"bounds\":[";
      for (size_t I = 0; I < H.bounds().size(); ++I) {
        if (I)
          Out += ",";
        Out += num(H.bounds()[I]);
      }
      Out += "],\"buckets\":[";
      for (size_t I = 0; I <= H.bounds().size(); ++I) {
        if (I)
          Out += ",";
        Out += strFormat(
            "%llu", static_cast<unsigned long long>(H.bucketCount(I)));
      }
      Out += "]";
      break;
    }
    case MetricsRegistry::Kind::Series: {
      const TimeSeries &S = Metrics.seriesAt(E.Index);
      Out += ",\"type\":\"series\",\"points\":[";
      bool First = true;
      for (const auto &P : S.points()) {
        if (!First)
          Out += ",";
        First = false;
        Out += "[" + num(P.TimeSec) + "," + num(P.Value) + "]";
      }
      Out += "]";
      break;
    }
    }
    Out += "}\n";
  }
  return Out;
}

static void appendArgsJson(std::string &Out,
                           const std::vector<std::string> &Args) {
  Out += "[";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"" + jsonEscape(Args[I]) + "\"";
  }
  Out += "]";
}

std::string jumpstart::obs::traceToJsonLines(const Tracer &Trace) {
  std::string Out;
  for (const Span &S : Trace.spans()) {
    Out += "{\"name\":\"" + jsonEscape(S.Name) + "\",\"cat\":\"" +
           jsonEscape(S.Cat) + "\",\"track\":\"" +
           jsonEscape(Trace.trackName(S.Track)) + "\"";
    Out += ",\"start\":" + num(S.StartSec);
    if (S.Instant)
      Out += ",\"instant\":true";
    else
      Out += ",\"dur\":" + num(S.DurSec);
    if (S.Parent >= 0)
      Out += ",\"parent\":" + strFormat("%d", S.Parent);
    if (!S.Args.empty()) {
      Out += ",\"args\":";
      appendArgsJson(Out, S.Args);
    }
    Out += "}\n";
  }
  return Out;
}

std::string jumpstart::obs::traceToChromeJson(const Tracer &Trace) {
  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (uint32_t T = 0; T < Trace.numTracks(); ++T) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + strFormat("%u", T) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           jsonEscape(Trace.trackName(T)) + "\"}}";
  }
  for (const Span &S : Trace.spans()) {
    if (!First)
      Out += ",\n";
    First = false;
    // Virtual seconds -> trace microseconds.
    std::string Ts = num(S.StartSec * 1e6);
    if (S.Instant)
      Out += "{\"ph\":\"i\",\"s\":\"t\"";
    else
      Out += "{\"ph\":\"X\",\"dur\":" + num(S.DurSec * 1e6);
    Out += ",\"pid\":1,\"tid\":" + strFormat("%u", S.Track) +
           ",\"ts\":" + Ts + ",\"cat\":\"" + jsonEscape(S.Cat) +
           "\",\"name\":\"" + jsonEscape(S.Name) + "\"";
    if (!S.Args.empty()) {
      Out += ",\"args\":{\"notes\":";
      appendArgsJson(Out, S.Args);
      Out += "}";
    }
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

Status jumpstart::obs::writeTextFile(const std::string &Path,
                                     const std::string &Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return support::errorStatus(StatusCode::IoError, "cannot open %s",
                                Path.c_str());
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  int CloseRc = std::fclose(F);
  if (Written != Contents.size() || CloseRc != 0)
    return support::errorStatus(StatusCode::IoError, "short write to %s",
                                Path.c_str());
  return support::Status::okStatus();
}

Status jumpstart::obs::exportAll(const Observability &Obs,
                                 const std::string &Prefix) {
  JUMPSTART_RETURN_IF_ERROR(
      writeTextFile(Prefix + ".metrics.jsonl", metricsToJsonLines(Obs.Metrics)));
  JUMPSTART_RETURN_IF_ERROR(
      writeTextFile(Prefix + ".trace.jsonl", traceToJsonLines(Obs.Trace)));
  JUMPSTART_RETURN_IF_ERROR(
      writeTextFile(Prefix + ".chrome.json", traceToChromeJson(Obs.Trace)));
  return support::Status::okStatus();
}
