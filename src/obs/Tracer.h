//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The span/event tracer.
///
/// Spans cover the phases the paper cares about: request execution, tier-1
/// and tier-2 compiles, retranslate-all, package publish / fetch /
/// validate / accept / reject, and the push phases C1-C3.  Every span is
/// stamped from the shared VirtualClock, so two identical runs emit
/// byte-identical traces.
///
/// Tracks play the role wall-clock tracers give to threads: each server
/// (and each server's JIT worker pool) allocates a track, spans on a track
/// nest via a per-track open-span stack, and the chrome://tracing exporter
/// maps tracks to tids so the UI draws one lane per track.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_OBS_TRACER_H
#define JUMPSTART_OBS_TRACER_H

#include "obs/Clock.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jumpstart::obs {

/// One recorded span or instant event.
struct Span {
  std::string Name;
  /// Category: "request", "jit", "package", "push", "phase", ...
  std::string Cat;
  double StartSec = 0;
  /// Duration; 0 with Instant set means a point event.
  double DurSec = 0;
  uint32_t Track = 0;
  /// Index into the tracer's span vector of the enclosing open span on the
  /// same track, or -1 at top level.
  int32_t Parent = -1;
  bool Instant = false;
  /// Optional "k=v" argument strings, exported verbatim.
  std::vector<std::string> Args;
};

class Tracer {
public:
  explicit Tracer(const VirtualClock &Clock) : Clock(Clock) {}

  /// Allocates a new track (a lane in the trace viewer) with a stable
  /// display name.
  uint32_t allocTrack(std::string Name);
  const std::string &trackName(uint32_t Track) const {
    return TrackNames[Track];
  }
  size_t numTracks() const { return TrackNames.size(); }

  /// Opens a span at the clock's current time; nests under the track's
  /// innermost open span.  \returns the span's index (pass to endSpan).
  size_t beginSpan(std::string Name, std::string Cat, uint32_t Track);
  /// Closes the span at the clock's current time.  Spans on the same track
  /// must close innermost-first.
  void endSpan(size_t SpanIndex);

  /// Records a span whose duration is already known, without touching the
  /// open-span stack (used for queued work whose cost is known at
  /// completion, e.g. JIT jobs).  Nests under the track's innermost open
  /// span, if any.
  size_t completeSpan(std::string Name, std::string Cat, uint32_t Track,
                      double StartSec, double DurSec,
                      std::vector<std::string> Args = {});

  /// A zero-duration point event at the clock's current time.
  size_t instant(std::string Name, std::string Cat, uint32_t Track,
                 std::vector<std::string> Args = {});

  /// Attaches a "k=v" argument to an already-recorded span.
  void addArg(size_t SpanIndex, std::string Arg) {
    Spans[SpanIndex].Args.push_back(std::move(Arg));
  }

  const std::vector<Span> &spans() const { return Spans; }
  size_t numSpans() const { return Spans.size(); }

private:
  int32_t currentParent(uint32_t Track) const;

  const VirtualClock &Clock;
  std::vector<Span> Spans;
  std::vector<std::string> TrackNames;
  /// Per-track stack of indices of open spans.
  std::vector<std::vector<size_t>> OpenStacks;
};

/// RAII span: opens in the constructor, closes in the destructor.  The
/// tracer pointer may be null (component running without observability),
/// making instrumented code unconditional at call sites.
class ScopedSpan {
public:
  ScopedSpan(Tracer *T, std::string Name, std::string Cat, uint32_t Track)
      : T(T) {
    if (T)
      Index = T->beginSpan(std::move(Name), std::move(Cat), Track);
  }
  ~ScopedSpan() {
    if (T)
      T->endSpan(Index);
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  void addArg(std::string Arg) {
    if (T)
      T->addArg(Index, std::move(Arg));
  }

private:
  Tracer *T;
  size_t Index = 0;
};

} // namespace jumpstart::obs

#endif // JUMPSTART_OBS_TRACER_H
