//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exporters for the observability subsystem.
///
/// Two formats:
///  - JSON-lines: one self-describing JSON object per metric / per span,
///    in deterministic order -- diffable, greppable, and the substrate of
///    the byte-identical-runs guarantee.
///  - chrome://tracing: a single JSON document loadable in Chrome's
///    about:tracing or Perfetto; tracks become named threads.
///
/// All numbers are printed with %.9g, all strings escaped per JSON; given
/// identical inputs the output is byte-identical on any platform with IEEE
/// doubles.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_OBS_EXPORT_H
#define JUMPSTART_OBS_EXPORT_H

#include "support/Status.h"

#include <string>

namespace jumpstart::obs {

class MetricsRegistry;
class Tracer;
struct Observability;

/// One JSON object per line per metric, sorted by (name, labels, kind).
std::string metricsToJsonLines(const MetricsRegistry &Metrics);

/// One JSON object per line per span, in recording order (which is itself
/// deterministic under the virtual clock).
std::string traceToJsonLines(const Tracer &Trace);

/// A chrome://tracing "traceEvents" document: complete ("ph":"X") and
/// instant ("ph":"i") events with ts/dur in virtual microseconds, plus
/// thread_name metadata naming each track.
std::string traceToChromeJson(const Tracer &Trace);

/// JSON string escaping (quotes not included).
std::string jsonEscape(std::string_view S);

/// Writes \p Contents to \p Path, whole-file.
support::Status writeTextFile(const std::string &Path,
                              const std::string &Contents);

/// Writes `<Prefix>.metrics.jsonl`, `<Prefix>.trace.jsonl` and
/// `<Prefix>.chrome.json`.
support::Status exportAll(const Observability &Obs,
                          const std::string &Prefix);

} // namespace jumpstart::obs

#endif // JUMPSTART_OBS_EXPORT_H
