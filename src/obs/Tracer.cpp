//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "obs/Tracer.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::obs;

uint32_t Tracer::allocTrack(std::string Name) {
  uint32_t Track = static_cast<uint32_t>(TrackNames.size());
  TrackNames.push_back(std::move(Name));
  OpenStacks.emplace_back();
  return Track;
}

int32_t Tracer::currentParent(uint32_t Track) const {
  const auto &Stack = OpenStacks[Track];
  return Stack.empty() ? -1 : static_cast<int32_t>(Stack.back());
}

size_t Tracer::beginSpan(std::string Name, std::string Cat, uint32_t Track) {
  alwaysAssert(Track < TrackNames.size(), "beginSpan on unallocated track");
  size_t Index = Spans.size();
  Span S;
  S.Name = std::move(Name);
  S.Cat = std::move(Cat);
  S.StartSec = Clock.now();
  S.Track = Track;
  S.Parent = currentParent(Track);
  Spans.push_back(std::move(S));
  OpenStacks[Track].push_back(Index);
  return Index;
}

void Tracer::endSpan(size_t SpanIndex) {
  Span &S = Spans[SpanIndex];
  auto &Stack = OpenStacks[S.Track];
  alwaysAssert(!Stack.empty() && Stack.back() == SpanIndex,
               "spans on a track must close innermost-first");
  Stack.pop_back();
  S.DurSec = Clock.now() - S.StartSec;
}

size_t Tracer::completeSpan(std::string Name, std::string Cat, uint32_t Track,
                            double StartSec, double DurSec,
                            std::vector<std::string> Args) {
  alwaysAssert(Track < TrackNames.size(), "completeSpan on unallocated track");
  size_t Index = Spans.size();
  Span S;
  S.Name = std::move(Name);
  S.Cat = std::move(Cat);
  S.StartSec = StartSec;
  S.DurSec = DurSec;
  S.Track = Track;
  S.Parent = currentParent(Track);
  S.Args = std::move(Args);
  Spans.push_back(std::move(S));
  return Index;
}

size_t Tracer::instant(std::string Name, std::string Cat, uint32_t Track,
                       std::vector<std::string> Args) {
  alwaysAssert(Track < TrackNames.size(), "instant on unallocated track");
  size_t Index = Spans.size();
  Span S;
  S.Name = std::move(Name);
  S.Cat = std::move(Cat);
  S.StartSec = Clock.now();
  S.Track = Track;
  S.Parent = currentParent(Track);
  S.Instant = true;
  S.Args = std::move(Args);
  Spans.push_back(std::move(S));
  return Index;
}
