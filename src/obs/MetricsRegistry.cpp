//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"

#include "support/Assert.h"

#include <algorithm>

using namespace jumpstart;
using namespace jumpstart::obs;

void Histogram::observe(double Value) {
  ++N;
  Sum += Value;
  // Buckets are few (tens); linear scan keeps the common small-value case
  // one compare.
  size_t I = 0;
  while (I < Bounds.size() && Value > Bounds[I])
    ++I;
  ++Counts[I];
}

void Histogram::merge(const Histogram &Other) {
  alwaysAssert(Bounds == Other.Bounds,
               "merging histograms with different bucket bounds");
  for (size_t I = 0; I < Counts.size(); ++I)
    Counts[I] += Other.Counts[I];
  Sum += Other.Sum;
  N += Other.N;
}

uint32_t MetricsRegistry::internName(std::string_view Name) {
  auto It = NameIds.find(Name);
  if (It != NameIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Names.size());
  Names.emplace_back(Name);
  NameIds.emplace(Names.back(), Id);
  return Id;
}

uint32_t MetricsRegistry::internLabels(const LabelSet &Labels) {
  LabelSet Canonical = Labels;
  std::sort(Canonical.begin(), Canonical.end());
  std::string Key;
  for (const Label &L : Canonical) {
    if (!Key.empty())
      Key += ',';
    Key += L.first;
    Key += '=';
    Key += L.second;
  }
  auto It = LabelIds.find(Key);
  if (It != LabelIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(LabelSets.size());
  LabelSets.push_back(std::move(Canonical));
  LabelKeys.push_back(Key);
  LabelIds.emplace(std::move(Key), Id);
  return Id;
}

template <typename CreateFn>
uint32_t MetricsRegistry::findOrCreate(Kind K, std::string_view Name,
                                       const LabelSet &Labels,
                                       CreateFn Create) {
  uint32_t NameId = internName(Name);
  uint32_t LabelsId = internLabels(Labels);
  MetricKey Key{static_cast<uint8_t>(K), NameId, LabelsId};
  auto It = Index.find(Key);
  if (It != Index.end())
    return It->second.Index;
  uint32_t StorageIndex = Create();
  Index.emplace(Key, Entry{K, NameId, LabelsId, StorageIndex});
  return StorageIndex;
}

const MetricsRegistry::Entry *
MetricsRegistry::find(Kind K, std::string_view Name,
                      const LabelSet &Labels) const {
  auto NameIt = NameIds.find(Name);
  if (NameIt == NameIds.end())
    return nullptr;
  LabelSet Canonical = Labels;
  std::sort(Canonical.begin(), Canonical.end());
  std::string Key;
  for (const Label &L : Canonical) {
    if (!Key.empty())
      Key += ',';
    Key += L.first;
    Key += '=';
    Key += L.second;
  }
  auto LabelIt = LabelIds.find(Key);
  if (LabelIt == LabelIds.end())
    return nullptr;
  auto It = Index.find(
      MetricKey{static_cast<uint8_t>(K), NameIt->second, LabelIt->second});
  return It == Index.end() ? nullptr : &It->second;
}

Counter &MetricsRegistry::counter(std::string_view Name,
                                  const LabelSet &Labels) {
  uint32_t I = findOrCreate(Kind::Counter, Name, Labels, [&] {
    Counters.emplace_back();
    return static_cast<uint32_t>(Counters.size() - 1);
  });
  return Counters[I];
}

Gauge &MetricsRegistry::gauge(std::string_view Name, const LabelSet &Labels) {
  uint32_t I = findOrCreate(Kind::Gauge, Name, Labels, [&] {
    Gauges.emplace_back();
    return static_cast<uint32_t>(Gauges.size() - 1);
  });
  return Gauges[I];
}

Histogram &MetricsRegistry::histogram(std::string_view Name,
                                      const LabelSet &Labels,
                                      const std::vector<double> &UpperBounds) {
  uint32_t I = findOrCreate(Kind::Histogram, Name, Labels, [&] {
    alwaysAssert(std::is_sorted(UpperBounds.begin(), UpperBounds.end()),
                 "histogram bounds must ascend");
    Histograms.emplace_back(UpperBounds);
    return static_cast<uint32_t>(Histograms.size() - 1);
  });
  return Histograms[I];
}

TimeSeries &MetricsRegistry::series(std::string_view Name,
                                    const LabelSet &Labels) {
  uint32_t I = findOrCreate(Kind::Series, Name, Labels, [&] {
    Series.emplace_back(std::string(Name));
    return static_cast<uint32_t>(Series.size() - 1);
  });
  return Series[I];
}

const Counter *MetricsRegistry::findCounter(std::string_view Name,
                                            const LabelSet &Labels) const {
  const Entry *E = find(Kind::Counter, Name, Labels);
  return E ? &Counters[E->Index] : nullptr;
}

const Gauge *MetricsRegistry::findGauge(std::string_view Name,
                                        const LabelSet &Labels) const {
  const Entry *E = find(Kind::Gauge, Name, Labels);
  return E ? &Gauges[E->Index] : nullptr;
}

const Histogram *
MetricsRegistry::findHistogram(std::string_view Name,
                               const LabelSet &Labels) const {
  const Entry *E = find(Kind::Histogram, Name, Labels);
  return E ? &Histograms[E->Index] : nullptr;
}

const TimeSeries *MetricsRegistry::findSeries(std::string_view Name,
                                              const LabelSet &Labels) const {
  const Entry *E = find(Kind::Series, Name, Labels);
  return E ? &Series[E->Index] : nullptr;
}

std::vector<double> MetricsRegistry::seriesValues(std::string_view Name,
                                                  const LabelSet &Labels) const {
  const TimeSeries *S = findSeries(Name, Labels);
  return S ? S->values() : std::vector<double>{};
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::sortedEntries() const {
  std::vector<Entry> Entries;
  Entries.reserve(Index.size());
  for (const auto &[Key, E] : Index)
    Entries.push_back(E);
  std::sort(Entries.begin(), Entries.end(),
            [&](const Entry &A, const Entry &B) {
              if (Names[A.NameId] != Names[B.NameId])
                return Names[A.NameId] < Names[B.NameId];
              if (LabelKeys[A.LabelsId] != LabelKeys[B.LabelsId])
                return LabelKeys[A.LabelsId] < LabelKeys[B.LabelsId];
              return static_cast<uint8_t>(A.MetricKind) <
                     static_cast<uint8_t>(B.MetricKind);
            });
  return Entries;
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &Other) {
  for (const Entry &E : Other.sortedEntries()) {
    const std::string &Name = Other.name(E.NameId);
    const LabelSet &Labels = Other.labels(E.LabelsId);
    switch (E.MetricKind) {
    case Kind::Counter:
      counter(Name, Labels).inc(Other.counterAt(E.Index).value());
      break;
    case Kind::Gauge:
      gauge(Name, Labels).set(Other.gaugeAt(E.Index).value());
      break;
    case Kind::Histogram: {
      const Histogram &H = Other.histogramAt(E.Index);
      histogram(Name, Labels, H.bounds()).merge(H);
      break;
    }
    case Kind::Series: {
      TimeSeries &S = series(Name, Labels);
      for (const TimePoint &P : Other.seriesAt(E.Index).points())
        S.record(P.TimeSec, P.Value);
      break;
    }
    }
  }
}

const std::vector<double> &jumpstart::obs::latencyBucketsSeconds() {
  static const std::vector<double> Buckets{
      0.0005, 0.001, 0.002, 0.005, 0.01, 0.02,
      0.05,   0.1,   0.2,   0.5,   1.0,  2.0};
  return Buckets;
}
