//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "sim/Branch.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::sim;

BranchPredictor::BranchPredictor(uint32_t TableSize) {
  alwaysAssert(TableSize > 0 && (TableSize & (TableSize - 1)) == 0,
               "predictor table size must be a power of two");
  Counters.assign(TableSize, 1); // weakly not-taken
  Mask = TableSize - 1;
}

bool BranchPredictor::predict(uint64_t Pc, bool Taken) {
  ++Branches;
  // Mix the PC so adjacent branches spread across the table.
  uint32_t Index = static_cast<uint32_t>((Pc >> 2) ^ (Pc >> 13)) & Mask;
  uint8_t &Counter = Counters[Index];
  bool Predicted = Counter >= 2;
  if (Taken) {
    if (Counter < 3)
      ++Counter;
  } else {
    if (Counter > 0)
      --Counter;
  }
  if (Predicted != Taken) {
    ++Mispredicts;
    return false;
  }
  return true;
}

void BranchPredictor::reset() {
  for (uint8_t &C : Counters)
    C = 1;
  Branches = 0;
  Mispredicts = 0;
}

TargetPredictor::TargetPredictor(uint32_t TableSize) {
  alwaysAssert(TableSize > 0 && (TableSize & (TableSize - 1)) == 0,
               "predictor table size must be a power of two");
  Targets.assign(TableSize, 0);
  Mask = TableSize - 1;
}

bool TargetPredictor::predict(uint64_t Pc, uint64_t Target) {
  ++Branches;
  uint32_t Index = static_cast<uint32_t>((Pc >> 2) ^ (Pc >> 11)) & Mask;
  uint64_t &Slot = Targets[Index];
  bool Correct = Slot == Target;
  Slot = Target;
  if (!Correct)
    ++Mispredicts;
  return Correct;
}

void TargetPredictor::reset() {
  for (uint64_t &T : Targets)
    T = 0;
  Branches = 0;
  Mispredicts = 0;
}
