//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::sim;

MachineSim::MachineSim(MachineConfig C)
    : Config(C), L1I(C.L1I), L1D(C.L1D), Llc(C.Llc),
      ITlb(C.ITlbEntries, C.ITlbWays, C.PageBytes),
      DTlb(C.DTlbEntries, C.DTlbWays, C.PageBytes),
      Direction(C.BranchTableSize), Indirect(C.BtbSize), Btb(C.BtbSize) {}

void MachineSim::fetch(uint64_t Addr, uint32_t SizeBytes) {
  ++Counters.Instructions;
  uint64_t First = Addr / Config.L1I.LineBytes;
  uint64_t Last = (Addr + (SizeBytes ? SizeBytes - 1 : 0)) /
                  Config.L1I.LineBytes;
  for (uint64_t Line = First; Line <= Last; ++Line) {
    uint64_t LineAddr = Line * Config.L1I.LineBytes;
    ++Counters.L1IAccesses;
    if (!L1I.access(LineAddr)) {
      ++Counters.L1IMisses;
      ++Counters.LlcAccesses;
      if (!Llc.access(LineAddr))
        ++Counters.LlcMisses;
    }
  }
  ++Counters.ITlbAccesses;
  if (!ITlb.access(Addr))
    ++Counters.ITlbMisses;
}

void MachineSim::dataAccess(uint64_t Addr, bool IsWrite) {
  (void)IsWrite; // writes and reads cost the same in this model
  ++Counters.L1DAccesses;
  if (!L1D.access(Addr)) {
    ++Counters.L1DMisses;
    ++Counters.LlcAccesses;
    if (!Llc.access(Addr))
      ++Counters.LlcMisses;
  }
  ++Counters.DTlbAccesses;
  if (!DTlb.access(Addr))
    ++Counters.DTlbMisses;
}

void MachineSim::condBranch(uint64_t Pc, bool Taken, uint64_t TargetAddr) {
  ++Counters.Branches;
  bool Miss = !Direction.predict(Pc, Taken);
  // Taken branches additionally need the BTB to supply the target in
  // time; a cold or clobbered entry stalls the fetch unit.
  if (Taken && !Btb.predict(Pc, TargetAddr))
    Miss = true;
  if (Miss)
    ++Counters.BranchMisses;
}

void MachineSim::indirectBranch(uint64_t Pc, uint64_t Target) {
  ++Counters.Branches;
  if (!Indirect.predict(Pc, Target))
    ++Counters.BranchMisses;
}

void MachineSim::reset() {
  L1I.reset();
  L1D.reset();
  Llc.reset();
  ITlb.reset();
  DTlb.reset();
  Direction.reset();
  Indirect.reset();
  Btb.reset();
  Counters = PerfCounters();
}

double MachineSim::cycles() const {
  double Cycles =
      static_cast<double>(Counters.Instructions) * Config.BaseCpi;
  Cycles += static_cast<double>(Counters.BranchMisses) *
            Config.BranchMissPenalty;
  Cycles += static_cast<double>(Counters.L1IMisses + Counters.L1DMisses) *
            Config.L1MissPenalty;
  Cycles += static_cast<double>(Counters.LlcMisses) * Config.LlcMissPenalty;
  Cycles += static_cast<double>(Counters.ITlbMisses + Counters.DTlbMisses) *
            Config.TlbMissPenalty;
  return Cycles;
}

double MachineSim::ipc() const {
  double C = cycles();
  if (C <= 0)
    return 0;
  return static_cast<double>(Counters.Instructions) / C;
}

std::string MachineSim::summary() const {
  return strFormat(
      "instr=%llu cycles=%.0f ipc=%.2f brMR=%.4f l1iMR=%.4f l1dMR=%.4f "
      "llcMR=%.4f itlbMR=%.4f dtlbMR=%.4f",
      static_cast<unsigned long long>(Counters.Instructions), cycles(),
      ipc(),
      Counters.Branches
          ? static_cast<double>(Counters.BranchMisses) / Counters.Branches
          : 0.0,
      Counters.L1IAccesses
          ? static_cast<double>(Counters.L1IMisses) / Counters.L1IAccesses
          : 0.0,
      Counters.L1DAccesses
          ? static_cast<double>(Counters.L1DMisses) / Counters.L1DAccesses
          : 0.0,
      Counters.LlcAccesses
          ? static_cast<double>(Counters.LlcMisses) / Counters.LlcAccesses
          : 0.0,
      Counters.ITlbAccesses
          ? static_cast<double>(Counters.ITlbMisses) / Counters.ITlbAccesses
          : 0.0,
      Counters.DTlbAccesses
          ? static_cast<double>(Counters.DTlbMisses) / Counters.DTlbAccesses
          : 0.0);
}
