//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-core machine model: caches + TLBs + branch predictors + a
/// cycle model, consuming the address trace of executing JITed code.
///
/// Geometry defaults approximate the paper's evaluation hardware (Intel
/// Xeon D-1581, Broadwell): 32 KB 8-way L1I and L1D, a per-core LLC slice,
/// 4 KB pages, bimodal direction prediction.  Absolute cycle counts are
/// not meant to match real silicon; the cycle model exists so relative
/// effects (the paper's speedup percentages) have a principled basis:
/// cycles = instructions * BaseCpi + sum(penalty * events).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SIM_MACHINE_H
#define JUMPSTART_SIM_MACHINE_H

#include "sim/Branch.h"
#include "sim/Cache.h"

#include <string>

namespace jumpstart::sim {

/// Machine geometry and penalty parameters.
struct MachineConfig {
  CacheConfig L1I{32 * 1024, 64, 8};
  CacheConfig L1D{32 * 1024, 64, 8};
  CacheConfig Llc{2 * 1024 * 1024, 64, 16};
  uint32_t ITlbEntries = 128;
  uint32_t ITlbWays = 4;
  uint32_t DTlbEntries = 64;
  uint32_t DTlbWays = 4;
  uint32_t PageBytes = 4096;
  uint32_t BranchTableSize = 4096;
  uint32_t BtbSize = 1024;

  // Cycle model.
  double BaseCpi = 0.4;
  double BranchMissPenalty = 14;
  double L1MissPenalty = 10;    ///< L1 miss that hits LLC.
  double LlcMissPenalty = 120;  ///< LLC miss to memory.
  double TlbMissPenalty = 25;   ///< Page walk.
};

/// Aggregated event counters read by the figure harnesses.
struct PerfCounters {
  uint64_t Instructions = 0;
  uint64_t Branches = 0;
  uint64_t BranchMisses = 0;
  uint64_t L1IAccesses = 0;
  uint64_t L1IMisses = 0;
  uint64_t L1DAccesses = 0;
  uint64_t L1DMisses = 0;
  uint64_t LlcAccesses = 0;
  uint64_t LlcMisses = 0;
  uint64_t ITlbAccesses = 0;
  uint64_t ITlbMisses = 0;
  uint64_t DTlbAccesses = 0;
  uint64_t DTlbMisses = 0;
};

/// The machine simulator.  The VM's execution tracer calls fetch(),
/// dataAccess(), condBranch() and indirectBranch() as laid-out code runs.
class MachineSim {
public:
  explicit MachineSim(MachineConfig Config = MachineConfig());

  /// Fetches \p SizeBytes of instructions starting at \p Addr (accesses
  /// every line the range touches) and retires one instruction.
  void fetch(uint64_t Addr, uint32_t SizeBytes);

  /// A data access at \p Addr.
  void dataAccess(uint64_t Addr, bool IsWrite);

  /// A conditional branch at \p Pc resolving to \p Taken, jumping to
  /// \p TargetAddr when taken.  Mispredictions come from two sources:
  /// the bimodal direction predictor, and BTB misses on taken branches
  /// (a taken branch whose target is not cached stalls the front end;
  /// this is how basic-block layout -- which converts taken branches
  /// into fallthroughs -- reduces branch misses, as in the paper's
  /// Figure 5).
  void condBranch(uint64_t Pc, bool Taken, uint64_t TargetAddr = 0);

  /// An indirect transfer at \p Pc to \p Target (virtual dispatch,
  /// returns).
  void indirectBranch(uint64_t Pc, uint64_t Target);

  /// Clears all state and counters.
  void reset();

  const PerfCounters &counters() const { return Counters; }

  /// Estimated cycles under the configured penalty model.
  double cycles() const;

  /// Estimated instructions per cycle.
  double ipc() const;

  /// Renders counters as a one-line summary for the bench harnesses.
  std::string summary() const;

  const MachineConfig &config() const { return Config; }

private:
  MachineConfig Config;
  Cache L1I;
  Cache L1D;
  Cache Llc;
  Tlb ITlb;
  Tlb DTlb;
  BranchPredictor Direction;
  TargetPredictor Indirect;
  TargetPredictor Btb;
  PerfCounters Counters;
};

} // namespace jumpstart::sim

#endif // JUMPSTART_SIM_MACHINE_H
