//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace-driven set-associative cache and TLB models.
///
/// These reproduce the micro-architectural metrics of the paper's Figure 5
/// (I-cache, D-cache, LLC, I-TLB and D-TLB miss rates) by replaying the
/// simulated instruction-fetch and data address streams produced when
/// executing laid-out JIT code.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SIM_CACHE_H
#define JUMPSTART_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

namespace jumpstart::sim {

/// Geometry of one cache level.
struct CacheConfig {
  uint32_t SizeBytes = 32 * 1024;
  uint32_t LineBytes = 64;
  uint32_t Ways = 8;
};

/// A set-associative cache with true-LRU replacement.
class Cache {
public:
  explicit Cache(CacheConfig Config);

  /// Accesses the line containing \p Addr.  \returns true on hit; on miss
  /// the line is installed.
  bool access(uint64_t Addr);

  /// Invalidates all lines and zeroes statistics.
  void reset();

  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }
  double missRate() const {
    return Accesses ? static_cast<double>(Misses) /
                          static_cast<double>(Accesses)
                    : 0.0;
  }
  const CacheConfig &config() const { return Config; }

private:
  struct Way {
    uint64_t Tag = ~0ull;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  CacheConfig Config;
  uint32_t NumSets;
  uint32_t LineShift;
  std::vector<Way> Ways; ///< NumSets * Config.Ways, row-major by set.
  uint64_t Clock = 0;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
};

/// A TLB: structurally a cache of page translations.
class Tlb {
public:
  Tlb(uint32_t Entries, uint32_t Ways, uint32_t PageBytes = 4096);

  bool access(uint64_t Addr);
  void reset() { Impl.reset(); }

  uint64_t accesses() const { return Impl.accesses(); }
  uint64_t misses() const { return Impl.misses(); }
  double missRate() const { return Impl.missRate(); }

private:
  Cache Impl;
};

} // namespace jumpstart::sim

#endif // JUMPSTART_SIM_CACHE_H
