//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch-prediction models: a bimodal (2-bit saturating counter)
/// direction predictor for conditional branches and a BTB-style target
/// predictor for indirect calls (virtual method dispatch).
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_SIM_BRANCH_H
#define JUMPSTART_SIM_BRANCH_H

#include <cstdint>
#include <vector>

namespace jumpstart::sim {

/// Bimodal direction predictor: a table of 2-bit saturating counters
/// indexed by branch PC.
class BranchPredictor {
public:
  explicit BranchPredictor(uint32_t TableSize = 4096);

  /// Records the branch at \p Pc resolving to \p Taken.  \returns true
  /// when the prediction was correct.
  bool predict(uint64_t Pc, bool Taken);

  void reset();

  uint64_t branches() const { return Branches; }
  uint64_t mispredicts() const { return Mispredicts; }
  double missRate() const {
    return Branches ? static_cast<double>(Mispredicts) /
                          static_cast<double>(Branches)
                    : 0.0;
  }

private:
  std::vector<uint8_t> Counters; ///< 0..3; >=2 predicts taken.
  uint32_t Mask;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;
};

/// Indirect-target predictor (BTB): remembers the last target per source
/// PC; a different target is a mispredict.
class TargetPredictor {
public:
  explicit TargetPredictor(uint32_t TableSize = 1024);

  /// Records an indirect transfer \p Pc -> \p Target.  \returns true when
  /// the target matched the prediction.
  bool predict(uint64_t Pc, uint64_t Target);

  void reset();

  uint64_t branches() const { return Branches; }
  uint64_t mispredicts() const { return Mispredicts; }
  double missRate() const {
    return Branches ? static_cast<double>(Mispredicts) /
                          static_cast<double>(Branches)
                    : 0.0;
  }

private:
  std::vector<uint64_t> Targets;
  uint32_t Mask;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;
};

} // namespace jumpstart::sim

#endif // JUMPSTART_SIM_BRANCH_H
