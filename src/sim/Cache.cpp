//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include "support/Assert.h"

using namespace jumpstart;
using namespace jumpstart::sim;

static uint32_t log2Floor(uint32_t V) {
  uint32_t R = 0;
  while (V >>= 1)
    ++R;
  return R;
}

Cache::Cache(CacheConfig Config) : Config(Config) {
  alwaysAssert(Config.LineBytes > 0 && Config.Ways > 0 &&
                   Config.SizeBytes >= Config.LineBytes * Config.Ways,
               "invalid cache geometry");
  NumSets = Config.SizeBytes / (Config.LineBytes * Config.Ways);
  alwaysAssert((NumSets & (NumSets - 1)) == 0,
               "number of sets must be a power of two");
  alwaysAssert((Config.LineBytes & (Config.LineBytes - 1)) == 0,
               "line size must be a power of two");
  LineShift = log2Floor(Config.LineBytes);
  Ways.assign(static_cast<size_t>(NumSets) * Config.Ways, Way());
}

bool Cache::access(uint64_t Addr) {
  ++Accesses;
  ++Clock;
  uint64_t Line = Addr >> LineShift;
  uint32_t Set = static_cast<uint32_t>(Line & (NumSets - 1));
  uint64_t Tag = Line >> log2Floor(NumSets);
  Way *SetWays = &Ways[static_cast<size_t>(Set) * Config.Ways];

  Way *Victim = &SetWays[0];
  for (uint32_t W = 0; W < Config.Ways; ++W) {
    Way &Candidate = SetWays[W];
    if (Candidate.Valid && Candidate.Tag == Tag) {
      Candidate.LastUse = Clock;
      return true;
    }
    if (!Candidate.Valid) {
      Victim = &Candidate;
    } else if (Victim->Valid && Candidate.LastUse < Victim->LastUse) {
      Victim = &Candidate;
    }
  }

  ++Misses;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = Clock;
  return false;
}

void Cache::reset() {
  for (Way &W : Ways)
    W = Way();
  Clock = 0;
  Accesses = 0;
  Misses = 0;
}

Tlb::Tlb(uint32_t Entries, uint32_t WaysCount, uint32_t PageBytes)
    : Impl(CacheConfig{Entries * PageBytes, PageBytes, WaysCount}) {}

bool Tlb::access(uint64_t Addr) { return Impl.access(Addr); }
