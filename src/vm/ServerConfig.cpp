//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//

#include "vm/Server.h"

#include "support/Assert.h"
#include "support/StringUtil.h"

using namespace jumpstart;
using namespace jumpstart::vm;

namespace jumpstart::vm {

std::vector<std::string> validateServerConfig(const ServerConfig &C) {
  std::vector<std::string> Diags;
  if (C.Cores < 1)
    Diags.push_back("Cores must be >= 1");
  if (C.JitWorkerCores < 1)
    Diags.push_back(
        "JitWorkerCores must be >= 1 (grantJitTime divides by it)");
  if (!(C.UnitsPerCorePerSecond > 0))
    Diags.push_back("UnitsPerCorePerSecond must be > 0");
  if (C.UnitLoadCost < 0)
    Diags.push_back("UnitLoadCost must be >= 0");
  if (C.DeserializeCostPerByte < 0)
    Diags.push_back("DeserializeCostPerByte must be >= 0");
  if (C.RuntimeWarmupPenalty < 0)
    Diags.push_back("RuntimeWarmupPenalty must be >= 0");
  if (C.RuntimeWarmupPenalty > 0 && !(C.RuntimeWarmupTau > 0))
    Diags.push_back(
        "RuntimeWarmupTau must be > 0 when RuntimeWarmupPenalty is set");
  if (C.ServeWorkers < 1)
    Diags.push_back("ServeWorkers must be >= 1");
  if (C.Admission.MaxInFlight != 0 &&
      C.Admission.MaxInFlight < C.ServeWorkers)
    Diags.push_back(strFormat(
        "Admission.MaxInFlight (%u) below ServeWorkers (%u) leaves "
        "execution contexts permanently idle",
        C.Admission.MaxInFlight, C.ServeWorkers));
  if (C.Name.empty())
    Diags.push_back("Name must be non-empty (it labels tracks and metrics)");
  return Diags;
}

ServerConfigBuilder &ServerConfigBuilder::cores(uint32_t V) {
  C.Cores = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::jitWorkerCores(uint32_t V) {
  C.JitWorkerCores = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::unitsPerCorePerSecond(double V) {
  C.UnitsPerCorePerSecond = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::unitLoadCost(double V) {
  C.UnitLoadCost = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::deserializeCostPerByte(double V) {
  C.DeserializeCostPerByte = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::warmupRequests(uint32_t V) {
  C.WarmupRequests = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::runtimeWarmup(double Penalty,
                                                        double Tau) {
  C.RuntimeWarmupPenalty = Penalty;
  C.RuntimeWarmupTau = Tau;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::jit(jit::JitConfig V) {
  C.Jit = std::move(V);
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::interp(interp::InterpOptions V) {
  C.Interp = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::reorderProperties(bool V) {
  C.ReorderProperties = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::useAffinityPropOrder(bool V) {
  C.UseAffinityPropOrder = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::serveWorkers(uint32_t V) {
  C.ServeWorkers = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::maxInFlight(uint32_t V) {
  C.Admission.MaxInFlight = V;
  return *this;
}
ServerConfigBuilder &
ServerConfigBuilder::onOverload(AdmissionConfig::Policy V) {
  C.Admission.OnOverload = V;
  return *this;
}
ServerConfigBuilder &
ServerConfigBuilder::warmupEndpoints(std::vector<uint32_t> V) {
  C.WarmupEndpoints = std::move(V);
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::observability(obs::Observability *V) {
  C.Obs = V;
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::name(std::string V) {
  C.Name = std::move(V);
  return *this;
}
ServerConfigBuilder &ServerConfigBuilder::compilePool(support::ThreadPool *V) {
  C.CompilePool = V;
  return *this;
}

support::Status ServerConfigBuilder::tryBuild(ServerConfig &Out) const {
  std::vector<std::string> Diags = validateServerConfig(C);
  if (!Diags.empty())
    return support::Status::error(support::StatusCode::FailedPrecondition,
                                  Diags.front());
  Out = C;
  return support::Status::okStatus();
}

ServerConfig ServerConfigBuilder::build() const {
  ServerConfig Out;
  support::Status S = tryBuild(Out);
  alwaysAssert(S.ok(), "ServerConfigBuilder: invalid configuration");
  return Out;
}

} // namespace jumpstart::vm
