//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated HHVM server: interpreter + JIT + runtime + a virtual
/// clock, with the Jump-Start seeder and consumer workflows of the paper's
/// Figure 3.
///
/// Time is virtual: executing a request consumes "cost units" (one unit ~
/// one cycle), converted to seconds by the configured core speed.  The
/// server does not schedule itself; the fleet simulator (or a figure
/// harness) drives it tick by tick, granting JIT-worker time and asking it
/// to execute sampled requests.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_VM_SERVER_H
#define JUMPSTART_VM_SERVER_H

#include "interp/Interpreter.h"
#include "jit/Jit.h"
#include "jit/Recorders.h"
#include "profile/ProfilePackage.h"
#include "runtime/Builtins.h"
#include "runtime/ClassLayout.h"
#include "runtime/Heap.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace jumpstart::obs {
struct Observability;
}

namespace jumpstart::support {
class ThreadPool;
}

namespace jumpstart::vm {

/// Server configuration (the evaluation hardware of paper section VII is
/// a 16-core Xeon D-1581).
struct ServerConfig {
  uint32_t Cores = 16;
  /// Background JIT worker threads while serving.
  uint32_t JitWorkerCores = 3;
  /// Cost units one core retires per virtual second.
  double UnitsPerCorePerSecond = 2.0e6;
  /// Virtual cost of loading one unit's metadata on first touch.
  double UnitLoadCost = 40000;
  /// Virtual cost of deserializing a profile package, per byte.
  double DeserializeCostPerByte = 2.0;
  /// Warmup requests run at initialization (paper section VII-A).
  uint32_t WarmupRequests = 12;
  /// Runtime-warmup friction: early requests pay a penalty that decays
  /// with requests served, modelling the warmup effects outside the JIT
  /// (data caches, backend connections, OS page cache).  Cost multiplier
  /// is 1 + RuntimeWarmupPenalty * exp(-served / RuntimeWarmupTau).
  /// The paper's Figure 4a shows even Jump-Start servers start ~3x their
  /// steady-state latency and converge by ~150s.
  double RuntimeWarmupPenalty = 3.0;
  double RuntimeWarmupTau = 300;
  jit::JitConfig Jit;
  interp::InterpOptions Interp;
  /// Enable the object-property-reordering optimization when a package
  /// with access counts is installed (paper section V-C).
  bool ReorderProperties = true;
  /// Order properties by co-access affinity instead of plain hotness
  /// (the section V-C future-work extension; needs a package carrying
  /// affinity counters).
  bool UseAffinityPropOrder = false;
  /// Endpoints exercised by the initialization warmup requests (raw
  /// FuncIds); empty skips warmup requests.
  std::vector<uint32_t> WarmupEndpoints;
  /// Observability context (metrics + spans + virtual clock).  Null means
  /// the server records nothing.  The server allocates two tracer tracks
  /// (Name and Name + "/jit"), labels its metrics with {server=Name}, and
  /// advances the shared clock as it executes requests and initializes.
  obs::Observability *Obs = nullptr;
  /// Display name for tracks and metric labels (distinguishes servers
  /// sharing one Observability).
  std::string Name = "server";
  /// Host thread pool for the consumer precompile's parallel lowering
  /// (jit::ParallelRetranslate).  Null runs it inline.  Host-only: the
  /// virtual clock and all exports are identical with or without it; the
  /// *modeled* precompile parallelism is JitConfig::Parallelism.
  support::ThreadPool *CompilePool = nullptr;
};

/// Initialization breakdown returned by startup().
struct InitStats {
  double TotalSeconds = 0;
  double DeserializeSeconds = 0;
  double PreloadSeconds = 0;
  double PrecompileSeconds = 0;
  double WarmupRequestSeconds = 0;
  bool UsedJumpStart = false;
};

/// Observables of the most recent executeRequest() -- everything a client
/// of the simulated server could see.  Captured before the per-request
/// heap reset (the return value is rendered to a string because it may
/// point into the heap).  The differential conformance oracle
/// (src/testing) asserts these are identical across execution tiers.
struct RequestObservables {
  /// toString() of the endpoint's return value.
  std::string Ret;
  /// Everything the request printed.
  std::string Output;
  uint64_t Faults = 0;
  /// False when the request aborted (step budget, stack depth).
  bool Ok = true;
};

/// One simulated HHVM server process.
class Server {
public:
  Server(const bc::Repo &R, ServerConfig Config, uint64_t Seed);

  //===--------------------------------------------------------------------===
  // Jump-Start lifecycle (paper Figure 3).
  //===--------------------------------------------------------------------===

  /// Consumer mode: installs the downloaded package.  Must precede
  /// startup().  \returns fingerprint_mismatch when the package was built
  /// against a different repo (corrupt blobs are already filtered by the
  /// caller); the code doubles as the rejection-reason metric label.
  support::Status installPackage(const profile::ProfilePackage &Pkg);

  /// Initializes the server: consumer mode deserializes + precompiles all
  /// optimized code with every core, then runs warmup requests in
  /// parallel; without Jump-Start, warmup requests run sequentially
  /// (paper section VII-A).
  InitStats startup();

  /// Seeder side: assembles this server's profile package.
  profile::ProfilePackage buildSeederPackage(uint32_t Region,
                                             uint32_t Bucket,
                                             uint64_t SeederId) const;

  //===--------------------------------------------------------------------===
  // Serving.
  //===--------------------------------------------------------------------===

  /// Executes one request against endpoint \p F for real and \returns the
  /// virtual seconds of CPU it consumed (including metadata loading).
  /// Updates JIT profiling/tiering state as a side effect.
  double executeRequest(bc::FuncId F,
                        const std::vector<runtime::Value> &Args);

  /// Grants \p Seconds of background JIT-worker wall time (the workers
  /// use JitWorkerCores in parallel).  \returns seconds of work actually
  /// performed.
  double grantJitTime(double Seconds);

  //===--------------------------------------------------------------------===
  // Measurement hooks.
  //===--------------------------------------------------------------------===

  /// Temporarily replaces the profiling hooks with \p CB (e.g. the Vasm
  /// tracer); pass nullptr to restore the profiling hooks.
  void attachCallbacks(interp::ExecCallbacks *CB);

  double secondsPerUnit() const {
    return 1.0 / Config.UnitsPerCorePerSecond;
  }

  jit::Jit &theJit() { return TheJit; }
  const jit::Jit &theJit() const { return TheJit; }
  interp::Interpreter &interpreter() { return *Interp; }
  runtime::ClassTable &classes() { return Classes; }
  const ServerConfig &config() const { return Config; }

  uint64_t totalFaults() const { return Faults; }
  uint64_t requestsServed() const { return Requests; }
  /// Interpreter inline caches pre-filled at startup from the
  /// whole-program analysis facts (0 unless ProvenGuardElision is on).
  uint64_t icsSeeded() const { return ICsSeeded; }
  /// Observables of the most recent request (meaningful once
  /// executeRequest() has run).
  const RequestObservables &lastRequest() const { return LastRequest; }
  size_t loadedUnits() const { return LoadedUnits.size(); }

  /// The observability context this server records into (null when the
  /// configuration carried none).
  obs::Observability *observability() const { return Obs; }
  /// The tracer track request spans land on.
  uint32_t serverTrack() const { return ServerTrack; }

  /// Stable fingerprint of a repo, for package validation.
  static uint64_t repoFingerprint(const bc::Repo &R);

private:
  double unitsToSeconds(double Units) const {
    return Units / Config.UnitsPerCorePerSecond;
  }
  /// Charges first-touch unit loading for everything \p F needs.
  double loadUnitsFor(bc::FuncId F);
  /// Pre-fills interpreter inline caches from the analysis facts
  /// (startup; no-op unless ProvenGuardElision is on and facts exist).
  void seedInlineCaches();

  const bc::Repo &R;
  ServerConfig Config;
  obs::Observability *Obs = nullptr;
  uint32_t ServerTrack = 0;
  uint32_t JitTrack = 0;
  runtime::ClassTable Classes;
  runtime::Heap Heap;
  jit::Jit TheJit;
  std::unique_ptr<interp::Interpreter> Interp;
  friend class ServerHooks;
  std::unique_ptr<jit::JitProfilingHooks> Hooks;
  /// Unit-load cost units charged while the current request runs.
  double PendingLoadUnits = 0;
  uint64_t PackageBytes = 0;
  std::string Output;
  RequestObservables LastRequest;
  std::vector<uint64_t> InstrCounts;
  std::unordered_set<uint32_t> LoadedUnits;
  std::optional<profile::ProfilePackage> Package;
  uint64_t Faults = 0;
  uint64_t Requests = 0;
  uint64_t ICsSeeded = 0;
  bool Started = false;
};

} // namespace jumpstart::vm

#endif // JUMPSTART_VM_SERVER_H
