//===----------------------------------------------------------------------===//
//
// Part of the jumpstart project, a reproduction of "HHVM Jump-Start:
// Boosting Both Warmup and Steady-State Performance at Scale" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated HHVM server: interpreter + JIT + runtime + a virtual
/// clock, with the Jump-Start seeder and consumer workflows of the paper's
/// Figure 3.
///
/// Time is virtual: executing a request consumes "cost units" (one unit ~
/// one cycle), converted to seconds by the configured core speed.  The
/// server does not schedule itself; the fleet simulator (or a figure
/// harness) drives it tick by tick, granting JIT-worker time and asking it
/// to execute sampled requests.
///
/// The server has two serving modes:
///
///  - Serial (executeRequest): one request at a time on the serial
///    execution context, with profiling hooks feeding the JIT tiering
///    policy.  All figure harnesses and the fleet simulator use this.
///
///  - Concurrent (beginConcurrentServing / serve / endConcurrentServing):
///    real host threads serve requests against per-worker execution
///    contexts while one background thread compiles
///    (runBackgroundJitWork) and publishes immutable translation
///    snapshots through epoch-based reclamation -- the paper's
///    retranslate-all under live load (section VII).  Shared state is
///    immutable for the window's duration (the data plane is frozen at
///    beginConcurrentServing); admission control bounds in-flight
///    requests and sheds or blocks on overload.
///
//===----------------------------------------------------------------------===//

#ifndef JUMPSTART_VM_SERVER_H
#define JUMPSTART_VM_SERVER_H

#include "interp/Interpreter.h"
#include "jit/Jit.h"
#include "jit/Recorders.h"
#include "jit/TransSnapshot.h"
#include "profile/ProfilePackage.h"
#include "runtime/Builtins.h"
#include "runtime/ClassLayout.h"
#include "runtime/Heap.h"
#include "support/Epoch.h"
#include "support/ThreadSafety.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace jumpstart::obs {
struct Observability;
}

namespace jumpstart::support {
class ThreadPool;
}

namespace jumpstart::vm {

/// Admission control for serve() during concurrent serving: how many
/// requests may be past admission at once, and what happens to an
/// arrival beyond that.
struct AdmissionConfig {
  /// Requests allowed past admission concurrently (executing or waiting
  /// for an execution context).  0 means 2 * ServeWorkers.
  uint32_t MaxInFlight = 0;
  enum class Policy : uint8_t {
    /// Arrivals beyond MaxInFlight wait for capacity (closed-loop
    /// clients; never sheds).
    Block,
    /// Arrivals beyond MaxInFlight are rejected immediately:
    /// RequestResult::Shed is set and the jumpstart.server.shed counter
    /// accounts for them at end-of-serving.
    Shed,
  };
  Policy OnOverload = Policy::Block;
};

/// Server configuration (the evaluation hardware of paper section VII is
/// a 16-core Xeon D-1581).  Build literally, or through
/// ServerConfigBuilder for validation at construction time.
struct ServerConfig {
  uint32_t Cores = 16;
  /// Background JIT worker threads while serving.
  uint32_t JitWorkerCores = 3;
  /// Cost units one core retires per virtual second.
  double UnitsPerCorePerSecond = 2.0e6;
  /// Virtual cost of loading one unit's metadata on first touch.
  double UnitLoadCost = 40000;
  /// Virtual cost of deserializing a profile package, per byte.
  double DeserializeCostPerByte = 2.0;
  /// Warmup requests run at initialization (paper section VII-A).
  uint32_t WarmupRequests = 12;
  /// Runtime-warmup friction: early requests pay a penalty that decays
  /// with requests served, modelling the warmup effects outside the JIT
  /// (data caches, backend connections, OS page cache).  Cost multiplier
  /// is 1 + RuntimeWarmupPenalty * exp(-served / RuntimeWarmupTau).
  /// The paper's Figure 4a shows even Jump-Start servers start ~3x their
  /// steady-state latency and converge by ~150s.
  double RuntimeWarmupPenalty = 3.0;
  double RuntimeWarmupTau = 300;
  jit::JitConfig Jit;
  interp::InterpOptions Interp;
  /// Enable the object-property-reordering optimization when a package
  /// with access counts is installed (paper section V-C).
  bool ReorderProperties = true;
  /// Order properties by co-access affinity instead of plain hotness
  /// (the section V-C future-work extension; needs a package carrying
  /// affinity counters).
  bool UseAffinityPropOrder = false;
  /// Execution contexts available to serve() during concurrent serving.
  /// Each owns its own heap + interpreter; 1 keeps concurrent serving
  /// effectively serial.  Host threads, not virtual cores: virtual time
  /// is never divided by this.
  uint32_t ServeWorkers = 1;
  /// Overload behaviour for serve().
  AdmissionConfig Admission;
  /// Endpoints exercised by the initialization warmup requests (raw
  /// FuncIds); empty skips warmup requests.
  std::vector<uint32_t> WarmupEndpoints;
  /// Observability context (metrics + spans + virtual clock).  Null means
  /// the server records nothing.  The server allocates two tracer tracks
  /// (Name and Name + "/jit"), labels its metrics with {server=Name}, and
  /// advances the shared clock as it executes requests and initializes.
  obs::Observability *Obs = nullptr;
  /// Display name for tracks and metric labels (distinguishes servers
  /// sharing one Observability).
  std::string Name = "server";
  /// Host thread pool for the consumer precompile's parallel lowering
  /// (jit::ParallelRetranslate).  Null runs it inline.  Host-only: the
  /// virtual clock and all exports are identical with or without it; the
  /// *modeled* precompile parallelism is JitConfig::Parallelism.
  support::ThreadPool *CompilePool = nullptr;
};

/// All structural complaints about \p C, empty when it is coherent.
/// Mirrors JumpStartOptions::validate(); each diagnostic names the field
/// it is about.
std::vector<std::string> validateServerConfig(const ServerConfig &C);

/// Fluent construction with validation: invalid core/worker/admission
/// settings surface at build time as failed_precondition instead of as
/// divide-by-zero or deadlock mid-run.  See DESIGN.md "Options layering"
/// for how this relates to core::JumpStartOptions (policy knobs) --
/// ServerConfig is the mechanism layer underneath it.
class ServerConfigBuilder {
public:
  ServerConfigBuilder() = default;
  /// Starts from an existing config (e.g. one produced by
  /// applyOptimizationOptions) to validate or adjust it.
  explicit ServerConfigBuilder(ServerConfig Base) : C(std::move(Base)) {}

  ServerConfigBuilder &cores(uint32_t V);
  ServerConfigBuilder &jitWorkerCores(uint32_t V);
  ServerConfigBuilder &unitsPerCorePerSecond(double V);
  ServerConfigBuilder &unitLoadCost(double V);
  ServerConfigBuilder &deserializeCostPerByte(double V);
  ServerConfigBuilder &warmupRequests(uint32_t V);
  ServerConfigBuilder &runtimeWarmup(double Penalty, double Tau);
  ServerConfigBuilder &jit(jit::JitConfig V);
  ServerConfigBuilder &interp(interp::InterpOptions V);
  ServerConfigBuilder &reorderProperties(bool V);
  ServerConfigBuilder &useAffinityPropOrder(bool V);
  ServerConfigBuilder &serveWorkers(uint32_t V);
  ServerConfigBuilder &maxInFlight(uint32_t V);
  ServerConfigBuilder &onOverload(AdmissionConfig::Policy V);
  ServerConfigBuilder &warmupEndpoints(std::vector<uint32_t> V);
  ServerConfigBuilder &observability(obs::Observability *V);
  ServerConfigBuilder &name(std::string V);
  ServerConfigBuilder &compilePool(support::ThreadPool *V);

  /// \returns the built config; asserts it validates.
  ServerConfig build() const;
  /// \returns failed_precondition carrying the first diagnostic when the
  /// config is incoherent.
  support::Status tryBuild(ServerConfig &Out) const;

private:
  ServerConfig C;
};

/// Initialization breakdown returned by startup().
struct InitStats {
  double TotalSeconds = 0;
  double DeserializeSeconds = 0;
  double PreloadSeconds = 0;
  double PrecompileSeconds = 0;
  double WarmupRequestSeconds = 0;
  bool UsedJumpStart = false;
};

/// Observables of one executed request -- everything a client of the
/// simulated server could see.  Captured before the per-request heap
/// reset (the return value is rendered to a string because it may point
/// into the heap).  The differential conformance oracle (src/testing)
/// asserts these are identical across execution tiers and thread counts.
struct RequestObservables {
  /// toString() of the endpoint's return value.
  std::string Ret;
  /// Everything the request printed.
  std::string Output;
  uint64_t Faults = 0;
  /// False when the request aborted (step budget, stack depth).
  bool Ok = true;
};

/// Everything executeRequest()/serve() returns for one request.  A
/// value, not a side channel: safe to hold across other requests and
/// across threads.
struct RequestResult {
  /// Virtual seconds of CPU the request consumed (including metadata
  /// loading on the serial path).  Meaningless when Shed.
  double Seconds = 0;
  /// True when admission control rejected the request (Shed policy);
  /// the request did not execute and Obs is empty.
  bool Shed = false;
  RequestObservables Obs;
};

/// Outcome of one concurrent-serving window, returned by
/// endConcurrentServing().  Invariant: Submitted == Served + Shed.
struct ServeStats {
  uint64_t Submitted = 0;
  uint64_t Served = 0;
  uint64_t Shed = 0;
  uint64_t Faults = 0;
  /// Translation snapshots installed during the window (>= 1: the
  /// window opens with one).
  uint64_t SnapshotsPublished = 0;
  /// Retired snapshots whose deleters ran (== SnapshotsPublished - 1
  /// once the window closes; the live one is freed with the publisher).
  uint64_t SnapshotsReclaimed = 0;
  /// Virtual cost of the data-plane freeze (loading every unit not yet
  /// touched), charged at beginConcurrentServing() across all cores.
  double PreloadSeconds = 0;
};

/// One simulated HHVM server process.
class Server {
public:
  Server(const bc::Repo &R, ServerConfig Config, uint64_t Seed);
  ~Server();

  //===--------------------------------------------------------------------===
  // Jump-Start lifecycle (paper Figure 3).
  //===--------------------------------------------------------------------===

  /// Consumer mode: installs the downloaded package.  Must precede
  /// startup().  \returns fingerprint_mismatch when the package was built
  /// against a different repo (corrupt blobs are already filtered by the
  /// caller); the code doubles as the rejection-reason metric label.
  support::Status installPackage(const profile::ProfilePackage &Pkg);

  /// Initializes the server: consumer mode deserializes + precompiles all
  /// optimized code with every core, then runs warmup requests in
  /// parallel; without Jump-Start, warmup requests run sequentially
  /// (paper section VII-A).
  InitStats startup();

  /// Seeder side: assembles this server's profile package.
  profile::ProfilePackage buildSeederPackage(uint32_t Region,
                                             uint32_t Bucket,
                                             uint64_t SeederId) const;

  //===--------------------------------------------------------------------===
  // Serial serving.
  //===--------------------------------------------------------------------===

  /// Executes one request against endpoint \p F for real and \returns
  /// its virtual seconds and observables.  Updates JIT profiling/tiering
  /// state as a side effect.  Serial path only; asserts outside a
  /// concurrent-serving window.
  RequestResult executeRequest(bc::FuncId F,
                               const std::vector<runtime::Value> &Args);

  /// Grants \p Seconds of background JIT-worker wall time (the workers
  /// use JitWorkerCores in parallel).  \returns seconds of work actually
  /// performed.  Serial path; during a concurrent-serving window use
  /// runBackgroundJitWork from the compile thread instead.
  double grantJitTime(double Seconds);

  //===--------------------------------------------------------------------===
  // Concurrent serving (paper section VII: warmup under live load).
  //===--------------------------------------------------------------------===

  /// Opens a concurrent-serving window: freezes the data plane (loads
  /// every unit and class layout so request threads only read shared
  /// state), creates ServeWorkers execution contexts, and publishes the
  /// first translation snapshot.  After this, serve() may be called from
  /// any number of client threads and runBackgroundJitWork() from one
  /// background compile thread, concurrently.
  void beginConcurrentServing();

  /// Executes one request on a free execution context, thread-safe.
  /// \p RequestIndex is the caller-assigned dense index of this request
  /// (0-based within the window); it determines the runtime-warmup decay
  /// deterministically, independent of thread interleaving.  Blocks or
  /// sheds per AdmissionConfig when the window is at MaxInFlight.
  ///
  /// Observables are interleaving-invariant (the oracle asserts this);
  /// Seconds depends on which translation snapshot the request observed
  /// and is therefore not deterministic across runs.  Never touches the
  /// observability context or the virtual clock -- integer totals are
  /// folded into metrics at endConcurrentServing().
  RequestResult serve(bc::FuncId F, const std::vector<runtime::Value> &Args,
                      uint64_t RequestIndex);

  /// Runs up to \p Seconds of JIT work and, when anything compiled,
  /// captures + publishes a fresh translation snapshot.  Must be called
  /// from exactly one background thread during the window; that thread
  /// is the sole mutator of the JIT and the observability context while
  /// serving runs.  \returns seconds of work actually performed.
  double runBackgroundJitWork(double Seconds);

  /// True while a concurrent-serving window is open.
  bool serving() const { return Serving.load(std::memory_order_acquire); }

  /// Requests currently past admission (diagnostics/tests; racy).
  uint32_t inFlight();

  /// Closes the window: requires all clients done (asserts nothing in
  /// flight), folds integer totals into the metrics registry
  /// (jumpstart.server.requests/faults/shed), releases the execution
  /// contexts, and reclaims every retired snapshot.  \returns the
  /// window's stats.
  ServeStats endConcurrentServing();

  //===--------------------------------------------------------------------===
  // Measurement hooks.
  //===--------------------------------------------------------------------===

  double secondsPerUnit() const {
    return 1.0 / Config.UnitsPerCorePerSecond;
  }

  jit::Jit &theJit() { return TheJit; }
  const jit::Jit &theJit() const { return TheJit; }
  interp::Interpreter &interpreter() { return *Serial->Interp; }
  runtime::ClassTable &classes() { return Classes; }
  const ServerConfig &config() const { return Config; }

  uint64_t totalFaults() const { return Faults; }
  uint64_t requestsServed() const { return Requests; }
  /// Interpreter inline caches pre-filled at startup from the
  /// whole-program analysis facts (0 unless ProvenGuardElision is on).
  uint64_t icsSeeded() const { return ICsSeeded; }
  size_t loadedUnits() const { return LoadedUnits.size(); }

  /// The observability context this server records into (null when the
  /// configuration carried none).
  obs::Observability *observability() const { return Obs; }
  /// The tracer track request spans land on.
  uint32_t serverTrack() const { return ServerTrack; }

  /// Stable fingerprint of a repo, for package validation.
  static uint64_t repoFingerprint(const bc::Repo &R);

private:
  friend class CallbackScope;

  /// One execution context: everything mutated while a request runs.
  /// The serial path owns one (with profiling hooks); concurrent serving
  /// creates ServeWorkers more, checked out per request.
  struct ExecContext {
    ExecContext(const bc::Repo &R, runtime::ClassTable &Classes,
                const interp::InterpOptions &Opts);

    runtime::Heap Heap;
    std::unique_ptr<interp::Interpreter> Interp;
    std::string Output;
    std::vector<uint64_t> InstrCounts;
    /// Unit-load cost units charged while the current request runs
    /// (serial path; fed by ServerHooks).
    double PendingLoadUnits = 0;
    /// This context's reader slot in the snapshot epoch domain
    /// (concurrent contexts only).
    support::EpochDomain::Slot *Slot = nullptr;
    // Folded into ServeStats at endConcurrentServing().
    uint64_t Served = 0;
    uint64_t Faults = 0;
  };

  double unitsToSeconds(double Units) const {
    return Units / Config.UnitsPerCorePerSecond;
  }
  /// Charges first-touch unit loading for everything \p F needs.
  double loadUnitsFor(bc::FuncId F);
  /// Pre-fills interpreter inline caches from the analysis facts
  /// (startup; no-op unless ProvenGuardElision is on and facts exist).
  void seedInlineCaches();
  /// Temporarily replaces the serial context's profiling hooks with
  /// \p CB; nullptr restores them.  Use through CallbackScope.
  void attachCallbacks(interp::ExecCallbacks *CB);
  /// Captures the JIT's translation state and installs it as the
  /// current snapshot.  Background compile thread (or begin) only.
  void publishSnapshot();
  /// Runs one request on \p Ctx under an epoch guard, costing it with
  /// the pinned snapshot.  \p DecayRequests is the request count used
  /// for the runtime-warmup decay.
  RequestResult executeOnContext(ExecContext &Ctx, bc::FuncId F,
                                 const std::vector<runtime::Value> &Args,
                                 uint64_t DecayRequests);
  uint32_t effectiveMaxInFlight() const;

  const bc::Repo &R;
  ServerConfig Config;
  obs::Observability *Obs = nullptr;
  uint32_t ServerTrack = 0;
  uint32_t JitTrack = 0;
  runtime::ClassTable Classes;
  jit::Jit TheJit;
  friend class ServerHooks;
  /// The serial execution context (executeRequest, warmup requests).
  std::unique_ptr<ExecContext> Serial;
  std::unique_ptr<jit::JitProfilingHooks> Hooks;
  uint64_t PackageBytes = 0;
  std::unordered_set<uint32_t> LoadedUnits;
  std::optional<profile::ProfilePackage> Package;
  uint64_t Faults = 0;
  uint64_t Requests = 0;
  uint64_t ICsSeeded = 0;
  bool Started = false;

  //===--------------------------------------------------------------------===
  // Concurrent-serving state.  Serving is written by the coordinating
  // thread in begin/end (no client thread runs across either edge, by
  // contract) and read by serve()/runBackgroundJitWork() as a guard.
  //===--------------------------------------------------------------------===
  std::atomic<bool> Serving{false};
  /// Requests on the serial counter when the window opened; request
  /// RequestIndex decays as serial request BaseRequests + RequestIndex + 1.
  uint64_t BaseRequests = 0;
  uint64_t SnapVersion = 0;
  std::unique_ptr<support::EpochDomain> Domain;
  std::unique_ptr<jit::SnapshotPublisher> Publisher;
  std::vector<std::unique_ptr<ExecContext>> ServeContexts;
  ServeStats CurStats;

  support::Mutex ServeM;
  support::CondVar ServeCV;
  std::vector<ExecContext *> FreeContexts JUMPSTART_GUARDED_BY(ServeM);
  uint32_t InFlightCount JUMPSTART_GUARDED_BY(ServeM) = 0;
  uint64_t SubmittedCount JUMPSTART_GUARDED_BY(ServeM) = 0;
  uint64_t ServedCount JUMPSTART_GUARDED_BY(ServeM) = 0;
  uint64_t ShedCount JUMPSTART_GUARDED_BY(ServeM) = 0;
};

/// RAII replacement for the old attachCallbacks(ExecCallbacks*) pair:
/// installs \p CB on the server's serial interpreter for this scope and
/// restores the profiling hooks on exit, so measurement hooks cannot
/// leak across requests (or into a concurrent-serving window, where the
/// serial context is off-limits anyway).
class CallbackScope {
public:
  CallbackScope(Server &S, interp::ExecCallbacks *CB) : S(&S) {
    S.attachCallbacks(CB);
  }
  ~CallbackScope() {
    if (S)
      S->attachCallbacks(nullptr);
  }

  CallbackScope(CallbackScope &&O) noexcept : S(O.S) { O.S = nullptr; }
  CallbackScope &operator=(CallbackScope &&) = delete;
  CallbackScope(const CallbackScope &) = delete;
  CallbackScope &operator=(const CallbackScope &) = delete;

private:
  Server *S;
};

} // namespace jumpstart::vm

#endif // JUMPSTART_VM_SERVER_H
